(** Symbolic program-output comparison (§3.3.1).

    A primary execution run on symbolic inputs records outputs as symbolic
    formulae; an alternate execution is fully concrete.  The alternate
    {e matches} the primary iff the output sequences have the same shape and
    there exist inputs satisfying the primary's path condition under which
    every symbolic output equals the corresponding concrete value — one SMT
    query over the conjunction (outputs share input variables, so positions
    must be checked together). *)

module V = Portend_vm
module E = Portend_solver.Expr
module Solver = Portend_solver.Solver

type mismatch = {
  m_index : int;  (** position in the output sequence, or -1 for a length/shape difference *)
  m_site : V.Events.site option;
  m_primary : string;
  m_alternate : string;
}

let pp_mismatch fmt m =
  Fmt.pf fmt "output %d%a: primary %s vs alternate %s" m.m_index
    Fmt.(option (fun fmt s -> Fmt.pf fmt " at %a" V.Events.pp_site s))
    m.m_site m.m_primary m.m_alternate

(* Build equality constraints for one output pair, or a mismatch. *)
let constrain_pair idx (p : V.State.output) (a : V.State.output) :
    (E.t list, mismatch) Stdlib.result =
  let mism ps as_ =
    Error { m_index = idx; m_site = Some p.V.State.out_site; m_primary = ps; m_alternate = as_ }
  in
  match (p.V.State.payload, a.V.State.payload) with
  | V.State.Text s1, V.State.Text s2 ->
    if String.equal s1 s2 then Ok [] else mism (Printf.sprintf "%S" s1) (Printf.sprintf "%S" s2)
  | V.State.Vals ps, V.State.Vals as_ ->
    if List.length ps <> List.length as_ then
      mism
        (Fmt.str "%a" Fmt.(list ~sep:comma V.Value.pp) ps)
        (Fmt.str "%a" Fmt.(list ~sep:comma V.Value.pp) as_)
    else
      let rec build acc = function
        | [] -> Ok acc
        | (pv, av) :: rest -> (
          match (pv, av) with
          | V.Value.Con x, V.Value.Con y ->
            if x = y then build acc rest
            else mism (string_of_int x) (string_of_int y)
          | pv, av ->
            build (E.Binop (Eq, V.Value.to_expr pv, V.Value.to_expr av) :: acc) rest)
      in
      build [] (List.combine ps as_)
  | V.State.Text s, V.State.Vals vs ->
    mism (Printf.sprintf "%S" s) (Fmt.str "%a" Fmt.(list ~sep:comma V.Value.pp) vs)
  | V.State.Vals vs, V.State.Text s ->
    mism (Fmt.str "%a" Fmt.(list ~sep:comma V.Value.pp) vs) (Printf.sprintf "%S" s)

(** [matches ~ranges ~path_cond ~primary ~alternate] — [Ok ()] when the
    concrete alternate outputs satisfy the primary's symbolic output
    constraints; [Error m] describes the first mismatch found. *)
let matches ~ranges ~path_cond ~(primary : V.State.output list)
    ~(alternate : V.State.output list) : (unit, mismatch) Stdlib.result =
  if List.length primary <> List.length alternate then
    Error
      { m_index = -1;
        m_site = None;
        m_primary = Printf.sprintf "%d output operations" (List.length primary);
        m_alternate = Printf.sprintf "%d output operations" (List.length alternate)
      }
  else
    let rec collect idx acc = function
      | [] -> Ok acc
      | (p, a) :: rest -> (
        match constrain_pair idx p a with
        | Ok cs -> collect (idx + 1) (cs @ acc) rest
        | Error m -> Error m)
    in
    match collect 0 [] (List.combine primary alternate) with
    | Error m -> Error m
    | Ok [] -> Ok ()
    | Ok constraints ->
      if Solver.sat ~ranges (constraints @ path_cond) then Ok ()
      else
        Error
          { m_index = -1;
            m_site = None;
            m_primary = "symbolic output constraints";
            m_alternate = "concrete outputs outside the allowed set"
          }

(** Plain concrete equality of output sequences — what “single-pre/single-
    post” comparison uses, and the non-symbolic mode of the Fig 7 ablation. *)
let concrete_equal (a : V.State.output list) (b : V.State.output list) =
  let payload o = o.V.State.payload in
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         match (payload x, payload y) with
         | V.State.Text s1, V.State.Text s2 -> String.equal s1 s2
         | V.State.Vals v1, V.State.Vals v2 ->
           List.length v1 = List.length v2 && List.for_all2 V.Value.equal v1 v2
         | V.State.Text _, V.State.Vals _ | V.State.Vals _, V.State.Text _ -> false)
       a b
