(** Replay a recorded trace and checkpoint the execution around a reported
    race: the {e pre-race} checkpoint just before the first racing access and
    the {e post-race} checkpoint just after the second (Algorithm 1, lines
    1–4).

    Checkpointing is free because the VM state is persistent — we simply keep
    the state value at the right decision points.  Every shared access begins
    its own scheduler slice, so “just before the first racing access” is
    exactly “before the slice whose first event is that access”. *)

module V = Portend_vm
module R = Portend_detect.Report

type t = {
  pre_race : V.State.t;  (** state before decision [d1] *)
  post_race : V.State.t;  (** state after the slice containing the second access *)
  d1 : int;  (** decision index of the first racing access *)
  d2 : int;
  decisions : int list;  (** the full recorded decision list *)
  primary_final : V.State.t;  (** the replay run to completion *)
  primary_stop : V.Run.stop;
  primary_events : V.Events.t list;
  primary_steps : int;  (** instructions executed by the full replay *)
}

let slice_has_step step events =
  List.exists
    (function V.Events.Access { step = s; _ } -> s = step | _ -> false)
    events

(** [checkpoints prog trace race] replays [trace] and returns the checkpoints
    for [race], or an error if the replay cannot reproduce it. *)
let checkpoints (prog : Portend_lang.Bytecode.t) (trace : V.Trace.t) (race : R.race) :
    (t, string) result =
  let input_mode = V.State.Concrete (V.Trace.input_model trace) in
  let st0 = V.State.init ~input_mode prog in
  let decisions = V.Trace.decisions trace in
  let step1 = race.R.first.R.a_step and step2 = race.R.second.R.a_step in
  let exception Fail of string in
  try
    let rec go st idx remaining rev_events pre d1 post d2 =
      match remaining with
      | [] -> finish st idx rev_events pre d1 post d2
      | tid :: rest -> (
        let runnable = V.State.runnable st in
        if not (List.mem tid runnable) then
          raise (Fail (Printf.sprintf "replay diverged at decision %d: T%d not runnable" idx tid));
        match V.Run.slice st tid with
        | [ sl ] -> (
          let rev_events = List.rev_append sl.V.Run.s_events rev_events in
          let pre, d1 =
            if d1 = None && slice_has_step step1 sl.V.Run.s_events then (Some st, Some idx)
            else (pre, d1)
          in
          let post, d2 =
            if d2 = None && d1 <> None && slice_has_step step2 sl.V.Run.s_events then
              (Some sl.V.Run.s_state, Some idx)
            else (post, d2)
          in
          match sl.V.Run.s_end with
          | V.Run.End_crashed c -> finish_with sl.V.Run.s_state (V.Run.Crashed c) rev_events pre d1 post d2
          | V.Run.End_decision | V.Run.End_paused ->
            go sl.V.Run.s_state (idx + 1) rest rev_events pre d1 post d2)
        | _ -> raise (Fail "symbolic fork during concrete replay"))
    and finish st idx rev_events pre d1 post d2 =
      (* Trace exhausted: finish the run round-robin (traces normally end at
         program completion so this is usually a no-op). *)
      ignore idx;
      let r = V.Run.run ~sched:V.Sched.round_robin st in
      finish_with r.V.Run.final r.V.Run.stop
        (List.rev_append r.V.Run.events rev_events)
        pre d1 post d2
    and finish_with final stop rev_events pre d1 post d2 =
      match (pre, d1, post, d2) with
      | Some pre_race, Some d1, Some post_race, Some d2 ->
        Ok
          { pre_race;
            post_race;
            d1;
            d2;
            decisions;
            primary_final = final;
            primary_stop = stop;
            primary_events = List.rev rev_events;
            primary_steps = final.V.State.steps
          }
      | _ ->
        Error
          (Printf.sprintf "replay did not reproduce the race (first found: %b, second found: %b)"
             (d1 <> None) (d2 <> None))
    in
    go st0 0 decisions [] None None None None
  with Fail msg -> Error msg

(** How many accesses to the racy location the second racing thread performs
    between the pre-race checkpoint and its racy access, inclusive.  The
    alternate enforcement drives the thread through exactly this many
    accesses, so loops that touch the location several times before the race
    replay precisely (§3.1's absolute instruction counts). *)
let second_access_occurrence (t : t) (race : R.race) : int =
  let loc_base = R.base_loc race.R.r_loc in
  let tj = race.R.second.R.a_tid and site2 = race.R.second.R.a_site in
  let lo = t.pre_race.V.State.steps and hi = race.R.second.R.a_step in
  let n =
    List.fold_left
      (fun acc ev ->
        match ev with
        | V.Events.Access { tid; site; loc; step; _ }
          when tid = tj && site = site2 && R.base_loc loc = loc_base && step >= lo && step <= hi
          ->
          acc + 1
        | _ -> acc)
      0 t.primary_events
  in
  max 1 n

(** Replay [trace]'s decisions up to (not including) decision [d] with the
    given input model; used to rebuild pre-race states for alternates whose
    inputs come from an SMT model (§3.3.1). *)
let replay_to_decision (prog : Portend_lang.Bytecode.t) ~(model : int Portend_util.Maps.Smap.t)
    ~(decisions : int list) ~(d : int) : (V.State.t, string) result =
  let st0 = V.State.init ~input_mode:(V.State.Concrete model) prog in
  let rec go st idx = function
    | _ when idx = d -> Ok st
    | [] -> Error "trace exhausted before target decision"
    | tid :: rest -> (
      if not (List.mem tid (V.State.runnable st)) then
        Error (Printf.sprintf "replay diverged at decision %d" idx)
      else
        match V.Run.slice st tid with
        | [ sl ] -> (
          match sl.V.Run.s_end with
          | V.Run.End_crashed c -> Error ("crashed during replay: " ^ V.Crash.to_string c)
          | V.Run.End_decision | V.Run.End_paused -> go sl.V.Run.s_state (idx + 1) rest)
        | _ -> Error "symbolic fork during concrete replay")
  in
  go st0 0 decisions
