(** The full classifier: Algorithm 1 plus multi-path and multi-schedule
    analysis with symbolic output comparison (§3.2–§3.5). *)

type outcome = {
  verdict : Taxonomy.verdict;
  evidence : Evidence.t option;
      (** present for “spec violated” and “output differs” verdicts: the
          replayable ingredients that demonstrate the consequence *)
}

(** Classify one (clustered) race report against a recorded trace.

    Runs the single-pre/single-post analysis first; if that is inconclusive
    (outputs matched), continues with multi-path exploration on symbolic
    inputs and multi-schedule alternates, comparing outputs symbolically.
    [Error] means the replay could not reproduce the race (e.g. a stale
    trace). *)
val classify :
  ?config:Config.t ->
  Portend_lang.Bytecode.t ->
  Portend_vm.Trace.t ->
  Portend_detect.Report.race ->
  (outcome, string) result
