(** Weak-memory-consistency checking — the §6 extension the paper sketches
    via adversarial memory [17].

    Under sequential consistency a racy load returns the latest store; under
    weaker models it may observe a stale value.  The VM's
    {!Portend_vm.State.Adversarial} memory model makes every shared-global
    load fork over the recently overwritten values, and this module
    exhaustively explores those behaviours (bounded) looking for
    specification violations that sequential consistency cannot produce —
    the classic example being double-checked locking, harmless on a
    TSO-like machine but broken when the initialized flag becomes visible
    before the data it guards. *)

module V = Portend_vm

type outcome = {
  crashes : (V.Crash.t * int) list;  (** violation and the step it occurred at *)
  executions : int;  (** complete executions explored *)
  truncated : bool;  (** did exploration hit its budget? *)
}

(** Explore the program's adversarial-memory behaviours.

    [depth] bounds how many overwritten values a load may still observe;
    [max_states] bounds exploration.  Returns every distinct crash found.
    A program with no (weak-memory-reachable) violation yields
    [crashes = []]. *)
let explore ?(depth = 2) ?(max_states = 20_000) (prog : Portend_lang.Bytecode.t) : outcome =
  let init = V.State.init ~memory_model:(V.State.Adversarial { depth }) prog in
  let crashes = ref [] in
  let executions = ref 0 in
  let seen_states = ref 0 in
  let truncated = ref false in
  let note_crash c step =
    if not (List.exists (fun (c', _) -> c' = c) !crashes) then crashes := (c, step) :: !crashes
  in
  let stack = ref [ init ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | st :: rest -> (
      stack := rest;
      incr seen_states;
      if !seen_states > max_states then begin
        truncated := true;
        stack := []
      end
      else
        match V.State.runnable st with
        | [] ->
          if V.State.all_finished st then incr executions
          else note_crash (V.Crash.Deadlock (V.State.live_tids st)) st.V.State.steps
        | runnable ->
          (* explore every scheduling choice at every decision point *)
          List.iter
            (fun tid ->
              List.iter
                (fun sl ->
                  match sl.V.Run.s_end with
                  | V.Run.End_crashed c -> note_crash c sl.V.Run.s_state.V.State.steps
                  | V.Run.End_decision | V.Run.End_paused ->
                    stack := sl.V.Run.s_state :: !stack)
                (V.Run.slice st tid))
            runnable)
  done;
  { crashes = List.rev !crashes; executions = !executions; truncated = !truncated }

(** Does the program have violations reachable {e only} under weak memory?
    Runs the same exploration under sequential consistency and subtracts. *)
let weak_only_crashes ?depth ?max_states (prog : Portend_lang.Bytecode.t) :
    V.Crash.t list =
  let weak = explore ?depth ?max_states prog in
  let sc =
    explore ?max_states ~depth:0 prog
    (* depth 0 keeps no history: sequential consistency *)
  in
  List.filter_map
    (fun (c, _) -> if List.exists (fun (c', _) -> c' = c) sc.crashes then None else Some c)
    weak.crashes
