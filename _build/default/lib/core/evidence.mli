(** Portend's debugging-aid output (§3.6, Fig 6): a textual report plus the
    replayable ingredients (inputs and schedule) that reproduce a harmful
    race's consequences or an output difference. *)

type t = {
  e_race : Portend_detect.Report.race;
  e_category : Taxonomy.category;
  e_crash : Portend_vm.Crash.t option;  (** the observed violation *)
  e_inputs : (string * int) list;  (** program inputs that reproduce it *)
  e_decisions : int list;  (** schedule prefix up to the race reversal *)
  e_d1 : int;
  e_d2 : int;
  e_mismatch : Symout.mismatch option;  (** for outDiff *)
  e_notes : string list;
}

val make :
  race:Portend_detect.Report.race ->
  category:Taxonomy.category ->
  ?crash:Portend_vm.Crash.t ->
  ?inputs:(string * int) list ->
  ?decisions:int list ->
  ?d1:int ->
  ?d2:int ->
  ?mismatch:Symout.mismatch ->
  ?notes:string list ->
  unit ->
  t

(** Render a Fig 6-style report. *)
val render : t -> string
