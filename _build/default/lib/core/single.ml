(** Single-pre/single-post analysis — Algorithm 1 of the paper.

    Replays the primary trace, checkpoints around the race, attempts to
    enforce the alternate ordering, watches both executions for basic and
    semantic specification violations, and compares their outputs. *)

module V = Portend_vm
module R = Portend_detect.Report

type classification =
  | CSpecViol of V.Crash.consequence option * string
      (** consequence, rationale; [None] consequence = “replay failure
          treated as harmful” (only without ad-hoc detection) *)
  | COutDiff of Symout.mismatch option
  | COutSame
  | CSingleOrd of string

type t = {
  classification : classification;
  ckpts : Locate.t;
  alternate : Enforce.outcome option;
  states_differ : bool;  (** post-race concrete state comparison (Table 3) *)
  primary_outputs : V.State.output list;
}

let drop n xs = List.filteri (fun i _ -> i >= n) xs

let consequence_of_stop = function
  | V.Run.Crashed c -> Some (V.Crash.consequence c)
  | V.Run.Deadlocked _ -> Some V.Crash.Cdeadlock
  | V.Run.Halted | V.Run.Out_of_budget | V.Run.Diverged _ | V.Run.Forked -> None

let analyze (cfg : Config.t) ~(static : Portend_lang.Static.t) (prog : Portend_lang.Bytecode.t)
    (trace : V.Trace.t) (race : R.race) : (t, string) result =
  match Locate.checkpoints prog trace race with
  | Error e -> Error e
  | Ok ckpts -> (
    let primary_outputs = V.State.outputs ckpts.Locate.primary_final in
    let finish ?alternate ?(states_differ = true) classification =
      Ok { classification; ckpts; alternate; states_differ; primary_outputs }
    in
    (* A primary that itself violates the spec ends the analysis (Algorithm
       1 line 17 checks both executions). *)
    match consequence_of_stop ckpts.Locate.primary_stop with
    | Some c ->
      finish
        (CSpecViol
           (Some c, "primary execution: " ^ V.Run.stop_to_string ckpts.Locate.primary_stop))
    | None -> (
      let budget = cfg.Config.alternate_budget_factor * max 1 ckpts.Locate.primary_steps in
      (* Continue past the reversal by replaying the recorded tail (the d1
         decision itself was consumed by the enforcement phases). *)
      let cont =
        V.Sched.of_decisions_tolerant
          (drop (ckpts.Locate.d1 + 1) ckpts.Locate.decisions)
          ~fallback:V.Sched.round_robin
      in
      let occurrence = Locate.second_access_occurrence ckpts race in
      let alt =
        Enforce.alternate ~static ~budget ~cont ~occurrence ~race
          ~pre_race:ckpts.Locate.pre_race ()
      in
      let states_differ =
        match alt.Enforce.post_access_state with
        | Some s -> not (Compare.states_equal ckpts.Locate.post_race s)
        | None -> true
      in
      let single_ord why =
        if cfg.Config.enable_adhoc_detection then
          finish ~alternate:alt ~states_differ (CSingleOrd why)
        else
          (* Without ad-hoc synchronization detection a replay failure is
             conservatively treated as harmful, as in Record/Replay-
             Analyzer [45]. *)
          finish ~alternate:alt ~states_differ
            (CSpecViol (None, "alternate could not be enforced: " ^ why))
      in
      match alt.Enforce.stop with
      | V.Run.Crashed c ->
        finish ~alternate:alt ~states_differ
          (CSpecViol (Some (V.Crash.consequence c), "alternate execution: " ^ V.Crash.to_string c))
      | V.Run.Deadlocked tids ->
        finish ~alternate:alt ~states_differ
          (CSpecViol
             ( Some V.Crash.Cdeadlock,
               Printf.sprintf "alternate execution deadlocks (threads %s)"
                 (String.concat "," (List.map string_of_int tids)) ))
      | V.Run.Out_of_budget -> (
        match alt.Enforce.failure with
        | Some (Enforce.Spin_infinite tid) ->
          finish ~alternate:alt ~states_differ
            (CSpecViol
               ( Some V.Crash.Chang,
                 Printf.sprintf "alternate execution hangs: thread %d spins in a loop no one can exit"
                   tid ))
        | Some (Enforce.Spin_adhoc tid) ->
          single_ord
            (Printf.sprintf "thread %d busy-waits on a flag another thread still writes" tid)
        | Some Enforce.Blocked_by_peer | Some Enforce.Target_finished | None ->
          (* Timed out after enforcement (phase C): discriminate with the
             loop analysis over the whole alternate event stream. *)
          let spinning =
            Loopcheck.spinning_thread ~state:alt.Enforce.final ~events:alt.Enforce.events
              ~default:race.R.second.R.a_tid ()
          in
          if
            Loopcheck.is_infinite_loop ~static ~state:alt.Enforce.final
              ~events:alt.Enforce.events ~spinning
          then
            finish ~alternate:alt ~states_differ
              (CSpecViol (Some V.Crash.Chang, "alternate execution hangs in an infinite loop"))
          else single_ord "alternate execution kept spinning on ad-hoc synchronization")
      | V.Run.Diverged _ -> (
        match alt.Enforce.failure with
        | Some Enforce.Blocked_by_peer ->
          single_ord "the second racing thread can only progress after the first one"
        | Some Enforce.Target_finished ->
          single_ord "the second racing access disappears under the alternate ordering"
        | Some (Enforce.Spin_adhoc tid) ->
          single_ord (Printf.sprintf "thread %d busy-waits on ad-hoc synchronization" tid)
        | Some (Enforce.Spin_infinite tid) ->
          finish ~alternate:alt ~states_differ
            (CSpecViol (Some V.Crash.Chang, Printf.sprintf "thread %d spins forever" tid))
        | None -> single_ord "alternate schedule could not be followed")
      | V.Run.Forked ->
        Error "symbolic fork during a concrete alternate execution"
      | V.Run.Halted ->
        let alt_outputs = V.State.outputs alt.Enforce.final in
        if Symout.concrete_equal primary_outputs alt_outputs then
          finish ~alternate:alt ~states_differ COutSame
        else
          let mismatch =
            (* locate the first differing position for the report *)
            let rec first i = function
              | p :: ps, a :: as_ ->
                if Symout.concrete_equal [ p ] [ a ] then first (i + 1) (ps, as_)
                else
                  Some
                    { Symout.m_index = i;
                      m_site = Some p.V.State.out_site;
                      m_primary = Fmt.str "%a" V.State.pp_output p;
                      m_alternate = Fmt.str "%a" V.State.pp_output a
                    }
              | [], a :: _ ->
                Some
                  { Symout.m_index = i;
                    m_site = Some a.V.State.out_site;
                    m_primary = "(no output)";
                    m_alternate = Fmt.str "%a" V.State.pp_output a
                  }
              | p :: _, [] ->
                Some
                  { Symout.m_index = i;
                    m_site = Some p.V.State.out_site;
                    m_primary = Fmt.str "%a" V.State.pp_output p;
                    m_alternate = "(no output)"
                  }
              | [], [] -> None
            in
            first 0 (primary_outputs, alt_outputs)
          in
          finish ~alternate:alt ~states_differ (COutDiff mismatch)))
