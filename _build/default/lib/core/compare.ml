(** Post-race concrete state comparison — the criterion Record/Replay-
    Analyzer [45] classifies by, reimplemented both as a baseline and to fill
    Table 3's “states same / states differ” columns.

    Compares shared memory (globals and arrays) and the output log of two
    states.  Thread-local registers of unrelated threads are deliberately
    excluded, mirroring the paper's observation that address-level noise
    makes raw comparison fragile — even so, §5.2 shows the criterion
    mispredicts harmfulness on real programs. *)

module V = Portend_vm
open Portend_util.Maps

let values_equal = V.Value.equal

let arrays_equal (a : V.State.arr) (b : V.State.arr) =
  a.V.State.len = b.V.State.len && a.V.State.freed = b.V.State.freed
  && values_equal a.V.State.default b.V.State.default
  &&
  let cell m i = Imap.find_or ~default:m.V.State.default i m.V.State.cells in
  let idxs =
    Iset.union
      (Iset.of_list (Imap.keys a.V.State.cells))
      (Iset.of_list (Imap.keys b.V.State.cells))
  in
  Iset.for_all (fun i -> values_equal (cell a i) (cell b i)) idxs

let outputs_equal a b = Symout.concrete_equal (V.State.outputs a) (V.State.outputs b)

(** Shared-state equality of two machine states. *)
let states_equal (a : V.State.t) (b : V.State.t) =
  Smap.equal values_equal a.V.State.globals b.V.State.globals
  && Smap.equal arrays_equal a.V.State.arrays b.V.State.arrays
  && outputs_equal a b

(** Human-readable first difference, for evidence reports. *)
let first_difference (a : V.State.t) (b : V.State.t) : string option =
  let globals =
    Smap.fold
      (fun k v acc ->
        match acc with
        | Some _ -> acc
        | None ->
          let w = Smap.find_or ~default:(V.Value.of_int 0) k b.V.State.globals in
          if values_equal v w then None
          else Some (Fmt.str "global %s: %a vs %a" k V.Value.pp v V.Value.pp w))
      a.V.State.globals None
  in
  match globals with
  | Some _ as d -> d
  | None ->
    Smap.fold
      (fun k v acc ->
        match acc with
        | Some _ -> acc
        | None -> (
          match Smap.find_opt k b.V.State.arrays with
          | Some w when arrays_equal v w -> None
          | Some _ -> Some (Printf.sprintf "array %s differs" k)
          | None -> Some (Printf.sprintf "array %s missing" k)))
      a.V.State.arrays None
