(** Portend's debugging-aid output (§3.6, Fig 6): a textual report plus the
    replayable ingredients (inputs and schedule) that reproduce a harmful
    race's consequences or an output difference. *)

module V = Portend_vm
module R = Portend_detect.Report

type t = {
  e_race : R.race;
  e_category : Taxonomy.category;
  e_crash : V.Crash.t option;  (** the observed violation, for specViol *)
  e_inputs : (string * int) list;  (** program inputs that reproduce it *)
  e_decisions : int list;  (** schedule prefix up to the race reversal *)
  e_d1 : int;
  e_d2 : int;
  e_mismatch : Symout.mismatch option;  (** for outDiff *)
  e_notes : string list;
}

let make ~race ~category ?crash ?(inputs = []) ?(decisions = []) ?(d1 = -1) ?(d2 = -1) ?mismatch
    ?(notes = []) () =
  { e_race = race;
    e_category = category;
    e_crash = crash;
    e_inputs = inputs;
    e_decisions = decisions;
    e_d1 = d1;
    e_d2 = d2;
    e_mismatch = mismatch;
    e_notes = notes
  }

(** Render a Fig 6-style report. *)
let render (e : t) : string =
  let buf = Buffer.create 256 in
  let race = e.e_race in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  pr "Data race during access to: %s" (Fmt.str "%a" V.Events.pp_loc race.R.r_loc);
  pr "  current thread id: %d: %s" race.R.second.R.a_tid
    (Fmt.str "%a" V.Events.pp_kind race.R.second.R.a_kind);
  pr "  racing thread id: %d: %s" race.R.first.R.a_tid
    (Fmt.str "%a" V.Events.pp_kind race.R.first.R.a_kind);
  pr "  current thread at: %s" (Fmt.str "%a" V.Events.pp_site race.R.second.R.a_site);
  pr "  previous at: %s" (Fmt.str "%a" V.Events.pp_site race.R.first.R.a_site);
  pr "  classification: %s" (Taxonomy.category_to_string e.e_category);
  (match e.e_crash with
  | Some c -> pr "  consequence: %s" (V.Crash.to_string c)
  | None -> ());
  (match e.e_mismatch with
  | Some m -> pr "  output difference: %s" (Fmt.str "%a" Symout.pp_mismatch m)
  | None -> ());
  if e.e_inputs <> [] then
    pr "  reproducing inputs: %s"
      (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) e.e_inputs));
  if e.e_d1 >= 0 then
    pr "  schedule: replay %d decisions, preempt T%d before its access, run T%d to its access"
      e.e_d1 race.R.first.R.a_tid race.R.second.R.a_tid;
  List.iter (fun n -> pr "  note: %s" n) e.e_notes;
  Buffer.contents buf
