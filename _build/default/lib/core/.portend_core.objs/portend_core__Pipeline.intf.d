lib/core/pipeline.mli: Config Evidence Format Portend_detect Portend_lang Portend_vm Taxonomy
