lib/core/symout.ml: Fmt List Portend_solver Portend_vm Printf Stdlib String
