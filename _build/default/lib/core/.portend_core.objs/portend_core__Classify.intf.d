lib/core/classify.mli: Config Evidence Portend_detect Portend_lang Portend_vm Taxonomy
