lib/core/pipeline.ml: Classify Config Evidence Fmt Hashtbl List Portend_detect Portend_lang Portend_util Portend_vm Taxonomy
