lib/core/config.ml:
