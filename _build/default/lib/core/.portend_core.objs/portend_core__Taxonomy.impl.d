lib/core/taxonomy.ml: Fmt Portend_vm Printf
