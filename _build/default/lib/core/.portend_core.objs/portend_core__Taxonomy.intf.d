lib/core/taxonomy.mli: Format Portend_vm
