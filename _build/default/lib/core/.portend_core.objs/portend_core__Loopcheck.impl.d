lib/core/loopcheck.ml: Hashtbl List Option Portend_lang Portend_vm
