lib/core/classify.ml: Config Enforce Evidence Fmt List Locate Multipath Portend_detect Portend_lang Portend_util Portend_vm Printf Single Symout Taxonomy
