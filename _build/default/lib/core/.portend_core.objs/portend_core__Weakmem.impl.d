lib/core/weakmem.ml: List Portend_lang Portend_vm
