lib/core/multipath.ml: Array Config List Locate Portend_detect Portend_lang Portend_solver Portend_util Portend_vm
