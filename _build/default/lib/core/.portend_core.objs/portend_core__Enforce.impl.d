lib/core/enforce.ml: List Loopcheck Portend_detect Portend_lang Portend_vm
