lib/core/compare.ml: Fmt Imap Iset Portend_util Portend_vm Printf Smap Symout
