lib/core/config.mli:
