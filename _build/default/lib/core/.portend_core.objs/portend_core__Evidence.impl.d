lib/core/evidence.ml: Buffer Fmt List Portend_detect Portend_vm Printf String Symout Taxonomy
