lib/core/evidence.mli: Portend_detect Portend_vm Symout Taxonomy
