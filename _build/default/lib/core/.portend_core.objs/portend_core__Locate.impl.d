lib/core/locate.ml: List Portend_detect Portend_lang Portend_util Portend_vm Printf
