lib/core/weakmem.mli: Portend_lang Portend_vm
