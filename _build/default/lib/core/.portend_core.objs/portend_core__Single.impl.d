lib/core/single.ml: Compare Config Enforce Fmt List Locate Loopcheck Portend_detect Portend_lang Portend_vm Printf String Symout
