(** Weak-memory-consistency checking — the §6 extension the paper sketches
    via adversarial memory [17].

    Under the VM's adversarial memory model a shared-global load forks over
    the recently overwritten values; exhaustive (bounded) exploration of
    those behaviours surfaces violations that sequential consistency cannot
    produce — e.g. double-checked locking observing the flag before the
    data. *)

type outcome = {
  crashes : (Portend_vm.Crash.t * int) list;
      (** distinct violations with the step they occurred at *)
  executions : int;  (** complete executions explored *)
  truncated : bool;  (** did exploration hit its budget? *)
}

(** Explore the program's behaviours under adversarial memory of the given
    history [depth] (depth 0 = sequential consistency). *)
val explore : ?depth:int -> ?max_states:int -> Portend_lang.Bytecode.t -> outcome

(** Violations reachable under weak memory but {e not} under sequential
    consistency. *)
val weak_only_crashes :
  ?depth:int -> ?max_states:int -> Portend_lang.Bytecode.t -> Portend_vm.Crash.t list
