(** “Basic” specification violations (§3.5): program faults the VM detects on
    its own, without developer-provided predicates. *)

type t =
  | Out_of_bounds of { arr : string; index : int; len : int }
  | Division_by_zero
  | Double_free of string
  | Use_after_free of string
  | Invalid_unlock of string  (** unlocking a mutex the thread does not own *)
  | Assertion_failure of string
  | Deadlock of int list  (** all live threads blocked; tids listed *)
  | Infinite_loop of { tid : int; func : string }
      (** a loop whose exit condition no live thread can change (§3.5, [60]) *)

let pp fmt = function
  | Out_of_bounds { arr; index; len } ->
    Fmt.pf fmt "out-of-bounds access: %s[%d] (length %d)" arr index len
  | Division_by_zero -> Fmt.string fmt "division by zero"
  | Double_free a -> Fmt.pf fmt "double free of %s" a
  | Use_after_free a -> Fmt.pf fmt "use after free of %s" a
  | Invalid_unlock m -> Fmt.pf fmt "unlock of un-owned mutex %s" m
  | Assertion_failure msg -> Fmt.pf fmt "assertion failure: %s" msg
  | Deadlock tids -> Fmt.pf fmt "deadlock between threads %a" Fmt.(list ~sep:comma int) tids
  | Infinite_loop { tid; func } -> Fmt.pf fmt "infinite loop in thread %d (%s)" tid func

let to_string c = Fmt.str "%a" pp c

(** Collapse to the Table 2 consequence buckets. *)
type consequence =
  | Ccrash
  | Cdeadlock
  | Chang
  | Csemantic

let consequence = function
  | Out_of_bounds _ | Division_by_zero | Double_free _ | Use_after_free _ | Invalid_unlock _ ->
    Ccrash
  | Deadlock _ -> Cdeadlock
  | Infinite_loop _ -> Chang
  | Assertion_failure _ -> Csemantic

let consequence_to_string = function
  | Ccrash -> "crash"
  | Cdeadlock -> "deadlock"
  | Chang -> "hang"
  | Csemantic -> "semantic"
