(** Runtime values: concrete integers or symbolic expressions.

    The VM interprets concretely and symbolically with the same code path
    (like KLEE): operators build symbolic expression trees whenever an
    operand is symbolic, and the {!Portend_solver.Simplify} pass folds pure
    concrete computation back to constants. *)

module Expr = Portend_solver.Expr
module Simplify = Portend_solver.Simplify

type t =
  | Con of int
  | Sym of Expr.t

let of_int n = Con n

let of_expr e =
  match Simplify.simplify e with
  | Expr.Const n -> Con n
  | e -> Sym e

let to_expr = function Con n -> Expr.Const n | Sym e -> e
let is_concrete = function Con _ -> true | Sym _ -> false

exception Division_by_zero_value
(** Raised on a concrete division by zero; the interpreter turns it into a
    crash.  Symbolic divisions by a possibly-zero divisor are forked by the
    interpreter before the operator is applied. *)

let binop op a b =
  match (a, b) with
  | Con x, Con y -> (
    match Expr.apply_binop op x y with
    | n -> Con n
    | exception Division_by_zero -> raise Division_by_zero_value)
  | _, _ -> of_expr (Simplify.binop op (to_expr a) (to_expr b))

let unop op a =
  match a with
  | Con x -> Con (Expr.apply_unop op x)
  | Sym e -> of_expr (Simplify.unop op e)

type truth =
  | True
  | False
  | Unknown of Expr.t  (** depends on symbolic inputs; the expression is the
                           normalized boolean condition *)

let truth = function
  | Con n -> if n <> 0 then True else False
  | Sym e -> (
    match Simplify.truthy e with
    | Expr.Const n -> if n <> 0 then True else False
    | e -> Unknown e)

let pp fmt = function Con n -> Fmt.int fmt n | Sym e -> Fmt.pf fmt "⟨%a⟩" Expr.pp e
let to_string v = Fmt.str "%a" pp v
let equal a b = match (a, b) with Con x, Con y -> x = y | _, _ -> Expr.equal (to_expr a) (to_expr b)
