(** Runtime values: concrete integers or symbolic expressions.

    The VM interprets concretely and symbolically through the same code path
    (like KLEE): operators build expression trees whenever an operand is
    symbolic, and simplification folds pure concrete computation back to
    constants. *)

type t =
  | Con of int
  | Sym of Portend_solver.Expr.t

val of_int : int -> t

(** Simplify and inject; a constant expression becomes [Con]. *)
val of_expr : Portend_solver.Expr.t -> t

val to_expr : t -> Portend_solver.Expr.t
val is_concrete : t -> bool

exception Division_by_zero_value
(** Raised on a concrete division by zero; the interpreter turns it into a
    crash.  Symbolic divisions by a possibly-zero divisor are forked by the
    interpreter before the operator is applied. *)

val binop : Portend_solver.Expr.binop -> t -> t -> t
val unop : Portend_solver.Expr.unop -> t -> t

type truth =
  | True
  | False
  | Unknown of Portend_solver.Expr.t
      (** depends on symbolic inputs; carries the normalized boolean
          condition *)

(** Three-valued truthiness, for branching. *)
val truth : t -> truth

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Concrete equality, or structural equality of the symbolic forms. *)
val equal : t -> t -> bool
