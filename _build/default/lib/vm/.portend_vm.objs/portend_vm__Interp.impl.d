lib/vm/interp.ml: Array Crash Events Fmt List Option Portend_lang Portend_solver Portend_util Printf State Value
