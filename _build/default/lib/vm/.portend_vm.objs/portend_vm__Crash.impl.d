lib/vm/crash.ml: Fmt
