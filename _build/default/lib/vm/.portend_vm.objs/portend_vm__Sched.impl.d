lib/vm/sched.ml: List Portend_util State
