lib/vm/sched.mli: State
