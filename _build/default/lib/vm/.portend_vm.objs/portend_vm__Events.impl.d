lib/vm/events.ml: Fmt
