lib/vm/trace.mli: Format Portend_util
