lib/vm/value.mli: Format Portend_solver
