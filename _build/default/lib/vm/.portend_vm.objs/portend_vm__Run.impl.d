lib/vm/run.ml: Crash Events Interp List Portend_lang Printf Sched State String Trace Value
