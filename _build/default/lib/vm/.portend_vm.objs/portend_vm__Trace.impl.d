lib/vm/trace.ml: Fmt List Portend_util Printf String
