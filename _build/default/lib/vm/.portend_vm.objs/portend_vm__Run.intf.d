lib/vm/run.mli: Crash Events Sched State Trace
