lib/vm/value.ml: Fmt Portend_solver
