lib/vm/state.ml: Array Events Fmt Imap List Option Portend_lang Portend_solver Portend_util Printf Smap Value
