(** Cooperative single-processor thread schedulers (§3.1, §6).

    A scheduler is consulted at every {e decision point}: just before a
    thread would execute a preemption-point instruction (a synchronization
    operation or a shared-memory access), and whenever the current thread
    blocks or finishes.  Schedulers are pure values that return their own
    continuation, so runs are replayable and forkable. *)

type t = {
  name : string;
  pick : State.t -> int list -> (int * t) option;
      (** [pick state runnable]: choose the next thread among [runnable]
          (non-empty, ascending).  [None] means the scheduler has no
          decision left (only meaningful for trace replay). *)
}

(** Round-robin over tids, starting after the last scheduled thread. *)
val round_robin : t

(** Uniformly random choice, deterministic in the seed. *)
val random : seed:int -> t

(** Replay a recorded decision list verbatim; [None] once exhausted. *)
val of_decisions : int list -> t

(** Replay a prefix, then continue with [next]. *)
val prefix_then : int list -> t -> t

(** Follow a recorded decision list, skipping entries whose thread is no
    longer runnable (tolerated divergence, §3.3), then fall back. *)
val of_decisions_tolerant : int list -> fallback:t -> t

(** Always run [tid] while it is runnable; otherwise consult [fallback].
    Used to drive one racing thread toward its racy access. *)
val directed : int -> fallback:t -> t
