(** Execution driver: slices (scheduler quanta) and whole-program runs.

    [slice] advances one thread from a decision point to the next; the
    classifier's exploration drives slices directly (it must inspect events
    and steer around racy accesses).  [run] is the convenience loop used for
    recording executions, straight replays, and baseline analyses. *)

type slice_end =
  | End_decision  (** the thread's next instruction is a preemption point *)
  | End_paused  (** the thread blocked or finished *)
  | End_crashed of Crash.t

type sliced = {
  s_state : State.t;
  s_events : Events.t list;  (** chronological, this slice only *)
  s_end : slice_end;
}

(** Is the thread's next instruction a preemption point (sync operation or
    shared access)? *)
val is_preemption : State.t -> int -> bool

(** Run [tid] until the next decision point.  Returns one sliced state per
    symbolic fork branch encountered along the way (usually exactly one). *)
val slice : ?fuel:int -> State.t -> int -> sliced list

type stop =
  | Halted  (** every thread finished *)
  | Crashed of Crash.t
  | Deadlocked of int list
  | Out_of_budget
  | Diverged of string  (** replay could not follow the recorded schedule *)
  | Forked  (** hit a symbolic fork under a driver that expects concrete runs *)

type result = {
  final : State.t;
  stop : stop;
  events : Events.t list;  (** chronological, whole run *)
  trace : Trace.t;  (** the decisions actually taken *)
}

(** Drive the program with [sched] until it halts, crashes, deadlocks, or
    exhausts [budget] instructions. *)
val run : sched:Sched.t -> ?budget:int -> State.t -> result

val stop_to_string : stop -> string
