(** Execution events emitted by the interpreter.

    The happens-before race detector, the deadlock detector and the
    classifier's schedule-steering all consume this stream; it is Portend's
    equivalent of the instrumentation KLEE/Cloud9 hooks provide. *)

type access_kind =
  | Read
  | Write

type loc =
  | Lglobal of string
  | Larray of string * int  (** per-cell: arrays race cell-wise *)
  | Lmeta of string  (** array allocation metadata, touched by [free] *)

type site = {
  func : string;
  pc : int;
}
(** A static program location (the “program counter” of trace notation). *)

type t =
  | Access of { tid : int; site : site; loc : loc; kind : access_kind; step : int }
  | Lock_acquired of { tid : int; mutex : string; step : int }
  | Lock_released of { tid : int; mutex : string; step : int }
  | Thread_spawned of { parent : int; child : int; step : int }
  | Thread_joined of { tid : int; child : int; step : int }
  | Cond_waiting of { tid : int; cond : string; step : int }
  | Cond_signalled of { tid : int; cond : string; woken : int list; step : int }
  | Barrier_crossed of { barrier : string; tids : int list; step : int }
  | Outputted of { tid : int; site : site; step : int }

let pp_loc fmt = function
  | Lglobal v -> Fmt.string fmt v
  | Larray (a, i) -> Fmt.pf fmt "%s[%d]" a i
  | Lmeta a -> Fmt.pf fmt "meta(%s)" a

let pp_site fmt { func; pc } = Fmt.pf fmt "%s:%d" func pc

let pp_kind fmt = function Read -> Fmt.string fmt "READ" | Write -> Fmt.string fmt "WRITE"

let pp fmt = function
  | Access { tid; site; loc; kind; step } ->
    Fmt.pf fmt "[%d] T%d %a %a @%a" step tid pp_kind kind pp_loc loc pp_site site
  | Lock_acquired { tid; mutex; step } -> Fmt.pf fmt "[%d] T%d acquire %s" step tid mutex
  | Lock_released { tid; mutex; step } -> Fmt.pf fmt "[%d] T%d release %s" step tid mutex
  | Thread_spawned { parent; child; step } -> Fmt.pf fmt "[%d] T%d spawn T%d" step parent child
  | Thread_joined { tid; child; step } -> Fmt.pf fmt "[%d] T%d join T%d" step tid child
  | Cond_waiting { tid; cond; step } -> Fmt.pf fmt "[%d] T%d wait %s" step tid cond
  | Cond_signalled { tid; cond; woken; step } ->
    Fmt.pf fmt "[%d] T%d signal %s -> %a" step tid cond Fmt.(list ~sep:comma int) woken
  | Barrier_crossed { barrier; tids; step } ->
    Fmt.pf fmt "[%d] barrier %s crossed by %a" step barrier Fmt.(list ~sep:comma int) tids
  | Outputted { tid; site; step } -> Fmt.pf fmt "[%d] T%d output @%a" step tid pp_site site
