(** Algebraic simplification of symbolic expressions.

    The VM simplifies every expression it builds, which keeps path conditions
    and symbolic outputs small: most intermediate expressions over concrete
    operands fold back to constants, so symbolic trees only grow where a
    symbolic input genuinely flows. *)

open Expr

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Unop (op, a) -> simplify_unop op (simplify a)
  | Binop (op, a, b) -> simplify_binop op (simplify a) (simplify b)
  | Ite (c, t, f) -> (
    let c = simplify c and t = simplify t and f = simplify f in
    match c with
    | Const n -> if n <> 0 then t else f
    | Var _ | Unop _ | Binop _ | Ite _ -> if equal t f then t else Ite (c, t, f))

and simplify_unop op a =
  match (op, a) with
  | Neg, Const n -> Const (-n)
  | Neg, Unop (Neg, e) -> e
  | Lnot, Const n -> Const (int_of_bool (n = 0))
  | Lnot, Unop (Lnot, Unop (Lnot, e)) -> Unop (Lnot, e)
  (* !(a == b) -> a != b and friends: keeps comparisons at the root where the
     interval solver can narrow them. *)
  | Lnot, Binop (Eq, x, y) -> Binop (Ne, x, y)
  | Lnot, Binop (Ne, x, y) -> Binop (Eq, x, y)
  | Lnot, Binop (Lt, x, y) -> Binop (Ge, x, y)
  | Lnot, Binop (Le, x, y) -> Binop (Gt, x, y)
  | Lnot, Binop (Gt, x, y) -> Binop (Le, x, y)
  | Lnot, Binop (Ge, x, y) -> Binop (Lt, x, y)
  | (Neg | Lnot), _ -> Unop (op, a)

and simplify_binop op a b =
  match (op, a, b) with
  | _, Const x, Const y -> (
    match apply_binop op x y with
    | n -> Const n
    | exception Division_by_zero -> Binop (op, a, b))
  | Add, e, Const 0 | Add, Const 0, e -> e
  | Sub, e, Const 0 -> e
  | Sub, e1, e2 when equal e1 e2 -> Const 0
  | Mul, _, Const 0 | Mul, Const 0, _ -> Const 0
  | Mul, e, Const 1 | Mul, Const 1, e -> e
  | Div, e, Const 1 -> e
  | Land, e, Const c | Land, Const c, e ->
    if c = 0 then Const 0 else Binop (Ne, e, Const 0) |> norm_truth e
  | Lor, e, Const c | Lor, Const c, e ->
    if c <> 0 then Const 1 else Binop (Ne, e, Const 0) |> norm_truth e
  | (Eq | Le | Ge), e1, e2 when equal e1 e2 -> Const 1
  | (Ne | Lt | Gt), e1, e2 when equal e1 e2 -> Const 0
  (* (x + c1) `cmp` c2  ->  x `cmp` (c2 - c1): normalizes branch conditions. *)
  | (Eq | Ne | Lt | Le | Gt | Ge), Binop (Add, x, Const c1), Const c2 ->
    Binop (op, x, Const (c2 - c1))
  | (Eq | Ne | Lt | Le | Gt | Ge), Binop (Sub, x, Const c1), Const c2 ->
    Binop (op, x, Const (c2 + c1))
  | _, _, _ -> Binop (op, a, b)

(* If [e] is already a 0/1-valued expression, [e != 0] is just [e]. *)
and norm_truth orig = function
  | Binop (Ne, e, Const 0) when is_boolean e -> e
  | other -> ignore orig; other

and is_boolean = function
  | Const (0 | 1) -> true
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | Land | Lor), _, _) -> true
  | Unop (Lnot, _) -> true
  | Ite (_, t, f) -> is_boolean t && is_boolean f
  | Const _ | Var _ | Unop (Neg, _) | Binop ((Add | Sub | Mul | Div | Rem), _, _) -> false

(** Build-and-simplify constructors used by the VM. *)
let unop op a = simplify_unop op a

let binop op a b = simplify_binop op a b
let ite c t f = simplify (Ite (c, t, f))

(** Truthiness of an expression as a normalized boolean expression. *)
let truthy e = if is_boolean e then e else binop Ne e (Const 0)

(** Negated truthiness. *)
let falsy e = simplify (Unop (Lnot, truthy e))
