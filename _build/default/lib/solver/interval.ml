(** Integer interval domain with forward evaluation and backward (HC4-style)
    narrowing.  This is the abstract domain behind {!Solver}. *)

(* Bounds are plain ints clamped to +/- [big] so that interval arithmetic can
   never overflow OCaml's native ints.  Program values in Racelang workloads
   are tiny compared to [big]. *)
let big = 1 lsl 50

let clamp n = if n > big then big else if n < -big then -big else n

type t = { lo : int; hi : int }
(** Inclusive, non-empty by construction: emptiness is [None] at the API. *)

let make lo hi = if lo > hi then None else Some { lo = clamp lo; hi = clamp hi }
let singleton n = { lo = clamp n; hi = clamp n }
let top = { lo = -big; hi = big }
let is_singleton iv = iv.lo = iv.hi
let mem n iv = iv.lo <= n && n <= iv.hi
let width iv = iv.hi - iv.lo
let pp fmt iv = Fmt.pf fmt "[%d,%d]" iv.lo iv.hi

let meet a b = make (max a.lo b.lo) (min a.hi b.hi)
let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

(* Interval holding exactly the booleans. *)
let bool_iv = { lo = 0; hi = 1 }

let neg iv = { lo = clamp (-iv.hi); hi = clamp (-iv.lo) }
let add a b = { lo = clamp (a.lo + b.lo); hi = clamp (a.hi + b.hi) }
let sub a b = add a (neg b)

let mul a b =
  let p1 = a.lo * b.lo and p2 = a.lo * b.hi and p3 = a.hi * b.lo and p4 = a.hi * b.hi in
  { lo = clamp (min (min p1 p2) (min p3 p4)); hi = clamp (max (max p1 p2) (max p3 p4)) }

(* Conservative: exact when the divisor interval excludes zero, [top]-ish
   otherwise (the VM flags an actual division by zero as a crash before the
   solver ever sees it). *)
let div a b =
  if b.lo <= 0 && b.hi >= 0 then top
  else
    let q1 = a.lo / b.lo and q2 = a.lo / b.hi and q3 = a.hi / b.lo and q4 = a.hi / b.hi in
    { lo = clamp (min (min q1 q2) (min q3 q4)); hi = clamp (max (max q1 q2) (max q3 q4)) }

let rem a b =
  if b.lo <= 0 && b.hi >= 0 then top
  else
    let m = max (abs b.lo) (abs b.hi) - 1 in
    let lo = if a.lo < 0 then -m else 0 and hi = if a.hi > 0 then m else 0 in
    { lo; hi }

(* Forward abstract comparisons: refine to a singleton when the argument
   intervals decide the comparison, else the full boolean interval. *)
let cmp_eq a b =
  if is_singleton a && is_singleton b && a.lo = b.lo then singleton 1
  else if a.hi < b.lo || b.hi < a.lo then singleton 0
  else bool_iv

let cmp_lt a b = if a.hi < b.lo then singleton 1 else if a.lo >= b.hi then singleton 0 else bool_iv
let cmp_le a b = if a.hi <= b.lo then singleton 1 else if a.lo > b.hi then singleton 0 else bool_iv

let lnot iv =
  if is_singleton iv && iv.lo = 0 then singleton 1 else if not (mem 0 iv) then singleton 0 else bool_iv

let land_ a b =
  if (is_singleton a && a.lo = 0) || (is_singleton b && b.lo = 0) then singleton 0
  else if (not (mem 0 a)) && not (mem 0 b) then singleton 1
  else bool_iv

let lor_ a b =
  if (not (mem 0 a)) || not (mem 0 b) then singleton 1
  else if is_singleton a && a.lo = 0 && is_singleton b && b.lo = 0 then singleton 0
  else bool_iv

(* Backward narrowers: given that [a op b] must land in [r], narrow [a] and
   [b].  [None] signals an empty (infeasible) result. *)

let bwd_add a b r =
  match (meet a (sub r b), meet b (sub r a)) with
  | Some a', Some b' -> Some (a', b')
  | None, _ | _, None -> None

let bwd_sub a b r =
  (* a - b = r  =>  a in r + b, b in a - r *)
  match (meet a (add r b), meet b (sub a r)) with
  | Some a', Some b' -> Some (a', b')
  | None, _ | _, None -> None

let bwd_neg a r = meet a (neg r)

(* Only narrow multiplication through a nonzero constant factor; anything
   fancier is left to search-by-splitting in the solver. *)
let bwd_mul a b r =
  let narrow_by_const x c =
    if c = 0 then Some x
    else
      let lo = if c > 0 then r.lo else r.hi and hi = if c > 0 then r.hi else r.lo in
      let q_lo = if lo >= 0 then (lo + abs c - 1) / c else lo / c in
      let q_hi = if hi >= 0 then hi / c else (hi - abs c + 1) / c in
      let q_lo, q_hi = if c > 0 then (q_lo, q_hi) else (q_hi, q_lo) in
      meet x { lo = clamp q_lo; hi = clamp q_hi }
  in
  let a' = if is_singleton b then narrow_by_const a b.lo else Some a in
  let b' = if is_singleton a then narrow_by_const b a.lo else Some b in
  match (a', b') with Some a', Some b' -> Some (a', b') | None, _ | _, None -> None

(* Narrow both sides of a comparison that is known to hold. *)
let bwd_lt a b =
  match (make a.lo (min a.hi (b.hi - 1)), make (max b.lo (a.lo + 1)) b.hi) with
  | Some a', Some b' -> Some (a', b')
  | None, _ | _, None -> None

let bwd_le a b =
  match (make a.lo (min a.hi b.hi), make (max b.lo a.lo) b.hi) with
  | Some a', Some b' -> Some (a', b')
  | None, _ | _, None -> None

let bwd_eq a b = match meet a b with Some m -> Some (m, m) | None -> None

(* a != b narrows only when one side is a singleton at the other's border. *)
let bwd_ne a b =
  let shave x pt =
    if is_singleton x && x.lo = pt then None
    else if x.lo = pt then make (pt + 1) x.hi
    else if x.hi = pt then make x.lo (pt - 1)
    else Some x
  in
  let a' = if is_singleton b then shave a b.lo else Some a in
  match a' with
  | None -> None
  | Some a' -> (
    let b' = if is_singleton a' then shave b a'.lo else Some b in
    match b' with None -> None | Some b' -> Some (a', b'))
