(** A small SMT-style solver for quantifier-free integer constraints, built
    from interval constraint propagation (HC4 revise) plus branch-and-prune
    splitting.

    It decides satisfiability of path conditions and produces models
    (concrete program inputs) — the service KLEE's solver provides to
    Portend in the paper: multi-path analysis solves a path condition to
    obtain inputs that drive the program to the race (§3.3), and symbolic
    output comparison asks whether a concrete alternate output is allowed by
    the primary's symbolic output constraints (§3.3.1). *)

type model = int Portend_util.Maps.Smap.t
(** A satisfying assignment for the symbolic variables. *)

type result =
  | Sat of model
  | Unsat
  | Unknown  (** search budget exhausted before a decision *)

(** [solve ~ranges constraints] decides the conjunction of [constraints]
    (each required truthy, i.e. nonzero).  [ranges] gives inclusive bounds
    per variable (symbolic inputs carry their declared range); unlisted
    variables default to a wide conservative range.  [budget] bounds the
    number of search-tree nodes. *)
val solve :
  ?ranges:(string * int * int) list -> ?budget:int -> Expr.t list -> result

(** [sat constraints]: does a model exist?  [Unknown] counts as [false]. *)
val sat : ?ranges:(string * int * int) list -> ?budget:int -> Expr.t list -> bool

(** Does the model satisfy every constraint (by concrete evaluation)? *)
val check_model : model -> Expr.t list -> bool

val pp_model : Format.formatter -> model -> unit
