(** A small SMT-style solver for quantifier-free integer constraints, built
    from interval constraint propagation (HC4 revise) plus branch-and-prune
    splitting.  It decides satisfiability of path conditions and produces
    models (concrete program inputs), which is exactly the service KLEE's
    solver provides to Portend in the paper:

    - multi-path analysis solves a path condition to obtain concrete inputs
      that drive the program to the race (§3.3), and
    - symbolic output comparison asks whether a concrete alternate output is
      allowed by the primary's symbolic output constraints (§3.3.1). *)

open Portend_util.Maps

type model = int Smap.t

type result =
  | Sat of model
  | Unsat
  | Unknown  (** search budget exhausted before a decision *)

(* Environment: an interval per symbolic variable. *)
type env = Interval.t Smap.t

(* Symbolic inputs carry their declared range; variables that somehow escape
   a declaration get this conservative default. *)
let default_range = Interval.{ lo = -65536; hi = 65535 }

let env_find v (env : env) = Smap.find_or ~default:default_range v env

let rec fwd env e : Interval.t =
  match e with
  | Expr.Const n -> Interval.singleton n
  | Expr.Var v -> env_find v env
  | Expr.Unop (Neg, a) -> Interval.neg (fwd env a)
  | Expr.Unop (Lnot, a) -> Interval.lnot (fwd env a)
  | Expr.Binop (op, a, b) -> (
    let fa = fwd env a and fb = fwd env b in
    match op with
    | Add -> Interval.add fa fb
    | Sub -> Interval.sub fa fb
    | Mul -> Interval.mul fa fb
    | Div -> Interval.div fa fb
    | Rem -> Interval.rem fa fb
    | Eq -> Interval.cmp_eq fa fb
    | Ne -> Interval.lnot (Interval.cmp_eq fa fb)
    | Lt -> Interval.cmp_lt fa fb
    | Le -> Interval.cmp_le fa fb
    | Gt -> Interval.cmp_lt fb fa
    | Ge -> Interval.cmp_le fb fa
    | Land -> Interval.land_ fa fb
    | Lor -> Interval.lor_ fa fb)
  | Expr.Ite (c, t, f) -> (
    let fc = fwd env c in
    if not (Interval.mem 0 fc) then fwd env t
    else if Interval.is_singleton fc && fc.Interval.lo = 0 then fwd env f
    else Interval.join (fwd env t) (fwd env f))

(* Backward narrowing: refine [env] under the requirement that [e] evaluates
   into [r].  [None] means the requirement is infeasible in this box. *)
let rec bwd env e (r : Interval.t) : env option =
  match Interval.meet (fwd env e) r with
  | None -> None
  | Some r -> (
    match e with
    | Expr.Const _ -> Some env
    | Expr.Var v -> (
      match Interval.meet (env_find v env) r with
      | None -> None
      | Some iv -> Some (Smap.add v iv env))
    | Expr.Unop (Neg, a) -> bwd env a (Interval.neg r)
    | Expr.Unop (Lnot, a) ->
      if Interval.is_singleton r then
        if r.Interval.lo = 1 then bwd env a (Interval.singleton 0) else bwd_truthy env a
      else Some env
    | Expr.Binop (op, a, b) -> bwd_binop env op a b r
    | Expr.Ite (c, t, f) -> (
      let fc = fwd env c in
      if not (Interval.mem 0 fc) then bwd env t r
      else if Interval.is_singleton fc && fc.Interval.lo = 0 then bwd env f r
      else
        (* Condition undecided: prune only if neither branch can hit [r]. *)
        let t_ok = Interval.meet (fwd env t) r <> None in
        let f_ok = Interval.meet (fwd env f) r <> None in
        match (t_ok, f_ok) with
        | false, false -> None
        | true, false -> Option.bind (bwd_truthy env c) (fun env -> bwd env t r)
        | false, true -> Option.bind (bwd_falsy env c) (fun env -> bwd env f r)
        | true, true -> Some env))

and bwd_binop env op a b r =
  let fa = fwd env a and fb = fwd env b in
  let narrow2 pair =
    match pair with
    | None -> None
    | Some (a', b') -> Option.bind (bwd env a a') (fun env -> bwd env b b')
  in
  let when_true pair_if_true pair_if_false =
    if Interval.is_singleton r then
      if r.Interval.lo = 1 then narrow2 (pair_if_true ())
      else if r.Interval.lo = 0 then narrow2 (pair_if_false ())
      else None
    else Some env
  in
  match op with
  | Expr.Add -> narrow2 (Interval.bwd_add fa fb r)
  | Expr.Sub -> narrow2 (Interval.bwd_sub fa fb r)
  | Expr.Mul -> narrow2 (Interval.bwd_mul fa fb r)
  | Expr.Div | Expr.Rem -> Some env
  | Expr.Eq -> when_true (fun () -> Interval.bwd_eq fa fb) (fun () -> Interval.bwd_ne fa fb)
  | Expr.Ne -> when_true (fun () -> Interval.bwd_ne fa fb) (fun () -> Interval.bwd_eq fa fb)
  | Expr.Lt -> when_true (fun () -> Interval.bwd_lt fa fb) (fun () -> Interval.bwd_le fb fa |> swap)
  | Expr.Le -> when_true (fun () -> Interval.bwd_le fa fb) (fun () -> Interval.bwd_lt fb fa |> swap)
  | Expr.Gt -> when_true (fun () -> Interval.bwd_lt fb fa |> swap) (fun () -> Interval.bwd_le fa fb)
  | Expr.Ge -> when_true (fun () -> Interval.bwd_le fb fa |> swap) (fun () -> Interval.bwd_lt fa fb)
  | Expr.Land ->
    if Interval.is_singleton r && r.Interval.lo = 1 then
      Option.bind (bwd_truthy env a) (fun env -> bwd_truthy env b)
    else if Interval.is_singleton r && r.Interval.lo = 0 then
      (* a && b = 0: narrow only when one side is definitely true. *)
      let ta = not (Interval.mem 0 fa) and tb = not (Interval.mem 0 fb) in
      if ta && tb then None
      else if ta then bwd_falsy env b
      else if tb then bwd_falsy env a
      else Some env
    else Some env
  | Expr.Lor ->
    if Interval.is_singleton r && r.Interval.lo = 0 then
      Option.bind (bwd_falsy env a) (fun env -> bwd_falsy env b)
    else if Interval.is_singleton r && r.Interval.lo = 1 then
      let za = Interval.is_singleton fa && fa.Interval.lo = 0 in
      let zb = Interval.is_singleton fb && fb.Interval.lo = 0 in
      if za && zb then None else if za then bwd_truthy env b else if zb then bwd_truthy env a
      else Some env
    else Some env

and swap = function Some (a, b) -> Some (b, a) | None -> None
and bwd_truthy env e = bwd env (Simplify.truthy e) (Interval.singleton 1)
and bwd_falsy env e = bwd env (Simplify.truthy e) (Interval.singleton 0)

(* Run narrowing over all constraints to a fixpoint (bounded). *)
let propagate env constraints =
  let rec go env rounds =
    if rounds = 0 then Some env
    else
      let step =
        List.fold_left
          (fun acc c -> Option.bind acc (fun env -> bwd_truthy env c))
          (Some env) constraints
      in
      match step with
      | None -> None
      | Some env' -> if Smap.equal (fun a b -> a = b) env env' then Some env' else go env' (rounds - 1)
  in
  go env 24

let check_model model constraints =
  let lookup v = match Smap.find_opt v model with Some n -> n | None -> 0 in
  let holds c = match Expr.eval lookup c with n -> n <> 0 | exception Division_by_zero -> false in
  List.for_all holds constraints

let candidate_points (iv : Interval.t) =
  let pts = [ iv.Interval.lo; iv.Interval.hi ] in
  let pts = if Interval.mem 0 iv then 0 :: pts else pts in
  let mid = (iv.Interval.lo + iv.Interval.hi) / 2 in
  List.sort_uniq compare (mid :: pts)

(* Try a few corner models of the current box before splitting. *)
let try_candidates env vars constraints =
  let rec build acc = function
    | [] -> [ acc ]
    | v :: rest ->
      let iv = env_find v env in
      (* Limit the cartesian blowup: one point per variable beyond the first
         two variables. *)
      let pts =
        if List.length acc <= 2 then candidate_points iv else [ iv.Interval.lo ]
      in
      List.concat_map (fun p -> build ((v, p) :: acc) rest) pts
  in
  let models = build [] vars |> List.map Smap.of_list in
  List.find_opt (fun m -> check_model m constraints) models

let solve ?(ranges = []) ?(budget = 4096) (constraints : Expr.t list) : result =
  let constraints = List.map Simplify.simplify constraints |> List.map Simplify.truthy in
  if List.exists (fun c -> c = Expr.Const 0) constraints then Unsat
  else
    let constraints = List.filter (fun c -> c <> Expr.Const 1) constraints in
    let vars =
      List.fold_left Expr.free_vars Portend_util.Maps.Sset.empty constraints
      |> Portend_util.Maps.Sset.elements
    in
    let env0 =
      List.fold_left
        (fun env (v, lo, hi) -> Smap.add v Interval.{ lo; hi } env)
        Smap.empty ranges
    in
    let steps = ref budget in
    let rec search env =
      if !steps <= 0 then Unknown
      else begin
        decr steps;
        match propagate env constraints with
        | None -> Unsat
        | Some env -> (
          match try_candidates env vars constraints with
          | Some m ->
            (* Complete the model with defaults for vars the constraints do
               not mention (callers may look them up). *)
            Sat m
          | None ->
            (* Split the widest variable. *)
            let widest =
              List.fold_left
                (fun best v ->
                  let iv = env_find v env in
                  match best with
                  | Some (_, w) when w >= Interval.width iv -> best
                  | _ when Interval.width iv = 0 -> best
                  | _ -> Some (v, Interval.width iv))
                None vars
            in
            match widest with
            | None -> Unsat (* every var is a singleton and candidates failed *)
            | Some (v, _) -> (
              let iv = env_find v env in
              let mid = (iv.Interval.lo + iv.Interval.hi) / 2 in
              let left = Smap.add v Interval.{ lo = iv.Interval.lo; hi = mid } env in
              let right = Smap.add v Interval.{ lo = mid + 1; hi = iv.Interval.hi } env in
              match search left with
              | Sat m -> Sat m
              | Unsat -> search right
              | Unknown -> ( match search right with Sat m -> Sat m | Unsat | Unknown -> Unknown)))
      end
    in
    if vars = [] then if constraints = [] then Sat Smap.empty else Unsat
    else search env0

(** [sat constraints] = does a model exist? (Unknown counts as unsat-ish
    [false] for classification purposes; callers that care distinguish via
    {!solve}.) *)
let sat ?ranges ?budget constraints =
  match solve ?ranges ?budget constraints with Sat _ -> true | Unsat | Unknown -> false

let pp_model fmt (m : model) =
  let items = Smap.bindings m in
  Fmt.pf fmt "{%a}" Fmt.(list ~sep:(any "; ") (pair ~sep:(any "=") string int)) items
