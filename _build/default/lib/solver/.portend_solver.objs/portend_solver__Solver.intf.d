lib/solver/solver.mli: Expr Format Portend_util
