lib/solver/expr.mli: Format Portend_util
