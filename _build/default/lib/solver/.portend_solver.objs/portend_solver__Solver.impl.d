lib/solver/solver.ml: Expr Fmt Interval List Option Portend_util Simplify Smap
