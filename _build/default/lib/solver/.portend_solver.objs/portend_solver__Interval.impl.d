lib/solver/interval.ml: Fmt
