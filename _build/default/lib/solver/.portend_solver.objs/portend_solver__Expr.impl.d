lib/solver/expr.ml: Fmt Portend_util Stdlib
