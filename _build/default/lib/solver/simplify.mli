(** Algebraic simplification of symbolic expressions.

    The VM simplifies every expression it builds: pure concrete computation
    folds back to constants, so symbolic trees only grow where a symbolic
    input genuinely flows. *)

(** Bottom-up simplification (constant folding, identities, comparison
    normalization). *)
val simplify : Expr.t -> Expr.t

(** Build-and-simplify constructors used by the VM. *)
val unop : Expr.unop -> Expr.t -> Expr.t

val binop : Expr.binop -> Expr.t -> Expr.t -> Expr.t
val ite : Expr.t -> Expr.t -> Expr.t -> Expr.t

(** Is the expression certainly 0/1-valued? *)
val is_boolean : Expr.t -> bool

(** Truthiness of an expression as a normalized boolean expression. *)
val truthy : Expr.t -> Expr.t

(** Negated truthiness. *)
val falsy : Expr.t -> Expr.t
