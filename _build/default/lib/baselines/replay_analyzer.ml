(** Record/Replay-Analyzer [45], the state-of-the-art replay-based race
    classifier the paper compares against (§5.4, Table 5).

    It re-runs the recorded execution, enforces the alternate ordering of
    the racing accesses, and compares the {e concrete post-race state} of
    the primary and alternate interleavings.  Two deliberate weaknesses
    distinguish it from Portend:

    - it does not tolerate replay failures: if the alternate ordering cannot
      be enforced (ad-hoc synchronization, divergence), the race is
      conservatively classified {e likely harmful} — the source of its 74%
      false-positive rate on harmful races;
    - it compares memory state instead of (symbolic) output, so benign
      state differences count as harmful, and input-dependent differences
      beyond the recorded input are missed. *)

module V = Portend_vm
module R = Portend_detect.Report
module Core = Portend_core

type verdict =
  | Likely_harmful of string
  | Likely_harmless

(* Strict enforcement: only the second racing thread may run (no third-party
   progress, no site divergence), exactly as a replayer that demands the
   recorded instruction stream. *)
let enforce_strict ~budget ~race ~(pre_race : V.State.t) ~occurrence =
  let ti = race.R.first.R.a_tid and tj = race.R.second.R.a_tid in
  let site2 = race.R.second.R.a_site in
  let loc_base = R.base_loc race.R.r_loc in
  let abs_budget = pre_race.V.State.steps + budget in
  let rec go st seen =
    if st.V.State.steps >= abs_budget then Error "replay timeout"
    else if V.State.thread_finished st tj then Error "racing thread exited before its access"
    else
      let runnable = V.State.runnable st in
      let next =
        if List.mem tj runnable then Some tj
        else List.find_opt (fun t -> t <> ti) runnable
      in
      match next with
      | None -> Error "racing thread blocked"
      | Some tid -> (
      match V.Run.slice st tid with
      | [ sl ] -> (
        let seen =
          if
            List.exists
              (function
                | V.Events.Access { tid; site; loc; _ } ->
                  tid = tj && site = site2 && R.base_loc loc = loc_base
                | _ -> false)
              sl.V.Run.s_events
          then seen + 1
          else seen
        in
        match sl.V.Run.s_end with
        | V.Run.End_crashed _ -> Error "alternate crashed during enforcement"
        | V.Run.End_decision | V.Run.End_paused ->
          if seen >= occurrence then Ok sl.V.Run.s_state else go sl.V.Run.s_state seen)
      | _ -> Error "fork during replay")
  in
  match go pre_race 0 with
  | Error e -> Error e
  | Ok st -> (
    (* let ti perform its delayed access *)
    let rec finish st =
      if st.V.State.steps >= abs_budget then Error "replay timeout"
      else if not (List.mem ti (V.State.runnable st)) then Error "first thread blocked"
      else
        match V.Run.slice st ti with
        | [ sl ] -> (
          let hit =
            List.exists
              (function
                | V.Events.Access { tid; loc; _ } -> tid = ti && R.base_loc loc = loc_base
                | _ -> false)
              sl.V.Run.s_events
          in
          match sl.V.Run.s_end with
          | V.Run.End_crashed _ -> Error "alternate crashed during enforcement"
          | V.Run.End_decision | V.Run.End_paused ->
            if hit then Ok sl.V.Run.s_state else finish sl.V.Run.s_state)
        | _ -> Error "fork during replay"
    in
    finish st)

(** Classify [race] the Record/Replay-Analyzer way. *)
let classify (prog : Portend_lang.Bytecode.t) (trace : V.Trace.t) (race : R.race) :
    (verdict, string) result =
  match Core.Locate.checkpoints prog trace race with
  | Error e -> Error e
  | Ok ckpts -> (
    let budget = 5 * max 1 ckpts.Core.Locate.primary_steps in
    let occurrence = Core.Locate.second_access_occurrence ckpts race in
    match enforce_strict ~budget ~race ~pre_race:ckpts.Core.Locate.pre_race ~occurrence with
    | Error why -> Ok (Likely_harmful ("replay failure: " ^ why))
    | Ok post_alternate ->
      if Core.Compare.states_equal ckpts.Core.Locate.post_race post_alternate then
        Ok Likely_harmless
      else
        Ok
          (Likely_harmful
             (match
                Core.Compare.first_difference ckpts.Core.Locate.post_race post_alternate
              with
             | Some d -> "post-race states differ: " ^ d
             | None -> "post-race states differ")))

(** The analyzer's verdicts projected onto the four-category taxonomy for
    accuracy scoring: harmful maps to specViol, harmless to k-witness; it
    has no outDiff or singleOrd classes (Table 5 “not-classified”). *)
let as_category = function
  | Likely_harmful _ -> Core.Taxonomy.Spec_violated
  | Likely_harmless -> Core.Taxonomy.K_witness_harmless

let verdict_to_string = function
  | Likely_harmful why -> "likely harmful (" ^ why ^ ")"
  | Likely_harmless -> "likely harmless"
