lib/baselines/replay_analyzer.ml: List Portend_core Portend_detect Portend_lang Portend_vm
