lib/baselines/heuristic.ml: Array Portend_detect Portend_lang Portend_solver Portend_vm
