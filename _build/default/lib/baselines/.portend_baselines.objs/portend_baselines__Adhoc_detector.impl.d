lib/baselines/adhoc_detector.ml: Portend_core Portend_detect Portend_lang Portend_vm
