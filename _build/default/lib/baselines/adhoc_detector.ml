(** Ad-hoc-synchronization-only classifiers — the Helgrind+ [27] and
    Ad-Hoc-Detector [55] family the paper compares against in Table 5.

    These tools recognize busy-wait synchronization and prune the races it
    orders; they classify nothing else.  Following §5.4 we grant them ideal
    recognition (no false positives): a race is “single ordering” exactly
    when the consuming thread cannot reach its access without the other
    thread running — which we test dynamically, like Portend's own
    enforcement, but that is the {e only} analysis they perform. *)

module V = Portend_vm
module R = Portend_detect.Report
module Core = Portend_core

type verdict =
  | Adhoc_synchronized  (** maps to “single ordering” *)
  | Not_classified

let classify (prog : Portend_lang.Bytecode.t) (trace : V.Trace.t) (race : R.race) :
    (verdict, string) result =
  let static = Portend_lang.Static.analyze prog in
  match Core.Single.analyze Core.Config.default ~static prog trace race with
  | Error e -> Error e
  | Ok single -> (
    match single.Core.Single.classification with
    | Core.Single.CSingleOrd _ -> Ok Adhoc_synchronized
    | Core.Single.CSpecViol _ | Core.Single.COutDiff _ | Core.Single.COutSame ->
      Ok Not_classified)

let as_category = function
  | Adhoc_synchronized -> Some Core.Taxonomy.Single_ordering
  | Not_classified -> None

let verdict_to_string = function
  | Adhoc_synchronized -> "ad-hoc synchronization (single ordering)"
  | Not_classified -> "not classified"
