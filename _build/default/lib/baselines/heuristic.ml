(** A DataCollider-style heuristic pruner [29]: recognizes syntactic
    patterns of likely-harmless races without executing anything.

    The paper does not include DataCollider in Table 5 (its heuristics
    rarely fired on these benchmarks); we implement the classifier anyway so
    the test suite can demonstrate both its strengths (cheap, catches
    redundant writes) and the misclassifications heuristics invite (a
    counter update is not always benign). *)

module B = Portend_lang.Bytecode
module R = Portend_detect.Report

type verdict =
  | Benign_redundant_write  (** both sites store the same compile-time constant *)
  | Benign_counter_update  (** the write site is an increment/decrement *)
  | Unknown

(* The store instruction at a site, if any. *)
let store_at (prog : B.t) (site : Portend_vm.Events.site) =
  match B.find_func prog site.Portend_vm.Events.func with
  | None -> None
  | Some f ->
    let pc = site.Portend_vm.Events.pc in
    if pc < Array.length f.B.code then
      match f.B.code.(pc) with
      | B.IStoreG (v, op) -> Some (v, op)
      | _ -> None
    else None

(* Does the function body look like [v := v +/- constant] feeding this
   store?  A one-instruction lookbehind is exactly the kind of shallow
   pattern heuristic classifiers use. *)
let is_counter_update (prog : B.t) (site : Portend_vm.Events.site) =
  match B.find_func prog site.Portend_vm.Events.func with
  | None -> false
  | Some f -> (
    let pc = site.Portend_vm.Events.pc in
    pc >= 2
    &&
    match (f.B.code.(pc), f.B.code.(pc - 1), f.B.code.(pc - 2)) with
    | B.IStoreG (v, B.Reg r), B.IBin (r', op, _, _), B.ILoadG (_, v') ->
      r = r' && v = v' && (op = Portend_solver.Expr.Add || op = Portend_solver.Expr.Sub)
    | _ -> false)

let classify (prog : B.t) (race : R.race) : verdict =
  let s1 = store_at prog race.R.first.R.a_site in
  let s2 = store_at prog race.R.second.R.a_site in
  match (s1, s2) with
  | Some (v1, B.Imm c1), Some (v2, B.Imm c2) when v1 = v2 && c1 = c2 -> Benign_redundant_write
  | _ ->
    if
      is_counter_update prog race.R.first.R.a_site
      || is_counter_update prog race.R.second.R.a_site
    then Benign_counter_update
    else Unknown

let verdict_to_string = function
  | Benign_redundant_write -> "benign (redundant write)"
  | Benign_counter_update -> "benign (counter update)"
  | Unknown -> "unknown"
