(** Wall-clock timing for the pipeline and the benchmark harness.

    [Unix.gettimeofday] gives microsecond resolution; [Sys.time]'s 10 ms
    granularity cannot resolve a single race classification. *)

let now_s () = Unix.gettimeofday ()

(** Time a thunk, returning its result and the elapsed seconds. *)
let timed f =
  let t0 = now_s () in
  let v = f () in
  (v, now_s () -. t0)
