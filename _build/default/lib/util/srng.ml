(** Deterministic splittable pseudo-random number generator (splitmix64).

    All randomized components of Portend (multi-schedule exploration,
    randomized schedulers) draw from this generator so that every experiment
    is reproducible bit-for-bit across runs.  The generator is a pure value:
    drawing returns the drawn number and the next generator state. *)

type t = { state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let of_seed seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  let state = Int64.add t.state golden_gamma in
  (mix state, { state })

(* A non-negative int drawn from the top 62 bits. *)
let next_int t =
  let v, t = next64 t in
  (Int64.to_int (Int64.shift_right_logical v 2), t)

let int ~bound t =
  if bound <= 0 then invalid_arg "Srng.int: bound must be positive";
  let v, t = next_int t in
  (v mod bound, t)

let bool t =
  let v, t = next64 t in
  (Int64.logand v 1L = 1L, t)

(* Derive an independent stream; used to give each alternate execution its
   own schedule randomness without sequencing constraints. *)
let split t =
  let v, t = next64 t in
  ({ state = mix v }, t)

(* Pick an element of a non-empty list. *)
let choose xs t =
  match xs with
  | [] -> invalid_arg "Srng.choose: empty list"
  | xs ->
    let i, t = int ~bound:(List.length xs) t in
    (List.nth xs i, t)
