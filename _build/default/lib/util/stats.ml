(** Small descriptive-statistics helpers for the benchmark harness. *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percent ~num ~den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den
