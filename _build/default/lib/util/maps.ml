(** Persistent maps used pervasively by the VM state.

    The whole machine state is immutable, so checkpointing an execution
    (Algorithm 1's [checkpoint]) is just binding the state value; these maps
    are the workhorses behind that design. *)

module Smap = struct
  include Map.Make (String)

  let find_or ~default key m = match find_opt key m with Some v -> v | None -> default
  let keys m = fold (fun k _ acc -> k :: acc) m [] |> List.rev
  let of_list l = List.fold_left (fun m (k, v) -> add k v m) empty l
end

module Imap = struct
  include Map.Make (Int)

  let find_or ~default key m = match find_opt key m with Some v -> v | None -> default
  let keys m = fold (fun k _ acc -> k :: acc) m [] |> List.rev
  let of_list l = List.fold_left (fun m (k, v) -> add k v m) empty l
end

module Sset = Set.Make (String)
module Iset = Set.Make (Int)
