lib/util/srng.ml: Int64 List
