lib/util/maps.ml: Int List Map Set String
