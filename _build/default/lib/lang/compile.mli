(** Compiler from the Racelang AST to {!Bytecode}.

    Three-address code generation: locals and parameters get fixed
    registers, subexpressions get fresh temporaries, control flow uses
    backpatched jumps, and every shared load/store is its own instruction
    (see {!Bytecode}).

    Note: [&&] and [||] are strict (both operands evaluated); workloads
    that need C-style short-circuit evaluation use nested [if]s. *)

exception Error of string
(** Validation failure: missing [main], undeclared names, arity mismatches,
    redeclarations, non-positive array lengths, … *)

val compile : Ast.program -> Bytecode.t
