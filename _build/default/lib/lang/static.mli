(** Static analysis over the bytecode: transitive write sets (used to
    discriminate infinite loops from ad-hoc synchronization, §3.5) and
    busy-wait spin-read identification (used by the detector to keep
    polling loops out of the race reports, after [27, 55, 60]). *)

type coarse_loc =
  | Cglobal of string
  | Carray of string  (** any cell of the array *)

module Cset : Set.S with type elt = coarse_loc

type t

(** Per-function write sets, closed transitively over direct calls (spawned
    functions belong to the child thread, not the spawner). *)
val analyze : Bytecode.t -> t

(** The coarse location an instruction writes (if any). *)
val inst_writes : Bytecode.inst -> coarse_loc option

(** The coarse location an instruction reads (if any). *)
val inst_reads : Bytecode.inst -> coarse_loc option

(** Transitive write set of a function; empty for unknown names. *)
val writes : t -> string -> Cset.t

(** Can the function (transitively) write the location? *)
val may_write : t -> string -> coarse_loc -> bool

(** Program counters of busy-wait (spin) loads, per function: backward jumps
    whose loop body is at most {!max_spin_body} side-effect-free
    instructions containing exactly one shared load. *)
val spin_read_sites : Bytecode.t -> (string * int) list

val max_spin_body : int
