(** Recursive-descent parser for Racelang's concrete syntax.

    {v
    program  ::= "program" IDENT decl* fn+
    decl     ::= "global" IDENT "=" INT
               | "array" IDENT "[" INT "]" "=" INT
               | "mutex" IDENT | "cond" IDENT | "barrier" IDENT "=" INT
    fn       ::= "fn" IDENT "(" params? ")" "{" stmt* "}"
    v}

    See the implementation header for the statement and expression grammar.
    Bare identifiers parse as locals; the compiler resolves undeclared ones
    to globals. *)

exception Error of string

val parse_program : string -> Ast.program

(** Parse and immediately compile. *)
val compile_string : string -> Bytecode.t

(** Read, parse and compile a [.rl] file. *)
val compile_file : string -> Bytecode.t
