lib/lang/bytecode.ml: Ast Fmt List Portend_solver Portend_util
