lib/lang/pp.ml: Ast Fmt List Portend_solver
