lib/lang/parser.mli: Ast Bytecode
