lib/lang/compile.ml: Array Ast Bytecode Fmt List Option Portend_solver Portend_util
