lib/lang/parser.ml: Ast Compile Fmt Lexer List Portend_solver
