lib/lang/builder.ml: Ast Portend_solver
