lib/lang/static.ml: Array Bytecode List Portend_util Set Smap Sset
