lib/lang/static.mli: Bytecode Set
