lib/lang/ast.ml: List Portend_solver
