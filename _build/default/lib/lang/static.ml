(** Static write-set analysis over the bytecode.

    Used by the classifier to discriminate ad-hoc synchronization from
    genuine infinite loops (Algorithm 1, lines 8–12): when an execution spins
    past its budget, the loop's exit condition can still change iff some
    {e other} live thread's remaining code may write one of the locations the
    loop condition reads.  “May write” is computed here: the per-function
    write set, closed transitively over calls and spawns. *)

open Portend_util.Maps

type coarse_loc =
  | Cglobal of string
  | Carray of string  (** any cell of the array *)

module Cset = Set.Make (struct
  type t = coarse_loc

  let compare = compare
end)

let inst_writes = function
  | Bytecode.IStoreG (v, _) -> Some (Cglobal v)
  | Bytecode.IStoreA (v, _, _) -> Some (Carray v)
  | Bytecode.IFree v -> Some (Carray v)
  | Bytecode.IBin _ | Bytecode.IUn _ | Bytecode.IMov _ | Bytecode.ILoadG _ | Bytecode.ILoadA _
  | Bytecode.IJmp _ | Bytecode.IBr _ | Bytecode.ICall _ | Bytecode.IRet _ | Bytecode.ISpawn _
  | Bytecode.IJoin _ | Bytecode.ILock _ | Bytecode.IUnlock _ | Bytecode.IWait _
  | Bytecode.ISignal _ | Bytecode.IBroadcast _ | Bytecode.IBarrier _ | Bytecode.IOutput _
  | Bytecode.IOutputStr _ | Bytecode.IInput _ | Bytecode.IAssert _ | Bytecode.IYield -> None

let inst_reads = function
  | Bytecode.ILoadG (_, v) -> Some (Cglobal v)
  | Bytecode.ILoadA (_, v, _) -> Some (Carray v)
  | Bytecode.IBin _ | Bytecode.IUn _ | Bytecode.IMov _ | Bytecode.IStoreG _ | Bytecode.IStoreA _
  | Bytecode.IFree _ | Bytecode.IJmp _ | Bytecode.IBr _ | Bytecode.ICall _ | Bytecode.IRet _
  | Bytecode.ISpawn _ | Bytecode.IJoin _ | Bytecode.ILock _ | Bytecode.IUnlock _
  | Bytecode.IWait _ | Bytecode.ISignal _ | Bytecode.IBroadcast _ | Bytecode.IBarrier _
  | Bytecode.IOutput _ | Bytecode.IOutputStr _ | Bytecode.IInput _ | Bytecode.IAssert _
  | Bytecode.IYield -> None

(* Only direct calls: a [spawn]'s writes happen in the child thread, which
   the loop analysis already tracks as its own live thread — charging them
   to the spawner would wrongly mark dead spins as ad-hoc synchronization. *)
let callees_of_func (f : Bytecode.func) =
  Array.fold_left
    (fun acc inst ->
      match inst with
      | Bytecode.ICall (_, g, _) -> Sset.add g acc
      | _ -> acc)
    Sset.empty f.Bytecode.code

let direct_writes (f : Bytecode.func) =
  Array.fold_left
    (fun acc inst -> match inst_writes inst with Some l -> Cset.add l acc | None -> acc)
    Cset.empty f.Bytecode.code

type t = {
  write_sets : Cset.t Smap.t;  (** transitive, per function *)
}

(** Compute transitive write sets for every function by fixpoint iteration
    over the (tiny) call graph. *)
let analyze (prog : Bytecode.t) : t =
  let funcs = Smap.bindings prog.Bytecode.funcs in
  let direct = List.map (fun (n, f) -> (n, direct_writes f)) funcs |> Smap.of_list in
  let callees = List.map (fun (n, f) -> (n, callees_of_func f)) funcs |> Smap.of_list in
  let rec fix sets =
    let step =
      Smap.mapi
        (fun name ws ->
          let cs = Smap.find_or ~default:Sset.empty name callees in
          Sset.fold
            (fun callee acc -> Cset.union acc (Smap.find_or ~default:Cset.empty callee sets))
            cs ws)
        sets
    in
    if Smap.equal Cset.equal sets step then sets else fix step
  in
  { write_sets = fix direct }

(** Transitive write set of [fname]; empty for unknown functions. *)
let writes t fname = Smap.find_or ~default:Cset.empty fname t.write_sets

(** Can [fname] (transitively) write [loc]? *)
let may_write t fname loc = Cset.mem loc (writes t fname)

(* --- spin-read identification ------------------------------------------- *)

(* A busy-wait loop: a backward jump whose body performs shared loads but no
   shared stores, no calls, no outputs and no blocking operations other than
   lock/unlock polling.  The loads inside such a loop are synchronization
   reads in the sense of Helgrind+ [27] and ad-hoc-synchronization
   identification [55, 60]: they poll a flag some other thread will set.
   The race detector treats them as synchronization rather than data
   accesses (see {!Portend_detect.Hb}), which is what keeps busy-wait flags
   from flooding the report list while the data they guard still races. *)

(* A tight polling loop: at most [max_spin_body] instructions, exactly one
   shared load (the polled flag), and nothing with a side effect beyond
   registers.  The size bound keeps computation loops (which also read
   shared data without writing it) out — those reads are real data
   accesses. *)
let max_spin_body = 8

let spin_body_ok code lo hi =
  let ok inst =
    match inst with
    | Bytecode.IBin _ | Bytecode.IUn _ | Bytecode.IMov _ | Bytecode.ILoadG _
    | Bytecode.ILoadA _ | Bytecode.IBr _ | Bytecode.IJmp _ | Bytecode.IYield
    | Bytecode.ILock _ | Bytecode.IUnlock _ -> true
    | Bytecode.IStoreG _ | Bytecode.IStoreA _ | Bytecode.IFree _ | Bytecode.ICall _
    | Bytecode.IRet _ | Bytecode.ISpawn _ | Bytecode.IJoin _ | Bytecode.IWait _
    | Bytecode.ISignal _ | Bytecode.IBroadcast _ | Bytecode.IBarrier _ | Bytecode.IOutput _
    | Bytecode.IOutputStr _ | Bytecode.IInput _ | Bytecode.IAssert _ -> false
  in
  let loads = ref 0 in
  let rec go pc =
    pc > hi
    || (ok code.(pc)
       && begin
            (match code.(pc) with
            | Bytecode.ILoadG _ | Bytecode.ILoadA _ -> incr loads
            | _ -> ());
            go (pc + 1)
          end)
  in
  hi - lo < max_spin_body && go lo && !loads = 1

(** Program counters of busy-wait (spin) loads, per function. *)
let spin_read_sites (prog : Bytecode.t) : (string * int) list =
  Smap.fold
    (fun fname (f : Bytecode.func) acc ->
      let code = f.Bytecode.code in
      let sites = ref acc in
      Array.iteri
        (fun pc inst ->
          match inst with
          | Bytecode.IJmp target when target < pc && spin_body_ok code target pc ->
            for p = target to pc do
              match code.(p) with
              | Bytecode.ILoadG _ | Bytecode.ILoadA _ -> sites := (fname, p) :: !sites
              | _ -> ()
            done
          | _ -> ())
        code;
      !sites)
    prog.Bytecode.funcs []
