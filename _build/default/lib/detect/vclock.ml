(** Vector clocks for the happens-before relation [31]. *)

open Portend_util.Maps

type t = int Imap.t
(** Sparse: absent entries are 0. *)

let empty : t = Imap.empty
let get tid (vc : t) = Imap.find_or ~default:0 tid vc
let tick tid (vc : t) = Imap.add tid (get tid vc + 1) vc

let join (a : t) (b : t) : t =
  Imap.union (fun _ x y -> Some (max x y)) a b

(** [leq a b]: does [a] happen-before-or-equal [b] componentwise? *)
let leq (a : t) (b : t) = Imap.for_all (fun tid x -> x <= get tid b) a

(** The epoch test of FastTrack-style detectors: the event stamped
    [(tid, clock)] happened before everything whose vector clock has
    [clock <= vc tid]. *)
let epoch_before ~tid ~clock (vc : t) = clock <= get tid vc

let pp fmt (vc : t) =
  Fmt.pf fmt "⟨%a⟩" Fmt.(list ~sep:comma (pair ~sep:(any ":") int int)) (Imap.bindings vc)
