(** Data race reports, and the clustering Portend applies before analysis
    (§4: races are clustered by racing location and access stacks, and one
    representative per cluster is classified). *)

type access = {
  a_tid : int;
  a_site : Portend_vm.Events.site;
  a_kind : Portend_vm.Events.access_kind;
  a_step : int;  (** absolute instruction count of the access *)
}

type race = {
  r_loc : Portend_vm.Events.loc;
  first : access;  (** earlier access in the detected execution *)
  second : access;
}

(** Project an access event; raises [Invalid_argument] on other events. *)
val access_of_event : Portend_vm.Events.t -> access

val pp_access : Format.formatter -> access -> unit
val pp_race : Format.formatter -> race -> unit

(** The base location key: ["g:x"] for globals, ["a:buf"] for any cell of an
    array, ["m:buf"] for allocation metadata. *)
val base_loc : Portend_vm.Events.loc -> string

(** Cluster key: racing location plus the unordered pair of accessing
    functions (function-granular stack-trace clustering). *)
val cluster_key : race -> string

(** Deduplicate a race list into (representative, instance count) clusters,
    in order of first appearance. *)
val cluster : race list -> (race * int) list
