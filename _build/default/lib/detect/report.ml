(** Data race reports, and the clustering Portend applies before analysis
    (§4: races are clustered by racing location and access sites, and one
    representative per cluster is classified). *)

module Events = Portend_vm.Events

type access = {
  a_tid : int;
  a_site : Events.site;
  a_kind : Events.access_kind;
  a_step : int;  (** absolute instruction count of the access *)
}

type race = {
  r_loc : Events.loc;
  first : access;  (** earlier access in the detected execution *)
  second : access;
}

let access_of_event = function
  | Events.Access { tid; site; loc = _; kind; step } ->
    { a_tid = tid; a_site = site; a_kind = kind; a_step = step }
  | _ -> invalid_arg "Report.access_of_event: not an access"

let pp_access fmt a =
  Fmt.pf fmt "T%d %a at %a (step %d)" a.a_tid Events.pp_kind a.a_kind Events.pp_site a.a_site
    a.a_step

let pp_race fmt r =
  Fmt.pf fmt "@[<v2>race on %a:@,%a@,%a@]" Events.pp_loc r.r_loc pp_access r.first pp_access
    r.second

(* The base location: array races on different cells of the same array with
   the same access sites are the same source-level race. *)
let base_loc = function
  | Events.Lglobal v -> "g:" ^ v
  | Events.Larray (a, _) -> "a:" ^ a
  | Events.Lmeta a -> "m:" ^ a

(** Cluster key: racing location plus the unordered pair of accessing
    functions.  Function granularity (rather than exact program counters)
    mirrors the paper's stack-trace clustering: the load and the store of a
    read-modify-write, or a check and a use of the same variable in one
    function, belong to the same source-level race. *)
let cluster_key r =
  let s1 = r.first.a_site.Events.func and s2 = r.second.a_site.Events.func in
  let lo, hi = if s1 <= s2 then (s1, s2) else (s2, s1) in
  Printf.sprintf "%s|%s|%s" (base_loc r.r_loc) lo hi

(** Deduplicate a race list into (representative, instance count) clusters,
    in order of first appearance. *)
let cluster races =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = cluster_key r in
      match Hashtbl.find_opt tbl key with
      | Some (rep, n) -> Hashtbl.replace tbl key (rep, n + 1)
      | None ->
        Hashtbl.add tbl key (r, 1);
        order := key :: !order)
    races;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order
