(** Vector clocks for the happens-before relation [31]. *)

type t = int Portend_util.Maps.Imap.t
(** Sparse: absent entries are 0. *)

val empty : t

(** The component for a thread (0 when absent). *)
val get : int -> t -> int

(** Advance a thread's own component. *)
val tick : int -> t -> t

(** Componentwise maximum. *)
val join : t -> t -> t

(** [leq a b]: does [a] happen-before-or-equal [b] componentwise? *)
val leq : t -> t -> bool

(** The epoch test of FastTrack-style detectors: the event stamped
    [(tid, clock)] happened before everything whose vector clock has
    [clock <= vc tid]. *)
val epoch_before : tid:int -> clock:int -> t -> bool

val pp : Format.formatter -> t -> unit
