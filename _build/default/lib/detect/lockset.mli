(** Eraser-style lockset race detector [49].

    Classic source of {e false positive} reports: §5.2 of the paper shows
    Portend classifying a mutex-blind detector's false positives as “single
    ordering”; [~ignore_mutexes:true] simulates that detector. *)

(** Run the lockset detector over an event stream. *)
val detect : ?ignore_mutexes:bool -> Portend_vm.Events.t list -> Report.race list

(** Distinct races with instance counts. *)
val detect_clustered :
  ?ignore_mutexes:bool -> Portend_vm.Events.t list -> (Report.race * int) list
