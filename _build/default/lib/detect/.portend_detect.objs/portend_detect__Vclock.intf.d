lib/detect/vclock.mli: Format Portend_util
