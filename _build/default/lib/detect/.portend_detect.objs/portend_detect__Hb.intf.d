lib/detect/hb.mli: Portend_vm Report
