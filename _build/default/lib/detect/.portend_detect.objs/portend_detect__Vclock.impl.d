lib/detect/vclock.ml: Fmt Imap Portend_util
