lib/detect/lockset.mli: Portend_vm Report
