lib/detect/hb.ml: Imap List Map Portend_util Portend_vm Report Smap Vclock
