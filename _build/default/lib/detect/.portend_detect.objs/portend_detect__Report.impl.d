lib/detect/report.ml: Fmt Hashtbl List Portend_vm Printf
