lib/detect/report.mli: Format Portend_vm
