lib/detect/lockset.ml: Imap List Map Portend_util Portend_vm Report Sset
