(** Model of ctrace 1.2, the multi-threaded debug/trace library (Table 3
    row: 15 distinct races — 1 “spec violated” crash, 10 “output differs”,
    4 “k-witness harmless” with differing post-race states).

    - The crash is Fig 8a: trace cleanup guarded by a racy [_initialized]
      flag; under the alternate ordering both threads free the trace buffer.
    - The 10 output-differs races come in the three flavours the Fig 7
      ablation separates:
      {ul
      {- [last_ev_0] is printed directly — a single-pre/single-post
         reversal already flips the output;}
      {- [last_ev_1..4] are read on every run but only {e printed} at trace
         levels ≥ 1, and the recorded test ran at level 0 — only multi-path
         analysis (symbolic [trace_lvl]) reaches the printing path;}
      {- [last_ev_5..9] are cleared and then set by the worker while the
         flusher prints them before {e and} after — the representative
         access pair reverses neutrally (the clear rewrites the initial
         value), and only a randomized post-race schedule (multi-schedule
         analysis) exposes the differing late print.}}
    - The 4 k-witness races are Fig 8b-style stores of trace levels: both
      threads write (different) values nobody prints — post-race states
      differ, output does not. *)

open Portend_lang.Builder

let direct_field = "last_ev_0"
let gated_fields = List.init 4 (fun k -> Printf.sprintf "last_ev_%d" Stdlib.(k + 1))
let sched_fields = List.init 5 (fun k -> Printf.sprintf "last_ev_%d" Stdlib.(k + 5))
let level_fields = List.init 4 (fun k -> Printf.sprintf "trc_lvl_%d" k)

let program : Portend_lang.Ast.program =
  let cleanup =
    func "trc_cleanup" [] (Patterns.racy_cleanup ~init_flag:"initialized" ~buffer:"tbuf")
  in
  let worker =
    func "trace_worker" []
      ([ yield; yield; yield ]
      (* defensive clears of the rotating event slots *)
      @ Patterns.store_all sched_fields (fun _ -> i 0)
      @ [ yield; yield; yield; yield; yield; yield; yield; yield ]
      @ Patterns.store_all sched_fields (fun k -> i Stdlib.((k * 3) + 20))
      @ Patterns.store_all gated_fields (fun k -> i Stdlib.((k * 3) + 2))
      @ [ setg direct_field (i 7) ]
      @ Patterns.store_all level_fields (fun _ -> i 1)
      @ [ call "trc_cleanup" [] ])
  in
  let flusher =
    func "trace_flusher" []
      ((* early dump of the rotating slots *)
       List.map (fun f -> output [ g f ]) sched_fields
      @ [ input "trace_lvl" ~name:"trace_lvl" ~lo:0 ~hi:3 ]
      @ List.map (fun f -> var ("t_" ^ f) (g f)) gated_fields
      @ [ if_ (l "trace_lvl" >= i 1) (List.map (fun f -> output [ l ("t_" ^ f) ]) gated_fields) [] ]
      @ [ yield; output [ g direct_field ] ]
      @ [ yield; yield ]
      (* late dump: whether these see the worker's values is pure schedule *)
      @ List.map (fun f -> output [ g f ]) sched_fields
      (* level updates happen after all reporting so their reversal cannot
         entangle with the printed slots *)
      @ Patterns.store_all level_fields (fun _ -> i 2))
  in
  let main =
    func "main" []
      [ spawn ~into:"t_f" "trace_flusher" [];
        spawn ~into:"t_w" "trace_worker" [];
        spawn ~into:"t_c" "trc_cleanup" [];
        join (l "t_w");
        join (l "t_f");
        join (l "t_c")
      ]
  in
  program "ctrace"
    ~globals:
      ([ ("initialized", 1); (direct_field, 0) ]
      @ List.map (fun f -> (f, 0)) gated_fields
      @ List.map (fun f -> (f, 0)) sched_fields
      @ List.map (fun f -> (f, 0)) level_fields)
    ~arrays:[ ("tbuf", 8, 0) ]
    [ cleanup; worker; flusher; main ]

let workload =
  Registry.make ~language:"C" ~threads:3 ~seed:3 "ctrace" program
    ~inputs:[ ("trace_lvl", 0) ]
    ([ Registry.expect "g:initialized" Registry.Taxonomy.Spec_violated;
       Registry.expect ("g:" ^ direct_field) Registry.Taxonomy.Output_differs
     ]
    @ List.map
        (fun f -> Registry.expect ("g:" ^ f) Registry.Taxonomy.Output_differs)
        (gated_fields @ sched_fields)
    @ List.map
        (fun f ->
          Registry.expect ("g:" ^ f) ~states_differ:true Registry.Taxonomy.K_witness_harmless)
        level_fields)
