(** Model of memcached 1.4.5 (Table 3 row: 18 distinct races — 2 “output
    differs”, 16 “single ordering”).

    An initialization thread fills 16 settings fields and publishes a
    [settings_ready] flag; six worker threads busy-wait on the flag before
    reading the settings (the “single ordering” family).  A stats thread
    prints [oldest_live] and [total_conns] while workers update them — the
    Fig 8c pattern, whose printed value depends on the access order
    (“output differs”).

    The what-if variant ({!whatif_program}) reproduces §5.1's experiment:
    a connection-queue mutex is turned into a no-op, inducing a race on the
    queue cursor that can overflow the queue — Portend classifies it “spec
    violated”. *)

open Portend_lang.Builder

let n_settings = 16

let settings_fields = List.init n_settings (fun k -> Printf.sprintf "cfg_%d" k)

let program : Portend_lang.Ast.program =
  let init_thread =
    func "settings_init" []
      (Patterns.store_all settings_fields (fun k -> i Stdlib.(k + 10))
      @ Patterns.publish ~flag:"settings_ready")
  in
  let worker =
    (* All six workers run this function, so their reads cluster into one
       distinct race per settings field. *)
    func "worker" [ "wid" ]
      ([ (* connection accounting is reset as the worker comes up, then
            bumped once it is serving *)
         if_ (l "wid" == i 1)
           [ yield; setg "total_conns" (i 0); yield; yield; setg "total_conns" (i 7) ]
           []
       ]
      @ Patterns.await ~flag:"settings_ready" ()
      @ Patterns.sum_into "cfg_sum" settings_fields
      @ [ (* flush_all handling: update the racy eviction horizon *)
          if_ (l "wid" == i 0) [ setg "oldest_live" (i 41) ] []
        ])
  in
  let stats_thread =
    func "stats_reporter" []
      [ print "STATS";
        output [ g "total_conns" ];
        output [ g "oldest_live" ];
        yield; yield; yield; yield;
        output [ g "total_conns" ]
      ]
  in
  let main =
    func "main" []
      ([ spawn ~into:"t_init" "settings_init" []; spawn ~into:"t_stats" "stats_reporter" [] ]
      @ List.concat
          (List.init 6 (fun k ->
               [ spawn ~into:(Printf.sprintf "t_w%d" k) "worker" [ i k ] ]))
      @ [ join (l "t_init"); join (l "t_stats") ]
      @ List.init 6 (fun k -> join (l (Printf.sprintf "t_w%d" k))))
  in
  program "memcached"
    ~globals:
      ([ ("settings_ready", 0); ("oldest_live", 0); ("total_conns", 0) ]
      @ List.map (fun f -> (f, 0)) settings_fields)
    [ init_thread; worker; stats_thread; main ]

(** §5.1 what-if analysis: the connection-queue push is normally protected by
    [m_conn]; with [synced = false] the lock is gone and the check-then-act
    on [conn_count] races — two pushers can both pass the bounds check and
    overflow [conn_queue]. *)
let whatif_program ~synced : Portend_lang.Ast.program =
  let guard body = if synced then critical "m_conn" body else body in
  let pusher =
    func "conn_pusher" [ "v" ]
      (guard
         [ var "c" (g "conn_count");
           if_ (l "c" < i 4)
             [ seta "conn_queue" (g "conn_count") (l "v");
               setg "conn_count" (g "conn_count" + i 1)
             ]
             []
         ])
  in
  let main =
    func "main" []
      [ spawn ~into:"a" "conn_pusher" [ i 1 ];
        spawn ~into:"b" "conn_pusher" [ i 2 ];
        join (l "a");
        join (l "b");
        output [ g "conn_count" ]
      ]
  in
  Portend_lang.Builder.program "memcached-whatif"
    ~globals:[ ("conn_count", 3) ]
    ~arrays:[ ("conn_queue", 4, 0) ]
    ~mutexes:[ "m_conn" ]
    [ pusher; main ]

let workload =
  let base =
    Registry.make ~language:"C" ~threads:8 ~seed:3 "memcached" program
      ~whatif_variant:(whatif_program ~synced:false)
      [ Registry.expect "g:oldest_live" Registry.Taxonomy.Output_differs;
        Registry.expect "g:total_conns" Registry.Taxonomy.Output_differs
      ]
  in
  { base with
    Registry.w_expect =
      base.Registry.w_expect
      @ List.map
          (fun f -> Registry.expect ("g:" ^ f) Registry.Taxonomy.Single_ordering)
          settings_fields
  }
