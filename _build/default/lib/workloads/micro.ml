(** The four homegrown micro-benchmarks of §5: each captures one classic
    harmless-race pattern [29, 45] and contains exactly one distinct race,
    classified “k-witness harmless” with identical post-race states
    (Table 3's last four rows).

    - AVV (“all values valid”): racing threads store values that are all
      valid — here, each computes the same default from shared
      configuration, so any winner leaves a correct value.
    - DCL (“double-checked locking”): the classic lazily-initialized
      singleton; the unprotected fast-path check races with the initializing
      store.
    - DBM (“disjoint bit manipulation”): threads update disjoint bit ranges
      of one word (modelled as carry-free additions to disjoint decimal
      ranges — commutative, so the post-race word is order-independent).
    - RW (“redundant writes”): racing threads store the very same value. *)

open Portend_lang.Builder

let avv : Portend_lang.Ast.program =
  program "AVV" ~globals:[ ("timeout_ms", 0); ("cfg_default", 4) ]
    [ func "refresh_timeout" [] [ var "base" (g "cfg_default"); setg "timeout_ms" (l "base" + i 1) ];
      func "main" []
        [ spawn ~into:"t1" "refresh_timeout" [];
          spawn ~into:"t2" "refresh_timeout" [];
          spawn ~into:"t3" "refresh_timeout" [];
          join (l "t1");
          join (l "t2");
          join (l "t3");
          output [ g "timeout_ms" > i 0 ]
        ]
    ]

let dcl : Portend_lang.Ast.program =
  program "DCL" ~globals:[ ("init_done", 0); ("singleton", 0) ] ~mutexes:[ "m_init" ]
    [ func "get_instance" []
        [ var "fast" (g "init_done");
          if_ (l "fast" == i 0)
            [ lock "m_init";
              var "slow" (g "init_done");
              if_ (l "slow" == i 0) [ setg "singleton" (i 7); setg "init_done" (i 1) ] [];
              unlock "m_init"
            ]
            []
        ];
      func "main" []
        [ spawn ~into:"t1" "get_instance" [];
          spawn ~into:"t2" "get_instance" [];
          spawn ~into:"t3" "get_instance" [];
          spawn ~into:"t4" "get_instance" [];
          spawn ~into:"t5" "get_instance" [];
          join (l "t1"); join (l "t2"); join (l "t3"); join (l "t4"); join (l "t5");
          output [ g "singleton" ]
        ]
    ]

let dbm : Portend_lang.Ast.program =
  program "DBM" ~globals:[ ("status_word", 0) ]
    [ func "set_bits" [ "mask" ] [ setg "status_word" (g "status_word" + l "mask") ];
      func "main" []
        [ spawn ~into:"t1" "set_bits" [ i 1 ];
          spawn ~into:"t2" "set_bits" [ i 256 ];
          spawn ~into:"t3" "set_bits" [ i 65536 ];
          join (l "t1");
          join (l "t2");
          join (l "t3");
          output [ g "status_word" > i 0 ]
        ]
    ]

let rw : Portend_lang.Ast.program =
  program "RW" ~globals:[ ("log_level", 0) ]
    [ func "enable_logging" [] [ setg "log_level" (i 7) ];
      func "main" []
        [ spawn ~into:"t1" "enable_logging" [];
          spawn ~into:"t2" "enable_logging" [];
          spawn ~into:"t3" "enable_logging" [];
          join (l "t1");
          join (l "t2");
          join (l "t3");
          output [ g "log_level" ]
        ]
    ]

(** The §5.2 false-positive experiment: the same four programs with the
    races eliminated by mutex synchronization.  A sound happens-before
    detector finds nothing; a detector blind to mutexes reports the
    accesses, and Portend classifies every such false positive as “single
    ordering” (the alternate cannot be enforced through the lock). *)
let locked_variants : (string * Portend_lang.Ast.program) list =
  let locked_writer name glob value =
    program name ~globals:[ (glob, 0) ] ~mutexes:[ "m" ]
      [ func "writer" [ "v" ] (critical "m" [ setg glob (l "v") ]);
        func "main" []
          [ spawn ~into:"t1" "writer" [ i value ];
            spawn ~into:"t2" "writer" [ i value ];
            join (l "t1");
            join (l "t2");
            output [ g glob > i 0 ]
          ]
      ]
  in
  [ ("AVV", locked_writer "AVV-locked" "timeout_ms" 5);
    ( "DCL",
      program "DCL-locked" ~globals:[ ("init_done", 0); ("singleton", 0) ] ~mutexes:[ "m" ]
        [ func "get_instance" []
            (critical "m"
               [ var "v" (g "init_done");
                 if_ (l "v" == i 0) [ setg "singleton" (i 7); setg "init_done" (i 1) ] []
               ]);
          func "main" []
            [ spawn ~into:"t1" "get_instance" [];
              spawn ~into:"t2" "get_instance" [];
              join (l "t1");
              join (l "t2");
              output [ g "singleton" ]
            ]
        ] );
    ("DBM", locked_writer "DBM-locked" "status_word" 257);
    ("RW", locked_writer "RW-locked" "log_level" 7)
  ]

let kw = Registry.Taxonomy.K_witness_harmless

let workloads =
  [ Registry.make ~language:"C++" ~threads:3 ~seed:1 "AVV" avv
      [ Registry.expect "g:timeout_ms" kw ~states_differ:false ];
    Registry.make ~language:"C++" ~threads:5 ~seed:1 "DCL" dcl
      [ Registry.expect "g:init_done" kw ~states_differ:false ];
    Registry.make ~language:"C++" ~threads:3 ~seed:1 "DBM" dbm
      [ Registry.expect "g:status_word" kw ~states_differ:false ];
    Registry.make ~language:"C++" ~threads:3 ~seed:1 "RW" rw
      [ Registry.expect "g:log_level" kw ~states_differ:false ]
  ]
