(** Model of SPLASH2 ocean 2.0, the eddy-current simulator (Table 3 row:
    5 distinct races — 1 “k-witness harmless” with differing states,
    4 “single ordering”).

    Two workers relax a grid in phases.  Worker 1 computes four boundary
    values and publishes them behind an ad-hoc flag worker 2 spins on (the
    4 single-ordering races).  Both workers also store their local residual
    into a shared [residual] cell — a write-write race that is invisible in
    the output on the recorded path.

    This model deliberately reproduces the one race the paper reports
    Portend misclassifies (§5.4): [residual] {e is} printed, but only under
    a diagnostics depth given by the third program input — and Portend's
    default of 2 symbolic inputs leaves that input concrete, so no explored
    path reaches the print.  Ground truth is therefore “output differs”
    while Portend answers “k-witness harmless”. *)

open Portend_lang.Builder

let boundary_fields = [ "bnd_north"; "bnd_south"; "bnd_east"; "bnd_west" ]

let program : Portend_lang.Ast.program =
  let worker1 =
    func "relax_red" []
      [ setg "residual" (i 17);
        setg "bnd_north" (i 4);
        setg "bnd_south" (i 5);
        setg "bnd_east" (i 6);
        setg "bnd_west" (i 7);
        setg "phase_done" (i 1)
      ]
  in
  let worker2 =
    func "relax_black" []
      ([ input "grid_x" ~name:"grid_x" ~lo:2 ~hi:8;
         input "grid_y" ~name:"grid_y" ~lo:2 ~hi:8;
         input "diag_depth" ~name:"diag_depth" ~lo:0 ~hi:9;
         var "cells" (l "grid_x" * l "grid_y");
         setg "residual" (i 23)
       ]
      @ Patterns.await ~flag:"phase_done" ()
      @ Patterns.sum_into "bnd_sum" boundary_fields
      @ [ output [ l "bnd_sum" + l "cells" ];
          if_ (l "diag_depth" == i 7) [ output [ g "residual" ] ] []
        ])
  in
  let main =
    func "main" []
      [ spawn ~into:"t_red" "relax_red" [];
        spawn ~into:"t_black" "relax_black" [];
        join (l "t_red");
        join (l "t_black")
      ]
  in
  program "ocean"
    ~globals:
      (("residual", 0) :: ("phase_done", 0) :: List.map (fun f -> (f, 0)) boundary_fields)
    [ worker1; worker2; main ]

let workload =
  Registry.make ~language:"C" ~threads:2 ~seed:1 "ocean" program
    ~inputs:[ ("grid_x", 4); ("grid_y", 4); ("diag_depth", 0) ]
    ([ (* the paper's known misclassification: truly outDiff, judged k-witness *)
       Registry.expect "g:residual" Registry.Taxonomy.Output_differs
         ~portend:Registry.Taxonomy.K_witness_harmless ~states_differ:true
     ]
    @ List.map
        (fun f -> Registry.expect ("g:" ^ f) Registry.Taxonomy.Single_ordering)
        boundary_fields)
