lib/workloads/ocean_model.ml: List Patterns Portend_lang Registry
