lib/workloads/micro.ml: Portend_lang Registry
