lib/workloads/registry.ml: List Portend_core Portend_lang
