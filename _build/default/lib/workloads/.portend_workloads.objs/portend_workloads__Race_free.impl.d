lib/workloads/race_free.ml: Portend_lang
