lib/workloads/pbzip2_model.ml: List Patterns Portend_lang Printf Registry Stdlib
