lib/workloads/patterns.ml: List Portend_lang
