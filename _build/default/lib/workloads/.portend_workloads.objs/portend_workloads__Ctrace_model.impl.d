lib/workloads/ctrace_model.ml: List Patterns Portend_lang Printf Registry Stdlib
