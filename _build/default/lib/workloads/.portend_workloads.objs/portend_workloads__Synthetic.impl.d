lib/workloads/synthetic.ml: Portend_lang Printf
