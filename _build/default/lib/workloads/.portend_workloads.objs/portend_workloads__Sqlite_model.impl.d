lib/workloads/sqlite_model.ml: Portend_lang Registry
