lib/workloads/suite.ml: Bbuf_model Ctrace_model Fmm_model List Memcached_model Micro Ocean_model Pbzip2_model Registry Sqlite_model
