lib/workloads/bbuf_model.ml: List Portend_lang Registry Stdlib
