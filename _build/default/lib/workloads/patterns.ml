(** Reusable racy-code patterns shared by the workload models.

    Each pattern reproduces a race family from the paper's evaluation:
    ad-hoc-synchronized publication (the dominant source of “single
    ordering” races, Fig 8d), racy-index invalidation (the pbzip2 crash
    races), double-free cleanup (ctrace, Fig 8a), and order-dependent
    printed statistics (memcached, Fig 8c). *)

open Portend_lang.Builder

(** Set [flag] with a plain store — Fig 8d's [allDone = 1].  The detector's
    spin-read identification keeps the flag itself out of the race reports;
    the {e data} written before publication is what races, in only one
    feasible order. *)
let publish ~flag = [ setg flag (i 1) ]

(** Busy-wait until [flag] is set — Fig 8d's [while (allDone == 0) usleep].
    Ad-hoc synchronization in the sense of [60]: invisible to the
    happens-before relation, yet the data consumed after the loop cannot be
    read early. *)
let await ~flag () = [ while_ (g flag == i 0) [ yield ] ]

(** Unsynchronized stores to [names.(k)] of [value k] — each global becomes
    one distinct data race against whoever reads it. *)
let store_all names value = List.mapi (fun k name -> setg name (value k)) names

(** Sum all [names] into local [acc] (declared here); each load is a distinct
    read site. *)
let sum_into acc names =
  var acc (i 0) :: List.map (fun name -> set acc (l acc + g name)) names

(** The crash pattern of the pbzip2 races: one thread bumps an index past the
    buffer bound, another indexes the buffer with it (re-reading the racy
    variable, as the C code does).  Harmless in the recorded order, an
    out-of-bounds write under the alternate. *)
let racy_index_use ~arr ~idx ~value = [ seta arr (g idx) (i value) ]

let racy_index_bump ~idx ~by = [ setg idx (g idx + i by) ]

(** Fig 8a: cleanup guarded by a racy [initialized] flag; the alternate
    ordering frees twice. *)
let racy_cleanup ~init_flag ~buffer =
  [ var "doit" (g init_flag);
    if_ (l "doit" == i 1) [ free buffer; setg init_flag (i 0) ] []
  ]
