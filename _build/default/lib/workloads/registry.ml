(** The workload registry: every program of the paper's evaluation (Table 1)
    with its recorded test inputs, its recording seed, and the ground truth
    for every distinct data race it contains (Table 3).

    Ground truth is keyed by the racy location (the {!Portend_detect.Report}
    base-location string, e.g. ["g:oldest_live"]); [x_count] says how many
    distinct races live at that key (several unrolled store/load pairs on
    one array share a key).  [x_portend] is the verdict Portend is expected
    to produce — equal to the manual ground truth everywhere except the one
    Ocean race the paper reports as misclassified (§5.4). *)

module Taxonomy = Portend_core.Taxonomy

type expectation = {
  x_loc : string;  (** base-location key of the racy location *)
  x_truth : Taxonomy.category;  (** manual classification (“ground truth”) *)
  x_portend : Taxonomy.category;  (** verdict Portend should produce *)
  x_count : int;  (** distinct races expected at this location *)
  x_states_differ : bool;  (** post-race state comparison outcome (Table 3) *)
}

let expect ?portend ?(count = 1) ?(states_differ = true) loc truth =
  { x_loc = loc;
    x_truth = truth;
    x_portend = (match portend with Some p -> p | None -> truth);
    x_count = count;
    x_states_differ = states_differ
  }

type workload = {
  w_name : string;
  w_language : string;  (** for Table 1 *)
  w_threads : int;  (** forked threads, Table 1 *)
  w_prog : Portend_lang.Ast.program;
  w_inputs : (string * int) list;  (** the recorded test-case inputs *)
  w_seed : int;  (** recording scheduler seed that manifests the races *)
  w_expect : expectation list;
  w_semantic_variant : Portend_lang.Ast.program option;
      (** fmm with the “timestamps are positive” predicate (Table 2) *)
  w_whatif_variant : Portend_lang.Ast.program option;
      (** memcached with one synchronization no-op'd (Table 2 “what-if”) *)
}

let make ?(inputs = []) ?(seed = 1) ?semantic_variant ?whatif_variant ~language ~threads name prog
    expect =
  { w_name = name;
    w_language = language;
    w_threads = threads;
    w_prog = prog;
    w_inputs = inputs;
    w_seed = seed;
    w_expect = expect;
    w_semantic_variant = semantic_variant;
    w_whatif_variant = whatif_variant
  }

let total_expected w = List.fold_left (fun acc x -> acc + x.x_count) 0 w.w_expect

(* The individual models live in their own modules; see the per-application
   files in this directory.  [all] is assembled in {!Suite}. *)
