(** Model of pbzip2 2.1.1, the parallel bzip2 compressor (Table 3 row:
    31 distinct races — 3 “spec violated” crashes, 3 “output differs”,
    25 “single ordering”).

    Thread architecture mirrors the real program: a producer that splits the
    input into blocks, two compressor threads, and a file-writer thread that
    busy-waits on an [allDone]-style flag before draining the output buffer
    (Fig 8d).

    - The 25 single-ordering races are the block-metadata fields the
      producer fills before publishing [blocks_ready]: the writer can only
      read them after the flag, but no happens-before edge says so.
    - The 3 crash races are bounded buffers indexed by racy counters that
      another thread bumps past the bound ([OutputBuffer] in the paper's
      Fig 6/8d report).
    - The 3 output-differs races are compression statistics printed by the
      writer while the compressors still update them. *)

open Portend_lang.Builder

let n_blocks = 25

let block_fields = List.init n_blocks (fun k -> Printf.sprintf "blk_size_%d" k)

let program : Portend_lang.Ast.program =
  let producer =
    func "producer" []
      (Patterns.store_all block_fields (fun k -> i Stdlib.((k * 7) + 1))
      @ Patterns.publish ~flag:"blocks_ready"
      (* Late queue-tail skip: harmless after the writer sampled it, fatal
         before. *)
      @ Patterns.racy_index_bump ~idx:"q_tail" ~by:20)
  in
  let compressor1 =
    func "compressor1" []
      ([ (* uses the racy queue tail to place its compressed block *) ]
      @ Patterns.racy_index_use ~arr:"in_queue" ~idx:"q_tail" ~value:5
      @ [ setg "last_ratio" (i 3); setg "last_block_size" (i 900) ]
      @ Patterns.racy_index_bump ~idx:"next_out" ~by:19)
  in
  let compressor2 =
    func "compressor2" []
      (Patterns.racy_index_use ~arr:"out_buffer" ~idx:"next_out" ~value:8
      @ [ yield; setg "active_workers" (i 0); yield; yield; yield; yield; setg "active_workers" (i 2) ]
      @ Patterns.racy_index_bump ~idx:"file_pos" ~by:21)
  in
  let writer =
    func "writer" []
      ([ (* the -b block-size option: forks the symbolic exploration like any
            other program input *)
         input "block_size" ~name:"block_size" ~lo:1 ~hi:9;
         (if true then if_ (l "block_size" > i 5) [ var "big" (i 1) ] [ var "small" (i 1) ]
          else yield);
         output [ g "active_workers" ] ]
      @ Patterns.racy_index_use ~arr:"file_map" ~idx:"file_pos" ~value:1
      @ [ output [ g "last_ratio" ];
          output [ g "last_block_size" ];
          yield; yield; yield; yield;
          output [ g "active_workers" ]
        ]
      @ Patterns.await ~flag:"blocks_ready" ()
      @ Patterns.sum_into "total" block_fields
      @ [ output [ l "total" ] ])
  in
  let main =
    func "main"
      []
      [ spawn ~into:"t_prod" "producer" [];
        spawn ~into:"t_c1" "compressor1" [];
        spawn ~into:"t_c2" "compressor2" [];
        spawn ~into:"t_wr" "writer" [];
        join (l "t_prod");
        join (l "t_c1");
        join (l "t_c2");
        join (l "t_wr")
      ]
  in
  program "pbzip2"
    ~globals:
      ([ ("q_tail", 0);
         ("next_out", 0);
         ("file_pos", 0);
         ("last_ratio", 0);
         ("last_block_size", 0);
         ("active_workers", 0);
         ("blocks_ready", 0)
       ]
      @ List.map (fun f -> (f, 0)) block_fields)
    ~arrays:[ ("in_queue", 16, 0); ("out_buffer", 16, 0); ("file_map", 16, 0) ]
    [ producer; compressor1; compressor2; writer; main ]

let workload =
  Registry.make ~language:"C++" ~threads:4 ~seed:3 "pbzip2" program
    ~inputs:[ ("block_size", 9) ]
    [ Registry.expect "g:q_tail" Registry.Taxonomy.Spec_violated;
      Registry.expect "g:next_out" Registry.Taxonomy.Spec_violated;
      Registry.expect "g:file_pos" Registry.Taxonomy.Spec_violated;
      Registry.expect "g:last_ratio" Registry.Taxonomy.Output_differs;
      Registry.expect "g:last_block_size" Registry.Taxonomy.Output_differs;
      Registry.expect "g:active_workers" Registry.Taxonomy.Output_differs
    ]
    (* the 25 block fields *)
  |> fun w ->
  { w with
    Registry.w_expect =
      w.Registry.w_expect
      @ List.map
          (fun f -> Registry.expect ("g:" ^ f) Registry.Taxonomy.Single_ordering)
          block_fields
  }
