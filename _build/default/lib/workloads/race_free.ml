(** The programs the paper ran Portend on and found {e no} races in (§5:
    HawkNL, pfscan, swarm, fft) — modelled here as properly synchronized
    equivalents, so the suite also demonstrates a clean bill of health:
    the detector reports nothing, and the pipeline degrades gracefully.

    - hawknl: a network library; connection bookkeeping fully mutexed.
    - pfscan: a parallel file scanner; work queue behind a mutex + condvar.
    - swarm: particle swarm steps separated by barriers.
    - fft: butterfly stages with disjoint indices plus a barrier between
      stages. *)

open Portend_lang.Builder

let hawknl : Portend_lang.Ast.program =
  program "hawknl"
    ~globals:[ ("open_sockets", 0); ("bytes_moved", 0) ]
    ~mutexes:[ "nl_lock" ]
    [ func "connection" [ "sz" ]
        (critical "nl_lock"
           [ setg "open_sockets" (g "open_sockets" + i 1);
             setg "bytes_moved" (g "bytes_moved" + l "sz")
           ]
        @ critical "nl_lock" [ setg "open_sockets" (g "open_sockets" - i 1) ]);
      func "main" []
        [ spawn ~into:"c1" "connection" [ i 100 ];
          spawn ~into:"c2" "connection" [ i 250 ];
          join (l "c1");
          join (l "c2");
          output [ g "open_sockets"; g "bytes_moved" ]
        ]
    ]

let pfscan : Portend_lang.Ast.program =
  program "pfscan"
    ~globals:[ ("queue_len", 0); ("matches", 0); ("done_producing", 0) ]
    ~arrays:[ ("queue", 8, 0) ]
    ~mutexes:[ "q" ]
    ~conds:[ "more" ]
    [ func "producer" []
        [ var "k" (i 0);
          while_ (l "k" < i 4)
            (critical "q"
               [ seta "queue" (g "queue_len") (l "k" + i 1);
                 setg "queue_len" (g "queue_len" + i 1);
                 signal "more"
               ]
            @ [ set "k" (l "k" + i 1) ]);
          lock "q";
          setg "done_producing" (i 1);
          broadcast "more";
          unlock "q"
        ];
      func "scanner" []
        [ var "go" (i 1);
          while_ (l "go" == i 1)
            [ lock "q";
              while_ (g "queue_len" == i 0 && g "done_producing" == i 0) [ wait "more" "q" ];
              if_ (g "queue_len" > i 0)
                [ setg "queue_len" (g "queue_len" - i 1);
                  var "item" (arr "queue" (g "queue_len"));
                  if_ (l "item" % i 2 == i 0) [ setg "matches" (g "matches" + i 1) ] []
                ]
                [ set "go" (i 0) ];
              unlock "q"
            ]
        ];
      func "main" []
        [ spawn ~into:"p" "producer" [];
          spawn ~into:"s1" "scanner" [];
          spawn ~into:"s2" "scanner" [];
          join (l "p");
          join (l "s1");
          join (l "s2");
          output [ g "matches" ]
        ]
    ]

let swarm : Portend_lang.Ast.program =
  program "swarm"
    ~arrays:[ ("pos", 2, 0); ("vel", 2, 1) ]
    ~barriers:[ ("step", 2) ]
    [ func "particle" [ "idx" ]
        [ var "t" (i 0);
          while_ (l "t" < i 3)
            [ (* each particle owns its own cells: disjoint, no race *)
              seta "vel" (l "idx") (arr "vel" (l "idx") + i 1);
              seta "pos" (l "idx") (arr "pos" (l "idx") + arr "vel" (l "idx"));
              barrier "step";
              set "t" (l "t" + i 1)
            ]
        ];
      func "main" []
        [ spawn ~into:"a" "particle" [ i 0 ];
          spawn ~into:"b" "particle" [ i 1 ];
          join (l "a");
          join (l "b");
          output [ arr "pos" (i 0); arr "pos" (i 1) ]
        ]
    ]

let fft : Portend_lang.Ast.program =
  program "fft"
    ~arrays:[ ("re", 4, 1) ]
    ~barriers:[ ("stage", 2) ]
    [ func "butterfly" [ "base" ]
        [ (* stage 1: each worker combines its own disjoint pair *)
          var "a" (arr "re" (l "base"));
          var "b" (arr "re" (l "base" + i 1));
          seta "re" (l "base") (l "a" + l "b");
          seta "re" (l "base" + i 1) (l "a" - l "b");
          barrier "stage";
          (* stage 2: swap strides, still disjoint per worker *)
          var "c" (arr "re" (l "base"));
          seta "re" (l "base") (l "c" * i 2);
          barrier "stage"
        ];
      func "main" []
        [ spawn ~into:"w0" "butterfly" [ i 0 ];
          spawn ~into:"w1" "butterfly" [ i 2 ];
          join (l "w0");
          join (l "w1");
          output [ arr "re" (i 0); arr "re" (i 2) ]
        ]
    ]

(** name × program, for tests and the CLI. *)
let all = [ ("hawknl", hawknl); ("pfscan", pfscan); ("swarm", swarm); ("fft", fft) ]
