(** Model of bbuf 1.0, the shared bounded buffer with configurable producers
    and consumers (Table 3 row: 6 distinct races, all “output differs”).

    Four producers and four consumers move items through a mutex-protected
    buffer (that part is race-free); the six races are bookkeeping fields
    producers update without the lock while a reporter consumer prints them.
    Two are visible to a single-pre/single-post reversal ([head_snap],
    [tail_snap]); two only print under a nonzero [verbosity] input and the
    recorded test ran at verbosity 0 (multi-path); two are cleared-then-set
    and printed before and after (multi-schedule). *)

open Portend_lang.Builder

let direct_fields = [ "head_snap"; "tail_snap" ]
let gated_fields = [ "fill_level"; "free_slots" ]
let sched_fields = [ "put_count"; "get_count" ]
let stat_fields = direct_fields @ gated_fields @ sched_fields

let buffer_op delta k =
  critical "m_buf"
    [ var "f" (g "fill");
      if_
        (if Stdlib.(delta > 0) then l "f" < i 8 else l "f" > i 0)
        [ (if Stdlib.(delta > 0) then seta "buffer" (l "f") (i k) else yield);
          setg "fill" (l "f" + i delta)
        ]
        []
    ]

let program : Portend_lang.Ast.program =
  let producer name body = func name [] body in
  let reporter =
    func "reporter" []
      (List.map (fun f -> output [ g f ]) sched_fields
      @ buffer_op (-1) 0
      @ List.map (fun f -> output [ g f ]) direct_fields
      @ [ input "verbosity" ~name:"verbosity" ~lo:0 ~hi:3 ]
      @ List.map (fun f -> var ("t_" ^ f) (g f)) gated_fields
      @ [ if_ (l "verbosity" >= i 1) (List.map (fun f -> output [ l ("t_" ^ f) ]) gated_fields) []
        ]
      @ [ yield; yield ]
      @ List.map (fun f -> output [ g f ]) sched_fields)
  in
  let consumer = func "consumer" [] (buffer_op (-1) 0) in
  let main =
    func "main" []
      [ spawn ~into:"c1" "reporter" [];
        spawn ~into:"p1" "producer1" [];
        spawn ~into:"p2" "producer2" [];
        spawn ~into:"p3" "producer3" [];
        spawn ~into:"p4" "producer4" [];
        spawn ~into:"c2" "consumer" [];
        spawn ~into:"c3" "consumer" [];
        spawn ~into:"c4" "consumer" [];
        join (l "p1"); join (l "p2"); join (l "p3"); join (l "p4");
        join (l "c1"); join (l "c2"); join (l "c3"); join (l "c4")
      ]
  in
  program "bbuf"
    ~globals:(("fill", 0) :: List.map (fun f -> (f, 0)) stat_fields)
    ~arrays:[ ("buffer", 8, 0) ]
    ~mutexes:[ "m_buf" ]
    [ producer "producer1" (buffer_op 1 1 @ [ setg "head_snap" (i 3); setg "fill_level" (i 2) ]);
      producer "producer2" (buffer_op 1 2 @ [ setg "tail_snap" (i 5); setg "free_slots" (i 6) ]);
      producer "producer3"
        ([ yield; yield; setg "put_count" (i 0); yield; yield; yield; yield; yield; yield; setg "put_count" (i 9) ]
        @ buffer_op 1 3);
      producer "producer4"
        ([ yield; yield; setg "get_count" (i 0); yield; yield; yield; yield; yield; yield; setg "get_count" (i 4) ]
        @ buffer_op 1 4);
      reporter;
      consumer;
      main
    ]

let workload =
  Registry.make ~language:"C" ~threads:8 ~seed:1 "bbuf" program
    ~inputs:[ ("verbosity", 0) ]
    (List.map
       (fun f -> Registry.expect ("g:" ^ f) Registry.Taxonomy.Output_differs)
       stat_fields)
