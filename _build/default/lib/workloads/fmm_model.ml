(** Model of SPLASH2 fmm 2.0, the n-body fast-multipole simulator (Table 3
    row: 13 distinct races — 1 “k-witness harmless” with differing states,
    12 “single ordering”; Table 2 adds one semantic violation when run under
    the “timestamps are positive” predicate).

    Worker 1 computes twelve body attributes and publishes them behind an
    ad-hoc phase flag that worker 2 busy-waits on before accumulating them
    over many timesteps — the single-ordering family, and the source of
    fmm's large instance count.  The timer thread and worker 1 both store
    into the shared [timestamp]: a write-write race that transiently leaves
    a negative value but is eventually overwritten — harmless (k-witness,
    states differ), unless the positivity predicate is enabled
    ({!semantic_program}), in which case the transient is a specification
    violation. *)

open Portend_lang.Builder

let body_fields = List.init 12 (fun k -> Printf.sprintf "body_%d" k)

let make ~with_semantic_check : Portend_lang.Ast.program =
  let worker1 =
    func "compute_forces" []
      ((* stale-clock reset while the tick has not happened yet: transiently
          negative until the timer overwrites it *)
       setg "timestamp" (i (-5))
      :: Patterns.store_all body_fields (fun k -> i Stdlib.(k + 2))
      @ Patterns.publish ~flag:"phase_done")
  in
  let worker2 =
    func "accumulate" []
      (Patterns.await ~flag:"phase_done" ()
      @ [ var "step" (i 0); var "acc" (i 0) ]
      @ [ while_ (l "step" < i 40)
            (List.map (fun f -> set "acc" (l "acc" + g f)) body_fields
            @ [ set "step" (l "step" + i 1) ])
        ]
      @ [ output [ l "acc" > i 0 ] ])
  in
  let timer =
    func "timer_tick" []
      ((* the timer starts ticking after the simulation warms up *)
       [ yield; yield; yield; yield; yield; yield; setg "timestamp" (i 100) ]
      @ (if with_semantic_check then
           [ var "now" (g "timestamp"); assert_ (l "now" > i 0) "timestamps are positive" ]
         else [])
      @ [ setg "timestamp" (i 110) ])
  in
  let main =
    func "main" []
      [ spawn ~into:"t_w1" "compute_forces" [];
        spawn ~into:"t_w2" "accumulate" [];
        spawn ~into:"t_tm" "timer_tick" [];
        join (l "t_w1");
        join (l "t_w2");
        join (l "t_tm")
      ]
  in
  program "fmm"
    ~globals:
      (("phase_done", 0) :: ("timestamp", 1) :: List.map (fun f -> (f, 0)) body_fields)
    [ worker1; worker2; timer; main ]

let program = make ~with_semantic_check:false
let semantic_program = make ~with_semantic_check:true

let workload =
  Registry.make ~language:"C" ~threads:3 ~seed:1 "fmm" program
    ~semantic_variant:semantic_program
    (Registry.expect "g:timestamp" Registry.Taxonomy.K_witness_harmless ~states_differ:true
    :: List.map
         (fun f -> Registry.expect ("g:" ^ f) Registry.Taxonomy.Single_ordering)
         body_fields)
