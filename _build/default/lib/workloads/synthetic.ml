(** Parameterized synthetic programs for the Fig 9 scaling experiment:
    classification time as a function of the number of preemption points and
    the number of branches that depend on symbolic input.

    [make ~preemptions ~branches] builds a two-thread program with one
    harmless data race; thread 1 performs [preemptions] synchronization
    operations before the racy store, and thread 2 evaluates [branches]
    input-dependent branches before the racy load, so the schedule trace and
    the symbolic execution tree grow with the two parameters
    independently. *)

open Portend_lang.Builder

let make ~preemptions ~branches : Portend_lang.Ast.program =
  let t1 =
    func "locker" []
      [ var "k" (i 0);
        while_ (l "k" < i preemptions) [ lock "m"; unlock "m"; set "k" (l "k" + i 1) ];
        setg "shared_word" (i 1)
      ]
  in
  let t2 =
    func "brancher" []
      [ input "i1" ~name:"i1" ~lo:0 ~hi:63;
        input "i2" ~name:"i2" ~lo:0 ~hi:63;
        var "acc" (i 0);
        var "j" (i 0);
        while_ (l "j" < i branches)
          [ if_ (l "i1" > l "j" * i 4) [ set "acc" (l "acc" + i 1) ] [ set "acc" (l "acc" + i 2) ];
            set "j" (l "j" + i 1)
          ];
        var "snapshot" (g "shared_word");
        output [ (l "acc" + l "snapshot") > i 0 ]
      ]
  in
  let main =
    func "main" []
      [ spawn ~into:"ta" "locker" [];
        spawn ~into:"tb" "brancher" [];
        join (l "ta");
        join (l "tb")
      ]
  in
  program
    (Printf.sprintf "synthetic_p%d_b%d" preemptions branches)
    ~globals:[ ("shared_word", 0) ]
    ~mutexes:[ "m" ]
    [ t1; t2; main ]
