(** Model of SQLite 3.3.0 (Table 3 row: a single distinct race, a “spec
    violated” deadlock — Table 2's SQLite entry).

    A writer thread takes the database mutex, raises a racy [db_busy] hint,
    and then takes the journal mutex.  A checkpoint thread consults the hint
    {e without} synchronization: if the database looks idle it takes the
    locks in the opposite order.  On the recorded schedule the stale read is
    harmless; under the alternate ordering of the hint accesses the two
    threads enter a lock cycle and deadlock. *)

open Portend_lang.Builder

let program : Portend_lang.Ast.program =
  let writer =
    func "db_writer" []
      [ lock "m_db";
        setg "db_busy" (i 1);
        yield;
        lock "m_journal";
        setg "pages_flushed" (i 3);
        unlock "m_journal";
        unlock "m_db"
      ]
  in
  let checkpointer =
    func "checkpointer" []
      [ var "hint" (g "db_busy");
        if_ (l "hint" == i 0)
          [ lock "m_journal"; yield; lock "m_db"; setg "ckpt_done" (i 1); unlock "m_db";
            unlock "m_journal"
          ]
          [];
        output [ l "hint" ]
      ]
  in
  let main =
    func "main" []
      [ spawn ~into:"t_w" "db_writer" [];
        spawn ~into:"t_c" "checkpointer" [];
        join (l "t_w");
        join (l "t_c")
      ]
  in
  program "sqlite"
    ~globals:[ ("db_busy", 0); ("pages_flushed", 0); ("ckpt_done", 0) ]
    ~mutexes:[ "m_db"; "m_journal" ]
    [ writer; checkpointer; main ]

let workload =
  Registry.make ~language:"C" ~threads:2 ~seed:1 "sqlite" program
    [ Registry.expect "g:db_busy" Registry.Taxonomy.Spec_violated ]
