(* Bechamel micro-benchmarks of the core primitives: interpreter throughput,
   vector-clock operations, the constraint solver, and whole-pipeline
   classification of one race.  One [Test.make] per measured primitive. *)

open Bechamel
open Toolkit
module V = Portend_vm
module E = Portend_solver.Expr

let counter_prog =
  let open Portend_lang.Builder in
  program "bench_counter" ~globals:[ ("c", 0) ] ~mutexes:[ "m" ]
    [ func "w" []
        [ var "i" (i 0);
          while_ (l "i" < i 50) (critical "m" [ incr_global "c" ] @ [ set "i" (l "i" + i 1) ])
        ];
      func "main" []
        [ spawn ~into:"a" "w" []; spawn ~into:"b" "w" []; join (l "a"); join (l "b");
          output [ g "c" ]
        ]
    ]
  |> Portend_lang.Compile.compile

let bench_interpreter =
  Test.make ~name:"vm-run-2x50-locked-increments" (Staged.stage (fun () ->
      let st = V.State.init counter_prog in
      ignore (V.Run.run ~sched:V.Sched.round_robin st)))

let bench_vclock =
  Test.make ~name:"vclock-tick-join-leq" (Staged.stage (fun () ->
      let open Portend_detect.Vclock in
      let a = tick 1 (tick 0 empty) and b = tick 2 (tick 1 empty) in
      ignore (leq a (join a b))))

let bench_solver =
  let v x = E.Var x and c n = E.Const n in
  let constraints =
    [ E.Binop (Gt, v "x", c 3); E.Binop (Lt, v "y", v "x"); E.Binop (Eq, E.Binop (Add, v "x", v "y"), c 10) ]
  in
  Test.make ~name:"solver-3-constraints" (Staged.stage (fun () ->
      ignore (Portend_solver.Solver.solve constraints)))

let bench_detector =
  Test.make ~name:"hb-detect-counter-run" (Staged.stage (fun () ->
      let st = V.State.init counter_prog in
      let r = V.Run.run ~sched:(V.Sched.random ~seed:7) st in
      ignore (Portend_detect.Hb.detect r.V.Run.events)))

let bench_classify =
  let outdiff =
    let open Portend_lang.Builder in
    program "bench_outdiff" ~globals:[ ("x", 0) ]
      [ func "w1" [] [ setg "x" (i 1) ];
        func "w2" [] [ setg "x" (i 2) ];
        func "main" []
          [ spawn ~into:"a" "w1" []; spawn ~into:"b" "w2" []; join (l "a"); join (l "b");
            output [ g "x" ]
          ]
      ]
    |> Portend_lang.Compile.compile
  in
  Test.make ~name:"classify-one-race" (Staged.stage (fun () ->
      ignore (Portend_core.Pipeline.analyze ~seed:1 outdiff)))

let run () =
  let tests =
    Test.make_grouped ~name:"portend"
      [ bench_interpreter; bench_vclock; bench_solver; bench_detector; bench_classify ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.0) ~kde:(Some 300) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) i raw)
      instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  print_endline "\n== Micro-benchmarks (bechamel, monotonic clock ns/run) ==";
  Hashtbl.iter
    (fun name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-12s %-40s %12.1f ns/run\n" name test est
          | _ -> Printf.printf "%-12s %-40s (no estimate)\n" name test)
        tbl)
    results
