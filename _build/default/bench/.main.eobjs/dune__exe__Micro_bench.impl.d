bench/micro_bench.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Portend_core Portend_detect Portend_lang Portend_solver Portend_vm Printf Staged Test Time Toolkit
