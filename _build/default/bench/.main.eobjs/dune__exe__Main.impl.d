bench/main.ml: Array Figures Harness List Micro_bench Sys Tables
