bench/harness.ml: Config List Pipeline Portend_core Portend_detect Portend_lang Portend_vm Portend_workloads Printf Registry String Suite Taxonomy
