bench/figures.ml: Classify Config Harness List Micro Pipeline Portend_core Portend_detect Portend_lang Portend_util Portend_vm Portend_workloads Printf Registry Suite Synthetic Taxonomy Weakmem
