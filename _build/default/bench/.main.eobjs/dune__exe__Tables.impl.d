bench/tables.ml: Harness List Pipeline Portend_baselines Portend_core Portend_detect Portend_lang Portend_util Portend_vm Portend_workloads Printf Registry Stdlib Suite Taxonomy
