bench/main.mli:
