(* Regeneration of the paper's Figures 7, 9 and 10, plus the §5.2
   false-positive experiment. *)

open Portend_core
open Portend_workloads
module V = Portend_vm
module D = Portend_detect

let fig7_apps = [ "ctrace"; "pbzip2"; "memcached"; "bbuf" ]

(* Fig 7: contribution of each technique to classification accuracy. *)
let fig7 () =
  let configs =
    [ ("Single-path", Config.single_path);
      ("+ ad-hoc sync detection", Config.with_adhoc);
      ("+ multi-path", Config.with_multipath);
      ("+ multi-schedule", Config.with_multischedule)
    ]
  in
  let rows =
    List.map
      (fun (cname, config) ->
        cname
        :: List.map
             (fun app ->
               match Suite.find app with
               | None -> "-"
               | Some w ->
                 let r = Harness.analyze_workload ~config w in
                 Harness.pct (Harness.correct_against_truth r) (Registry.total_expected w))
             fig7_apps)
      configs
  in
  Harness.print_table
    ~title:"Fig 7: accuracy breakdown by technique (percent of races classified correctly)"
    ~header:("Configuration" :: fig7_apps)
    rows;
  Printf.printf "(paper: bars rise monotonically per app; all reach ~100%% at multi-schedule)\n"

(* Fig 9: classification time vs preemption points and symbolic branches. *)
let fig9 () =
  let preemption_counts = [ 20; 100; 400; 1000 ] in
  let branch_counts = [ 4; 12; 20; 28 ] in
  let reps = 5 in
  let time_for ~preemptions ~branches =
    let prog = Portend_lang.Compile.compile (Synthetic.make ~preemptions ~branches) in
    let t0 = Portend_util.Clock.now_s () in
    for _ = 1 to reps do
      ignore (Pipeline.analyze ~seed:1 prog)
    done;
    (Portend_util.Clock.now_s () -. t0) /. float_of_int reps
  in
  let rows =
    List.map
      (fun b ->
        string_of_int b
        :: List.map
             (fun p -> Printf.sprintf "%.3f" (time_for ~preemptions:p ~branches:b))
             preemption_counts)
      branch_counts
  in
  Harness.print_table
    ~title:
      "Fig 9: classification time (s) vs #preemption points (columns) and #symbolic branches (rows)"
    ~header:("branches \\ preemptions" :: List.map string_of_int preemption_counts)
    rows;
  Printf.printf "(paper: time grows along both axes)\n"

(* Fig 10: accuracy as a function of k. *)
let fig10 () =
  let ks = [ 1; 2; 4; 6; 8; 10 ] in
  let rows =
    List.map
      (fun k ->
        string_of_int k
        :: List.map
             (fun app ->
               match Suite.find app with
               | None -> "-"
               | Some w ->
                 let config = Config.with_k k Config.default in
                 let r = Harness.analyze_workload ~config w in
                 Harness.pct (Harness.correct_against_truth r) (Registry.total_expected w))
             fig7_apps)
      ks
  in
  Harness.print_table ~title:"Fig 10: accuracy with increasing values of k"
    ~header:("k" :: fig7_apps)
    rows;
  Printf.printf "(paper: accuracy saturates by k = 5)\n"

(* §5.2 false positives: a mutex-blind detector's reports are classified
   “single ordering” by Portend. *)
let falsepos () =
  let rows =
    List.map
      (fun (name, ast) ->
        let prog = Portend_lang.Compile.compile ast in
        let record, _ = Pipeline.record ~seed:1 prog in
        let sound = D.Hb.detect_clustered record.V.Run.events in
        let fps = D.Lockset.detect_clustered ~ignore_mutexes:true record.V.Run.events in
        let single_ord =
          List.length
            (List.filter
               (fun (race, _) ->
                 match Classify.classify prog record.V.Run.trace race with
                 | Ok { Classify.verdict; _ } ->
                   verdict.Taxonomy.category = Taxonomy.Single_ordering
                 | Error _ -> false)
               fps)
        in
        [ name ^ " (locked)";
          string_of_int (List.length sound);
          string_of_int (List.length fps);
          string_of_int single_ord
        ])
      Micro.locked_variants
  in
  Harness.print_table
    ~title:
      "False positives (5.2): mutex-blind lockset reports on the (locked) micro-benchmarks"
    ~header:[ "Program"; "HB races"; "False reports"; "Classified singleOrd" ]
    rows;
  Printf.printf "(paper: all four false positives are classified single-ordering)\n"

(* Extension (§6): weak-memory ablation over the micro-benchmarks — which of
   the four harmless-race patterns stays harmless under adversarial memory? *)
let weakmem () =
  let dcl_use =
    (* DCL with a fast-path use of the singleton: the §6 example *)
    let open Portend_lang.Builder in
    program "DCL-use" ~globals:[ ("init_done", 0); ("singleton", 0) ] ~mutexes:[ "m" ]
      [ func "get_instance" []
          [ var "fast" (g "init_done");
            if_ (l "fast" == i 0)
              [ lock "m";
                var "slow" (g "init_done");
                if_ (l "slow" == i 0) [ setg "singleton" (i 7); setg "init_done" (i 1) ] [];
                unlock "m"
              ]
              [ var "obj" (g "singleton"); assert_ (l "obj" != i 0) "non-null singleton" ]
          ];
        func "main" []
          [ spawn ~into:"t1" "get_instance" [];
            spawn ~into:"t2" "get_instance" [];
            join (l "t1");
            join (l "t2")
          ]
      ]
  in
  let programs =
    ("DCL-use", dcl_use)
    :: List.map (fun (w : Registry.workload) -> (w.Registry.w_name, w.Registry.w_prog))
         Suite.micro_benchmarks
  in
  let rows =
    List.map
      (fun (name, ast) ->
        let prog = Portend_lang.Compile.compile ast in
        let sc = Weakmem.explore ~depth:0 prog in
        let weak_only = Weakmem.weak_only_crashes prog in
        [ name;
          string_of_int sc.Weakmem.executions;
          string_of_int (List.length sc.Weakmem.crashes);
          string_of_int (List.length weak_only);
          (match weak_only with [] -> "-" | c :: _ -> Portend_vm.Crash.to_string c)
        ])
      programs
  in
  Harness.print_table
    ~title:"Extension: adversarial-memory check (6) - violations only weaker models expose"
    ~header:[ "Program"; "SC execs"; "SC violations"; "weak-only violations"; "example" ]
    rows;
  Printf.printf
    "(expected: only DCL with a fast-path use breaks; plain micro-benchmarks stay clean)\n"
