(* What-if analysis (§5.1): is it safe to remove a synchronization point?

   The paper no-ops a memcached lock and asks Portend what the induced race
   could do; Portend proves it can crash the server.  This example runs both
   sides of that experiment: the synchronized queue (no race) and the
   lock-removed variant (a check-then-act race on the queue cursor).

       dune exec examples/whatif.exe *)

open Portend_core
open Portend_workloads
module D = Portend_detect

let analyze name prog_ast =
  let prog = Portend_lang.Compile.compile prog_ast in
  let a = Pipeline.analyze ~seed:1 prog in
  Printf.printf "\n%s: %d race(s) detected\n" name (List.length a.Pipeline.races);
  List.iter
    (fun ra ->
      Fmt.pr "  %a -> %a@."
        Portend_vm.Events.pp_loc ra.Pipeline.race.D.Report.r_loc
        Taxonomy.pp_verdict ra.Pipeline.verdict;
      match ra.Pipeline.evidence with
      | Some e -> print_string (Evidence.render e)
      | None -> ())
    a.Pipeline.races;
  a

let () =
  print_endline "what-if: can we drop the connection-queue lock to cut contention?";
  let synced = analyze "with the lock" (Memcached_model.whatif_program ~synced:true) in
  let unsynced = analyze "lock removed" (Memcached_model.whatif_program ~synced:false) in
  let crashes =
    List.exists
      (fun ra -> ra.Pipeline.verdict.Taxonomy.consequence = Some Portend_vm.Crash.Ccrash)
      unsynced.Pipeline.races
  in
  Printf.printf "\nconclusion: %s\n"
    (if List.length synced.Pipeline.races = 0 && crashes then
       "NO — removing the lock lets the queue cursor race and overflow the queue."
     else "inconclusive (unexpected)")
