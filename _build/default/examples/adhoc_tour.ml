(* A tour of ordering-related verdicts: the same producer/consumer skeleton
   classified three ways depending on how the threads coordinate.

   1. ad-hoc busy-wait flag        -> the data race is "single ordering"
   2. no coordination at all       -> "output differs"
   3. flag that nobody ever sets   -> "spec violated" (hang: the alternate
                                       ordering spins forever)

       dune exec examples/adhoc_tour.exe *)

open Portend_lang
open Portend_core
module D = Portend_detect

let skeleton ~producer_body ~consumer_body =
  let open Builder in
  program "tour"
    ~globals:[ ("data", 0); ("ready", 0) ]
    [ func "producer" [] producer_body;
      func "consumer" [] consumer_body;
      func "main" []
        [ spawn ~into:"a" "producer" [];
          spawn ~into:"b" "consumer" [];
          join (l "a");
          join (l "b")
        ]
    ]

let adhoc =
  let open Builder in
  skeleton
    ~producer_body:[ setg "data" (i 42); setg "ready" (i 1) ]
    ~consumer_body:[ while_ (g "ready" == i 0) [ yield ]; output [ g "data" ] ]

let uncoordinated =
  let open Builder in
  skeleton
    ~producer_body:[ setg "data" (i 42) ]
    ~consumer_body:[ output [ g "data" ] ]

let broken_flag =
  let open Builder in
  (* the producer publishes data but forgets the flag entirely; consuming
     first means spinning on a condition no live thread will ever change *)
  skeleton
    ~producer_body:[ setg "ready" (i 1); setg "data" (i 42) ]
    ~consumer_body:
      [ var "seen" (g "data");
        while_ (l "seen" == i 0) [ yield ];
        output [ l "seen" ]
      ]

let show title ast =
  Printf.printf "\n=== %s ===\n" title;
  let prog = Compile.compile ast in
  let rec go seed =
    if seed > 64 then print_endline "  (no completing recording)"
    else
      let a = Pipeline.analyze ~seed prog in
      match a.Pipeline.record.Portend_vm.Run.stop with
      | Portend_vm.Run.Halted when a.Pipeline.races <> [] ->
        List.iter
          (fun ra ->
            Fmt.pr "  race on %a -> %a (%s)@."
              Portend_vm.Events.pp_loc ra.Pipeline.race.D.Report.r_loc
              Taxonomy.pp_verdict ra.Pipeline.verdict
              ra.Pipeline.verdict.Taxonomy.detail)
          a.Pipeline.races
      | _ -> go (seed + 1)
  in
  go 1

let () =
  show "data guarded by an ad-hoc flag (Fig 8d)" adhoc;
  show "no coordination: the printed value depends on the schedule" uncoordinated;
  show "spin on a variable nobody will set: the alternate ordering hangs" broken_flag
