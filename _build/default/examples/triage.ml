(* Automated bug triage (§1, §5.1): run Portend over a batch of programs —
   here, the paper's workload suite — and produce a priority-ordered triage
   report: definitely-harmful races first, output-visible races next with
   the exact difference, then the harmless tail a developer can ignore.

       dune exec examples/triage.exe            # full suite
       dune exec examples/triage.exe pbzip2     # one program *)

open Portend_core
open Portend_workloads
module D = Portend_detect

let priority v =
  match v.Taxonomy.category with
  | Taxonomy.Spec_violated -> 0
  | Taxonomy.Output_differs -> 1
  | Taxonomy.K_witness_harmless -> 2
  | Taxonomy.Single_ordering -> 3

let () =
  let wanted = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  let workloads =
    match wanted with
    | Some name -> (
      match Suite.find name with
      | Some w -> [ w ]
      | None ->
        Printf.eprintf "unknown workload %s\n" name;
        exit 1)
    | None -> Suite.all
  in
  let all =
    List.concat_map
      (fun (w : Registry.workload) ->
        let prog = Portend_lang.Compile.compile w.Registry.w_prog in
        let a = Pipeline.analyze ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog in
        List.map (fun ra -> (w.Registry.w_name, ra)) a.Pipeline.races)
      workloads
  in
  let sorted =
    List.stable_sort
      (fun (_, a) (_, b) ->
        compare (priority a.Pipeline.verdict) (priority b.Pipeline.verdict))
      all
  in
  Printf.printf "triaged %d distinct data races\n" (List.length sorted);
  let shown = ref "" in
  List.iter
    (fun (app, ra) ->
      let v = ra.Pipeline.verdict in
      let band = Taxonomy.category_to_string v.Taxonomy.category in
      if band <> !shown then begin
        shown := band;
        Printf.printf "\n--- %s ---\n" band
      end;
      Fmt.pr "[%s] %a -> %a@." app Portend_vm.Events.pp_loc ra.Pipeline.race.D.Report.r_loc
        Taxonomy.pp_verdict v;
      if v.Taxonomy.category = Taxonomy.Spec_violated then
        match ra.Pipeline.evidence with
        | Some e -> print_string (Evidence.render e)
        | None -> ())
    sorted;
  let harmful =
    List.length
      (List.filter (fun (_, ra) -> Taxonomy.is_harmful ra.Pipeline.verdict.Taxonomy.category) all)
  in
  Printf.printf "\nsummary: %d races demand immediate attention, %d are candidate no-fixes\n"
    harmful
    (List.length all - harmful)
