(* Weak memory consistency (§6 / adversarial memory [17]): a race that is
   harmless under sequential consistency can be harmful on weaker machines.

   Double-checked locking publishes [singleton] and then [init_done]; on a
   sequentially consistent machine a reader that sees init_done = 1 also
   sees singleton = 7.  Under adversarial memory the reader may observe the
   flag and a *stale* singleton — the textbook DCL bug.

       dune exec examples/weak_memory.exe *)

open Portend_lang
open Portend_core

let dcl_with_use =
  let open Builder in
  program "dcl_use"
    ~globals:[ ("init_done", 0); ("singleton", 0) ]
    ~mutexes:[ "m" ]
    [ func "get_instance" []
        [ var "fast" (g "init_done");
          if_ (l "fast" == i 0)
            [ lock "m";
              var "slow" (g "init_done");
              if_ (l "slow" == i 0) [ setg "singleton" (i 7); setg "init_done" (i 1) ] [];
              unlock "m"
            ]
            [ (* fast path: the flag said initialized, so use the object *)
              var "obj" (g "singleton");
              assert_ (l "obj" != i 0) "initialized singleton is non-null"
            ]
        ];
      func "main" []
        [ spawn ~into:"t1" "get_instance" [];
          spawn ~into:"t2" "get_instance" [];
          join (l "t1");
          join (l "t2")
        ]
    ]

let () =
  let prog = Compile.compile dcl_with_use in
  let sc = Weakmem.explore ~depth:0 prog in
  Printf.printf
    "sequential consistency: %d executions explored, %d violation(s)\n"
    sc.Weakmem.executions
    (List.length sc.Weakmem.crashes);
  let weak = Weakmem.explore ~depth:2 prog in
  Printf.printf "adversarial memory:     %d executions explored, %d violation(s)\n"
    weak.Weakmem.executions
    (List.length weak.Weakmem.crashes);
  List.iter
    (fun (c, step) ->
      Fmt.pr "  weak-memory violation at step %d: %a@." step Portend_vm.Crash.pp c)
    weak.Weakmem.crashes;
  match Weakmem.weak_only_crashes prog with
  | [] -> print_endline "no weak-memory-only violations (unexpected for DCL)"
  | cs ->
    Printf.printf
      "conclusion: double-checked locking is safe here ONLY because of sequential \
       consistency — %d violation(s) appear under a weaker model.\n"
      (List.length cs)
