(* Classify races in a program written in Racelang concrete syntax — the
   same path the `portend` CLI uses for .rl files.

       dune exec examples/from_source.exe *)

open Portend_core
module D = Portend_detect

let source =
  {|
program spooler

// A print spooler: submitters enqueue jobs under the lock, but the job
// counter shown on the console is read without it.

global jobs_done = 0
global queue_len = 0
array queue[8] = 0
mutex q

fn submitter(k) {
  lock q;
  var slot = queue_len;
  if (slot < 8) {
    queue[slot] = k;
    queue_len = slot + 1;
  }
  unlock q;
  jobs_done = jobs_done + 1;     // racy statistics update
}

fn console() {
  output jobs_done;              // racy read: printed total depends on timing
}

fn main() {
  var a = spawn submitter(3);
  var b = spawn submitter(4);
  var c = spawn console();
  join a;
  join b;
  join c;
}
|}

let () =
  let prog = Portend_lang.Parser.compile_string source in
  let rec go seed =
    if seed > 64 then failwith "no completing recording"
    else
      let a = Pipeline.analyze ~seed prog in
      match a.Pipeline.record.Portend_vm.Run.stop with
      | Portend_vm.Run.Halted when a.Pipeline.races <> [] -> a
      | _ -> go (seed + 1)
  in
  let a = go 1 in
  Printf.printf "%d distinct race(s) in the spooler\n" (List.length a.Pipeline.races);
  List.iter
    (fun ra ->
      Fmt.pr "%a@.  -> %a (%s)@." D.Report.pp_race ra.Pipeline.race Taxonomy.pp_verdict
        ra.Pipeline.verdict ra.Pipeline.verdict.Taxonomy.detail)
    a.Pipeline.races
