(* Quickstart: build a small multithreaded program with the Builder eDSL,
   let Portend detect and classify its data races, and print the evidence.

       dune exec examples/quickstart.exe

   The program is the paper's motivating shape in miniature: a worker
   updates a shared request id under a lock while a statistics thread reads
   it without one and indexes a fixed-size table with it. *)

open Portend_lang
open Portend_core
module D = Portend_detect

let program =
  let open Builder in
  program "quickstart"
    ~globals:[ ("request_id", 0) ]
    ~arrays:[ ("stats", 4, 0) ]
    ~mutexes:[ "l" ]
    [ func "request_handler" []
        [ var "n" (i 0);
          while_ (l "n" < i 6)
            (critical "l" [ incr_global "request_id" ] @ [ set "n" (l "n" + i 1) ])
        ];
      func "update_stats" []
        [ (* reads the racy id without the lock, then uses it as an index *)
          var "snapshot" (g "request_id");
          if_ (l "snapshot" < i 4) [ seta "stats" (g "request_id") (i 1) ] []
        ];
      func "main" []
        [ spawn ~into:"t1" "request_handler" [];
          spawn ~into:"t2" "update_stats" [];
          join (l "t1");
          join (l "t2");
          output [ arr "stats" (i 0) ]
        ]
    ]

let () =
  let prog = Compile.compile program in
  print_endline "Racelang source:";
  print_endline (Pp.program_to_string program);
  (* Find a recording under which the program completes, then classify. *)
  let rec analyze seed =
    if seed > 64 then failwith "no completing recording found"
    else
      let a = Pipeline.analyze ~seed prog in
      match a.Pipeline.record.Portend_vm.Run.stop with
      | Portend_vm.Run.Halted -> (seed, a)
      | _ -> analyze (seed + 1)
  in
  let seed, a = analyze 1 in
  Printf.printf "recorded with scheduler seed %d: %d distinct race(s)\n\n" seed
    (List.length a.Pipeline.races);
  List.iter
    (fun ra ->
      Fmt.pr "%a@.  verdict: %a — %s@." D.Report.pp_race ra.Pipeline.race Taxonomy.pp_verdict
        ra.Pipeline.verdict ra.Pipeline.verdict.Taxonomy.detail;
      (match ra.Pipeline.evidence with
      | Some e -> print_endline (Evidence.render e)
      | None -> ());
      print_newline ())
    a.Pipeline.races
