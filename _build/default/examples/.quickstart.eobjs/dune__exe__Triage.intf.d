examples/triage.mli:
