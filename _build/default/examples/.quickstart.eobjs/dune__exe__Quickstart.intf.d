examples/quickstart.mli:
