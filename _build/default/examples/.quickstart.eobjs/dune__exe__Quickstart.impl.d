examples/quickstart.ml: Builder Compile Evidence Fmt List Pipeline Portend_core Portend_detect Portend_lang Portend_vm Pp Printf Taxonomy
