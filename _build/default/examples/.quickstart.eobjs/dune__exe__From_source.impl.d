examples/from_source.ml: Fmt List Pipeline Portend_core Portend_detect Portend_lang Portend_vm Printf Taxonomy
