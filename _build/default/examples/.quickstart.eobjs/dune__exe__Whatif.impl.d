examples/whatif.ml: Evidence Fmt List Memcached_model Pipeline Portend_core Portend_detect Portend_lang Portend_vm Portend_workloads Printf Taxonomy
