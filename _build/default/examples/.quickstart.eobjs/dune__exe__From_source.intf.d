examples/from_source.mli:
