examples/triage.ml: Array Evidence Fmt List Pipeline Portend_core Portend_detect Portend_lang Portend_vm Portend_workloads Printf Registry Suite Sys Taxonomy
