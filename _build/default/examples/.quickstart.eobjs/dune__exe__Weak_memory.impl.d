examples/weak_memory.ml: Builder Compile Fmt List Portend_core Portend_lang Portend_vm Printf Weakmem
