examples/adhoc_tour.ml: Builder Compile Fmt List Pipeline Portend_core Portend_detect Portend_lang Portend_vm Printf Taxonomy
