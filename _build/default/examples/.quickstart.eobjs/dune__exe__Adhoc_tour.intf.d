examples/adhoc_tour.mli:
