examples/whatif.mli:
