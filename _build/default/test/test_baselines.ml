(* Tests for the baseline classifiers (Record/Replay-Analyzer, ad-hoc-only
   detectors, heuristic pruning) and their characteristic failure modes. *)

open Portend_lang
open Portend_vm
open Portend_core
module B = Portend_baselines
module D = Portend_detect

let record_and_races ?(seed = 1) p =
  let prog = Compile.compile p in
  let r = Run.run ~sched:(Sched.random ~seed) (State.init prog) in
  let suppress = Static.spin_read_sites prog in
  (prog, r, D.Hb.detect_clustered ~suppress r.Run.events)

(* replay-based analysis flags ad-hoc-synchronized races as harmful *)
let adhoc_prog =
  let open Builder in
  program "adhoc" ~globals:[ ("data", 0); ("ready", 0) ]
    [ func "producer" [] [ setg "data" (i 42); setg "ready" (i 1) ];
      func "consumer" [] [ while_ (g "ready" == i 0) [ yield ]; output [ g "data" ] ];
      func "main" []
        [ spawn ~into:"a" "producer" []; spawn ~into:"b" "consumer" []; join (l "a");
          join (l "b")
        ]
    ]

let test_replay_analyzer_replay_failure () =
  let prog, r, races = record_and_races adhoc_prog in
  match races with
  | [ (race, _) ] -> (
    match B.Replay_analyzer.classify prog r.Run.trace race with
    | Ok (B.Replay_analyzer.Likely_harmful why) ->
      Alcotest.(check bool) "failure is a replay failure" true
        (Astring.String.is_prefix ~affix:"replay failure" why)
    | Ok B.Replay_analyzer.Likely_harmless -> Alcotest.fail "should not be harmless"
    | Error e -> Alcotest.failf "unexpected error: %s" e)
  | _ -> Alcotest.fail "expected exactly one race"

(* state-identical benign race is judged harmless by the replay analyzer *)
let redundant_prog =
  let open Builder in
  program "rw" ~globals:[ ("x", 0) ]
    [ func "w" [] [ setg "x" (i 7) ];
      func "main" []
        [ spawn ~into:"a" "w" []; spawn ~into:"b" "w" []; join (l "a"); join (l "b");
          output [ g "x" ]
        ]
    ]

let test_replay_analyzer_harmless () =
  let prog, r, races = record_and_races redundant_prog in
  match races with
  | [ (race, _) ] -> (
    match B.Replay_analyzer.classify prog r.Run.trace race with
    | Ok B.Replay_analyzer.Likely_harmless -> ()
    | Ok (B.Replay_analyzer.Likely_harmful why) -> Alcotest.failf "harmful?! %s" why
    | Error e -> Alcotest.failf "error: %s" e)
  | _ -> Alcotest.fail "expected exactly one race"

(* benign state difference fools the replay analyzer (Portend compares
   outputs instead and classifies k-witness) *)
let benign_diff_prog =
  let open Builder in
  program "avvish" ~globals:[ ("x", 5) ]
    [ func "w1" [] [ setg "x" (i 1) ];
      func "w2" [] [ setg "x" (i 2) ];
      func "main" []
        [ spawn ~into:"a" "w1" []; spawn ~into:"b" "w2" []; join (l "a"); join (l "b");
          output [ g "x" > i 0 ]
        ]
    ]

let test_replay_analyzer_false_harmful () =
  let prog, r, races = record_and_races benign_diff_prog in
  match races with
  | [ (race, _) ] -> (
    (match B.Replay_analyzer.classify prog r.Run.trace race with
    | Ok (B.Replay_analyzer.Likely_harmful why) ->
      Alcotest.(check bool) "states differ" true
        (Astring.String.is_infix ~affix:"states differ" why)
    | Ok B.Replay_analyzer.Likely_harmless -> Alcotest.fail "analyzer should mispredict here"
    | Error e -> Alcotest.failf "error: %s" e);
    match Classify.classify prog r.Run.trace race with
    | Ok { Classify.verdict; _ } ->
      Alcotest.(check string) "Portend gets it right" "k-witness"
        (Taxonomy.category_to_string verdict.Taxonomy.category)
    | Error e -> Alcotest.failf "portend error: %s" e)
  | _ -> Alcotest.fail "expected exactly one race"

let test_adhoc_detector () =
  let prog, r, races = record_and_races adhoc_prog in
  (match races with
  | [ (race, _) ] -> (
    match B.Adhoc_detector.classify prog r.Run.trace race with
    | Ok B.Adhoc_detector.Adhoc_synchronized -> ()
    | Ok B.Adhoc_detector.Not_classified -> Alcotest.fail "should recognize the spin flag"
    | Error e -> Alcotest.failf "error: %s" e)
  | _ -> Alcotest.fail "one race expected");
  let prog2, r2, races2 = record_and_races benign_diff_prog in
  match races2 with
  | [ (race, _) ] -> (
    match B.Adhoc_detector.classify prog2 r2.Run.trace race with
    | Ok B.Adhoc_detector.Not_classified -> ()
    | Ok B.Adhoc_detector.Adhoc_synchronized -> Alcotest.fail "nothing ad-hoc here"
    | Error e -> Alcotest.failf "error: %s" e)
  | _ -> Alcotest.fail "one race expected"

let test_heuristic () =
  let prog, _, races = record_and_races redundant_prog in
  (match races with
  | [ (race, _) ] ->
    Alcotest.(check string) "redundant write recognized" "benign (redundant write)"
      (B.Heuristic.verdict_to_string (B.Heuristic.classify prog race))
  | _ -> Alcotest.fail "one race expected");
  let open Builder in
  let counter =
    program "ctr" ~globals:[ ("c", 0) ]
      [ func "w" [] [ incr_global "c" ];
        func "main" []
          [ spawn ~into:"a" "w" []; spawn ~into:"b" "w" []; join (l "a"); join (l "b") ]
      ]
  in
  let prog2, _, races2 = record_and_races counter in
  match races2 with
  | (race, _) :: _ ->
    Alcotest.(check string) "counter update recognized" "benign (counter update)"
      (B.Heuristic.verdict_to_string (B.Heuristic.classify prog2 race))
  | [] -> Alcotest.fail "race expected"

let () =
  Alcotest.run "baselines"
    [ ( "replay-analyzer",
        [ Alcotest.test_case "replay failure -> harmful" `Quick
            test_replay_analyzer_replay_failure;
          Alcotest.test_case "state-identical -> harmless" `Quick test_replay_analyzer_harmless;
          Alcotest.test_case "benign state diff -> false harmful" `Quick
            test_replay_analyzer_false_harmful
        ] );
      ("adhoc-only", [ Alcotest.test_case "classification" `Quick test_adhoc_detector ]);
      ("heuristic", [ Alcotest.test_case "patterns" `Quick test_heuristic ])
    ]
