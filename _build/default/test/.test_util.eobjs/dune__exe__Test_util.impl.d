test/test_util.ml: Alcotest Imap List Maps Portend_util QCheck QCheck_alcotest Smap Srng Stats
