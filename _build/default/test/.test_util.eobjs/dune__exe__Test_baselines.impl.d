test/test_baselines.ml: Alcotest Astring Builder Classify Compile Portend_baselines Portend_core Portend_detect Portend_lang Portend_vm Run Sched State Static Taxonomy
