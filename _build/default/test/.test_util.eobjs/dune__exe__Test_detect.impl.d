test/test_detect.ml: Alcotest Builder Compile Events List Portend_detect Portend_lang Portend_vm QCheck QCheck_alcotest Run Sched State Static Stdlib
