test/test_vm.ml: Alcotest Builder Compile Crash List Portend_lang Portend_solver Portend_util Portend_vm Run Sched State Stdlib Trace Value
