test/test_solver.ml: Alcotest Expr Interval List Portend_solver Portend_util Printf QCheck QCheck_alcotest Simplify Solver String
