test/test_lang.ml: Alcotest Array Builder Bytecode Compile Lexer List Option Parser Portend_lang Portend_vm Portend_workloads Pp Printexc Run Sched State Static Stdlib Value
