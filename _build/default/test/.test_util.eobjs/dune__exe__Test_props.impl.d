test/test_props.ml: Alcotest Ast Compile Fun List Portend_lang Portend_solver Portend_vm Pp Printf QCheck QCheck_alcotest Run Sched State String Trace Value
