(** The assembled evaluation suite: the 7 real-world application models and
    the 4 micro-benchmarks of Table 1, in the paper's order. *)

let applications : Registry.workload list =
  [ Sqlite_model.workload;
    Ocean_model.workload;
    Fmm_model.workload;
    Memcached_model.workload;
    Pbzip2_model.workload;
    Ctrace_model.workload;
    Bbuf_model.workload
  ]

let micro_benchmarks : Registry.workload list = Micro.workloads

let all : Registry.workload list = applications @ micro_benchmarks

(** Synchronization-heavy additions (condvar and semaphore handoffs) beyond
    the paper's Table 1 — see {!Sync_models}.  Kept out of [all] so the
    Table 1/Table 3 reproductions keep the paper's exact workload set. *)
let sync_benchmarks : Registry.workload list = Sync_models.workloads

(** Everything: the paper's suite plus the synchronization additions. *)
let extended : Registry.workload list = all @ sync_benchmarks

(** Scenarios promoted from the litmus differential campaign
    ({!Litmus_regressions}), named [lit_<chash>].  Kept out of [extended]
    so the suite-level race totals keep their meaning; {!find} resolves
    them (the serve daemon and CLI look workloads up by name). *)
let litmus_regressions : Registry.workload list = Litmus_regressions.workloads

let find name =
  List.find_opt (fun w -> w.Registry.w_name = name) (extended @ litmus_regressions)

(** Total distinct races the suite is expected to contain (the paper's 93). *)
let total_expected_races =
  List.fold_left (fun acc w -> acc + Registry.total_expected w) 0 all
