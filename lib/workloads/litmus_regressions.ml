(** Regression workloads promoted from the litmus differential campaign
    ({!Portend_litmus}): enumerated scenarios pinned with their expected
    verdicts so the exact programs the harness once explored stay under
    test forever.  Names are the campaign's stable content-hash names
    ([lit_<chash>]); sources are the canonical pretty-printed form the
    enumerator emits (the same text lives in [examples/programs/<name>.rl]
    and flows through the lint/profile golden runs).

    The campaign has found no mode-matrix disagreement so far, so these
    four are representative corners of the enumerated space rather than
    minimized bug reproducers: the lost-update increment pair, the
    redundant-write pair (the canonical k-witness harmless race), the
    racy write/read pair whose post-race states differ, and the semaphore
    handoff whose happens-before edge makes it race-free.  Any future
    disagreement gets minimized and appended here by
    [portend litmus --promote]. *)

module Taxonomy = Portend_core.Taxonomy

let parse = Portend_lang.Parser.parse_program

(* Two unsynchronized increments of one counter: the classic lost update.
   Both orders print the same final value only when no interleaving splits
   a read-modify-write — the primary-effect comparison sees the lost
   update, so the race is output-differs (single-order output sets). *)
let lost_update =
  parse
    {|program lit_2870c4d41b63eff1

global v0 = 0

fn w1() {
  v0 = (v0 + 1);
}

fn w2() {
  v0 = (v0 + 1);
}

fn main() {
  var t1 = spawn w1();
  var t2 = spawn w2();
  join t1;
  join t2;
  output v0;
}
|}

(* Two racing stores of the same constant: post-race states converge and
   every alternate interleaving outputs the same value — the canonical
   k-witness harmless verdict. *)
let redundant_writes =
  parse
    {|program lit_370e70d422e6e535

global v0 = 0

fn w1() {
  v0 = 1;
}

fn w2() {
  v0 = 1;
}

fn main() {
  var t1 = spawn w1();
  var t2 = spawn w2();
  join t1;
  join t2;
  output v0;
}
|}

(* A store racing a load that feeds output: the two orders print 0 vs 1,
   and the post-race states differ. *)
let write_vs_read =
  parse
    {|program lit_370e6cd422e6de69

global v0 = 0

fn w1() {
  v0 = 1;
}

fn w2() {
  output v0;
}

fn main() {
  var t1 = spawn w1();
  var t2 = spawn w2();
  join t1;
  join t2;
  output v0;
}
|}

(* Semaphore handoff: sem_post/sem_wait orders the store before the load,
   so the detector must report no race at all. *)
let sem_handoff =
  parse
    {|program lit_1ecf6e9fc343e020

global v0 = 0
sem h = 0

fn w1() {
  v0 = 1;
  sem_post h;
}

fn w2() {
  sem_wait h;
  output v0;
}

fn main() {
  var t1 = spawn w1();
  var t2 = spawn w2();
  join t1;
  join t2;
  output v0;
}
|}

let workloads : Registry.workload list =
  [ Registry.make ~language:"Racelang" ~threads:2 ~seed:1 "lit_2870c4d41b63eff1" lost_update
      [ Registry.expect "g:v0" Taxonomy.Output_differs ~states_differ:false ];
    Registry.make ~language:"Racelang" ~threads:2 ~seed:1 "lit_370e70d422e6e535"
      redundant_writes
      [ Registry.expect "g:v0" Taxonomy.K_witness_harmless ~states_differ:false ];
    Registry.make ~language:"Racelang" ~threads:2 ~seed:1 "lit_370e6cd422e6de69" write_vs_read
      [ Registry.expect "g:v0" Taxonomy.Output_differs ~states_differ:true ];
    Registry.make ~language:"Racelang" ~threads:2 ~seed:1 "lit_1ecf6e9fc343e020" sem_handoff []
  ]
