(** Two synchronization-heavy workloads exercising the condvar, semaphore
    and atomic-region reasoning added to the static analyses.

    Both are producer/consumer models whose data handoff is provably ordered
    by synchronization the lockset analysis alone cannot see, so they are
    the benchmark cases for the sync-aware static prefilter: the handoff
    pair is pruned statically (condvar wait/signal ordering, semaphore
    bracket locksets) while one genuine — benign — race per program remains
    for the pipeline to detect and classify.

    - {b CondPC}: the producer fills a slot and signals; the consumer parks
      on the condvar before reading.  The consumer's read is behind the
      wait on every path and the producer's write dominates its only
      signal, so the pair is statically ordered (and dynamically ordered
      through the signal→wakeup edge).  Both threads also stamp the same
      value into a status flag — the one real (redundant-write) race.
      The unconditional wait carries the classic lost-signal hazard: under
      schedules where the producer signals first the consumer parks
      forever.  The recorded seed takes the handshake path.
    - {b SemPC}: the same handoff through a counting semaphore ([items],
      initially 0 — post→wait ordering, not a lock), plus a binary
      semaphore ([slot], initially 1) bracketing a shared operation counter
      on both sides; [slot] qualifies as a lock, so the counter updates
      share a must-held pseudo-lock and are pruned statically.  Both
      threads race on the same status flag as above.  Deadlock-free in
      every schedule. *)

open Portend_lang.Builder

let cond_pc : Portend_lang.Ast.program =
  program "CondPC" ~globals:[ ("slot", 0); ("seen", 0) ] ~mutexes:[ "m" ] ~conds:[ "c" ]
    [ func "consumer" []
        [ lock "m";
          wait "c" "m";
          unlock "m";
          var "v" (g "slot");
          setg "seen" (i 1);
          output [ l "v" ]
        ];
      func "producer" []
        [ setg "slot" (i 42);
          lock "m";
          signal "c";
          unlock "m";
          setg "seen" (i 1)
        ];
      func "main" []
        [ spawn ~into:"tc" "consumer" [];
          spawn ~into:"tp" "producer" [];
          join (l "tc");
          join (l "tp");
          output [ g "slot"; g "seen" ]
        ]
    ]

let sem_pc : Portend_lang.Ast.program =
  program "SemPC"
    ~globals:[ ("slot", 0); ("nops", 0); ("seen", 0) ]
    ~sems:[ ("items", 0); ("guard", 1) ]
    [ func "producer" []
        [ setg "slot" (i 42);
          sem_post "items";
          sem_wait "guard";
          incr_global "nops";
          sem_post "guard";
          setg "seen" (i 1)
        ];
      func "consumer" []
        [ sem_wait "items";
          var "v" (g "slot");
          sem_wait "guard";
          incr_global "nops";
          sem_post "guard";
          setg "seen" (i 1);
          output [ l "v" ]
        ];
      func "main" []
        [ spawn ~into:"tp" "producer" [];
          spawn ~into:"tc" "consumer" [];
          join (l "tp");
          join (l "tc");
          output [ g "slot"; g "nops"; g "seen" ]
        ]
    ]

let kw = Registry.Taxonomy.K_witness_harmless

let workloads : Registry.workload list =
  [ Registry.make ~language:"C" ~threads:2 ~seed:1 "CondPC" cond_pc
      [ Registry.expect "g:seen" kw ~states_differ:false ];
    Registry.make ~language:"C" ~threads:2 ~seed:1 "SemPC" sem_pc
      [ Registry.expect "g:seen" kw ~states_differ:false ]
  ]
