(* Spans, counters, gauges and timers with per-domain sinks.

   Design constraints, in priority order:
   - disabled cost ~ one atomic load per call site (the pipeline is
     instrumented on hot-ish paths and must stay within noise when off);
   - no contention between Pool.map worker domains when enabled: each
     domain owns a sink (domain-local storage) and takes only its own
     sink's lock per operation;
   - recording never influences behavior: nothing in here is read back by
     instrumented code, so classifications are identical enabled or
     disabled. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type event = {
  ev_begin : bool;
  ev_name : string;
  ev_ts_us : float;
  ev_dom : int;
  ev_args : (string * string) list;
}

type timer = {
  t_count : int;
  t_total_s : float;
}

type gauge_agg = {
  g_samples : int;
  g_last : int;
  g_max : int;
}

(* Cap the event buffer so a long suite run with tracing on cannot grow
   without bound; drops are themselves counted. *)
let max_events_per_sink = 500_000

type sink = {
  s_dom : int;
  s_lock : Mutex.t;  (* taken by the owning domain per op, by snapshot/reset *)
  s_counters : (string, int) Hashtbl.t;
  s_timers : (string, timer) Hashtbl.t;
  s_gauges : (string, gauge_agg) Hashtbl.t;
  mutable s_events : event list;  (* newest first *)
  mutable s_n_events : int;
  mutable s_last_ts : float;  (* enforces per-sink monotone timestamps *)
}

(* Every sink ever created, so data outlives short-lived helper domains. *)
let sinks : sink list ref = ref []
let sinks_lock = Mutex.create ()

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let new_sink () =
  let s =
    { s_dom = (Domain.self () :> int);
      s_lock = Mutex.create ();
      s_counters = Hashtbl.create 64;
      s_timers = Hashtbl.create 32;
      s_gauges = Hashtbl.create 16;
      s_events = [];
      s_n_events = 0;
      s_last_ts = 0.0
    }
  in
  locked sinks_lock (fun () -> sinks := s :: !sinks);
  s

let sink_key : sink Domain.DLS.key = Domain.DLS.new_key new_sink
let my_sink () = Domain.DLS.get sink_key

let now_us () = Unix.gettimeofday () *. 1e6

(* Monotone per sink: gettimeofday can step backwards under clock
   adjustment; clamping keeps every sink's event stream non-decreasing
   (and the merged, sorted stream too). *)
let stamp s =
  let t = now_us () in
  let t = if t > s.s_last_ts then t else s.s_last_ts in
  s.s_last_ts <- t;
  t

let bump tbl name by =
  match Hashtbl.find_opt tbl name with
  | Some v -> Hashtbl.replace tbl name (v + by)
  | None -> Hashtbl.replace tbl name by

let incr ?(by = 1) name =
  if enabled () then begin
    let s = my_sink () in
    locked s.s_lock (fun () -> bump s.s_counters name by)
  end

let observe_s name dt =
  if enabled () then begin
    let s = my_sink () in
    locked s.s_lock (fun () ->
        let t =
          match Hashtbl.find_opt s.s_timers name with
          | Some t -> { t_count = t.t_count + 1; t_total_s = t.t_total_s +. dt }
          | None -> { t_count = 1; t_total_s = dt }
        in
        Hashtbl.replace s.s_timers name t)
  end

let gauge name v =
  if enabled () then begin
    let s = my_sink () in
    locked s.s_lock (fun () ->
        let g =
          match Hashtbl.find_opt s.s_gauges name with
          | Some g -> { g_samples = g.g_samples + 1; g_last = v; g_max = max g.g_max v }
          | None -> { g_samples = 1; g_last = v; g_max = v }
        in
        Hashtbl.replace s.s_gauges name g)
  end

let emit s ~is_begin name args =
  locked s.s_lock (fun () ->
      if s.s_n_events >= max_events_per_sink then bump s.s_counters "telemetry.events_dropped" 1
      else begin
        let ev =
          { ev_begin = is_begin; ev_name = name; ev_ts_us = stamp s; ev_dom = s.s_dom;
            ev_args = args
          }
        in
        s.s_events <- ev :: s.s_events;
        s.s_n_events <- s.s_n_events + 1
      end)

let with_span ?(args = []) name f =
  (* Decide once at entry: if telemetry is toggled mid-span we either skip
     the span entirely or close the one we opened — never emit an
     unmatched begin/end. *)
  if not (enabled ()) then f ()
  else begin
    let s = my_sink () in
    let t0 = Unix.gettimeofday () in
    emit s ~is_begin:true name args;
    Fun.protect
      ~finally:(fun () ->
        emit s ~is_begin:false name [];
        let dt = Unix.gettimeofday () -. t0 in
        locked s.s_lock (fun () ->
            let t =
              match Hashtbl.find_opt s.s_timers name with
              | Some t -> { t_count = t.t_count + 1; t_total_s = t.t_total_s +. dt }
              | None -> { t_count = 1; t_total_s = dt }
            in
            Hashtbl.replace s.s_timers name t))
      f
  end

(* --- snapshots ----------------------------------------------------- *)

type snapshot = {
  counters : (string * int) list;
  timers : (string * timer) list;
  gauges : (string * gauge_agg) list;
  events : event list;
}

let snapshot () =
  let all = locked sinks_lock (fun () -> !sinks) in
  let counters = Hashtbl.create 64 in
  let timers = Hashtbl.create 32 in
  let gauges = Hashtbl.create 16 in
  let events = ref [] in
  List.iter
    (fun s ->
      locked s.s_lock (fun () ->
          Hashtbl.iter (fun k v -> bump counters k v) s.s_counters;
          Hashtbl.iter
            (fun k (t : timer) ->
              let merged =
                match Hashtbl.find_opt timers k with
                | Some m ->
                  { t_count = m.t_count + t.t_count; t_total_s = m.t_total_s +. t.t_total_s }
                | None -> t
              in
              Hashtbl.replace timers k merged)
            s.s_timers;
          Hashtbl.iter
            (fun k (g : gauge_agg) ->
              let merged =
                match Hashtbl.find_opt gauges k with
                | Some m ->
                  { g_samples = m.g_samples + g.g_samples;
                    (* "last" across domains: keep the sample from the sink
                       seen last; only max and sample count are meaningful
                       cross-domain. *)
                    g_last = g.g_last;
                    g_max = max m.g_max g.g_max
                  }
                | None -> g
              in
              Hashtbl.replace gauges k merged)
            s.s_gauges;
          events := List.rev_append s.s_events !events))
    all;
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  { counters = sorted counters;
    timers = sorted timers;
    gauges = sorted gauges;
    events = List.stable_sort (fun a b -> compare a.ev_ts_us b.ev_ts_us) !events
  }

let reset () =
  let all = locked sinks_lock (fun () -> !sinks) in
  List.iter
    (fun s ->
      locked s.s_lock (fun () ->
          Hashtbl.reset s.s_counters;
          Hashtbl.reset s.s_timers;
          Hashtbl.reset s.s_gauges;
          s.s_events <- [];
          s.s_n_events <- 0))
    all

let counter snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let timer_s snap name =
  match List.assoc_opt name snap.timers with Some t -> t.t_total_s | None -> 0.0

(* --- Chrome-trace exporter ----------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json snap =
  let t0 = match snap.events with [] -> 0.0 | ev :: _ -> ev.ev_ts_us in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"portend\",\"ph\":\"%s\",\"ts\":%.1f,\"pid\":1,\"tid\":%d"
           (json_escape ev.ev_name)
           (if ev.ev_begin then "B" else "E")
           (ev.ev_ts_us -. t0) ev.ev_dom);
      if ev.ev_args <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          ev.ev_args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    snap.events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* --- summary-table exporter ---------------------------------------- *)

let render_table buf ~title ~header rows =
  if rows <> [] then begin
    let widths =
      List.fold_left
        (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
        (List.map String.length header)
        rows
    in
    let line row =
      String.concat "  " (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
    in
    Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
    Buffer.add_string buf (line header);
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (String.length (line header)) '-');
    Buffer.add_char buf '\n';
    List.iter
      (fun row ->
        Buffer.add_string buf (line row);
        Buffer.add_char buf '\n')
      rows;
    Buffer.add_char buf '\n'
  end

let summary_table ?(times = true) snap =
  let buf = Buffer.create 1024 in
  let timer_rows =
    List.map
      (fun (name, t) ->
        if times then
          [ name;
            string_of_int t.t_count;
            Printf.sprintf "%.4f" t.t_total_s;
            Printf.sprintf "%.2f" (1000.0 *. t.t_total_s /. float_of_int (max 1 t.t_count))
          ]
        else [ name; string_of_int t.t_count ])
      snap.timers
  in
  render_table buf ~title:"phases (spans and latency accumulators)"
    ~header:(if times then [ "phase"; "count"; "total (s)"; "mean (ms)" ] else [ "phase"; "count" ])
    timer_rows;
  render_table buf ~title:"counters" ~header:[ "counter"; "value" ]
    (List.map (fun (name, v) -> [ name; string_of_int v ]) snap.counters);
  render_table buf ~title:"gauges" ~header:[ "gauge"; "samples"; "last"; "max" ]
    (List.map
       (fun (name, g) ->
         [ name; string_of_int g.g_samples; string_of_int g.g_last; string_of_int g.g_max ])
       snap.gauges);
  Buffer.contents buf
