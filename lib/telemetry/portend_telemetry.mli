(** Structured observability for the Portend pipeline: spans, counters,
    gauges and duration accumulators, with per-domain sinks and three
    exporters (Chrome-trace JSON, a flat summary table, and snapshot
    accessors for machine-readable reports).

    The whole API is {e off by default} and verdict-neutral: when disabled,
    every operation is a single atomic-flag read and instrumented code takes
    no other branch; when enabled, instrumentation only ever records — it
    never feeds back into scheduling, exploration, or solving, so an
    enabled and a disabled run produce bit-for-bit identical
    classifications (asserted by the test suite).

    Each domain writes to its own sink (domain-local storage), so
    [Pool.map] workers never contend on a shared structure; sinks register
    themselves in a global list and survive their domain, and
    {!snapshot} aggregates across all of them. *)

(** {1 Enabling} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Recording} *)

(** [with_span ?args name f] runs [f] inside a named span: a begin/end
    event pair in the Chrome trace plus an entry in the duration table.
    Nesting is per-domain (a span opened on one domain is closed on the
    same domain even if [f] fans work out to others). *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [incr ?by name] bumps the named counter (default [by = 1]). *)
val incr : ?by:int -> string -> unit

(** [observe_s name dt] accumulates a duration (seconds) under [name] —
    e.g. per-verdict classification latency. *)
val observe_s : string -> float -> unit

(** [gauge name v] records a sample of an instantaneous value (e.g. pool
    queue depth); the snapshot keeps sample count, last and max. *)
val gauge : string -> int -> unit

(** {1 Snapshots} *)

type event = {
  ev_begin : bool;  (** [true] = span begin, [false] = span end *)
  ev_name : string;
  ev_ts_us : float;  (** microseconds, non-decreasing per domain *)
  ev_dom : int;  (** the recording domain's id *)
  ev_args : (string * string) list;
}

type timer = {
  t_count : int;
  t_total_s : float;
}

type gauge_agg = {
  g_samples : int;
  g_last : int;
  g_max : int;
}

type snapshot = {
  counters : (string * int) list;  (** summed across domains, sorted *)
  timers : (string * timer) list;  (** span durations and [observe_s] *)
  gauges : (string * gauge_agg) list;
  events : event list;  (** chronological (sorted by timestamp) *)
}

(** Aggregate every domain's sink. *)
val snapshot : unit -> snapshot

(** Drop all recorded data (counters, timers, gauges, events). *)
val reset : unit -> unit

(** [counter snap name] — the counter's value, [0] when absent. *)
val counter : snapshot -> string -> int

(** Total seconds accumulated under a timer name, [0.] when absent. *)
val timer_s : snapshot -> string -> float

(** {1 Exporters} *)

(** Chrome-trace JSON ([chrome://tracing] / Perfetto "trace event"
    format): an object with a [traceEvents] array of [B]/[E] events,
    timestamps rebased to the earliest event. *)
val to_chrome_json : snapshot -> string

(** Flat per-phase summary: spans/durations, counters and gauges as
    aligned text tables.  [times:false] elides every wall-clock column
    (durations, means) so the output is deterministic — the golden-file
    test renders this mode. *)
val summary_table : ?times:bool -> snapshot -> string
