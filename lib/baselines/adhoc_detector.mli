(** Ad-hoc-synchronization-only classifiers — the Helgrind+ [27] and
    Ad-Hoc-Detector [55] family the paper compares against in Table 5.
    They recognize busy-wait synchronization and prune the races it orders;
    they classify nothing else. *)

type verdict =
  | Adhoc_synchronized  (** maps to “single ordering” *)
  | Not_classified

(** Classify a race the way these tools do: test dynamically (with ideal
    recognition, §5.4) whether the race is ordered by ad-hoc
    synchronization; everything else is left unclassified. *)
val classify :
  Portend_lang.Bytecode.t ->
  Portend_vm.Trace.t ->
  Portend_detect.Report.race ->
  (verdict, string) result

(** Projection onto the four-category taxonomy for accuracy scoring. *)
val as_category : verdict -> Portend_core.Taxonomy.category option

val verdict_to_string : verdict -> string
