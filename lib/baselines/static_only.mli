(** A purely static race detector used as a classifier: every static
    candidate pair is called a potential bug, spin-loop synchronization
    reads are called ad-hoc synchronization, and nothing else is
    classified.  Its Table 5 row measures how much accuracy dynamic
    evidence buys over a detector-as-classifier. *)

type verdict =
  | Potential_race_bug  (** a static candidate pair: flagged harmful *)
  | Adhoc_flag  (** a spin-loop synchronization read: flagged single ordering *)
  | Not_candidate  (** not even a static candidate: nothing to say *)

(** Classify with a precomputed static report and spin-read site list (one
    of each serves every race of a program). *)
val classify_with :
  Portend_analysis.Static_report.t ->
  (string * int) list ->
  Portend_detect.Report.race ->
  verdict

val classify : Portend_lang.Bytecode.t -> Portend_detect.Report.race -> verdict

(** Projection onto the four-category taxonomy for Table 5 scoring;
    [None] = not classified. *)
val as_category : verdict -> Portend_core.Taxonomy.category option

val verdict_to_string : verdict -> string
