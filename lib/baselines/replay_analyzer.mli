(** Record/Replay-Analyzer [45], the replay-based race classifier the paper
    compares against (§5.4, Table 5): enforce the alternate ordering and
    compare concrete post-race state.  Replay failures are conservatively
    called harmful, and state (not output) comparison counts benign
    differences as harmful — the two weaknesses Table 5 quantifies. *)

type verdict =
  | Likely_harmful of string
  | Likely_harmless

(** Classify [race] the Record/Replay-Analyzer way. *)
val classify :
  Portend_lang.Bytecode.t ->
  Portend_vm.Trace.t ->
  Portend_detect.Report.race ->
  (verdict, string) result

(** Projection for accuracy scoring: harmful maps to specViol, harmless to
    k-witness; no outDiff or singleOrd classes. *)
val as_category : verdict -> Portend_core.Taxonomy.category

val verdict_to_string : verdict -> string
