(** A purely static race detector used {e as a classifier} — the
    RacerX/Relay-style point of comparison the whole Portend pipeline
    argues against: static tools can enumerate suspicious pairs cheaply,
    but having no execution to consult they must call every candidate a
    bug.

    Given a dynamically detected race, the classifier consults only the
    static analyses: a race whose sites are spin-loop synchronization
    reads is flagged ad-hoc synchronization (static busy-wait recognition
    à la [27, 55]); any other candidate pair is reported {e potentially
    harmful} — which is what makes its Table 5 row a measure of how much
    accuracy the dynamic evidence buys. *)

module B = Portend_lang.Bytecode
module R = Portend_detect.Report
module SR = Portend_analysis.Static_report
module Core = Portend_core

type verdict =
  | Potential_race_bug  (** a static candidate pair: flagged harmful *)
  | Adhoc_flag  (** a spin-loop synchronization read: flagged single ordering *)
  | Not_candidate  (** not even a static candidate: nothing to say *)

let site_of (a : R.access) =
  (a.R.a_site.Portend_vm.Events.func, a.R.a_site.Portend_vm.Events.pc)

(** Classify with a precomputed static report (one report serves every race
    of a program). *)
let classify_with (report : SR.t) (spin : (string * int) list) (race : R.race) : verdict =
  let s1 = site_of race.R.first and s2 = site_of race.R.second in
  if List.mem s1 spin || List.mem s2 spin then Adhoc_flag
  else if SR.covers report s1 s2 then Potential_race_bug
  else Not_candidate

let classify (prog : B.t) (race : R.race) : verdict =
  classify_with (SR.analyze prog) (Portend_lang.Static.spin_read_sites prog) race

(** Projection onto the four-category taxonomy for Table 5 accuracy
    scoring: every candidate is called specViol (the static
    false-positive profile), spin reads singleOrd, and a non-candidate is
    not classified. *)
let as_category = function
  | Potential_race_bug -> Some Core.Taxonomy.Spec_violated
  | Adhoc_flag -> Some Core.Taxonomy.Single_ordering
  | Not_candidate -> None

let verdict_to_string = function
  | Potential_race_bug -> "potential race bug (static candidate)"
  | Adhoc_flag -> "ad-hoc synchronization (spin read)"
  | Not_candidate -> "not a static candidate"
