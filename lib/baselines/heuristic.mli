(** A DataCollider-style heuristic pruner [29]: recognizes syntactic
    patterns of likely-harmless races (redundant constant stores, counter
    updates) without executing anything. *)

type verdict =
  | Benign_redundant_write  (** both sites store the same compile-time constant *)
  | Benign_counter_update  (** the write site is an increment/decrement *)
  | Unknown

val classify : Portend_lang.Bytecode.t -> Portend_detect.Report.race -> verdict
val verdict_to_string : verdict -> string
