(** A small generic forward-dataflow fixpoint engine over {!Cfg}.

    Worklist iteration to a fixpoint; the abstract state is whatever the
    client provides (the lockset analysis uses lock-set pairs, the MHP
    analysis join-tracking lattices).  Unreachable program points are
    represented as [None] in the result — no state ever flowed there — so
    clients need no artificial bottom element and every [join] sees two
    genuinely reachable states. *)

module B = Portend_lang.Bytecode

type 'a spec = {
  entry : 'a;  (** state on entry to pc 0 *)
  join : 'a -> 'a -> 'a;  (** merge at control-flow confluences *)
  equal : 'a -> 'a -> bool;  (** convergence test *)
  transfer : int -> B.inst -> 'a -> 'a;  (** effect of one instruction *)
}

val forward_from : Cfg.t -> 'a spec -> starts:(int * 'a) list -> 'a option array
(** Like {!forward} but seeding the iteration at arbitrary points — used by
    analyses whose facts only exist downstream of some instruction (e.g.
    "has this spawn been joined", seeded at the spawn's successors). *)

val forward : Cfg.t -> 'a spec -> 'a option array
(** In-state before each instruction, starting from function entry;
    [None] = unreachable.  Terminates whenever [join] is monotone-bounded
    (finite lattice height), which all clients in this library satisfy
    (powersets of a program's locks, small finite enums). *)
