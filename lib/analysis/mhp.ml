(** May-happen-in-parallel analysis from the program's spawn/join structure.

    Abstract threads are the main thread plus one per [ISpawn] site; each
    abstract thread may stand for many runtime threads (a spawn inside a
    loop, or in a function entered more than once).  Two instruction sites
    may happen in parallel unless this module can prove an ordering, so the
    default answer is [true] — every refinement below corresponds to a
    happens-before edge the dynamic detector also has (spawn, join, program
    order), which is what makes MHP pruning sound for the candidate
    generator:

    - a site in the spawning function that cannot CFG-reach the spawn
      executes before the child exists;
    - a site the must-join analysis proves downstream of [IJoin] on the
      spawn's thread id executes after the child has terminated;
    - a sibling child whose join must precede the other sibling's spawn is
      fully ordered before it;
    - two sites run by the same single-instance abstract thread are ordered
      by program order;
    - {b barrier phases}: when a barrier's party count equals the number of
      abstract threads, all single-instance, and every one of its wait sites
      sits straight-line in a thread entry function, the k-th crossing is a
      global rendezvous — all threads arrive exactly k times before it
      completes.  A site whose maximum crossing count is below another
      site's minimum therefore lies in an earlier phase and is ordered
      before it (if the later phase is ever reached; if some thread never
      arrives, the crossing never completes and the claim is vacuous);
    - {b condvar wait/signal}: when every signal/broadcast of a condition
      variable lives in one single-instance thread's entry function, a site
      that dominates all of them and is unreachable after any of them
      executes before whichever signal completes a wait.  A site that can
      only be reached after a completed wait on that condvar (the VM has no
      spurious wakeups) is therefore ordered after it through the
      signal→wakeup edge.

    Each refinement corresponds to an edge the dynamic detector also draws
    (barrier arrival→departure, signal→wakeup), which is what keeps the
    pruning sound. *)

open Portend_util.Maps
module B = Portend_lang.Bytecode

type thread =
  | Main
  | Spawned of { host : string; spawn_pc : int; entry : string }

type count = One | Many

(* Has the runtime thread created at a spawn site definitely been joined by
   the time control reaches a pc of the spawning function?  [Lost] means
   the register holding the thread id was overwritten, so a later [IJoin]
   on it joins someone else. *)
type joinst = Not_joined | Joined | Lost

type t = {
  cfgs : Cfg.t Smap.t;
  threads : thread list;
  closures : (thread * Sset.t) list;  (** functions each thread may execute *)
  instances : (thread * count) list;
  execs : count Smap.t;  (** entries per function over a whole run *)
  joined_at : ((string * int) * bool array) list;
      (** spawn site -> per-pc "must be joined here" in the host function *)
  barrier_phases : (int array * int array) Smap.t Smap.t;
      (** qualified barrier -> entry function -> per-pc (min, max) number of
          crossings of that barrier before the instruction executes *)
  cond_waited : bool array Smap.t Smap.t;
      (** condvar -> function -> per-pc "a wait on it completed on every
          path here" *)
  cond_signallers : (string * (thread * string * bool array)) list;
      (** condvar -> its unique single-instance signalling thread, that
          thread's entry function, and per-pc "dominates every
          signal/broadcast site and is unreachable after all of them" *)
}

let inst_dest (inst : B.inst) : int option =
  match inst with
  | B.IBin (d, _, _, _) | B.IUn (d, _, _) | B.IMov (d, _) | B.ILoadG (d, _)
  | B.ILoadA (d, _, _) | B.IInput (d, _, _) -> Some d
  | B.ICall (d, _, _) | B.ISpawn (d, _, _) -> d
  | B.IStoreG _ | B.IStoreA _ | B.IJmp _ | B.IBr _ | B.IRet _ | B.IJoin _ | B.ILock _
  | B.IUnlock _ | B.IWait _ | B.ISignal _ | B.IBroadcast _ | B.IBarrier _ | B.ISemWait _
  | B.ISemPost _ | B.IAtomicBegin | B.IAtomicEnd | B.IOutput _ | B.IOutputStr _
  | B.IAssert _ | B.IYield | B.IFree _ -> None

let entry_of = function Main -> "main" | Spawned { entry; _ } -> entry

(* Call-closure of an entry function: everything the thread rooted there
   may execute via ICall (spawned functions belong to the child thread). *)
let call_closure (prog : B.t) (entry : string) : Sset.t =
  let rec go acc name =
    if Sset.mem name acc then acc
    else
      match B.find_func prog name with
      | None -> acc
      | Some f ->
        Sset.fold
          (fun callee acc -> go acc callee)
          (Portend_lang.Static.callees_of_func f)
          (Sset.add name acc)
  in
  go Sset.empty entry

(* How many times each function may be entered over a whole run, counting
   both call and spawn sites; [main] is entered once by the runtime.
   Monotone fixpoint over One < Many. *)
let compute_execs (prog : B.t) (cfgs : Cfg.t Smap.t) : count Smap.t =
  let sites =
    Smap.fold
      (fun host (f : B.func) acc ->
        let cfg = Smap.find host cfgs in
        let add acc target pc =
          let entry = Smap.find_or target acc ~default:[] in
          Smap.add target ((host, Cfg.in_loop cfg pc) :: entry) acc
        in
        let acc = ref acc in
        Array.iteri
          (fun pc inst ->
            match inst with
            | B.ICall (_, g, _) | B.ISpawn (_, g, _) -> acc := add !acc g pc
            | _ -> ())
          f.B.code;
        !acc)
      prog.B.funcs Smap.empty
  in
  let eval execs fname =
    let contribs =
      List.map
        (fun (host, in_loop) ->
          if in_loop then Many else Smap.find_or host execs ~default:One)
        (Smap.find_or fname sites ~default:[])
    in
    let contribs = if fname = "main" then One :: contribs else contribs in
    match contribs with
    | [] | [ One ] -> One
    | [ Many ] -> Many
    | _ -> Many  (* two or more entry sites: conservatively many *)
  in
  let rec iterate execs =
    let next = Smap.mapi (fun fname _ -> eval execs fname) prog.B.funcs in
    if Smap.equal ( = ) execs next then next else iterate next
  in
  iterate (Smap.map (fun _ -> One) prog.B.funcs)

let must_join_array (cfg : Cfg.t) ~spawn_pc ~dest : bool array =
  let n = Cfg.n_insts cfg in
  match dest with
  | None -> Array.make (max n 1) false  (* thread id discarded: never joinable *)
  | Some r ->
    let join a b =
      match (a, b) with
      | Joined, Joined -> Joined
      | Lost, _ | _, Lost -> Lost
      | _ -> Not_joined
    in
    let transfer _pc inst s =
      match (inst, s) with
      | _, Lost -> Lost
      | B.IJoin (B.Reg r'), _ when r' = r -> Joined
      | _ -> if inst_dest inst = Some r then Lost else s
    in
    let starts =
      List.filter_map
        (fun p -> if p < n then Some (p, Not_joined) else None)
        cfg.Cfg.succ.(spawn_pc)
    in
    let states =
      Dataflow.forward_from cfg
        { Dataflow.entry = Not_joined; join; equal = ( = ); transfer }
        ~starts
    in
    Array.map (function Some Joined -> true | _ -> false) states

(* Functions that appear as an ICall target anywhere.  Sites inside them
   have no fixed barrier phase / signal dominance relative to a thread
   entry, so the synchronization refinements below skip them. *)
let called_funcs (prog : B.t) : Sset.t =
  Smap.fold
    (fun _ (f : B.func) acc ->
      Array.fold_left
        (fun acc inst -> match inst with B.ICall (_, g, _) -> Sset.add g acc | _ -> acc)
        acc f.B.code)
    prog.B.funcs Sset.empty

(* Classic iterative dominators: [dom.(p).(q)] = every path from entry to
   [p] passes [q].  Functions are tens of instructions, so the dense
   representation is fine. *)
let dominators (cfg : Cfg.t) : bool array array =
  let n = Cfg.n_insts cfg in
  let dom = Array.init (max n 1) (fun _ -> Array.make (max n 1) true) in
  if n > 0 then begin
    Array.iteri (fun q _ -> dom.(0).(q) <- q = 0) dom.(0);
    let changed = ref true in
    while !changed do
      changed := false;
      for p = 1 to n - 1 do
        match cfg.Cfg.pred.(p) with
        | [] -> ()  (* unreachable: keep the all-true top element *)
        | preds ->
          for q = 0 to n - 1 do
            let v = (q = p) || List.for_all (fun pr -> dom.(pr).(q)) preds in
            if v <> dom.(p).(q) then begin
              dom.(p).(q) <- v;
              changed := true
            end
          done
      done
    done
  end;
  dom

(* Per-pc min/max number of [IBarrier b] crossings before the instruction
   at pc executes.  Only called when no crossing site of [b] is inside a
   loop, so the max converges; the cap is belt and braces (and, sitting
   above any reachable min, can never fake an ordering). *)
let phase_counts (cfg : Cfg.t) (b : string) : int array * int array =
  let count_transfer _pc inst v =
    match inst with B.IBarrier b' when b' = b -> v + 1 | _ -> v
  in
  let cap =
    1
    + Array.fold_left
        (fun acc inst -> match inst with B.IBarrier b' when b' = b -> acc + 1 | _ -> acc)
        1 cfg.Cfg.func.B.code
  in
  let run join =
    Dataflow.forward cfg
      { Dataflow.entry = 0;
        join;
        equal = ( = );
        transfer = (fun pc inst v -> min cap (count_transfer pc inst v))
      }
  in
  let lo = run min and hi = run max in
  (* Unreachable sites never execute: order them before and after
     everything (both claims are vacuous). *)
  ( Array.map (function Some v -> v | None -> max_int) lo,
    Array.map (function Some v -> v | None -> min_int) hi )

(* Barrier-phase partitioning (module comment, bullet five).  A barrier
   qualifies when crossings are global rendezvous with a well-defined
   per-thread round number: parties = number of abstract threads, every
   thread single-instance, and every wait site straight-line (not in a
   loop) in an uncalled thread entry function. *)
let compute_barrier_phases (prog : B.t) (cfgs : Cfg.t Smap.t) ~(threads : thread list)
    ~(all_single : bool) : (int array * int array) Smap.t Smap.t =
  let called = called_funcs prog in
  let entry_funcs =
    List.fold_left (fun acc th -> Sset.add (entry_of th) acc) Sset.empty threads
  in
  let sites_of b =
    Smap.fold
      (fun fname (f : B.func) acc ->
        let acc = ref acc in
        Array.iteri
          (fun pc inst -> match inst with B.IBarrier b' when b' = b -> acc := (fname, pc) :: !acc | _ -> ())
          f.B.code;
        !acc)
      prog.B.funcs []
  in
  List.fold_left
    (fun acc (b, parties) ->
      let sites = sites_of b in
      let qualified =
        all_single
        && parties = List.length threads
        && sites <> []
        && List.for_all
             (fun (fname, pc) ->
               Sset.mem fname entry_funcs
               && (not (Sset.mem fname called))
               && not (Cfg.in_loop (Smap.find fname cfgs) pc))
             sites
      in
      if not qualified then acc
      else
        let per_fn =
          Sset.fold
            (fun fname m -> Smap.add fname (phase_counts (Smap.find fname cfgs) b) m)
            entry_funcs Smap.empty
        in
        Smap.add b per_fn acc)
    Smap.empty prog.B.barriers

(* Condvar refinement data (module comment, bullet six). *)
let compute_cond_orders (prog : B.t) (cfgs : Cfg.t Smap.t)
    ~(closures : (thread * Sset.t) list) ~(instances : (thread * count) list) :
    bool array Smap.t Smap.t * (string * (thread * string * bool array)) list =
  let called = called_funcs prog in
  let conds =
    Smap.fold
      (fun _ (f : B.func) acc ->
        Array.fold_left
          (fun acc inst ->
            match inst with
            | B.IWait (c, _) | B.ISignal c | B.IBroadcast c -> Sset.add c acc
            | _ -> acc)
          acc f.B.code)
      prog.B.funcs Sset.empty
  in
  (* must-have-completed-a-wait, per condvar and function *)
  let waited =
    Sset.fold
      (fun c acc ->
        let per_fn =
          Smap.fold
            (fun fname (f : B.func) m ->
              let has_wait =
                Array.exists (function B.IWait (c', _) -> c' = c | _ -> false) f.B.code
              in
              if not has_wait then m
              else
                let cfg = Smap.find fname cfgs in
                let states =
                  Dataflow.forward cfg
                    { Dataflow.entry = false;
                      join = ( && );
                      equal = ( = );
                      transfer =
                        (fun _ inst v ->
                          match inst with B.IWait (c', _) when c' = c -> true | _ -> v)
                    }
                in
                Smap.add fname
                  (Array.map (function Some v -> v | None -> true) states)
                  m)
            prog.B.funcs Smap.empty
        in
        if Smap.is_empty per_fn then acc else Smap.add c per_fn acc)
      conds Smap.empty
  in
  let signallers =
    Sset.fold
      (fun c acc ->
        let sites =
          Smap.fold
            (fun fname (f : B.func) l ->
              let l = ref l in
              Array.iteri
                (fun pc inst ->
                  match inst with
                  | B.ISignal c' | B.IBroadcast c' when c' = c -> l := (fname, pc) :: !l
                  | _ -> ())
                f.B.code;
              !l)
            prog.B.funcs []
        in
        match sites with
        | [] -> acc
        | (g, _) :: _ when List.for_all (fun (f, _) -> f = g) sites && not (Sset.mem g called) -> (
          (* all signals live in [g]; demand a unique single-instance
             executor so "the" signalling thread is well-defined *)
          let execs_g =
            List.filter (fun (_, closure) -> Sset.mem g closure) closures |> List.map fst
          in
          match execs_g with
          | [ th ] when List.assoc_opt th instances = Some One ->
            let cfg = Smap.find g cfgs in
            let dom = dominators cfg in
            let sig_pcs = List.map snd sites in
            let after_sig =
              List.map (fun pc -> Cfg.reachable_after cfg pc) sig_pcs
            in
            let n = Cfg.n_insts cfg in
            let ok =
              Array.init (max n 1) (fun pcY ->
                  pcY < n
                  && List.for_all (fun pc_s -> dom.(pc_s).(pcY)) sig_pcs
                  && List.for_all (fun ra -> not ra.(pcY)) after_sig)
            in
            (c, (th, g, ok)) :: acc
          | _ -> acc)
        | _ -> acc)
      conds []
  in
  (waited, signallers)

let analyze_with_cfgs (prog : B.t) (cfgs : Cfg.t Smap.t) : t =
  let execs = compute_execs prog cfgs in
  let spawn_sites =
    Smap.fold
      (fun host (f : B.func) acc ->
        let acc = ref acc in
        Array.iteri
          (fun pc inst ->
            match inst with
            | B.ISpawn (dest, entry, _) -> acc := (host, pc, dest, entry) :: !acc
            | _ -> ())
          f.B.code;
        !acc)
      prog.B.funcs []
    |> List.rev
  in
  let threads =
    Main
    :: List.map
         (fun (host, spawn_pc, _dest, entry) -> Spawned { host; spawn_pc; entry })
         spawn_sites
  in
  let closures =
    List.map
      (fun th ->
        let entry = match th with Main -> "main" | Spawned { entry; _ } -> entry in
        (th, call_closure prog entry))
      threads
  in
  let instances =
    List.map
      (fun th ->
        let c =
          match th with
          | Main -> One
          | Spawned { host; spawn_pc; _ } ->
            if Cfg.in_loop (Smap.find host cfgs) spawn_pc then Many
            else Smap.find_or host execs ~default:Many
        in
        (th, c))
      threads
  in
  let joined_at =
    List.map
      (fun (host, spawn_pc, dest, _entry) ->
        ((host, spawn_pc), must_join_array (Smap.find host cfgs) ~spawn_pc ~dest))
      spawn_sites
  in
  let all_single = List.for_all (fun (_, c) -> c = One) instances in
  let barrier_phases = compute_barrier_phases prog cfgs ~threads ~all_single in
  let cond_waited, cond_signallers = compute_cond_orders prog cfgs ~closures ~instances in
  { cfgs; threads; closures; instances; execs; joined_at; barrier_phases; cond_waited;
    cond_signallers }

let analyze (prog : B.t) : t =
  analyze_with_cfgs prog (Smap.map Cfg.build prog.B.funcs)

(** [analyze] read through the persistent store.  MHP is inherently a
    whole-program analysis (spawn structure, call closures, join edges span
    functions), so its cacheable unit is the program: one [Summaries]-tier
    entry keyed by the program content hash — equivalently, the conjunction
    of every function body hash, so touching any function invalidates it.
    The payload ([t]) is pure data including the CFGs it was computed
    from. *)
let analyze_cached ?store (prog : B.t) : t =
  match store with
  | None -> analyze prog
  | Some st ->
    let module Store = Portend_cache.Store in
    let key = "mhp-" ^ Portend_util.Chash.to_hex (B.chash prog) in
    (match (Store.get st Store.Summaries ~key : t option) with
    | Some t -> t
    | None ->
      let t = analyze prog in
      Store.put st Store.Summaries ~key t;
      t)

let executors (t : t) (fname : string) : thread list =
  List.filter_map
    (fun (th, closure) -> if Sset.mem fname closure then Some th else None)
    t.closures

let instances_of (t : t) th : count = try List.assoc th t.instances with Not_found -> Many

let must_joined (t : t) ~host ~spawn_pc ~at_pc : bool =
  match List.assoc_opt (host, spawn_pc) t.joined_at with
  | Some arr when at_pc < Array.length arr -> arr.(at_pc)
  | _ -> false

(* Can site [pc1] of the unique single-instance executor [th1] of function
   [h] overlap the child thread spawned at [(h, p)]?  No when every
   execution of [pc1] precedes the spawn (the spawn cannot CFG-reach it)
   or follows the child's termination (must-joined).  Both arguments are
   intra-invocation, so [h] itself must run exactly once — otherwise a
   second invocation's [pc1] is unordered with the first invocation's
   child. *)
let parent_site_overlaps_child (t : t) th1 h pc1 ~spawn_pc : bool =
  let unique_single =
    instances_of t th1 = One
    && Smap.find_or h t.execs ~default:Many = One
    && (match executors t h with [ only ] -> only = th1 | _ -> false)
  in
  if not unique_single then true
  else
    let cfg = Smap.find h t.cfgs in
    let after_spawn = Cfg.reachable_after cfg spawn_pc in
    let before_spawn = pc1 >= Array.length after_spawn || not after_spawn.(pc1) in
    (not before_spawn) && not (must_joined t ~host:h ~spawn_pc ~at_pc:pc1)

(* Sibling children of the same single-instance parent: no overlap when the
   first must already be joined at the point the second is spawned. *)
let siblings_overlap (t : t) h ~p1 ~p2 : bool =
  match executors t h with
  | [ parent ]
    when instances_of t parent = One && Smap.find_or h t.execs ~default:Many = One ->
    (not (must_joined t ~host:h ~spawn_pc:p1 ~at_pc:p2))
    && not (must_joined t ~host:h ~spawn_pc:p2 ~at_pc:p1)
  | _ -> true

(* Do the two sites sit in provably different phases of some qualified
   barrier?  Applies only to sites in the threads' own entry functions —
   callee sites have no fixed crossing count. *)
let barrier_ordered (t : t) th1 (f1, pc1) th2 (f2, pc2) : bool =
  f1 = entry_of th1 && f2 = entry_of th2
  && Smap.exists
       (fun _b per_fn ->
         match (Smap.find_opt f1 per_fn, Smap.find_opt f2 per_fn) with
         | Some (lo1, hi1), Some (lo2, hi2)
           when pc1 < Array.length lo1 && pc2 < Array.length lo2 ->
           hi1.(pc1) < lo2.(pc2) || hi2.(pc2) < lo1.(pc1)
         | _ -> false)
       t.barrier_phases

(* Is the waiter's site [(fw, pcw)] ordered after the signaller [th_s]'s
   site [(fs, pcs)] through a condvar's signal→wakeup edge?  [pcs] must
   dominate every signal and be unreachable after all of them (so every
   dynamic occurrence precedes whichever signal completed the wait), and
   [pcw] must be behind a completed wait on every path. *)
let cond_ordered (t : t) ~waiter:(fw, pcw) ~signaller:(th_s, (fs, pcs)) : bool =
  List.exists
    (fun (c, (th, g, dom_ok)) ->
      th = th_s && g = fs
      && pcs < Array.length dom_ok
      && dom_ok.(pcs)
      &&
      match Smap.find_opt c t.cond_waited with
      | None -> false
      | Some per_fn -> (
        match Smap.find_opt fw per_fn with
        | Some w -> pcw < Array.length w && w.(pcw)
        | None -> false))
    t.cond_signallers

let threads_overlap (t : t) th1 (f1, pc1) th2 (f2, pc2) : bool =
  if th1 = th2 then instances_of t th1 = Many
  else
    let parent_child th_p (fp, pcp) th_c =
      match th_c with
      | Spawned { host; spawn_pc; _ } when fp = host ->
        parent_site_overlaps_child t th_p host pcp ~spawn_pc
      | _ -> true
    in
    let sibling th_a th_b =
      match (th_a, th_b) with
      | Spawned a, Spawned b when a.host = b.host && a.spawn_pc <> b.spawn_pc ->
        siblings_overlap t a.host ~p1:a.spawn_pc ~p2:b.spawn_pc
      | _ -> true
    in
    parent_child th1 (f1, pc1) th2
    && parent_child th2 (f2, pc2) th1
    && sibling th1 th2
    && (not (barrier_ordered t th1 (f1, pc1) th2 (f2, pc2)))
    && (not (cond_ordered t ~waiter:(f1, pc1) ~signaller:(th2, (f2, pc2))))
    && not (cond_ordered t ~waiter:(f2, pc2) ~signaller:(th1, (f1, pc1)))

(** Can the instructions at sites [(f1, pc1)] and [(f2, pc2)] execute
    concurrently in some run?  [true] unless every pair of abstract threads
    that may execute the two sites is provably ordered. *)
let may_parallel (t : t) ((f1, pc1) : string * int) ((f2, pc2) : string * int) : bool =
  List.exists
    (fun th1 ->
      List.exists
        (fun th2 -> threads_overlap t th1 (f1, pc1) th2 (f2, pc2))
        (executors t f2))
    (executors t f1)

let n_threads (t : t) = List.length t.threads

let thread_to_string = function
  | Main -> "main"
  | Spawned { host; spawn_pc; entry } -> Printf.sprintf "%s@%s:%d" entry host spawn_pc
