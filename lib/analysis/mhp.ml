(** May-happen-in-parallel analysis from the program's spawn/join structure.

    Abstract threads are the main thread plus one per [ISpawn] site; each
    abstract thread may stand for many runtime threads (a spawn inside a
    loop, or in a function entered more than once).  Two instruction sites
    may happen in parallel unless this module can prove an ordering, so the
    default answer is [true] — every refinement below corresponds to a
    happens-before edge the dynamic detector also has (spawn, join, program
    order), which is what makes MHP pruning sound for the candidate
    generator:

    - a site in the spawning function that cannot CFG-reach the spawn
      executes before the child exists;
    - a site the must-join analysis proves downstream of [IJoin] on the
      spawn's thread id executes after the child has terminated;
    - a sibling child whose join must precede the other sibling's spawn is
      fully ordered before it;
    - two sites run by the same single-instance abstract thread are ordered
      by program order.

    Ordering through condition variables and barriers is deliberately
    ignored: those edges exist dynamically, so ignoring them only keeps
    more pairs (less precision, same soundness). *)

open Portend_util.Maps
module B = Portend_lang.Bytecode

type thread =
  | Main
  | Spawned of { host : string; spawn_pc : int; entry : string }

type count = One | Many

(* Has the runtime thread created at a spawn site definitely been joined by
   the time control reaches a pc of the spawning function?  [Lost] means
   the register holding the thread id was overwritten, so a later [IJoin]
   on it joins someone else. *)
type joinst = Not_joined | Joined | Lost

type t = {
  cfgs : Cfg.t Smap.t;
  threads : thread list;
  closures : (thread * Sset.t) list;  (** functions each thread may execute *)
  instances : (thread * count) list;
  execs : count Smap.t;  (** entries per function over a whole run *)
  joined_at : ((string * int) * bool array) list;
      (** spawn site -> per-pc "must be joined here" in the host function *)
}

let inst_dest (inst : B.inst) : int option =
  match inst with
  | B.IBin (d, _, _, _) | B.IUn (d, _, _) | B.IMov (d, _) | B.ILoadG (d, _)
  | B.ILoadA (d, _, _) | B.IInput (d, _, _) -> Some d
  | B.ICall (d, _, _) | B.ISpawn (d, _, _) -> d
  | B.IStoreG _ | B.IStoreA _ | B.IJmp _ | B.IBr _ | B.IRet _ | B.IJoin _ | B.ILock _
  | B.IUnlock _ | B.IWait _ | B.ISignal _ | B.IBroadcast _ | B.IBarrier _ | B.IOutput _
  | B.IOutputStr _ | B.IAssert _ | B.IYield | B.IFree _ -> None

(* Call-closure of an entry function: everything the thread rooted there
   may execute via ICall (spawned functions belong to the child thread). *)
let call_closure (prog : B.t) (entry : string) : Sset.t =
  let rec go acc name =
    if Sset.mem name acc then acc
    else
      match B.find_func prog name with
      | None -> acc
      | Some f ->
        Sset.fold
          (fun callee acc -> go acc callee)
          (Portend_lang.Static.callees_of_func f)
          (Sset.add name acc)
  in
  go Sset.empty entry

(* How many times each function may be entered over a whole run, counting
   both call and spawn sites; [main] is entered once by the runtime.
   Monotone fixpoint over One < Many. *)
let compute_execs (prog : B.t) (cfgs : Cfg.t Smap.t) : count Smap.t =
  let sites =
    Smap.fold
      (fun host (f : B.func) acc ->
        let cfg = Smap.find host cfgs in
        let add acc target pc =
          let entry = Smap.find_or target acc ~default:[] in
          Smap.add target ((host, Cfg.in_loop cfg pc) :: entry) acc
        in
        let acc = ref acc in
        Array.iteri
          (fun pc inst ->
            match inst with
            | B.ICall (_, g, _) | B.ISpawn (_, g, _) -> acc := add !acc g pc
            | _ -> ())
          f.B.code;
        !acc)
      prog.B.funcs Smap.empty
  in
  let eval execs fname =
    let contribs =
      List.map
        (fun (host, in_loop) ->
          if in_loop then Many else Smap.find_or host execs ~default:One)
        (Smap.find_or fname sites ~default:[])
    in
    let contribs = if fname = "main" then One :: contribs else contribs in
    match contribs with
    | [] | [ One ] -> One
    | [ Many ] -> Many
    | _ -> Many  (* two or more entry sites: conservatively many *)
  in
  let rec iterate execs =
    let next = Smap.mapi (fun fname _ -> eval execs fname) prog.B.funcs in
    if Smap.equal ( = ) execs next then next else iterate next
  in
  iterate (Smap.map (fun _ -> One) prog.B.funcs)

let must_join_array (cfg : Cfg.t) ~spawn_pc ~dest : bool array =
  let n = Cfg.n_insts cfg in
  match dest with
  | None -> Array.make (max n 1) false  (* thread id discarded: never joinable *)
  | Some r ->
    let join a b =
      match (a, b) with
      | Joined, Joined -> Joined
      | Lost, _ | _, Lost -> Lost
      | _ -> Not_joined
    in
    let transfer _pc inst s =
      match (inst, s) with
      | _, Lost -> Lost
      | B.IJoin (B.Reg r'), _ when r' = r -> Joined
      | _ -> if inst_dest inst = Some r then Lost else s
    in
    let starts =
      List.filter_map
        (fun p -> if p < n then Some (p, Not_joined) else None)
        cfg.Cfg.succ.(spawn_pc)
    in
    let states =
      Dataflow.forward_from cfg
        { Dataflow.entry = Not_joined; join; equal = ( = ); transfer }
        ~starts
    in
    Array.map (function Some Joined -> true | _ -> false) states

let analyze_with_cfgs (prog : B.t) (cfgs : Cfg.t Smap.t) : t =
  let execs = compute_execs prog cfgs in
  let spawn_sites =
    Smap.fold
      (fun host (f : B.func) acc ->
        let acc = ref acc in
        Array.iteri
          (fun pc inst ->
            match inst with
            | B.ISpawn (dest, entry, _) -> acc := (host, pc, dest, entry) :: !acc
            | _ -> ())
          f.B.code;
        !acc)
      prog.B.funcs []
    |> List.rev
  in
  let threads =
    Main
    :: List.map
         (fun (host, spawn_pc, _dest, entry) -> Spawned { host; spawn_pc; entry })
         spawn_sites
  in
  let closures =
    List.map
      (fun th ->
        let entry = match th with Main -> "main" | Spawned { entry; _ } -> entry in
        (th, call_closure prog entry))
      threads
  in
  let instances =
    List.map
      (fun th ->
        let c =
          match th with
          | Main -> One
          | Spawned { host; spawn_pc; _ } ->
            if Cfg.in_loop (Smap.find host cfgs) spawn_pc then Many
            else Smap.find_or host execs ~default:Many
        in
        (th, c))
      threads
  in
  let joined_at =
    List.map
      (fun (host, spawn_pc, dest, _entry) ->
        ((host, spawn_pc), must_join_array (Smap.find host cfgs) ~spawn_pc ~dest))
      spawn_sites
  in
  { cfgs; threads; closures; instances; execs; joined_at }

let analyze (prog : B.t) : t =
  analyze_with_cfgs prog (Smap.map Cfg.build prog.B.funcs)

(** [analyze] read through the persistent store.  MHP is inherently a
    whole-program analysis (spawn structure, call closures, join edges span
    functions), so its cacheable unit is the program: one [Summaries]-tier
    entry keyed by the program content hash — equivalently, the conjunction
    of every function body hash, so touching any function invalidates it.
    The payload ([t]) is pure data including the CFGs it was computed
    from. *)
let analyze_cached ?store (prog : B.t) : t =
  match store with
  | None -> analyze prog
  | Some st ->
    let module Store = Portend_cache.Store in
    let key = "mhp-" ^ Portend_util.Chash.to_hex (B.chash prog) in
    (match (Store.get st Store.Summaries ~key : t option) with
    | Some t -> t
    | None ->
      let t = analyze prog in
      Store.put st Store.Summaries ~key t;
      t)

let executors (t : t) (fname : string) : thread list =
  List.filter_map
    (fun (th, closure) -> if Sset.mem fname closure then Some th else None)
    t.closures

let instances_of (t : t) th : count = try List.assoc th t.instances with Not_found -> Many

let must_joined (t : t) ~host ~spawn_pc ~at_pc : bool =
  match List.assoc_opt (host, spawn_pc) t.joined_at with
  | Some arr when at_pc < Array.length arr -> arr.(at_pc)
  | _ -> false

(* Can site [pc1] of the unique single-instance executor [th1] of function
   [h] overlap the child thread spawned at [(h, p)]?  No when every
   execution of [pc1] precedes the spawn (the spawn cannot CFG-reach it)
   or follows the child's termination (must-joined).  Both arguments are
   intra-invocation, so [h] itself must run exactly once — otherwise a
   second invocation's [pc1] is unordered with the first invocation's
   child. *)
let parent_site_overlaps_child (t : t) th1 h pc1 ~spawn_pc : bool =
  let unique_single =
    instances_of t th1 = One
    && Smap.find_or h t.execs ~default:Many = One
    && (match executors t h with [ only ] -> only = th1 | _ -> false)
  in
  if not unique_single then true
  else
    let cfg = Smap.find h t.cfgs in
    let after_spawn = Cfg.reachable_after cfg spawn_pc in
    let before_spawn = pc1 >= Array.length after_spawn || not after_spawn.(pc1) in
    (not before_spawn) && not (must_joined t ~host:h ~spawn_pc ~at_pc:pc1)

(* Sibling children of the same single-instance parent: no overlap when the
   first must already be joined at the point the second is spawned. *)
let siblings_overlap (t : t) h ~p1 ~p2 : bool =
  match executors t h with
  | [ parent ]
    when instances_of t parent = One && Smap.find_or h t.execs ~default:Many = One ->
    (not (must_joined t ~host:h ~spawn_pc:p1 ~at_pc:p2))
    && not (must_joined t ~host:h ~spawn_pc:p2 ~at_pc:p1)
  | _ -> true

let threads_overlap (t : t) th1 (f1, pc1) th2 (f2, pc2) : bool =
  if th1 = th2 then instances_of t th1 = Many
  else
    let parent_child th_p (fp, pcp) th_c =
      match th_c with
      | Spawned { host; spawn_pc; _ } when fp = host ->
        parent_site_overlaps_child t th_p host pcp ~spawn_pc
      | _ -> true
    in
    let sibling th_a th_b =
      match (th_a, th_b) with
      | Spawned a, Spawned b when a.host = b.host && a.spawn_pc <> b.spawn_pc ->
        siblings_overlap t a.host ~p1:a.spawn_pc ~p2:b.spawn_pc
      | _ -> true
    in
    parent_child th1 (f1, pc1) th2
    && parent_child th2 (f2, pc2) th1
    && sibling th1 th2

(** Can the instructions at sites [(f1, pc1)] and [(f2, pc2)] execute
    concurrently in some run?  [true] unless every pair of abstract threads
    that may execute the two sites is provably ordered. *)
let may_parallel (t : t) ((f1, pc1) : string * int) ((f2, pc2) : string * int) : bool =
  List.exists
    (fun th1 ->
      List.exists
        (fun th2 -> threads_overlap t th1 (f1, pc1) th2 (f2, pc2))
        (executors t f2))
    (executors t f1)

let n_threads (t : t) = List.length t.threads

let thread_to_string = function
  | Main -> "main"
  | Spawned { host; spawn_pc; entry } -> Printf.sprintf "%s@%s:%d" entry host spawn_pc
