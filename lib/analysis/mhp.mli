(** May-happen-in-parallel analysis from the program's spawn/join structure.

    Abstract threads are the main thread plus one per [ISpawn] site; each
    abstract thread may stand for many runtime threads (a spawn inside a
    loop, or in a function entered more than once).  Two instruction sites
    may happen in parallel unless this module can prove an ordering, so the
    default answer is [true] — every refinement corresponds to a
    happens-before edge the dynamic detector also has (spawn, join, program
    order, barrier arrival→departure, signal→wakeup), which is what makes
    MHP pruning sound for the candidate generator:

    - a site in the spawning function that cannot CFG-reach the spawn
      executes before the child exists;
    - a site the must-join analysis proves downstream of [IJoin] on the
      spawn's thread id executes after the child has terminated;
    - a sibling child whose join must precede the other sibling's spawn is
      fully ordered before it;
    - two sites run by the same single-instance abstract thread are ordered
      by program order;
    - {b barrier phases}: when a barrier's party count equals the number of
      abstract threads, all single-instance, and every one of its wait sites
      sits straight-line in a thread entry function, the k-th crossing is a
      global rendezvous — all threads arrive exactly k times before it
      completes.  A site whose maximum crossing count is below another
      site's minimum therefore lies in an earlier phase and is ordered
      before it (if the later phase is ever reached; if some thread never
      arrives, the crossing never completes and the claim is vacuous);
    - {b condvar wait/signal}: when every signal/broadcast of a condition
      variable lives in one single-instance thread's entry function, a site
      that dominates all of them and is unreachable after any of them
      executes before whichever signal completes a wait.  A site that can
      only be reached after a completed wait on that condvar (the VM has no
      spurious wakeups) is therefore ordered after it through the
      signal→wakeup edge. *)

open Portend_util.Maps
module B = Portend_lang.Bytecode

type thread =
  | Main
  | Spawned of { host : string; spawn_pc : int; entry : string }

type count = One | Many

type t = {
  cfgs : Cfg.t Smap.t;
  threads : thread list;
  closures : (thread * Sset.t) list;  (** functions each thread may execute *)
  instances : (thread * count) list;
  execs : count Smap.t;  (** entries per function over a whole run *)
  joined_at : ((string * int) * bool array) list;
      (** spawn site -> per-pc "must be joined here" in the host function *)
  barrier_phases : (int array * int array) Smap.t Smap.t;
      (** qualified barrier -> entry function -> per-pc (min, max) number of
          crossings of that barrier before the instruction executes *)
  cond_waited : bool array Smap.t Smap.t;
      (** condvar -> function -> per-pc "a wait on it completed on every
          path here" *)
  cond_signallers : (string * (thread * string * bool array)) list;
      (** condvar -> its unique single-instance signalling thread, that
          thread's entry function, and per-pc "dominates every
          signal/broadcast site and is unreachable after all of them" *)
}

val entry_of : thread -> string

val analyze_with_cfgs : B.t -> Cfg.t Smap.t -> t
(** [analyze] against CFGs the caller already built. *)

val analyze : B.t -> t

val analyze_cached : ?store:Portend_cache.Store.t -> B.t -> t
(** [analyze] read through the persistent store.  MHP is inherently a
    whole-program analysis (spawn structure, call closures, join edges span
    functions), so its cacheable unit is the program: one [Summaries]-tier
    entry keyed by the program content hash. *)

val executors : t -> string -> thread list
(** Abstract threads whose call closure may execute the given function. *)

val instances_of : t -> thread -> count

val must_joined : t -> host:string -> spawn_pc:int -> at_pc:int -> bool

val barrier_ordered : t -> thread -> string * int -> thread -> string * int -> bool
(** Do the two sites sit in provably different phases of some qualified
    barrier?  Applies only to sites in the threads' own entry functions —
    callee sites have no fixed crossing count. *)

val cond_ordered : t -> waiter:string * int -> signaller:thread * (string * int) -> bool
(** Is the waiter's site ordered after the signaller's site through a
    condvar's signal→wakeup edge?  The signaller's site must dominate every
    signal and be unreachable after all of them (so every dynamic
    occurrence precedes whichever signal completed the wait), and the
    waiter's site must be behind a completed wait on every path. *)

val may_parallel : t -> string * int -> string * int -> bool
(** Can the instructions at the two sites execute concurrently in some run?
    [true] unless every pair of abstract threads that may execute the two
    sites is provably ordered. *)

val n_threads : t -> int

val thread_to_string : thread -> string
