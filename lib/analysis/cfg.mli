(** Per-function control-flow graph over {!Portend_lang.Bytecode.func}.

    Instruction-granular: every program counter is a node (the bytecode's
    basic blocks are short enough that block formation would buy nothing),
    edges follow the interpreter's successor relation.  [ICall] is a
    fall-through edge — interprocedural effects are handled by the analyses
    through function summaries, not by splicing callee graphs in. *)

module B = Portend_lang.Bytecode

type t = {
  func : B.func;
  succ : int list array;  (** successors per pc *)
  pred : int list array;  (** predecessors per pc *)
  back_edges : (int * int) list;  (** (src, target), target <= src *)
}

val inst_successors : len:int -> int -> B.inst -> int list
(** Successor program counters of the instruction at [pc].  [IRet] has none;
    a branch has both targets; everything else falls through (when in
    range — the interpreter treats running off the end as [IRet None]). *)

val build : B.func -> t

val n_insts : t -> int

val reachable_after : t -> int -> bool array
(** Program counters reachable from [pc] by one or more edges (i.e. what can
    execute strictly after the instruction at [pc] runs). *)

val in_loop : t -> int -> bool
(** Is [pc] inside some natural loop (between a back edge's target and its
    source, or able to re-reach itself)? *)

val exits : t -> int list
(** Reachable exit pcs: [IRet] instructions (the compiler always emits a
    trailing [IRet None], so every function that returns passes one). *)
