(** Eraser-style {e static} lockset analysis: the set of mutexes that is
    {e must}-held before every instruction of every function.

    Must-held is the direction the candidate-race generator needs: if two
    conflicting accesses share a must-held lock, every dynamic execution
    orders them through that lock's release→acquire happens-before edge, so
    pruning the pair can never hide a dynamically detectable race.  Merging
    therefore intersects, unknown entry contexts assume nothing held
    (context-insensitive: a callee analyzed as if called bare — losing
    caller-held locks only {e adds} candidate pairs, never removes one),
    and call effects are applied through per-function summaries.

    A summary is the pair (must_add, may_remove): locks a call definitely
    holds on return, and locks it might release.  Summaries are iterated
    over the call graph to a fixpoint; if recursion keeps them unstable past
    a generous bound, the affected functions fall back to the sound
    pessimum (adds nothing, may release everything).

    A companion {e may}-held analysis (union merge) feeds the lint pass:
    “lock possibly still held at return” and “possible double acquire”.

    Beyond real mutexes, two pseudo-locks join the held sets:

    - ["@atomic"]: an [atomic { ... }] region excludes every other thread,
      so between [IAtomicBegin] and [IAtomicEnd] the implicit program-wide
      lock is must-held.  The dynamic detector has the matching
      release→acquire edge (end → subsequent begin), so pruning a pair that
      shares ["@atomic"] can never hide a dynamically detectable race.
    - ["sem:s"]: a semaphore used as a lock.  [s] qualifies only when the
      pairing is provable ({!lockable_sems}): initial count 1 and, in every
      function touching it, [sem_wait s]/[sem_post s] form a well-nested
      intra-procedural bracket on every path (no free posts, no nesting, no
      held-at-return, no calls into functions touching [s]).  Then the count
      obeys [count + threads-inside-bracket = 1], at most one thread is ever
      inside, and the dynamic post→wait edge orders any two bracketed
      accesses — the same argument as for a mutex. *)

open Portend_util.Maps
module B = Portend_lang.Bytecode

let atomic_lock = "@atomic"
let sem_lock s = "sem:" ^ s

(* Functions reachable from [entry] through ICall, including [entry]. *)
let call_closure (prog : B.t) (entry : string) : Sset.t =
  let rec go acc name =
    if Sset.mem name acc then acc
    else
      match B.find_func prog name with
      | None -> acc
      | Some f ->
        Sset.fold
          (fun callee acc -> go acc callee)
          (Portend_lang.Static.callees_of_func f)
          (Sset.add name acc)
  in
  go Sset.empty entry

(* --- semaphore-as-lock qualification ----------------------------------- *)

(* Token-count abstract state for one semaphore inside one function. *)
type tok =
  | Tok of int  (** 0 or 1 tokens held since function entry *)
  | Tpoison  (** bracket not provable *)

let tok_join a b = if a = b then a else Tpoison
let tok_equal = ( = )

(** Semaphores provably used as locks (see the module comment).  Any
    occurrence that breaks the bracket discipline disqualifies the
    semaphore program-wide. *)
let lockable_sems (prog : B.t) : Sset.t =
  let touches =
    (* function -> does it (transitively via ICall) touch semaphore s? *)
    let direct f =
      Array.fold_left
        (fun acc inst ->
          match inst with
          | B.ISemWait s | B.ISemPost s -> Sset.add s acc
          | _ -> acc)
        Sset.empty f.B.code
    in
    let base = Smap.map direct prog.B.funcs in
    Smap.mapi
      (fun fname _ ->
        let closure = call_closure prog fname in
        Sset.fold
          (fun g acc -> Sset.union acc (Smap.find_or ~default:Sset.empty g base))
          closure Sset.empty)
      prog.B.funcs
  in
  let ok_in_func s fname (f : B.func) : bool =
    let self_touches = Smap.find_or ~default:Sset.empty fname touches in
    if not (Sset.mem s self_touches) then true
    else begin
      let cfg = Cfg.build f in
      let transfer _pc inst st =
        match (inst, st) with
        | _, Tpoison -> Tpoison
        | B.ISemWait s', Tok 0 when s' = s -> Tok 1
        | B.ISemWait s', Tok _ when s' = s -> Tpoison
        | B.ISemPost s', Tok 1 when s' = s -> Tok 0
        | B.ISemPost s', Tok _ when s' = s -> Tpoison
        | B.ICall (_, g, _), _
          when Sset.mem s (Smap.find_or ~default:Sset.empty g touches) ->
          Tpoison
        | _, st -> st
      in
      let states =
        Dataflow.forward cfg
          { Dataflow.entry = Tok 0; join = tok_join; equal = tok_equal; transfer }
      in
      let no_poison =
        Array.for_all (function Some Tpoison -> false | Some (Tok _) | None -> true) states
      in
      let exits_clean =
        List.for_all
          (fun pc ->
            match states.(pc) with
            | Some st -> transfer pc f.B.code.(pc) st = Tok 0
            | None -> true)
          (Cfg.exits cfg)
      in
      no_poison && exits_clean
    end
  in
  List.fold_left
    (fun acc (s, init) ->
      if init = 1 && Smap.for_all (ok_in_func s) prog.B.funcs then Sset.add s acc else acc)
    Sset.empty prog.B.sems

type summary = {
  must_add : Sset.t;  (** held on return, on every path *)
  may_remove : Sset.t;  (** possibly released, on some path *)
}

(* Relative state while analyzing one function body: locks acquired since
   entry and still held on every path, and locks possibly released since
   entry.  Entry-held locks are symbolic: [acq] / [rel] track the delta. *)
type rel = {
  acq : Sset.t;
  rel : Sset.t;
}

let rel_entry = { acq = Sset.empty; rel = Sset.empty }
let rel_join a b = { acq = Sset.inter a.acq b.acq; rel = Sset.union a.rel b.rel }
let rel_equal a b = Sset.equal a.acq b.acq && Sset.equal a.rel b.rel

let rel_transfer ~(sem_locks : Sset.t) (summaries : summary Smap.t) _pc (inst : B.inst)
    (s : rel) : rel =
  match inst with
  | B.ILock m -> { acq = Sset.add m s.acq; rel = Sset.remove m s.rel }
  | B.IUnlock m -> { acq = Sset.remove m s.acq; rel = Sset.add m s.rel }
  (* The implicit atomic-region lock.  Nested regions under-approximate
     (the inner end drops the pseudo-lock early), which only loses
     precision, never soundness, for a must-analysis. *)
  | B.IAtomicBegin -> { acq = Sset.add atomic_lock s.acq; rel = Sset.remove atomic_lock s.rel }
  | B.IAtomicEnd -> { acq = Sset.remove atomic_lock s.acq; rel = Sset.add atomic_lock s.rel }
  | B.ISemWait m when Sset.mem m sem_locks ->
    { acq = Sset.add (sem_lock m) s.acq; rel = Sset.remove (sem_lock m) s.rel }
  | B.ISemPost m when Sset.mem m sem_locks ->
    { acq = Sset.remove (sem_lock m) s.acq; rel = Sset.add (sem_lock m) s.rel }
  | B.ISemWait _ | B.ISemPost _ -> s
  | B.ICall (_, g, _) -> (
    match Smap.find_opt g summaries with
    | None -> s
    | Some sm ->
      { acq = Sset.union (Sset.diff s.acq sm.may_remove) sm.must_add;
        rel = Sset.diff (Sset.union s.rel sm.may_remove) sm.must_add
      })
  (* IWait releases and re-acquires its mutex: held again afterwards, but
     the release happened, so a caller's critical section was broken. *)
  | B.IWait (_, m) -> { s with rel = Sset.add m s.rel }
  | B.IBin _ | B.IUn _ | B.IMov _ | B.ILoadG _ | B.IStoreG _ | B.ILoadA _ | B.IStoreA _
  | B.IJmp _ | B.IBr _ | B.IRet _ | B.ISpawn _ | B.IJoin _ | B.ISignal _ | B.IBroadcast _
  | B.IBarrier _ | B.IOutput _ | B.IOutputStr _ | B.IInput _ | B.IAssert _ | B.IYield
  | B.IFree _ -> s

let summary_of_states ~sem_locks (cfg : Cfg.t) (states : rel option array) : summary =
  let exit_rels =
    List.filter_map
      (fun pc ->
        match states.(pc) with
        | Some s -> Some (rel_transfer ~sem_locks Smap.empty pc cfg.Cfg.func.B.code.(pc) s)
        | None -> None)
      (Cfg.exits cfg)
  in
  match exit_rels with
  | [] -> { must_add = Sset.empty; may_remove = Sset.empty }  (* never returns *)
  | first :: rest ->
    let merged = List.fold_left rel_join first rest in
    { must_add = merged.acq; may_remove = merged.rel }

let summary_equal a b =
  Sset.equal a.must_add b.must_add && Sset.equal a.may_remove b.may_remove

type t = {
  summaries : summary Smap.t;
  must_at : Sset.t option array Smap.t;  (** must-held before each pc *)
  may_at : Sset.t option array Smap.t;  (** may-held before each pc *)
}

(* Iterate function summaries over the call graph.  Programs here have a
   handful of functions; [2 * n + 2] rounds settle every non-recursive
   graph and simple recursion, and the fallback keeps pathological cases
   sound. *)
let compute_summaries ~sem_locks (cfgs : Cfg.t Smap.t) (all_mutexes : Sset.t) : summary Smap.t =
  let empty = { must_add = Sset.empty; may_remove = Sset.empty } in
  let pessimum = { must_add = Sset.empty; may_remove = all_mutexes } in
  let n = Smap.cardinal cfgs in
  let rec iterate round (summaries : summary Smap.t) =
    let next =
      Smap.mapi
        (fun _name cfg ->
          let states =
            Dataflow.forward cfg
              { Dataflow.entry = rel_entry;
                join = rel_join;
                equal = rel_equal;
                transfer = rel_transfer ~sem_locks summaries
              }
          in
          summary_of_states ~sem_locks cfg states)
        cfgs
    in
    if Smap.equal summary_equal summaries next then next
    else if round >= (2 * n) + 2 then Smap.map (fun _ -> pessimum) cfgs
    else iterate (round + 1) next
  in
  iterate 0 (Smap.map (fun _ -> empty) cfgs)

(* Absolute held-set transfer for the per-pc results: entry holds nothing
   (context-insensitive). *)
let held_transfer ~(sem_locks : Sset.t) (summaries : summary Smap.t) _pc (inst : B.inst)
    (held : Sset.t) : Sset.t =
  match inst with
  | B.ILock m -> Sset.add m held
  | B.IUnlock m -> Sset.remove m held
  | B.IAtomicBegin -> Sset.add atomic_lock held
  | B.IAtomicEnd -> Sset.remove atomic_lock held
  | B.ISemWait m when Sset.mem m sem_locks -> Sset.add (sem_lock m) held
  | B.ISemPost m when Sset.mem m sem_locks -> Sset.remove (sem_lock m) held
  | B.ISemWait _ | B.ISemPost _ -> held
  | B.ICall (_, g, _) -> (
    match Smap.find_opt g summaries with
    | None -> held
    | Some sm -> Sset.union (Sset.diff held sm.may_remove) sm.must_add)
  | B.IWait _ -> held  (* re-acquired before the wait returns *)
  | B.IBin _ | B.IUn _ | B.IMov _ | B.ILoadG _ | B.IStoreG _ | B.ILoadA _ | B.IStoreA _
  | B.IJmp _ | B.IBr _ | B.IRet _ | B.ISpawn _ | B.IJoin _ | B.ISignal _ | B.IBroadcast _
  | B.IBarrier _ | B.IOutput _ | B.IOutputStr _ | B.IInput _ | B.IAssert _ | B.IYield
  | B.IFree _ -> held

let analyze_with_cfgs (prog : B.t) (cfgs : Cfg.t Smap.t) : t =
  let sem_locks = lockable_sems prog in
  let all_mutexes =
    List.fold_left (fun acc m -> Sset.add m acc) Sset.empty prog.B.source.Portend_lang.Ast.mutexes
  in
  (* The recursion pessimum may-removes everything; the pseudo-locks must be
     in that everything or a recursive function could launder them. *)
  let all_mutexes =
    Sset.add atomic_lock (Sset.fold (fun s acc -> Sset.add (sem_lock s) acc) sem_locks all_mutexes)
  in
  let summaries = compute_summaries ~sem_locks cfgs all_mutexes in
  let run join =
    Smap.map
      (fun cfg ->
        Dataflow.forward cfg
          { Dataflow.entry = Sset.empty;
            join;
            equal = Sset.equal;
            transfer = held_transfer ~sem_locks summaries
          })
      cfgs
  in
  { summaries; must_at = run Sset.inter; may_at = run Sset.union }

let analyze (prog : B.t) : t =
  analyze_with_cfgs prog (Smap.map Cfg.build prog.B.funcs)

(* --- persistent per-function summaries --------------------------------- *)

module Store = Portend_cache.Store
module H = Portend_util.Chash

(* One function's share of a lockset analysis: its call summary and its
   per-pc must/may held sets.  Pure data (sets of strings, arrays of set
   options), so entries marshal and reload structurally intact. *)
type fn_entry = {
  fe_digest : int;  (** [B.func_chash] of the function body, re-checked on load *)
  fe_summary : summary;
  fe_must : Sset.t option array;
  fe_may : Sset.t option array;
}

(* Cache key for one function's entry.  A summary is a fixpoint over the
   call graph, so the key must cover every body the fixpoint read: the
   function itself plus its transitive callees (hashed in [Sset.fold]'s
   sorted order), plus the program's declared mutex list (the pessimum
   fallback mentions every mutex), plus the set of semaphores that qualified
   as locks — qualification is a whole-program property, so a function far
   outside the closure can flip it.  Touching any callee therefore changes
   the key — the entry is invalidated precisely when its inputs change. *)
let fn_key (prog : B.t) (mutexes : string list) ~(sem_locks : Sset.t) (closure : Sset.t)
    (fname : string) : string =
  let h = H.string H.seed fname in
  let h = H.list H.string h mutexes in
  let h = Sset.fold (fun s h -> H.string h s) sem_locks h in
  let h =
    Sset.fold
      (fun g h ->
        match B.find_func prog g with
        | Some f -> H.int (H.string h g) (B.func_chash f)
        | None -> H.string h g)
      closure h
  in
  "ls-" ^ H.to_hex h

(** [analyze] with per-function entries read through (and written back to)
    the persistent store's [Summaries] tier.  When every function of the
    program hits, the result is assembled without running any fixpoint;
    any miss falls back to the full analysis and back-fills the missed
    entries.  With [store = None] this is exactly {!analyze}. *)
let analyze_cached ?store (prog : B.t) : t =
  match store with
  | None -> analyze prog
  | Some st ->
    let mutexes = prog.B.source.Portend_lang.Ast.mutexes in
    let sem_locks = lockable_sems prog in
    let keys =
      Smap.mapi
        (fun fname _ -> fn_key prog mutexes ~sem_locks (call_closure prog fname) fname)
        prog.B.funcs
    in
    let cached =
      Smap.mapi
        (fun fname key ->
          match (Store.get st Store.Summaries ~key : fn_entry option) with
          | Some e
            when e.fe_digest
                 = B.func_chash (Option.get (B.find_func prog fname)) -> Some e
          | Some _ | None -> None)
        keys
    in
    if Smap.for_all (fun _ e -> e <> None) cached then
      { summaries = Smap.map (fun e -> (Option.get e).fe_summary) cached;
        must_at = Smap.map (fun e -> (Option.get e).fe_must) cached;
        may_at = Smap.map (fun e -> (Option.get e).fe_may) cached
      }
    else begin
      let t = analyze prog in
      Smap.iter
        (fun fname key ->
          if Smap.find fname cached = None then
            Store.put st Store.Summaries ~key
              { fe_digest = B.func_chash (Option.get (B.find_func prog fname));
                fe_summary = Smap.find fname t.summaries;
                fe_must = Smap.find fname t.must_at;
                fe_may = Smap.find fname t.may_at
              })
        keys;
      t
    end

(** Mutexes definitely held on entry to [(fname, pc)]; empty when the site
    is unknown or unreachable (the sound default: no lock protection
    assumed). *)
let must_held (t : t) fname pc : Sset.t =
  match Smap.find_opt fname t.must_at with
  | Some arr when pc < Array.length arr -> ( match arr.(pc) with Some s -> s | None -> Sset.empty)
  | _ -> Sset.empty

(** Mutexes possibly held on entry to [(fname, pc)] (for the lint pass). *)
let may_held (t : t) fname pc : Sset.t =
  match Smap.find_opt fname t.may_at with
  | Some arr when pc < Array.length arr -> ( match arr.(pc) with Some s -> s | None -> Sset.empty)
  | _ -> Sset.empty
