(** Candidate race pairs from the static analyses: the cross product of

    - may-happen-in-parallel ({!Mhp}),
    - overlapping coarse locations (any two cells of one array overlap),
    - disjoint must-held locksets ({!Locksets}), and
    - at least one write,

    ranked with a crude badness score and a human-readable reason each.
    The generator is deliberately a strict over-approximation of the
    dynamic happens-before detector: every race the detector can ever
    report is between two sites forming a candidate pair here (the
    prefilter-soundness tests assert exactly this over the workload
    suite), which is what lets {!Portend_detect.Hb.detect} restrict its
    instrumentation to candidate sites without losing races. *)

open Portend_util.Maps
module B = Portend_lang.Bytecode

(** Abstract location, mirroring the granularity at which the dynamic
    detector matches conflicts: exact global, whole array (any two cells
    may be the same cell), and an array's metadata ([IFree] sites — the
    interpreter gives frees their own [Lmeta] location, so they only ever
    conflict with other frees). *)
type aloc =
  | Aglobal of string
  | Aarray of string
  | Ameta of string

type kind = Read | Write

type site = {
  s_func : string;
  s_pc : int;
  s_loc : aloc;
  s_kind : kind;
  s_lockset : Sset.t;  (** mutexes must-held at the access *)
}

type pair = {
  p1 : site;
  p2 : site;
  score : int;
  reason : string;
}

type t = {
  sites : site list;  (** every static shared-access site *)
  pairs : pair list;  (** candidates, highest score first *)
}

let aloc_of_inst (inst : B.inst) : (aloc * kind) option =
  match inst with
  | B.ILoadG (_, g) -> Some (Aglobal g, Read)
  | B.IStoreG (g, _) -> Some (Aglobal g, Write)
  | B.ILoadA (_, a, _) -> Some (Aarray a, Read)
  | B.IStoreA (a, _, _) -> Some (Aarray a, Write)
  | B.IFree a -> Some (Ameta a, Write)
  | B.IBin _ | B.IUn _ | B.IMov _ | B.IJmp _ | B.IBr _ | B.ICall _ | B.IRet _ | B.ISpawn _
  | B.IJoin _ | B.ILock _ | B.IUnlock _ | B.IWait _ | B.ISignal _ | B.IBroadcast _
  | B.IBarrier _ | B.ISemWait _ | B.ISemPost _ | B.IAtomicBegin | B.IAtomicEnd
  | B.IOutput _ | B.IOutputStr _ | B.IInput _ | B.IAssert _ | B.IYield -> None

let aloc_to_string = function
  | Aglobal g -> "g:" ^ g
  | Aarray a -> "a:" ^ a
  | Ameta a -> "m:" ^ a

let kind_to_string = function Read -> "read" | Write -> "write"

let collect_sites (prog : B.t) (locks : Locksets.t) : site list =
  Smap.fold
    (fun fname (f : B.func) acc ->
      let here = ref [] in
      Array.iteri
        (fun pc inst ->
          match aloc_of_inst inst with
          | None -> ()
          | Some (loc, kind) ->
            here :=
              { s_func = fname;
                s_pc = pc;
                s_loc = loc;
                s_kind = kind;
                s_lockset = Locksets.must_held locks fname pc
              }
              :: !here)
        f.B.code;
      List.rev !here @ acc)
    prog.B.funcs []

let lockset_to_string ls =
  if Sset.is_empty ls then "{}" else "{" ^ String.concat "," (Sset.elements ls) ^ "}"

let score_pair (a : site) (b : site) : int =
  let s = 50 in
  let s = if a.s_kind = Write && b.s_kind = Write then s + 20 else s in
  let s = if Sset.is_empty a.s_lockset && Sset.is_empty b.s_lockset then s + 15 else s in
  let s = if a.s_func <> b.s_func then s + 5 else s in
  let s = match a.s_loc with Aarray _ -> s - 10 | Ameta _ -> s - 5 | Aglobal _ -> s in
  s

let reason_for (a : site) (b : site) : string =
  let prot =
    if Sset.is_empty a.s_lockset && Sset.is_empty b.s_lockset then "both unprotected"
    else
      Printf.sprintf "disjoint locksets %s vs %s"
        (lockset_to_string a.s_lockset)
        (lockset_to_string b.s_lockset)
  in
  Printf.sprintf "%s %s at %s:%d may run in parallel with %s at %s:%d; %s"
    (kind_to_string a.s_kind) (aloc_to_string a.s_loc) a.s_func a.s_pc (kind_to_string b.s_kind)
    b.s_func b.s_pc prot

let site_order (s : site) = (s.s_func, s.s_pc)

(** Deterministic ranking: score descending, then site coordinates. *)
let compare_pairs (x : pair) (y : pair) : int =
  match compare y.score x.score with
  | 0 -> compare (site_order x.p1, site_order x.p2) (site_order y.p1, site_order y.p2)
  | c -> c

let analyze_with (prog : B.t) (locks : Locksets.t) (mhp : Mhp.t) : t =
  let sites = collect_sites prog locks in
  let arr = Array.of_list sites in
  let n = Array.length arr in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if
        a.s_loc = b.s_loc
        && (a.s_kind = Write || b.s_kind = Write)
        && Sset.is_empty (Sset.inter a.s_lockset b.s_lockset)
        && Mhp.may_parallel mhp (a.s_func, a.s_pc) (b.s_func, b.s_pc)
      then
        let a, b = if site_order a <= site_order b then (a, b) else (b, a) in
        pairs := { p1 = a; p2 = b; score = score_pair a b; reason = reason_for a b } :: !pairs
    done
  done;
  { sites; pairs = List.sort compare_pairs !pairs }

let analyze (prog : B.t) : t =
  let cfgs = Smap.map Cfg.build prog.B.funcs in
  let locks = Locksets.analyze_with_cfgs prog cfgs in
  let mhp = Mhp.analyze_with_cfgs prog cfgs in
  analyze_with prog locks mhp

(** [analyze] with the expensive inputs — per-function lockset fixpoints
    and the whole-program MHP structure — read through the persistent
    store.  Pair generation itself is cheap and recomputed fresh, so the
    report always reflects exactly the (possibly cached) analyses it was
    built from. *)
let analyze_cached ?store (prog : B.t) : t =
  match store with
  | None -> analyze prog
  | Some _ ->
    let locks = Locksets.analyze_cached ?store prog in
    let mhp = Mhp.analyze_cached ?store prog in
    analyze_with prog locks mhp

(** Sites participating in at least one candidate pair — the set the
    dynamic detector needs to instrument to see every reportable race. *)
let restrict_sites (t : t) : (string * int) list =
  List.concat_map (fun p -> [ site_order p.p1; site_order p.p2 ]) t.pairs
  |> List.sort_uniq compare

(** Is the (unordered) pair of dynamic sites covered by some candidate? *)
let covers (t : t) (s1 : string * int) (s2 : string * int) : bool =
  List.exists
    (fun p ->
      let a = site_order p.p1 and b = site_order p.p2 in
      (a = s1 && b = s2) || (a = s2 && b = s1))
    t.pairs

let shared_site_count (t : t) = List.length t.sites
let candidate_site_count (t : t) = List.length (restrict_sites t)

let pp_pair fmt (p : pair) =
  Fmt.pf fmt "[%3d] %s" p.score p.reason

let pp fmt (t : t) =
  Fmt.pf fmt "@[<v>%d shared sites, %d candidate pairs@,%a@]" (shared_site_count t)
    (List.length t.pairs)
    Fmt.(list ~sep:cut pp_pair)
    t.pairs
