(** Static lint pass over a Racelang program — the diagnostics behind
    [portend lint]:

    - potential data races: {!Static_report} candidate pairs, clustered the
      same way the dynamic detector clusters its reports (one diagnostic
      per location × unordered function pair, keeping the highest-ranked
      pair of each cluster);
    - a lock possibly still held when a function returns;
    - a possible second acquire of a mutex already held by the same thread
      (Racelang mutexes are non-reentrant: self-deadlock);
    - a spin loop polling a location that no concurrent thread can write —
      the condition is loop-invariant, so once entered the loop never
      terminates;
    - a signal/broadcast no wait can ever observe (no wait site on the
      condvar may happen in parallel with it — and MHP over-approximates,
      so "cannot be parallel" is definite): the signal is lost;
    - a barrier whose party count provably disagrees with the number of
      threads that can ever arrive at it — fewer arrivals than parties
      deadlocks every arriving thread, more make the release rounds
      nondeterministic;
    - a [sem_wait]/[sem_post] bracket broken along some path of a function
      that uses both on the same semaphore (a token leaked past a return,
      or a post with no matching wait behind it);
    - a potentially blocking operation (lock, wait, barrier, sem_wait)
      inside an atomic region: the region's owner is the only runnable
      thread, so blocking freezes the whole program. *)

module B = Portend_lang.Bytecode

type severity = Error | Warning

type diag = {
  severity : severity;
  d_func : string;
  d_pc : int;
  code : string;
      (** "potential-race" | "lock-held-at-return" | "double-lock"
          | "spin-invariant" | "lost-signal" | "barrier-mismatch"
          | "sem-unmatched" | "blocking-in-atomic" *)
  message : string;
}

val severity_to_string : severity -> string

val to_string : diag -> string

val run : ?store:Portend_cache.Store.t -> B.t -> diag list
(** All diagnostics for the program, deterministically ordered (by site,
    then code, then message).  [store] routes the underlying analyses
    through the persistent cache, exactly as in
    {!Static_report.analyze_cached}. *)
