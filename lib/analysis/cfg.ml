(** Per-function control-flow graph over {!Portend_lang.Bytecode.func}.

    Instruction-granular: every program counter is a node (the bytecode's
    basic blocks are short enough that block formation would buy nothing),
    edges follow the interpreter's successor relation.  [ICall] is a
    fall-through edge — interprocedural effects are handled by the analyses
    through function summaries, not by splicing callee graphs in.

    Loop identification (backward edges) is shared with
    {!Portend_lang.Static}: both the spin-read recognizer there and the
    loop-aware analyses here walk {!Portend_lang.Static.backward_edges}. *)

module B = Portend_lang.Bytecode

type t = {
  func : B.func;
  succ : int list array;  (** successors per pc *)
  pred : int list array;  (** predecessors per pc *)
  back_edges : (int * int) list;  (** (src, target), target <= src *)
}

(** Successor program counters of the instruction at [pc].  [IRet] has none;
    a branch has both targets; everything else falls through (when in
    range — the interpreter treats running off the end as [IRet None]). *)
let inst_successors ~len pc (inst : B.inst) : int list =
  let fall = if pc + 1 < len then [ pc + 1 ] else [] in
  match inst with
  | B.IJmp l -> [ l ]
  | B.IBr (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | B.IRet _ -> []
  | B.IBin _ | B.IUn _ | B.IMov _ | B.ILoadG _ | B.IStoreG _ | B.ILoadA _ | B.IStoreA _
  | B.ICall _ | B.ISpawn _ | B.IJoin _ | B.ILock _ | B.IUnlock _ | B.IWait _ | B.ISignal _
  | B.IBroadcast _ | B.IBarrier _ | B.ISemWait _ | B.ISemPost _ | B.IAtomicBegin | B.IAtomicEnd
  | B.IOutput _ | B.IOutputStr _ | B.IInput _ | B.IAssert _ | B.IYield | B.IFree _ -> fall

let build (f : B.func) : t =
  let len = Array.length f.B.code in
  let succ = Array.make (max len 1) [] in
  let pred = Array.make (max len 1) [] in
  Array.iteri
    (fun pc inst ->
      let ss = inst_successors ~len pc inst in
      succ.(pc) <- ss;
      List.iter (fun s -> pred.(s) <- pc :: pred.(s)) ss)
    f.B.code;
  Array.iteri (fun i ps -> pred.(i) <- List.rev ps) pred;
  { func = f; succ; pred; back_edges = Portend_lang.Static.backward_edges f }

let n_insts t = Array.length t.func.B.code

(** Program counters reachable from [pc] by one or more edges (i.e. what can
    execute strictly after the instruction at [pc] runs). *)
let reachable_after (t : t) pc : bool array =
  let n = n_insts t in
  let seen = Array.make (max n 1) false in
  let rec go p =
    if not seen.(p) then begin
      seen.(p) <- true;
      List.iter go t.succ.(p)
    end
  in
  if pc < n then List.iter go t.succ.(pc);
  seen

(** Is [pc] inside some natural loop (between a back edge's target and its
    source, or able to re-reach itself)? *)
let in_loop (t : t) pc =
  List.exists (fun (src, target) -> target <= pc && pc <= src) t.back_edges
  || (pc < n_insts t && (reachable_after t pc).(pc))

(** Reachable exit pcs: [IRet] instructions (the compiler always emits a
    trailing [IRet None], so every function that returns passes one). *)
let exits (t : t) : int list =
  let entry_reach = Array.make (max (n_insts t) 1) false in
  let rec go p =
    if p < n_insts t && not entry_reach.(p) then begin
      entry_reach.(p) <- true;
      List.iter go t.succ.(p)
    end
  in
  if n_insts t > 0 then go 0;
  let out = ref [] in
  Array.iteri
    (fun pc inst ->
      match inst with B.IRet _ when entry_reach.(pc) -> out := pc :: !out | _ -> ())
    t.func.B.code;
  List.rev !out
