(** Eraser-style {e static} lockset analysis: the set of mutexes that is
    {e must}-held before every instruction of every function.

    Must-held is the direction the candidate-race generator needs: if two
    conflicting accesses share a must-held lock, every dynamic execution
    orders them through that lock's release→acquire happens-before edge, so
    pruning the pair can never hide a dynamically detectable race.  Merging
    therefore intersects, unknown entry contexts assume nothing held
    (context-insensitive: a callee analyzed as if called bare — losing
    caller-held locks only {e adds} candidate pairs, never removes one),
    and call effects are applied through per-function summaries.

    A companion {e may}-held analysis (union merge) feeds the lint pass:
    "lock possibly still held at return" and "possible double acquire".

    Beyond real mutexes, two pseudo-locks join the held sets:

    - ["@atomic"]: an [atomic { ... }] region excludes every other thread,
      so between [IAtomicBegin] and [IAtomicEnd] the implicit program-wide
      lock is must-held.  The dynamic detector has the matching
      release→acquire edge (end → subsequent begin), so pruning a pair that
      shares ["@atomic"] can never hide a dynamically detectable race.
    - ["sem:s"]: a semaphore used as a lock.  [s] qualifies only when the
      pairing is provable ({!lockable_sems}): initial count 1 and, in every
      function touching it, [sem_wait s]/[sem_post s] form a well-nested
      intra-procedural bracket on every path (no free posts, no nesting, no
      held-at-return, no calls into functions touching [s]).  Then the count
      obeys [count + threads-inside-bracket = 1], at most one thread is ever
      inside, and the dynamic post→wait edge orders any two bracketed
      accesses — the same argument as for a mutex. *)

open Portend_util.Maps
module B = Portend_lang.Bytecode

val atomic_lock : string
(** The implicit program-wide lock of [atomic { ... }] regions.  Racelang
    identifiers cannot contain ['@'], so it never collides with a mutex. *)

val sem_lock : string -> string
(** Pseudo-lock name for a semaphore that qualified as a lock. *)

val call_closure : B.t -> string -> Sset.t
(** Functions reachable from the given entry through [ICall], inclusive. *)

val lockable_sems : B.t -> Sset.t
(** Semaphores provably used as locks (see the module comment).  Any
    occurrence that breaks the bracket discipline disqualifies the
    semaphore program-wide. *)

type summary = {
  must_add : Sset.t;  (** held on return, on every path *)
  may_remove : Sset.t;  (** possibly released, on some path *)
}

type t = {
  summaries : summary Smap.t;
  must_at : Sset.t option array Smap.t;  (** must-held before each pc *)
  may_at : Sset.t option array Smap.t;  (** may-held before each pc *)
}

val analyze_with_cfgs : B.t -> Cfg.t Smap.t -> t
(** [analyze] against CFGs the caller already built (shared with the other
    analyses by {!Static_report.analyze}). *)

val analyze : B.t -> t

val analyze_cached : ?store:Portend_cache.Store.t -> B.t -> t
(** [analyze] with per-function entries read through (and written back to)
    the persistent store's [Summaries] tier.  When every function of the
    program hits, the result is assembled without running any fixpoint;
    any miss falls back to the full analysis and back-fills the missed
    entries.  With [store = None] this is exactly {!analyze}. *)

val must_held : t -> string -> int -> Sset.t
(** Mutexes definitely held on entry to [(fname, pc)]; empty when the site
    is unknown or unreachable (the sound default: no lock protection
    assumed). *)

val may_held : t -> string -> int -> Sset.t
(** Mutexes possibly held on entry to [(fname, pc)] (for the lint pass). *)
