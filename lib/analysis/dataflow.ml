(** A small generic forward-dataflow fixpoint engine over {!Cfg}.

    Worklist iteration to a fixpoint; the abstract state is whatever the
    client provides (the lockset analysis uses lock-set pairs, the MHP
    analysis join-tracking lattices).  Unreachable program points are
    represented as [None] in the result — no state ever flowed there — so
    clients need no artificial bottom element and every [join] sees two
    genuinely reachable states. *)

module B = Portend_lang.Bytecode

type 'a spec = {
  entry : 'a;  (** state on entry to pc 0 *)
  join : 'a -> 'a -> 'a;  (** merge at control-flow confluences *)
  equal : 'a -> 'a -> bool;  (** convergence test *)
  transfer : int -> B.inst -> 'a -> 'a;  (** effect of one instruction *)
}

(** Like {!forward} but seeding the iteration at arbitrary points — used by
    analyses whose facts only exist downstream of some instruction (e.g.
    “has this spawn been joined”, seeded at the spawn's successors). *)
let forward_from (cfg : Cfg.t) (spec : 'a spec) ~(starts : (int * 'a) list) : 'a option array =
  let n = Cfg.n_insts cfg in
  let state : 'a option array = Array.make (max n 1) None in
  let dirty = Queue.create () in
  let meet pc v =
    match state.(pc) with
    | None ->
      state.(pc) <- Some v;
      Queue.push pc dirty
    | Some old ->
      let merged = spec.join old v in
      if not (spec.equal merged old) then begin
        state.(pc) <- Some merged;
        Queue.push pc dirty
      end
  in
  List.iter (fun (pc, v) -> if pc < n then meet pc v) starts;
  while not (Queue.is_empty dirty) do
    let pc = Queue.pop dirty in
    match state.(pc) with
    | None -> ()
    | Some v ->
      let out = spec.transfer pc cfg.Cfg.func.B.code.(pc) v in
      List.iter (fun s -> meet s out) cfg.Cfg.succ.(pc)
  done;
  state

(** In-state before each instruction, starting from function entry;
    [None] = unreachable.  Terminates whenever [join] is monotone-bounded
    (finite lattice height), which all clients in this library satisfy
    (powersets of a program's locks, small finite enums). *)
let forward (cfg : Cfg.t) (spec : 'a spec) : 'a option array =
  forward_from cfg spec ~starts:(if Cfg.n_insts cfg > 0 then [ (0, spec.entry) ] else [])
