(** Static lint pass over a Racelang program — the diagnostics behind
    [portend lint]:

    - potential data races: {!Static_report} candidate pairs, clustered the
      same way the dynamic detector clusters its reports (one diagnostic
      per location × unordered function pair, keeping the highest-ranked
      pair of each cluster);
    - a lock possibly still held when a function returns;
    - a possible second acquire of a mutex already held by the same thread
      (Racelang mutexes are non-reentrant: self-deadlock);
    - a spin loop polling a location that no concurrent thread can write —
      the condition is loop-invariant, so once entered the loop never
      terminates;
    - a signal/broadcast no wait can ever observe (no wait site on the
      condvar may happen in parallel with it — and MHP over-approximates,
      so “cannot be parallel” is definite): the signal is lost;
    - a barrier whose party count provably disagrees with the number of
      threads that can ever arrive at it — fewer arrivals than parties
      deadlocks every arriving thread, more make the release rounds
      nondeterministic;
    - a [sem_wait]/[sem_post] bracket broken along some path of a function
      that uses both on the same semaphore (a token leaked past a return,
      or a post with no matching wait behind it);
    - a potentially blocking operation (lock, wait, barrier, sem_wait)
      inside an atomic region: the region's owner is the only runnable
      thread, so blocking freezes the whole program. *)

open Portend_util.Maps
module B = Portend_lang.Bytecode
module Static = Portend_lang.Static

type severity = Error | Warning

type diag = {
  severity : severity;
  d_func : string;
  d_pc : int;
  code : string;
      (** "potential-race" | "lock-held-at-return" | "double-lock"
          | "spin-invariant" | "lost-signal" | "barrier-mismatch"
          | "sem-unmatched" | "blocking-in-atomic" *)
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string (d : diag) =
  Printf.sprintf "%s: %s:%d: [%s] %s" (severity_to_string d.severity) d.d_func d.d_pc d.code
    d.message

let compare_diag (a : diag) (b : diag) =
  compare (a.d_func, a.d_pc, a.code, a.message) (b.d_func, b.d_pc, b.code, b.message)

(* One diagnostic per (location, unordered function pair) cluster; [pairs]
   arrives ranked, so the first pair seen for a cluster is its best. *)
let race_diags (report : Static_report.t) : diag list =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (p : Static_report.pair) ->
      let f1 = p.Static_report.p1.Static_report.s_func
      and f2 = p.Static_report.p2.Static_report.s_func in
      let fa, fb = if f1 <= f2 then (f1, f2) else (f2, f1) in
      let key = (Static_report.aloc_to_string p.Static_report.p1.Static_report.s_loc, fa, fb) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some
          { severity = Warning;
            d_func = p.Static_report.p1.Static_report.s_func;
            d_pc = p.Static_report.p1.Static_report.s_pc;
            code = "potential-race";
            message = p.Static_report.reason
          }
      end)
    report.Static_report.pairs

let lock_leak_diags (cfgs : Cfg.t Smap.t) (locks : Locksets.t) : diag list =
  Smap.fold
    (fun fname cfg acc ->
      let reported = Hashtbl.create 4 in
      List.fold_left
        (fun acc exit_pc ->
          Sset.fold
            (fun m acc ->
              if Hashtbl.mem reported m then acc
              else begin
                Hashtbl.add reported m ();
                { severity = Warning;
                  d_func = fname;
                  d_pc = exit_pc;
                  code = "lock-held-at-return";
                  message =
                    Printf.sprintf "mutex %s may still be held when %s returns" m fname
                }
                :: acc
              end)
            (Locksets.may_held locks fname exit_pc)
            acc)
        acc (Cfg.exits cfg))
    cfgs []

let double_lock_diags (prog : B.t) (locks : Locksets.t) : diag list =
  Smap.fold
    (fun fname (f : B.func) acc ->
      let acc = ref acc in
      Array.iteri
        (fun pc inst ->
          match inst with
          | B.ILock m when Sset.mem m (Locksets.may_held locks fname pc) ->
            acc :=
              { severity = Error;
                d_func = fname;
                d_pc = pc;
                code = "double-lock";
                message =
                  Printf.sprintf
                    "mutex %s may already be held here; a second acquire self-deadlocks" m
              }
              :: !acc
          | _ -> ())
        f.B.code;
      !acc)
    prog.B.funcs []

let spin_invariant_diags (prog : B.t) (report : Static_report.t) (mhp : Mhp.t) : diag list =
  let writers =
    List.filter
      (fun (s : Static_report.site) -> s.Static_report.s_kind = Static_report.Write)
      report.Static_report.sites
  in
  List.filter_map
    (fun (fname, pc) ->
      let f = Smap.find fname prog.B.funcs in
      match Static_report.aloc_of_inst f.B.code.(pc) with
      | Some (loc, Static_report.Read) ->
        let concurrent_writer =
          List.exists
            (fun (w : Static_report.site) ->
              w.Static_report.s_loc = loc
              && Mhp.may_parallel mhp (fname, pc) (w.Static_report.s_func, w.Static_report.s_pc))
            writers
        in
        if concurrent_writer then None
        else
          Some
            { severity = Error;
              d_func = fname;
              d_pc = pc;
              code = "spin-invariant";
              message =
                Printf.sprintf
                  "spin loop polls %s but no concurrent thread can write it: loop-invariant \
                   condition, likely infinite loop"
                  (Static_report.aloc_to_string loc)
            }
      | _ -> None)
    (Static.spin_read_sites prog)

(* Sites of an instruction class, program-wide. *)
let sites_matching (prog : B.t) (p : B.inst -> bool) : (string * int) list =
  Smap.fold
    (fun fname (f : B.func) acc ->
      let acc = ref acc in
      Array.iteri (fun pc inst -> if p inst then acc := (fname, pc) :: !acc) f.B.code;
      !acc)
    prog.B.funcs []
  |> List.rev

(* A signal nobody can ever receive.  MHP over-approximates concurrency, so
   “no wait site may run in parallel with this signal” is a proof that every
   execution reaching the signal finds the condvar unwatched. *)
let lost_signal_diags (prog : B.t) (mhp : Mhp.t) : diag list =
  let waits c =
    sites_matching prog (function B.IWait (c', _) -> c' = c | _ -> false)
  in
  List.filter_map
    (fun ((fname, pc), c) ->
      if List.exists (fun ws -> Mhp.may_parallel mhp (fname, pc) ws) (waits c) then None
      else
        Some
          { severity = Warning;
            d_func = fname;
            d_pc = pc;
            code = "lost-signal";
            message =
              Printf.sprintf
                "signal on %s can never be observed: no wait on %s may run in parallel \
                 (lost signal)"
                c c
          })
    (sites_matching prog (function B.ISignal _ | B.IBroadcast _ -> true | _ -> false)
    |> List.map (fun (fname, pc) ->
           match (Smap.find fname prog.B.funcs).B.code.(pc) with
           | B.ISignal c | B.IBroadcast c -> ((fname, pc), c)
           | _ -> assert false))

(* Party count vs. how many threads can ever arrive.  Only when every
   potentially arriving abstract thread is single-instance is the arrival
   count exact enough to call a mismatch. *)
let barrier_mismatch_diags (prog : B.t) (mhp : Mhp.t) : diag list =
  List.filter_map
    (fun (b, parties) ->
      let sites = sites_matching prog (function B.IBarrier b' -> b' = b | _ -> false) in
      match sites with
      | [] -> None
      | (f0, pc0) :: _ ->
        let barrier_funcs =
          List.fold_left (fun acc (f, _) -> Sset.add f acc) Sset.empty sites
        in
        let arrivers =
          List.filter
            (fun th ->
              List.exists
                (fun (th', closure) ->
                  th' = th && Sset.exists (fun f -> Sset.mem f barrier_funcs) closure)
                mhp.Mhp.closures)
            mhp.Mhp.threads
        in
        let all_single =
          List.for_all (fun th -> Mhp.instances_of mhp th = Mhp.One) arrivers
        in
        let n = List.length arrivers in
        if (not all_single) || n = parties then None
        else if n < parties then
          Some
            { severity = Error;
              d_func = f0;
              d_pc = pc0;
              code = "barrier-mismatch";
              message =
                Printf.sprintf
                  "barrier %s expects %d parties but at most %d thread(s) can arrive: \
                   every arrival blocks forever"
                  b parties n
            }
        else
          Some
            { severity = Warning;
              d_func = f0;
              d_pc = pc0;
              code = "barrier-mismatch";
              message =
                Printf.sprintf
                  "barrier %s expects %d parties but %d threads can arrive: release \
                   rounds pair arbitrary subsets of threads"
                  b parties n
            })
    prog.B.barriers

(* Interval of semaphore tokens taken (wait) minus returned (post) since
   function entry, per semaphore, for functions using both ops on it. *)
let sem_unmatched_diags (prog : B.t) (cfgs : Cfg.t Smap.t) : diag list =
  let cap = 8 in
  Smap.fold
    (fun fname (f : B.func) acc ->
      let sems_bracketed =
        let waits, posts =
          Array.fold_left
            (fun (w, p) inst ->
              match inst with
              | B.ISemWait s -> (Sset.add s w, p)
              | B.ISemPost s -> (w, Sset.add s p)
              | _ -> (w, p))
            (Sset.empty, Sset.empty) f.B.code
        in
        Sset.inter waits posts
      in
      if Sset.is_empty sems_bracketed then acc
      else
        let cfg = Smap.find fname cfgs in
        Sset.fold
          (fun s acc ->
            let transfer _ inst v =
              match inst with
              | B.ISemWait s' when s' = s -> min cap (v + 1)
              | B.ISemPost s' when s' = s -> max 0 (v - 1)
              | _ -> v
            in
            let run join =
              Dataflow.forward cfg { Dataflow.entry = 0; join; equal = ( = ); transfer }
            in
            let must = run min and may = run max in
            let leak_diags =
              List.filter_map
                (fun exit_pc ->
                  match may.(exit_pc) with
                  | Some v when transfer exit_pc f.B.code.(exit_pc) v > 0 ->
                    Some
                      { severity = Warning;
                        d_func = fname;
                        d_pc = exit_pc;
                        code = "sem-unmatched";
                        message =
                          Printf.sprintf
                            "sem_wait %s is not matched by a sem_post on some path to \
                             this return"
                            s
                      }
                  | _ -> None)
                (Cfg.exits cfg)
            in
            let free_post_diags =
              let out = ref [] in
              Array.iteri
                (fun pc inst ->
                  match (inst, must.(pc)) with
                  | B.ISemPost s', Some 0 when s' = s ->
                    out :=
                      { severity = Warning;
                        d_func = fname;
                        d_pc = pc;
                        code = "sem-unmatched";
                        message =
                          Printf.sprintf
                            "sem_post %s on some path here has no matching sem_wait \
                             behind it"
                            s
                      }
                      :: !out
                  | _ -> ())
                f.B.code;
              !out
            in
            leak_diags @ free_post_diags @ acc)
          sems_bracketed acc)
    prog.B.funcs []

(* Blocking while holding the implicit atomic-region lock: the owner is the
   only runnable thread, so if it parks, nothing can ever unpark it. *)
let blocking_in_atomic_diags (prog : B.t) (locks : Locksets.t) : diag list =
  Smap.fold
    (fun fname (f : B.func) acc ->
      let acc = ref acc in
      Array.iteri
        (fun pc inst ->
          let blocking =
            match inst with
            | B.ILock m -> Some ("lock " ^ m)
            | B.IWait (c, _) -> Some ("wait " ^ c)
            | B.IBarrier b -> Some ("barrier_wait " ^ b)
            | B.ISemWait s -> Some ("sem_wait " ^ s)
            | _ -> None
          in
          match blocking with
          | Some op when Sset.mem Locksets.atomic_lock (Locksets.may_held locks fname pc) ->
            acc :=
              { severity = Error;
                d_func = fname;
                d_pc = pc;
                code = "blocking-in-atomic";
                message =
                  Printf.sprintf
                    "%s may block inside an atomic region; no other thread can run to \
                     unblock it"
                    op
              }
              :: !acc
          | _ -> ())
        f.B.code;
      !acc)
    prog.B.funcs []

(** All diagnostics for a program, deterministically ordered. *)
(* [store] reads the lockset/MHP inputs through the persistent cache
   ([portend lint --cache]); diagnostics are recomputed from them either
   way, so cached and uncached runs print identical output. *)
let run ?store (prog : B.t) : diag list =
  let cfgs = Smap.map Cfg.build prog.B.funcs in
  let locks =
    match store with
    | None -> Locksets.analyze_with_cfgs prog cfgs
    | Some _ -> Locksets.analyze_cached ?store prog
  in
  let mhp =
    match store with
    | None -> Mhp.analyze_with_cfgs prog cfgs
    | Some _ -> Mhp.analyze_cached ?store prog
  in
  let report = Static_report.analyze_with prog locks mhp in
  race_diags report
  @ lock_leak_diags cfgs locks
  @ double_lock_diags prog locks
  @ spin_invariant_diags prog report mhp
  @ lost_signal_diags prog mhp
  @ barrier_mismatch_diags prog mhp
  @ sem_unmatched_diags prog cfgs
  @ blocking_in_atomic_diags prog locks
  |> List.sort_uniq compare_diag
