(** Static lint pass over a Racelang program — the diagnostics behind
    [portend lint]:

    - potential data races: {!Static_report} candidate pairs, clustered the
      same way the dynamic detector clusters its reports (one diagnostic
      per location × unordered function pair, keeping the highest-ranked
      pair of each cluster);
    - a lock possibly still held when a function returns;
    - a possible second acquire of a mutex already held by the same thread
      (Racelang mutexes are non-reentrant: self-deadlock);
    - a spin loop polling a location that no concurrent thread can write —
      the condition is loop-invariant, so once entered the loop never
      terminates. *)

open Portend_util.Maps
module B = Portend_lang.Bytecode
module Static = Portend_lang.Static

type severity = Error | Warning

type diag = {
  severity : severity;
  d_func : string;
  d_pc : int;
  code : string;  (** "potential-race" | "lock-held-at-return" | "double-lock" | "spin-invariant" *)
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string (d : diag) =
  Printf.sprintf "%s: %s:%d: [%s] %s" (severity_to_string d.severity) d.d_func d.d_pc d.code
    d.message

let compare_diag (a : diag) (b : diag) =
  compare (a.d_func, a.d_pc, a.code, a.message) (b.d_func, b.d_pc, b.code, b.message)

(* One diagnostic per (location, unordered function pair) cluster; [pairs]
   arrives ranked, so the first pair seen for a cluster is its best. *)
let race_diags (report : Static_report.t) : diag list =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (p : Static_report.pair) ->
      let f1 = p.Static_report.p1.Static_report.s_func
      and f2 = p.Static_report.p2.Static_report.s_func in
      let fa, fb = if f1 <= f2 then (f1, f2) else (f2, f1) in
      let key = (Static_report.aloc_to_string p.Static_report.p1.Static_report.s_loc, fa, fb) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some
          { severity = Warning;
            d_func = p.Static_report.p1.Static_report.s_func;
            d_pc = p.Static_report.p1.Static_report.s_pc;
            code = "potential-race";
            message = p.Static_report.reason
          }
      end)
    report.Static_report.pairs

let lock_leak_diags (cfgs : Cfg.t Smap.t) (locks : Locksets.t) : diag list =
  Smap.fold
    (fun fname cfg acc ->
      let reported = Hashtbl.create 4 in
      List.fold_left
        (fun acc exit_pc ->
          Sset.fold
            (fun m acc ->
              if Hashtbl.mem reported m then acc
              else begin
                Hashtbl.add reported m ();
                { severity = Warning;
                  d_func = fname;
                  d_pc = exit_pc;
                  code = "lock-held-at-return";
                  message =
                    Printf.sprintf "mutex %s may still be held when %s returns" m fname
                }
                :: acc
              end)
            (Locksets.may_held locks fname exit_pc)
            acc)
        acc (Cfg.exits cfg))
    cfgs []

let double_lock_diags (prog : B.t) (locks : Locksets.t) : diag list =
  Smap.fold
    (fun fname (f : B.func) acc ->
      let acc = ref acc in
      Array.iteri
        (fun pc inst ->
          match inst with
          | B.ILock m when Sset.mem m (Locksets.may_held locks fname pc) ->
            acc :=
              { severity = Error;
                d_func = fname;
                d_pc = pc;
                code = "double-lock";
                message =
                  Printf.sprintf
                    "mutex %s may already be held here; a second acquire self-deadlocks" m
              }
              :: !acc
          | _ -> ())
        f.B.code;
      !acc)
    prog.B.funcs []

let spin_invariant_diags (prog : B.t) (report : Static_report.t) (mhp : Mhp.t) : diag list =
  let writers =
    List.filter
      (fun (s : Static_report.site) -> s.Static_report.s_kind = Static_report.Write)
      report.Static_report.sites
  in
  List.filter_map
    (fun (fname, pc) ->
      let f = Smap.find fname prog.B.funcs in
      match Static_report.aloc_of_inst f.B.code.(pc) with
      | Some (loc, Static_report.Read) ->
        let concurrent_writer =
          List.exists
            (fun (w : Static_report.site) ->
              w.Static_report.s_loc = loc
              && Mhp.may_parallel mhp (fname, pc) (w.Static_report.s_func, w.Static_report.s_pc))
            writers
        in
        if concurrent_writer then None
        else
          Some
            { severity = Error;
              d_func = fname;
              d_pc = pc;
              code = "spin-invariant";
              message =
                Printf.sprintf
                  "spin loop polls %s but no concurrent thread can write it: loop-invariant \
                   condition, likely infinite loop"
                  (Static_report.aloc_to_string loc)
            }
      | _ -> None)
    (Static.spin_read_sites prog)

(** All diagnostics for a program, deterministically ordered. *)
(* [store] reads the lockset/MHP inputs through the persistent cache
   ([portend lint --cache]); diagnostics are recomputed from them either
   way, so cached and uncached runs print identical output. *)
let run ?store (prog : B.t) : diag list =
  let cfgs = Smap.map Cfg.build prog.B.funcs in
  let locks =
    match store with
    | None -> Locksets.analyze_with_cfgs prog cfgs
    | Some _ -> Locksets.analyze_cached ?store prog
  in
  let mhp =
    match store with
    | None -> Mhp.analyze_with_cfgs prog cfgs
    | Some _ -> Mhp.analyze_cached ?store prog
  in
  let report = Static_report.analyze_with prog locks mhp in
  race_diags report
  @ lock_leak_diags cfgs locks
  @ double_lock_diags prog locks
  @ spin_invariant_diags prog report mhp
  |> List.sort_uniq compare_diag
