(** Candidate race pairs from the static analyses: the cross product of

    - may-happen-in-parallel ({!Mhp}),
    - overlapping coarse locations (any two cells of one array overlap),
    - disjoint must-held locksets ({!Locksets}), and
    - at least one write,

    ranked with a crude badness score and a human-readable reason each.
    The generator is deliberately a strict over-approximation of the
    dynamic happens-before detector: every race the detector can ever
    report is between two sites forming a candidate pair here (the
    prefilter-soundness tests assert exactly this over the workload
    suite), which is what lets {!Portend_detect.Hb.detect} restrict its
    instrumentation to candidate sites without losing races. *)

open Portend_util.Maps
module B = Portend_lang.Bytecode

(** Abstract location, mirroring the granularity at which the dynamic
    detector matches conflicts: exact global, whole array (any two cells
    may be the same cell), and an array's metadata ([IFree] sites). *)
type aloc =
  | Aglobal of string
  | Aarray of string
  | Ameta of string

type kind = Read | Write

type site = {
  s_func : string;
  s_pc : int;
  s_loc : aloc;
  s_kind : kind;
  s_lockset : Sset.t;  (** mutexes must-held at the access *)
}

type pair = {
  p1 : site;
  p2 : site;
  score : int;
  reason : string;
}

type t = {
  sites : site list;  (** every static shared-access site *)
  pairs : pair list;  (** candidates, highest score first *)
}

val aloc_of_inst : B.inst -> (aloc * kind) option
(** The shared-memory access an instruction performs, if any. *)

val aloc_to_string : aloc -> string
val kind_to_string : kind -> string

val analyze_with : B.t -> Locksets.t -> Mhp.t -> t
(** Pair generation against analyses the caller already ran. *)

val analyze : B.t -> t

val analyze_cached : ?store:Portend_cache.Store.t -> B.t -> t
(** [analyze] with the expensive inputs — per-function lockset fixpoints
    and the whole-program MHP structure — read through the persistent
    store.  Pair generation itself is cheap and recomputed fresh, so the
    report always reflects exactly the (possibly cached) analyses it was
    built from. *)

val restrict_sites : t -> (string * int) list
(** Sites participating in at least one candidate pair — the set the
    dynamic detector needs to instrument to see every reportable race. *)

val covers : t -> string * int -> string * int -> bool
(** Is the (unordered) pair of dynamic sites covered by some candidate? *)

val shared_site_count : t -> int
val candidate_site_count : t -> int

val pp_pair : Format.formatter -> pair -> unit
val pp : Format.formatter -> t -> unit
