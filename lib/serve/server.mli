(** The classification daemon: a long-running server that answers
    {!Protocol} jobs over a Unix-domain or TCP socket.

    One process keeps every accelerator hot across requests — the solver
    memo table (imported from and exported to the persistent store when
    caching is on), the per-function static summaries and whole-program
    MHP results, and the content-addressed verdict tier — so the steady
    state of a busy daemon is the warm-cache row of
    [BENCH_incremental.json], not the cold one.

    Service behaviour (DESIGN.md §7):
    - {e intake} is newline-delimited JSON; a malformed line gets a
      structured [parse_error]/[bad_request] reply and the connection
      stays usable; a line exceeding [max_request_bytes] gets an
      [oversized] reply and the connection is closed (the stream cannot
      be resynchronized);
    - {e fairness} is round-robin: each dispatch round takes at most one
      queued job per client before taking a second from anyone;
    - {e backpressure} is explicit: when [queue_depth] jobs are pending
      the daemon answers [busy] instead of queueing, immediately;
    - {e idle clients} are disconnected after [idle_timeout_s] with no
      traffic and nothing queued;
    - {e drain} is graceful: on a control-pipe byte (or SIGTERM via the
      CLI), the listener closes, queued jobs finish, replies flush, the
      solver-memo snapshot is exported, and [run] returns — no orphan
      worker domains survive (every pool joins its helpers).

    Jobs are dispatched in rounds through {!Portend_util.Pool.map} on
    [config.jobs] domains; verdicts are bit-identical to one-shot
    {!Portend_core.Pipeline.analyze} for every job count and queue order
    (each job reads only its own immutable program, trace, and states).

    Telemetry (when enabled): [serve.job] spans, [serve.requests] /
    [serve.jobs] / [serve.protocol_errors] / [serve.busy] /
    [serve.oversized] / [serve.clients_accepted] / [serve.clients_closed]
    / [serve.idle_closed] counters and the [serve.queue_depth] gauge,
    all exported through the usual snapshot machinery. *)

type address =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** host (dotted quad or [""] = loopback), port; port [0] binds ephemerally *)

val pp_address : Format.formatter -> address -> unit
val address_to_string : address -> string

type settings = {
  config : Portend_core.Config.t;
      (** base classifier config; requests may override the exploration
          dials, never the jobs/cache policy *)
  max_request_bytes : int;  (** request-line size cap (default 1 MiB) *)
  queue_depth : int;  (** pending jobs accepted before [busy] (default 64) *)
  idle_timeout_s : float;  (** disconnect idle clients; [<= 0.] disables (default 300) *)
  batch : int;  (** max jobs dispatched per round (default 8) *)
}

val default_settings : settings

(** {1 Foreground operation}

    [run ~control addr] binds [addr], serves until a byte arrives on the
    [control] file descriptor (the read end of a pipe), drains, and
    returns.  [on_ready] is called once with the bound address (the
    resolved port for [Tcp (_, 0)]) before the first accept. *)
val run :
  ?settings:settings -> ?on_ready:(address -> unit) -> control:Unix.file_descr -> address -> unit

(** {1 In-process daemon handle} (tests and benchmarks)

    [start addr] runs {!run} on a fresh domain and blocks until the
    server is accepting; {!stop} triggers a graceful drain and joins the
    domain (re-raising anything the server loop raised). *)

type t

val start : ?settings:settings -> address -> t
val address : t -> address
val stop : t -> unit
