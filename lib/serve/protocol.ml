(* Request validation and response rendering for the serve line protocol;
   the wire format is documented in protocol.mli. *)

module Core = Portend_core
module D = Portend_detect

type source =
  | Program of string
  | Workload of string

type overrides = {
  ov_mp : int option;
  ov_ma : int option;
  ov_sym : int option;
  ov_prefilter : bool option;
  ov_reduction : bool option;
}

let no_overrides =
  { ov_mp = None; ov_ma = None; ov_sym = None; ov_prefilter = None; ov_reduction = None }

type request = {
  rq_id : Json.t option;
  rq_source : source;
  rq_seed : int option;
  rq_inputs : (string * int) list option;
  rq_overrides : overrides;
}

(* --- request parsing --------------------------------------------------- *)

let ( let* ) = Result.bind

let bad msg = Error ("bad_request", msg)

let field_int name = function
  | None -> Ok None
  | Some v -> (
    match Json.to_int v with
    | Ok n -> Ok (Some n)
    | Error e -> bad (Printf.sprintf "%S: %s" name e))

let field_bool name = function
  | None -> Ok None
  | Some v -> (
    match Json.to_bool v with
    | Ok b -> Ok (Some b)
    | Error e -> bad (Printf.sprintf "%S: %s" name e))

let parse_overrides = function
  | None -> Ok no_overrides
  | Some (Json.Obj members) ->
    let known = [ "mp"; "ma"; "max_symbolic_inputs"; "static_prefilter"; "enable_reduction" ] in
    let* () =
      match List.find_opt (fun (k, _) -> not (List.mem k known)) members with
      | Some (k, _) ->
        bad
          (Printf.sprintf "unknown \"config\" key %S (known: %s)" k (String.concat ", " known))
      | None -> Ok ()
    in
    let* () =
      match Core.Inputs.check_duplicates (List.map (fun (k, _) -> (k, 0)) members) with
      | Ok _ -> Ok ()
      | Error _ -> bad "duplicate key in \"config\""
    in
    let get k = List.assoc_opt k members in
    let* ov_mp = field_int "config.mp" (get "mp") in
    let* ov_ma = field_int "config.ma" (get "ma") in
    let* ov_sym = field_int "config.max_symbolic_inputs" (get "max_symbolic_inputs") in
    let* ov_prefilter = field_bool "config.static_prefilter" (get "static_prefilter") in
    let* ov_reduction = field_bool "config.enable_reduction" (get "enable_reduction") in
    Ok { ov_mp; ov_ma; ov_sym; ov_prefilter; ov_reduction }
  | Some v -> bad ("\"config\": expected an object, found " ^ Json.type_name v)

let parse_inputs = function
  | None -> Ok None
  | Some (Json.Obj members) ->
    let* pairs =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          if k = "" then bad "\"inputs\": empty input name"
          else
            match Json.to_int v with
            | Ok n -> Ok ((k, n) :: acc)
            | Error e -> bad (Printf.sprintf "\"inputs\".%S: %s" k e))
        (Ok []) members
    in
    (* Same duplicate-key rule as the CLI's --input (Core.Inputs). *)
    (match Core.Inputs.check_duplicates (List.rev pairs) with
    | Ok pairs -> Ok (Some pairs)
    | Error e -> bad ("\"inputs\": " ^ e))
  | Some v -> bad ("\"inputs\": expected an object, found " ^ Json.type_name v)

let parse_request (j : Json.t) : (request, string * string) result =
  match j with
  | Json.Obj members ->
    let known = [ "id"; "program"; "workload"; "seed"; "inputs"; "config" ] in
    let* () =
      match List.find_opt (fun (k, _) -> not (List.mem k known)) members with
      | Some (k, _) ->
        bad (Printf.sprintf "unknown request key %S (known: %s)" k (String.concat ", " known))
      | None -> Ok ()
    in
    let get k = List.assoc_opt k members in
    let* rq_id =
      match get "id" with
      | None -> Ok None
      | Some (Json.String _ | Json.Int _) as id -> Ok id
      | Some v -> bad ("\"id\": expected a string or integer, found " ^ Json.type_name v)
    in
    let* rq_source =
      match (get "program", get "workload") with
      | Some p, None -> (
        match Json.to_str p with
        | Ok s when s <> "" -> Ok (Program s)
        | Ok _ -> bad "\"program\": empty source text"
        | Error e -> bad ("\"program\": " ^ e))
      | None, Some w -> (
        match Json.to_str w with
        | Ok s when s <> "" -> Ok (Workload s)
        | Ok _ -> bad "\"workload\": empty name"
        | Error e -> bad ("\"workload\": " ^ e))
      | Some _, Some _ -> bad "give either \"program\" or \"workload\", not both"
      | None, None -> bad "missing \"program\" or \"workload\""
    in
    let* rq_seed = field_int "seed" (get "seed") in
    let* rq_inputs = parse_inputs (get "inputs") in
    let* rq_overrides = parse_overrides (get "config") in
    Ok { rq_id; rq_source; rq_seed; rq_inputs; rq_overrides }
  | v -> bad ("expected a request object, found " ^ Json.type_name v)

let effective_config ~(base : Core.Config.t) (rq : request) : Core.Config.t =
  let ov = rq.rq_overrides in
  let pick o d = match o with Some v -> v | None -> d in
  { base with
    Core.Config.mp = pick ov.ov_mp base.Core.Config.mp;
    ma = pick ov.ov_ma base.Core.Config.ma;
    max_symbolic_inputs = pick ov.ov_sym base.Core.Config.max_symbolic_inputs;
    static_prefilter = pick ov.ov_prefilter base.Core.Config.static_prefilter;
    enable_reduction = pick ov.ov_reduction base.Core.Config.enable_reduction
  }

(* --- response rendering ------------------------------------------------ *)

let with_id id members =
  match id with Some id -> ("id", id) :: members | None -> members

let error_line ?id ~code message =
  Json.Obj
    (("type", Json.String "error")
    :: with_id id [ ("code", Json.String code); ("message", Json.String message) ])

let verdict_lines ?id (a : Core.Pipeline.t) : Json.t list =
  let verdicts =
    List.map
      (fun (ra : Core.Pipeline.race_analysis) ->
        let v = ra.Core.Pipeline.verdict in
        let consequence =
          match v.Core.Taxonomy.consequence with
          | Some c -> [ ("consequence", Json.String (Portend_vm.Crash.consequence_to_string c)) ]
          | None -> []
        in
        Json.Obj
          (("type", Json.String "verdict")
          :: with_id id
               ([ ("race", Json.String (Fmt.str "%a" D.Report.pp_race ra.Core.Pipeline.race));
                  ( "loc",
                    Json.String (D.Report.base_loc ra.Core.Pipeline.race.D.Report.r_loc) );
                  ( "category",
                    Json.String (Core.Taxonomy.category_to_string v.Core.Taxonomy.category) );
                  ("k", Json.Int v.Core.Taxonomy.k);
                  ("states_differ", Json.Bool v.Core.Taxonomy.states_differ);
                  ("detail", Json.String v.Core.Taxonomy.detail);
                  ("instances", Json.Int ra.Core.Pipeline.instances)
                ]
               @ consequence)))
      a.Core.Pipeline.races
  in
  let unclassified =
    List.map
      (fun (race, e) ->
        Json.Obj
          (("type", Json.String "unclassified")
          :: with_id id
               [ ("race", Json.String (Fmt.str "%a" D.Report.pp_race race));
                 ("error", Json.String e)
               ]))
      a.Core.Pipeline.errors
  in
  verdicts @ unclassified

let summary_line ?id ?time_s (a : Core.Pipeline.t) : Json.t =
  let harmful =
    List.exists
      (fun (ra : Core.Pipeline.race_analysis) ->
        Core.Taxonomy.is_harmful ra.Core.Pipeline.verdict.Core.Taxonomy.category)
      a.Core.Pipeline.races
  in
  let time = match time_s with Some t -> [ ("time_s", Json.Float t) ] | None -> [] in
  Json.Obj
    (("type", Json.String "summary")
    :: with_id id
         ([ ("program", Json.String a.Core.Pipeline.program.Portend_lang.Bytecode.pname);
            ( "stop",
              Json.String
                (Portend_vm.Run.stop_to_string a.Core.Pipeline.record.Portend_vm.Run.stop) );
            ("races", Json.Int (List.length a.Core.Pipeline.races));
            ( "instances",
              Json.Int
                (List.fold_left
                   (fun acc (ra : Core.Pipeline.race_analysis) ->
                     acc + ra.Core.Pipeline.instances)
                   0 a.Core.Pipeline.races) );
            ("errors", Json.Int (List.length a.Core.Pipeline.errors));
            ("harmful", Json.Bool harmful)
          ]
         @ time))

let responses_of_analysis ?id ?time_s (a : Core.Pipeline.t) : Json.t list =
  verdict_lines ?id a @ [ summary_line ?id ?time_s a ]

let strip_member name = function
  | Json.Obj members -> Json.Obj (List.filter (fun (k, _) -> k <> name) members)
  | v -> v
