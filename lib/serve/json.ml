(* Minimal strict JSON codec for the serve protocol; see json.mli for the
   contract (bounded depth, duplicates preserved, errors never exceptions). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 64

exception Fail of string * int

(* --- parsing ---------------------------------------------------------- *)

type cursor = {
  src : string;
  mutable pos : int;
}

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None
let fail c msg = raise (Fail (msg, c.pos))

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected '%c', found '%c'" ch x)
  | None -> fail c (Printf.sprintf "expected '%c', found end of input" ch)

(* [literal c "rue" Bool true] after the leading 't' was consumed. *)
let literal c rest v =
  String.iter (fun ch -> expect c ch) rest;
  v

let hex_digit c =
  match peek c with
  | Some ch when ch >= '0' && ch <= '9' ->
    advance c;
    Char.code ch - Char.code '0'
  | Some ch when ch >= 'a' && ch <= 'f' ->
    advance c;
    Char.code ch - Char.code 'a' + 10
  | Some ch when ch >= 'A' && ch <= 'F' ->
    advance c;
    Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad \\u escape (want 4 hex digits)"

(* UTF-8-encode one code point (surrogate pairs are not recombined; each
   half encodes independently, which round-trips through our printer). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | None -> fail c "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp =
            let a = hex_digit c in
            let b = hex_digit c in
            let d = hex_digit c in
            let e = hex_digit c in
            (a lsl 12) lor (b lsl 8) lor (d lsl 4) lor e
          in
          add_utf8 buf cp
        | _ -> fail c (Printf.sprintf "bad escape '\\%c'" ch)));
      loop ()
    | Some ch when Char.code ch < 0x20 -> fail c "unescaped control character in string"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    while match peek c with Some ch when pred ch -> advance c; true | _ -> false do
      ()
    done
  in
  if peek c = Some '-' then advance c;
  consume_while (fun ch -> ch >= '0' && ch <= '9');
  let is_float = ref false in
  if peek c = Some '.' then begin
    is_float := true;
    advance c;
    consume_while (fun ch -> ch >= '0' && ch <= '9')
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    is_float := true;
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    consume_while (fun ch -> ch >= '0' && ch <= '9')
  | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c ("bad number: " ^ text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    (* Integer wider than native int: keep the value, approximately. *)
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c ("bad number: " ^ text))

let rec parse_value c depth =
  if depth > max_depth then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "expected a JSON value, found end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let members = ref [] in
      let rec members_loop () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c (depth + 1) in
        members := (k, v) :: !members;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members_loop ()
        | Some '}' -> advance c
        | _ -> fail c "expected ',' or '}' in object"
      in
      members_loop ();
      Obj (List.rev !members)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value c (depth + 1) in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items_loop ()
        | Some ']' -> advance c
        | _ -> fail c "expected ',' or ']' in array"
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string c)
  | Some 't' ->
    advance c;
    literal c "rue" (Bool true)
  | Some 'f' ->
    advance c;
    literal c "alse" (Bool false)
  | Some 'n' ->
    advance c;
    literal c "ull" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character '%c'" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c 0 with
  | v ->
    skip_ws c;
    if c.pos < String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Fail (msg, pos) -> Error (Printf.sprintf "%s at offset %d" msg pos)

(* --- printing --------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | String s -> escape_to buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          go item)
        members;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- accessors -------------------------------------------------------- *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ | Float _ -> "number"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let member name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let to_int = function
  | Int n -> Ok n
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 53. -> Ok (int_of_float f)
  | v -> Error ("expected an integer, found " ^ type_name v)

let to_str = function
  | String s -> Ok s
  | v -> Error ("expected a string, found " ^ type_name v)

let to_bool = function
  | Bool b -> Ok b
  | v -> Error ("expected a boolean, found " ^ type_name v)
