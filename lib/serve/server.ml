(* The classification daemon; service contract in server.mli, wire format
   in protocol.mli, architecture rationale in DESIGN.md §7. *)

module Core = Portend_core
module Telemetry = Portend_telemetry
module Clock = Portend_util.Clock

type address =
  | Unix_path of string
  | Tcp of string * int

let address_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) ->
    Printf.sprintf "tcp:%s:%d" (if host = "" then "127.0.0.1" else host) port

let pp_address fmt a = Format.pp_print_string fmt (address_to_string a)

type settings = {
  config : Core.Config.t;
  max_request_bytes : int;
  queue_depth : int;
  idle_timeout_s : float;
  batch : int;
}

let default_settings =
  { config = Core.Config.default;
    max_request_bytes = 1024 * 1024;
    queue_depth = 64;
    idle_timeout_s = 300.;
    batch = 8
  }

(* --- per-client state -------------------------------------------------- *)

type client = {
  fd : Unix.file_descr;
  cid : int;
  mutable pending : string;  (** bytes read but not yet newline-terminated *)
  jobs : (Json.t option * Protocol.request) Queue.t;  (** (id, parsed job) *)
  mutable last_active : float;
  mutable alive : bool;
}

type state = {
  settings : settings;
  listener : Unix.file_descr;
  control : Unix.file_descr;
  clients : (int, client) Hashtbl.t;
  mutable rotation : int list;  (** client ids, round-robin dispatch order *)
  mutable total_queued : int;
  mutable draining : bool;
}

let tick name = if Telemetry.enabled () then Telemetry.incr name

(* --- socket plumbing --------------------------------------------------- *)

let bind_listener = function
  | Unix_path path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Unix_path path)
  | Tcp (host, port) ->
    let addr =
      match host with
      | "" | "localhost" -> Unix.inet_addr_loopback
      | h -> Unix.inet_addr_of_string h
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    let bound_port =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    (fd, Tcp (host, bound_port))

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write_substring fd s !off (len - !off) in
    if n = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    off := !off + n
  done

(* Send one response line; a client we cannot write to is dead (reaped by
   the caller via [close_client] once it observes [alive = false]). *)
let send cl (line : Json.t) =
  if cl.alive then
    try
      write_all cl.fd (Json.to_string line ^ "\n");
      cl.last_active <- Clock.now_s ()
    with Unix.Unix_error _ -> cl.alive <- false

let close_client st cl =
  if Hashtbl.mem st.clients cl.cid then begin
    Hashtbl.remove st.clients cl.cid;
    st.rotation <- List.filter (fun id -> id <> cl.cid) st.rotation;
    st.total_queued <- st.total_queued - Queue.length cl.jobs;
    Queue.clear cl.jobs;
    cl.alive <- false;
    (try Unix.close cl.fd with Unix.Unix_error _ -> ());
    tick "serve.clients_closed"
  end

(* --- job execution ----------------------------------------------------- *)

(* Resolve the request's program source to (bytecode, default seed,
   default inputs).  Compile failures are protocol errors, not crashes. *)
let resolve_source (src : Protocol.source) =
  match src with
  | Protocol.Program text -> (
    match Portend_lang.Parser.compile_string text with
    | prog -> Ok (prog, 1, [])
    | exception (Portend_lang.Parser.Error e | Portend_lang.Lexer.Error e) ->
      Error ("compile_error", "parse error: " ^ e)
    | exception Portend_lang.Compile.Error e -> Error ("compile_error", "compile error: " ^ e))
  | Protocol.Workload name -> (
    match Portend_workloads.Suite.find name with
    | Some w ->
      Ok
        ( Portend_lang.Compile.compile w.Portend_workloads.Registry.w_prog,
          w.Portend_workloads.Registry.w_seed,
          w.Portend_workloads.Registry.w_inputs )
    | None -> Error ("unknown_workload", Printf.sprintf "no workload named %S in the suite" name))

(* Run one job to its full response-line list.  Total: every failure mode
   is a structured error line; nothing escapes to kill a pool worker. *)
let handle_job (settings : settings) ((id, rq) : Json.t option * Protocol.request) : Json.t list =
  Telemetry.with_span "serve.job" (fun () ->
      match resolve_source rq.Protocol.rq_source with
      | Error (code, msg) ->
        tick "serve.protocol_errors";
        [ Protocol.error_line ?id ~code msg ]
      | Ok (prog, default_seed, default_inputs) -> (
        let seed = Option.value rq.Protocol.rq_seed ~default:default_seed in
        let inputs = Option.value rq.Protocol.rq_inputs ~default:default_inputs in
        let config = Protocol.effective_config ~base:settings.config rq in
        match Clock.timed (fun () -> Core.Pipeline.analyze ~config ~seed ~inputs prog) with
        | analysis, time_s ->
          tick "serve.jobs";
          Protocol.responses_of_analysis ?id ~time_s analysis
        | exception e ->
          tick "serve.errors";
          [ Protocol.error_line ?id ~code:"internal_error" (Printexc.to_string e) ]))

(* --- intake ------------------------------------------------------------ *)

let intake_line st cl line =
  let line =
    (* Tolerate CRLF clients. *)
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.trim line <> "" then begin
    tick "serve.requests";
    match Json.parse line with
    | Error e ->
      tick "serve.protocol_errors";
      send cl (Protocol.error_line ~code:"parse_error" e)
    | Ok j -> (
      match Protocol.parse_request j with
      | Error (code, msg) ->
        tick "serve.protocol_errors";
        send cl (Protocol.error_line ?id:(Json.member "id" j) ~code msg)
      | Ok rq ->
        if st.total_queued >= st.settings.queue_depth then begin
          tick "serve.busy";
          send cl
            (Protocol.error_line ?id:rq.Protocol.rq_id ~code:"busy"
               (Printf.sprintf "queue full (%d job(s) pending); retry later"
                  st.total_queued))
        end
        else begin
          Queue.add (rq.Protocol.rq_id, rq) cl.jobs;
          st.total_queued <- st.total_queued + 1;
          if Telemetry.enabled () then Telemetry.gauge "serve.queue_depth" st.total_queued
        end)
  end

(* Split [cl.pending] on newlines and intake every complete line. *)
let drain_pending st cl =
  let rec loop () =
    match String.index_opt cl.pending '\n' with
    | Some i when i <= st.settings.max_request_bytes ->
      let line = String.sub cl.pending 0 i in
      cl.pending <- String.sub cl.pending (i + 1) (String.length cl.pending - i - 1);
      intake_line st cl line;
      if cl.alive then loop ()
    | Some _ -> oversized ()
    | None ->
      if String.length cl.pending > st.settings.max_request_bytes then oversized ()
  and oversized () =
    (* A line past the cap — complete or still streaming in — is never
       parsed; and once we stop trusting line boundaries the stream cannot
       be resynchronized, so reply and close. *)
    tick "serve.oversized";
    send cl
      (Protocol.error_line ~code:"oversized"
         (Printf.sprintf "request line exceeds %d bytes" st.settings.max_request_bytes));
    close_client st cl
  in
  loop ()

let read_client st cl =
  let buf = Bytes.create 65536 in
  match Unix.read cl.fd buf 0 (Bytes.length buf) with
  | 0 -> close_client st cl (* EOF: a partial trailing line is discarded *)
  | n ->
    cl.last_active <- Clock.now_s ();
    cl.pending <- cl.pending ^ Bytes.sub_string buf 0 n;
    drain_pending st cl
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_client st cl

let accept_clients st next_cid =
  let rec loop () =
    match Unix.accept st.listener with
    | fd, _ ->
      Unix.set_nonblock fd;
      let cid = !next_cid in
      incr next_cid;
      let cl =
        { fd; cid; pending = ""; jobs = Queue.create (); last_active = Clock.now_s ();
          alive = true }
      in
      Hashtbl.add st.clients cid cl;
      st.rotation <- st.rotation @ [ cid ];
      tick "serve.clients_accepted";
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  loop ()

(* --- dispatch ---------------------------------------------------------- *)

(* Take up to [batch] jobs, at most one per client per rotation pass, so a
   client that pipelined fifty requests cannot starve one that sent one. *)
let take_round st =
  let batch = max 1 st.settings.batch in
  let taken = ref [] in
  let ntaken = ref 0 in
  let progress = ref true in
  while !progress && !ntaken < batch && st.total_queued > 0 do
    progress := false;
    List.iter
      (fun cid ->
        if !ntaken < batch then
          match Hashtbl.find_opt st.clients cid with
          | Some cl when not (Queue.is_empty cl.jobs) ->
            let job = Queue.pop cl.jobs in
            st.total_queued <- st.total_queued - 1;
            taken := (cl, job) :: !taken;
            incr ntaken;
            progress := true
          | _ -> ())
      st.rotation;
    (* Rotate so the next pass starts with a different client at the
       front — the client cut off when a batch fills changes over time. *)
    match st.rotation with [] -> () | hd :: tl -> st.rotation <- tl @ [ hd ]
  done;
  List.rev !taken

let dispatch st =
  match take_round st with
  | [] -> ()
  | round ->
    if Telemetry.enabled () then Telemetry.gauge "serve.queue_depth" st.total_queued;
    let responses =
      Portend_util.Pool.map ~jobs:st.settings.config.Core.Config.jobs
        (fun (_, job) -> handle_job st.settings job)
        round
    in
    List.iter2 (fun (cl, _) lines -> List.iter (send cl) lines) round responses;
    (* Writes may have marked clients dead; reap them. *)
    List.iter (fun (cl, _) -> if not cl.alive then close_client st cl) round

(* --- the loop ---------------------------------------------------------- *)

let run ?(settings = default_settings) ?on_ready ~control (addr : address) =
  let listener, bound = bind_listener addr in
  Unix.set_nonblock listener;
  let prev_sigpipe =
    (* Writing to a client that vanished must be an EPIPE error, not a
       process kill.  Restored on return so in-process tests are polite. *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  let st =
    { settings;
      listener;
      control;
      clients = Hashtbl.create 16;
      rotation = [];
      total_queued = 0;
      draining = false
    }
  in
  let next_cid = ref 1 in
  let cleanup () =
    Hashtbl.iter (fun _ cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ()) st.clients;
    Hashtbl.reset st.clients;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    (match bound with
    | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ());
    match prev_sigpipe with
    | Some old -> ( try Sys.set_signal Sys.sigpipe old with Invalid_argument _ -> ())
    | None -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      (* The whole serve loop runs inside the solver-memo bracket: memos
         load once at startup and the accumulated table is snapshotted
         back at drain — the daemon's warm-start substrate. *)
      Core.Pcache.with_solver_memos settings.config (fun () ->
          (match on_ready with Some f -> f bound | None -> ());
          let running = ref true in
          while !running do
            let fds =
              st.control
              :: (if st.draining then [] else listener :: [])
              @ (if st.draining then []
                 else Hashtbl.fold (fun _ cl acc -> cl.fd :: acc) st.clients [])
            in
            let readable, _, _ =
              try Unix.select fds [] [] 0.2
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            if List.mem st.control readable then begin
              (* One byte = one drain request; drain is idempotent. *)
              (try ignore (Unix.read st.control (Bytes.create 16) 0 16) with
              | Unix.Unix_error _ -> ());
              if not st.draining then begin
                st.draining <- true;
                (* Final intake sweep: connections still in the listen
                   backlog and requests already sitting in kernel buffers
                   were submitted before the drain and must still be
                   answered (and left unread they would turn the server's
                   close into a connection reset). *)
                accept_clients st next_cid;
                let rec sweep () =
                  let fds = Hashtbl.fold (fun _ cl acc -> cl.fd :: acc) st.clients [] in
                  if fds <> [] then begin
                    let r, _, _ =
                      try Unix.select fds [] [] 0.
                      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
                    in
                    if r <> [] then begin
                      List.iter
                        (fun fd ->
                          match
                            Hashtbl.fold
                              (fun _ cl acc -> if cl.fd = fd then Some cl else acc)
                              st.clients None
                          with
                          | Some cl -> read_client st cl
                          | None -> ())
                        r;
                      sweep ()
                    end
                  end
                in
                sweep ()
              end
            end;
            if not st.draining then begin
              if List.mem listener readable then accept_clients st next_cid;
              List.iter
                (fun fd ->
                  if fd <> listener && fd <> st.control then
                    match
                      Hashtbl.fold
                        (fun _ cl acc -> if cl.fd = fd then Some cl else acc)
                        st.clients None
                    with
                    | Some cl -> read_client st cl
                    | None -> ())
                readable
            end;
            dispatch st;
            (* Idle-client sweep: no traffic, nothing queued, no partial
               line in flight — disconnect. *)
            if (not st.draining) && settings.idle_timeout_s > 0. then begin
              let now = Clock.now_s () in
              let stale =
                Hashtbl.fold
                  (fun _ cl acc ->
                    if
                      now -. cl.last_active > settings.idle_timeout_s
                      && Queue.is_empty cl.jobs && cl.pending = ""
                    then cl :: acc
                    else acc)
                  st.clients []
              in
              List.iter
                (fun cl ->
                  tick "serve.idle_closed";
                  close_client st cl)
                stale
            end;
            if st.draining && st.total_queued = 0 then running := false
          done))

(* --- in-process handle ------------------------------------------------- *)

type startup =
  | Starting
  | Ready of address
  | Failed

type t = {
  dom : unit Domain.t;
  ctl_w : Unix.file_descr;
  addr : address;
  mutable stopped : bool;
}

let start ?settings addr =
  let ctl_r, ctl_w = Unix.pipe () in
  let status = Atomic.make Starting in
  let dom =
    Domain.spawn (fun () ->
        match
          run ?settings ~on_ready:(fun bound -> Atomic.set status (Ready bound)) ~control:ctl_r
            addr
        with
        | () -> Unix.close ctl_r
        | exception e ->
          Atomic.set status Failed;
          Unix.close ctl_r;
          raise e)
  in
  let rec wait () =
    match Atomic.get status with
    | Ready bound -> bound
    | Failed ->
      (* Join re-raises whatever killed the server before it got up. *)
      (try Unix.close ctl_w with Unix.Unix_error _ -> ());
      Domain.join dom
      |> fun () -> failwith "serve: server failed to start"
    | Starting ->
      Unix.sleepf 0.002;
      wait ()
  in
  let bound = wait () in
  { dom; ctl_w; addr = bound; stopped = false }

let address t = t.addr

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (try ignore (Unix.write_substring t.ctl_w "q" 0 1) with Unix.Unix_error _ -> ());
    Domain.join t.dom;
    try Unix.close t.ctl_w with Unix.Unix_error _ -> ()
  end
