(* Blocking line-protocol client; see client.mli. *)

type t = {
  fd : Unix.file_descr;
  mutable buf : string;  (** bytes read but not yet consumed as lines *)
  mutable eof : bool;
}

let sockaddr_of = function
  | Server.Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
  | Server.Tcp (host, port) ->
    let addr =
      match host with
      | "" | "localhost" -> Unix.inet_addr_loopback
      | h -> Unix.inet_addr_of_string h
    in
    (Unix.PF_INET, Unix.ADDR_INET (addr, port))

let connect ?(retries = 0) address =
  let domain, sockaddr = sockaddr_of address in
  let rec attempt n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> { fd; buf = ""; eof = false }
    | exception Unix.Unix_error _ when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      attempt (n - 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  attempt retries

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let s = line ^ "\n" in
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write_substring t.fd s !off (len - !off) in
    if n = 0 then failwith "serve client: connection closed while writing";
    off := !off + n
  done

let rec read_line t =
  match String.index_opt t.buf '\n' with
  | Some i ->
    let line = String.sub t.buf 0 i in
    t.buf <- String.sub t.buf (i + 1) (String.length t.buf - i - 1);
    Some line
  | None ->
    if t.eof then None
    else begin
      let chunk = Bytes.create 65536 in
      (match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> t.eof <- true
      | n -> t.buf <- t.buf ^ Bytes.sub_string chunk 0 n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        (* A reset after the terminal response is a close, not an error. *)
        t.eof <- true);
      read_line t
    end

let request t (j : Json.t) : Json.t list =
  send_line t (Json.to_string j);
  let rec collect acc =
    match read_line t with
    | None -> failwith "serve client: connection closed before the terminal response line"
    | Some line -> (
      match Json.parse line with
      | Error e -> failwith ("serve client: undecodable response line: " ^ e)
      | Ok resp -> (
        match Json.member "type" resp with
        | Some (Json.String ("summary" | "error")) -> List.rev (resp :: acc)
        | _ -> collect (resp :: acc)))
  in
  collect []
