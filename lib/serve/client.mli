(** A small blocking client for the serve protocol, used by the CLI's
    one-shot mode, the benchmarks, and the tests.  One connection, one
    request in flight at a time ({!request}); pipelining callers can use
    {!send_line}/{!read_line} directly. *)

type t

(** Connect to a daemon.  [retries] ([default 0]) re-attempts with a short
    sleep, for callers that race the daemon's startup. *)
val connect : ?retries:int -> Server.address -> t

val close : t -> unit

(** Send one raw line (the ["\n"] is appended). *)
val send_line : t -> string -> unit

(** Next response line, [None] at EOF.  Blocking. *)
val read_line : t -> string option

(** [request t j] sends one request and reads until its terminal line
    (["summary"] or ["error"]), returning every line of the reply in
    order, decoded.  Raises [Failure] if the server hangs up mid-reply
    or answers something undecodable. *)
val request : t -> Json.t -> Json.t list
