(** The serve line protocol: newline-delimited JSON, one request per line,
    several response lines per request.

    {2 Requests}

    {v
    {"program": "<racelang source>", "seed": 1,
     "inputs": {"x": 3}, "config": {"mp": 5, "ma": 2}, "id": 7}
    {"workload": "sqlite", "id": "warm-1"}
    v}

    Exactly one of ["program"] (Racelang concrete syntax) or ["workload"]
    (a name from the evaluation suite registry) must be present.  ["seed"]
    and ["inputs"] default to the registry's recording for workloads and
    to seed 1 / no inputs for programs.  ["config"] may override the
    exploration dials ([mp], [ma], [max_symbolic_inputs]) and the feature
    toggles ([static_prefilter], [enable_reduction]); everything else —
    jobs, caching — is daemon policy and not per-request.  ["id"] is an
    arbitrary string or integer echoed on every response line of the
    request, so pipelining clients can match responses to requests.

    Unknown top-level or config keys are rejected: a typoed dial silently
    ignored would classify under the wrong configuration, which is worse
    than an error.  Input bindings go through the same validated parser
    as the CLI's [--input] ({!Portend_core.Inputs}), including its
    duplicate-key rule.

    {2 Responses}

    Per request, in order: one ["verdict"] line per classified race, one
    ["unclassified"] line per race whose replay diverged, then exactly one
    terminal line — ["summary"] on success or ["error"] on failure.
    Every line echoes the request's ["id"] when one was given.  Error
    codes: [bad_request], [parse_error], [compile_error],
    [unknown_workload], [busy] (queue full — resend later), [oversized],
    [internal_error]. *)

type source =
  | Program of string  (** Racelang source text *)
  | Workload of string  (** evaluation-suite registry name *)

(** Per-request overrides of the daemon's base {!Portend_core.Config.t}. *)
type overrides = {
  ov_mp : int option;
  ov_ma : int option;
  ov_sym : int option;  (** [max_symbolic_inputs] *)
  ov_prefilter : bool option;
  ov_reduction : bool option;
}

type request = {
  rq_id : Json.t option;  (** echoed verbatim on every response line *)
  rq_source : source;
  rq_seed : int option;
  rq_inputs : (string * int) list option;
  rq_overrides : overrides;
}

(** [parse_request j] validates one decoded request line.
    [Error (code, message)] names the protocol error code. *)
val parse_request : Json.t -> (request, string * string) result

(** The daemon's base config with the request's overrides applied. *)
val effective_config : base:Portend_core.Config.t -> request -> Portend_core.Config.t

(** {1 Response lines} *)

val error_line : ?id:Json.t -> code:string -> string -> Json.t

(** The ["verdict"] and ["unclassified"] lines of an analysis, in
    detection order.  Deterministic: no wall-clock fields (those live in
    the summary line), so a served analysis and a one-shot
    {!Portend_core.Pipeline.analyze} render bit-identical lines. *)
val verdict_lines : ?id:Json.t -> Portend_core.Pipeline.t -> Json.t list

(** The terminal ["summary"] line.  [time_s] is the server-side wall time
    of the job ([None] elides the field, for deterministic comparison). *)
val summary_line : ?id:Json.t -> ?time_s:float -> Portend_core.Pipeline.t -> Json.t

(** [verdict_lines] plus [summary_line] — a successful job's full reply. *)
val responses_of_analysis :
  ?id:Json.t -> ?time_s:float -> Portend_core.Pipeline.t -> Json.t list

(** Remove one top-level member (tests strip ["time_s"] before comparing
    served output against a local analysis). *)
val strip_member : string -> Json.t -> Json.t
