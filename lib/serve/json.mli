(** A minimal JSON codec for the serve line protocol.

    The repository deliberately carries no third-party JSON dependency
    (the telemetry exporter hand-writes its Chrome traces); the daemon
    needs a {e parser} too, so this module provides both directions for
    the small JSON subset the protocol uses.

    The parser is strict where the daemon's robustness depends on it:
    inputs are size-capped by the server before they reach it, nesting
    depth is bounded (a line of ten thousand ['['] characters must produce
    an error, not a stack overflow), and every failure is an [Error]
    carrying a position — the daemon turns those into structured error
    replies, never crashes.

    Object member order is preserved and duplicate keys are {e kept}, so
    callers (the protocol layer) can enforce their own duplicate-key rule
    instead of silently taking first- or last-wins. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** member order preserved, duplicates kept *)

(** Maximum nesting depth {!parse} accepts. *)
val max_depth : int

(** [parse s] parses exactly one JSON value spanning all of [s]
    (surrounding whitespace allowed; trailing garbage is an error).
    Errors are ["<message> at offset <n>"]. *)
val parse : string -> (t, string) result

(** Compact one-line rendering (no newlines — the protocol is
    newline-delimited).  Strings are escaped per RFC 8259; non-finite
    floats render as [null]. *)
val to_string : t -> string

(** {1 Accessors}

    All return [Error] with a descriptive message rather than raising. *)

val member : string -> t -> t option
(** First member with that name, [None] if absent or not an object. *)

val to_int : t -> (int, string) result
(** Accepts [Int] and integral [Float]s (JSON has one number type). *)

val to_str : t -> (string, string) result
val to_bool : t -> (bool, string) result
val type_name : t -> string
