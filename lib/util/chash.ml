(** Stable content hashing for cache keys and state fingerprints.

    [Hashtbl.hash] is unsuitable for anything persisted or compared across
    runs: it traverses only a bounded prefix of the value, its result is
    unspecified across OCaml releases, and on values containing closures it
    hashes code pointers (different per executable).  This module is the
    one hash the repo uses wherever stability matters — the multipath
    frontier fingerprint and every on-disk cache key — and it only accepts
    primitives, so a type containing a functional value simply cannot be
    fed to it by accident.

    The scheme is FNV-1a folded byte-by-byte into a 63-bit native [int]
    (we assume a 64-bit platform; the paper artifact never targeted 32-bit
    and neither do we).  Results are non-negative, deterministic across
    processes and runs, and pinned by unit tests so an accidental algorithm
    change shows up as a test failure, not as a silently cold cache. *)

type t = int

(* FNV-1a 64-bit offset basis with the top bit dropped so the seed itself
   is a valid non-negative OCaml int, and the standard 64-bit FNV prime. *)
let seed : t = 0x4bf29ce484222325
let prime = 0x100000001b3

(** Fold one byte (low 8 bits of [b]) into the hash. *)
let byte (h : t) (b : int) : t = ((h lxor (b land 0xff)) * prime) land max_int

(** Fold a full [int], least-significant byte first (all 8 bytes, so
    negative and large values disperse). *)
let int (h : t) (n : int) : t =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h ((n lsr (i * 8)) land 0xff)
  done;
  !h

let bool (h : t) (b : bool) : t = byte h (if b then 1 else 0)

(** Length-prefixed, so ["ab"^"c"] and ["a"^"bc"] differ as list elements. *)
let string (h : t) (s : string) : t =
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let option (f : t -> 'a -> t) (h : t) = function
  | None -> byte h 0
  | Some v -> f (byte h 1) v

(** Length-prefixed fold, so [[1];[2]] and [[1;2]] disperse. *)
let list (f : t -> 'a -> t) (h : t) (xs : 'a list) : t =
  List.fold_left f (int h (List.length xs)) xs

let array (f : t -> 'a -> t) (h : t) (xs : 'a array) : t =
  Array.fold_left f (int h (Array.length xs)) xs

let pair (f : t -> 'a -> t) (g : t -> 'b -> t) (h : t) ((a, b) : 'a * 'b) : t = g (f h a) b

(** Render as a fixed-width key fragment for on-disk entry names. *)
let to_hex (h : t) : string = Printf.sprintf "%016x" h
