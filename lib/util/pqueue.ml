(** A plain array-backed binary min-heap with an explicit comparison.

    Used by the multi-path explorer as its scored frontier: the element
    with the smallest key (per [cmp]) pops first.  The heap itself breaks
    no ties — callers that need a deterministic pop order (the explorer
    does: verdicts must not depend on heap internals) must make [cmp] a
    total order, e.g. by including a unique insertion sequence number in
    the key. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable arr : 'a option array;
  mutable size : int;
}

let create ?(capacity = 64) ~cmp () = { cmp; arr = Array.make (max 1 capacity) None; size = 0 }
let length q = q.size
let is_empty q = q.size = 0

let get q i =
  match q.arr.(i) with
  | Some x -> x
  | None -> invalid_arg "Pqueue: internal hole" (* unreachable for i < size *)

let swap q i j =
  let t = q.arr.(i) in
  q.arr.(i) <- q.arr.(j);
  q.arr.(j) <- t

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.cmp (get q i) (get q parent) < 0 then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < q.size && q.cmp (get q l) (get q i) < 0 then l else i in
  let smallest = if r < q.size && q.cmp (get q r) (get q smallest) < 0 then r else smallest in
  if smallest <> i then begin
    swap q i smallest;
    sift_down q smallest
  end

let push q x =
  if q.size = Array.length q.arr then begin
    let bigger = Array.make (2 * q.size) None in
    Array.blit q.arr 0 bigger 0 q.size;
    q.arr <- bigger
  end;
  q.arr.(q.size) <- Some x;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

(** Remove and return the minimum element, or [None] when empty. *)
let pop q =
  if q.size = 0 then None
  else begin
    let top = get q 0 in
    q.size <- q.size - 1;
    q.arr.(0) <- q.arr.(q.size);
    q.arr.(q.size) <- None;
    if q.size > 0 then sift_down q 0;
    Some top
  end

(** The minimum element without removing it. *)
let peek q = if q.size = 0 then None else Some (get q 0)
