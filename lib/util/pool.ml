(** A small bounded work pool over OCaml 5 [Domain]s.

    [map ~jobs f items] applies [f] to every item, fanning the work out to at
    most [jobs - 1] helper domains (the calling domain always participates)
    and returning the results in input order.  [jobs <= 1] degrades to a
    plain [List.map], so the sequential path stays exercised and allocation-
    free.

    Pools may nest (the pipeline parallelizes across races while the bench
    harness parallelizes across workloads): a global account of live helper
    domains caps the total at [Domain.recommended_domain_count ()], so inner
    pools degrade toward sequential execution instead of oversubscribing the
    machine.

    Exceptions raised by [f] are caught in the worker, the first one (in
    item order) is re-raised on the caller after all domains are joined, and
    the remaining items are abandoned as soon as the failure is observed. *)

module Telemetry = Portend_telemetry

(** Upper bound on useful parallelism for this process. *)
let recommended_jobs () = Domain.recommended_domain_count ()

(* Helper domains currently alive across every pool in the process. *)
let live_helpers = Atomic.make 0

(* Reserve up to [want] helper slots; returns how many were granted.  A
   plain read-then-add race can transiently overshoot by a domain or two,
   which only costs a little scheduling pressure, never correctness. *)
let reserve want =
  let cap = recommended_jobs () - 1 in
  let granted = max 0 (min want (cap - Atomic.get live_helpers)) in
  if granted > 0 then ignore (Atomic.fetch_and_add live_helpers granted);
  granted

let release n = if n > 0 then ignore (Atomic.fetch_and_add live_helpers (-n))

let sequential_map ?on_item f items =
  match on_item with
  | None -> List.map f items
  | Some hook ->
    List.mapi
      (fun i x ->
        let t0 = Clock.now_s () in
        let y = f x in
        hook i (Clock.now_s () -. t0);
        y)
      items

(** [map ?on_item ~jobs f items] — parallel, order-preserving map.

    [on_item i dt] is invoked after item [i] completes, with its wall time in
    seconds; when [jobs > 1] the hook runs on whichever domain processed the
    item, so it must be domain-safe (writing slot [i] of a preallocated
    array is fine). *)
let map ?on_item ~jobs f items =
  if Telemetry.enabled () then begin
    Telemetry.incr "pool.maps";
    Telemetry.incr ~by:(List.length items) "pool.items"
  end;
  if jobs <= 1 then sequential_map ?on_item f items
  else begin
    let arr = Array.of_list items in
    let n = Array.length arr in
    if n <= 1 then sequential_map ?on_item f items
    else begin
      let results = Array.make n None in
      let error = Atomic.make None in
      let next = Atomic.make 0 in
      let work_one i =
        (* Depth of the not-yet-claimed tail when this item was claimed:
           the pool's instantaneous queue depth. *)
        Telemetry.gauge "pool.queue_depth" (max 0 (n - i - 1));
        let t0 = Clock.now_s () in
        match f arr.(i) with
        | y ->
          results.(i) <- Some y;
          (match on_item with Some hook -> hook i (Clock.now_s () -. t0) | None -> ())
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          (* Keep the first failure in item order so re-raising is
             deterministic even when several items fail concurrently. *)
          let rec record () =
            match Atomic.get error with
            | Some (j, _, _) when j < i -> ()
            | cur ->
              if not (Atomic.compare_and_set error cur (Some (i, e, bt))) then record ()
          in
          record ()
      in
      let rec worker () =
        if Atomic.get error = None then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            work_one i;
            worker ()
          end
        end
      in
      let helpers = reserve (min (jobs - 1) (n - 1)) in
      if helpers > 0 then Telemetry.incr ~by:helpers "pool.helpers_spawned";
      let domains = List.init helpers (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      release helpers;
      match Atomic.get error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
        Array.to_list results
        |> List.map (function
             | Some y -> y
             | None -> invalid_arg "Pool.map: missing result (worker aborted)")
    end
  end
