(** Alternate-ordering enforcement (Algorithm 1, lines 5–15).

    From the pre-race checkpoint we preempt the thread that performed the
    first racing access ([ti]) and drive the other racing thread ([tj])
    toward its access.  Success yields the {e alternate} execution, which is
    then run to completion under a continuation scheduler.  The three failure
    modes map to the paper's cases: [tj] can only make progress if [ti] runs
    (ad-hoc ordering), everyone blocks (deadlock), or the run spins past its
    budget (ad-hoc synchronization vs. genuine infinite loop, discriminated
    by {!Loopcheck}). *)

module V = Portend_vm
module R = Portend_detect.Report
module Telemetry = Portend_telemetry

type failure =
  | Blocked_by_peer  (** [tj] cannot reach its access unless [ti] runs *)
  | Target_finished  (** [tj] finished without performing the access *)
  | Spin_adhoc of int  (** timed out spinning on a flag another thread writes *)
  | Spin_infinite of int  (** timed out in a loop nobody can exit *)

type outcome = {
  enforced : bool;  (** was the access order actually reversed? *)
  failure : failure option;
  stop : V.Run.stop;  (** how the alternate execution ended *)
  final : V.State.t;
  events : V.Events.t list;  (** chronological, from the pre-race point *)
  post_access_state : V.State.t option;
      (** the state immediately after both reversed accesses — what
          Record/Replay-Analyzer compares against the primary's post-race
          state *)
}

let base = R.base_loc

let slice_accesses_loc ~tid ?site ~loc_base events =
  List.exists
    (function
      | V.Events.Access { tid = t; site = s; loc; _ } ->
        t = tid && base loc = loc_base
        && (match site with None -> true | Some site -> s = site)
      | _ -> false)
    events

(* Drive [target] toward its [occurrence]-th access on [loc_base], keeping
   [suspended] parked.  Occurrence-based targeting is how the paper replays
   precisely when an instruction executes many times (loops) before racing
   (§3.1: the schedule trace carries absolute instruction counts).  Returns
   (state, rev_events, verdict). *)
type drive_end =
  | Reached
  | Drive_blocked
  | Drive_finished
  | Drive_crashed of V.Crash.t
  | Drive_deadlock of int list
  | Drive_timeout

let drive ~budget ~suspended ~target ?site ~loc_base ~occurrence st rev_events =
  let rec go st rev_events seen turn =
    if st.V.State.steps >= budget then (st, rev_events, Drive_timeout)
    else if V.State.thread_finished st target then (st, rev_events, Drive_finished)
    else
      let runnable = V.State.runnable st in
      match runnable with
      | [] ->
        if V.State.all_finished st then (st, rev_events, Drive_finished)
        else (st, rev_events, Drive_deadlock (V.State.live_tids st))
      | _ -> (
        (* Prefer the target, but interleave the other (non-suspended)
           threads: only Ti is held back (§3.2), and a third thread may have
           to make progress before Tj can reach its access at all. *)
        let others = List.filter (fun t -> t <> suspended && t <> target) runnable in
        let nth_other k = List.nth others (k mod List.length others) in
        let pick =
          if List.mem target runnable then
            (* mostly the target; a sparse rotation of the others so that a
               third thread can unblock it (e.g. publish a flag) without
               perturbing quick enforcements *)
            if others = [] || turn mod 4 <> 3 then Some target
            else Some (nth_other (turn / 4))
          else if others = [] then None
          else Some (nth_other turn)
        in
        match pick with
        | None -> (st, rev_events, Drive_blocked)
        | Some tid -> (
          match V.Run.slice st tid with
          | [ sl ] -> (
            let rev_events = List.rev_append sl.V.Run.s_events rev_events in
            let seen =
              if tid = target && slice_accesses_loc ~tid:target ?site ~loc_base sl.V.Run.s_events
              then seen + 1
              else seen
            in
            match sl.V.Run.s_end with
            | V.Run.End_crashed c -> (sl.V.Run.s_state, rev_events, Drive_crashed c)
            | V.Run.End_decision | V.Run.End_paused ->
              if seen >= occurrence then (sl.V.Run.s_state, rev_events, Reached)
              else go sl.V.Run.s_state rev_events seen (turn + 1))
          | _ ->
            (* Alternate executions are fully concrete; a fork here would be
               an internal inconsistency.  Fail soft. *)
            (st, rev_events, Drive_blocked)))
  in
  go st rev_events 0 0

type pending = {
  p_state : V.State.t;  (** the post-access state, phase C's start *)
  p_rev_events : V.Events.t list;  (** reverse-chronological enforcement events *)
  p_abs_budget : int;
}
(** An enforcement whose outcome still depends on the continuation
    scheduler.  Phases A and B (drive [tj] to its access, then [ti]) are
    scheduler-independent — the continuation is only consulted from the
    post-access state on — so a staged enforcement can be resumed under
    several continuation schedulers without re-driving the accesses. *)

type staged =
  | Early of outcome
      (** enforcement failed, crashed or deadlocked before the
          continuation scheduler was ever consulted; the outcome is final *)
  | Pending of pending

let stage_impl ~(static : Portend_lang.Static.t) ~budget ?(occurrence = 1)
    ?site2 ~(race : R.race) ~(pre_race : V.State.t) () : staged =
  let ti = race.R.first.R.a_tid and tj = race.R.second.R.a_tid in
  let loc_base = base race.R.r_loc in
  (* The second access is identified precisely: same thread, same program
     counter (unless a divergent-path site override is given), counted to the
     right dynamic occurrence.  A thread that can only reach *other* accesses
     to the location (e.g. spin-loop reads) does not satisfy enforcement. *)
  let site2 = match site2 with Some s -> s | None -> race.R.second.R.a_site in
  let abs_budget = pre_race.V.State.steps + budget in
  let fail ?spin st rev_events stop =
    let events = List.rev rev_events in
    let failure =
      match spin with
      | Some tid ->
        if Loopcheck.is_infinite_loop ~static ~state:st ~events ~spinning:tid then
          Some (Spin_infinite tid)
        else Some (Spin_adhoc tid)
      | None -> None
    in
    { enforced = false; failure; stop; final = st; events; post_access_state = None }
  in
  (* Phase A: tj first, through to the racy access's dynamic occurrence. *)
  match drive ~budget:abs_budget ~suspended:ti ~target:tj ~site:site2 ~loc_base ~occurrence pre_race [] with
  | st, rev_events, Drive_blocked ->
    Early
      { (fail st rev_events (V.Run.Diverged "alternate ordering cannot be enforced")) with
        failure = Some Blocked_by_peer
      }
  | st, rev_events, Drive_finished ->
    Early
      { (fail st rev_events (V.Run.Diverged "racing thread finished without access")) with
        failure = Some Target_finished
      }
  | st, rev_events, Drive_crashed c ->
    Early
      { enforced = true;
        failure = None;
        stop = V.Run.Crashed c;
        final = st;
        events = List.rev rev_events;
        post_access_state = None
      }
  | st, rev_events, Drive_deadlock tids ->
    Early
      { enforced = false;
        failure = None;
        stop = V.Run.Deadlocked tids;
        final = st;
        events = List.rev rev_events;
        post_access_state = None
      }
  | st, rev_events, Drive_timeout ->
    let spinning = Loopcheck.spinning_thread ~state:st ~events:(List.rev rev_events) ~default:tj () in
    Early (fail ~spin:spinning st rev_events V.Run.Out_of_budget)
  | st, rev_events, Reached -> (
    (* Phase B: now let ti perform its (delayed) access. *)
    match drive ~budget:abs_budget ~suspended:(-1) ~target:ti ~loc_base ~occurrence:1 st rev_events with
    | st, rev_events, Drive_crashed c ->
      Early
        { enforced = true;
          failure = None;
          stop = V.Run.Crashed c;
          final = st;
          events = List.rev rev_events;
          post_access_state = None
        }
    | st, rev_events, Drive_deadlock tids ->
      Early
        { enforced = true;
          failure = None;
          stop = V.Run.Deadlocked tids;
          final = st;
          events = List.rev rev_events;
          post_access_state = None
        }
    | st, rev_events, Drive_timeout ->
      let spinning = Loopcheck.spinning_thread ~state:st ~events:(List.rev rev_events) ~default:ti () in
      Early { (fail ~spin:spinning st rev_events V.Run.Out_of_budget) with enforced = true }
    | st, rev_events, (Reached | Drive_blocked | Drive_finished) ->
      (* Phase C waits on the continuation scheduler: both accesses are done
         (or ti diverged — tolerated). *)
      Pending { p_state = st; p_rev_events = rev_events; p_abs_budget = abs_budget })

let resume_impl (staged : staged) ~(cont : V.Sched.t) : outcome =
  match staged with
  | Early o -> o
  | Pending { p_state = st; p_rev_events = rev_events; p_abs_budget = abs_budget } ->
    (* Phase C: finish the execution under the continuation scheduler. *)
    let post_access_state = Some st in
    let r = V.Run.run ~sched:cont ~budget:abs_budget st in
    { enforced = true;
      failure = None;
      stop = r.V.Run.stop;
      final = r.V.Run.final;
      events = List.rev_append rev_events r.V.Run.events;
      post_access_state
    }

let count_outcome (r : outcome) =
  if Telemetry.enabled () then begin
    Telemetry.incr "enforce.alternates";
    if r.enforced then Telemetry.incr "enforce.enforced";
    match r.failure with
    | Some Blocked_by_peer -> Telemetry.incr "enforce.failure.blocked_by_peer"
    | Some Target_finished -> Telemetry.incr "enforce.failure.target_finished"
    | Some (Spin_adhoc _) -> Telemetry.incr "enforce.failure.spin_adhoc"
    | Some (Spin_infinite _) -> Telemetry.incr "enforce.failure.spin_infinite"
    | None -> ()
  end

(** Run phases A and B only.  The result either already decides the
    alternate ([Early]) or can be {!resume}d — possibly several times —
    under different continuation schedulers. *)
let stage ~static ~budget ?occurrence ?site2 ~race ~pre_race () : staged =
  Telemetry.with_span "enforce.stage" (fun () ->
      stage_impl ~static ~budget ?occurrence ?site2 ~race ~pre_race ())

(** Complete a staged enforcement under [cont].  Counts the alternate in
    telemetry, so every resumed schedule shows up in
    [enforce.alternates] exactly like an un-staged {!alternate} call. *)
let resume (staged : staged) ~cont : outcome =
  Telemetry.with_span "enforce" (fun () ->
      let r = resume_impl staged ~cont in
      count_outcome r;
      r)

let alternate ~static ~budget ~cont ?occurrence ?site2 ~race ~pre_race () : outcome =
  Telemetry.with_span "enforce" (fun () ->
      let staged = stage_impl ~static ~budget ?occurrence ?site2 ~race ~pre_race () in
      let r = resume_impl staged ~cont in
      count_outcome r;
      r)
