(** Validated program-input bindings, shared by every front end.

    Both the CLI ([--input NAME=VALUE]) and the serve protocol
    ([{"inputs": {...}}]) supply concrete values for a program's [input]
    statements.  This module is the one place the syntax and the
    duplicate-key rule live, so the two front ends cannot drift apart
    (the CLI used to crash with an uncaught [Failure] on [x=abc] and
    silently kept the last binding on duplicates).

    The duplicate-key rule: binding the same input name twice is an
    {e error}, not last-wins — a test invocation that says
    [--input x=1 --input x=2] is almost certainly a typo for two
    different inputs, and silently dropping one of the values changes
    which execution gets recorded. *)

val parse_pair : string -> (string * int, string) result
(** [parse_pair "x=3"] is [Ok ("x", 3)].  Errors (non-integer value, no
    or too many [=], empty name) carry a human-readable message that
    quotes the offending argument. *)

val check_duplicates : (string * int) list -> ((string * int) list, string) result
(** Identity on lists with distinct keys; otherwise an error naming the
    first duplicated key. *)

val parse_pairs : string list -> ((string * int) list, string) result
(** [parse_pair] over each element, then {!check_duplicates}. *)
