(** Portend's four-category data race taxonomy (§2.3, Fig 1). *)

type category =
  | Spec_violated
      (** at least one ordering violates the program's specification — a
          basic violation (crash, deadlock, memory error, infinite loop) or
          a developer-provided predicate; definitely harmful *)
  | Output_differs
      (** the orderings can produce different program output; possibly
          harmful, the developer decides with the evidence provided *)
  | K_witness_harmless
      (** k explored path × schedule combinations behaved equivalently
          (symbolically compared); harmless with confidence rising in k *)
  | Single_ordering
      (** only one ordering of the accesses is possible — ad-hoc
          synchronization; harmless *)

val category_to_string : category -> string
val pp_category : Format.formatter -> category -> unit
val all_categories : category list

(** Position of a category in {!all_categories} (a fixed array index). *)
val category_index : category -> int

(** Does the category demand a fix? *)
val is_harmful : category -> bool

type verdict = {
  category : category;
  k : int;  (** witnesses observed; meaningful for [K_witness_harmless] *)
  consequence : Portend_vm.Crash.consequence option;  (** for [Spec_violated] *)
  states_differ : bool;
      (** did the primary and alternate post-race states differ?  (Table 3's
          “states same/differ” columns, computed with the Record/Replay-
          Analyzer comparator) *)
  detail : string;  (** human-readable rationale *)
}

val verdict :
  ?k:int ->
  ?consequence:Portend_vm.Crash.consequence ->
  ?states_differ:bool ->
  ?detail:string ->
  category ->
  verdict

val pp_verdict : Format.formatter -> verdict -> unit
