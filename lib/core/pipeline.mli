(** The end-to-end Portend pipeline (Fig 2): execute the program under the
    record/replay engine, detect races with the dynamic happens-before
    detector, cluster the reports, and classify one representative per
    cluster. *)

type race_analysis = {
  race : Portend_detect.Report.race;
  instances : int;  (** dynamic occurrences during detection *)
  verdict : Taxonomy.verdict;
  evidence : Evidence.t option;
  stats : Classify.stats;  (** exploration work done for this race *)
  time_s : float;  (** classification wall time for this race *)
}

type t = {
  program : Portend_lang.Bytecode.t;
  record : Portend_vm.Run.result;
  record_time_s : float;  (** plain interpretation time (Table 4 baseline) *)
  races : race_analysis list;
  errors : (Portend_detect.Report.race * string) list;
      (** races whose replay diverged (reported, not silently dropped) *)
}

(** Record an execution and return it with its interpretation time.
    [inputs] supplies concrete values for the program's [input] statements;
    [seed] drives the recording scheduler. *)
val record :
  ?seed:int ->
  ?inputs:(string * int) list ->
  Portend_lang.Bytecode.t ->
  Portend_vm.Run.result * float

(** Detect and classify every distinct race of the program. *)
val analyze :
  ?config:Config.t ->
  ?seed:int ->
  ?inputs:(string * int) list ->
  Portend_lang.Bytecode.t ->
  t

(** Detect and classify across several recordings (scheduler seeds), the way
    a test suite exercises a program repeatedly; races are deduplicated by
    cluster key across recordings.  Returns the per-seed analyses and the
    merged distinct-race list. *)
val analyze_many :
  ?config:Config.t ->
  ?seeds:int list ->
  ?inputs:(string * int) list ->
  Portend_lang.Bytecode.t ->
  t list * race_analysis list

(** Count of distinct races per category. *)
val tally : t -> (Taxonomy.category * int) list

val pp_summary : Format.formatter -> t -> unit
