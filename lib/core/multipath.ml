(** Multi-path primary exploration — the exploration half of Algorithm 2.

    The program runs on symbolic inputs (up to the configured number), and a
    depth-first exploration follows the recorded schedule trace, pruning any
    state that cannot obey the schedule before the second racing access:
    each state must keep the recorded thread runnable at every decision up to
    d2, must perform the first racing access at decision d1 (same site), and
    must perform {e some} access to the racy location at decision d2 —
    tolerating a different program counter, which is what lets Portend catch
    Fig 4-style races whose second access moves across paths.  After d2 the
    execution may diverge freely (§3.3).

    Each completed path is a {e primary}: its symbolic outputs, path
    condition and a solved input model are returned for the alternate-
    construction and comparison stage.

    With [Config.enable_reduction] (the default) three reductions apply,
    all verdict-preserving:

    - {b scored frontier}: the work list is a priority queue ordered by
      (distance to d2, depth, recency) instead of a bare stack, so a
      truncated exploration spends [Config.max_explored_states] on the
      states closest to completing a primary.  Under this exploration's
      push discipline the queue order provably coincides with the DFS
      order (see the comment at [frontier]), which is how verdict identity
      with the unreduced explorer is guaranteed;
    - {b state dedup}: a frontier state whose (fingerprint, decision
      index, alignment metadata) was already expanded is dropped — its
      subtree would replay the earlier expansion bit for bit;
    - {b incremental path solving}: a narrowed interval environment is
      threaded along each path ({!Portend_solver.Solver.inc_assume}), so
      completion discharges constraint-free paths as [Sat] and
      empty-box paths as infeasible without a solver query; only paths
      the env cannot decide pay for a full solve. *)

module V = Portend_vm
module R = Portend_detect.Report
module E = Portend_solver.Expr
module Solver = Portend_solver.Solver
module Smap = Portend_util.Maps.Smap
module Telemetry = Portend_telemetry

type primary = {
  p_final : V.State.t;
  p_stop : V.Run.stop;
  p_outputs : V.State.output list;  (** with symbolic formulae where input-dependent *)
  p_path : E.t list;  (** full path condition *)
  p_ranges : (string * int * int) list;
  p_model : int Smap.t;  (** solved inputs that drive the program down this path *)
  p_site2 : V.Events.site option;  (** where the second access landed on this
                                       path (may differ from the recorded
                                       site, Fig 4) *)
  p_occ2 : int;  (** its dynamic occurrence among same-site accesses since d1 *)
}

type exploration = {
  primaries : primary list;
  truncated : bool;
      (** exploration stopped at [Config.max_explored_states] with work left *)
  states_seen : int;
  paths_pruned : int;
      (** states dropped because they could not obey the recorded schedule
          or missed a racing access at d1/d2 *)
  paths_infeasible : int;
      (** completed paths whose path condition the solver rejected *)
  states_deduped : int;
      (** frontier states dropped as bit-identical to one already expanded
          (0 with reduction disabled) *)
  suffix_solves : int;
      (** path completions discharged from the threaded interval env with
          no solver query (0 with reduction disabled) *)
  full_solves : int;
      (** path completions that issued a full solver query (0 with
          reduction disabled; the unreduced explorer does not split its
          query count) *)
}

let slice_has_access ~tid ?site ~loc_base events =
  List.exists
    (function
      | V.Events.Access { tid = t; site = s; loc; _ } ->
        t = tid && R.base_loc loc = loc_base
        && (match site with None -> true | Some site -> s = site)
      | _ -> false)
    events

(* A work item: a state plus the index of the next scheduling decision.
   [tj_sites] accumulates the sites of tj's accesses to the racy location
   between d1 and d2 (newest first), so the second access can be targeted
   precisely on this path even when its program counter moved.  [inc] is
   the incrementally narrowed interval environment of the path condition so
   far (threaded only when reduction is enabled). *)
type item = {
  st : V.State.t;
  idx : int;
  past_race : bool;
  tj_sites : V.Events.site list;
  site2 : V.Events.site option;
  occ2 : int;
  inc : Solver.incremental;
}

(* Advance [inc] across one transition: declare any inputs drawn in the
   child and narrow by any branch constraints it added.  Both lists grow by
   consing, so the parent's list is a structurally shared tail of the
   child's; the walk collects exactly the new suffix (oldest first).  If a
   transition ever rebuilt a list without sharing, the walk degrades to
   replaying everything — re-declaring and re-narrowing are idempotent, so
   that is only a slowdown, never an unsoundness. *)
let advance_inc inc (parent : V.State.t) (child : V.State.t) =
  let rec fresh acc l ~tail =
    if l == tail then acc
    else match l with [] -> acc | x :: rest -> fresh (x :: acc) rest ~tail
  in
  let inc =
    List.fold_left Solver.inc_declare inc
      (fresh [] child.V.State.input_ranges ~tail:parent.V.State.input_ranges)
  in
  List.fold_left Solver.inc_assume inc
    (fresh [] child.V.State.path_cond ~tail:parent.V.State.path_cond)

let explore_impl (cfg : Config.t) (prog : Portend_lang.Bytecode.t) (trace : V.Trace.t)
    (ckpts : Locate.t) (race : R.race) : exploration =
  let decisions = Array.of_list ckpts.Locate.decisions in
  let n_decisions = Array.length decisions in
  let d1 = ckpts.Locate.d1 and d2 = ckpts.Locate.d2 in
  let ti = race.R.first.R.a_tid and tj = race.R.second.R.a_tid in
  let loc_base = R.base_loc race.R.r_loc in
  let use_red = cfg.Config.enable_reduction in
  let input_mode =
    V.State.Mixed { model = V.Trace.input_model trace; limit = cfg.Config.max_symbolic_inputs }
  in
  let init =
    { st = V.State.init ~input_mode prog;
      idx = 0;
      past_race = false;
      tj_sites = [];
      site2 = None;
      occ2 = 1;
      inc = Solver.inc_start
    }
  in
  let completed = ref [] in
  (* Counted separately: [List.length !completed] on every worklist
     iteration would make the loop guard quadratic. *)
  let n_completed = ref 0 in
  let states_seen = ref 0 in
  let pruned = ref 0 in
  let deduped = ref 0 in
  let suffix_solves = ref 0 in
  let full_solves = ref 0 in
  let finish_path item st stop =
    completed := (st, stop, item.site2, item.occ2, item.inc) :: !completed;
    incr n_completed
  in
  (* The frontier.  Reduction off: a depth-first stack (explicit, to keep
     memory bounded).  Reduction on: a priority queue keyed by
     (distance-to-d2, then depth, then recency), so truncation keeps the
     states most likely to complete primaries.

     The two orders coincide, which is what makes the scored frontier
     verdict-identical: (a) pushed children carry idx one past their
     parent, so the stack from top to bottom is always sorted by idx
     descending, and equal-idx frontier entries are always siblings of one
     expansion, newest pushed first; (b) distance-to-d2 is strictly
     decreasing in idx for pre-race states, and every past-race state
     (distance 0) out-indexes every pre-race state (its idx exceeds d2);
     so ordering by (distance asc, idx desc, recency desc) picks exactly
     the stack's top.  The queue therefore earns its keep as the explicit
     statement of the completion-greedy order — and keeps that order if a
     future exploration ever pushes work that breaks the stack
     invariant. *)
  let stack = ref [] in
  let seq = ref 0 in
  let pq =
    Portend_util.Pqueue.create ~cmp:(fun ((ka : int * int * int), _) (kb, _) -> compare ka kb) ()
  in
  let score it = if it.past_race then 0 else max 0 (d2 + 1 - it.idx) in
  let frontier_push it =
    if use_red then begin
      incr seq;
      Portend_util.Pqueue.push pq ((score it, -it.idx, - !seq), it)
    end
    else stack := it :: !stack
  in
  let frontier_pop () =
    if use_red then Option.map snd (Portend_util.Pqueue.pop pq)
    else
      match !stack with
      | [] -> None
      | it :: rest ->
        stack := rest;
        Some it
  in
  let frontier_nonempty () =
    if use_red then not (Portend_util.Pqueue.is_empty pq) else !stack <> []
  in
  (* Dedup of already-expanded frontier states.  The key pairs the state
     fingerprint with every per-item field that steers the rest of the
     exploration, so two equal keys expand into bit-identical subtrees and
     dropping the later one cannot change the primary set.  Under the
     current exploration the counter stays 0 — [State.fingerprint] covers
     [steps], which grows strictly along every path, and sibling fork
     branches differ in their path conditions — so this is a tripwire for
     future explorations (e.g. adversarial-memory forks can duplicate
     states when the value history repeats). *)
  let seen = Hashtbl.create 64 in
  let duplicate it =
    use_red
    &&
    let key = (V.State.fingerprint it.st, it.idx, it.past_race, it.site2, it.occ2, it.tj_sites) in
    if Hashtbl.mem seen key then true
    else begin
      Hashtbl.add seen key ();
      false
    end
  in
  frontier_push init;
  while
    frontier_nonempty ()
    && !n_completed < cfg.Config.mp
    && !states_seen < cfg.Config.max_explored_states
  do
    match frontier_pop () with
    | None -> ()
    | Some item when duplicate item -> incr deduped
    | Some item -> (
      incr states_seen;
      let { st; idx; past_race; _ } = item in
      if st.V.State.steps >= cfg.Config.run_budget then () (* drop exhausted path *)
      else
        match V.State.runnable st with
        | [] ->
          if past_race then
            finish_path item st
              (if V.State.all_finished st then V.Run.Halted
               else V.Run.Deadlocked (V.State.live_tids st))
        | runnable -> (
          let tid =
            if idx < n_decisions then
              let dec = decisions.(idx) in
              if List.mem dec runnable then Some dec
              else if past_race then Some (List.hd runnable)
              else begin
                (* cannot obey the schedule before the race: prune *)
                incr pruned;
                None
              end
            else Some (List.hd runnable)
          in
          match tid with
          | None -> ()
          | Some tid ->
            let slices = V.Run.slice st tid in
            (* Push in reverse so the first fork branch is explored first. *)
            List.rev slices
            |> List.iter (fun sl ->
                   let evs = sl.V.Run.s_events in
                   let st' = sl.V.Run.s_state in
                   let tj_access_site =
                     List.find_map
                       (function
                         | V.Events.Access { tid = t; site; loc; _ }
                           when t = tj && R.base_loc loc = loc_base ->
                           Some site
                         | _ -> None)
                       evs
                   in
                   let aligned, now_past =
                     if past_race then (true, true)
                     else if idx = d1 then
                       (* Tolerate a moved program counter for the first
                          access as well as the second: a pre-race input
                          fork can shift the access site (Fig 4). *)
                       (slice_has_access ~tid:ti ~loc_base evs, false)
                     else if idx = d2 then (tj_access_site <> None, tj_access_site <> None)
                     else (true, false)
                   in
                   if not aligned then incr pruned
                   else begin
                     let item' =
                       if past_race then item
                       else if idx = d2 then
                         match tj_access_site with
                         | Some site ->
                           let occ =
                             1
                             + List.length (List.filter (fun s -> s = site) item.tj_sites)
                           in
                           { item with site2 = Some site; occ2 = occ }
                         | None -> item
                       else
                         match tj_access_site with
                         | Some site when idx >= d1 ->
                           { item with tj_sites = site :: item.tj_sites }
                         | _ -> item
                     in
                     let item' =
                       if use_red then { item' with inc = advance_inc item'.inc st st' }
                       else item'
                     in
                     match sl.V.Run.s_end with
                     | V.Run.End_crashed c ->
                       if now_past then finish_path item' st' (V.Run.Crashed c)
                     | V.Run.End_decision | V.Run.End_paused ->
                       if V.State.runnable st' = [] && V.State.all_finished st' then begin
                         if now_past then finish_path item' st' V.Run.Halted
                       end
                       else
                         frontier_push
                           { item' with st = st'; idx = idx + 1; past_race = now_past }
                   end)))
  done;
  let truncated =
    frontier_nonempty ()
    && !n_completed < cfg.Config.mp
    && !states_seen >= cfg.Config.max_explored_states
  in
  (* Solve each completed path for a concrete input model.  With reduction
     on, the threaded env discharges the two common cases without touching
     the solver: a constraint-free path is [Sat] with the empty model —
     exactly what [Solver.solve] returns for an empty conjunction — and an
     emptied box proves the conjunction unsatisfiable (narrowing is sound),
     matching the unreduced run's [Unsat]/[Unknown] filtering. *)
  let solve_completion inc ~ranges path =
    if not use_red then Solver.solve ~ranges path
    else if path = [] then begin
      incr suffix_solves;
      Solver.Sat Smap.empty
    end
    else if not (Solver.inc_feasible inc) then begin
      incr suffix_solves;
      Solver.Unsat
    end
    else begin
      incr full_solves;
      Solver.solve ~ranges path
    end
  in
  let primaries =
    List.rev !completed
    |> List.filter_map (fun ((st : V.State.t), stop, site2, occ2, inc) ->
         let ranges = st.V.State.input_ranges in
         let path = st.V.State.path_cond in
         match solve_completion inc ~ranges path with
         | Solver.Sat model ->
           let trace_model = V.Trace.input_model trace in
           let merged = Smap.union (fun _ solved _ -> Some solved) model trace_model in
           Some
             { p_final = st;
               p_stop = stop;
               p_outputs = V.State.outputs st;
               p_path = path;
               p_ranges = ranges;
               p_model = merged;
               p_site2 = site2;
               p_occ2 = occ2
             }
         | Solver.Unsat | Solver.Unknown -> None)
  in
  let paths_completed = List.length primaries in
  let paths_infeasible = !n_completed - paths_completed in
  if Telemetry.enabled () then begin
    (* These counters are kept exactly equal to the structured numbers the
       classifier surfaces per race ({!Classify.stats}); the QCheck
       telemetry property asserts the equality. *)
    Telemetry.incr ~by:!states_seen "explore.states";
    Telemetry.incr ~by:paths_completed "explore.paths_completed";
    Telemetry.incr ~by:!pruned "explore.paths_pruned";
    Telemetry.incr ~by:paths_infeasible "explore.paths_infeasible";
    Telemetry.incr ~by:!deduped "explore.states_deduped";
    Telemetry.incr ~by:!suffix_solves "explore.suffix_solves";
    Telemetry.incr ~by:!full_solves "explore.full_solves";
    if truncated then Telemetry.incr "explore.truncated"
  end;
  { primaries;
    truncated;
    states_seen = !states_seen;
    paths_pruned = !pruned;
    paths_infeasible;
    states_deduped = !deduped;
    suffix_solves = !suffix_solves;
    full_solves = !full_solves
  }

let explore (cfg : Config.t) (prog : Portend_lang.Bytecode.t) (trace : V.Trace.t)
    (ckpts : Locate.t) (race : R.race) : exploration =
  Telemetry.with_span "explore" (fun () -> explore_impl cfg prog trace ckpts race)
