(** Multi-path primary exploration — the exploration half of Algorithm 2.

    Starting from the recorded trace's schedule, a depth-first exploration
    follows the decisions up to the second racing access, pruning states
    that cannot obey the schedule or miss a racing access at d1/d2, and
    lets execution diverge freely afterwards (§3.3).  Each completed path
    becomes a {e primary} for the alternate-schedule comparison stage.

    With [Config.enable_reduction] the explorer additionally runs a scored
    frontier (truncation keeps states closest to d2), drops frontier states
    bit-identical to already-expanded ones, and discharges path completions
    from an incrementally narrowed interval environment where the solver
    would be redundant.  All three are verdict-preserving; the module
    implementation documents the argument for each. *)

module V = Portend_vm
module E = Portend_solver.Expr
module Solver = Portend_solver.Solver
module Smap = Portend_util.Maps.Smap

type primary = {
  p_final : V.State.t;
  p_stop : V.Run.stop;
  p_outputs : V.State.output list;
      (** with symbolic formulae where input-dependent *)
  p_path : E.t list;  (** full path condition *)
  p_ranges : (string * int * int) list;
  p_model : int Smap.t;
      (** solved inputs that drive the program down this path *)
  p_site2 : V.Events.site option;
      (** where the second access landed on this path (may differ from the
          recorded site, Fig 4) *)
  p_occ2 : int;
      (** its dynamic occurrence among same-site accesses since d1 *)
}

type exploration = {
  primaries : primary list;
  truncated : bool;
      (** exploration stopped at [Config.max_explored_states] with work
          left *)
  states_seen : int;
  paths_pruned : int;
      (** states dropped because they could not obey the recorded schedule
          or missed a racing access at d1/d2 *)
  paths_infeasible : int;
      (** completed paths whose path condition the solver rejected *)
  states_deduped : int;
      (** frontier states dropped as bit-identical to one already expanded
          (0 with reduction disabled) *)
  suffix_solves : int;
      (** path completions discharged from the threaded interval env with
          no solver query (0 with reduction disabled) *)
  full_solves : int;
      (** path completions that issued a full solver query (0 with
          reduction disabled; the unreduced explorer does not split its
          query count) *)
}

val explore :
  Config.t ->
  Portend_lang.Bytecode.t ->
  V.Trace.t ->
  Locate.t ->
  Portend_detect.Report.race ->
  exploration
