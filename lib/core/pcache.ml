(** Pipeline-side glue for the persistent store ({!Portend_cache.Store}):
    store handles per {!Config.t}, verdict-tier key derivation, and the
    solver-memo load/save bracket.

    Key-derivation soundness (the argument DESIGN.md §6 spells out): a
    verdict is a pure function of the compiled program, the recorded
    schedule trace, and the classifier configuration —

    - recording is deterministic given (program, seed, inputs), and the
      trace captures the outcome (every scheduling decision and every
      concrete input drawn), so hashing the trace covers seed and inputs;
    - detection replays the trace deterministically, so the event stream —
      and with it every clustered race — is again a function of (program,
      trace);
    - classification seeds all its randomization from [config.seed] and
      explores within [config]'s budgets, so its output (verdict, evidence,
      exploration stats) adds only [config] as an input.

    The config hash covers every field that can influence the result,
    including [enable_reduction] (reduction is verdict-neutral but its
    exploration {e stats} are part of the cached payload) and
    [static_prefilter] (race reports are provably identical either way,
    but the cache does not lean on that proof).  It excludes [jobs]
    (verdicts are identical for every job count — the PR 1 contract,
    asserted by the test suite) and the cache fields themselves (they gate
    the lookup; they cannot change the answer). *)

module Store = Portend_cache.Store
module Solver = Portend_solver.Solver
module H = Portend_util.Chash

(* One handle per cache directory: handles carry entry-count state for
   eviction, so everybody targeting the same dir should share one. *)
let handles : (string, Store.t) Hashtbl.t = Hashtbl.create 4
let handles_lock = Mutex.create ()

let store_of (config : Config.t) : Store.t option =
  if not config.Config.cache then None
  else begin
    Mutex.lock handles_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock handles_lock)
      (fun () ->
        match Hashtbl.find_opt handles config.Config.cache_dir with
        | Some st -> Some st
        | None ->
          let st = Store.open_store config.Config.cache_dir in
          Hashtbl.add handles config.Config.cache_dir st;
          Some st)
  end

let config_chash (c : Config.t) : int =
  let h = H.seed in
  let h = H.int h c.Config.mp in
  let h = H.int h c.Config.ma in
  let h = H.int h c.Config.max_symbolic_inputs in
  let h = H.int h c.Config.alternate_budget_factor in
  let h = H.int h c.Config.run_budget in
  let h = H.int h c.Config.state_cap in
  let h = H.bool h c.Config.enable_adhoc_detection in
  let h = H.bool h c.Config.enable_multipath in
  let h = H.bool h c.Config.enable_multischedule in
  let h = H.bool h c.Config.enable_symbolic_output in
  let h = H.int h c.Config.seed in
  let h = H.int h c.Config.max_explored_states in
  let h = H.bool h c.Config.static_prefilter in
  H.bool h c.Config.enable_reduction

(** Verdict-tier key for one pipeline analysis: content hash of (compiled
    program, recorded trace, effective config). *)
let verdict_key ~(prog : Portend_lang.Bytecode.t) ~(trace : Portend_vm.Trace.t)
    ~(config : Config.t) : string =
  let h = H.int H.seed (Portend_lang.Bytecode.chash prog) in
  let h = H.int h (Portend_vm.Trace.chash trace) in
  let h = H.int h (config_chash config) in
  "vd-" ^ H.to_hex h

(* The solver-memo tier holds one snapshot per store, not a content-
   addressed entry: memos are an accumulating accelerator (any subset is
   valid, hits can never change answers), so the freshest snapshot is
   simply the best one.  Format changes are covered by the store's version
   stamp. *)
let solver_memos_key = "memos"

(** Run [f] bracketed by solver-memo persistence: import the stored memo
    snapshot into the active memo table (CLOCK cap and eviction accounting
    apply), run [f], then snapshot the table back.  With caching off this
    is just [f ()]. *)
let with_solver_memos (config : Config.t) (f : unit -> 'a) : 'a =
  match store_of config with
  | None -> f ()
  | Some st ->
    (match (Store.get st Store.Solver_memos ~key:solver_memos_key : Solver.memo_export option) with
    | Some memos -> ignore (Solver.import_memos memos : int)
    | None -> ());
    let result = f () in
    Store.put st Store.Solver_memos ~key:solver_memos_key (Solver.export_memos ());
    result
