(* Validated program-input bindings; see inputs.mli for the rules. *)

let parse_pair s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad input %S: expected NAME=VALUE" s)
  | Some i ->
    let name = String.sub s 0 i in
    let value = String.sub s (i + 1) (String.length s - i - 1) in
    if name = "" then Error (Printf.sprintf "bad input %S: empty NAME" s)
    else if String.contains value '=' then
      Error (Printf.sprintf "bad input %S: expected exactly one '='" s)
    else
      match int_of_string_opt value with
      | Some v -> Ok (name, v)
      | None -> Error (Printf.sprintf "bad input %S: VALUE must be an integer, got %S" s value)

let check_duplicates pairs =
  let rec go seen = function
    | [] -> Ok pairs
    | (k, _) :: rest ->
      if List.mem k seen then
        Error (Printf.sprintf "input %S bound more than once (bindings must be distinct)" k)
      else go (k :: seen) rest
  in
  go [] pairs

let parse_pairs args =
  let rec go acc = function
    | [] -> check_duplicates (List.rev acc)
    | s :: rest -> (
      match parse_pair s with
      | Ok kv -> go (kv :: acc) rest
      | Error _ as e -> e)
  in
  go [] args
