(** One-shot profiled analysis: run the full pipeline with telemetry
    enabled and hand back the analysis together with the telemetry
    snapshot.  Shared by [portend profile] and the golden-file profile
    test so both render exactly the same tables. *)

module Telemetry = Portend_telemetry

type t = {
  analysis : Pipeline.t;
  snap : Telemetry.snapshot;
}

(** Analyze [prog] with telemetry enabled, restoring the previous
    enabled state afterwards.  Telemetry data and solver counters are
    reset first so the snapshot covers exactly this run. *)
let run ?config ?seed ?inputs (prog : Portend_lang.Bytecode.t) : t =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Portend_solver.Solver.reset_stats ();
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled was)
    (fun () ->
      let analysis = Pipeline.analyze ?config ?seed ?inputs prog in
      { analysis; snap = Telemetry.snapshot () })

(** The per-phase summary (spans, counters, gauges) preceded by the
    pipeline's verdict summary.  [times:false] gives deterministic
    output (golden-file mode). *)
let render ?times (p : t) : string =
  let summary = Fmt.str "%a" Pipeline.pp_summary p.analysis in
  summary ^ "\n\n" ^ Telemetry.summary_table ?times p.snap
