(** Infinite-loop vs ad-hoc-synchronization discrimination (§3.5, [60]).

    When alternate-schedule enforcement times out, some thread is spinning.
    Following the paper's definition, the spin is a genuine infinite loop iff
    its exit condition is loop-invariant: no live thread — including the
    thread Portend is keeping suspended — can write any location the loop
    condition reads.  If some live thread's remaining code may write one of
    those locations, the spin is ad-hoc synchronization and the race is a
    candidate “single ordering”. *)

module V = Portend_vm
module Static = Portend_lang.Static

(* Locations read by [tid] among the most recent events (the spin window). *)
let recent_reads ~tid ~window events =
  let rec take n acc = function
    | [] -> acc
    | _ when n = 0 -> acc
    | ev :: rest ->
      let acc =
        match ev with
        | V.Events.Access { tid = t; loc; kind = V.Events.Read; _ } when t = tid ->
          let coarse =
            match loc with
            | V.Events.Lglobal v -> Static.Cglobal v
            | V.Events.Larray (a, _) | V.Events.Lmeta a -> Static.Carray a
          in
          Static.Cset.add coarse acc
        | _ -> acc
      in
      take (n - 1) acc rest
  in
  take window Static.Cset.empty (List.rev events)

(* Functions a live thread may still execute: everything on its frame stack
   (each frame continues after its callee returns). *)
let pending_funcs (st : V.State.t) tid =
  let th = V.State.thread st tid in
  List.map (fun f -> f.V.State.func) th.V.State.frames

(** [is_infinite_loop ~static ~state ~events ~spinning] — [true] when the
    spin of thread [spinning] can never exit. *)
let is_infinite_loop ~(static : Static.t) ~(state : V.State.t) ~events ~spinning =
  let reads = recent_reads ~tid:spinning ~window:256 events in
  if Static.Cset.is_empty reads then
    (* spinning on pure thread-local state: nobody can ever stop it *)
    true
  else
    let others = List.filter (fun t -> t <> spinning) (V.State.live_tids state) in
    let someone_can_write =
      List.exists
        (fun tid ->
          List.exists
            (fun fname ->
              Static.Cset.exists (fun loc -> Static.may_write static fname loc) reads)
            (pending_funcs state tid))
        others
    in
    not someone_can_write

(** Which thread is spinning at a timeout: the unique runnable thread if
    there is one (a purely thread-local spin emits no events at all),
    otherwise the thread with the most recent event activity. *)
let rec spinning_thread ?state ~events ~default () =
  match state with
  | Some st when List.length (V.State.runnable st) = 1 -> List.hd (V.State.runnable st)
  | Some _ | None -> spinning_thread_by_events ~events ~default

and spinning_thread_by_events ~events ~default =
  let counts = Hashtbl.create 8 in
  let rec walk n = function
    | [] -> ()
    | _ when n = 0 -> ()
    | ev :: rest ->
      (match ev with
      | V.Events.Access { tid; _ }
      | V.Events.Lock_acquired { tid; _ }
      | V.Events.Lock_released { tid; _ }
      | V.Events.Outputted { tid; _ }
      | V.Events.Cond_waiting { tid; _ }
      | V.Events.Cond_signalled { tid; _ }
      | V.Events.Sem_acquired { tid; _ }
      | V.Events.Sem_posted { tid; _ }
      | V.Events.Atomic_begin { tid; _ }
      | V.Events.Atomic_end { tid; _ } ->
        Hashtbl.replace counts tid (1 + Option.value ~default:0 (Hashtbl.find_opt counts tid))
      | V.Events.Thread_spawned _ | V.Events.Thread_joined _ | V.Events.Barrier_crossed _ -> ());
      walk (n - 1) rest
  in
  walk 128 (List.rev events);
  Hashtbl.fold
    (fun tid n best ->
      match best with Some (_, bn) when bn >= n -> best | _ -> Some (tid, n))
    counts None
  |> Option.fold ~none:default ~some:fst
