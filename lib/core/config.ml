(** Classifier configuration: the paper's exploration “dials” (§3.3) and the
    feature toggles used for the Fig 7 ablation. *)

type t = {
  mp : int;  (** upper bound on primary paths explored (Mp) *)
  ma : int;  (** alternate schedules per primary (Ma) *)
  max_symbolic_inputs : int;  (** how many inputs are made symbolic *)
  alternate_budget_factor : int;
      (** alternate-enforcement timeout, as a multiple of the primary's
          length (the paper uses 5×, §4) *)
  run_budget : int;  (** absolute instruction budget per execution *)
  state_cap : int;  (** cap on simultaneously-live symbolic states *)
  enable_adhoc_detection : bool;
      (** classify enforcement failures as singleOrd (vs. treating them as
          potentially harmful, like Record/Replay-Analyzer does) *)
  enable_multipath : bool;  (** explore multiple primary paths symbolically *)
  enable_multischedule : bool;  (** randomize post-race alternate schedules *)
  enable_symbolic_output : bool;
      (** compare outputs symbolically (vs. concrete equality) *)
  seed : int;  (** randomization seed for multi-schedule exploration *)
  max_explored_states : int;
      (** cap on states expanded per multi-path exploration; exploration
          reports truncation when it hits this *)
  jobs : int;
      (** worker domains for race classification (1 = sequential); verdicts
          are identical for every value *)
  static_prefilter : bool;
      (** restrict dynamic detection to the static candidate sites of
          {!Portend_analysis.Static_report}; race reports are identical
          either way (the candidates over-approximate reportable races),
          only the instrumented-site count shrinks *)
  enable_reduction : bool;
      (** state-space reduction for the multi-path/multi-schedule stage:
          frontier state dedup, sleep-set style schedule-equivalence
          pruning, staged enforcement reuse and incremental path-condition
          solving.  Verdicts, evidence and race reports are bit-identical
          either way; only the exploration work (VM steps, solver queries)
          shrinks.  [portend --no-reduction] turns it off *)
  cache : bool;
      (** persist verdicts, solver memos and static summaries across runs
          in the content-addressed on-disk store under [cache_dir]
          (DESIGN.md §6).  Verdict-neutral by construction: a hit replays a
          result computed from identical (program, trace, config) content,
          and any cache problem degrades to a miss.  Off by default;
          [portend --cache] turns it on *)
  cache_dir : string;  (** root directory of the persistent store *)
}

(** The paper's defaults: Mp = 5, Ma = 2, 2 symbolic inputs (§5). *)
let default =
  { mp = 5;
    ma = 2;
    max_symbolic_inputs = 2;
    alternate_budget_factor = 5;
    run_budget = 400_000;
    state_cap = 128;
    enable_adhoc_detection = true;
    enable_multipath = true;
    enable_multischedule = true;
    enable_symbolic_output = true;
    seed = 2012;
    max_explored_states = 50_000;
    jobs = Domain.recommended_domain_count ();
    static_prefilter = false;
    enable_reduction = true;
    cache = false;
    cache_dir = "_portend_cache"
  }

(** Fig 7's incremental configurations. *)
let single_path =
  { default with
    enable_adhoc_detection = false;
    enable_multipath = false;
    enable_multischedule = false;
    enable_symbolic_output = false
  }

let with_adhoc = { single_path with enable_adhoc_detection = true }
let with_multipath = { with_adhoc with enable_multipath = true; enable_symbolic_output = true }
let with_multischedule = { with_multipath with enable_multischedule = true }

(** k as reported for “k-witness harmless” races: Mp × Ma (§3.4). *)
let k t = t.mp * t.ma

(** Scale Mp/Ma to reach a target k, splitting as evenly as the paper's
    Mp × Ma factorization allows; used by the Fig 10 sweep. *)
let with_k target t =
  if target <= 1 then { t with mp = 1; ma = 1 }
  else
    let ma = if target mod 2 = 0 then 2 else 1 in
    { t with ma; mp = max 1 (target / ma) }
