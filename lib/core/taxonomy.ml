(** Portend's four-category data race taxonomy (§2.3, Fig 1).

    - [Spec_violated]: at least one ordering of the racing accesses violates
      the program's specification — a “basic” violation (crash, deadlock,
      memory error, infinite loop) or a developer-provided semantic
      predicate.  Definitely harmful.
    - [Output_differs]: the orderings can produce different program output;
      possibly harmful, needs a developer's judgement.
    - [K_witness_harmless]: [k] explored path × schedule combinations all
      behaved equivalently (symbolically compared); harmless with confidence
      increasing in [k].
    - [Single_ordering]: only one ordering of the accesses is possible —
      ad-hoc synchronization; harmless. *)

type category =
  | Spec_violated
  | Output_differs
  | K_witness_harmless
  | Single_ordering

let category_to_string = function
  | Spec_violated -> "specViol"
  | Output_differs -> "outDiff"
  | K_witness_harmless -> "k-witness"
  | Single_ordering -> "singleOrd"

let pp_category fmt c = Fmt.string fmt (category_to_string c)

let all_categories = [ Spec_violated; Output_differs; K_witness_harmless; Single_ordering ]

(* Position of a category in [all_categories]; lets tallies index a fixed
   count array instead of scanning assoc lists. *)
let category_index = function
  | Spec_violated -> 0
  | Output_differs -> 1
  | K_witness_harmless -> 2
  | Single_ordering -> 3

let is_harmful = function
  | Spec_violated -> true
  | Output_differs -> false (* “possibly harmful”: surfaced to the developer *)
  | K_witness_harmless | Single_ordering -> false

(** A classified race. *)
type verdict = {
  category : category;
  k : int;  (** witnesses observed; meaningful for [K_witness_harmless] *)
  consequence : Portend_vm.Crash.consequence option;  (** for [Spec_violated] *)
  states_differ : bool;
      (** did the primary and alternate post-race states differ?  (computed
          for Table 3's “states same/differ” columns via the
          Record/Replay-Analyzer comparator) *)
  detail : string;  (** human-readable rationale *)
}

let verdict ?(k = 0) ?consequence ?(states_differ = false) ?(detail = "") category =
  { category; k; consequence; states_differ; detail }

let pp_verdict fmt v =
  Fmt.pf fmt "%a%s%s" pp_category v.category
    (if v.category = K_witness_harmless then Printf.sprintf " (k=%d)" v.k else "")
    (match v.consequence with
    | Some c -> " [" ^ Portend_vm.Crash.consequence_to_string c ^ "]"
    | None -> "")
