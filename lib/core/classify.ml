(** The full classifier: Algorithm 1 plus multi-path and multi-schedule
    analysis with symbolic output comparison (§3.2–§3.5). *)

module V = Portend_vm
module R = Portend_detect.Report
module Telemetry = Portend_telemetry

(** Work avoided by the state-space reductions ([Config.enable_reduction]);
    every field is 0 when reduction is disabled. *)
type reduction = {
  states_deduped : int;  (** frontier states dropped as already expanded *)
  schedules_pruned : int;
      (** alternate schedules skipped as Mazurkiewicz-equivalent to an
          already-witnessed alternate of the same primary *)
  comparisons_deduped : int;
      (** alternate output comparisons skipped because the outputs equalled
          an already-witnessed alternate's *)
  suffix_solves : int;
      (** path completions discharged from the threaded interval env *)
  full_solves : int;  (** path completions that paid for a solver query *)
  replays_reused : int;
      (** primary replays answered by the existing pre-race checkpoint *)
}

let no_reduction =
  { states_deduped = 0;
    schedules_pruned = 0;
    comparisons_deduped = 0;
    suffix_solves = 0;
    full_solves = 0;
    replays_reused = 0
  }

(** Structured exploration accounting for one classification, mirrored
    one-for-one into the telemetry counters ([explore.states],
    [explore.paths_completed], …) when telemetry is enabled; the QCheck
    telemetry property asserts the two stay equal. *)
type stats = {
  states_explored : int;  (** multipath states expanded; 0 when the
                              multi-path stage did not run *)
  paths_completed : int;  (** completed-and-solved primary paths *)
  alternates_attempted : int;  (** alternate orderings tried by the
                                   multi-path stage *)
  red : reduction;  (** work avoided by the state-space reductions *)
}

let no_stats =
  { states_explored = 0; paths_completed = 0; alternates_attempted = 0; red = no_reduction }

type outcome = {
  verdict : Taxonomy.verdict;
  evidence : Evidence.t option;
  stats : stats;
}

let drop n xs = List.filteri (fun i _ -> i >= n) xs

(* A deterministic per-(primary, alternate) seed for schedule randomization. *)
let alt_seed cfg i j = (cfg.Config.seed * 1_000_003) + (i * 101) + j

let crash_of_stop = function
  | V.Run.Crashed c -> Some c
  | V.Run.Deadlocked tids -> Some (V.Crash.Deadlock tids)
  | V.Run.Halted | V.Run.Out_of_budget | V.Run.Diverged _ | V.Run.Forked -> None

(* Run the multi-path multi-schedule stage for a race whose single-stage
   verdict was outSame.  Returns the refined outcome. *)
let multipath_stage cfg ~static prog trace (single : Single.t) race : outcome =
  let ckpts = single.Single.ckpts in
  let exploration = Multipath.explore cfg prog trace ckpts race in
  let primaries = exploration.Multipath.primaries in
  (* A truncated exploration is weaker evidence: say so in the verdict
     rather than silently stopping at the state cap. *)
  let truncation_note detail =
    if exploration.Multipath.truncated then
      Printf.sprintf "%s (exploration truncated at %d states)" detail
        exploration.Multipath.states_seen
    else detail
  in
  let k_base = { Taxonomy.category = Taxonomy.K_witness_harmless;
                 k = 1;
                 consequence = None;
                 states_differ = single.Single.states_differ;
                 detail = "primary and alternate outputs matched" } in
  let use_red = cfg.Config.enable_reduction in
  let alternates = ref 0 in
  let sched_pruned = ref 0 in
  let cmp_deduped = ref 0 in
  let replays_reused = ref 0 in
  let mk_stats () =
    { states_explored = exploration.Multipath.states_seen;
      paths_completed = List.length primaries;
      alternates_attempted = !alternates;
      red =
        { states_deduped = exploration.Multipath.states_deduped;
          schedules_pruned = !sched_pruned;
          comparisons_deduped = !cmp_deduped;
          suffix_solves = exploration.Multipath.suffix_solves;
          full_solves = exploration.Multipath.full_solves;
          replays_reused = !replays_reused
        }
    }
  in
  let out =
  if primaries = [] then
    { verdict =
        { k_base with
          detail = truncation_note "no additional primary paths found; k = 1 (single stage)"
        };
      evidence = None;
      stats = mk_stats ()
    }
  else begin
    let witnesses = ref 1 (* the single-pre/single-post pair already matched *) in
    let result = ref None in
    let rec consider_primary i (p : Multipath.primary) =
      if !result <> None then ()
      else
        match crash_of_stop p.Multipath.p_stop with
        | Some c ->
          (* A primary path (same schedule prefix, different inputs) violates
             the specification. *)
          result :=
            Some
              { verdict =
                  Taxonomy.verdict ~consequence:(V.Crash.consequence c)
                    ~states_differ:single.Single.states_differ
                    ~detail:("another primary path: " ^ V.Crash.to_string c)
                    Taxonomy.Spec_violated;
                evidence =
                  Some
                    (Evidence.make ~race ~category:Taxonomy.Spec_violated ~crash:c
                       ~inputs:(Portend_util.Maps.Smap.bindings p.Multipath.p_model)
                       ~decisions:ckpts.Locate.decisions ~d1:ckpts.Locate.d1 ~d2:ckpts.Locate.d2
                       ());
                stats = no_stats
              }
        | None ->
          (* Both the checkpoint replay and [replay_to_decision ~d:d1]
             deterministically replay decisions 0..d1-1 on a concrete input
             model, so when the primary's solved model is the trace's own
             model (always true for constraint-free paths) the replay would
             rebuild [ckpts.pre_race] instruction for instruction — reuse
             the checkpoint instead. *)
          if use_red && Portend_util.Maps.Smap.equal ( = ) p.Multipath.p_model (V.Trace.input_model trace)
          then begin
            incr replays_reused;
            consider_alternates i p ckpts.Locate.pre_race
          end
          else (
            match
              Locate.replay_to_decision prog ~model:p.Multipath.p_model
                ~decisions:ckpts.Locate.decisions ~d:ckpts.Locate.d1
            with
            | Error _ -> () (* model failed to reach the race; lose these witnesses *)
            | Ok pre_race -> consider_alternates i p pre_race)
    and consider_alternates i (p : Multipath.primary) pre_race =
      let budget = cfg.Config.alternate_budget_factor * max 1 ckpts.Locate.primary_steps in
      let occurrence = p.Multipath.p_occ2 in
      let n_alts = if cfg.Config.enable_multischedule then cfg.Config.ma else 1 in
      (* Enforcement phases A and B (drive tj to its access, then ti) never
         consult the continuation scheduler, so with reduction on they are
         staged once per primary and each alternate schedule only replays
         phase C from the shared post-access state. *)
      let staged =
        lazy
          (Enforce.stage ~static ~budget ~occurrence ?site2:p.Multipath.p_site2 ~race ~pre_race ())
      in
      (* Alternates already counted as witnesses for this primary, newest
         first: (events, final input log, outputs).  Used to skip the
         output comparison for a schedule that provably reconverges. *)
      let witnessed = ref [] in
      for j = 0 to n_alts - 1 do
        if !result = None then begin
          incr alternates;
          let cont =
            if cfg.Config.enable_multischedule then V.Sched.random ~seed:(alt_seed cfg i j)
            else
              V.Sched.of_decisions_tolerant
                (drop (ckpts.Locate.d1 + 1) ckpts.Locate.decisions)
                ~fallback:V.Sched.round_robin
          in
          let alt =
            if use_red then Enforce.resume (Lazy.force staged) ~cont
            else
              Enforce.alternate ~static ~budget ~cont ~occurrence ?site2:p.Multipath.p_site2 ~race
                ~pre_race ()
          in
          match crash_of_stop alt.Enforce.stop with
          | Some c ->
            result :=
              Some
                { verdict =
                    Taxonomy.verdict ~consequence:(V.Crash.consequence c)
                      ~states_differ:single.Single.states_differ
                      ~detail:("alternate execution: " ^ V.Crash.to_string c)
                      Taxonomy.Spec_violated;
                  evidence =
                    Some
                      (Evidence.make ~race ~category:Taxonomy.Spec_violated ~crash:c
                         ~inputs:(Portend_util.Maps.Smap.bindings p.Multipath.p_model)
                         ~decisions:ckpts.Locate.decisions ~d1:ckpts.Locate.d1
                         ~d2:ckpts.Locate.d2
                         ~notes:
                           [ Printf.sprintf "alternate schedule seed %d" (alt_seed cfg i j) ]
                         ());
                  stats = no_stats
                }
          | None -> (
            match alt.Enforce.stop with
            | V.Run.Halted -> (
              let alt_outputs = V.State.outputs alt.Enforce.final in
              let alt_log = alt.Enforce.final.V.State.input_log in
              (* Two reduced fast paths, both conditions that provably force
                 the comparison below to succeed for an alternate of the
                 same primary:
                 - a Mazurkiewicz-equivalent event trace from the same
                   post-access state with the same input draws reconverges
                   to the same final state, hence the same outputs as an
                   alternate already counted (the input-log guard matters:
                   input draws are not events, and reordering them across
                   threads renames values);
                 - the comparison reads the alternate only through its
                   output payloads, so payload-equal outputs get the
                   already-witnessed answer. *)
              let dedup =
                if not use_red then None
                else if
                  List.exists
                    (fun (evs, log, _) ->
                      log = alt_log && V.Events.equivalent evs alt.Enforce.events)
                    !witnessed
                then Some `Equivalent_schedule
                else if
                  List.exists
                    (fun (_, _, outs) -> Symout.concrete_equal outs alt_outputs)
                    !witnessed
                then Some `Same_outputs
                else None
              in
              match dedup with
              | Some `Equivalent_schedule ->
                incr sched_pruned;
                incr witnesses
              | Some `Same_outputs ->
                incr cmp_deduped;
                incr witnesses
              | None -> (
              let cmp =
                if cfg.Config.enable_symbolic_output then
                  Symout.matches ~ranges:p.Multipath.p_ranges ~path_cond:p.Multipath.p_path
                    ~primary:p.Multipath.p_outputs ~alternate:alt_outputs
                else if Symout.concrete_equal p.Multipath.p_outputs alt_outputs then Ok ()
                else
                  Error
                    { Symout.m_index = -1;
                      m_site = None;
                      m_primary = "concrete outputs";
                      m_alternate = "differ"
                    }
              in
              match cmp with
              | Ok () ->
                incr witnesses;
                if use_red then
                  witnessed := (alt.Enforce.events, alt_log, alt_outputs) :: !witnessed
              | Error m ->
                result :=
                  Some
                    { verdict =
                        Taxonomy.verdict ~states_differ:single.Single.states_differ
                          ~detail:(Fmt.str "%a" Symout.pp_mismatch m)
                          Taxonomy.Output_differs;
                      evidence =
                        Some
                          (Evidence.make ~race ~category:Taxonomy.Output_differs ~mismatch:m
                             ~inputs:(Portend_util.Maps.Smap.bindings p.Multipath.p_model)
                             ~decisions:ckpts.Locate.decisions ~d1:ckpts.Locate.d1
                             ~d2:ckpts.Locate.d2 ());
                      stats = no_stats
                    }))
            | V.Run.Out_of_budget | V.Run.Diverged _ | V.Run.Forked
            | V.Run.Crashed _ | V.Run.Deadlocked _ ->
              (* enforcement failed for this pair; not a witness *)
              ())
        end
      done
    in
    List.iteri consider_primary primaries;
    match !result with
    | Some r -> { r with stats = mk_stats () }
    | None ->
      { verdict =
          { k_base with
            k = !witnesses;
            detail =
              truncation_note (Printf.sprintf "%d path-schedule witnesses agree" !witnesses)
          };
        evidence = None;
        stats = mk_stats ()
      }
  end
  in
  if Telemetry.enabled () then begin
    (* Mirror the classify-side reduction counters into telemetry with the
       exact amounts surfaced in [stats.red] (the exploration-side ones are
       emitted by {!Multipath.explore}). *)
    Telemetry.incr ~by:!sched_pruned "explore.schedules_pruned";
    Telemetry.incr ~by:!cmp_deduped "explore.comparisons_deduped";
    Telemetry.incr ~by:!replays_reused "explore.replays_reused"
  end;
  out

let classify_impl ?(config = Config.default) (prog : Portend_lang.Bytecode.t) (trace : V.Trace.t)
    (race : R.race) : (outcome, string) result =
  let static = Portend_lang.Static.analyze prog in
  match Single.analyze config ~static prog trace race with
  | Error e -> Error e
  | Ok single -> (
    let states_differ = single.Single.states_differ in
    let ckpts = single.Single.ckpts in
    let ev ~category ?crash ?mismatch ?(notes = []) () =
      Evidence.make ~race ~category ?crash ?mismatch
        ~inputs:
          (List.filter_map
             (fun (k, v) -> match v with V.Value.Con n -> Some (k, n) | V.Value.Sym _ -> None)
             (List.rev ckpts.Locate.primary_final.V.State.input_log))
        ~decisions:ckpts.Locate.decisions ~d1:ckpts.Locate.d1 ~d2:ckpts.Locate.d2 ~notes ()
    in
    match single.Single.classification with
    | Single.CSpecViol (consequence, why) ->
      let crash =
        match single.Single.alternate with
        | Some a -> crash_of_stop a.Enforce.stop
        | None -> None
      in
      Ok
        { verdict =
            Taxonomy.verdict ?consequence ~states_differ ~detail:why Taxonomy.Spec_violated;
          evidence = Some (ev ~category:Taxonomy.Spec_violated ?crash ~notes:[ why ] ());
          stats = no_stats
        }
    | Single.CSingleOrd why ->
      Ok
        { verdict = Taxonomy.verdict ~states_differ ~detail:why Taxonomy.Single_ordering;
          evidence = None;
          stats = no_stats
        }
    | Single.COutDiff mismatch ->
      Ok
        { verdict =
            Taxonomy.verdict ~states_differ
              ~detail:
                (match mismatch with
                | Some m -> Fmt.str "%a" Symout.pp_mismatch m
                | None -> "primary and alternate outputs differ")
              Taxonomy.Output_differs;
          evidence = Some (ev ~category:Taxonomy.Output_differs ?mismatch ());
          stats = no_stats
        }
    | Single.COutSame ->
      if config.Config.enable_multipath then
        Ok (multipath_stage config ~static prog trace single race)
      else
        Ok
          { verdict =
              Taxonomy.verdict ~k:1 ~states_differ
                ~detail:"single path and schedule agreed (multi-path disabled)"
                Taxonomy.K_witness_harmless;
            evidence = None;
            stats = no_stats
          })

(** Classify one (clustered) race report against a recorded trace. *)
let classify ?config prog trace race : (outcome, string) result =
  if not (Telemetry.enabled ()) then classify_impl ?config prog trace race
  else
    Telemetry.with_span "classify.race" (fun () ->
        let t0 = Portend_util.Clock.now_s () in
        let r = classify_impl ?config prog trace race in
        let dt = Portend_util.Clock.now_s () -. t0 in
        (match r with
        | Ok o ->
          let cat = Taxonomy.category_to_string o.verdict.Taxonomy.category in
          Telemetry.incr ("classify.count." ^ cat);
          Telemetry.observe_s ("classify.verdict." ^ cat) dt
        | Error _ -> Telemetry.incr "classify.errors");
        r)
