(** The end-to-end Portend pipeline (Fig 2): execute the program under the
    record/replay engine, detect races with the dynamic happens-before
    detector, cluster the reports, and classify one representative per
    cluster. *)

module V = Portend_vm
module D = Portend_detect
module Telemetry = Portend_telemetry

type race_analysis = {
  race : D.Report.race;
  instances : int;  (** how many times the race manifested during detection *)
  verdict : Taxonomy.verdict;
  evidence : Evidence.t option;
  stats : Classify.stats;  (** exploration work done for this race *)
  time_s : float;  (** classification wall time for this race *)
}

type t = {
  program : Portend_lang.Bytecode.t;
  record : V.Run.result;
  record_time_s : float;  (** plain interpretation time (Table 4's baseline) *)
  races : race_analysis list;
  errors : (D.Report.race * string) list;  (** races the replay could not reproduce *)
}

let now () = Portend_util.Clock.now_s ()

(* The verdict-tier payload: everything [analyze] computes downstream of
   the recording.  The recording itself is cheap and deterministic, so it
   is re-executed on a hit (its trace is part of the key) and only the
   expensive detection + classification results are persisted — including
   each race's exploration stats and wall time, so a cached analysis is
   structurally identical to the run that produced it. *)
type cached_analysis = {
  c_races : race_analysis list;
  c_errors : (D.Report.race * string) list;
}

(** Record an execution of [prog] and return it with its interpretation
    time.  [inputs] supplies concrete values for the program's [input]
    statements (the recorded test-case inputs); [seed] drives the recording
    scheduler. *)
let record ?(seed = 1) ?(inputs = []) (prog : Portend_lang.Bytecode.t) : V.Run.result * float =
  let model = Portend_util.Maps.Smap.of_list inputs in
  let st = V.State.init ~input_mode:(V.State.Concrete model) prog in
  let t0 = now () in
  let r = Telemetry.with_span "pipeline.record" (fun () -> V.Run.run ~sched:(V.Sched.random ~seed) st) in
  (r, now () -. t0)

(** Detect and classify every distinct race of [prog].

    Returns per-race verdicts in detection order.  A race whose replay
    diverges is reported under [errors] rather than silently dropped.

    Clustered races are classified on [config.jobs] worker domains: each
    classification reads only the immutable program, trace, and fresh VM
    states of its own, so verdicts are identical for every job count. *)
let analyze ?(config = Config.default) ?(seed = 1) ?(inputs = []) (prog : Portend_lang.Bytecode.t)
    : t =
  let record_run, record_time_s = record ~seed ~inputs prog in
  let store = Pcache.store_of config in
  let key =
    match store with
    | None -> ""
    | Some _ -> Pcache.verdict_key ~prog ~trace:record_run.V.Run.trace ~config
  in
  let cached : cached_analysis option =
    match store with
    | None -> None
    | Some st -> Portend_cache.Store.get st Portend_cache.Store.Verdicts ~key
  in
  match cached with
  | Some c ->
    (* Hit: detection, enforcement and solving are all skipped; the
       recording above already reproduced the trace the key was derived
       from, so the cached races correspond to exactly this execution. *)
    { program = prog; record = record_run; record_time_s; races = c.c_races; errors = c.c_errors }
  | None ->
    let suppress = Portend_lang.Static.spin_read_sites prog in
    let restrict =
      if config.Config.static_prefilter then
        Some (Portend_analysis.Static_report.analyze_cached ?store prog)
      else None
    in
    let clustered = D.Hb.detect_clustered ~suppress ?restrict record_run.V.Run.events in
    let classified =
      Telemetry.with_span "pipeline.classify" (fun () ->
          Portend_util.Pool.map ~jobs:config.Config.jobs
            (fun (race, instances) ->
              let t0 = now () in
              let r = Classify.classify ~config prog record_run.V.Run.trace race in
              (race, instances, r, now () -. t0))
            clustered)
    in
    let races, errors =
      List.fold_left
        (fun (races, errors) (race, instances, r, time_s) ->
          match r with
          | Ok { Classify.verdict; evidence; stats } ->
            ({ race; instances; verdict; evidence; stats; time_s } :: races, errors)
          | Error e -> (races, (race, e) :: errors))
        ([], []) classified
    in
    let result =
      { program = prog;
        record = record_run;
        record_time_s;
        races = List.rev races;
        errors = List.rev errors
      }
    in
    (match store with
    | Some st ->
      Portend_cache.Store.put st Portend_cache.Store.Verdicts ~key
        { c_races = result.races; c_errors = result.errors }
    | None -> ());
    result

(** Detect and classify across several recordings (different scheduler
    seeds), the way a test suite exercises a program repeatedly (§3.1
    suggests running existing test suites under Portend).  Races are
    deduplicated across recordings by cluster key; each is classified
    against the first recording that manifested it. *)
let analyze_many ?config ?(seeds = [ 1; 2; 3 ]) ?inputs (prog : Portend_lang.Bytecode.t) :
    t list * race_analysis list =
  let jobs = (match config with Some c -> c | None -> Config.default).Config.jobs in
  let analyses =
    Portend_util.Pool.map ~jobs (fun seed -> analyze ?config ~seed ?inputs prog) seeds
  in
  let seen = Hashtbl.create 32 in
  let merged =
    List.concat_map
      (fun a ->
        List.filter
          (fun ra ->
            let key = D.Report.cluster_key ra.race in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          a.races)
      analyses
  in
  (analyses, merged)

(** Count of distinct races per category, in {!Taxonomy.all_categories}
    order.  One fold over a fixed count array — the old assoc-list
    accumulation rescanned the category list per race. *)
let tally (t : t) =
  let categories = Array.of_list Taxonomy.all_categories in
  let counts = Array.make (Array.length categories) 0 in
  let index = Taxonomy.category_index in
  List.iter
    (fun ra ->
      let i = index ra.verdict.Taxonomy.category in
      counts.(i) <- counts.(i) + 1)
    t.races;
  Array.to_list (Array.mapi (fun i c -> (c, counts.(i))) categories)

let pp_summary fmt (t : t) =
  Fmt.pf fmt "@[<v>program %s: %d distinct races (%d instances)@,%a@]" t.program.Portend_lang.Bytecode.pname
    (List.length t.races)
    (List.fold_left (fun acc ra -> acc + ra.instances) 0 t.races)
    Fmt.(
      list ~sep:cut (fun fmt ra ->
          Fmt.pf fmt "  %a -> %a" D.Report.pp_race ra.race Taxonomy.pp_verdict ra.verdict))
    t.races
