(** The full classifier: Algorithm 1 plus multi-path and multi-schedule
    analysis with symbolic output comparison (§3.2–§3.5). *)

(** Work avoided by the state-space reductions ([Config.enable_reduction]).
    Every field is 0 when reduction is disabled; all the reductions are
    verdict-preserving, so these count saved work, never changed answers. *)
type reduction = {
  states_deduped : int;  (** frontier states dropped as already expanded *)
  schedules_pruned : int;
      (** alternate schedules skipped as Mazurkiewicz-equivalent to an
          already-witnessed alternate of the same primary *)
  comparisons_deduped : int;
      (** alternate output comparisons skipped because the outputs equalled
          an already-witnessed alternate's *)
  suffix_solves : int;
      (** path completions discharged from the threaded interval env
          without a solver query *)
  full_solves : int;  (** path completions that paid for a solver query *)
  replays_reused : int;
      (** primary replays answered by the existing pre-race checkpoint *)
}

val no_reduction : reduction

(** Structured exploration accounting for one classification.  When
    telemetry is enabled, the [explore.*] counters are incremented with
    exactly these numbers, so the two views always agree. *)
type stats = {
  states_explored : int;  (** multipath states expanded; 0 when the
                              multi-path stage did not run *)
  paths_completed : int;  (** completed-and-solved primary paths *)
  alternates_attempted : int;  (** alternate orderings tried by the
                                   multi-path stage *)
  red : reduction;  (** work avoided by the state-space reductions *)
}

val no_stats : stats

type outcome = {
  verdict : Taxonomy.verdict;
  evidence : Evidence.t option;
      (** present for “spec violated” and “output differs” verdicts: the
          replayable ingredients that demonstrate the consequence *)
  stats : stats;  (** exploration work done for this race *)
}

(** Classify one (clustered) race report against a recorded trace.

    Runs the single-pre/single-post analysis first; if that is inconclusive
    (outputs matched), continues with multi-path exploration on symbolic
    inputs and multi-schedule alternates, comparing outputs symbolically.
    [Error] means the replay could not reproduce the race (e.g. a stale
    trace). *)
val classify :
  ?config:Config.t ->
  Portend_lang.Bytecode.t ->
  Portend_vm.Trace.t ->
  Portend_detect.Report.race ->
  (outcome, string) result
