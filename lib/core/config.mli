(** Classifier configuration: the paper's exploration “dials” (§3.3) and the
    feature toggles used for the Fig 7 ablation. *)

type t = {
  mp : int;  (** upper bound on primary paths explored (Mp) *)
  ma : int;  (** alternate schedules per primary (Ma) *)
  max_symbolic_inputs : int;  (** how many inputs are made symbolic *)
  alternate_budget_factor : int;
      (** alternate-enforcement timeout, as a multiple of the primary's
          length (the paper uses 5x, §4) *)
  run_budget : int;  (** absolute instruction budget per execution *)
  state_cap : int;  (** cap on simultaneously-live symbolic states *)
  enable_adhoc_detection : bool;
      (** classify enforcement failures as singleOrd (vs. treating them as
          potentially harmful, like Record/Replay-Analyzer) *)
  enable_multipath : bool;  (** explore multiple primary paths symbolically *)
  enable_multischedule : bool;  (** randomize post-race alternate schedules *)
  enable_symbolic_output : bool;
      (** compare outputs symbolically (vs. concrete equality) *)
  seed : int;  (** randomization seed for multi-schedule exploration *)
  max_explored_states : int;
      (** cap on states expanded per multi-path exploration; exploration
          reports truncation when it hits this *)
  jobs : int;
      (** worker domains for race classification (1 = sequential); verdicts
          are identical for every value *)
  static_prefilter : bool;
      (** restrict dynamic detection to the static candidate sites of
          {!Portend_analysis.Static_report}; race reports are identical
          either way, only the instrumented-site count shrinks *)
  enable_reduction : bool;
      (** state-space reduction for the multi-path/multi-schedule stage
          (state dedup, schedule-equivalence pruning, staged enforcement,
          incremental path solving); verdict-neutral, on by default *)
  cache : bool;
      (** persist verdicts, solver memos and static summaries across runs
          in the content-addressed store under [cache_dir] (DESIGN.md §6);
          verdict-neutral, off by default ([portend --cache]) *)
  cache_dir : string;  (** root directory of the persistent store *)
}

(** The paper's defaults: Mp = 5, Ma = 2, 2 symbolic inputs (§5). *)
val default : t

(** Fig 7's incremental configurations. *)
val single_path : t

val with_adhoc : t
val with_multipath : t
val with_multischedule : t

(** k as reported for “k-witness harmless” races: Mp × Ma (§3.4). *)
val k : t -> int

(** Scale Mp/Ma to reach a target k (Fig 10 sweep). *)
val with_k : int -> t -> t
