(** Systematic enumeration of litmus shapes.

    Unlike the qcheck generators (which sample), this enumerates the shape
    space {e exhaustively in a fixed order}: by total op count, then by
    thread-count split, then lexicographically over op codes — so for a
    given limit set the corpus is a deterministic, reproducible prefix of
    the full space, and "N programs" means the N smallest canonical
    scenarios, not N lucky draws.

    Raw candidates are canonicalized ({!Canon}) and deduped on the fly;
    the budget counts {e canonical} programs yielded.  Inadmissible shapes
    (guaranteed-stuck synchronization, {!Shape.admissible}) are filtered
    before canonicalization unless [include_stuck] asks for them. *)

type limits = {
  max_threads : int;  (** worker threads per program (2..3 supported) *)
  max_ops : int;  (** ops per thread *)
  n_vars : int;  (** shared variables the alphabet ranges over (1..2) *)
  max_total : int;  (** total ops across threads; the size ceiling *)
  include_stuck : bool;  (** keep shapes {!Shape.admissible} rejects *)
}

let default_limits =
  { max_threads = 3; max_ops = 3; n_vars = 2; max_total = 6; include_stuck = false }

(* Ops usable under [limits]: every code whose variable (if any) is in
   range.  In code order, so enumeration order is stable. *)
let alphabet (l : limits) : Shape.op list =
  List.filter_map
    (fun c ->
      let op = Shape.op_of_code c in
      match Shape.op_var op with
      | Some v when v >= l.n_vars -> None
      | _ -> Some op)
    (List.init Shape.alphabet_size Fun.id)

(* All op sequences of exactly [n] ops, lexicographic in code order. *)
let rec sequences (alpha : Shape.op list) (n : int) : Shape.op list list =
  if n = 0 then [ [] ]
  else
    List.concat_map (fun op -> List.map (fun rest -> op :: rest) (sequences alpha (n - 1)))
      alpha

(* Compositions of [total] into exactly [k] parts, each in [1..cap],
   lexicographic. *)
let rec compositions (total : int) (k : int) (cap : int) : int list list =
  if k = 0 then if total = 0 then [ [] ] else []
  else
    List.concat
      (List.init cap (fun i ->
           let part = i + 1 in
           if part > total then []
           else List.map (fun rest -> part :: rest) (compositions (total - part) (k - 1) cap)))

exception Done

(** [iter limits ~budget f] calls [f] on canonical shapes in enumeration
    order until the space within [limits] is exhausted or [budget]
    canonical programs have been yielded; returns the dedup table (raw and
    distinct counts) and whether the space was exhausted. *)
let iter (l : limits) ~(budget : int) (f : Shape.t -> unit) : Canon.table * bool =
  let tbl = Canon.create_table () in
  let alpha = alphabet l in
  let exhausted = ref true in
  (try
     for total = 2 to l.max_total do
       for k = 2 to l.max_threads do
         List.iter
           (fun split ->
             (* Candidate thread bodies per split slot, then the cartesian
                product across slots. *)
             let rec product acc = function
               | [] ->
                 let t = { Shape.threads = List.rev acc; n_vars = l.n_vars } in
                 if l.include_stuck || Shape.admissible t then begin
                   match Canon.add tbl t with
                   | None -> ()
                   | Some canon ->
                     f canon;
                     if Canon.distinct tbl >= budget then begin
                       exhausted := false;
                       raise Done
                     end
                 end
               | n :: rest ->
                 List.iter (fun seq -> product (seq :: acc) rest) (sequences alpha n)
             in
             product [] split)
           (compositions total k l.max_ops)
       done
     done
   with Done -> ());
  (tbl, !exhausted)

(** Enumerate into a list (same order as {!iter}). *)
let run (l : limits) ~(budget : int) : Shape.t list * Canon.table * bool =
  let acc = ref [] in
  let tbl, exhausted = iter l ~budget (fun t -> acc := t :: !acc) in
  (List.rev !acc, tbl, exhausted)
