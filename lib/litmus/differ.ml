(** Differential testing of the classification pipeline against itself.

    One litmus program is analyzed under every configuration of the mode
    matrix; the modes are {e contracted} to produce bit-identical results
    (the standing guarantees earlier PRs assert on the evaluation suite,
    here attacked with thousands of enumerated scenarios):

    - [no-reduction]: state-space reductions are verdict-preserving
      (identical modulo the reduction work counters, which count avoided
      work by design);
    - [prefilter]: the static candidate restriction never changes a race
      report, hence never a verdict;
    - [jobs=N]: classification is deterministic in the worker-domain count;
    - [cache cold]/[cache warm]: the persistent store memoizes a pure
      function — off, cold and warm runs are bit-identical;
    - [serve]: the daemon's per-race verdict lines equal the one-shot
      pipeline's rendering of the same analysis.

    The baseline classifiers ({!Portend_baselines}) are {e not} contracted
    to agree — they are weaker by design (that gap is Table 5) — so their
    verdicts feed a comparison histogram instead.  The one hard baseline
    contract is static coverage: a dynamically detected race must be a
    static candidate ({!Portend_analysis.Static_report.covers}), otherwise
    the prefilter could silently drop a real race.  A coverage violation
    is therefore a disagreement, not histogram material. *)

open Portend_core
module V = Portend_vm
module D = Portend_detect
module B = Portend_baselines
module Serve = Portend_serve

(* ------------------------------------------------------------------ *)
(* analysis fingerprints                                               *)
(* ------------------------------------------------------------------ *)

(* Everything observable about one analysis except wall-clock times,
   rendered to a stable string so mode outputs can be compared (and
   diffed in error messages).  [blank_red] erases the reduction work
   counters — the only field the no-reduction contract legitimately
   changes. *)
let fingerprint ?(blank_red = false) (a : Pipeline.t) : string =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "stop=%s\n" (V.Run.stop_to_string a.Pipeline.record.V.Run.stop);
  List.iter
    (fun ra ->
      let v = ra.Pipeline.verdict in
      let s =
        if blank_red then { ra.Pipeline.stats with Classify.red = Classify.no_reduction }
        else ra.Pipeline.stats
      in
      add "race %s x%d -> %s k=%d sd=%b cons=%s detail=%s\n"
        (Fmt.str "%a" D.Report.pp_race ra.Pipeline.race)
        ra.Pipeline.instances
        (Taxonomy.category_to_string v.Taxonomy.category)
        v.Taxonomy.k v.Taxonomy.states_differ
        (match v.Taxonomy.consequence with
        | None -> "-"
        | Some c -> V.Crash.consequence_to_string c)
        v.Taxonomy.detail;
      add "  stats states=%d paths=%d alts=%d red=(%d,%d,%d,%d,%d,%d)\n" s.Classify.states_explored
        s.Classify.paths_completed s.Classify.alternates_attempted s.Classify.red.Classify.states_deduped
        s.Classify.red.Classify.schedules_pruned s.Classify.red.Classify.comparisons_deduped
        s.Classify.red.Classify.suffix_solves s.Classify.red.Classify.full_solves
        s.Classify.red.Classify.replays_reused;
      match ra.Pipeline.evidence with
      | None -> ()
      | Some e -> add "  evidence:\n%s" (Evidence.render e))
    a.Pipeline.races;
  List.iter
    (fun (r, e) -> add "error %s: %s\n" (Fmt.str "%a" D.Report.pp_race r) e)
    a.Pipeline.errors;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* the mode matrix                                                     *)
(* ------------------------------------------------------------------ *)

type disagreement = {
  d_mode : string;  (** matrix mode that broke its contract *)
  d_expected : string;  (** base-mode fingerprint (or contract statement) *)
  d_got : string;  (** what the mode produced instead *)
}

type baseline_cell = {
  b_portend : Taxonomy.category;  (** pipeline verdict for the race *)
  b_tool : string;  (** baseline classifier name *)
  b_verdict : string;  (** that classifier's verdict *)
}

type outcome = {
  o_analysis : Pipeline.t;  (** the base-mode analysis *)
  o_disagreements : disagreement list;  (** broken bit-identity contracts *)
  o_baselines : baseline_cell list;  (** histogram material, not contracts *)
}

type opts = {
  seed : int;  (** recording seed for every mode *)
  jobs_alt : int;  (** the jobs=N matrix point (≥ 2 to be meaningful) *)
  cache_dir : string option;  (** enables the cold/warm matrix points *)
  client : Serve.Client.t option;  (** enables the serve matrix point *)
  check_baselines : bool;
}

let default_opts =
  { seed = 1; jobs_alt = 2; cache_dir = None; client = None; check_baselines = true }

let base_config =
  { Config.default with Config.jobs = 1; static_prefilter = false; enable_reduction = true }

let analyze ?(config = base_config) ~seed prog = Pipeline.analyze ~config ~seed prog

(* Compare one mode against the base fingerprint. *)
let check ~mode ~expected ~got acc =
  if String.equal expected got then acc
  else { d_mode = mode; d_expected = expected; d_got = got } :: acc

(* The serve matrix point: ship the program source through a live daemon
   and demand its reply lines equal the protocol rendering of the base
   analysis (summary compared without the server's wall time). *)
let check_serve (client : Serve.Client.t) ~(seed : int) ~(src : string) (base : Pipeline.t)
    acc =
  let id = Serve.Json.String "litmus" in
  let req =
    Serve.Json.Obj
      [ ("program", Serve.Json.String src); ("seed", Serve.Json.Int seed); ("id", id) ]
  in
  match Serve.Client.request client req with
  | exception e ->
    { d_mode = "serve";
      d_expected = "a protocol reply";
      d_got = Printf.sprintf "client error: %s" (Printexc.to_string e)
    }
    :: acc
  | lines ->
    let strip = Serve.Protocol.strip_member "time_s" in
    let got = String.concat "\n" (List.map (fun j -> Serve.Json.to_string (strip j)) lines) in
    let expected =
      String.concat "\n"
        (List.map Serve.Json.to_string (Serve.Protocol.responses_of_analysis ~id base))
    in
    check ~mode:"serve" ~expected ~got acc

(* Baseline classifiers: histogram cells plus the static-coverage hard
   contract. *)
let baselines (prog : Portend_lang.Bytecode.t) (base : Pipeline.t) :
    baseline_cell list * disagreement list =
  if base.Pipeline.races = [] then ([], [])
  else begin
    let report = Portend_analysis.Static_report.analyze prog in
    let spin = Portend_lang.Static.spin_read_sites prog in
    let trace = base.Pipeline.record.V.Run.trace in
    let cells = ref [] and disags = ref [] in
    List.iter
      (fun ra ->
        let race = ra.Pipeline.race in
        let cat = ra.Pipeline.verdict.Taxonomy.category in
        let cell tool verdict = cells := { b_portend = cat; b_tool = tool; b_verdict = verdict } :: !cells in
        (* replay analyzer *)
        (match B.Replay_analyzer.classify prog trace race with
        | Ok v -> cell "replay" (B.Replay_analyzer.verdict_to_string v)
        | Error e -> cell "replay" ("error: " ^ e));
        (* ad-hoc-synchronization detector *)
        (match B.Adhoc_detector.classify prog trace race with
        | Ok v -> cell "adhoc" (B.Adhoc_detector.verdict_to_string v)
        | Error e -> cell "adhoc" ("error: " ^ e));
        (* heuristic pruner *)
        cell "heuristic" (B.Heuristic.verdict_to_string (B.Heuristic.classify prog race));
        (* static-only detector-as-classifier, with the coverage contract *)
        let sv = B.Static_only.classify_with report spin race in
        cell "static" (B.Static_only.verdict_to_string sv);
        if sv = B.Static_only.Not_candidate then
          disags :=
            { d_mode = "static-coverage";
              d_expected = "every dynamically detected race is a static candidate";
              d_got =
                Printf.sprintf "race %s not covered by the static report"
                  (Fmt.str "%a" D.Report.pp_race race)
            }
            :: !disags)
      base.Pipeline.races;
    (List.rev !cells, List.rev !disags)
  end

(** Run the whole matrix on one compiled program.  [src] is the program's
    concrete syntax (only needed when [opts.client] is set). *)
let run ?(opts = default_opts) ?(src = "") (prog : Portend_lang.Bytecode.t) : outcome =
  let seed = opts.seed in
  let base = analyze ~seed prog in
  let fp = fingerprint base in
  let fp_nored = fingerprint ~blank_red:true base in
  let acc = [] in
  (* no-reduction: identical modulo reduction counters *)
  let nored =
    analyze ~config:{ base_config with Config.enable_reduction = false } ~seed prog
  in
  let acc =
    check ~mode:"no-reduction" ~expected:fp_nored
      ~got:(fingerprint ~blank_red:true nored)
      acc
  in
  (* static prefilter: bit-identical *)
  let pre = analyze ~config:{ base_config with Config.static_prefilter = true } ~seed prog in
  let acc = check ~mode:"static-prefilter" ~expected:fp ~got:(fingerprint pre) acc in
  (* jobs=N: bit-identical *)
  let par = analyze ~config:{ base_config with Config.jobs = opts.jobs_alt } ~seed prog in
  let acc =
    check ~mode:(Printf.sprintf "jobs=%d" opts.jobs_alt) ~expected:fp ~got:(fingerprint par) acc
  in
  (* cache cold then warm: both bit-identical to base *)
  let acc =
    match opts.cache_dir with
    | None -> acc
    | Some dir ->
      let cached = { base_config with Config.cache = true; cache_dir = dir } in
      let cold = analyze ~config:cached ~seed prog in
      let acc = check ~mode:"cache-cold" ~expected:fp ~got:(fingerprint cold) acc in
      let warm = analyze ~config:cached ~seed prog in
      check ~mode:"cache-warm" ~expected:fp ~got:(fingerprint warm) acc
  in
  (* serve: protocol lines equal the local rendering *)
  let acc =
    match opts.client with
    | None -> acc
    | Some client -> check_serve client ~seed ~src base acc
  in
  (* baselines: histogram + the static-coverage hard contract *)
  let cells, cov = if opts.check_baselines then baselines prog base else ([], []) in
  { o_analysis = base; o_disagreements = List.rev acc @ cov; o_baselines = cells }

(** [has_disagreement opts prog] — the shrinker's predicate: does any mode
    contract still break on this program?  (Baseline histograms are not
    contracts and are skipped; the static-coverage check is kept.) *)
let has_disagreement ?(opts = default_opts) ?(src = "") (prog : Portend_lang.Bytecode.t) : bool
    =
  (run ~opts ~src prog).o_disagreements <> []
