(** Canonicalization of litmus shapes: quotient the raw enumeration space
    by the two symmetries that do not change pipeline behaviour, so the
    corpus count is a count of genuinely distinct scenarios.

    - {e Thread symmetry}: worker threads are spawned identically and
      joined identically, so permuting thread bodies yields the same set of
      interleavings (recording seeds land differently, but the differential
      contracts are all per-(program, seed), and enumerating both orders
      would double-count the scenario).
    - {e Variable symmetry}: shared variables are interchangeable — all
      start at 0 and appear only through the op alphabet — so renaming
      them consistently yields an isomorphic program.

    The canonical representative is computed exactly: over all thread
    permutations (≤ 3! = 6), rename variables in order of first occurrence
    and take the lexicographically smallest encoding.  Dedup hashes the
    canonical encoding with {!Portend_util.Chash} (stable across runs, so
    corpus counts are reproducible), keeping the encodings per bucket so a
    hash collision can never silently drop a distinct program. *)

module H = Portend_util.Chash

(* Encoding: one byte per op (canonical op codes are < 256 by construction;
   asserted), threads separated by 0xff.  Lexicographic string order on
   encodings is the canonical order. *)
let encode_threads (threads : Shape.op list list) : string =
  let buf = Buffer.create 16 in
  List.iteri
    (fun i ops ->
      if i > 0 then Buffer.add_char buf '\xff';
      List.iter
        (fun op ->
          let c = Shape.op_code op in
          assert (c < 255);
          Buffer.add_char buf (Char.chr c))
        ops)
    threads;
  Buffer.contents buf

(* Rename variables by first occurrence across the (permuted) thread list,
   reading threads in order and ops left to right. *)
let rename_vars (threads : Shape.op list list) : Shape.op list list * int =
  let mapping = Hashtbl.create 4 in
  let next = ref 0 in
  let rename v =
    match Hashtbl.find_opt mapping v with
    | Some v' -> v'
    | None ->
      let v' = !next in
      incr next;
      Hashtbl.add mapping v v';
      v'
  in
  let threads' =
    List.map
      (List.map (fun op ->
           match Shape.op_var op with
           | None -> op
           | Some v -> Shape.with_var op (rename v)))
      threads
  in
  (threads', !next)

(* All permutations of a short list (≤ 3 threads ⇒ ≤ 6).  Elements are
   removed by position, never by equality: duplicate thread bodies are
   common (and OCaml shares structurally equal constants, so even physical
   comparison would conflate them). *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat
      (List.mapi
         (fun i x ->
           let rest = List.filteri (fun j _ -> j <> i) l in
           List.map (fun p -> x :: p) (permutations rest))
         l)

(** The canonical representative of a shape's symmetry class, plus its
    encoding.  Idempotent: [canonical (fst (canonical t)) = canonical t]. *)
let canonical (t : Shape.t) : Shape.t * string =
  let candidates =
    List.map
      (fun threads ->
        let threads', n_vars = rename_vars threads in
        (encode_threads threads', threads', n_vars))
      (permutations t.Shape.threads)
  in
  match candidates with
  | [] -> invalid_arg "canonical: empty shape"
  | first :: rest ->
    let enc, threads, n_vars =
      List.fold_left
        (fun ((be, _, _) as best) ((e, _, _) as cand) -> if e < be then cand else best)
        first rest
    in
    ({ Shape.threads; n_vars }, enc)

(** Stable content hash of the canonical encoding; the program's identity
    across runs and the basis of promoted regression names. *)
let chash (t : Shape.t) : int =
  let _, enc = canonical t in
  H.string H.seed enc

(** Stable short name for a canonical shape: ["lit_<16-hex-chash>"]. *)
let name (t : Shape.t) : string = "lit_" ^ H.to_hex (chash t)

(** {1 Dedup table} *)

(** Buckets keyed by {!H.t} of the encoding, each holding the encodings it
    has seen: exact dedup, hash-accelerated, collision-safe. *)
type table = {
  buckets : (int, string list) Hashtbl.t;
  mutable distinct : int;
  mutable total : int;
}

let create_table () = { buckets = Hashtbl.create 1024; distinct = 0; total = 0 }

(** [add table t] canonicalizes [t]; returns [Some canonical_shape] the
    first time this symmetry class is seen, [None] for duplicates. *)
let add (tbl : table) (t : Shape.t) : Shape.t option =
  let canon, enc = canonical t in
  tbl.total <- tbl.total + 1;
  let key = H.string H.seed enc in
  let seen = Option.value ~default:[] (Hashtbl.find_opt tbl.buckets key) in
  if List.mem enc seen then None
  else begin
    Hashtbl.replace tbl.buckets key (enc :: seen);
    tbl.distinct <- tbl.distinct + 1;
    Some canon
  end

let distinct tbl = tbl.distinct
let total tbl = tbl.total

(** Raw-to-canonical ratio observed so far (≥ 1 once anything was added). *)
let dedup_ratio tbl =
  if tbl.distinct = 0 then 0.0 else float_of_int tbl.total /. float_of_int tbl.distinct
