(** Systematic, deterministic enumeration of litmus shapes: by total size,
    then thread split, then lexicographic op order; canonicalized and
    deduped on the fly.  The budget counts canonical programs. *)

type limits = {
  max_threads : int;
  max_ops : int;
  n_vars : int;
  max_total : int;
  include_stuck : bool;
}

(** 2–3 threads, ≤ 3 ops each, ≤ 6 ops total, 2 variables, stuck shapes
    filtered. *)
val default_limits : limits

(** The op alphabet usable under the limits, in enumeration order. *)
val alphabet : limits -> Shape.op list

(** [iter limits ~budget f]: stream canonical shapes to [f]; returns the
    dedup table and whether the limited space was exhausted (as opposed to
    the budget running out). *)
val iter : limits -> budget:int -> (Shape.t -> unit) -> Canon.table * bool

(** [run limits ~budget]: {!iter} into a list. *)
val run : limits -> budget:int -> Shape.t list * Canon.table * bool
