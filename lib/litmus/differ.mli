(** Differential testing of the classification pipeline against itself:
    one program, every mode of the contracted mode matrix (no-reduction,
    static prefilter, jobs=N, cache cold/warm, serve), plus baseline
    classifier histograms.  Any broken bit-identity contract surfaces as a
    {!disagreement}. *)

open Portend_core
module Serve = Portend_serve

(** Stable rendering of everything observable about an analysis except
    wall-clock times.  [blank_red] erases the reduction work counters (the
    only field the no-reduction contract legitimately changes). *)
val fingerprint : ?blank_red:bool -> Pipeline.t -> string

type disagreement = {
  d_mode : string;  (** matrix mode that broke its contract *)
  d_expected : string;  (** base-mode fingerprint (or contract statement) *)
  d_got : string;  (** what the mode produced instead *)
}

type baseline_cell = {
  b_portend : Taxonomy.category;  (** pipeline verdict for the race *)
  b_tool : string;  (** baseline classifier name *)
  b_verdict : string;  (** that classifier's verdict *)
}

type outcome = {
  o_analysis : Pipeline.t;  (** the base-mode analysis *)
  o_disagreements : disagreement list;  (** broken bit-identity contracts *)
  o_baselines : baseline_cell list;  (** histogram material, not contracts *)
}

type opts = {
  seed : int;  (** recording seed for every mode *)
  jobs_alt : int;  (** the jobs=N matrix point (≥ 2 to be meaningful) *)
  cache_dir : string option;  (** enables the cold/warm matrix points *)
  client : Serve.Client.t option;  (** enables the serve matrix point *)
  check_baselines : bool;
}

(** seed 1, jobs_alt 2, no cache, no serve, baselines on. *)
val default_opts : opts

(** The base matrix point: jobs=1, no prefilter, reductions on, no cache. *)
val base_config : Config.t

(** Run the whole matrix on one compiled program.  [src] is the program's
    concrete syntax (only needed when [opts.client] is set). *)
val run : ?opts:opts -> ?src:string -> Portend_lang.Bytecode.t -> outcome

(** The shrinker's predicate: does any mode contract break on this
    program? *)
val has_disagreement : ?opts:opts -> ?src:string -> Portend_lang.Bytecode.t -> bool
