(** The litmus campaign driver: enumerate shapes, differential-test each
    under the mode matrix (plus the printer/parser round trip), histogram
    verdicts and baselines, delta-debug and optionally promote any
    disagreement as a named [.rl] regression. *)

type opts = {
  budget : int;  (** canonical programs to classify *)
  limits : Enum.limits;
  seed : int;  (** recording seed (all modes) *)
  jobs_alt : int;  (** jobs=N matrix point *)
  serve_stride : int;  (** serve-check every Nth program; 0 disables *)
  cache_stride : int;  (** cache-check every Nth program; 0 disables *)
  promote_dir : string option;  (** write minimized [.rl] regressions here *)
  check_baselines : bool;
  progress : (int -> unit) option;  (** called with the running count *)
}

(** budget 300, default limits, seed 1, jobs_alt 2, serve stride 16,
    cache stride 64, baselines on, no promotion. *)
val default_opts : opts

type regression = {
  r_name : string;  (** stable content-hash name, [lit_<hex>] *)
  r_shape : Shape.t;  (** minimized canonical shape *)
  r_src : string;  (** its concrete syntax *)
  r_modes : string list;  (** matrix modes still disagreeing after shrink *)
}

type report = {
  enumerated : int;  (** canonical programs classified *)
  raw : int;  (** shapes generated before symmetry dedup *)
  dedup_ratio : float;  (** raw shapes per canonical class (≥ 1) *)
  exhausted : bool;  (** space within limits fully covered *)
  verdict_hist : (string * int) list;
  stop_hist : (string * int) list;
  baseline_hist : (string * int) list;
  disagreements : regression list;  (** minimized, deduped by name *)
  elapsed_s : float;
  programs_per_s : float;
}

(** Run a campaign.  Owns a scratch cache directory and (when serve is
    enabled) an in-process daemon for its duration; both are torn down on
    return, including on exceptions. *)
val run : ?opts:opts -> unit -> report

val pp_report : Format.formatter -> report -> unit
