(** Delta-debugging shrinker for litmus disagreements.

    Given a shape on which some differential contract breaks and a
    predicate [keep] ("the disagreement still reproduces"), greedily apply
    the smallest-first candidate reductions until none applies:

    - drop a whole thread;
    - drop one op from one thread;
    - simplify one op strictly down the complexity order
      (locked/atomic form → plain form, read-modify-write → plain write,
      semaphore/barrier op → removed — already covered by op-drop);
    - merge variables (rewrite every [v1] op to [v0]).

    Every candidate is strictly smaller under a well-founded measure
    (total ops, then summed op complexity, then variable count), so the
    loop terminates; each accepted candidate is canonicalized so the
    result is the named, deduplicatable regression form.  The predicate
    runs the full mode matrix, so shrinking costs candidates × matrix
    runs — acceptable because disagreeing programs are rare and small. *)

let op_weight = function
  | Shape.Write _ | Shape.Read _ -> 1
  | Shape.Incr _ -> 2
  | Shape.SemPost | Shape.SemWait | Shape.Barrier -> 2
  | Shape.AtomicIncr _ -> 3
  | Shape.LockedWrite _ -> 3
  | Shape.LockedIncr _ -> 4

let measure (t : Shape.t) : int * int * int =
  let ops = Shape.size t in
  let weight =
    List.fold_left (fun acc th -> List.fold_left (fun a o -> a + op_weight o) acc th) 0
      t.Shape.threads
  in
  let vars =
    List.length
      (List.sort_uniq compare (List.concat_map (List.filter_map Shape.op_var) t.Shape.threads))
  in
  (ops, weight, vars)

(* Strictly-simpler single-op rewrites. *)
let simpler_ops = function
  | Shape.LockedIncr v -> [ Shape.LockedWrite v; Shape.Incr v ]
  | Shape.AtomicIncr v -> [ Shape.Incr v ]
  | Shape.LockedWrite v -> [ Shape.Write v ]
  | Shape.Incr v -> [ Shape.Write v ]
  | Shape.Write _ | Shape.Read _ | Shape.SemPost | Shape.SemWait | Shape.Barrier -> []

(* All one-step reduction candidates, raw (not yet canonical). *)
let candidates (t : Shape.t) : Shape.t list =
  let threads = t.Shape.threads in
  let drop_thread =
    if List.length threads <= 1 then []
    else
      List.mapi
        (fun i _ ->
          { t with Shape.threads = List.filteri (fun j _ -> j <> i) threads })
        threads
  in
  let drop_op =
    List.concat
      (List.mapi
         (fun i ops ->
           if List.length ops <= 1 && List.length threads > 1 then
             (* dropping the last op of a thread = dropping the thread,
                already covered above *)
             []
           else
             List.mapi
               (fun j _ ->
                 let ops' = List.filteri (fun k _ -> k <> j) ops in
                 { t with
                   Shape.threads = List.mapi (fun k th -> if k = i then ops' else th) threads
                 })
               ops)
         threads)
  in
  let simplify_op =
    List.concat
      (List.mapi
         (fun i ops ->
           List.concat
             (List.mapi
                (fun j op ->
                  List.map
                    (fun op' ->
                      { t with
                        Shape.threads =
                          List.mapi
                            (fun k th ->
                              if k = i then List.mapi (fun l o -> if l = j then op' else o) th
                              else th)
                            threads
                      })
                    (simpler_ops op))
                ops))
         threads)
  in
  let merge_vars =
    let vars = List.sort_uniq compare (List.concat_map (List.filter_map Shape.op_var) threads) in
    if List.length vars <= 1 then []
    else
      [ { t with
          Shape.threads =
            List.map
              (List.map (fun op ->
                   match Shape.op_var op with
                   | Some _ -> Shape.with_var op 0
                   | None -> op))
              threads
        }
      ]
  in
  drop_thread @ drop_op @ simplify_op @ merge_vars

(** Greedy fixpoint: repeatedly take the first strictly-smaller canonical
    candidate that still satisfies [keep].  Returns the canonical minimal
    form (the input itself, canonicalized, if nothing shrinks). *)
let shrink ~(keep : Shape.t -> bool) (t : Shape.t) : Shape.t =
  let rec go t =
    let m = measure t in
    let next =
      List.find_opt
        (fun cand -> measure cand < m && keep cand)
        (List.map (fun c -> fst (Canon.canonical c)) (candidates t))
    in
    match next with
    | Some smaller -> go smaller
    | None -> fst (Canon.canonical t)
  in
  go (fst (Canon.canonical t))
