(** Canonicalization of litmus shapes: thread-permutation and
    variable-renaming symmetry reduction with exact, hash-accelerated
    dedup.  See the implementation header for the symmetry argument. *)

(** Canonical representative of a shape's symmetry class, plus its byte
    encoding (lexicographically smallest over all thread permutations with
    variables renamed by first occurrence).  Idempotent. *)
val canonical : Shape.t -> Shape.t * string

(** Stable {!Portend_util.Chash} of the canonical encoding. *)
val chash : Shape.t -> int

(** ["lit_<16-hex-chash>"] — the shape's stable name (promoted regression
    files and workloads use it). *)
val name : Shape.t -> string

(** {1 Dedup table} *)

type table

val create_table : unit -> table

(** Canonicalize and record; [Some canon] if this symmetry class is new,
    [None] for a duplicate.  Collision-safe: full encodings are compared
    within each hash bucket. *)
val add : table -> Shape.t -> Shape.t option

val distinct : table -> int
val total : table -> int
val dedup_ratio : table -> float
