(** The litmus shape grammar: a small, finite op alphabet over shared
    variables and the full synchronization surface, from which whole
    Racelang programs are synthesized.

    A litmus program is [{ threads; n_vars }]: 2–3 worker threads, each a
    short straight-line sequence of {!op}s over canonical shared variables
    [v0]/[v1] and a fixed set of synchronization objects (one mutex [m],
    one handoff semaphore [h] initialized to 0, one barrier [b] sized to
    the thread count).  [main] spawns every worker and joins them all.

    The alphabet deliberately spans every classification-relevant access
    shape: plain writes and read-modify-writes (racy), reads that reach the
    program output (so orderings can differ observably), mutex- and
    atomic-protected variants of each (race-free by mutual exclusion),
    semaphore post/wait handoffs (cross-thread HB edges — single-ordering
    territory), and barrier arrivals (phase ordering).  Programs are
    synthesized in the {e parser-normal} AST spelling ([Local] reads, bare
    [Assign] writes — what {!Portend_lang.Parser} itself produces), so
    [parse (pp p) = p] holds structurally for the whole corpus. *)

module Ast = Portend_lang.Ast
module E = Portend_solver.Expr

type var = int  (** 0-based index into the canonical shared variables *)

type op =
  | Write of var  (** [vN = 1;] — a plain racy store *)
  | Incr of var  (** [vN = vN + 1;] — the classic racy read-modify-write *)
  | Read of var  (** [output vN;] — a load that reaches program output *)
  | LockedWrite of var  (** [lock m; vN = 1; unlock m] *)
  | LockedIncr of var  (** [lock m; vN = vN + 1; unlock m] *)
  | AtomicIncr of var  (** [atomic { vN = vN + 1; }] *)
  | SemPost  (** [sem_post h;] — the producer half of a handoff *)
  | SemWait  (** [sem_wait h;] — the consumer half (may block forever) *)
  | Barrier  (** [barrier_wait b;] *)

type t = {
  threads : op list list;  (** one op sequence per worker thread *)
  n_vars : int;  (** shared variables the ops may reference *)
}

(* --- the enumeration alphabet --- *)

(* Kinds in a fixed order; the integer code of an op is the basis of the
   canonical encoding ({!Canon}) and of the enumeration order ({!Enum}). *)
let var_kinds = 6 (* Write .. AtomicIncr take a variable *)

let op_code = function
  | Write v -> (0 * 2) + v
  | Incr v -> (1 * 2) + v
  | Read v -> (2 * 2) + v
  | LockedWrite v -> (3 * 2) + v
  | LockedIncr v -> (4 * 2) + v
  | AtomicIncr v -> (5 * 2) + v
  | SemPost -> var_kinds * 2
  | SemWait -> (var_kinds * 2) + 1
  | Barrier -> (var_kinds * 2) + 2

(** Decode an op code; inverse of {!op_code} for codes < {!alphabet_size}. *)
let op_of_code c =
  if c < var_kinds * 2 then
    let v = c mod 2 and k = c / 2 in
    match k with
    | 0 -> Write v
    | 1 -> Incr v
    | 2 -> Read v
    | 3 -> LockedWrite v
    | 4 -> LockedIncr v
    | _ -> AtomicIncr v
  else
    match c - (var_kinds * 2) with
    | 0 -> SemPost
    | 1 -> SemWait
    | _ -> Barrier

let alphabet_size = (var_kinds * 2) + 3

let op_var = function
  | Write v | Incr v | Read v | LockedWrite v | LockedIncr v | AtomicIncr v -> Some v
  | SemPost | SemWait | Barrier -> None

(** Rebuild an op on a different variable (identity for var-less ops). *)
let with_var op v =
  match op with
  | Write _ -> Write v
  | Incr _ -> Incr v
  | Read _ -> Read v
  | LockedWrite _ -> LockedWrite v
  | LockedIncr _ -> LockedIncr v
  | AtomicIncr _ -> AtomicIncr v
  | (SemPost | SemWait | Barrier) as o -> o

let op_to_string = function
  | Write v -> Printf.sprintf "W v%d" v
  | Incr v -> Printf.sprintf "I v%d" v
  | Read v -> Printf.sprintf "R v%d" v
  | LockedWrite v -> Printf.sprintf "LW v%d" v
  | LockedIncr v -> Printf.sprintf "LI v%d" v
  | AtomicIncr v -> Printf.sprintf "AI v%d" v
  | SemPost -> "P"
  | SemWait -> "Q"
  | Barrier -> "B"

let to_string (t : t) =
  String.concat " || "
    (List.map (fun ops -> String.concat "; " (List.map op_to_string ops)) t.threads)

(* --- structural accessors --- *)

let size (t : t) = List.fold_left (fun acc ops -> acc + List.length ops) 0 t.threads
let n_threads (t : t) = List.length t.threads

let uses_mutex (t : t) =
  List.exists (List.exists (function LockedWrite _ | LockedIncr _ -> true | _ -> false))
    t.threads

let uses_sem (t : t) =
  List.exists (List.exists (function SemPost | SemWait -> true | _ -> false)) t.threads

let uses_barrier (t : t) =
  List.exists (List.exists (function Barrier -> true | _ -> false)) t.threads

let count p (t : t) =
  List.fold_left
    (fun acc ops -> acc + List.length (List.filter p ops))
    0 t.threads

(** Shape admissibility: the enumerator's default filter.  Programs where
    a synchronization op can {e never} complete are still legal inputs to
    the pipeline (a deadlock classifies as a crash consequence), but they
    crowd the corpus with equivalent stuck shapes, so by default we require
    (a) at least as many posts as waits on the handoff semaphore, and
    (b) every thread arrives at the barrier equally often (or never) —
    otherwise some barrier wait can never be released regardless of
    schedule.  Both checks are per-shape, schedule-independent. *)
let admissible (t : t) =
  let posts = count (function SemPost -> true | _ -> false) t in
  let waits = count (function SemWait -> true | _ -> false) t in
  let barrier_counts =
    List.map
      (fun ops -> List.length (List.filter (function Barrier -> true | _ -> false) ops))
      t.threads
  in
  posts >= waits
  && (match barrier_counts with
     | [] -> true
     | b0 :: rest -> List.for_all (fun b -> b = b0) rest)

(* --- program synthesis --- *)

let var_name v = Printf.sprintf "v%d" v
let mutex_name = "m"
let sem_name = "h"
let barrier_name = "b"

(* Parser-normal statements: reads are [Local], global writes are bare
   [Assign] (the compiler resolves both), so the synthesized AST is exactly
   what parsing its own pretty-print yields. *)
let stmts_of_op = function
  | Write v -> [ Ast.Assign (var_name v, Ast.Int 1) ]
  | Incr v ->
    [ Ast.Assign (var_name v, Ast.Binop (E.Add, Ast.Local (var_name v), Ast.Int 1)) ]
  | Read v -> [ Ast.Output [ Ast.Local (var_name v) ] ]
  | LockedWrite v ->
    [ Ast.Lock mutex_name; Ast.Assign (var_name v, Ast.Int 1); Ast.Unlock mutex_name ]
  | LockedIncr v ->
    [ Ast.Lock mutex_name;
      Ast.Assign (var_name v, Ast.Binop (E.Add, Ast.Local (var_name v), Ast.Int 1));
      Ast.Unlock mutex_name
    ]
  | AtomicIncr v ->
    [ Ast.Atomic
        [ Ast.Assign (var_name v, Ast.Binop (E.Add, Ast.Local (var_name v), Ast.Int 1)) ]
    ]
  | SemPost -> [ Ast.SemPost sem_name ]
  | SemWait -> [ Ast.SemWait sem_name ]
  | Barrier -> [ Ast.BarrierWait barrier_name ]

(** Synthesize the whole Racelang program.  Deterministic: the same shape
    always yields the same AST, so shape identity is program identity. *)
let to_program ?(name = "litmus") (t : t) : Ast.program =
  let vars_used =
    List.sort_uniq compare (List.concat_map (List.filter_map op_var) t.threads)
  in
  let funcs =
    List.mapi
      (fun i ops ->
        { Ast.fname = Printf.sprintf "w%d" (i + 1);
          params = [];
          body = List.concat_map stmts_of_op ops
        })
      t.threads
  in
  let spawns =
    List.mapi
      (fun i f -> Ast.Spawn (Some (Printf.sprintf "t%d" (i + 1)), f.Ast.fname, []))
      funcs
  in
  let joins =
    List.mapi (fun i _ -> Ast.Join (Ast.Local (Printf.sprintf "t%d" (i + 1)))) funcs
  in
  (* Observe the final shared state so write/write orderings can surface as
     output differences, not just transient state. *)
  let finale =
    if vars_used = [] then []
    else [ Ast.Output (List.map (fun v -> Ast.Local (var_name v)) vars_used) ]
  in
  { Ast.pname = name;
    globals = List.map (fun v -> (var_name v, 0)) vars_used;
    arrays = [];
    mutexes = (if uses_mutex t then [ mutex_name ] else []);
    conds = [];
    barriers = (if uses_barrier t then [ (barrier_name, n_threads t) ] else []);
    sems = (if uses_sem t then [ (sem_name, 0) ] else []);
    funcs = funcs @ [ { Ast.fname = "main"; params = []; body = spawns @ joins @ finale } ]
  }
