(** The litmus shape grammar: the finite op alphabet and the synthesis of
    whole Racelang programs from thread-wise op sequences.  See the
    implementation header for the design rationale. *)

type var = int

type op =
  | Write of var
  | Incr of var
  | Read of var
  | LockedWrite of var
  | LockedIncr of var
  | AtomicIncr of var
  | SemPost
  | SemWait
  | Barrier

type t = {
  threads : op list list;
  n_vars : int;
}

(** {1 The enumeration alphabet} *)

(** Total distinct op codes for 2 variables: 6 var-kinds × 2 + 3 sync ops. *)
val alphabet_size : int

(** Dense integer code of an op, in a fixed total order; the basis of
    canonical encodings and of the enumeration order. *)
val op_code : op -> int

(** Inverse of {!op_code} on [0 .. alphabet_size - 1]. *)
val op_of_code : int -> op

val op_var : op -> var option
val with_var : op -> var -> op

(** {1 Structure} *)

val size : t -> int
val n_threads : t -> int

(** Schedule-independent liveness filter: enough semaphore posts for the
    waits, and barrier arrival counts equal across threads. *)
val admissible : t -> bool

val op_to_string : op -> string
val to_string : t -> string

(** {1 Synthesis} *)

(** Canonical shared-variable name ([v0], [v1], ...). *)
val var_name : var -> string

(** Deterministically synthesize the Racelang program for a shape, in
    parser-normal AST spelling (so [Parser.parse_program
    (Pp.program_to_string p)] is structurally equal to [p]). *)
val to_program : ?name:string -> t -> Portend_lang.Ast.program
