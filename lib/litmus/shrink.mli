(** Delta-debugging shrinker over litmus shapes: greedily drops threads
    and ops, simplifies ops down a strict complexity order, and merges
    variables, keeping only candidates on which [keep] still holds.
    Terminates (well-founded measure); returns a canonical shape. *)

(** One-step reduction candidates for a shape, raw (not canonicalized).
    Exposed for unit tests. *)
val candidates : Shape.t -> Shape.t list

(** [shrink ~keep t] — minimal canonical shape still satisfying [keep].
    [keep] is typically {!Differ.has_disagreement} composed with
    {!Shape.to_program}. *)
val shrink : keep:(Shape.t -> bool) -> Shape.t -> Shape.t
