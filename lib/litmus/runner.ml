(** The litmus campaign driver: enumerate, classify under the mode
    matrix, histogram, minimize and (optionally) promote disagreements.

    The runner owns the expensive shared machinery the per-program
    {!Differ} deliberately does not: a scratch persistent-cache directory
    (for the cold/warm matrix points) and an in-process {!Portend_serve}
    daemon plus client (for the serve matrix point).  Both are striped —
    [cache_stride]/[serve_stride] pick every Nth program — because those
    two modes cost real I/O per program while the in-memory modes are
    nearly free; stride 1 means every program, 0 disables the mode.

    Each enumerated shape is printed ({!Portend_lang.Pp}) and re-read
    through the real frontend ({!Portend_lang.Parser}), so the campaign
    also differential-tests the printer/parser pair: a parse failure or a
    structural round-trip mismatch is reported as a ["frontend"] /
    ["round-trip"] disagreement like any broken matrix contract.

    Any program with a disagreement is delta-debugged ({!Shrink}) down to
    a minimal canonical shape that still disagrees, named by content hash
    ({!Canon.name}), and — with [promote_dir] set — written out as a
    [.rl] regression file ready to be checked in. *)

module Lang = Portend_lang

type opts = {
  budget : int;  (** canonical programs to classify *)
  limits : Enum.limits;
  seed : int;  (** recording seed (all modes) *)
  jobs_alt : int;  (** jobs=N matrix point *)
  serve_stride : int;  (** serve-check every Nth program; 0 disables *)
  cache_stride : int;  (** cache-check every Nth program; 0 disables *)
  promote_dir : string option;  (** write minimized [.rl] regressions here *)
  check_baselines : bool;
  progress : (int -> unit) option;  (** called with the running count *)
}

let default_opts =
  { budget = 300;
    limits = Enum.default_limits;
    seed = 1;
    jobs_alt = 2;
    serve_stride = 16;
    cache_stride = 64;
    promote_dir = None;
    check_baselines = true;
    progress = None
  }

type regression = {
  r_name : string;  (** stable content-hash name, [lit_<hex>] *)
  r_shape : Shape.t;  (** minimized canonical shape *)
  r_src : string;  (** its concrete syntax *)
  r_modes : string list;  (** matrix modes still disagreeing after shrink *)
}

type report = {
  enumerated : int;  (** canonical programs classified *)
  raw : int;  (** shapes generated before symmetry dedup *)
  dedup_ratio : float;  (** raw shapes per canonical class (≥ 1) *)
  exhausted : bool;  (** space within limits fully covered *)
  verdict_hist : (string * int) list;
  stop_hist : (string * int) list;
  baseline_hist : (string * int) list;
  disagreements : regression list;  (** minimized, deduped by name *)
  elapsed_s : float;
  programs_per_s : float;
}

(* ------------------------------------------------------------------ *)
(* small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let hist_to_list tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path

let scratch_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "portend-litmus-%d-%d" (Unix.getpid ()) (int_of_float (Unix.gettimeofday () *. 1000.) land 0xffffff))
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  dir

(* ------------------------------------------------------------------ *)
(* per-program check                                                   *)
(* ------------------------------------------------------------------ *)

(* Print + re-parse a shape through the real frontend; frontend breakage
   is itself a differential finding. *)
let frontend (t : Shape.t) :
    (string * Lang.Ast.program * Lang.Bytecode.t, Differ.disagreement) result =
  let ast = Shape.to_program t in
  let src = Lang.Pp.program_to_string ast in
  match Lang.Parser.parse_program src with
  | exception e ->
    Error
      { Differ.d_mode = "frontend";
        d_expected = "printed program parses";
        d_got = Printf.sprintf "%s on:\n%s" (Printexc.to_string e) src
      }
  | reparsed ->
    if reparsed <> ast then
      Error
        { Differ.d_mode = "round-trip";
          d_expected = "parse (print p) = p";
          d_got = Printf.sprintf "structural mismatch on:\n%s" src
        }
    else Ok (src, ast, Lang.Compile.compile reparsed)

(* Full differential check of one shape under [dopts]; returns the
   disagreements (possibly from the frontend) and, on success, the
   base-mode outcome. *)
let check_shape ~(dopts : Differ.opts) (t : Shape.t) :
    Differ.disagreement list * Differ.outcome option =
  match frontend t with
  | Error d -> ([ d ], None)
  | Ok (src, _ast, prog) ->
    let outcome = Differ.run ~opts:dopts ~src prog in
    (outcome.Differ.o_disagreements, Some outcome)

(* ------------------------------------------------------------------ *)
(* the campaign                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(opts = default_opts) () : report =
  let t0 = Portend_util.Clock.now_s () in
  let scratch = scratch_dir () in
  let server, client =
    if opts.serve_stride > 0 then begin
      let settings =
        { Portend_serve.Server.default_settings with
          Portend_serve.Server.config = Differ.base_config
        }
      in
      let addr = Portend_serve.Server.Unix_path (Filename.concat scratch "litmus.sock") in
      let server = Portend_serve.Server.start ~settings addr in
      let client = Portend_serve.Client.connect (Portend_serve.Server.address server) in
      (Some server, Some client)
    end
    else (None, None)
  in
  let finally () =
    Option.iter Portend_serve.Client.close client;
    Option.iter Portend_serve.Server.stop server;
    rm_rf scratch
  in
  Fun.protect ~finally @@ fun () ->
  let verdicts = Hashtbl.create 16 in
  let stops = Hashtbl.create 16 in
  let baselines = Hashtbl.create 64 in
  let regressions : (string, regression) Hashtbl.t = Hashtbl.create 4 in
  let count = ref 0 in
  (* [dopts n] — the matrix configuration for the [n]th program: serve
     and cache points are striped, everything else constant. *)
  let dopts n =
    let on stride = stride > 0 && n mod stride = 0 in
    { Differ.seed = opts.seed;
      jobs_alt = opts.jobs_alt;
      cache_dir =
        (if on opts.cache_stride then Some (Filename.concat scratch "cache") else None);
      client = (if on opts.serve_stride then client else None);
      check_baselines = opts.check_baselines
    }
  in
  (* Shrink predicate: re-runs the full per-program check (including the
     frontend) under the same matrix configuration.  Shrinking can strand
     a shape in inadmissible (stuck-sync) territory; those are not valid
     reproducers. *)
  let still_disagrees dopts t =
    Shape.admissible t && fst (check_shape ~dopts t) <> []
  in
  let minimize dopts t =
    let small = Shrink.shrink ~keep:(still_disagrees dopts) t in
    let modes, _ = check_shape ~dopts small in
    let modes = List.sort_uniq compare (List.map (fun d -> d.Differ.d_mode) modes) in
    let name = Canon.name small in
    if not (Hashtbl.mem regressions name) then begin
      let src = Lang.Pp.program_to_string (Shape.to_program ~name small) in
      Hashtbl.replace regressions name { r_name = name; r_shape = small; r_src = src; r_modes = modes };
      match opts.promote_dir with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let oc = open_out (Filename.concat dir (name ^ ".rl")) in
        output_string oc src;
        close_out oc
    end
  in
  let table, exhausted =
    Enum.iter opts.limits ~budget:opts.budget (fun shape ->
        incr count;
        let dopts = dopts !count in
        let disags, outcome = check_shape ~dopts shape in
        (match outcome with
        | None -> ()
        | Some o ->
          let a = o.Differ.o_analysis in
          bump stops (Portend_vm.Run.stop_to_string a.Portend_core.Pipeline.record.Portend_vm.Run.stop);
          if a.Portend_core.Pipeline.races = [] then bump verdicts "no_race"
          else
            List.iter
              (fun ra ->
                bump verdicts
                  (Portend_core.Taxonomy.category_to_string
                     ra.Portend_core.Pipeline.verdict.Portend_core.Taxonomy.category))
              a.Portend_core.Pipeline.races;
          List.iter
            (fun c ->
              bump baselines
                (Printf.sprintf "%s:%s|portend:%s" c.Differ.b_tool c.Differ.b_verdict
                   (Portend_core.Taxonomy.category_to_string c.Differ.b_portend)))
            o.Differ.o_baselines);
        if disags <> [] then minimize dopts shape;
        Option.iter (fun f -> f !count) opts.progress)
  in
  let elapsed = Portend_util.Clock.now_s () -. t0 in
  { enumerated = !count;
    raw = Canon.total table;
    dedup_ratio = Canon.dedup_ratio table;
    exhausted;
    verdict_hist = hist_to_list verdicts;
    stop_hist = hist_to_list stops;
    baseline_hist = hist_to_list baselines;
    disagreements =
      List.sort compare (Hashtbl.fold (fun _ r acc -> r :: acc) regressions []);
    elapsed_s = elapsed;
    programs_per_s = (if elapsed > 0. then float_of_int !count /. elapsed else 0.)
  }

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_report ppf (r : report) =
  let hist name h =
    Fmt.pf ppf "%s:@." name;
    List.iter (fun (k, v) -> Fmt.pf ppf "  %-40s %6d@." k v) h
  in
  Fmt.pf ppf "litmus campaign: %d canonical programs (%d raw, dedup %.2f, %s)@." r.enumerated
    r.raw r.dedup_ratio
    (if r.exhausted then "space exhausted" else "budget reached");
  Fmt.pf ppf "elapsed %.2fs (%.1f programs/s)@." r.elapsed_s r.programs_per_s;
  hist "verdicts" r.verdict_hist;
  hist "stops" r.stop_hist;
  if r.baseline_hist <> [] then hist "baseline comparison" r.baseline_hist;
  if r.disagreements = [] then Fmt.pf ppf "disagreements: none@."
  else begin
    Fmt.pf ppf "disagreements: %d (minimized)@." (List.length r.disagreements);
    List.iter
      (fun g ->
        Fmt.pf ppf "  %s  modes=[%s]@.%s@." g.r_name (String.concat "," g.r_modes) g.r_src)
      r.disagreements
  end
