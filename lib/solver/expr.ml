(** Symbolic integer expressions.

    Everything in Racelang is an integer; booleans are encoded as 0/1 and the
    comparison/logical operators produce 0/1.  A symbolic expression is the
    value of a computation over symbolic program inputs ([Var]); the VM mixes
    these freely with concrete values, and the Portend analyses ship them to
    {!Solver} as path conditions and symbolic outputs. *)

type unop =
  | Neg  (** arithmetic negation *)
  | Lnot  (** logical not: 0 becomes 1, everything else 0 *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncated division; division by zero is a VM crash *)
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** logical and over truthiness, yields 0/1 *)
  | Lor

type t =
  | Const of int
  | Var of string  (** a symbolic program input *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t  (** if-then-else on the truthiness of the condition *)

let bool_of_int n = n <> 0
let int_of_bool b = if b then 1 else 0

let apply_unop op n = match op with Neg -> -n | Lnot -> int_of_bool (n = 0)

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise Division_by_zero else a / b
  | Rem -> if b = 0 then raise Division_by_zero else a mod b
  | Eq -> int_of_bool (a = b)
  | Ne -> int_of_bool (a <> b)
  | Lt -> int_of_bool (a < b)
  | Le -> int_of_bool (a <= b)
  | Gt -> int_of_bool (a > b)
  | Ge -> int_of_bool (a >= b)
  | Land -> int_of_bool (bool_of_int a && bool_of_int b)
  | Lor -> int_of_bool (bool_of_int a || bool_of_int b)

(** [eval lookup e] evaluates [e] with [lookup] supplying values for symbolic
    variables.  Raises [Division_by_zero] or [Not_found] accordingly. *)
let rec eval lookup = function
  | Const n -> n
  | Var v -> lookup v
  | Unop (op, e) -> apply_unop op (eval lookup e)
  | Binop (op, a, b) -> apply_binop op (eval lookup a) (eval lookup b)
  | Ite (c, t, f) -> if bool_of_int (eval lookup c) then eval lookup t else eval lookup f

let rec free_vars acc = function
  | Const _ -> acc
  | Var v -> Portend_util.Maps.Sset.add v acc
  | Unop (_, e) -> free_vars acc e
  | Binop (_, a, b) -> free_vars (free_vars acc a) b
  | Ite (c, t, f) -> free_vars (free_vars (free_vars acc c) t) f

let vars e = free_vars Portend_util.Maps.Sset.empty e

let rec subst env = function
  | Const n -> Const n
  | Var v -> ( match Portend_util.Maps.Smap.find_opt v env with Some e -> e | None -> Var v)
  | Unop (op, e) -> Unop (op, subst env e)
  | Binop (op, a, b) -> Binop (op, subst env a, subst env b)
  | Ite (c, t, f) -> Ite (subst env c, subst env t, subst env f)

let is_const = function Const _ -> true | Var _ | Unop _ | Binop _ | Ite _ -> false

let rec size = function
  | Const _ | Var _ -> 1
  | Unop (_, e) -> 1 + size e
  | Binop (_, a, b) -> 1 + size a + size b
  | Ite (c, t, f) -> 1 + size c + size t + size f

let unop_to_string = function Neg -> "-" | Lnot -> "!"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"

let rec pp fmt = function
  | Const n -> Fmt.int fmt n
  | Var v -> Fmt.string fmt v
  | Unop (op, e) -> Fmt.pf fmt "%s%a" (unop_to_string op) pp_atom e
  | Binop (op, a, b) -> Fmt.pf fmt "(%a %s %a)" pp a (binop_to_string op) pp b
  | Ite (c, t, f) -> Fmt.pf fmt "(ite %a %a %a)" pp c pp t pp f

and pp_atom fmt e =
  match e with
  | Const _ | Var _ -> pp fmt e
  | Unop _ | Binop _ | Ite _ -> Fmt.pf fmt "(%a)" pp e

let to_string e = Fmt.str "%a" pp e

(* Structural equality is the derived one; expose a named version for
   readability at call sites. *)
let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

(* Structural hash over the whole tree.  [Hashtbl.hash] stops after ~10
   meaningful nodes, which collides badly on path conditions that share a
   long prefix; the solver's query cache needs the full structure mixed in. *)
let hash_combine h x = (h * 0x01000193) lxor x

let rec hash = function
  | Const n -> hash_combine 0x811c9dc5 n
  | Var v -> hash_combine 0x2f0e1d3b (Hashtbl.hash v)
  | Unop (op, e) -> hash_combine (hash_combine 0x47b6c2a1 (Hashtbl.hash op)) (hash e)
  | Binop (op, a, b) ->
    hash_combine (hash_combine (hash_combine 0x6b43a9b5 (Hashtbl.hash op)) (hash a)) (hash b)
  | Ite (c, t, f) -> hash_combine (hash_combine (hash_combine 0x1b873593 (hash c)) (hash t)) (hash f)
