(** Symbolic integer expressions.

    Everything in Racelang is an integer; booleans are encoded as 0/1.  A
    symbolic expression is the value of a computation over symbolic program
    inputs ({!Var}); the VM mixes these freely with concrete values, and the
    Portend analyses ship them to {!Solver} as path conditions and symbolic
    outputs. *)

type unop =
  | Neg  (** arithmetic negation *)
  | Lnot  (** logical not: 0 becomes 1, everything else 0 *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncated division; division by zero is a VM crash *)
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** logical and over truthiness, yields 0/1 *)
  | Lor

type t =
  | Const of int
  | Var of string  (** a symbolic program input *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t  (** if-then-else on the truthiness of the condition *)

val bool_of_int : int -> bool
val int_of_bool : bool -> int

val apply_unop : unop -> int -> int

(** Concrete semantics of a binary operator.  Raises [Division_by_zero]. *)
val apply_binop : binop -> int -> int -> int

(** [eval lookup e] evaluates [e], with [lookup] supplying symbolic variable
    values.  Raises [Division_by_zero] or [Not_found] accordingly. *)
val eval : (string -> int) -> t -> int

(** Accumulate the free variables of an expression into a set. *)
val free_vars :
  Portend_util.Maps.Sset.t -> t -> Portend_util.Maps.Sset.t

(** The free variables of an expression. *)
val vars : t -> Portend_util.Maps.Sset.t

(** Capture-free substitution of variables by expressions. *)
val subst : t Portend_util.Maps.Smap.t -> t -> t

val is_const : t -> bool

(** Node count. *)
val size : t -> int

val unop_to_string : unop -> string
val binop_to_string : binop -> string
val pp : Format.formatter -> t -> unit
val pp_atom : Format.formatter -> t -> unit
val to_string : t -> string

(** Structural equality. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** Structural hash over the whole tree (unlike [Hashtbl.hash], which stops
    after ~10 meaningful nodes); used by the solver's query cache. *)
val hash : t -> int

(** Mix a hash value into an accumulator (FNV-style). *)
val hash_combine : int -> int -> int
