(** A small SMT-style solver for quantifier-free integer constraints, built
    from interval constraint propagation (HC4 revise) plus branch-and-prune
    splitting.  It decides satisfiability of path conditions and produces
    models (concrete program inputs), which is exactly the service KLEE's
    solver provides to Portend in the paper:

    - multi-path analysis solves a path condition to obtain concrete inputs
      that drive the program to the race (§3.3), and
    - symbolic output comparison asks whether a concrete alternate output is
      allowed by the primary's symbolic output constraints (§3.3.1). *)

open Portend_util.Maps

type model = int Smap.t

type result =
  | Sat of model
  | Unsat
  | Unknown  (** search budget exhausted before a decision *)

(* Environment: an interval per symbolic variable. *)
type env = Interval.t Smap.t

(* Symbolic inputs carry their declared range; variables that somehow escape
   a declaration get this conservative default. *)
let default_range = Interval.{ lo = -65536; hi = 65535 }

let env_find v (env : env) = Smap.find_or ~default:default_range v env

let rec fwd env e : Interval.t =
  match e with
  | Expr.Const n -> Interval.singleton n
  | Expr.Var v -> env_find v env
  | Expr.Unop (Neg, a) -> Interval.neg (fwd env a)
  | Expr.Unop (Lnot, a) -> Interval.lnot (fwd env a)
  | Expr.Binop (op, a, b) -> (
    let fa = fwd env a and fb = fwd env b in
    match op with
    | Add -> Interval.add fa fb
    | Sub -> Interval.sub fa fb
    | Mul -> Interval.mul fa fb
    | Div -> Interval.div fa fb
    | Rem -> Interval.rem fa fb
    | Eq -> Interval.cmp_eq fa fb
    | Ne -> Interval.lnot (Interval.cmp_eq fa fb)
    | Lt -> Interval.cmp_lt fa fb
    | Le -> Interval.cmp_le fa fb
    | Gt -> Interval.cmp_lt fb fa
    | Ge -> Interval.cmp_le fb fa
    | Land -> Interval.land_ fa fb
    | Lor -> Interval.lor_ fa fb)
  | Expr.Ite (c, t, f) -> (
    let fc = fwd env c in
    if not (Interval.mem 0 fc) then fwd env t
    else if Interval.is_singleton fc && fc.Interval.lo = 0 then fwd env f
    else Interval.join (fwd env t) (fwd env f))

(* Backward narrowing: refine [env] under the requirement that [e] evaluates
   into [r].  [None] means the requirement is infeasible in this box. *)
let rec bwd env e (r : Interval.t) : env option =
  match Interval.meet (fwd env e) r with
  | None -> None
  | Some r -> (
    match e with
    | Expr.Const _ -> Some env
    | Expr.Var v -> (
      match Interval.meet (env_find v env) r with
      | None -> None
      | Some iv -> Some (Smap.add v iv env))
    | Expr.Unop (Neg, a) -> bwd env a (Interval.neg r)
    | Expr.Unop (Lnot, a) ->
      if Interval.is_singleton r then
        if r.Interval.lo = 1 then bwd env a (Interval.singleton 0) else bwd_truthy env a
      else Some env
    | Expr.Binop (op, a, b) -> bwd_binop env op a b r
    | Expr.Ite (c, t, f) -> (
      let fc = fwd env c in
      if not (Interval.mem 0 fc) then bwd env t r
      else if Interval.is_singleton fc && fc.Interval.lo = 0 then bwd env f r
      else
        (* Condition undecided: prune only if neither branch can hit [r]. *)
        let t_ok = Interval.meet (fwd env t) r <> None in
        let f_ok = Interval.meet (fwd env f) r <> None in
        match (t_ok, f_ok) with
        | false, false -> None
        | true, false -> Option.bind (bwd_truthy env c) (fun env -> bwd env t r)
        | false, true -> Option.bind (bwd_falsy env c) (fun env -> bwd env f r)
        | true, true -> Some env))

and bwd_binop env op a b r =
  let fa = fwd env a and fb = fwd env b in
  let narrow2 pair =
    match pair with
    | None -> None
    | Some (a', b') -> Option.bind (bwd env a a') (fun env -> bwd env b b')
  in
  let when_true pair_if_true pair_if_false =
    if Interval.is_singleton r then
      if r.Interval.lo = 1 then narrow2 (pair_if_true ())
      else if r.Interval.lo = 0 then narrow2 (pair_if_false ())
      else None
    else Some env
  in
  match op with
  | Expr.Add -> narrow2 (Interval.bwd_add fa fb r)
  | Expr.Sub -> narrow2 (Interval.bwd_sub fa fb r)
  | Expr.Mul -> narrow2 (Interval.bwd_mul fa fb r)
  | Expr.Div | Expr.Rem -> Some env
  | Expr.Eq -> when_true (fun () -> Interval.bwd_eq fa fb) (fun () -> Interval.bwd_ne fa fb)
  | Expr.Ne -> when_true (fun () -> Interval.bwd_ne fa fb) (fun () -> Interval.bwd_eq fa fb)
  | Expr.Lt -> when_true (fun () -> Interval.bwd_lt fa fb) (fun () -> Interval.bwd_le fb fa |> swap)
  | Expr.Le -> when_true (fun () -> Interval.bwd_le fa fb) (fun () -> Interval.bwd_lt fb fa |> swap)
  | Expr.Gt -> when_true (fun () -> Interval.bwd_lt fb fa |> swap) (fun () -> Interval.bwd_le fa fb)
  | Expr.Ge -> when_true (fun () -> Interval.bwd_le fb fa |> swap) (fun () -> Interval.bwd_lt fa fb)
  | Expr.Land ->
    if Interval.is_singleton r && r.Interval.lo = 1 then
      Option.bind (bwd_truthy env a) (fun env -> bwd_truthy env b)
    else if Interval.is_singleton r && r.Interval.lo = 0 then
      (* a && b = 0: narrow only when one side is definitely true. *)
      let ta = not (Interval.mem 0 fa) and tb = not (Interval.mem 0 fb) in
      if ta && tb then None
      else if ta then bwd_falsy env b
      else if tb then bwd_falsy env a
      else Some env
    else Some env
  | Expr.Lor ->
    if Interval.is_singleton r && r.Interval.lo = 0 then
      Option.bind (bwd_falsy env a) (fun env -> bwd_falsy env b)
    else if Interval.is_singleton r && r.Interval.lo = 1 then
      let za = Interval.is_singleton fa && fa.Interval.lo = 0 in
      let zb = Interval.is_singleton fb && fb.Interval.lo = 0 in
      if za && zb then None else if za then bwd_truthy env b else if zb then bwd_truthy env a
      else Some env
    else Some env

and swap = function Some (a, b) -> Some (b, a) | None -> None
and bwd_truthy env e = bwd env (Simplify.truthy e) (Interval.singleton 1)
and bwd_falsy env e = bwd env (Simplify.truthy e) (Interval.singleton 0)

(* Run narrowing over all constraints to a fixpoint (bounded). *)
let propagate env constraints =
  let rec go env rounds =
    if rounds = 0 then Some env
    else
      let step =
        List.fold_left
          (fun acc c -> Option.bind acc (fun env -> bwd_truthy env c))
          (Some env) constraints
      in
      match step with
      | None -> None
      | Some env' -> if Smap.equal (fun a b -> a = b) env env' then Some env' else go env' (rounds - 1)
  in
  go env 24

let check_model model constraints =
  let lookup v = match Smap.find_opt v model with Some n -> n | None -> 0 in
  let holds c = match Expr.eval lookup c with n -> n <> 0 | exception Division_by_zero -> false in
  List.for_all holds constraints

let candidate_points (iv : Interval.t) =
  let pts = [ iv.Interval.lo; iv.Interval.hi ] in
  let pts = if Interval.mem 0 iv then 0 :: pts else pts in
  let mid = (iv.Interval.lo + iv.Interval.hi) / 2 in
  List.sort_uniq compare (mid :: pts)

(* Try a few corner models of the current box before splitting. *)
let try_candidates env vars constraints =
  let rec build acc = function
    | [] -> [ acc ]
    | v :: rest ->
      let iv = env_find v env in
      (* Limit the cartesian blowup: one point per variable beyond the first
         two variables. *)
      let pts =
        if List.length acc <= 2 then candidate_points iv else [ iv.Interval.lo ]
      in
      List.concat_map (fun p -> build ((v, p) :: acc) rest) pts
  in
  let models = build [] vars |> List.map Smap.of_list in
  List.find_opt (fun m -> check_model m constraints) models

(* Solve a canonicalized conjunction (already simplified, truthy-normalized,
   sorted and deduplicated) from the initial box [env0].  This is the pure
   core the query cache memoizes: its answer depends only on
   ([constraints], [env0], [budget]). *)
let solve_core ~env0 ~budget (constraints : Expr.t list) : result =
  if List.exists (fun c -> c = Expr.Const 0) constraints then Unsat
  else
    let constraints = List.filter (fun c -> c <> Expr.Const 1) constraints in
    let vars =
      List.fold_left Expr.free_vars Portend_util.Maps.Sset.empty constraints
      |> Portend_util.Maps.Sset.elements
    in
    let steps = ref budget in
    let rec search env =
      if !steps <= 0 then Unknown
      else begin
        decr steps;
        match propagate env constraints with
        | None -> Unsat
        | Some env -> (
          match try_candidates env vars constraints with
          | Some m ->
            (* Complete the model with defaults for vars the constraints do
               not mention (callers may look them up). *)
            Sat m
          | None ->
            (* Split the widest variable. *)
            let widest =
              List.fold_left
                (fun best v ->
                  let iv = env_find v env in
                  match best with
                  | Some (_, w) when w >= Interval.width iv -> best
                  | _ when Interval.width iv = 0 -> best
                  | _ -> Some (v, Interval.width iv))
                None vars
            in
            match widest with
            | None -> Unsat (* every var is a singleton and candidates failed *)
            | Some (v, _) -> (
              let iv = env_find v env in
              let mid = (iv.Interval.lo + iv.Interval.hi) / 2 in
              let left = Smap.add v Interval.{ lo = iv.Interval.lo; hi = mid } env in
              let right = Smap.add v Interval.{ lo = mid + 1; hi = iv.Interval.hi } env in
              match search left with
              | Sat m -> Sat m
              | Unsat -> search right
              | Unknown -> ( match search right with Sat m -> Sat m | Unsat | Unknown -> Unknown)))
      end
    in
    if vars = [] then if constraints = [] then Sat Smap.empty else Unsat
    else search env0

(* ------------------------------------------------------------------ *)
(* Query cache (structural hashing + canonical ordering + memoization) *)
(* ------------------------------------------------------------------ *)

(* Classification fires the same queries over and over: forked sibling
   states re-check path conditions sharing long common prefixes, and every
   alternate execution of a primary re-asks the same output-comparison
   conjunction.  Two layers exploit this:

   - a full-result memo keyed on the {e canonical} query (constraints
     simplified, truthy-normalized, sorted, deduplicated; plus the initial
     box and budget), and
   - a prefix memo of narrowed interval environments keyed on the raw
     condition list, whose tails are structurally shared between sibling
     paths — a sibling only propagates its own suffix, and an empty box
     answers Unsat without touching the search at all.

   Both caches memoize pure functions, so hits can never change an answer;
   results are bit-for-bit identical whatever the cache mode or domain
   count.  Caches are either domain-local (zero contention) or shared
   behind a mutex; global [Atomic] counters feed {!stats} either way. *)

type stats = {
  queries : int;  (** calls to [solve] (and via it, [sat]) *)
  cache_hits : int;  (** full-result memo hits *)
  cache_misses : int;  (** full-result memo misses (computed and stored) *)
  prefix_unsat : int;  (** queries answered Unsat by prefix propagation *)
  evictions : int;  (** memo entries displaced by the CLOCK bound *)
}

let q_queries = Atomic.make 0
let q_hits = Atomic.make 0
let q_misses = Atomic.make 0
let q_prefix = Atomic.make 0
let q_evictions = Atomic.make 0

let stats () =
  { queries = Atomic.get q_queries;
    cache_hits = Atomic.get q_hits;
    cache_misses = Atomic.get q_misses;
    prefix_unsat = Atomic.get q_prefix;
    evictions = Atomic.get q_evictions
  }

let hit_rate (s : stats) =
  let looked = s.cache_hits + s.cache_misses in
  if looked = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int looked

type cache_mode =
  | Cache_off  (** every query solved from scratch *)
  | Cache_domain  (** one cache per domain: no contention, no sharing *)
  | Cache_shared  (** one mutex-guarded cache shared by all domains *)

let mode = Atomic.make Cache_domain
let set_cache_mode m = Atomic.set mode m
let cache_mode () = Atomic.get mode

(* The memo tables are size-bounded with CLOCK (second-chance) eviction:
   every entry carries a reference bit, set on hit; at capacity a hand
   sweeps the insertion ring, clearing set bits and evicting the first
   entry found clear.  Entries hit since the last sweep survive, so the
   hot per-race cluster of queries stays resident while one-shot queries
   age out — unlike the previous wholesale reset at the cap, which dumped
   the warm cluster along with the cold tail.  Evictions are counted in
   {!stats}. *)
let default_memo_cap = 32_768
let memo_cap_v = Atomic.make default_memo_cap
let memo_cap () = Atomic.get memo_cap_v

module Clock (T : Hashtbl.S) = struct
  type 'v t = {
    tbl : ('v * bool ref) T.t;
    ring : T.key option array;  (* one slot per live key *)
    mutable hand : int;
    cap : int;
  }

  let create cap =
    let cap = max 16 cap in
    { tbl = T.create (min cap 1024); ring = Array.make cap None; hand = 0; cap }

  let find_opt c k =
    match T.find_opt c.tbl k with
    | Some (v, bit) ->
      bit := true;
      Some v
    | None -> None

  (* Insert [k -> v], evicting one cold entry if the table is full.  The
     sweep terminates: after at most [cap] steps every reference bit has
     been cleared, so the next slot visited is a victim. *)
  let store ~on_evict c k v =
    if T.mem c.tbl k then T.replace c.tbl k (v, ref true)
    else begin
      let rec find_slot sweeps =
        match c.ring.(c.hand) with
        | None -> ()
        | Some k' -> (
          match T.find_opt c.tbl k' with
          | None -> () (* slot's entry already gone; reuse it *)
          | Some (_, bit) when !bit && sweeps <= c.cap ->
            bit := false;
            c.hand <- (c.hand + 1) mod c.cap;
            find_slot (sweeps + 1)
          | Some _ ->
            T.remove c.tbl k';
            on_evict ())
      in
      find_slot 0;
      c.ring.(c.hand) <- Some k;
      c.hand <- (c.hand + 1) mod c.cap;
      T.replace c.tbl k (v, ref false)
    end

  let reset c =
    T.reset c.tbl;
    Array.fill c.ring 0 c.cap None;
    c.hand <- 0

  let fold f c acc = T.fold (fun k (v, _) acc -> f k v acc) c.tbl acc
  let size c = T.length c.tbl
end

type key = {
  k_cs : Expr.t list;  (* canonical constraint list *)
  k_box : (string * int * int) list;  (* canonical initial box *)
  k_budget : int;
  k_hash : int;
}

module Key = struct
  type t = key

  let equal a b =
    a.k_hash = b.k_hash && a.k_budget = b.k_budget && a.k_box = b.k_box
    && List.equal Expr.equal a.k_cs b.k_cs

  let hash k = k.k_hash
end

module Ktbl = Hashtbl.Make (Key)

let key ~box ~budget cs =
  let h =
    List.fold_left
      (fun h c -> Expr.hash_combine h (Expr.hash c))
      (Expr.hash_combine (Hashtbl.hash box) budget)
      cs
  in
  { k_cs = cs; k_box = box; k_budget = budget; k_hash = h land max_int }

module Kclock = Clock (Ktbl)

let note_eviction () =
  Atomic.incr q_evictions;
  if Portend_telemetry.enabled () then Portend_telemetry.incr "solver.evictions"

let result_cache_key : result Kclock.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Kclock.create (memo_cap ()))

let shared_cache : result Kclock.t ref = ref (Kclock.create (memo_cap ()))
let shared_mutex = Mutex.create ()

let with_shared f =
  Mutex.lock shared_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock shared_mutex) f

let cache_find k = function
  | Cache_off -> None
  | Cache_domain -> Kclock.find_opt (Domain.DLS.get result_cache_key) k
  | Cache_shared -> with_shared (fun () -> Kclock.find_opt !shared_cache k)

let cache_store k v = function
  | Cache_off -> ()
  | Cache_domain -> Kclock.store ~on_evict:note_eviction (Domain.DLS.get result_cache_key) k v
  | Cache_shared ->
    with_shared (fun () -> Kclock.store ~on_evict:note_eviction !shared_cache k v)

(* --- prefix reuse ------------------------------------------------- *)

(* The narrowed box for a raw condition list: propagate each constraint once,
   oldest first (lists carry the newest constraint at the head).  A pure
   function of (list, initial box); [None] means the box emptied, i.e. the
   conjunction is infeasible.  The memoized variant shares work across
   sibling paths through their structurally-shared tails. *)

type pkey = { p_cs : Expr.t list; p_box : (string * int * int) list; p_hash : int }

module Pkey = struct
  type t = pkey

  let equal a b = a.p_hash = b.p_hash && a.p_box = b.p_box && List.equal Expr.equal a.p_cs b.p_cs
  let hash k = k.p_hash
end

module Ptbl = Hashtbl.Make (Pkey)

let pkey ~box cs =
  let h =
    List.fold_left (fun h c -> Expr.hash_combine h (Expr.hash c)) (Hashtbl.hash box) cs
  in
  { p_cs = cs; p_box = box; p_hash = h land max_int }

module Pclock = Clock (Ptbl)

let prefix_cache_key : env option Pclock.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Pclock.create (memo_cap ()))

let env_of_box box =
  List.fold_left (fun env (v, lo, hi) -> Smap.add v Interval.{ lo; hi } env) Smap.empty box

let narrow_one env c = bwd_truthy env (Simplify.simplify c)

let rec prefix_env_fresh ~box = function
  | [] -> Some (env_of_box box)
  | c :: rest -> Option.bind (prefix_env_fresh ~box rest) (fun env -> narrow_one env c)

let rec prefix_env_memo tbl ~box = function
  | [] -> Some (env_of_box box)
  | c :: rest as cs -> (
    let k = pkey ~box cs in
    match Pclock.find_opt tbl k with
    | Some v -> v
    | None ->
      let v = Option.bind (prefix_env_memo tbl ~box rest) (fun env -> narrow_one env c) in
      Pclock.store ~on_evict:note_eviction tbl k v;
      v)

let prefix_env ~box mode cs =
  match mode with
  | Cache_off -> prefix_env_fresh ~box cs
  | Cache_domain | Cache_shared -> prefix_env_memo (Domain.DLS.get prefix_cache_key) ~box cs

(* --- the cached entry point --------------------------------------- *)

(* Canonical form of a conjunction: simplify and truthy-normalize each
   conjunct, then sort and deduplicate.  Sorting makes permuted queries
   share a cache entry; [solve_core]'s propagation reaches the same fixpoint
   either way, and its search order depends only on the canonical form, so
   the answer is a pure function of the canonical key. *)
let canonicalize constraints =
  List.map (fun c -> Simplify.truthy (Simplify.simplify c)) constraints
  |> List.sort_uniq Expr.compare

(* Counter bumps mirror the atomics into the telemetry registry (when it is
   enabled), so the solver's workload shows up in the same per-phase summary
   and Chrome trace as the rest of the pipeline. *)
module Telemetry = Portend_telemetry

let count atomic name =
  Atomic.incr atomic;
  if Telemetry.enabled () then Telemetry.incr name

let solve ?(ranges = []) ?(budget = 4096) (constraints : Expr.t list) : result =
  count q_queries "solver.queries";
  let env0 = env_of_box ranges in
  (* Canonical box: duplicate range declarations collapse the same way the
     [env0] fold does (last wins), so equal boxes get equal keys. *)
  let box =
    Smap.bindings env0 |> List.map (fun (v, iv) -> (v, iv.Interval.lo, iv.Interval.hi))
  in
  let mode = cache_mode () in
  match prefix_env ~box mode constraints with
  | None ->
    count q_prefix "solver.prefix_unsat";
    Unsat
  | Some _ -> (
    let cs = canonicalize constraints in
    let k = key ~box ~budget cs in
    match cache_find k mode with
    | Some r ->
      count q_hits "solver.cache_hits";
      r
    | None ->
      let r = solve_core ~env0 ~budget cs in
      if mode <> Cache_off then count q_misses "solver.cache_misses";
      cache_store k r mode;
      (if Telemetry.enabled () then
         match r with
         | Sat _ -> Telemetry.incr "solver.solved.sat"
         | Unsat -> Telemetry.incr "solver.solved.unsat"
         | Unknown -> Telemetry.incr "solver.solved.unknown");
      r)

(* Zero the counters — and only the counters.  Counter lifetime used to be
   tangled with cache lifetime (one function dropped both), so any code that
   wanted per-run hit rates also silently dumped the warm cache, and
   vice-versa; the two resets are now explicit and independent.  A suite run
   that never calls [reset_stats] therefore reports cumulative numbers
   across every workload, not the last workload's. *)
let reset_stats () =
  Atomic.set q_queries 0;
  Atomic.set q_hits 0;
  Atomic.set q_misses 0;
  Atomic.set q_prefix 0;
  Atomic.set q_evictions 0

(* Drop the calling domain's caches and the shared cache (helper domains
   are short-lived; their domain-local caches die with them). *)
let clear_caches () =
  Kclock.reset (Domain.DLS.get result_cache_key);
  Pclock.reset (Domain.DLS.get prefix_cache_key);
  with_shared (fun () -> Kclock.reset !shared_cache)

(* Rebind the calling domain's memo tables (and the shared table) at a new
   capacity.  Tests shrink the cap to exercise eviction without 32k-entry
   floods; helper domains created later pick the new cap up from the
   atomic. *)
let set_memo_cap n =
  Atomic.set memo_cap_v (max 16 n);
  Domain.DLS.set result_cache_key (Kclock.create (memo_cap ()));
  Domain.DLS.set prefix_cache_key (Pclock.create (memo_cap ()));
  with_shared (fun () -> shared_cache := Kclock.create (memo_cap ()))

(* --- memo persistence --------------------------------------------------- *)

(* Snapshots of the full-result memo table, so a warm process can start with
   yesterday's hit rate (the persistent cache stores these marshalled; both
   [key] and [result] are pure data).  Import goes through [Kclock.store
   ~on_evict:note_eviction], so the active [memo_cap] and the CLOCK policy
   hold: loading a snapshot bigger than the cap evicts (and counts) exactly
   as if the entries had been inserted by queries, and the table can never
   exceed the cap.  Export/import address the active cache of the calling
   domain — under [Cache_domain] a helper domain's table is its own; the
   sequential jobs=1 path (and [Cache_shared]) sees the full benefit. *)

type memo_entry = {
  me_key : key;
  me_result : result;
}

type memo_export = memo_entry list

let memo_export_size (m : memo_export) = List.length m

let export_memos () : memo_export =
  let dump c = Kclock.fold (fun k v acc -> { me_key = k; me_result = v } :: acc) c [] in
  match cache_mode () with
  | Cache_off -> []
  | Cache_domain -> dump (Domain.DLS.get result_cache_key)
  | Cache_shared -> with_shared (fun () -> dump !shared_cache)

let import_memos (entries : memo_export) : int =
  let import c =
    List.fold_left
      (fun n { me_key; me_result } ->
        match Kclock.find_opt c me_key with
        | Some _ -> n
        | None ->
          Kclock.store ~on_evict:note_eviction c me_key me_result;
          n + 1)
      0 entries
  in
  match cache_mode () with
  | Cache_off -> 0
  | Cache_domain -> import (Domain.DLS.get result_cache_key)
  | Cache_shared -> with_shared (fun () -> import !shared_cache)

let memo_size () =
  match cache_mode () with
  | Cache_off -> 0
  | Cache_domain -> Kclock.size (Domain.DLS.get result_cache_key)
  | Cache_shared -> with_shared (fun () -> Kclock.size !shared_cache)

(* --- incremental narrowing for the multi-path DFS ------------------ *)

(* The explorer threads a narrowed interval environment along each path:
   every symbolic input declares its range once and every branch narrows
   the box by its new suffix constraint, so by path completion the
   feasibility answer is already known for free in the common cases — an
   emptied box is Unsat without a query, and a constraint-free path is
   [Sat empty] without a query.  [bwd_truthy] only ever shrinks the box
   (sound narrowing), so an empty box proves real infeasibility; a
   non-empty box decides nothing and the full solver runs as before. *)

type incremental = env option

let inc_start : incremental = Some Smap.empty

let inc_declare (inc : incremental) (v, lo, hi) : incremental =
  Option.map (Smap.add v Interval.{ lo; hi }) inc

let inc_assume (inc : incremental) c : incremental =
  Option.bind inc (fun env -> narrow_one env c)

let inc_feasible (inc : incremental) = inc <> None

(** [sat constraints] = does a model exist? (Unknown counts as unsat-ish
    [false] for classification purposes; callers that care distinguish via
    {!solve}.) *)
let sat ?ranges ?budget constraints =
  match solve ?ranges ?budget constraints with Sat _ -> true | Unsat | Unknown -> false

let pp_model fmt (m : model) =
  let items = Smap.bindings m in
  Fmt.pf fmt "{%a}" Fmt.(list ~sep:(any "; ") (pair ~sep:(any "=") string int)) items
