(** A small SMT-style solver for quantifier-free integer constraints, built
    from interval constraint propagation (HC4 revise) plus branch-and-prune
    splitting.

    It decides satisfiability of path conditions and produces models
    (concrete program inputs) — the service KLEE's solver provides to
    Portend in the paper: multi-path analysis solves a path condition to
    obtain inputs that drive the program to the race (§3.3), and symbolic
    output comparison asks whether a concrete alternate output is allowed by
    the primary's symbolic output constraints (§3.3.1). *)

type model = int Portend_util.Maps.Smap.t
(** A satisfying assignment for the symbolic variables. *)

type result =
  | Sat of model
  | Unsat
  | Unknown  (** search budget exhausted before a decision *)

(** [solve ~ranges constraints] decides the conjunction of [constraints]
    (each required truthy, i.e. nonzero).  [ranges] gives inclusive bounds
    per variable (symbolic inputs carry their declared range); unlisted
    variables default to a wide conservative range.  [budget] bounds the
    number of search-tree nodes.

    Queries are canonicalized (simplified, sorted, deduplicated) and
    memoized per {!cache_mode}; repeated and permuted conjunctions are
    answered from cache, and condition lists sharing a structural tail with
    an earlier query only propagate their own suffix.  Caching memoizes a
    pure function, so answers are bit-for-bit identical whatever the cache
    mode or domain count. *)
val solve :
  ?ranges:(string * int * int) list -> ?budget:int -> Expr.t list -> result

(** {2 Query cache} *)

type cache_mode =
  | Cache_off  (** every query solved from scratch *)
  | Cache_domain  (** one cache per domain: no contention, no sharing (default) *)
  | Cache_shared  (** one mutex-guarded cache shared by all domains *)

val set_cache_mode : cache_mode -> unit
val cache_mode : unit -> cache_mode

(** Cumulative query/cache counters, aggregated across domains. *)
type stats = {
  queries : int;  (** calls to [solve] (and via it, [sat]) *)
  cache_hits : int;  (** full-result memo hits *)
  cache_misses : int;  (** full-result memo misses (computed and stored) *)
  prefix_unsat : int;  (** queries answered Unsat by prefix propagation *)
  evictions : int;  (** memo entries displaced by the CLOCK size bound *)
}

val stats : unit -> stats

(** Fraction of cache lookups that hit, in [0, 1]. *)
val hit_rate : stats -> float

(** Zero the counters — and only the counters.  Cache contents are
    unaffected, so a run that resets its stats still benefits from (and
    reports) hits against the warm cache; without a reset, counters are
    cumulative across every query the process has made. *)
val reset_stats : unit -> unit

(** Drop the calling domain's caches and the shared cache.  Counters are
    unaffected; benchmarks that want a cold start call this {e and}
    {!reset_stats} explicitly. *)
val clear_caches : unit -> unit

(** The memo tables are size-bounded with CLOCK (second-chance) eviction;
    entries hit since the last sweep of the hand survive, colder entries
    are displaced (and counted in [stats.evictions]).  [set_memo_cap]
    rebinds the calling domain's tables (and the shared table) at a new
    capacity, dropping their contents — meant for tests that exercise
    eviction with a small cap. *)
val memo_cap : unit -> int

val set_memo_cap : int -> unit

(** {2 Memo persistence}

    Snapshots of the full-result memo table (pure data, marshal-safe), so
    the on-disk cache can warm-start a later process with today's memos.
    [import_memos] inserts through the CLOCK policy: entries beyond
    [memo_cap] evict (and count in [stats.evictions]) exactly as if they
    had arrived as queries, and the table never exceeds the cap.  Both
    directions address the active cache of the calling domain under
    [Cache_domain], the shared table under [Cache_shared], and are no-ops
    under [Cache_off]. *)

type memo_export

(** Snapshot the active memo table. *)
val export_memos : unit -> memo_export

(** Load a snapshot; returns how many entries were newly inserted. *)
val import_memos : memo_export -> int

(** Entries resident in the active memo table. *)
val memo_size : unit -> int

(** Entries carried by a snapshot. *)
val memo_export_size : memo_export -> int

(** {2 Incremental narrowing}

    The multi-path explorer threads a narrowed interval environment along
    each DFS path: [inc_declare] adds a fresh symbolic input's declared
    range, [inc_assume] narrows the box by one new branch constraint.
    Narrowing is sound (it never discards a feasible point), so
    [inc_feasible inc = false] proves the accumulated conjunction
    unsatisfiable — the path can be discharged without a solver query.  A
    feasible box decides nothing; completion falls back to {!solve}. *)

type incremental

val inc_start : incremental
val inc_declare : incremental -> string * int * int -> incremental
val inc_assume : incremental -> Expr.t -> incremental
val inc_feasible : incremental -> bool

(** [sat constraints]: does a model exist?  [Unknown] counts as [false]. *)
val sat : ?ranges:(string * int * int) list -> ?budget:int -> Expr.t list -> bool

(** Does the model satisfy every constraint (by concrete evaluation)? *)
val check_model : model -> Expr.t list -> bool

val pp_model : Format.formatter -> model -> unit
