(** A small SMT-style solver for quantifier-free integer constraints, built
    from interval constraint propagation (HC4 revise) plus branch-and-prune
    splitting.

    It decides satisfiability of path conditions and produces models
    (concrete program inputs) — the service KLEE's solver provides to
    Portend in the paper: multi-path analysis solves a path condition to
    obtain inputs that drive the program to the race (§3.3), and symbolic
    output comparison asks whether a concrete alternate output is allowed by
    the primary's symbolic output constraints (§3.3.1). *)

type model = int Portend_util.Maps.Smap.t
(** A satisfying assignment for the symbolic variables. *)

type result =
  | Sat of model
  | Unsat
  | Unknown  (** search budget exhausted before a decision *)

(** [solve ~ranges constraints] decides the conjunction of [constraints]
    (each required truthy, i.e. nonzero).  [ranges] gives inclusive bounds
    per variable (symbolic inputs carry their declared range); unlisted
    variables default to a wide conservative range.  [budget] bounds the
    number of search-tree nodes.

    Queries are canonicalized (simplified, sorted, deduplicated) and
    memoized per {!cache_mode}; repeated and permuted conjunctions are
    answered from cache, and condition lists sharing a structural tail with
    an earlier query only propagate their own suffix.  Caching memoizes a
    pure function, so answers are bit-for-bit identical whatever the cache
    mode or domain count. *)
val solve :
  ?ranges:(string * int * int) list -> ?budget:int -> Expr.t list -> result

(** {2 Query cache} *)

type cache_mode =
  | Cache_off  (** every query solved from scratch *)
  | Cache_domain  (** one cache per domain: no contention, no sharing (default) *)
  | Cache_shared  (** one mutex-guarded cache shared by all domains *)

val set_cache_mode : cache_mode -> unit
val cache_mode : unit -> cache_mode

(** Cumulative query/cache counters, aggregated across domains. *)
type stats = {
  queries : int;  (** calls to [solve] (and via it, [sat]) *)
  cache_hits : int;  (** full-result memo hits *)
  cache_misses : int;  (** full-result memo misses (computed and stored) *)
  prefix_unsat : int;  (** queries answered Unsat by prefix propagation *)
}

val stats : unit -> stats

(** Fraction of cache lookups that hit, in [0, 1]. *)
val hit_rate : stats -> float

(** Zero the counters — and only the counters.  Cache contents are
    unaffected, so a run that resets its stats still benefits from (and
    reports) hits against the warm cache; without a reset, counters are
    cumulative across every query the process has made. *)
val reset_stats : unit -> unit

(** Drop the calling domain's caches and the shared cache.  Counters are
    unaffected; benchmarks that want a cold start call this {e and}
    {!reset_stats} explicitly. *)
val clear_caches : unit -> unit

(** [sat constraints]: does a model exist?  [Unknown] counts as [false]. *)
val sat : ?ranges:(string * int * int) list -> ?budget:int -> Expr.t list -> bool

(** Does the model satisfy every constraint (by concrete evaluation)? *)
val check_model : model -> Expr.t list -> bool

val pp_model : Format.formatter -> model -> unit
