(** Pretty-printer for Racelang programs, emitting the concrete syntax
    {!Parser} accepts — so [parse (print p)] round-trips (modulo the
    [Local]/[Global] spelling, which the compiler resolves identically). *)

open Ast

let unop_str = Portend_solver.Expr.unop_to_string
let binop_str = Portend_solver.Expr.binop_to_string

let rec pp_expr fmt = function
  | Int n -> if n < 0 then Fmt.pf fmt "(0 - %d)" (-n) else Fmt.int fmt n
  | Local x | Global x -> Fmt.string fmt x
  | ArrGet (a, e) -> Fmt.pf fmt "%s[%a]" a pp_expr e
  | Unop (op, e) -> Fmt.pf fmt "%s%a" (unop_str op) pp_atom e
  | Binop (op, a, b) -> Fmt.pf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Cond (c, a, b) -> Fmt.pf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

and pp_atom fmt e =
  match e with
  | Int _ | Local _ | Global _ | ArrGet _ -> pp_expr fmt e
  | Unop _ | Binop _ | Cond _ -> Fmt.pf fmt "(%a)" pp_expr e

let pp_args fmt es = Fmt.(list ~sep:comma pp_expr) fmt es

let rec pp_stmt fmt = function
  | Decl (x, e) -> Fmt.pf fmt "var %s = %a;" x pp_expr e
  | Assign (x, e) -> Fmt.pf fmt "%s = %a;" x pp_expr e
  | SetGlobal (x, e) -> Fmt.pf fmt "%s = %a;" x pp_expr e
  | SetArr (a, i, e) -> Fmt.pf fmt "%s[%a] = %a;" a pp_expr i pp_expr e
  | If (c, t, []) -> Fmt.pf fmt "@[<v2>if (%a) {%a@]@,}" pp_expr c pp_body t
  | If (c, t, e) ->
    Fmt.pf fmt "@[<v2>if (%a) {%a@]@,@[<v2>} else {%a@]@,}" pp_expr c pp_body t pp_body e
  | While (c, b) -> Fmt.pf fmt "@[<v2>while (%a) {%a@]@,}" pp_expr c pp_body b
  | Lock m -> Fmt.pf fmt "lock %s;" m
  | Unlock m -> Fmt.pf fmt "unlock %s;" m
  | Wait (c, m) -> Fmt.pf fmt "wait %s, %s;" c m
  | Signal c -> Fmt.pf fmt "signal %s;" c
  | Broadcast c -> Fmt.pf fmt "broadcast %s;" c
  | BarrierWait b -> Fmt.pf fmt "barrier_wait %s;" b
  | SemWait s -> Fmt.pf fmt "sem_wait %s;" s
  | SemPost s -> Fmt.pf fmt "sem_post %s;" s
  | Atomic b -> Fmt.pf fmt "@[<v2>atomic {%a@]@,}" pp_body b
  | Spawn (Some x, f, args) -> Fmt.pf fmt "var %s = spawn %s(%a);" x f pp_args args
  | Spawn (None, f, args) -> Fmt.pf fmt "spawn %s(%a);" f pp_args args
  | Join e -> Fmt.pf fmt "join %a;" pp_expr e
  | Output es -> Fmt.pf fmt "output %a;" pp_args es
  | Print s -> Fmt.pf fmt "print %S;" s
  | Input (x, name, r) -> Fmt.pf fmt "var %s = input(%S, %d, %d);" x name r.lo r.hi
  | Assert (e, msg) -> Fmt.pf fmt "assert %a : %S;" pp_expr e msg
  | Yield -> Fmt.string fmt "yield;"
  | Free a -> Fmt.pf fmt "free %s;" a
  | Call (Some x, f, args) -> Fmt.pf fmt "var %s = %s(%a);" x f pp_args args
  | Call (None, f, args) -> Fmt.pf fmt "%s(%a);" f pp_args args
  | Return (Some e) -> Fmt.pf fmt "return %a;" pp_expr e
  | Return None -> Fmt.string fmt "return;"

and pp_body fmt stmts = List.iter (fun s -> Fmt.pf fmt "@,%a" pp_stmt s) stmts

let pp_func fmt f =
  Fmt.pf fmt "@[<v2>fn %s(%a) {%a@]@,}" f.fname Fmt.(list ~sep:comma string) f.params pp_body
    f.body

let pp_program fmt p =
  Fmt.pf fmt "@[<v>program %s@,@," p.pname;
  List.iter (fun (n, v) -> Fmt.pf fmt "global %s = %d@," n v) p.globals;
  List.iter (fun (n, len, v) -> Fmt.pf fmt "array %s[%d] = %d@," n len v) p.arrays;
  List.iter (fun n -> Fmt.pf fmt "mutex %s@," n) p.mutexes;
  List.iter (fun n -> Fmt.pf fmt "cond %s@," n) p.conds;
  List.iter (fun (n, k) -> Fmt.pf fmt "barrier %s = %d@," n k) p.barriers;
  List.iter (fun (n, k) -> Fmt.pf fmt "sem %s = %d@," n k) p.sems;
  List.iter (fun f -> Fmt.pf fmt "@,%a@," pp_func f) p.funcs;
  Fmt.pf fmt "@]"

let program_to_string p = Fmt.str "%a@." pp_program p
