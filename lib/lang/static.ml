(** Static write-set analysis over the bytecode.

    Used by the classifier to discriminate ad-hoc synchronization from
    genuine infinite loops (Algorithm 1, lines 8–12): when an execution spins
    past its budget, the loop's exit condition can still change iff some
    {e other} live thread's remaining code may write one of the locations the
    loop condition reads.  “May write” is computed here: the per-function
    write set, closed transitively over calls and spawns. *)

open Portend_util.Maps

type coarse_loc =
  | Cglobal of string
  | Carray of string  (** any cell of the array *)

module Cset = Set.Make (struct
  type t = coarse_loc

  let compare = compare
end)

let inst_writes = function
  | Bytecode.IStoreG (v, _) -> Some (Cglobal v)
  | Bytecode.IStoreA (v, _, _) -> Some (Carray v)
  | Bytecode.IFree v -> Some (Carray v)
  | Bytecode.IBin _ | Bytecode.IUn _ | Bytecode.IMov _ | Bytecode.ILoadG _ | Bytecode.ILoadA _
  | Bytecode.IJmp _ | Bytecode.IBr _ | Bytecode.ICall _ | Bytecode.IRet _ | Bytecode.ISpawn _
  | Bytecode.IJoin _ | Bytecode.ILock _ | Bytecode.IUnlock _ | Bytecode.IWait _
  | Bytecode.ISignal _ | Bytecode.IBroadcast _ | Bytecode.IBarrier _ | Bytecode.ISemWait _
  | Bytecode.ISemPost _ | Bytecode.IAtomicBegin | Bytecode.IAtomicEnd | Bytecode.IOutput _
  | Bytecode.IOutputStr _ | Bytecode.IInput _ | Bytecode.IAssert _ | Bytecode.IYield -> None

let inst_reads = function
  | Bytecode.ILoadG (_, v) -> Some (Cglobal v)
  | Bytecode.ILoadA (_, v, _) -> Some (Carray v)
  | Bytecode.IBin _ | Bytecode.IUn _ | Bytecode.IMov _ | Bytecode.IStoreG _ | Bytecode.IStoreA _
  | Bytecode.IFree _ | Bytecode.IJmp _ | Bytecode.IBr _ | Bytecode.ICall _ | Bytecode.IRet _
  | Bytecode.ISpawn _ | Bytecode.IJoin _ | Bytecode.ILock _ | Bytecode.IUnlock _
  | Bytecode.IWait _ | Bytecode.ISignal _ | Bytecode.IBroadcast _ | Bytecode.IBarrier _
  | Bytecode.ISemWait _ | Bytecode.ISemPost _ | Bytecode.IAtomicBegin | Bytecode.IAtomicEnd
  | Bytecode.IOutput _ | Bytecode.IOutputStr _ | Bytecode.IInput _ | Bytecode.IAssert _
  | Bytecode.IYield -> None

(* Only direct calls: a [spawn]'s writes happen in the child thread, which
   the loop analysis already tracks as its own live thread — charging them
   to the spawner would wrongly mark dead spins as ad-hoc synchronization. *)
let callees_of_func (f : Bytecode.func) =
  Array.fold_left
    (fun acc inst ->
      match inst with
      | Bytecode.ICall (_, g, _) -> Sset.add g acc
      | _ -> acc)
    Sset.empty f.Bytecode.code

let direct_writes (f : Bytecode.func) =
  Array.fold_left
    (fun acc inst -> match inst_writes inst with Some l -> Cset.add l acc | None -> acc)
    Cset.empty f.Bytecode.code

type t = {
  write_sets : Cset.t Smap.t;  (** transitive, per function *)
}

(** Compute transitive write sets for every function by fixpoint iteration
    over the (tiny) call graph. *)
let analyze (prog : Bytecode.t) : t =
  let funcs = Smap.bindings prog.Bytecode.funcs in
  let direct = List.map (fun (n, f) -> (n, direct_writes f)) funcs |> Smap.of_list in
  let callees = List.map (fun (n, f) -> (n, callees_of_func f)) funcs |> Smap.of_list in
  let rec fix sets =
    let step =
      Smap.mapi
        (fun name ws ->
          let cs = Smap.find_or ~default:Sset.empty name callees in
          Sset.fold
            (fun callee acc -> Cset.union acc (Smap.find_or ~default:Cset.empty callee sets))
            cs ws)
        sets
    in
    if Smap.equal Cset.equal sets step then sets else fix step
  in
  { write_sets = fix direct }

(** Transitive write set of [fname]; empty for unknown functions. *)
let writes t fname = Smap.find_or ~default:Cset.empty fname t.write_sets

(** Can [fname] (transitively) write [loc]? *)
let may_write t fname loc = Cset.mem loc (writes t fname)

(* --- spin-read identification ------------------------------------------- *)

(* A busy-wait loop: a backward jump whose body performs shared loads but no
   shared stores, no calls, no outputs and no blocking operations other than
   lock/unlock polling.  The loads inside such a loop are synchronization
   reads in the sense of Helgrind+ [27] and ad-hoc-synchronization
   identification [55, 60]: they poll a flag some other thread will set.
   The race detector treats them as synchronization rather than data
   accesses (see {!Portend_detect.Hb}), which is what keeps busy-wait flags
   from flooding the report list while the data they guard still races. *)

(** Backward control-flow edges of a function, as [(src_pc, target_pc)]
    pairs with [target_pc <= src_pc] — one per natural loop back edge.  Both
    the unconditional [IJmp] the compiler emits for [while] loops and
    conditional [IBr] back edges (bottom-tested loops in hand-written or
    optimized bytecode) count.  Shared with {!Portend_analysis.Cfg}: the
    loop identification here and the CFG's loop queries walk the same
    edges. *)
let backward_edges (f : Bytecode.func) : (int * int) list =
  let edges = ref [] in
  Array.iteri
    (fun pc inst ->
      let add target = if target <= pc then edges := (pc, target) :: !edges in
      match inst with
      | Bytecode.IJmp l -> add l
      | Bytecode.IBr (_, l1, l2) ->
        add l1;
        if l2 <> l1 then add l2
      | _ -> ())
    f.Bytecode.code;
  List.rev !edges

(* A tight polling loop: at most [max_spin_body] instructions, exactly one
   shared load (the polled flag), and nothing with a side effect beyond
   registers.  The size bound keeps computation loops (which also read
   shared data without writing it) out — those reads are real data
   accesses. *)
let max_spin_body = 8

let spin_body_ok code lo hi =
  let ok inst =
    match inst with
    | Bytecode.IBin _ | Bytecode.IUn _ | Bytecode.IMov _ | Bytecode.ILoadG _
    | Bytecode.ILoadA _ | Bytecode.IBr _ | Bytecode.IJmp _ | Bytecode.IYield
    | Bytecode.ILock _ | Bytecode.IUnlock _ -> true
    | Bytecode.IStoreG _ | Bytecode.IStoreA _ | Bytecode.IFree _ | Bytecode.ICall _
    | Bytecode.IRet _ | Bytecode.ISpawn _ | Bytecode.IJoin _ | Bytecode.IWait _
    | Bytecode.ISignal _ | Bytecode.IBroadcast _ | Bytecode.IBarrier _ | Bytecode.ISemWait _
    | Bytecode.ISemPost _ | Bytecode.IAtomicBegin | Bytecode.IAtomicEnd | Bytecode.IOutput _
    | Bytecode.IOutputStr _ | Bytecode.IInput _ | Bytecode.IAssert _ -> false
  in
  let loads = ref 0 in
  let rec go pc =
    pc > hi
    || (ok code.(pc)
       && begin
            (match code.(pc) with
            | Bytecode.ILoadG _ | Bytecode.ILoadA _ -> incr loads
            | _ -> ());
            go (pc + 1)
          end)
  in
  hi - lo < max_spin_body && go lo && !loads = 1

(** Spin-loop spans of a function, as [(lo, hi)] instruction ranges: the
    body of every backward edge (conditional or not) that satisfies the
    polling-loop shape above. *)
let spin_loops (f : Bytecode.func) : (int * int) list =
  backward_edges f
  |> List.filter_map (fun (src, target) ->
         if spin_body_ok f.Bytecode.code target src then Some (target, src) else None)

(** Program counters of busy-wait (spin) loads, per function. *)
let spin_read_sites (prog : Bytecode.t) : (string * int) list =
  Smap.fold
    (fun fname (f : Bytecode.func) acc ->
      let code = f.Bytecode.code in
      let sites =
        List.concat_map
          (fun (lo, hi) ->
            let loads = ref [] in
            for p = lo to hi do
              match code.(p) with
              | Bytecode.ILoadG _ | Bytecode.ILoadA _ -> loads := (fname, p) :: !loads
              | _ -> ()
            done;
            !loads)
          (spin_loops f)
      in
      List.sort_uniq compare sites @ acc)
    prog.Bytecode.funcs []
