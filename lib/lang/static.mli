(** Static analysis over the bytecode: transitive write sets (used to
    discriminate infinite loops from ad-hoc synchronization, §3.5) and
    busy-wait spin-read identification (used by the detector to keep
    polling loops out of the race reports, after [27, 55, 60]). *)

type coarse_loc =
  | Cglobal of string
  | Carray of string  (** any cell of the array *)

module Cset : Set.S with type elt = coarse_loc

type t

(** Per-function write sets, closed transitively over direct calls (spawned
    functions belong to the child thread, not the spawner). *)
val analyze : Bytecode.t -> t

(** The coarse location an instruction writes (if any). *)
val inst_writes : Bytecode.inst -> coarse_loc option

(** The coarse location an instruction reads (if any). *)
val inst_reads : Bytecode.inst -> coarse_loc option

(** Transitive write set of a function; empty for unknown names. *)
val writes : t -> string -> Cset.t

(** Can the function (transitively) write the location? *)
val may_write : t -> string -> coarse_loc -> bool

(** Direct [ICall] callees of a function (spawned entries excluded: a
    spawn's writes happen in the child thread). *)
val callees_of_func : Bytecode.func -> Portend_util.Maps.Sset.t

(** Backward control-flow edges of a function, as [(src_pc, target_pc)]
    pairs with [target_pc <= src_pc] — one per natural loop back edge,
    covering both unconditional [IJmp] and conditional [IBr] back edges
    (bottom-tested loops).  Shared with {!Portend_analysis.Cfg}. *)
val backward_edges : Bytecode.func -> (int * int) list

(** Spin-loop spans, as [(lo, hi)] instruction ranges: bodies of backward
    edges that satisfy the tight polling-loop shape (at most
    {!max_spin_body} side-effect-free instructions with exactly one shared
    load). *)
val spin_loops : Bytecode.func -> (int * int) list

(** Program counters of busy-wait (spin) loads, per function: loads inside
    {!spin_loops} bodies. *)
val spin_read_sites : Bytecode.t -> (string * int) list

val max_spin_body : int
