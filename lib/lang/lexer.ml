(** Hand-written lexer for Racelang's concrete syntax (see {!Parser} for the
    grammar). *)

type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW of string  (** keyword *)
  | PUNCT of string  (** operator or delimiter *)
  | EOF

type lexed = {
  tok : token;
  line : int;
}

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let keywords =
  [ "program"; "global"; "array"; "mutex"; "cond"; "barrier"; "sem"; "fn"; "var"; "if"; "else";
    "while"; "lock"; "unlock"; "wait"; "signal"; "broadcast"; "barrier_wait"; "sem_wait";
    "sem_post"; "atomic"; "spawn"; "join"; "output"; "print"; "input"; "assert"; "yield";
    "free"; "return"
  ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(* Two-character operators first, then single characters. *)
let two_char_ops = [ "=="; "!="; "<="; ">="; "&&"; "||" ]
let one_char_ops = [ "("; ")"; "{"; "}"; "["; "]"; ","; ";"; ":"; "="; "<"; ">"; "+"; "-"; "*";
                     "/"; "%"; "!"; "?" ]

(** Tokenize a whole source string.  Comments run from [//] to end of line. *)
let tokenize (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let rec go i =
    if i >= n then emit EOF
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        go (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then begin
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      end
      else if is_digit c then begin
        let rec span j = if j < n && is_digit src.[j] then span (j + 1) else j in
        let j = span i in
        emit (INT (int_of_string (String.sub src i (j - i))));
        go j
      end
      else if is_ident_start c then begin
        let rec span j = if j < n && is_ident_char src.[j] then span (j + 1) else j in
        let j = span i in
        let word = String.sub src i (j - i) in
        emit (if List.mem word keywords then KW word else IDENT word);
        go j
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then error "line %d: unterminated string" !line
          else if src.[j] = '"' then j + 1
          else if src.[j] = '\\' && j + 1 < n then begin
            (match src.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | ch -> Buffer.add_char buf ch);
            scan (j + 2)
          end
          else begin
            Buffer.add_char buf src.[j];
            scan (j + 1)
          end
        in
        let j = scan (i + 1) in
        emit (STRING (Buffer.contents buf));
        go j
      end
      else if i + 1 < n && List.mem (String.sub src i 2) two_char_ops then begin
        emit (PUNCT (String.sub src i 2));
        go (i + 2)
      end
      else if List.mem (String.make 1 c) one_char_ops then begin
        emit (PUNCT (String.make 1 c));
        go (i + 1)
      end
      else error "line %d: unexpected character %C" !line c
  in
  go 0;
  List.rev !toks

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
