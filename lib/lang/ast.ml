(** Abstract syntax of Racelang, the concurrent imperative language Portend
    analyzes.

    Racelang plays the role LLVM bitcode plays in the paper: a small language
    with POSIX-threads-like primitives (spawn/join, mutexes, condition
    variables, barriers), shared globals and arrays, thread-local variables,
    symbolic inputs, and output system calls.  Programs are written either
    with the {!Builder} eDSL or in concrete syntax via {!Parser}. *)

(* Operators are shared with the solver's expression language so that
   symbolic values propagate without translation. *)
type unop = Portend_solver.Expr.unop
type binop = Portend_solver.Expr.binop

type range = { lo : int; hi : int }
(** Declared range of a symbolic input (inclusive). *)

type expr =
  | Int of int
  | Local of string  (** thread-local variable or function parameter *)
  | Global of string  (** shared global variable — a potential race site *)
  | ArrGet of string * expr  (** shared array read — a potential race site *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr  (** [c ? a : b] *)

type stmt =
  | Decl of string * expr  (** [var x = e]: declare a thread-local *)
  | Assign of string * expr  (** assign a previously declared local *)
  | SetGlobal of string * expr
  | SetArr of string * expr * expr  (** [a[i] = e] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Lock of string
  | Unlock of string
  | Wait of string * string  (** [wait cond mutex] *)
  | Signal of string
  | Broadcast of string
  | BarrierWait of string
  | SemWait of string  (** [sem_wait s]: block until the count is positive, then decrement *)
  | SemPost of string  (** [sem_post s]: increment the count, waking a waiter *)
  | Atomic of stmt list
      (** [atomic { ... }]: the block executes without preemption, as one
          globally-exclusive region (a [__VERIFIER_atomic]-style section) *)
  | Spawn of string option * string * expr list
      (** [var t = spawn f(args)]: the optional local receives the tid *)
  | Join of expr  (** join on a tid value *)
  | Output of expr list  (** write(2)-style output of integer values *)
  | Print of string  (** output of a constant string (log/debug messages) *)
  | Input of string * string * range
      (** [x = input("name", lo, hi)]: a fresh program input; concrete runs
          draw it from the environment, symbolic runs make it a fresh
          symbolic variable constrained to the range *)
  | Assert of expr * string  (** semantic property (§3.5 “high level”) *)
  | Yield  (** an explicit preemption point (models [usleep]) *)
  | Free of string  (** free a shared array; double free is a crash *)
  | Call of string option * string * expr list
  | Return of expr option

type func = {
  fname : string;
  params : string list;
  body : stmt list;
}

type program = {
  pname : string;
  globals : (string * int) list;  (** name, initial value *)
  arrays : (string * int * int) list;  (** name, length, initial cell value *)
  mutexes : string list;
  conds : string list;
  barriers : (string * int) list;  (** name, party count *)
  sems : (string * int) list;  (** name, initial count *)
  funcs : func list;  (** must contain ["main"] *)
}

let find_func program name = List.find_opt (fun f -> f.fname = name) program.funcs

(** Number of statements, a rough program-size metric used in Table 1. *)
let rec stmt_size = function
  | If (_, a, b) -> 1 + block_size a + block_size b
  | While (_, a) -> 1 + block_size a
  | Atomic a -> 1 + block_size a
  | Decl _ | Assign _ | SetGlobal _ | SetArr _ | Lock _ | Unlock _ | Wait _ | Signal _
  | Broadcast _ | BarrierWait _ | SemWait _ | SemPost _ | Spawn _ | Join _ | Output _ | Print _
  | Input _ | Assert _ | Yield | Free _ | Call _ | Return _ -> 1

and block_size stmts = List.fold_left (fun acc s -> acc + stmt_size s) 0 stmts

let program_size p = List.fold_left (fun acc f -> acc + 1 + block_size f.body) 0 p.funcs
