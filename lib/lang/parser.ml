(** Recursive-descent parser for Racelang's concrete syntax.

    {v
    program  ::= "program" IDENT decl* fn+
    decl     ::= "global" IDENT "=" INT
               | "array" IDENT "[" INT "]" "=" INT
               | "mutex" IDENT | "cond" IDENT
               | "barrier" IDENT "=" INT
               | "sem" IDENT "=" INT
    fn       ::= "fn" IDENT "(" params? ")" block
    block    ::= "{" stmt* "}"
    stmt     ::= "var" IDENT "=" rhs ";"
               | IDENT "=" rhs ";"
               | IDENT "[" expr "]" "=" expr ";"
               | "if" "(" expr ")" block ("else" block)?
               | "while" "(" expr ")" block
               | "lock" IDENT ";" | "unlock" IDENT ";"
               | "wait" IDENT "," IDENT ";"
               | "signal" IDENT ";" | "broadcast" IDENT ";"
               | "barrier_wait" IDENT ";"
               | "sem_wait" IDENT ";" | "sem_post" IDENT ";"
               | "atomic" block
               | "join" expr ";"
               | "output" expr ("," expr)* ";"
               | "print" STRING ";"
               | "assert" expr ":" STRING ";"
               | "yield" ";" | "free" IDENT ";"
               | "return" expr? ";"
               | IDENT "(" args? ")" ";"
    rhs      ::= "spawn" IDENT "(" args? ")"
               | "input" "(" STRING "," INT "," INT ")"
               | IDENT "(" args? ")"          (call)
               | expr
    expr     ::= ternary over || && cmp add mul unary atoms
    v}

    Locals vs globals are resolved later by the compiler: a bare assignment
    target is a local if declared, otherwise a global. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type stream = {
  mutable toks : Lexer.lexed list;
}

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t.Lexer.tok
let peek2 st = match st.toks with _ :: t :: _ -> t.Lexer.tok | _ -> Lexer.EOF
let line st = match st.toks with [] -> 0 | t :: _ -> t.Lexer.line

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else
    error "line %d: expected %s but found %s" (line st) (Lexer.token_to_string tok)
      (Lexer.token_to_string (peek st))

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> error "line %d: expected identifier, found %s" (line st) (Lexer.token_to_string t)

let expect_int st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    n
  | Lexer.PUNCT "-" -> (
    advance st;
    match peek st with
    | Lexer.INT n ->
      advance st;
      -n
    | t -> error "line %d: expected integer, found %s" (line st) (Lexer.token_to_string t))
  | t -> error "line %d: expected integer, found %s" (line st) (Lexer.token_to_string t)

let expect_string st =
  match peek st with
  | Lexer.STRING s ->
    advance st;
    s
  | t -> error "line %d: expected string, found %s" (line st) (Lexer.token_to_string t)

(* --- expressions --- *)

let binop_of = function
  | "+" -> Portend_solver.Expr.Add
  | "-" -> Portend_solver.Expr.Sub
  | "*" -> Portend_solver.Expr.Mul
  | "/" -> Portend_solver.Expr.Div
  | "%" -> Portend_solver.Expr.Rem
  | "==" -> Portend_solver.Expr.Eq
  | "!=" -> Portend_solver.Expr.Ne
  | "<" -> Portend_solver.Expr.Lt
  | "<=" -> Portend_solver.Expr.Le
  | ">" -> Portend_solver.Expr.Gt
  | ">=" -> Portend_solver.Expr.Ge
  | "&&" -> Portend_solver.Expr.Land
  | "||" -> Portend_solver.Expr.Lor
  | op -> error "unknown operator %s" op

let rec parse_expr st : Ast.expr =
  let cond = parse_or st in
  if peek st = Lexer.PUNCT "?" then begin
    advance st;
    let a = parse_expr st in
    expect st (Lexer.PUNCT ":");
    let b = parse_expr st in
    Ast.Cond (cond, a, b)
  end
  else cond

and parse_level ops next st =
  let lhs = next st in
  let rec loop lhs =
    match peek st with
    | Lexer.PUNCT op when List.mem op ops ->
      advance st;
      let rhs = next st in
      loop (Ast.Binop (binop_of op, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_or st = parse_level [ "||" ] parse_and st
and parse_and st = parse_level [ "&&" ] parse_cmp st
and parse_cmp st = parse_level [ "=="; "!="; "<"; "<="; ">"; ">=" ] parse_add st
and parse_add st = parse_level [ "+"; "-" ] parse_mul st
and parse_mul st = parse_level [ "*"; "/"; "%" ] parse_unary st

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "!" ->
    advance st;
    Ast.Unop (Portend_solver.Expr.Lnot, parse_unary st)
  | Lexer.PUNCT "-" ->
    advance st;
    Ast.Unop (Portend_solver.Expr.Neg, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Ast.Int n
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect st (Lexer.PUNCT ")");
    e
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect st (Lexer.PUNCT "]");
      Ast.ArrGet (name, idx)
    | _ ->
      (* Local vs global is resolved during compilation; the AST uses
         [Local] as the neutral spelling and the resolver falls back to
         globals. *)
      Ast.Local name)
  | t -> error "line %d: unexpected token %s in expression" (line st) (Lexer.token_to_string t)

let parse_args st =
  expect st (Lexer.PUNCT "(");
  if peek st = Lexer.PUNCT ")" then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_expr st in
      match peek st with
      | Lexer.PUNCT "," ->
        advance st;
        loop (e :: acc)
      | _ ->
        expect st (Lexer.PUNCT ")");
        List.rev (e :: acc)
    in
    loop []

(* --- statements --- *)

(* the right-hand side of [x = ...] or [var x = ...] *)
let parse_rhs st (target : string) ~(declare : bool) : Ast.stmt =
  let mk_assign e = if declare then Ast.Decl (target, e) else Ast.Assign (target, e) in
  match peek st with
  | Lexer.KW "spawn" ->
    advance st;
    let f = expect_ident st in
    let args = parse_args st in
    if declare then Ast.Spawn (Some target, f, args)
    else error "line %d: spawn result must bind a fresh local (use var)" (line st)
  | Lexer.KW "input" ->
    advance st;
    expect st (Lexer.PUNCT "(");
    let name = expect_string st in
    expect st (Lexer.PUNCT ",");
    let lo = expect_int st in
    expect st (Lexer.PUNCT ",");
    let hi = expect_int st in
    expect st (Lexer.PUNCT ")");
    Ast.Input (target, name, { Ast.lo; hi })
  | Lexer.IDENT f when peek2 st = Lexer.PUNCT "(" ->
    advance st;
    let args = parse_args st in
    Ast.Call (Some target, f, args)
  | _ -> mk_assign (parse_expr st)

let rec parse_stmt st : Ast.stmt =
  let semi v =
    expect st (Lexer.PUNCT ";");
    v
  in
  match peek st with
  | Lexer.KW "var" ->
    advance st;
    let x = expect_ident st in
    expect st (Lexer.PUNCT "=");
    semi (parse_rhs st x ~declare:true)
  | Lexer.KW "if" ->
    advance st;
    expect st (Lexer.PUNCT "(");
    let c = parse_expr st in
    expect st (Lexer.PUNCT ")");
    let then_ = parse_block st in
    let else_ = if peek st = Lexer.KW "else" then (advance st; parse_block st) else [] in
    Ast.If (c, then_, else_)
  | Lexer.KW "while" ->
    advance st;
    expect st (Lexer.PUNCT "(");
    let c = parse_expr st in
    expect st (Lexer.PUNCT ")");
    Ast.While (c, parse_block st)
  | Lexer.KW "lock" ->
    advance st;
    semi (Ast.Lock (expect_ident st))
  | Lexer.KW "unlock" ->
    advance st;
    semi (Ast.Unlock (expect_ident st))
  | Lexer.KW "wait" ->
    advance st;
    let c = expect_ident st in
    expect st (Lexer.PUNCT ",");
    semi (Ast.Wait (c, expect_ident st))
  | Lexer.KW "signal" ->
    advance st;
    semi (Ast.Signal (expect_ident st))
  | Lexer.KW "broadcast" ->
    advance st;
    semi (Ast.Broadcast (expect_ident st))
  | Lexer.KW "barrier_wait" ->
    advance st;
    semi (Ast.BarrierWait (expect_ident st))
  | Lexer.KW "sem_wait" ->
    advance st;
    semi (Ast.SemWait (expect_ident st))
  | Lexer.KW "sem_post" ->
    advance st;
    semi (Ast.SemPost (expect_ident st))
  | Lexer.KW "atomic" ->
    advance st;
    Ast.Atomic (parse_block st)
  | Lexer.KW "join" ->
    advance st;
    semi (Ast.Join (parse_expr st))
  | Lexer.KW "output" ->
    advance st;
    let rec loop acc =
      let e = parse_expr st in
      if peek st = Lexer.PUNCT "," then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    semi (Ast.Output (loop []))
  | Lexer.KW "print" ->
    advance st;
    semi (Ast.Print (expect_string st))
  | Lexer.KW "assert" ->
    advance st;
    let e = parse_expr st in
    expect st (Lexer.PUNCT ":");
    semi (Ast.Assert (e, expect_string st))
  | Lexer.KW "yield" ->
    advance st;
    semi Ast.Yield
  | Lexer.KW "free" ->
    advance st;
    semi (Ast.Free (expect_ident st))
  | Lexer.KW "return" ->
    advance st;
    if peek st = Lexer.PUNCT ";" then semi (Ast.Return None)
    else semi (Ast.Return (Some (parse_expr st)))
  | Lexer.KW "spawn" ->
    advance st;
    let f = expect_ident st in
    let args = parse_args st in
    semi (Ast.Spawn (None, f, args))
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.PUNCT "(" ->
      let args = parse_args st in
      semi (Ast.Call (None, name, args))
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect st (Lexer.PUNCT "]");
      expect st (Lexer.PUNCT "=");
      let v = parse_expr st in
      semi (Ast.SetArr (name, idx, v))
    | Lexer.PUNCT "=" ->
      advance st;
      semi (parse_rhs st name ~declare:false)
    | t -> error "line %d: unexpected %s after identifier" (line st) (Lexer.token_to_string t))
  | t -> error "line %d: unexpected token %s at statement start" (line st) (Lexer.token_to_string t)

and parse_block st : Ast.stmt list =
  expect st (Lexer.PUNCT "{");
  let rec loop acc =
    if peek st = Lexer.PUNCT "}" then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* --- top level --- *)

let parse_program (src : string) : Ast.program =
  let st = { toks = Lexer.tokenize src } in
  expect st (Lexer.KW "program");
  let pname = expect_ident st in
  let globals = ref [] and arrays = ref [] and mutexes = ref [] in
  let conds = ref [] and barriers = ref [] and sems = ref [] and funcs = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW "global" ->
      advance st;
      let name = expect_ident st in
      expect st (Lexer.PUNCT "=");
      globals := (name, expect_int st) :: !globals;
      loop ()
    | Lexer.KW "array" ->
      advance st;
      let name = expect_ident st in
      expect st (Lexer.PUNCT "[");
      let len = expect_int st in
      expect st (Lexer.PUNCT "]");
      expect st (Lexer.PUNCT "=");
      arrays := (name, len, expect_int st) :: !arrays;
      loop ()
    | Lexer.KW "mutex" ->
      advance st;
      mutexes := expect_ident st :: !mutexes;
      loop ()
    | Lexer.KW "cond" ->
      advance st;
      conds := expect_ident st :: !conds;
      loop ()
    | Lexer.KW "barrier" ->
      advance st;
      let name = expect_ident st in
      expect st (Lexer.PUNCT "=");
      barriers := (name, expect_int st) :: !barriers;
      loop ()
    | Lexer.KW "sem" ->
      advance st;
      let name = expect_ident st in
      expect st (Lexer.PUNCT "=");
      sems := (name, expect_int st) :: !sems;
      loop ()
    | Lexer.KW "fn" ->
      advance st;
      let fname = expect_ident st in
      expect st (Lexer.PUNCT "(");
      let params =
        if peek st = Lexer.PUNCT ")" then begin
          advance st;
          []
        end
        else
          let rec ps acc =
            let p = expect_ident st in
            if peek st = Lexer.PUNCT "," then begin
              advance st;
              ps (p :: acc)
            end
            else begin
              expect st (Lexer.PUNCT ")");
              List.rev (p :: acc)
            end
          in
          ps []
      in
      let body = parse_block st in
      funcs := { Ast.fname; params; body } :: !funcs;
      loop ()
    | t -> error "line %d: unexpected %s at top level" (line st) (Lexer.token_to_string t)
  in
  loop ();
  { Ast.pname;
    globals = List.rev !globals;
    arrays = List.rev !arrays;
    mutexes = List.rev !mutexes;
    conds = List.rev !conds;
    barriers = List.rev !barriers;
    sems = List.rev !sems;
    funcs = List.rev !funcs
  }

(** Parse and immediately compile. *)
let compile_string src = Compile.compile (parse_program src)

let compile_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  compile_string src
