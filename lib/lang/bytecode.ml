(** Register bytecode Racelang compiles to — Portend's analogue of LLVM
    bitcode.

    The key property (relied on by the race detector, the record/replay
    engine, and the schedulers) is that {e every shared-memory access is a
    single instruction}: expression evaluation over thread-local registers is
    compiled to three-address code, so a load from or store to a global or
    array cell is always its own instruction with its own program counter.
    Preemption can therefore happen exactly before/after any racy access, as
    in §3.1. *)

type operand =
  | Reg of int
  | Imm of int

type range = Ast.range

type inst =
  | IBin of int * Ast.binop * operand * operand  (** r := a op b *)
  | IUn of int * Ast.unop * operand
  | IMov of int * operand
  | ILoadG of int * string  (** r := global — shared access *)
  | IStoreG of string * operand  (** global := v — shared access *)
  | ILoadA of int * string * operand  (** r := a[i] — shared access *)
  | IStoreA of string * operand * operand  (** a[i] := v — shared access *)
  | IJmp of int
  | IBr of operand * int * int  (** if truthy goto l1 else l2 *)
  | ICall of int option * string * operand list
  | IRet of operand option
  | ISpawn of int option * string * operand list
  | IJoin of operand
  | ILock of string
  | IUnlock of string
  | IWait of string * string
  | ISignal of string
  | IBroadcast of string
  | IBarrier of string
  | ISemWait of string
  | ISemPost of string
  | IAtomicBegin
  | IAtomicEnd
  | IOutput of operand list
  | IOutputStr of string
  | IInput of int * string * range
  | IAssert of operand * string
  | IYield
  | IFree of string

type func = {
  fname : string;
  nparams : int;  (** parameters occupy registers 0..nparams-1 *)
  nregs : int;
  code : inst array;
  reg_names : string array;  (** register index -> source-level name, for reports *)
}

type t = {
  pname : string;
  funcs : func Portend_util.Maps.Smap.t;
  globals : (string * int) list;
  arrays : (string * int * int) list;
  barriers : (string * int) list;
  sems : (string * int) list;
  source : Ast.program;
}

let find_func t name = Portend_util.Maps.Smap.find_opt name t.funcs

(** Does executing this instruction touch shared memory?  Used to place
    preemption points and to feed the race detector. *)
let shared_access = function
  | ILoadG _ | IStoreG _ | ILoadA _ | IStoreA _ | IFree _ -> true
  | IBin _ | IUn _ | IMov _ | IJmp _ | IBr _ | ICall _ | IRet _ | ISpawn _ | IJoin _ | ILock _
  | IUnlock _ | IWait _ | ISignal _ | IBroadcast _ | IBarrier _ | ISemWait _ | ISemPost _
  | IAtomicBegin | IAtomicEnd | IOutput _ | IOutputStr _ | IInput _ | IAssert _ | IYield -> false

(** Is this instruction a synchronization operation (a preemption point in the
    sense of §3.1)? *)
let sync_op = function
  | ILock _ | IUnlock _ | IWait _ | ISignal _ | IBroadcast _ | IBarrier _ | ISemWait _
  | ISemPost _ | IAtomicBegin | IAtomicEnd | ISpawn _ | IJoin _ | IYield -> true
  | IBin _ | IUn _ | IMov _ | ILoadG _ | IStoreG _ | ILoadA _ | IStoreA _ | IJmp _ | IBr _
  | ICall _ | IRet _ | IOutput _ | IOutputStr _ | IInput _ | IAssert _ | IFree _ -> false

let pp_operand fmt = function Reg r -> Fmt.pf fmt "r%d" r | Imm n -> Fmt.pf fmt "#%d" n

let pp_inst fmt inst =
  let op = pp_operand in
  match inst with
  | IBin (d, o, a, b) ->
    Fmt.pf fmt "r%d := %a %s %a" d op a (Portend_solver.Expr.binop_to_string o) op b
  | IUn (d, o, a) -> Fmt.pf fmt "r%d := %s%a" d (Portend_solver.Expr.unop_to_string o) op a
  | IMov (d, a) -> Fmt.pf fmt "r%d := %a" d op a
  | ILoadG (d, v) -> Fmt.pf fmt "r%d := load %s" d v
  | IStoreG (v, a) -> Fmt.pf fmt "store %s, %a" v op a
  | ILoadA (d, v, idx) -> Fmt.pf fmt "r%d := load %s[%a]" d v op idx
  | IStoreA (v, idx, a) -> Fmt.pf fmt "store %s[%a], %a" v op idx op a
  | IJmp l -> Fmt.pf fmt "jmp %d" l
  | IBr (c, l1, l2) -> Fmt.pf fmt "br %a, %d, %d" op c l1 l2
  | ICall (Some d, f, args) -> Fmt.pf fmt "r%d := call %s(%a)" d f Fmt.(list ~sep:comma op) args
  | ICall (None, f, args) -> Fmt.pf fmt "call %s(%a)" f Fmt.(list ~sep:comma op) args
  | IRet (Some a) -> Fmt.pf fmt "ret %a" op a
  | IRet None -> Fmt.pf fmt "ret"
  | ISpawn (Some d, f, args) -> Fmt.pf fmt "r%d := spawn %s(%a)" d f Fmt.(list ~sep:comma op) args
  | ISpawn (None, f, args) -> Fmt.pf fmt "spawn %s(%a)" f Fmt.(list ~sep:comma op) args
  | IJoin a -> Fmt.pf fmt "join %a" op a
  | ILock m -> Fmt.pf fmt "lock %s" m
  | IUnlock m -> Fmt.pf fmt "unlock %s" m
  | IWait (c, m) -> Fmt.pf fmt "wait %s, %s" c m
  | ISignal c -> Fmt.pf fmt "signal %s" c
  | IBroadcast c -> Fmt.pf fmt "broadcast %s" c
  | IBarrier b -> Fmt.pf fmt "barrier %s" b
  | ISemWait s -> Fmt.pf fmt "sem_wait %s" s
  | ISemPost s -> Fmt.pf fmt "sem_post %s" s
  | IAtomicBegin -> Fmt.string fmt "atomic_begin"
  | IAtomicEnd -> Fmt.string fmt "atomic_end"
  | IOutput args -> Fmt.pf fmt "output %a" Fmt.(list ~sep:comma op) args
  | IOutputStr s -> Fmt.pf fmt "output %S" s
  | IInput (d, n, r) -> Fmt.pf fmt "r%d := input %S [%d,%d]" d n r.Ast.lo r.Ast.hi
  | IAssert (a, msg) -> Fmt.pf fmt "assert %a, %S" op a msg
  | IYield -> Fmt.string fmt "yield"
  | IFree v -> Fmt.pf fmt "free %s" v

(* --- stable content hashing ------------------------------------------- *)

module H = Portend_util.Chash

(** Stable content hash of one function body — the cacheable unit for
    per-function static summaries.  Each instruction is hashed through its
    [pp_inst] rendering, which spells out every field of every constructor,
    so the hash is total over the code without a second traversal to keep
    in sync with the [inst] type. *)
let func_chash (f : func) : int =
  let h = H.string H.seed f.fname in
  let h = H.int h f.nparams in
  let h = H.int h f.nregs in
  let h = H.array H.string h f.reg_names in
  H.array (fun h i -> H.string h (Fmt.str "%a" pp_inst i)) h f.code

(** Stable content hash of a whole compiled program: every function body
    plus the initial shared-memory and barrier declarations.  [source] is
    excluded — it compiles deterministically to exactly these fields, and
    hashing the AST as well would only make the hash fragile to AST-shape
    refactors. *)
let chash (t : t) : int =
  let h = H.string H.seed t.pname in
  let h =
    Portend_util.Maps.Smap.fold
      (fun name f h -> H.int (H.string h name) (func_chash f))
      t.funcs h
  in
  let h = H.list (fun h (n, v) -> H.int (H.string h n) v) h t.globals in
  let h = H.list (fun h (n, len, init) -> H.int (H.int (H.string h n) len) init) h t.arrays in
  let h = H.list (fun h (n, count) -> H.int (H.string h n) count) h t.barriers in
  H.list (fun h (n, count) -> H.int (H.string h n) count) h t.sems

let pp_func fmt f =
  Fmt.pf fmt "@[<v2>fn %s/%d (%d regs):@,%a@]" f.fname f.nparams f.nregs
    Fmt.(array ~sep:cut (fun fmt i -> pp_inst fmt i))
    f.code

let pp fmt t =
  Fmt.pf fmt "@[<v>program %s@,%a@]" t.pname
    Fmt.(list ~sep:cut pp_func)
    (Portend_util.Maps.Smap.bindings t.funcs |> List.map snd)
