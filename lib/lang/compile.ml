(** Compiler from the Racelang AST to {!Bytecode}.

    Straight-line three-address code generation: locals and parameters get
    fixed registers, subexpressions get fresh temporaries, and control flow
    is emitted with backpatched jumps.  Shared loads/stores each become their
    own instruction (see {!Bytecode}).

    Note: [&&] and [||] are strict (both operands evaluated), matching the
    solver's logical operators; workloads that need C-style short-circuit
    evaluation (e.g. double-checked locking) use nested [if]s. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

open Bytecode

(* Growable code buffer with backpatching. *)
module Cg = struct
  type t = {
    mutable insts : inst array;
    mutable len : int;
    mutable nregs : int;
    mutable names : (int * string) list;
  }

  let dummy = IYield

  let create nparams =
    { insts = Array.make 64 dummy; len = 0; nregs = nparams; names = [] }

  let here cg = cg.len

  let emit cg i =
    if cg.len = Array.length cg.insts then begin
      let bigger = Array.make (2 * cg.len) dummy in
      Array.blit cg.insts 0 bigger 0 cg.len;
      cg.insts <- bigger
    end;
    cg.insts.(cg.len) <- i;
    cg.len <- cg.len + 1;
    cg.len - 1

  let patch cg pos i = cg.insts.(pos) <- i

  let fresh_reg ?name cg =
    let r = cg.nregs in
    cg.nregs <- r + 1;
    (match name with Some n -> cg.names <- (r, n) :: cg.names | None -> ());
    r

  let finish cg fname nparams =
    let code = Array.sub cg.insts 0 cg.len in
    let reg_names = Array.make cg.nregs "" in
    List.iter (fun (r, n) -> reg_names.(r) <- n) cg.names;
    { fname; nparams; nregs = cg.nregs; code; reg_names }
end

type ctx = {
  prog : Ast.program;
  global_set : Portend_util.Maps.Sset.t;
  array_set : Portend_util.Maps.Sset.t;
  mutex_set : Portend_util.Maps.Sset.t;
  cond_set : Portend_util.Maps.Sset.t;
  barrier_set : Portend_util.Maps.Sset.t;
  sem_set : Portend_util.Maps.Sset.t;
}

let check_member what set name =
  if not (Portend_util.Maps.Sset.mem name set) then error "undeclared %s: %s" what name

let check_func ctx name nargs =
  match Ast.find_func ctx.prog name with
  | None -> error "undefined function: %s" name
  | Some f ->
    if List.length f.Ast.params <> nargs then
      error "function %s expects %d arguments, got %d" name (List.length f.Ast.params) nargs

(* Local environment: name -> register.  Functional map threaded through
   statement compilation so that [Decl] scopes behave lexically-enough (a
   declaration is visible until the end of the function, as in C block-less
   style; redeclaration is an error). *)
type env = int Portend_util.Maps.Smap.t

let lookup_local env x = Portend_util.Maps.Smap.find_opt x env

let rec gen_expr ctx cg (env : env) (e : Ast.expr) : operand =
  match e with
  | Ast.Int n -> Imm n
  | Ast.Local x -> (
    match lookup_local env x with
    | Some r -> Reg r
    | None ->
      (* The parser spells every bare identifier [Local]; fall back to a
         global load when no local of that name is in scope. *)
      if Portend_util.Maps.Sset.mem x ctx.global_set then gen_expr ctx cg env (Ast.Global x)
      else error "use of undeclared variable %s" x)
  | Ast.Global v ->
    check_member "global" ctx.global_set v;
    let r = Cg.fresh_reg cg in
    ignore (Cg.emit cg (ILoadG (r, v)));
    Reg r
  | Ast.ArrGet (a, idx) ->
    check_member "array" ctx.array_set a;
    let oi = gen_expr ctx cg env idx in
    let r = Cg.fresh_reg cg in
    ignore (Cg.emit cg (ILoadA (r, a, oi)));
    Reg r
  | Ast.Unop (op, a) -> (
    match gen_expr ctx cg env a with
    | Imm n -> Imm (Portend_solver.Expr.apply_unop op n)
    | Reg _ as oa ->
      let r = Cg.fresh_reg cg in
      ignore (Cg.emit cg (IUn (r, op, oa)));
      Reg r)
  | Ast.Binop (op, a, b) -> (
    let oa = gen_expr ctx cg env a in
    let ob = gen_expr ctx cg env b in
    match (oa, ob) with
    | Imm x, Imm y when not (is_div op && y = 0) -> Imm (Portend_solver.Expr.apply_binop op x y)
    | _, _ ->
      let r = Cg.fresh_reg cg in
      ignore (Cg.emit cg (IBin (r, op, oa, ob)));
      Reg r)
  | Ast.Cond (c, a, b) ->
    let oc = gen_expr ctx cg env c in
    let r = Cg.fresh_reg cg in
    let br = Cg.emit cg (IJmp 0) in
    let l_then = Cg.here cg in
    let oa = gen_expr ctx cg env a in
    ignore (Cg.emit cg (IMov (r, oa)));
    let jend = Cg.emit cg (IJmp 0) in
    let l_else = Cg.here cg in
    let ob = gen_expr ctx cg env b in
    ignore (Cg.emit cg (IMov (r, ob)));
    let l_end = Cg.here cg in
    Cg.patch cg br (IBr (oc, l_then, l_else));
    Cg.patch cg jend (IJmp l_end);
    Reg r

and is_div = function Portend_solver.Expr.Div | Portend_solver.Expr.Rem -> true | _ -> false

let rec gen_stmt ctx cg (env : env) (s : Ast.stmt) : env =
  match s with
  | Ast.Decl (x, e) ->
    if lookup_local env x <> None then error "redeclaration of local %s" x;
    let o = gen_expr ctx cg env e in
    let r = Cg.fresh_reg ~name:x cg in
    ignore (Cg.emit cg (IMov (r, o)));
    Portend_util.Maps.Smap.add x r env
  | Ast.Assign (x, e) -> (
    match lookup_local env x with
    | Some r ->
      let o = gen_expr ctx cg env e in
      ignore (Cg.emit cg (IMov (r, o)));
      env
    | None ->
      if Portend_util.Maps.Sset.mem x ctx.global_set then
        gen_stmt ctx cg env (Ast.SetGlobal (x, e))
      else error "assignment to undeclared variable %s" x)
  | Ast.SetGlobal (v, e) ->
    check_member "global" ctx.global_set v;
    let o = gen_expr ctx cg env e in
    ignore (Cg.emit cg (IStoreG (v, o)));
    env
  | Ast.SetArr (a, idx, e) ->
    check_member "array" ctx.array_set a;
    let oi = gen_expr ctx cg env idx in
    let ov = gen_expr ctx cg env e in
    ignore (Cg.emit cg (IStoreA (a, oi, ov)));
    env
  | Ast.If (c, then_, else_) ->
    let oc = gen_expr ctx cg env c in
    let br = Cg.emit cg (IJmp 0) in
    let l_then = Cg.here cg in
    ignore (gen_block ctx cg env then_);
    let jend = Cg.emit cg (IJmp 0) in
    let l_else = Cg.here cg in
    ignore (gen_block ctx cg env else_);
    let l_end = Cg.here cg in
    Cg.patch cg br (IBr (oc, l_then, l_else));
    Cg.patch cg jend (IJmp l_end);
    env
  | Ast.While (c, body) ->
    let l_top = Cg.here cg in
    let oc = gen_expr ctx cg env c in
    let br = Cg.emit cg (IJmp 0) in
    let l_body = Cg.here cg in
    ignore (gen_block ctx cg env body);
    ignore (Cg.emit cg (IJmp l_top));
    let l_end = Cg.here cg in
    Cg.patch cg br (IBr (oc, l_body, l_end));
    env
  | Ast.Lock m ->
    check_member "mutex" ctx.mutex_set m;
    ignore (Cg.emit cg (ILock m));
    env
  | Ast.Unlock m ->
    check_member "mutex" ctx.mutex_set m;
    ignore (Cg.emit cg (IUnlock m));
    env
  | Ast.Wait (c, m) ->
    check_member "cond" ctx.cond_set c;
    check_member "mutex" ctx.mutex_set m;
    ignore (Cg.emit cg (IWait (c, m)));
    env
  | Ast.Signal c ->
    check_member "cond" ctx.cond_set c;
    ignore (Cg.emit cg (ISignal c));
    env
  | Ast.Broadcast c ->
    check_member "cond" ctx.cond_set c;
    ignore (Cg.emit cg (IBroadcast c));
    env
  | Ast.BarrierWait b ->
    check_member "barrier" ctx.barrier_set b;
    ignore (Cg.emit cg (IBarrier b));
    env
  | Ast.SemWait s ->
    check_member "semaphore" ctx.sem_set s;
    ignore (Cg.emit cg (ISemWait s));
    env
  | Ast.SemPost s ->
    check_member "semaphore" ctx.sem_set s;
    ignore (Cg.emit cg (ISemPost s));
    env
  | Ast.Atomic body ->
    ignore (Cg.emit cg IAtomicBegin);
    let env' = gen_block ctx cg env body in
    ignore (Cg.emit cg IAtomicEnd);
    (* Locals declared inside the region stay in scope, as in a plain
       statement sequence — atomic delimits scheduling, not naming. *)
    env'
  | Ast.Spawn (dst, f, args) ->
    check_func ctx f (List.length args);
    let oargs = List.map (gen_expr ctx cg env) args in
    let env, dreg =
      match dst with
      | None -> (env, None)
      | Some x -> (
        match lookup_local env x with
        | Some r -> (env, Some r)
        | None ->
          let r = Cg.fresh_reg ~name:x cg in
          (Portend_util.Maps.Smap.add x r env, Some r))
    in
    ignore (Cg.emit cg (ISpawn (dreg, f, oargs)));
    env
  | Ast.Join e ->
    let o = gen_expr ctx cg env e in
    ignore (Cg.emit cg (IJoin o));
    env
  | Ast.Output es ->
    let os = List.map (gen_expr ctx cg env) es in
    ignore (Cg.emit cg (IOutput os));
    env
  | Ast.Print s ->
    ignore (Cg.emit cg (IOutputStr s));
    env
  | Ast.Input (x, name, range) ->
    let env, r =
      match lookup_local env x with
      | Some r -> (env, r)
      | None ->
        let r = Cg.fresh_reg ~name:x cg in
        (Portend_util.Maps.Smap.add x r env, r)
    in
    ignore (Cg.emit cg (IInput (r, name, range)));
    env
  | Ast.Assert (e, msg) ->
    let o = gen_expr ctx cg env e in
    ignore (Cg.emit cg (IAssert (o, msg)));
    env
  | Ast.Yield ->
    ignore (Cg.emit cg IYield);
    env
  | Ast.Free a ->
    check_member "array" ctx.array_set a;
    ignore (Cg.emit cg (IFree a));
    env
  | Ast.Call (dst, f, args) ->
    check_func ctx f (List.length args);
    let oargs = List.map (gen_expr ctx cg env) args in
    let env, dreg =
      match dst with
      | None -> (env, None)
      | Some x -> (
        match lookup_local env x with
        | Some r -> (env, Some r)
        | None ->
          let r = Cg.fresh_reg ~name:x cg in
          (Portend_util.Maps.Smap.add x r env, Some r))
    in
    ignore (Cg.emit cg (ICall (dreg, f, oargs)));
    env
  | Ast.Return e ->
    let o = Option.map (gen_expr ctx cg env) e in
    ignore (Cg.emit cg (IRet o));
    env

and gen_block ctx cg env stmts = List.fold_left (gen_stmt ctx cg) env stmts

let compile_func ctx (f : Ast.func) : func =
  let nparams = List.length f.Ast.params in
  let cg = Cg.create nparams in
  let env, _ =
    List.fold_left
      (fun (env, r) p ->
        if Portend_util.Maps.Smap.mem p env then error "duplicate parameter %s in %s" p f.Ast.fname;
        cg.Cg.names <- (r, p) :: cg.Cg.names;
        (Portend_util.Maps.Smap.add p r env, r + 1))
      (Portend_util.Maps.Smap.empty, 0)
      f.Ast.params
  in
  ignore (gen_block ctx cg env f.Ast.body);
  ignore (Cg.emit cg (IRet None));
  Cg.finish cg f.Ast.fname nparams

let sset_of_list l = List.fold_right Portend_util.Maps.Sset.add l Portend_util.Maps.Sset.empty

let dup_check what names =
  let sorted = List.sort compare names in
  let rec go = function
    | a :: b :: _ when a = b -> error "duplicate %s declaration: %s" what a
    | _ :: rest -> go rest
    | [] -> ()
  in
  go sorted

let compile (p : Ast.program) : t =
  let gnames = List.map (fun (n, _) -> n) p.Ast.globals in
  let anames = List.map (fun (n, _, _) -> n) p.Ast.arrays in
  let bnames = List.map fst p.Ast.barriers in
  let snames = List.map fst p.Ast.sems in
  dup_check "global" gnames;
  dup_check "array" anames;
  dup_check "mutex" p.Ast.mutexes;
  dup_check "cond" p.Ast.conds;
  dup_check "barrier" bnames;
  dup_check "semaphore" snames;
  List.iter
    (fun (n, init) -> if init < 0 then error "semaphore %s has negative initial count" n)
    p.Ast.sems;
  dup_check "function" (List.map (fun f -> f.Ast.fname) p.Ast.funcs);
  List.iter (fun (n, len, _) -> if len <= 0 then error "array %s has non-positive length" n) p.Ast.arrays;
  let ctx =
    { prog = p;
      global_set = sset_of_list gnames;
      array_set = sset_of_list anames;
      mutex_set = sset_of_list p.Ast.mutexes;
      cond_set = sset_of_list p.Ast.conds;
      barrier_set = sset_of_list bnames;
      sem_set = sset_of_list snames
    }
  in
  (match Ast.find_func p "main" with
  | None -> error "program %s has no main function" p.Ast.pname
  | Some f -> if f.Ast.params <> [] then error "main must take no parameters");
  let funcs =
    List.fold_left
      (fun m f -> Portend_util.Maps.Smap.add f.Ast.fname (compile_func ctx f) m)
      Portend_util.Maps.Smap.empty p.Ast.funcs
  in
  { pname = p.Ast.pname;
    funcs;
    globals = p.Ast.globals;
    arrays = p.Ast.arrays;
    barriers = p.Ast.barriers;
    sems = p.Ast.sems;
    source = p
  }
