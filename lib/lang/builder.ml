(** Combinator eDSL for constructing Racelang programs in OCaml.

    The workload models (lib/workloads) are written with these combinators;
    they read close to the C snippets in the paper (cf. Fig 4 and Fig 8). *)

open Ast

(* Expressions *)

let i n = Int n
let l x = Local x
let g x = Global x
let arr a idx = ArrGet (a, idx)

let neg e = Unop (Portend_solver.Expr.Neg, e)
let not_ e = Unop (Portend_solver.Expr.Lnot, e)
let ( + ) a b = Binop (Portend_solver.Expr.Add, a, b)
let ( - ) a b = Binop (Portend_solver.Expr.Sub, a, b)
let ( * ) a b = Binop (Portend_solver.Expr.Mul, a, b)
let ( / ) a b = Binop (Portend_solver.Expr.Div, a, b)
let ( % ) a b = Binop (Portend_solver.Expr.Rem, a, b)
let ( == ) a b = Binop (Portend_solver.Expr.Eq, a, b)
let ( != ) a b = Binop (Portend_solver.Expr.Ne, a, b)
let ( < ) a b = Binop (Portend_solver.Expr.Lt, a, b)
let ( <= ) a b = Binop (Portend_solver.Expr.Le, a, b)
let ( > ) a b = Binop (Portend_solver.Expr.Gt, a, b)
let ( >= ) a b = Binop (Portend_solver.Expr.Ge, a, b)
let ( && ) a b = Binop (Portend_solver.Expr.Land, a, b)
let ( || ) a b = Binop (Portend_solver.Expr.Lor, a, b)
let cond c a b = Cond (c, a, b)

(* Statements *)

let var x e = Decl (x, e)
let set x e = Assign (x, e)
let setg x e = SetGlobal (x, e)
let seta a idx e = SetArr (a, idx, e)
let if_ c then_ else_ = If (c, then_, else_)
let while_ c body = While (c, body)
let lock m = Lock m
let unlock m = Unlock m
let wait c m = Wait (c, m)
let signal c = Signal c
let broadcast c = Broadcast c
let barrier b = BarrierWait b
let sem_wait s = SemWait s
let sem_post s = SemPost s
let atomic body = Atomic body
let spawn ?into f args = Spawn (into, f, args)
let join e = Join e
let output es = Output es
let print s = Print s
let input x ~name ~lo ~hi = Input (x, name, { lo; hi })
let assert_ e msg = Assert (e, msg)
let yield = Yield
let free a = Free a
let call ?into f args = Call (into, f, args)
let return ?value () = Return value

(** [incr_global x] is the classic racy read-modify-write [x = x + 1]. *)
let incr_global x = setg x (g x + i 1)

(** A critical section: [lock m; body; unlock m]. *)
let critical m body = (lock m :: body) @ [ unlock m ]

(* Program assembly *)

let func fname params body = { fname; params; body }

let program ?(globals = []) ?(arrays = []) ?(mutexes = []) ?(conds = []) ?(barriers = [])
    ?(sems = []) pname funcs =
  { pname; globals; arrays; mutexes; conds; barriers; sems; funcs }
