(** Combinator eDSL for constructing Racelang programs in OCaml.

    The workload models are written with these combinators; they read close
    to the C snippets in the paper (cf. Fig 4 and Fig 8).  Note that the
    arithmetic and comparison operators are shadowed for {!Ast.expr}
    construction — open this module locally. *)

(** {1 Expressions} *)

val i : int -> Ast.expr
(** integer literal *)

val l : string -> Ast.expr
(** thread-local variable / parameter *)

val g : string -> Ast.expr
(** shared global variable *)

val arr : string -> Ast.expr -> Ast.expr
(** shared array read *)

val neg : Ast.expr -> Ast.expr
val not_ : Ast.expr -> Ast.expr
val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( / ) : Ast.expr -> Ast.expr -> Ast.expr
val ( % ) : Ast.expr -> Ast.expr -> Ast.expr
val ( == ) : Ast.expr -> Ast.expr -> Ast.expr
val ( != ) : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( > ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( && ) : Ast.expr -> Ast.expr -> Ast.expr
val ( || ) : Ast.expr -> Ast.expr -> Ast.expr
val cond : Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr

(** {1 Statements} *)

val var : string -> Ast.expr -> Ast.stmt
(** declare a thread-local *)

val set : string -> Ast.expr -> Ast.stmt
(** assign a declared local *)

val setg : string -> Ast.expr -> Ast.stmt
val seta : string -> Ast.expr -> Ast.expr -> Ast.stmt
val if_ : Ast.expr -> Ast.stmt list -> Ast.stmt list -> Ast.stmt
val while_ : Ast.expr -> Ast.stmt list -> Ast.stmt
val lock : string -> Ast.stmt
val unlock : string -> Ast.stmt
val wait : string -> string -> Ast.stmt
val signal : string -> Ast.stmt
val broadcast : string -> Ast.stmt
val barrier : string -> Ast.stmt
val sem_wait : string -> Ast.stmt
val sem_post : string -> Ast.stmt

val atomic : Ast.stmt list -> Ast.stmt
(** a globally-exclusive region: no preemption while the block runs *)

val spawn : ?into:string -> string -> Ast.expr list -> Ast.stmt
val join : Ast.expr -> Ast.stmt
val output : Ast.expr list -> Ast.stmt
val print : string -> Ast.stmt
val input : string -> name:string -> lo:int -> hi:int -> Ast.stmt
val assert_ : Ast.expr -> string -> Ast.stmt
val yield : Ast.stmt
val free : string -> Ast.stmt
val call : ?into:string -> string -> Ast.expr list -> Ast.stmt
val return : ?value:Ast.expr -> unit -> Ast.stmt

val incr_global : string -> Ast.stmt
(** the classic racy read-modify-write [x = x + 1] *)

val critical : string -> Ast.stmt list -> Ast.stmt list
(** [lock m; body; unlock m] *)

(** {1 Program assembly} *)

val func : string -> string list -> Ast.stmt list -> Ast.func

val program :
  ?globals:(string * int) list ->
  ?arrays:(string * int * int) list ->
  ?mutexes:string list ->
  ?conds:string list ->
  ?barriers:(string * int) list ->
  ?sems:(string * int) list ->
  string ->
  Ast.func list ->
  Ast.program
