(** A versioned, content-addressed on-disk store for cross-run
    incrementality.

    Layout (all under one root directory, [_portend_cache/] by default):

    {v
    _portend_cache/
      v1/                     <- format version stamp
        verdicts/<key>.bin    <- final pipeline verdicts
        solver/<key>.bin      <- canonical-query memo snapshots
        summaries/<key>.bin   <- per-function static-analysis summaries
    v}

    Design rules, in decreasing order of importance:

    - {b Correctness over hits.}  Keys are content hashes (program
      bytecode, recorded trace, effective config, function bodies) — never
      file mtimes.  An entry is served only if its recorded key matches the
      requested key byte-for-byte, so a hash-collision or a file renamed by
      hand degrades to a miss.
    - {b A bad entry is a miss, never an error.}  Every failure on the read
      path — missing file, truncated [Marshal] blob, permission problem,
      an entry written by a different build — is caught and reported as a
      miss; a corrupt entry is additionally unlinked so it cannot keep
      costing a failed parse.  The analysis pipeline must behave
      identically (except for speed) with a pristine, corrupt, or absent
      cache.
    - {b Writes are atomic.}  Entries are marshalled to a unique temp file
      in the same directory and [Sys.rename]d into place, so concurrent
      writers (two [portend] processes sharing a cache dir) can only ever
      race to install complete entries, and readers never observe a torn
      write.  Write failures (disk full, read-only dir) are swallowed: the
      cache is an accelerator, not a database.
    - {b Versioning is structural.}  Entries live under a [v<N>] directory
      derived from {!format_version}; bumping the version makes every old
      entry invisible (a miss) without any migration or deletion logic.

    Stats are process-global atomics per tier, mirrored into
    [portend.telemetry] counters ([cache.hit], [cache.miss], [cache.write],
    [cache.evict] plus per-tier variants) so [portend profile] reports them
    alongside the rest of the pipeline. *)

module Telemetry = Portend_telemetry

(** Bump when the entry encoding or any cached payload type changes shape.
    Old entries become unreachable (their [v<N>] directory is simply never
    consulted) rather than misread. *)
let format_version = 1

type tier =
  | Verdicts  (** final per-(program, trace, config) pipeline results *)
  | Solver_memos  (** canonical-query memo-table snapshots *)
  | Summaries  (** per-function locksets / whole-program MHP / CFG digests *)

let all_tiers = [ Verdicts; Solver_memos; Summaries ]
let tier_name = function Verdicts -> "verdicts" | Solver_memos -> "solver" | Summaries -> "summaries"
let tier_index = function Verdicts -> 0 | Solver_memos -> 1 | Summaries -> 2
let n_tiers = 3

(* --- stats -------------------------------------------------------------- *)

type tier_stats = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
}

let zero_stats = { hits = 0; misses = 0; writes = 0; evictions = 0 }

let c_hits = Array.init n_tiers (fun _ -> Atomic.make 0)
let c_misses = Array.init n_tiers (fun _ -> Atomic.make 0)
let c_writes = Array.init n_tiers (fun _ -> Atomic.make 0)
let c_evictions = Array.init n_tiers (fun _ -> Atomic.make 0)

let count counters tier what =
  Atomic.incr counters.(tier_index tier);
  if Telemetry.enabled () then begin
    Telemetry.incr ("cache." ^ what);
    Telemetry.incr (Printf.sprintf "cache.%s.%s" (tier_name tier) what)
  end

let note_hit t = count c_hits t "hit"
let note_miss t = count c_misses t "miss"
let note_write t = count c_writes t "write"
let note_evict t = count c_evictions t "evict"

let tier_stats tier =
  let i = tier_index tier in
  { hits = Atomic.get c_hits.(i);
    misses = Atomic.get c_misses.(i);
    writes = Atomic.get c_writes.(i);
    evictions = Atomic.get c_evictions.(i)
  }

let stats () = List.map (fun t -> (t, tier_stats t)) all_tiers

let totals () =
  List.fold_left
    (fun acc (_, s) ->
      { hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        writes = acc.writes + s.writes;
        evictions = acc.evictions + s.evictions
      })
    zero_stats (stats ())

let reset_stats () =
  Array.iter (fun a -> Atomic.set a 0) c_hits;
  Array.iter (fun a -> Atomic.set a 0) c_misses;
  Array.iter (fun a -> Atomic.set a 0) c_writes;
  Array.iter (fun a -> Atomic.set a 0) c_evictions

let hit_rate s = if s.hits + s.misses = 0 then 0.0 else float_of_int s.hits /. float_of_int (s.hits + s.misses)

(* --- store handles ------------------------------------------------------ *)

type t = {
  root : string;
  version_dir : string;
  max_entries : int;  (** per-tier entry cap; crossing it evicts oldest *)
  counts : int array;  (** cached per-tier entry counts, [-1] = unknown *)
  lock : Mutex.t;  (** guards [counts] and eviction sweeps *)
}

let default_dir = "_portend_cache"
let default_max_entries = 8192

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (* A concurrent creator winning the race is fine. *)
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let open_store ?(version = format_version) ?(max_entries = default_max_entries) dir =
  let version_dir = Filename.concat dir (Printf.sprintf "v%d" version) in
  List.iter (fun t -> mkdir_p (Filename.concat version_dir (tier_name t))) all_tiers;
  { root = dir;
    version_dir;
    max_entries = max 1 max_entries;
    counts = Array.make n_tiers (-1);
    lock = Mutex.create ()
  }

let root t = t.root

let tier_dir t tier = Filename.concat t.version_dir (tier_name tier)

(* Keys we generate are hex with short ASCII prefixes; anything else is
   flattened so a key can never escape the tier directory. *)
let sanitize_key key =
  String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_') as c -> c | _ -> '_') key

let entry_path t tier key = Filename.concat (tier_dir t tier) (sanitize_key key ^ ".bin")

let is_entry name = Filename.check_suffix name ".bin"

(* --- eviction ----------------------------------------------------------- *)

(* The cap bounds disk usage, nothing else.  Entry *validity* never depends
   on time; mtimes only pick which entries to drop first when the tier
   overflows (oldest-written first, a FIFO approximation). *)
let evict_overflow t tier =
  let dir = tier_dir t tier in
  let entries = try Array.to_list (Sys.readdir dir) with Sys_error _ -> [] in
  let entries = List.filter is_entry entries in
  let n = List.length entries in
  t.counts.(tier_index tier) <- n;
  if n > t.max_entries then begin
    let aged =
      List.filter_map
        (fun name ->
          let path = Filename.concat dir name in
          try Some ((Unix.stat path).Unix.st_mtime, path) with Unix.Unix_error _ -> None)
        entries
    in
    let aged = List.sort compare aged in
    let doomed = List.filteri (fun i _ -> i < n - t.max_entries) aged in
    List.iter
      (fun (_, path) ->
        try
          Sys.remove path;
          t.counts.(tier_index tier) <- t.counts.(tier_index tier) - 1;
          note_evict tier
        with Sys_error _ -> ())
      doomed
  end

let bump_count t tier =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let i = tier_index tier in
      if t.counts.(i) < 0 then
        t.counts.(i) <-
          (try Array.length (Array.of_seq (Seq.filter is_entry (Array.to_seq (Sys.readdir (tier_dir t tier)))))
           with Sys_error _ -> 0)
      else t.counts.(i) <- t.counts.(i) + 1;
      if t.counts.(i) > t.max_entries then evict_overflow t tier)

(* --- raw entries -------------------------------------------------------- *)

(* Every entry is [Marshal (key, payload_bytes)]: echoing the key inside the
   entry lets the read path verify it is handing back the value that was
   stored under this exact content hash, even after hash truncation, manual
   file fiddling, or a (cosmically unlikely) collision. *)

let get_raw t tier ~key : string option =
  let path = entry_path t tier key in
  let read () =
    In_channel.with_open_bin path (fun ic -> (Marshal.from_channel ic : string * string))
  in
  match read () with
  | stored_key, payload when String.equal stored_key key ->
    note_hit tier;
    Some payload
  | _ ->
    (* well-formed entry under the wrong name: drop it *)
    note_miss tier;
    (try Sys.remove path with Sys_error _ -> ());
    None
  | exception _ ->
    note_miss tier;
    (* distinguish "absent" (the normal cold miss) from "present but
       unreadable" (corrupt: unlink so it cannot keep failing) *)
    if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
    None

let tmp_counter = Atomic.make 0

let put_raw t tier ~key payload =
  let path = entry_path t tier key in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1)
  in
  try
    Out_channel.with_open_bin tmp (fun oc -> Marshal.to_channel oc (key, payload) []);
    Sys.rename tmp path;
    note_write tier;
    bump_count t tier
  with _ -> ( try Sys.remove tmp with Sys_error _ -> ())

(* --- typed entries ------------------------------------------------------ *)

(* Marshal is untyped at runtime: the caller must annotate [get]'s result
   with the exact type that was [put] under that key.  Key discipline makes
   this safe — each payload type gets its own key prefix, and the format
   version is bumped whenever a payload type changes shape. *)

let get (type a) t tier ~key : a option =
  match get_raw t tier ~key with
  | None -> None
  | Some payload -> ( try Some (Marshal.from_string payload 0 : a) with _ -> None)

let put t tier ~key v = put_raw t tier ~key (Marshal.to_string v [])

(* --- maintenance -------------------------------------------------------- *)

(** Remove every entry of every tier of this store's version (for cold-run
    benchmarking and tests).  Other format versions are left alone. *)
let clear t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      List.iter
        (fun tier ->
          let dir = tier_dir t tier in
          (try
             Array.iter
               (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
               (Sys.readdir dir)
           with Sys_error _ -> ());
          t.counts.(tier_index tier) <- 0)
        all_tiers)

(** Entries currently on disk in one tier (counts fresh from the dir). *)
let entry_count t tier =
  try Array.length (Array.of_seq (Seq.filter is_entry (Array.to_seq (Sys.readdir (tier_dir t tier)))))
  with Sys_error _ -> 0

let pp_tier fmt tier = Format.pp_print_string fmt (tier_name tier)
