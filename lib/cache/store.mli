(** Versioned, content-addressed on-disk store backing Portend's cross-run
    incrementality (see DESIGN.md §6).

    Three tiers under one root directory, each entry an atomic file named by
    its content-hash key.  All failure modes on the read path are misses,
    never errors; all writes are tmp-file + rename; invalidation is purely
    structural (format version directory + content-hash keys — mtimes are
    used only to order evictions, never to validate entries). *)

(** Current on-disk format version; entries live under [v<N>/]. *)
val format_version : int

type tier =
  | Verdicts  (** final per-(program, trace, config) pipeline results *)
  | Solver_memos  (** canonical-query memo-table snapshots *)
  | Summaries  (** per-function locksets / whole-program MHP / CFG digests *)

val all_tiers : tier list
val tier_name : tier -> string
val pp_tier : Format.formatter -> tier -> unit

(** {1 Store handles} *)

type t

val default_dir : string

(** [open_store ?version ?max_entries dir] creates (if needed) and opens the
    store rooted at [dir].  [version] defaults to {!format_version} and is
    overridable only so tests can simulate format bumps.  [max_entries]
    bounds each tier's on-disk entry count; overflow evicts oldest-written
    entries first. *)
val open_store : ?version:int -> ?max_entries:int -> string -> t

val root : t -> string

(** {1 Entries}

    [get] returns [None] for absent, truncated, version-skewed, or
    otherwise unreadable entries (corrupt files are also unlinked).  The
    result type of [get] must be annotated by the caller with exactly the
    type that was [put] under the key — key prefixes are the per-type
    namespace discipline. *)

val get : t -> tier -> key:string -> 'a option
val put : t -> tier -> key:string -> 'a -> unit

(** Raw (pre-marshalled payload) variants, for tests and tooling. *)

val get_raw : t -> tier -> key:string -> string option
val put_raw : t -> tier -> key:string -> string -> unit

(** Path the entry for [key] would live at (tests corrupt files there). *)
val entry_path : t -> tier -> string -> string

(** {1 Maintenance} *)

(** Delete every entry of this store's version (cold-run benchmarking). *)
val clear : t -> unit

(** Entries currently on disk in one tier. *)
val entry_count : t -> tier -> int

(** {1 Stats}

    Process-global per-tier counters, mirrored to [portend.telemetry] as
    [cache.hit] / [cache.miss] / [cache.write] / [cache.evict] (plus
    [cache.<tier>.<what>]) whenever telemetry is enabled. *)

type tier_stats = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
}

val tier_stats : tier -> tier_stats
val stats : unit -> (tier * tier_stats) list
val totals : unit -> tier_stats
val reset_stats : unit -> unit
val hit_rate : tier_stats -> float
