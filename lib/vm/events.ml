(** Execution events emitted by the interpreter.

    The happens-before race detector, the deadlock detector and the
    classifier's schedule-steering all consume this stream; it is Portend's
    equivalent of the instrumentation KLEE/Cloud9 hooks provide. *)

type access_kind =
  | Read
  | Write

type loc =
  | Lglobal of string
  | Larray of string * int  (** per-cell: arrays race cell-wise *)
  | Lmeta of string  (** array allocation metadata, touched by [free] *)

type site = {
  func : string;
  pc : int;
}
(** A static program location (the “program counter” of trace notation). *)

type t =
  | Access of { tid : int; site : site; loc : loc; kind : access_kind; step : int }
  | Lock_acquired of { tid : int; mutex : string; step : int }
  | Lock_released of { tid : int; mutex : string; step : int }
  | Thread_spawned of { parent : int; child : int; step : int }
  | Thread_joined of { tid : int; child : int; step : int }
  | Cond_waiting of { tid : int; cond : string; step : int }
  | Cond_signalled of { tid : int; cond : string; woken : int list; step : int }
  | Barrier_crossed of { barrier : string; tids : int list; step : int }
  | Sem_acquired of { tid : int; sem : string; step : int }
      (** a [sem_wait] completed (count was positive and was decremented) *)
  | Sem_posted of { tid : int; sem : string; step : int }
  | Atomic_begin of { tid : int; step : int }
  | Atomic_end of { tid : int; step : int }
  | Outputted of { tid : int; site : site; step : int }

(* --- Mazurkiewicz trace equivalence ----------------------------------- *)

(* Two interleavings from the same start state that differ only by swapping
   adjacent independent events execute the same per-thread instruction
   sequences against the same read values, so they reach the same final
   state.  The classifier uses this to skip the output comparison for an
   alternate schedule that is trace-equivalent to one already witnessed
   (sleep-set style pruning of the Ma budget).

   The dependence relation below over-approximates real interference —
   over-approximation only hides equivalences, never invents them, so the
   pruning stays verdict-preserving:

   - any two events of the same thread are dependent (program order), and
     spawn/join/signal tie in the threads they affect;
   - two accesses conflict when they touch the same location (cell-precise
     for arrays; [free]'s metadata touch conflicts with the whole array)
     and at least one writes;
   - lock, condition and barrier operations conflict on the same object;
   - outputs conflict with each other (the output log is order-sensitive). *)

let tids_of = function
  | Access { tid; _ } | Lock_acquired { tid; _ } | Lock_released { tid; _ }
  | Cond_waiting { tid; _ } | Sem_acquired { tid; _ } | Sem_posted { tid; _ }
  | Atomic_begin { tid; _ } | Atomic_end { tid; _ } | Outputted { tid; _ } ->
    [ tid ]
  | Thread_spawned { parent; child; _ } -> [ parent; child ]
  | Thread_joined { tid; child; _ } -> [ tid; child ]
  | Cond_signalled { tid; woken; _ } -> tid :: woken
  | Barrier_crossed { tids; _ } -> tids

let loc_conflict l1 l2 =
  match (l1, l2) with
  | Lglobal a, Lglobal b -> a = b
  | Larray (a, i), Larray (b, j) -> a = b && i = j
  | Lmeta a, Larray (b, _) | Larray (a, _), Lmeta b | Lmeta a, Lmeta b -> a = b
  | Lglobal _, (Larray _ | Lmeta _) | (Larray _ | Lmeta _), Lglobal _ -> false

let conflicts e1 e2 =
  List.exists (fun t -> List.mem t (tids_of e2)) (tids_of e1)
  ||
  match (e1, e2) with
  | Access a1, Access a2 ->
    loc_conflict a1.loc a2.loc && (a1.kind = Write || a2.kind = Write)
  | ( (Lock_acquired { mutex = m1; _ } | Lock_released { mutex = m1; _ }),
      (Lock_acquired { mutex = m2; _ } | Lock_released { mutex = m2; _ }) ) ->
    m1 = m2
  | ( (Cond_waiting { cond = c1; _ } | Cond_signalled { cond = c1; _ }),
      (Cond_waiting { cond = c2; _ } | Cond_signalled { cond = c2; _ }) ) ->
    c1 = c2
  | Barrier_crossed { barrier = b1; _ }, Barrier_crossed { barrier = b2; _ } -> b1 = b2
  | ( (Sem_acquired { sem = s1; _ } | Sem_posted { sem = s1; _ }),
      (Sem_acquired { sem = s2; _ } | Sem_posted { sem = s2; _ }) ) ->
    s1 = s2
  (* atomic regions exclude each other program-wide, like one global lock *)
  | (Atomic_begin _ | Atomic_end _), (Atomic_begin _ | Atomic_end _) -> true
  | Outputted _, Outputted _ -> true
  | _ -> false

let strip_step = function
  | Access a -> Access { a with step = 0 }
  | Lock_acquired a -> Lock_acquired { a with step = 0 }
  | Lock_released a -> Lock_released { a with step = 0 }
  | Thread_spawned a -> Thread_spawned { a with step = 0 }
  | Thread_joined a -> Thread_joined { a with step = 0 }
  | Cond_waiting a -> Cond_waiting { a with step = 0 }
  | Cond_signalled a -> Cond_signalled { a with step = 0 }
  | Barrier_crossed a -> Barrier_crossed { a with step = 0 }
  | Sem_acquired a -> Sem_acquired { a with step = 0 }
  | Sem_posted a -> Sem_posted { a with step = 0 }
  | Atomic_begin a -> Atomic_begin { a with step = 0 }
  | Atomic_end a -> Atomic_end { a with step = 0 }
  | Outputted a -> Outputted { a with step = 0 }

(* Foata normal form: greedily layer the trace so each layer holds pairwise
   independent events and every event sits one layer past its last
   dependence.  Two traces are Mazurkiewicz-equivalent iff their normal
   forms are equal; steps are normalized away (the absolute instruction
   count depends on the interleaving) and layers are sorted so the form is
   canonical.  Compared structurally — no hashing — so equality cannot be
   spoofed by collisions. *)
let foata (events : t list) : t list list =
  let events = List.map strip_step events in
  let layers = ref [] (* newest layer first *) in
  List.iter
    (fun e ->
      (* Depth (from the newest layer) of the most recent conflicting
         layer; the event lands just above it. *)
      let rec depth_of_conflict i = function
        | [] -> None
        | layer :: rest ->
          if List.exists (conflicts e) layer then Some i else depth_of_conflict (i + 1) rest
      in
      match depth_of_conflict 0 !layers with
      | Some 0 -> layers := [ e ] :: !layers (* conflicts with the newest layer: new layer *)
      | None ->
        (* independent of everything so far: joins the oldest layer *)
        let rec add_last = function
          | [] -> [ [ e ] ]
          | [ last ] -> [ e :: last ]
          | l :: rest -> l :: add_last rest
        in
        layers := add_last !layers
      | Some i ->
        (* joins the layer just above the conflict *)
        layers := List.mapi (fun j l -> if j = i - 1 then e :: l else l) !layers)
    events;
  List.rev_map (List.sort compare) !layers

(** Are two event traces equivalent up to commuting adjacent independent
    events?  Sound for equal-start-state executions: equivalent traces
    reach the same final state. *)
let equivalent a b = List.length a = List.length b && foata a = foata b

let pp_loc fmt = function
  | Lglobal v -> Fmt.string fmt v
  | Larray (a, i) -> Fmt.pf fmt "%s[%d]" a i
  | Lmeta a -> Fmt.pf fmt "meta(%s)" a

let pp_site fmt { func; pc } = Fmt.pf fmt "%s:%d" func pc

let pp_kind fmt = function Read -> Fmt.string fmt "READ" | Write -> Fmt.string fmt "WRITE"

let pp fmt = function
  | Access { tid; site; loc; kind; step } ->
    Fmt.pf fmt "[%d] T%d %a %a @%a" step tid pp_kind kind pp_loc loc pp_site site
  | Lock_acquired { tid; mutex; step } -> Fmt.pf fmt "[%d] T%d acquire %s" step tid mutex
  | Lock_released { tid; mutex; step } -> Fmt.pf fmt "[%d] T%d release %s" step tid mutex
  | Thread_spawned { parent; child; step } -> Fmt.pf fmt "[%d] T%d spawn T%d" step parent child
  | Thread_joined { tid; child; step } -> Fmt.pf fmt "[%d] T%d join T%d" step tid child
  | Cond_waiting { tid; cond; step } -> Fmt.pf fmt "[%d] T%d wait %s" step tid cond
  | Cond_signalled { tid; cond; woken; step } ->
    Fmt.pf fmt "[%d] T%d signal %s -> %a" step tid cond Fmt.(list ~sep:comma int) woken
  | Barrier_crossed { barrier; tids; step } ->
    Fmt.pf fmt "[%d] barrier %s crossed by %a" step barrier Fmt.(list ~sep:comma int) tids
  | Sem_acquired { tid; sem; step } -> Fmt.pf fmt "[%d] T%d sem_wait %s" step tid sem
  | Sem_posted { tid; sem; step } -> Fmt.pf fmt "[%d] T%d sem_post %s" step tid sem
  | Atomic_begin { tid; step } -> Fmt.pf fmt "[%d] T%d atomic_begin" step tid
  | Atomic_end { tid; step } -> Fmt.pf fmt "[%d] T%d atomic_end" step tid
  | Outputted { tid; site; step } -> Fmt.pf fmt "[%d] T%d output @%a" step tid pp_site site
