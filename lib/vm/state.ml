(** The complete machine state of a Racelang execution.

    The state is a persistent value: the record/replay engine and Algorithm 1
    checkpoint an execution by simply keeping the state (cf. the paper's
    [checkpoint()] on pre-race and post-race states), and symbolic forks
    duplicate it for free. *)

open Portend_util.Maps
module B = Portend_lang.Bytecode

type frame = {
  func : string;
  pc : int;
  regs : Value.t Imap.t;
  ret_to : int option;  (** caller register awaiting our return value *)
}

type tstatus =
  | Runnable
  | Blocked_lock of string  (** waiting to acquire a mutex *)
  | Blocked_join of int  (** waiting for a thread to finish *)
  | Blocked_cond of string * string  (** parked on (cond, mutex-to-reacquire) *)
  | Blocked_reacquire of string  (** woken from a cond; must reacquire the mutex *)
  | Blocked_barrier of string
  | Blocked_sem of string  (** waiting for the count to become positive *)
  | Finished

type thread = {
  tid : int;
  frames : frame list;  (** head = active frame; empty iff finished *)
  status : tstatus;
}

type arr = {
  len : int;
  cells : Value.t Imap.t;  (** sparse over the default *)
  default : Value.t;
  freed : bool;
}

type payload =
  | Vals of Value.t list
  | Text of string

type output = {
  out_tid : int;
  out_site : Events.site;
  payload : payload;
}

type memory_model =
  | Sequential  (** sequentially consistent: loads see the latest store *)
  | Adversarial of { depth : int }
      (** adversarial memory in the sense of Flanagan & Freund [17]: a load
          of a shared global may also return one of the last [depth] values
          overwritten by racing stores — the stale-but-valid values a weaker
          consistency model could expose.  The interpreter forks on such
          loads, so exploration covers the weak behaviours. *)

type input_mode =
  | Symbolic  (** each [input] yields a fresh symbolic variable *)
  | Concrete of int Smap.t
      (** values per input key; missing keys default to the low end of the
          declared range *)
  | Mixed of { model : int Smap.t; limit : int }
      (** the first [limit] inputs drawn become symbolic, the rest concrete
          from [model] — the paper's “number of symbolic inputs” dial
          (§3.3) *)

type t = {
  prog : B.t;
  threads : thread Imap.t;
  globals : Value.t Smap.t;
  arrays : arr Smap.t;
  mutexes : int option Smap.t;  (** owner tid *)
  cond_waiters : int list Smap.t;  (** FIFO queues *)
  barrier_waiters : int list Smap.t;
  sems : int Smap.t;  (** current counts *)
  atomic_owner : (int * int) option;
      (** (tid, nesting depth) of the thread inside an [atomic] region; while
          set, only that thread is schedulable *)
  outputs : output list;  (** newest first *)
  path_cond : Portend_solver.Expr.t list;
      (** constraints accumulated at symbolic branches *)
  input_ranges : (string * int * int) list;  (** per generated input key *)
  input_log : (string * Value.t) list;  (** what each [input] returned *)
  input_mode : input_mode;
  input_counts : int Smap.t;  (** occurrences per source-level input name *)
  steps : int;  (** absolute instruction count (trace notation, §3.1) *)
  next_tid : int;
  memory_model : memory_model;
  ghistory : Value.t list Smap.t;  (** overwritten values per global, newest
                                       first, bounded by the model depth *)
}

let main_tid = 0

let init ?(input_mode = Concrete Smap.empty) ?(memory_model = Sequential) (prog : B.t) : t =
  let main =
    match B.find_func prog "main" with
    | Some f -> f
    | None -> invalid_arg "State.init: program has no main"
  in
  let frame = { func = main.B.fname; pc = 0; regs = Imap.empty; ret_to = None } in
  let thread = { tid = main_tid; frames = [ frame ]; status = Runnable } in
  { prog;
    threads = Imap.of_list [ (main_tid, thread) ];
    globals = Smap.of_list (List.map (fun (n, v) -> (n, Value.of_int v)) prog.B.globals);
    arrays =
      Smap.of_list
        (List.map
           (fun (n, len, init) ->
             (n, { len; cells = Imap.empty; default = Value.of_int init; freed = false }))
           prog.B.arrays);
    mutexes = Smap.empty;
    cond_waiters = Smap.empty;
    barrier_waiters = Smap.empty;
    sems = Smap.of_list prog.B.sems;
    atomic_owner = None;
    outputs = [];
    path_cond = [];
    input_ranges = [];
    input_log = [];
    input_mode;
    input_counts = Smap.empty;
    steps = 0;
    next_tid = main_tid + 1;
    memory_model;
    ghistory = Smap.empty
  }

let thread t tid =
  match Imap.find_opt tid t.threads with
  | Some th -> th
  | None -> invalid_arg (Printf.sprintf "State.thread: no thread %d" tid)

let update_thread t th = { t with threads = Imap.add th.tid th t.threads }

let active_frame th =
  match th.frames with
  | f :: _ -> f
  | [] -> invalid_arg "State.active_frame: thread has no frames"

(** The instruction the thread would execute next, or [None] if finished. *)
let next_inst t tid =
  let th = thread t tid in
  match th.frames with
  | [] -> None
  | f :: _ -> (
    match B.find_func t.prog f.func with
    | None -> None
    | Some fn -> if f.pc < Array.length fn.B.code then Some fn.B.code.(f.pc) else None)

let mutex_owner t m = Option.join (Smap.find_opt m t.mutexes)

let thread_finished t tid =
  match Imap.find_opt tid t.threads with
  | Some { status = Finished; _ } -> true
  | Some _ | None -> false

(** Can this thread make progress if scheduled right now?  Threads blocked on
    a mutex become schedulable the moment the mutex is free (the scheduler
    decides who wins the race to acquire, as with real pthreads). *)
let can_run t th =
  match th.status with
  | Runnable -> true
  | Blocked_lock m | Blocked_reacquire m -> mutex_owner t m = None
  | Blocked_join tid -> thread_finished t tid
  | Blocked_sem s -> Smap.find_or ~default:0 s t.sems > 0
  | Blocked_cond _ | Blocked_barrier _ | Finished -> false

(* While a thread is inside an [atomic] region only it may be scheduled:
   the region is a single global critical section with no preemption
   points.  If the owner blocks inside the region (a bug `portend lint`
   flags) nothing is runnable and the run ends in a deadlock report. *)
let runnable t =
  match t.atomic_owner with
  | Some (owner, _) ->
    if can_run t (thread t owner) then [ owner ] else []
  | None ->
    Imap.fold (fun tid th acc -> if can_run t th then tid :: acc else acc) t.threads []
    |> List.rev

let all_finished t = Imap.for_all (fun _ th -> th.status = Finished) t.threads

let live_tids t =
  Imap.fold (fun tid th acc -> if th.status <> Finished then tid :: acc else acc) t.threads []
  |> List.rev

(** Outputs in program order. *)
let outputs t = List.rev t.outputs

(* --- structural fingerprint ------------------------------------------- *)

(* The multi-path explorer dedups frontier states by fingerprint and the
   classifier dedups reconverging alternate schedules by the fingerprint of
   their final states, so the hash must cover every field that can influence
   either the rest of the execution or the verdict:

   - covered: threads (frames, pcs, registers, statuses), shared memory
     (globals, arrays, ghistory), synchronization (mutexes, cond and barrier
     waiters), outputs, the path condition, declared input ranges, input
     mode/counts, step and tid counters, and the memory model;
   - excluded: [prog] (fixed within one exploration) and [input_log] — the
     log is event-order metadata replayed for evidence reports, not state
     the execution can branch on.

   Maps hash by a fold over their bindings, which [Map] yields in key order,
   so two states built through different insertion orders hash equal.

   Hashing goes through [Portend_util.Chash] — the repo's stable content
   hash, shared with the on-disk cache keys — so fingerprints are identical
   across runs and processes (no [Hashtbl.hash], whose traversal is bounded
   and whose value is unspecified across OCaml releases).  Expressions keep
   their own structural [Expr.hash]; its result is folded in as an int. *)

module E = Portend_solver.Expr
module H = Portend_util.Chash

let mix = H.int
let mix_str = H.string
let mix_value h = function Value.Con n -> mix (mix h 3) n | Value.Sym e -> mix (mix h 5) (E.hash e)

let mix_frame h f =
  let h = mix (mix_str h f.func) f.pc in
  let h = Imap.fold (fun r v h -> mix_value (mix h r) v) f.regs h in
  match f.ret_to with None -> mix h 0 | Some r -> mix (mix h 1) r

let mix_status h = function
  | Runnable -> mix h 10
  | Blocked_lock m -> mix_str (mix h 11) m
  | Blocked_join tid -> mix (mix h 12) tid
  | Blocked_cond (c, m) -> mix_str (mix_str (mix h 13) c) m
  | Blocked_reacquire m -> mix_str (mix h 14) m
  | Blocked_barrier b -> mix_str (mix h 15) b
  | Blocked_sem s -> mix_str (mix h 17) s
  | Finished -> mix h 16

let mix_site h (s : Events.site) = mix_str (mix h s.Events.pc) s.Events.func

let mix_output h o =
  let h = mix_site (mix h o.out_tid) o.out_site in
  match o.payload with
  | Vals vs -> List.fold_left mix_value (mix h 20) vs
  | Text s -> mix_str (mix h 21) s

let mix_model h (m : int Smap.t) = Smap.fold (fun k n h -> mix (mix_str h k) n) m h

let fingerprint (t : t) : int64 =
  let h = H.seed in
  let h =
    Imap.fold
      (fun tid th h ->
        let h = mix (mix h tid) (List.length th.frames) in
        let h = List.fold_left mix_frame h th.frames in
        mix_status h th.status)
      t.threads h
  in
  let h = Smap.fold (fun k v h -> mix_value (mix_str h k) v) t.globals h in
  let h =
    Smap.fold
      (fun k a h ->
        let h = mix (mix_str h k) a.len in
        let h = mix_value h a.default in
        let h = mix h (if a.freed then 1 else 0) in
        Imap.fold (fun i v h -> mix_value (mix h i) v) a.cells h)
      t.arrays h
  in
  let h =
    Smap.fold
      (fun m owner h ->
        match owner with None -> mix (mix_str h m) (-1) | Some tid -> mix (mix_str h m) tid)
      t.mutexes h
  in
  let h = Smap.fold (fun c tids h -> List.fold_left mix (mix_str h c) tids) t.cond_waiters h in
  let h = Smap.fold (fun b tids h -> List.fold_left mix (mix_str h b) tids) t.barrier_waiters h in
  let h = Smap.fold (fun s n h -> mix (mix_str h s) n) t.sems h in
  let h =
    match t.atomic_owner with
    | None -> mix h 50
    | Some (tid, depth) -> mix (mix (mix h 51) tid) depth
  in
  let h = List.fold_left mix_output (mix h (List.length t.outputs)) t.outputs in
  let h = List.fold_left (fun h c -> mix h (E.hash c)) (mix h (List.length t.path_cond)) t.path_cond in
  let h =
    List.fold_left
      (fun h (v, lo, hi) -> mix (mix (mix_str h v) lo) hi)
      (mix h (List.length t.input_ranges))
      t.input_ranges
  in
  let h =
    match t.input_mode with
    | Symbolic -> mix h 30
    | Concrete m -> mix_model (mix h 31) m
    | Mixed { model; limit } -> mix (mix_model (mix h 32) model) limit
  in
  let h = mix_model h t.input_counts in
  let h = mix (mix h t.steps) t.next_tid in
  let h =
    match t.memory_model with
    | Sequential -> mix h 40
    | Adversarial { depth } -> mix (mix h 41) depth
  in
  let h = Smap.fold (fun g vs h -> List.fold_left mix_value (mix_str h g) vs) t.ghistory h in
  Int64.of_int h

(** Declared ranges in solver format, for every symbolic input drawn so far. *)
let solver_ranges t = t.input_ranges

let pp_output fmt o =
  match o.payload with
  | Vals vs ->
    Fmt.pf fmt "T%d@%a: %a" o.out_tid Events.pp_site o.out_site Fmt.(list ~sep:comma Value.pp) vs
  | Text s -> Fmt.pf fmt "T%d@%a: %S" o.out_tid Events.pp_site o.out_site s

(** Render the output sequence for humans (evidence reports). *)
let pp_outputs fmt t = Fmt.(list ~sep:cut pp_output) fmt (outputs t)
