(** Schedule traces: the record side of Portend's record/replay engine.

    A trace is the sequence of scheduling decisions taken at preemption
    points with the absolute instruction count at each decision (§3.1), plus
    the concrete values every [input] returned — enough to replay an
    execution faithfully or re-explore it with the inputs made symbolic. *)

type entry = {
  d_tid : int;  (** thread scheduled at this decision *)
  d_step : int;  (** absolute instruction count when the decision was taken *)
}

type t = {
  entries : entry list;  (** chronological *)
  inputs : (string * int) list;  (** input key -> concrete value drawn *)
}

(** The decision tids, chronological. *)
val decisions : t -> int list

val length : t -> int

(** Assemble a trace from a run's decision and step lists (same length). *)
val of_run :
  decisions:int list -> decision_steps:int list -> inputs:(string * int) list -> t

(** First [n] decisions. *)
val take : int -> t -> t

(** The recorded inputs as a solver/VM model. *)
val input_model : t -> int Portend_util.Maps.Smap.t

(** Stable content hash ({!Portend_util.Chash}), for cross-run cache keys. *)
val chash : t -> int

val pp : Format.formatter -> t -> unit

(** Compact single-line serialization (CLI save/reload). *)
val to_string : t -> string

(** Inverse of {!to_string}.  Raises [Invalid_argument] on malformed text. *)
val of_string : string -> t
