(** The instruction interpreter.

    [step st tid] executes the next instruction of thread [tid] and returns
    the successor states.  There is usually exactly one successor; there are
    two when the instruction branches on a condition that depends on symbolic
    input and both outcomes are feasible (the symbolic-execution fork of
    §3.3), or when a fault such as an out-of-bounds index or a division by
    zero is only {e possibly} triggered under the current path condition.

    A successor may carry a {!Crash.t}: a "basic" specification violation
    detected at this instruction. *)

open State
module B = Portend_lang.Bytecode
module E = Portend_solver.Expr
module Solver = Portend_solver.Solver
module Imap = Portend_util.Maps.Imap
module Smap = Portend_util.Maps.Smap

exception Internal of string

let internal fmt = Fmt.kstr (fun s -> raise (Internal s)) fmt

type succ = {
  succ_state : State.t;
  succ_events : Events.t list;
  succ_crash : Crash.t option;
}

let ok ?(events = []) st = { succ_state = st; succ_events = events; succ_crash = None }

let faulted ?(events = []) st c =
  Portend_telemetry.incr "vm.faults";
  { succ_state = st; succ_events = events; succ_crash = Some c }

let getop regs = function
  | B.Imm n -> Value.of_int n
  | B.Reg r -> Imap.find_or ~default:(Value.of_int 0) r regs

(* Is [extra @ path_cond] satisfiable? *)
let feasible st extra =
  Solver.sat ~ranges:st.input_ranges (List.rev_append extra st.path_cond)

let add_path st cs = { st with path_cond = List.rev_append cs st.path_cond }

(* Advance the active frame of [th] past the current instruction, optionally
   writing a register, and count the instruction. *)
let advance ?reg st th frame rest =
  let regs = match reg with Some (r, v) -> Imap.add r v frame.regs | None -> frame.regs in
  let frame = { frame with pc = frame.pc + 1; regs } in
  (* Successfully executing an instruction always leaves the thread runnable:
     this clears Blocked_lock/Blocked_join once the blocking condition lifted
     and the thread got scheduled again. *)
  let st = update_thread st { th with frames = frame :: rest; status = Runnable } in
  { st with steps = st.steps + 1 }

(* Block without consuming an instruction (the thread will retry when it is
   schedulable again). *)
let block st th status = update_thread st { th with status }

let concretize_model st extra =
  match Solver.solve ~ranges:st.input_ranges (List.rev_append extra st.path_cond) with
  | Solver.Sat m -> Some m
  | Solver.Unsat | Solver.Unknown -> None

let eval_with_model m e =
  let lookup v = match Smap.find_opt v m with Some n -> n | None -> 0 in
  E.eval lookup e

(* Pop the active frame; deliver [v] to the caller or finish the thread. *)
let do_return st th frame rest v =
  match rest with
  | [] ->
    let st = update_thread st { th with frames = []; status = Finished } in
    { st with steps = st.steps + 1 }
  | caller :: above ->
    let caller =
      match (frame.ret_to, v) with
      | Some r, Some v -> { caller with regs = Imap.add r v caller.regs }
      | Some r, None -> { caller with regs = Imap.add r (Value.of_int 0) caller.regs }
      | None, _ -> caller
    in
    let st = update_thread st { th with frames = caller :: above } in
    { st with steps = st.steps + 1 }

let find_func st name =
  match B.find_func st.prog name with
  | Some f -> f
  | None -> internal "unknown function %s" name

let barrier_parties st b =
  match List.assoc_opt b st.prog.B.barriers with
  | Some n -> n
  | None -> internal "unknown barrier %s" b

let input_key name occurrence =
  if occurrence = 0 then name else Printf.sprintf "%s#%d" name occurrence

(* --- array access helpers ------------------------------------------------ *)

let array_of st a =
  match Smap.find_opt a st.arrays with
  | Some arr -> arr
  | None -> internal "unknown array %s" a

(* Resolve an index value to zero, one or two successors via [mk_ok idx st]
   for the in-bounds case.  Handles freed arrays, concrete out-of-bounds, and
   symbolic indices (fork between an in-bounds, concretized index and an
   out-of-bounds crash when both are feasible). *)
let with_array_cell st step_site a idx_v ~mk_ok =
  let arr = array_of st a in
  if arr.freed then [ faulted st (Crash.Use_after_free a) ]
  else
    match idx_v with
    | Value.Con i ->
      if i < 0 || i >= arr.len then
        [ faulted st (Crash.Out_of_bounds { arr = a; index = i; len = arr.len }) ]
      else [ mk_ok i st ]
    | Value.Sym e ->
      let inb = [ E.Binop (Ge, e, Const 0); E.Binop (Lt, e, Const arr.len) ] in
      let oob = [ E.Binop (Lor, E.Binop (Lt, e, Const 0), E.Binop (Ge, e, Const arr.len)) ] in
      let ok_succ =
        match concretize_model st inb with
        | None -> []
        | Some m ->
          let i = eval_with_model m e in
          let st = add_path st (E.Binop (Eq, e, Const i) :: inb) in
          [ mk_ok i st ]
      in
      let crash_succ =
        match concretize_model st oob with
        | None -> []
        | Some m ->
          let i = eval_with_model m e in
          let st = add_path st oob in
          [ faulted st (Crash.Out_of_bounds { arr = a; index = i; len = arr.len }) ]
      in
      (match ok_succ @ crash_succ with
      | [] -> internal "array index infeasible both ways at %s:%d" step_site.Events.func
                step_site.Events.pc
      | succs -> succs)

(* --- the interpreter ----------------------------------------------------- *)

let step (st : State.t) (tid : int) : succ list =
  let th = State.thread st tid in
  match th.status with
  | Blocked_reacquire m when State.mutex_owner st m = None ->
    (* Complete the second half of cond_wait: reacquire the mutex.  Counted
       as one step so slicing sees progress; the pc was already advanced past
       the wait. *)
    let st = { st with mutexes = Smap.add m (Some tid) st.mutexes } in
    let st = update_thread st { th with status = Runnable } in
    let st = { st with steps = st.steps + 1 } in
    [ ok ~events:[ Events.Lock_acquired { tid; mutex = m; step = st.steps - 1 } ] st ]
  | _ -> (
  match th.frames with
  | [] -> internal "step: thread %d already finished" tid
  | frame :: rest -> (
    let fn = find_func st frame.func in
    let inst =
      if frame.pc < Array.length fn.B.code then fn.B.code.(frame.pc) else B.IRet None
    in
    let site = Events.{ func = frame.func; pc = frame.pc } in
    let step_no = st.steps in
    let value op = getop frame.regs op in
    match inst with
    | B.IMov (d, a) -> [ ok (advance ~reg:(d, value a) st th frame rest) ]
    | B.IUn (d, op, a) -> [ ok (advance ~reg:(d, Value.unop op (value a)) st th frame rest) ]
    | B.IBin (d, op, a, b) -> (
      let va = value a and vb = value b in
      let compute st vb' =
        ok (advance ~reg:(d, Value.binop op va vb') st th frame rest)
      in
      match op with
      | E.Div | E.Rem -> (
        match vb with
        | Value.Con 0 -> [ faulted st Crash.Division_by_zero ]
        | Value.Con _ -> [ compute st vb ]
        | Value.Sym e ->
          let zero = E.Binop (Eq, e, Const 0) and nonzero = E.Binop (Ne, e, Const 0) in
          let ok_succ =
            if feasible st [ nonzero ] then [ compute (add_path st [ nonzero ]) vb ] else []
          in
          let crash_succ =
            if feasible st [ zero ] then [ faulted (add_path st [ zero ]) Crash.Division_by_zero ]
            else []
          in
          (match ok_succ @ crash_succ with
          | [] -> internal "division feasibility vanished at %s:%d" site.func site.pc
          | succs -> succs))
      | E.Add | E.Sub | E.Mul | E.Eq | E.Ne | E.Lt | E.Le | E.Gt | E.Ge | E.Land | E.Lor ->
        [ compute st vb ])
    | B.ILoadG (d, v) ->
      let fresh = Smap.find_or ~default:(Value.of_int 0) v st.globals in
      let ev = Events.Access { tid; site; loc = Events.Lglobal v; kind = Events.Read; step = step_no } in
      let candidates =
        match st.memory_model with
        | State.Sequential -> [ fresh ]
        | State.Adversarial _ ->
          (* a racy load may also observe recently overwritten values *)
          fresh :: List.filter (fun s -> not (Value.equal s fresh))
                     (Smap.find_or ~default:[] v st.ghistory)
      in
      List.map (fun value -> ok ~events:[ ev ] (advance ~reg:(d, value) st th frame rest))
        candidates
    | B.IStoreG (v, a) ->
      let st =
        match st.memory_model with
        | State.Sequential -> st
        | State.Adversarial { depth } ->
          let old = Smap.find_or ~default:(Value.of_int 0) v st.globals in
          let hist = old :: Smap.find_or ~default:[] v st.ghistory in
          let hist = List.filteri (fun i _ -> i < depth) hist in
          { st with ghistory = Smap.add v hist st.ghistory }
      in
      let st = { st with globals = Smap.add v (value a) st.globals } in
      let ev = Events.Access { tid; site; loc = Events.Lglobal v; kind = Events.Write; step = step_no } in
      [ ok ~events:[ ev ] (advance st th frame rest) ]
    | B.ILoadA (d, a, idx) ->
      with_array_cell st site a (value idx) ~mk_ok:(fun i st ->
          let arr = array_of st a in
          let cell = Imap.find_or ~default:arr.default i arr.cells in
          let ev =
            Events.Access { tid; site; loc = Events.Larray (a, i); kind = Events.Read; step = step_no }
          in
          ok ~events:[ ev ] (advance ~reg:(d, cell) st th frame rest))
    | B.IStoreA (a, idx, v) ->
      let vv = value v in
      with_array_cell st site a (value idx) ~mk_ok:(fun i st ->
          let arr = array_of st a in
          let arr = { arr with cells = Imap.add i vv arr.cells } in
          let st = { st with arrays = Smap.add a arr st.arrays } in
          let ev =
            Events.Access { tid; site; loc = Events.Larray (a, i); kind = Events.Write; step = step_no }
          in
          ok ~events:[ ev ] (advance st th frame rest))
    | B.IFree a ->
      let arr = array_of st a in
      if arr.freed then [ faulted st (Crash.Double_free a) ]
      else
        let st = { st with arrays = Smap.add a { arr with freed = true } st.arrays } in
        let ev =
          Events.Access { tid; site; loc = Events.Lmeta a; kind = Events.Write; step = step_no }
        in
        [ ok ~events:[ ev ] (advance st th frame rest) ]
    | B.IJmp l ->
      let st = update_thread st { th with frames = { frame with pc = l } :: rest } in
      [ ok { st with steps = st.steps + 1 } ]
    | B.IBr (c, l1, l2) -> (
      let goto st l =
        let st = update_thread st { th with frames = { frame with pc = l } :: rest } in
        { st with steps = st.steps + 1 }
      in
      match Value.truth (value c) with
      | Value.True -> [ ok (goto st l1) ]
      | Value.False -> [ ok (goto st l2) ]
      | Value.Unknown cond ->
        let ncond = Portend_solver.Simplify.falsy cond in
        let t_ok = feasible st [ cond ] and f_ok = feasible st [ ncond ] in
        let t_succ = if t_ok then [ ok (goto (add_path st [ cond ]) l1) ] else [] in
        let f_succ = if f_ok then [ ok (goto (add_path st [ ncond ]) l2) ] else [] in
        (match t_succ @ f_succ with
        | [] -> internal "branch infeasible both ways at %s:%d" site.func site.pc
        | succs -> succs))
    | B.ICall (dst, f, args) ->
      let callee = find_func st f in
      let regs =
        List.fold_left
          (fun (i, regs) a -> (i + 1, Imap.add i (value a) regs))
          (0, Imap.empty) args
        |> snd
      in
      let caller = { frame with pc = frame.pc + 1 } in
      let new_frame = { func = callee.B.fname; pc = 0; regs; ret_to = dst } in
      let st = update_thread st { th with frames = new_frame :: caller :: rest } in
      [ ok { st with steps = st.steps + 1 } ]
    | B.IRet v -> [ ok (do_return st th frame rest (Option.map value v)) ]
    | B.ISpawn (dst, f, args) ->
      let callee = find_func st f in
      let regs =
        List.fold_left
          (fun (i, regs) a -> (i + 1, Imap.add i (value a) regs))
          (0, Imap.empty) args
        |> snd
      in
      let child_tid = st.next_tid in
      let child =
        { tid = child_tid;
          frames = [ { func = callee.B.fname; pc = 0; regs; ret_to = None } ];
          status = Runnable
        }
      in
      let st = { st with next_tid = child_tid + 1 } in
      let st = update_thread st child in
      let reg = Option.map (fun r -> (r, Value.of_int child_tid)) dst in
      let st = advance ?reg st th frame rest in
      [ ok ~events:[ Events.Thread_spawned { parent = tid; child = child_tid; step = step_no } ] st ]
    | B.IJoin a -> (
      match value a with
      | Value.Sym _ -> internal "join on symbolic tid at %s:%d" site.func site.pc
      | Value.Con child ->
        if State.thread_finished st child then
          let st = advance st th frame rest in
          [ ok ~events:[ Events.Thread_joined { tid; child; step = step_no } ] st ]
        else [ ok (block st th (Blocked_join child)) ])
    | B.ILock m -> (
      match State.mutex_owner st m with
      | None ->
        let st = { st with mutexes = Smap.add m (Some tid) st.mutexes } in
        let st = advance st th frame rest in
        [ ok ~events:[ Events.Lock_acquired { tid; mutex = m; step = step_no } ] st ]
      | Some _ -> [ ok (block st th (Blocked_lock m)) ])
    | B.IUnlock m -> (
      match State.mutex_owner st m with
      | Some owner when owner = tid ->
        let st = { st with mutexes = Smap.add m None st.mutexes } in
        let st = advance st th frame rest in
        [ ok ~events:[ Events.Lock_released { tid; mutex = m; step = step_no } ] st ]
      | Some _ | None -> [ faulted st (Crash.Invalid_unlock m) ])
    | B.IWait (c, m) -> (
      match State.mutex_owner st m with
      | Some owner when owner = tid ->
        let st = { st with mutexes = Smap.add m None st.mutexes } in
        let queue = Smap.find_or ~default:[] c st.cond_waiters in
        let st = { st with cond_waiters = Smap.add c (queue @ [ tid ]) st.cond_waiters } in
        (* Advance past the wait now; when woken the thread reacquires the
           mutex and resumes at the next instruction. *)
        let frame = { frame with pc = frame.pc + 1 } in
        let st =
          update_thread st { th with frames = frame :: rest; status = Blocked_cond (c, m) }
        in
        let st = { st with steps = st.steps + 1 } in
        [ ok
            ~events:
              [ Events.Lock_released { tid; mutex = m; step = step_no };
                Events.Cond_waiting { tid; cond = c; step = step_no }
              ]
            st
        ]
      | Some _ | None -> [ faulted st (Crash.Invalid_unlock m) ])
    | B.ISignal c | B.IBroadcast c ->
      let queue = Smap.find_or ~default:[] c st.cond_waiters in
      let woken, remaining =
        match inst with
        | B.IBroadcast _ -> (queue, [])
        | _ -> ( match queue with [] -> ([], []) | w :: ws -> ([ w ], ws))
      in
      let st = { st with cond_waiters = Smap.add c remaining st.cond_waiters } in
      let st =
        List.fold_left
          (fun st w ->
            let wth = State.thread st w in
            match wth.status with
            | Blocked_cond (_, m) -> update_thread st { wth with status = Blocked_reacquire m }
            | Runnable | Blocked_lock _ | Blocked_reacquire _ | Blocked_join _
            | Blocked_barrier _ | Blocked_sem _ | Finished ->
              internal "woken thread %d was not waiting" w)
          st woken
      in
      let st = advance st th frame rest in
      [ ok ~events:[ Events.Cond_signalled { tid; cond = c; woken; step = step_no } ] st ]
    | B.IBarrier b ->
      let parties = barrier_parties st b in
      let waiting = Smap.find_or ~default:[] b st.barrier_waiters in
      if List.length waiting + 1 >= parties then begin
        (* Last arriver: release everyone. *)
        let st = { st with barrier_waiters = Smap.add b [] st.barrier_waiters } in
        let st =
          List.fold_left
            (fun st w -> update_thread st { (State.thread st w) with status = Runnable })
            st waiting
        in
        let st = advance st th frame rest in
        [ ok
            ~events:[ Events.Barrier_crossed { barrier = b; tids = waiting @ [ tid ]; step = step_no } ]
            st
        ]
      end
      else begin
        let st = { st with barrier_waiters = Smap.add b (waiting @ [ tid ]) st.barrier_waiters } in
        (* Advance past the barrier; resume there when released. *)
        let frame = { frame with pc = frame.pc + 1 } in
        let st =
          update_thread st { th with frames = frame :: rest; status = Blocked_barrier b }
        in
        [ ok { st with steps = st.steps + 1 } ]
      end
    | B.ISemWait s ->
      let count = Smap.find_or ~default:0 s st.sems in
      if count > 0 then begin
        let st = { st with sems = Smap.add s (count - 1) st.sems } in
        let st = advance st th frame rest in
        [ ok ~events:[ Events.Sem_acquired { tid; sem = s; step = step_no } ] st ]
      end
      else [ ok (block st th (Blocked_sem s)) ]
    | B.ISemPost s ->
      let count = Smap.find_or ~default:0 s st.sems in
      let st = { st with sems = Smap.add s (count + 1) st.sems } in
      let st = advance st th frame rest in
      [ ok ~events:[ Events.Sem_posted { tid; sem = s; step = step_no } ] st ]
    | B.IAtomicBegin -> (
      (* [State.runnable] restricts scheduling to the owner while a region
         is active, so a contended begin can only mean a scheduler bug. *)
      match st.atomic_owner with
      | Some (owner, _) when owner <> tid ->
        internal "atomic_begin by T%d while T%d holds the region" tid owner
      | Some (_, depth) ->
        (* nested region: no event, the outer one already excludes the world *)
        let st = { st with atomic_owner = Some (tid, depth + 1) } in
        [ ok (advance st th frame rest) ]
      | None ->
        let st = { st with atomic_owner = Some (tid, 1) } in
        let st = advance st th frame rest in
        [ ok ~events:[ Events.Atomic_begin { tid; step = step_no } ] st ])
    | B.IAtomicEnd -> (
      match st.atomic_owner with
      | Some (owner, depth) when owner = tid ->
        let st = { st with atomic_owner = (if depth = 1 then None else Some (tid, depth - 1)) } in
        let st = advance st th frame rest in
        if depth = 1 then [ ok ~events:[ Events.Atomic_end { tid; step = step_no } ] st ]
        else [ ok st ]
      | Some _ | None -> internal "atomic_end by T%d without owning the region" tid)
    | B.IOutput args ->
      let vals = List.map value args in
      let out = { out_tid = tid; out_site = site; payload = Vals vals } in
      let st = { st with outputs = out :: st.outputs } in
      let st = advance st th frame rest in
      [ ok ~events:[ Events.Outputted { tid; site; step = step_no } ] st ]
    | B.IOutputStr s ->
      let out = { out_tid = tid; out_site = site; payload = Text s } in
      let st = { st with outputs = out :: st.outputs } in
      let st = advance st th frame rest in
      [ ok ~events:[ Events.Outputted { tid; site; step = step_no } ] st ]
    | B.IInput (r, name, range) ->
      let occurrence = Smap.find_or ~default:0 name st.input_counts in
      let key = input_key name occurrence in
      let st = { st with input_counts = Smap.add name (occurrence + 1) st.input_counts } in
      let symbolic st =
        let v = Value.Sym (E.Var key) in
        ( v,
          { st with
            input_ranges =
              (key, range.Portend_lang.Ast.lo, range.Portend_lang.Ast.hi) :: st.input_ranges
          } )
      in
      let concrete st model =
        let n =
          match Smap.find_opt key model with
          | Some n -> max range.Portend_lang.Ast.lo (min range.Portend_lang.Ast.hi n)
          | None -> range.Portend_lang.Ast.lo
        in
        (Value.of_int n, st)
      in
      let v, st =
        match st.input_mode with
        | Symbolic -> symbolic st
        | Concrete model -> concrete st model
        | Mixed { model; limit } ->
          if List.length st.input_ranges < limit then symbolic st else concrete st model
      in
      let st = { st with input_log = (key, v) :: st.input_log } in
      [ ok (advance ~reg:(r, v) st th frame rest) ]
    | B.IAssert (a, msg) -> (
      match Value.truth (value a) with
      | Value.True -> [ ok (advance st th frame rest) ]
      | Value.False -> [ faulted st (Crash.Assertion_failure msg) ]
      | Value.Unknown cond ->
        let ncond = Portend_solver.Simplify.falsy cond in
        let pass =
          if feasible st [ cond ] then [ ok (advance (add_path st [ cond ]) th frame rest) ]
          else []
        in
        let fail =
          if feasible st [ ncond ] then
            [ faulted (add_path st [ ncond ]) (Crash.Assertion_failure msg) ]
          else []
        in
        (match pass @ fail with
        | [] -> internal "assert infeasible both ways at %s:%d" site.func site.pc
        | succs -> succs))
    | B.IYield -> [ ok (advance st th frame rest) ]))
