(** Execution driver: slices (scheduler quanta) and whole-program runs.

    [slice] advances one thread from a decision point to the next; the
    classifier's exploration drives slices directly (it must inspect events
    and steer around racy accesses).  [run] is the convenience loop used for
    recording executions, straight replays, and baseline analyses. *)

module B = Portend_lang.Bytecode
module Telemetry = Portend_telemetry

type slice_end =
  | End_decision  (** the thread's next instruction is a preemption point *)
  | End_paused  (** the thread blocked or finished *)
  | End_crashed of Crash.t

type sliced = {
  s_state : State.t;
  s_events : Events.t list;  (** chronological, this slice only *)
  s_end : slice_end;
}

let is_preemption st tid =
  match State.next_inst st tid with
  | None -> false
  | Some i -> B.shared_access i || B.sync_op i

(* Telemetry for one finished slice batch: instructions executed (the steps
   delta of each returned branch — branches of a symbolic fork each count
   their own continuation), plus how the slices ended.  One call per slice,
   nothing per instruction, so the disabled cost is a single flag read. *)
let record_slices st0 (slices : sliced list) =
  if Telemetry.enabled () then begin
    Telemetry.incr "vm.slices";
    List.iter
      (fun sl ->
        let delta = sl.s_state.State.steps - st0.State.steps in
        if delta > 0 then Telemetry.incr ~by:delta "vm.steps";
        match sl.s_end with
        | End_decision -> Telemetry.incr "vm.preemption_points"
        | End_paused -> Telemetry.incr "vm.slice_paused"
        | End_crashed _ -> Telemetry.incr "vm.slice_crashed")
      slices;
    match slices with
    | _ :: _ :: _ -> Telemetry.incr ~by:(List.length slices - 1) "vm.forks"
    | _ -> ()
  end;
  slices

(** Run [tid] until the next decision point.  Returns one sliced state per
    symbolic fork branch encountered along the way. *)
let slice ?(fuel = 50_000) (st : State.t) (tid : int) : sliced list =
  let rec after_exec st rev_events fuel =
    let th = State.thread st tid in
    if th.State.status = State.Finished || not (State.can_run st th) then
      [ { s_state = st; s_events = List.rev rev_events; s_end = End_paused } ]
    else if is_preemption st tid || fuel <= 0 then
      [ { s_state = st; s_events = List.rev rev_events; s_end = End_decision } ]
    else exec st rev_events fuel
  and exec st rev_events fuel =
    let succs = Interp.step st tid in
    List.concat_map
      (fun s ->
        let rev_events = List.rev_append s.Interp.succ_events rev_events in
        match s.Interp.succ_crash with
        | Some c ->
          [ { s_state = s.Interp.succ_state;
              s_events = List.rev rev_events;
              s_end = End_crashed c
            }
          ]
        | None ->
          if s.Interp.succ_state.State.steps = st.State.steps then
            (* no progress: the thread blocked on this attempt *)
            [ { s_state = s.Interp.succ_state;
                s_events = List.rev rev_events;
                s_end = End_paused
              }
            ]
          else after_exec s.Interp.succ_state rev_events (fuel - 1))
      succs
  in
  record_slices st (exec st [] fuel)

type stop =
  | Halted  (** every thread finished *)
  | Crashed of Crash.t
  | Deadlocked of int list
  | Out_of_budget
  | Diverged of string  (** replay could not follow the recorded schedule *)
  | Forked  (** hit a symbolic fork under a driver that expects concrete runs *)

type result = {
  final : State.t;
  stop : stop;
  events : Events.t list;  (** chronological, whole run *)
  trace : Trace.t;  (** the decisions actually taken *)
}

let concrete_inputs (st : State.t) =
  List.rev st.State.input_log
  |> List.filter_map (fun (k, v) -> match v with Value.Con n -> Some (k, n) | Value.Sym _ -> None)

let stop_counter = function
  | Halted -> "vm.stop.halted"
  | Crashed _ -> "vm.stop.crashed"
  | Deadlocked _ -> "vm.stop.deadlocked"
  | Out_of_budget -> "vm.stop.out_of_budget"
  | Diverged _ -> "vm.stop.diverged"
  | Forked -> "vm.stop.forked"

let run ~sched ?(budget = 1_000_000) (st0 : State.t) : result =
  let finish st stop rev_events rev_decisions rev_steps =
    if Telemetry.enabled () then begin
      Telemetry.incr "vm.runs";
      Telemetry.incr (stop_counter stop)
    end;
    { final = st;
      stop;
      events = List.rev rev_events;
      trace =
        Trace.of_run ~decisions:(List.rev rev_decisions) ~decision_steps:(List.rev rev_steps)
          ~inputs:(concrete_inputs st)
    }
  in
  let rec loop st (sched : Sched.t) rev_events rev_decisions rev_steps =
    if st.State.steps >= budget then finish st Out_of_budget rev_events rev_decisions rev_steps
    else
      match State.runnable st with
      | [] ->
        if State.all_finished st then finish st Halted rev_events rev_decisions rev_steps
        else finish st (Deadlocked (State.live_tids st)) rev_events rev_decisions rev_steps
      | runnable -> (
        match sched.Sched.pick st runnable with
        | None -> finish st (Diverged "schedule exhausted") rev_events rev_decisions rev_steps
        | Some (tid, sched') ->
          if not (List.mem tid runnable) then
            finish st
              (Diverged (Printf.sprintf "scheduled thread %d is not runnable" tid))
              rev_events rev_decisions rev_steps
          else
            let () =
              if Telemetry.enabled () then begin
                (* Per-thread scheduling decisions: which thread the recorded
                   (or replayed) schedule favored, tid by tid. *)
                Telemetry.incr "vm.decisions";
                Telemetry.incr ("vm.sched.tid." ^ string_of_int tid)
              end
            in
            let rev_decisions = tid :: rev_decisions in
            let rev_steps = st.State.steps :: rev_steps in
            (match slice st tid with
            | [ sl ] -> (
              let rev_events = List.rev_append sl.s_events rev_events in
              match sl.s_end with
              | End_crashed c ->
                finish sl.s_state (Crashed c) rev_events rev_decisions rev_steps
              | End_decision | End_paused ->
                loop sl.s_state sched' rev_events rev_decisions rev_steps)
            | _ :: _ :: _ -> finish st Forked rev_events rev_decisions rev_steps
            | [] -> finish st (Diverged "no successor") rev_events rev_decisions rev_steps))
  in
  loop st0 sched [] [] []

let stop_to_string = function
  | Halted -> "halted"
  | Crashed c -> "crashed: " ^ Crash.to_string c
  | Deadlocked tids ->
    Printf.sprintf "deadlocked (%s)" (String.concat "," (List.map string_of_int tids))
  | Out_of_budget -> "out of budget"
  | Diverged why -> "diverged: " ^ why
  | Forked -> "forked"
