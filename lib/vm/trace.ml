(** Schedule traces: the record side of Portend's record/replay engine.

    A trace is the sequence of scheduling decisions taken at preemption
    points, together with the absolute instruction count at each decision
    (§3.1 notes the latter is needed to replay precisely when an instruction
    executes many times before racing).  Traces also log the concrete values
    every [input] returned, so a recorded execution can be replayed
    faithfully or re-explored with those inputs made symbolic. *)

type entry = {
  d_tid : int;  (** thread scheduled at this decision *)
  d_step : int;  (** absolute instruction count when the decision was taken *)
}

type t = {
  entries : entry list;  (** chronological *)
  inputs : (string * int) list;  (** input key -> concrete value drawn *)
}

let decisions t = List.map (fun e -> e.d_tid) t.entries
let length t = List.length t.entries

let of_run ~decisions ~decision_steps ~inputs =
  { entries = List.map2 (fun d_tid d_step -> { d_tid; d_step }) decisions decision_steps; inputs }

(** First [n] decisions. *)
let take n t = { t with entries = List.filteri (fun i _ -> i < n) t.entries }

let input_model t =
  List.fold_left
    (fun m (k, v) -> Portend_util.Maps.Smap.add k v m)
    Portend_util.Maps.Smap.empty t.inputs

(** Stable content hash (cache keys): the full decision sequence with step
    counts, plus every recorded input draw. *)
let chash (t : t) : int =
  let module H = Portend_util.Chash in
  let h =
    H.list (fun h e -> H.int (H.int h e.d_tid) e.d_step) H.seed t.entries
  in
  H.list (fun h (k, v) -> H.int (H.string h k) v) h t.inputs

let pp fmt t =
  Fmt.pf fmt "@[<v>%a@,inputs: %a@]"
    Fmt.(list ~sep:sp (fun fmt e -> Fmt.pf fmt "(T%d@%d)" e.d_tid e.d_step))
    t.entries
    Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
    t.inputs

(* A compact single-line serialization, used by the CLI to save and reload
   traces across invocations. *)
let to_string t =
  let es = List.map (fun e -> Printf.sprintf "%d@%d" e.d_tid e.d_step) t.entries in
  let is = List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) t.inputs in
  String.concat " " es ^ " | " ^ String.concat " " is

let of_string s =
  let parts = String.split_on_char '|' s in
  let entries_s, inputs_s =
    match parts with
    | [ e ] -> (e, "")
    | [ e; i ] -> (e, i)
    | _ -> invalid_arg "Trace.of_string: too many '|'"
  in
  let words str =
    String.split_on_char ' ' str |> List.filter (fun w -> String.length w > 0)
  in
  let entries =
    List.map
      (fun w ->
        match String.split_on_char '@' w with
        | [ tid; step ] -> { d_tid = int_of_string tid; d_step = int_of_string step }
        | _ -> invalid_arg ("Trace.of_string: bad entry " ^ w))
      (words entries_s)
  in
  let inputs =
    List.map
      (fun w ->
        match String.split_on_char '=' w with
        | [ k; v ] -> (k, int_of_string v)
        | _ -> invalid_arg ("Trace.of_string: bad input " ^ w))
      (words inputs_s)
  in
  { entries; inputs }
