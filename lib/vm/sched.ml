(** Cooperative single-processor thread schedulers (§3.1, §6).

    A scheduler is consulted at every {e decision point}: just before a
    thread would execute a preemption-point instruction (a synchronization
    operation or a shared-memory access), and whenever the current thread
    blocks or finishes.  Schedulers are pure values that return their own
    continuation, so runs are replayable and forkable. *)

type t = {
  name : string;
  pick : State.t -> int list -> (int * t) option;
      (** [pick state runnable]: choose the next thread among [runnable]
          (non-empty, ascending).  [None] means the scheduler has no decision
          left (only meaningful for trace replay). *)
}

(* Per-scheduler decision accounting, e.g. how much of a classification ran
   under replay vs. the random continuation.  Static strings only: the
   counter name must not allocate on the disabled path. *)
let counted counter pick st runnable =
  Portend_telemetry.incr counter;
  pick st runnable

(** Round-robin over tids, starting after the last scheduled thread. *)
let round_robin =
  let rec make last =
    { name = "round-robin";
      pick =
        counted "vm.sched.pick.round-robin" (fun _st runnable ->
          let next =
            match List.find_opt (fun tid -> tid > last) runnable with
            | Some tid -> tid
            | None -> List.hd runnable
          in
          Some (next, make next))
    }
  in
  make (-1)

(** Uniformly random choice, deterministic in the seed. *)
let random ~seed =
  let rec make rng =
    { name = "random";
      pick =
        counted "vm.sched.pick.random" (fun _st runnable ->
          let tid, rng = Portend_util.Srng.choose runnable rng in
          Some (tid, make rng))
    }
  in
  make (Portend_util.Srng.of_seed seed)

(** Replay a recorded decision list verbatim; [None] once exhausted, and the
    caller detects divergence if the recorded tid is not runnable. *)
let of_decisions decisions =
  let rec make = function
    | [] -> { name = "replay"; pick = (fun _ _ -> None) }
    | tid :: rest ->
      { name = "replay";
        pick = counted "vm.sched.pick.replay" (fun _st _runnable -> Some (tid, make rest))
      }
  in
  make decisions

(** Replay a prefix, then continue with [next]. *)
let prefix_then decisions next =
  let rec make = function
    | [] -> next
    | tid :: rest ->
      { name = "prefix";
        pick = counted "vm.sched.pick.prefix" (fun _st _runnable -> Some (tid, make rest))
      }
  in
  make decisions

(** Follow a recorded decision list, skipping entries whose thread is no
    longer runnable (tolerated divergence, §3.3), then continue with
    [fallback] once exhausted. *)
let of_decisions_tolerant decisions ~fallback =
  let rec make = function
    | [] -> fallback
    | tid :: rest ->
      { name = "replay-tolerant";
        pick =
          counted "vm.sched.pick.replay-tolerant" (fun st runnable ->
            if List.mem tid runnable then Some (tid, make rest)
            else
              (* skip forward past unrunnable entries *)
              let rec skip = function
                | [] -> fallback.pick st runnable
                | t :: r when List.mem t runnable -> Some (t, make r)
                | _ :: r -> skip r
              in
              skip rest)
      }
  in
  make decisions

(** Always run [tid] while it is runnable; otherwise fall back.  Used to
    drive one racing thread up to its racy access when enforcing the
    alternate ordering. *)
let rec directed tid ~fallback =
  { name = "directed";
    pick =
      counted "vm.sched.pick.directed" (fun _st runnable ->
        if List.mem tid runnable then Some (tid, directed tid ~fallback)
        else
          match fallback.pick _st runnable with
          | Some (t, _) -> Some (t, directed tid ~fallback)
          | None -> None)
  }
