(** Dynamic happens-before data race detector (§3.1).

    Processes an execution's event stream in order, maintaining vector
    clocks per thread, per mutex, per condition variable and per barrier, and
    a bounded per-location access history (last read and last write per
    thread), and reports every pair of conflicting accesses unordered by
    happens-before.

    The happens-before edges recognized, matching the paper's detector over
    POSIX primitives:
    - thread create: spawn point → child start
    - thread join: child end → join return
    - mutex: release → subsequent acquire
    - condition variable: signal/broadcast → wakeup of the woken thread
    - barrier: every arrival → every departure
    - semaphore: post → subsequent wait completion (release/acquire on the
      semaphore object, as in FastTrack-style detectors)
    - atomic region: end → subsequent begin (the region is one implicit
      program-wide lock) *)

open Portend_util.Maps
module Events = Portend_vm.Events
module Telemetry = Portend_telemetry

(* Vector-clock operation accounting: the detector's work is dominated by
   ticks and joins, so these two counters are the detector's cost model.
   Wrappers keep the call sites below readable. *)
let vc_tick tid vc =
  Telemetry.incr "detect.vclock.ticks";
  Vclock.tick tid vc

let vc_join a b =
  Telemetry.incr "detect.vclock.joins";
  Vclock.join a b

type stored_access = {
  sa : Report.access;
  sa_clock : int;  (** the accessing thread's own clock at access time *)
}

type loc_history = {
  reads : stored_access Imap.t;  (** last read per tid *)
  writes : stored_access Imap.t;  (** last write per tid *)
}

let empty_history = { reads = Imap.empty; writes = Imap.empty }

module Locmap = Map.Make (struct
  type t = Events.loc

  let compare = compare
end)

type t = {
  clocks : Vclock.t Imap.t;  (** per thread *)
  mutex_clocks : Vclock.t Smap.t;
  signal_clocks : Vclock.t Imap.t;  (** pending edge to each woken tid *)
  sem_clocks : Vclock.t Smap.t;  (** accumulated post clocks per semaphore *)
  atomic_clock : Vclock.t;  (** release clock of the implicit atomic-region lock *)
  history : loc_history Locmap.t;
  races : Report.race list;  (** newest first *)
}

let init = {
  clocks = Imap.empty;
  mutex_clocks = Smap.empty;
  signal_clocks = Imap.empty;
  sem_clocks = Smap.empty;
  atomic_clock = Vclock.empty;
  history = Locmap.empty;
  races = [];
}

let clock_of tid t = Imap.find_or ~default:Vclock.empty tid t.clocks
let set_clock tid vc t = { t with clocks = Imap.add tid vc t.clocks }

(* Race check: the new access [a] by thread [tid] with clock [vc] conflicts
   with stored access [s] iff different threads, at least one write, and the
   stored access is not ordered before [a]. *)
let conflicts ~kind ~tid ~vc s =
  s.sa.Report.a_tid <> tid
  && (kind = Events.Write || s.sa.Report.a_kind = Events.Write)
  && not (Vclock.epoch_before ~tid:s.sa.Report.a_tid ~clock:s.sa_clock vc)

let check_access t ~loc ~(access : Report.access) =
  let tid = access.Report.a_tid in
  let vc = clock_of tid t in
  let h = match Locmap.find_opt loc t.history with Some h -> h | None -> empty_history in
  let race_with s =
    let first, second =
      if s.sa.Report.a_step <= access.Report.a_step then (s.sa, access) else (access, s.sa)
    in
    Report.{ r_loc = loc; first; second }
  in
  let found =
    Imap.fold
      (fun _ s acc -> if conflicts ~kind:access.Report.a_kind ~tid ~vc s then race_with s :: acc else acc)
      h.writes []
  in
  let found =
    if access.Report.a_kind = Events.Write then
      Imap.fold
        (fun _ s acc ->
          if conflicts ~kind:access.Report.a_kind ~tid ~vc s then race_with s :: acc else acc)
        h.reads found
    else found
  in
  let stored = { sa = access; sa_clock = Vclock.get tid vc } in
  let h =
    match access.Report.a_kind with
    | Events.Read -> { h with reads = Imap.add tid stored h.reads }
    | Events.Write -> { h with writes = Imap.add tid stored h.writes }
  in
  { t with history = Locmap.add loc h t.history; races = found @ t.races }

let handle_event t (ev : Events.t) =
  match ev with
  | Events.Access { tid; site; loc; kind; step } ->
    let t = set_clock tid (vc_tick tid (clock_of tid t)) t in
    check_access t ~loc ~access:{ Report.a_tid = tid; a_site = site; a_kind = kind; a_step = step }
  | Events.Lock_acquired { tid; mutex; _ } ->
    let vc = vc_join (clock_of tid t) (Smap.find_or ~default:Vclock.empty mutex t.mutex_clocks) in
    set_clock tid (vc_tick tid vc) t
  | Events.Lock_released { tid; mutex; _ } ->
    let vc = vc_tick tid (clock_of tid t) in
    let t = set_clock tid vc t in
    { t with mutex_clocks = Smap.add mutex vc t.mutex_clocks }
  | Events.Thread_spawned { parent; child; _ } ->
    let pvc = vc_tick parent (clock_of parent t) in
    let t = set_clock parent pvc t in
    set_clock child (vc_tick child (vc_join pvc (clock_of child t))) t
  | Events.Thread_joined { tid; child; _ } ->
    let vc = vc_join (clock_of tid t) (clock_of child t) in
    set_clock tid (vc_tick tid vc) t
  | Events.Cond_waiting { tid; _ } -> set_clock tid (vc_tick tid (clock_of tid t)) t
  | Events.Cond_signalled { tid; woken; _ } ->
    let vc = vc_tick tid (clock_of tid t) in
    let t = set_clock tid vc t in
    (* The woken threads observe the signaller's clock when they resume; we
       apply the edge eagerly, which is sound because the wakeup is already
       ordered after the signal by the VM. *)
    List.fold_left
      (fun t w -> set_clock w (vc_tick w (vc_join vc (clock_of w t))) t)
      t woken
  | Events.Barrier_crossed { tids; _ } ->
    let all = List.fold_left (fun acc w -> vc_join acc (clock_of w t)) Vclock.empty tids in
    List.fold_left (fun t w -> set_clock w (vc_tick w (vc_join all (clock_of w t))) t) t tids
  | Events.Sem_posted { tid; sem; _ } ->
    (* release: publish the poster's clock on the semaphore *)
    let vc = vc_tick tid (clock_of tid t) in
    let t = set_clock tid vc t in
    let acc = Smap.find_or ~default:Vclock.empty sem t.sem_clocks in
    { t with sem_clocks = Smap.add sem (vc_join acc vc) t.sem_clocks }
  | Events.Sem_acquired { tid; sem; _ } ->
    (* acquire: a completed wait observes every prior post *)
    let vc = vc_join (clock_of tid t) (Smap.find_or ~default:Vclock.empty sem t.sem_clocks) in
    set_clock tid (vc_tick tid vc) t
  | Events.Atomic_begin { tid; _ } ->
    let vc = vc_join (clock_of tid t) t.atomic_clock in
    set_clock tid (vc_tick tid vc) t
  | Events.Atomic_end { tid; _ } ->
    let vc = vc_tick tid (clock_of tid t) in
    let t = set_clock tid vc t in
    { t with atomic_clock = vc }
  | Events.Outputted _ -> t

(** Run the detector over a whole event stream; races in detection order.

    [suppress] lists (function, pc) sites of busy-wait synchronization reads
    (from {!Portend_lang.Static.spin_read_sites}); accesses at these sites
    are polls of ad-hoc synchronization flags, not data accesses, and do not
    participate in race reports — the standard refinement of [27, 55] the
    paper builds on.

    [restrict], when given, keeps only accesses at the static candidate
    sites of a {!Portend_analysis.Static_report.t} — the static-prefilter
    mode.  Because the static candidates over-approximate the dynamically
    reportable races (every race's two sites form a candidate pair) and
    dropping [Access] events never perturbs the vector clocks (an access
    only ticks the accessing thread's own clock, which {!check_access}
    re-reads per access; all synchronization edges flow through other
    events), the detector reports exactly the same races either way —
    asserted over the whole workload suite by the test suite. *)
let detect ?(suppress = []) ?restrict events =
  Telemetry.with_span "detect" (fun () ->
      let telemetry_on = Telemetry.enabled () in
      let suppressed site = List.mem (site.Events.func, site.Events.pc) suppress in
      let before = if telemetry_on then List.length events else 0 in
      let events =
        if suppress = [] then events
        else
          List.filter
            (function Events.Access { site; _ } -> not (suppressed site) | _ -> true)
            events
      in
      let after_suppress = if telemetry_on then List.length events else 0 in
      let events =
        match restrict with
        | None -> events
        | Some report ->
          let candidates = Portend_analysis.Static_report.restrict_sites report in
          List.filter
            (function
              | Events.Access { site; _ } ->
                List.mem (site.Events.func, site.Events.pc) candidates
              | _ -> true)
            events
      in
      if telemetry_on then begin
        Telemetry.incr ~by:(List.length events) "detect.events";
        Telemetry.incr
          ~by:
            (List.length
               (List.filter (function Events.Access _ -> true | _ -> false) events))
          "detect.accesses";
        Telemetry.incr ~by:(before - after_suppress) "detect.suppressed_spin_reads";
        Telemetry.incr ~by:(after_suppress - List.length events) "detect.prefilter_skipped"
      end;
      let t = List.fold_left handle_event init events in
      if telemetry_on then Telemetry.incr ~by:(List.length t.races) "detect.races";
      List.rev t.races)

(** Distinct races (cluster representatives) with instance counts. *)
let detect_clustered ?suppress ?restrict events = Report.cluster (detect ?suppress ?restrict events)
