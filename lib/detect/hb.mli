(** Dynamic happens-before data race detector (§3.1).

    Processes an execution's event stream in order, maintaining vector
    clocks per thread, mutex, condition variable and barrier, and a bounded
    per-location access history, and reports every pair of conflicting
    accesses unordered by happens-before.

    Recognized happens-before edges (the paper's detector over POSIX
    primitives): thread create and join, mutex release→acquire,
    signal/broadcast→wakeup, and barrier arrival→departure. *)

(** Run the detector over a whole event stream; races in detection order.

    [suppress] lists (function, pc) sites of busy-wait synchronization reads
    (from {!Portend_lang.Static.spin_read_sites}); accesses at these sites
    poll ad-hoc synchronization flags and do not participate in race
    reports — the refinement of [27, 55] the paper builds on.

    [restrict] keeps only accesses at the candidate sites of a static race
    report (the static-prefilter mode).  Because static candidates
    over-approximate dynamically reportable races and dropping access
    events cannot perturb synchronization edges, the reported races are
    identical with and without it — only the work done shrinks. *)
val detect :
  ?suppress:(string * int) list ->
  ?restrict:Portend_analysis.Static_report.t ->
  Portend_vm.Events.t list ->
  Report.race list

(** Distinct races (cluster representatives) with instance counts. *)
val detect_clustered :
  ?suppress:(string * int) list ->
  ?restrict:Portend_analysis.Static_report.t ->
  Portend_vm.Events.t list ->
  (Report.race * int) list
