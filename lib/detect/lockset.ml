(** Eraser-style lockset race detector [49].

    Kept alongside the happens-before detector for two reasons: (a) it is the
    classic source of {e false positive} race reports, which §5.2 of the
    paper uses to show Portend classifies false positives as “single
    ordering”; our reproduction of that experiment runs this detector with
    [~ignore_mutexes:true], simulating a detector with no awareness of mutex
    synchronization; and (b) it lets tests compare detector families.

    Simplified Eraser: no initialization/shared-state machine; a location is
    racy as soon as two threads access it (one writing) with disjoint
    locksets. *)

open Portend_util.Maps
module Events = Portend_vm.Events

module Locmap = Map.Make (struct
  type t = Events.loc

  let compare = compare
end)

type owned = {
  o_access : Report.access;
  o_locks : Sset.t;
}

type t = {
  held : Sset.t Imap.t;  (** locks held per thread *)
  last : owned list Locmap.t;  (** recent accesses per location (bounded) *)
  races : Report.race list;
  ignore_mutexes : bool;
}

let init ?(ignore_mutexes = false) () =
  { held = Imap.empty; last = Locmap.empty; races = []; ignore_mutexes }

let max_history = 8

(* Atomic regions behave as one implicit program-wide lock.  The reserved
   name cannot collide with source mutexes: identifiers never contain '@'. *)
let atomic_lock = "@atomic"

let handle_event t (ev : Events.t) =
  match ev with
  | Events.Lock_acquired { tid; mutex; _ } when not t.ignore_mutexes ->
    { t with held = Imap.add tid (Sset.add mutex (Imap.find_or ~default:Sset.empty tid t.held)) t.held }
  | Events.Lock_released { tid; mutex; _ } when not t.ignore_mutexes ->
    { t with held = Imap.add tid (Sset.remove mutex (Imap.find_or ~default:Sset.empty tid t.held)) t.held }
  | Events.Lock_acquired _ | Events.Lock_released _ -> t
  | Events.Atomic_begin { tid; _ } when not t.ignore_mutexes ->
    { t with held = Imap.add tid (Sset.add atomic_lock (Imap.find_or ~default:Sset.empty tid t.held)) t.held }
  | Events.Atomic_end { tid; _ } when not t.ignore_mutexes ->
    { t with held = Imap.add tid (Sset.remove atomic_lock (Imap.find_or ~default:Sset.empty tid t.held)) t.held }
  | Events.Atomic_begin _ | Events.Atomic_end _ -> t
  | Events.Access { tid; site; loc; kind; step } ->
    let locks = Imap.find_or ~default:Sset.empty tid t.held in
    let access = { Report.a_tid = tid; a_site = site; a_kind = kind; a_step = step } in
    let prior = match Locmap.find_opt loc t.last with Some l -> l | None -> [] in
    let racy p =
      p.o_access.Report.a_tid <> tid
      && (kind = Events.Write || p.o_access.Report.a_kind = Events.Write)
      && Sset.is_empty (Sset.inter p.o_locks locks)
    in
    let new_races =
      List.filter racy prior
      |> List.map (fun p ->
             let first, second =
               if p.o_access.Report.a_step <= step then (p.o_access, access) else (access, p.o_access)
             in
             Report.{ r_loc = loc; first; second })
    in
    let entry = { o_access = access; o_locks = locks } in
    let prior = entry :: (if List.length prior >= max_history then List.filteri (fun i _ -> i < max_history - 1) prior else prior) in
    { t with last = Locmap.add loc prior t.last; races = new_races @ t.races }
  | Events.Thread_spawned _ | Events.Thread_joined _ | Events.Cond_waiting _
  | Events.Cond_signalled _ | Events.Barrier_crossed _ | Events.Sem_acquired _
  | Events.Sem_posted _ | Events.Outputted _ -> t

(** Run the lockset detector over an event stream. *)
let detect ?ignore_mutexes events =
  let t = List.fold_left handle_event (init ?ignore_mutexes ()) events in
  List.rev t.races

let detect_clustered ?ignore_mutexes events = Report.cluster (detect ?ignore_mutexes events)
