(* State-space reduction benchmark: per workload, the full pipeline with
   reduction off vs. on (jobs=1, cold solver caches per measurement),
   recording states explored, solver queries and wall time, cross-checking
   that verdicts are identical, and writing BENCH_reduction.json so later
   changes can track the trajectory. *)

open Portend_core
open Portend_workloads
module D = Portend_detect
module Solver = Portend_solver.Solver

(* Full verdict signature of one analysis: racy location, category, k,
   detail text, states-differ bit and whether evidence was produced.  The
   reductions must preserve every component, not just the category. *)
let signature (r : Harness.app_result) =
  List.map
    (fun ra ->
      ( D.Report.base_loc ra.Pipeline.race.D.Report.r_loc,
        Taxonomy.category_to_string ra.Pipeline.verdict.Taxonomy.category,
        ra.Pipeline.verdict.Taxonomy.k,
        ra.Pipeline.verdict.Taxonomy.detail,
        ra.Pipeline.verdict.Taxonomy.states_differ,
        ra.Pipeline.evidence <> None ))
    r.Harness.analysis.Pipeline.races

let sum f (r : Harness.app_result) =
  List.fold_left (fun acc ra -> acc + f ra.Pipeline.stats) 0 r.Harness.analysis.Pipeline.races

let sum_red f r = sum (fun s -> f s.Classify.red) r

type side = {
  s_states : int;
  s_queries : int;
  s_wall : float;
  s_sig : (string * string * int * string * bool * bool) list;
  s_red : Classify.reduction;  (* summed over the workload's races *)
}

let total_red (r : Harness.app_result) : Classify.reduction =
  { Classify.states_deduped = sum_red (fun d -> d.Classify.states_deduped) r;
    schedules_pruned = sum_red (fun d -> d.Classify.schedules_pruned) r;
    comparisons_deduped = sum_red (fun d -> d.Classify.comparisons_deduped) r;
    suffix_solves = sum_red (fun d -> d.Classify.suffix_solves) r;
    full_solves = sum_red (fun d -> d.Classify.full_solves) r;
    replays_reused = sum_red (fun d -> d.Classify.replays_reused) r
  }

let measure ~reduction (w : Registry.workload) : side =
  let config = { Config.default with Config.jobs = 1; enable_reduction = reduction } in
  (* Cold per measurement: a warm cross-workload cache would hide exactly
     the queries the reduction is supposed to remove. *)
  Solver.reset_stats ();
  Solver.clear_caches ();
  let r, dt = Portend_util.Clock.timed (fun () -> Harness.analyze_workload ~config w) in
  let s = Solver.stats () in
  { s_states = sum (fun s -> s.Classify.states_explored) r;
    s_queries = s.Solver.queries;
    s_wall = dt;
    s_sig = signature r;
    s_red = total_red r
  }

type row = {
  r_name : string;
  r_off : side;
  r_on : side;
  r_identical : bool;
  r_deterministic : bool;  (* reduced run repeated: same signature + counters *)
}

let delta_pct before after =
  if before <= 0 then 0.0 else 100.0 *. float_of_int (before - after) /. float_of_int before

let improved row =
  delta_pct row.r_off.s_states row.r_on.s_states >= 20.0
  || delta_pct row.r_off.s_queries row.r_on.s_queries >= 20.0

let bench_workload (w : Registry.workload) : row =
  let off = measure ~reduction:false w in
  let on = measure ~reduction:true w in
  let on2 = measure ~reduction:true w in
  { r_name = w.Registry.w_name;
    r_off = off;
    r_on = on;
    r_identical = off.s_sig = on.s_sig;
    r_deterministic = on.s_sig = on2.s_sig && on.s_red = on2.s_red && on.s_states = on2.s_states
  }

let json_of_row r =
  let red = r.r_on.s_red in
  Printf.sprintf
    {|    {"workload": %S, "verdict_identical": %b, "deterministic": %b,
     "unreduced": {"states": %d, "solver_queries": %d, "wall_s": %.6f},
     "reduced": {"states": %d, "solver_queries": %d, "wall_s": %.6f,
       "suffix_solves": %d, "full_solves": %d, "schedules_pruned": %d,
       "comparisons_deduped": %d, "replays_reused": %d, "states_deduped": %d},
     "states_delta_pct": %.1f, "queries_delta_pct": %.1f, "improved_20pct": %b}|}
    r.r_name r.r_identical r.r_deterministic r.r_off.s_states r.r_off.s_queries r.r_off.s_wall
    r.r_on.s_states r.r_on.s_queries r.r_on.s_wall red.Classify.suffix_solves
    red.Classify.full_solves red.Classify.schedules_pruned red.Classify.comparisons_deduped
    red.Classify.replays_reused red.Classify.states_deduped
    (delta_pct r.r_off.s_states r.r_on.s_states)
    (delta_pct r.r_off.s_queries r.r_on.s_queries)
    (improved r)

let table_row r =
  [ r.r_name;
    string_of_int r.r_off.s_states;
    string_of_int r.r_on.s_states;
    string_of_int r.r_off.s_queries;
    string_of_int r.r_on.s_queries;
    Printf.sprintf "%.0f%%" (delta_pct r.r_off.s_queries r.r_on.s_queries);
    string_of_int r.r_on.s_red.Classify.suffix_solves;
    string_of_int
      (r.r_on.s_red.Classify.schedules_pruned + r.r_on.s_red.Classify.comparisons_deduped);
    (if r.r_identical then "yes" else "NO")
  ]

let header =
  [ "workload"; "states"; "(red)"; "queries"; "(red)"; "q saved"; "suffix"; "alt dedup"; "same" ]

let run () =
  let rows = List.map bench_workload Suite.all in
  Harness.print_table ~title:"State-space reduction (per workload, jobs=1, cold caches)" ~header
    (List.map table_row rows);
  let identical = List.for_all (fun r -> r.r_identical) rows in
  let deterministic = List.for_all (fun r -> r.r_deterministic) rows in
  let improved_n = List.length (List.filter improved rows) in
  Printf.printf "\nverdicts identical on all workloads: %b\n" identical;
  Printf.printf "reduced runs deterministic: %b\n" deterministic;
  Printf.printf "workloads with >=20%% fewer states or queries: %d/%d\n" improved_n
    (List.length rows);
  if not identical then prerr_endline "WARNING: reduction changed a verdict!";
  let json =
    Printf.sprintf
      {|{
  "bench": "portend-state-space-reduction",
  "suite_workloads": %d,
  "verdicts_identical": %b,
  "deterministic": %b,
  "workloads_improved_20pct": %d,
  "workloads": [
%s
  ]
}
|}
      (List.length rows) identical deterministic improved_n
      (String.concat ",\n" (List.map json_of_row rows))
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_reduction.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Two small workloads with reduction off vs. on, exercised on every
   `dune runtest` via the reduction-smoke alias: verdict identity, nonzero
   savings when enabled and all-zero reduction counters when disabled stay
   under continuous test without the full benchmark's cost. *)
let smoke () =
  let pick name =
    match Suite.find name with
    | Some w -> w
    | None -> List.hd Suite.micro_benchmarks
  in
  let ws = [ pick "RW"; pick "ctrace" ] in
  let rows = List.map bench_workload ws in
  List.iter
    (fun r ->
      if not r.r_identical then begin
        Printf.eprintf "reduction smoke FAILED: verdicts differ on %s\n" r.r_name;
        exit 1
      end;
      if not r.r_deterministic then begin
        Printf.eprintf "reduction smoke FAILED: reduced run not deterministic on %s\n" r.r_name;
        exit 1
      end;
      let off = r.r_off.s_red in
      if off <> Classify.no_reduction then begin
        Printf.eprintf "reduction smoke FAILED: counters nonzero with reduction off on %s\n"
          r.r_name;
        exit 1
      end)
    rows;
  let saved =
    List.fold_left
      (fun acc r ->
        acc + (r.r_off.s_queries - r.r_on.s_queries) + r.r_on.s_red.Classify.suffix_solves)
      0 rows
  in
  if saved = 0 then begin
    prerr_endline "reduction smoke FAILED: reduction saved no solver work on RW/ctrace";
    exit 1
  end;
  Printf.printf "reduction smoke ok: verdicts identical on %s; %d solver call(s) avoided\n"
    (String.concat ", " (List.map (fun r -> r.r_name) rows))
    saved
