(* Serve-daemon benchmark: an in-process `portend serve` instance answering
   the full workload suite from concurrent clients, cold (empty persistent
   cache) and warm (cache populated by the cold run), writing
   BENCH_serve.json with jobs/sec and p50/p99 request latency per row.
   Every served response is cross-checked bit-identical (modulo wall time)
   against a one-shot Pipeline.analyze of the same workload, and the warm
   row must beat the cold row on wall time.

   jobs=1 inside the server so the rows measure daemon overhead and cache
   effect, not pool scheduling noise. *)

open Portend_serve
module Core = Portend_core
module Registry = Portend_workloads.Registry
module Suite = Portend_workloads.Suite

let bench_dir = "_bench_serve_cache"

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let config ~cache ~dir =
  { Core.Config.default with Core.Config.jobs = 1; cache; cache_dir = dir }

(* The response lines a one-shot analysis would produce, with the
   nondeterministic wall time stripped — the serve identity oracle.
   Computed with the cache off: verdicts are bit-identical either way. *)
let expected_lines ?id (w : Registry.workload) =
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  let a =
    Core.Pipeline.analyze
      ~config:(config ~cache:false ~dir:bench_dir)
      ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog
  in
  List.map Json.to_string (Protocol.responses_of_analysis ?id a)

let served_lines responses =
  List.map (fun r -> Json.to_string (Protocol.strip_member "time_s" r)) responses

let request ?id (w : Registry.workload) : Json.t =
  Json.Obj
    ((match id with Some id -> [ ("id", id) ] | None -> [])
    @ [ ("workload", Json.String w.Registry.w_name) ])

let percentile sorted p =
  match sorted with
  | [||] -> 0.0
  | a ->
    let n = Array.length a in
    let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    a.(max 0 (min (n - 1) i))

type row = {
  row_name : string;
  row_wall : float;
  row_jobs : int;
  row_lat : float array;  (** sorted per-request latencies, seconds *)
  row_lines : (string * string list) list;  (** (workload, served lines) in send order *)
}

(* [clients] concurrent client domains, each pushing the whole suite
   through the server one request at a time, timing each request. *)
let drive ~name ~clients srv : row =
  let run_client () =
    let cl = Client.connect ~retries:20 (Server.address srv) in
    Fun.protect ~finally:(fun () -> Client.close cl)
      (fun () ->
        List.map
          (fun (w : Registry.workload) ->
            let responses, dt = Portend_util.Clock.timed (fun () -> Client.request cl (request w)) in
            (w.Registry.w_name, served_lines responses, dt))
          Suite.all)
  in
  let t0 = Unix.gettimeofday () in
  let doms = List.init clients (fun _ -> Domain.spawn run_client) in
  let per_client = List.map Domain.join doms in
  let wall = Unix.gettimeofday () -. t0 in
  let all = List.concat per_client in
  let lat = Array.of_list (List.map (fun (_, _, dt) -> dt) all) in
  Array.sort compare lat;
  { row_name = name;
    row_wall = wall;
    row_jobs = List.length all;
    row_lat = lat;
    row_lines = List.map (fun (n, lines, _) -> (n, lines)) all
  }

let check_identity row =
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (w : Registry.workload) -> Hashtbl.replace expected w.Registry.w_name (expected_lines w))
    Suite.all;
  List.for_all (fun (name, got) -> Hashtbl.find_opt expected name = Some got) row.row_lines

let json_of_row r =
  Printf.sprintf
    {|{"name": %S, "wall_s": %.6f, "jobs": %d, "jobs_per_sec": %.1f, "p50_ms": %.3f, "p99_ms": %.3f}|}
    r.row_name r.row_wall r.row_jobs
    (float_of_int r.row_jobs /. r.row_wall)
    (1000.0 *. percentile r.row_lat 50.0)
    (1000.0 *. percentile r.row_lat 99.0)

let with_server settings (f : Server.t -> 'a) : 'a =
  let srv = Server.start ~settings (Server.Tcp ("", 0)) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let run () =
  rm_rf bench_dir;
  let clients = 3 in
  let settings cache =
    { Server.default_settings with Server.config = config ~cache ~dir:bench_dir }
  in
  (* Cache off: the daemon's floor, nothing persisted. *)
  let off = with_server (settings false) (drive ~name:"off" ~clients) in
  (* Cold: first cached run populates the verdict/memo tiers... *)
  let cold = with_server (settings true) (drive ~name:"cold" ~clients) in
  (* ...and a fresh server on the same store answers warm. *)
  let warm = with_server (settings true) (drive ~name:"warm" ~clients) in
  let rows = [ off; cold; warm ] in
  let identical = List.for_all check_identity rows in
  let warm_faster = warm.row_wall < cold.row_wall in

  Harness.print_table ~title:"Serve daemon (full suite, 3 concurrent clients, jobs=1)"
    ~header:[ "run"; "wall s"; "jobs"; "jobs/s"; "p50 ms"; "p99 ms" ]
    (List.map
       (fun r ->
         [ r.row_name;
           Printf.sprintf "%.3f" r.row_wall;
           string_of_int r.row_jobs;
           Printf.sprintf "%.1f" (float_of_int r.row_jobs /. r.row_wall);
           Printf.sprintf "%.3f" (1000.0 *. percentile r.row_lat 50.0);
           Printf.sprintf "%.3f" (1000.0 *. percentile r.row_lat 99.0)
         ])
       rows);
  Printf.printf "\nserved responses identical to one-shot analysis: %b\n" identical;
  Printf.printf "warm run faster than cold: %b\n" warm_faster;
  if not identical then prerr_endline "WARNING: the daemon changed a verdict!";

  let json =
    Printf.sprintf
      {|{
  "bench": "portend-serve",
  "suite_workloads": %d,
  "clients": %d,
  "responses_identical": %b,
  "warm_faster_than_cold": %b,
  "rows": [
    %s,
    %s,
    %s
  ]
}
|}
      (List.length Suite.all) clients identical warm_faster (json_of_row off)
      (json_of_row cold) (json_of_row warm)
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path;
  rm_rf bench_dir

(* Two workloads served over a Unix socket and checked bit-identical to
   one-shot analysis on every `dune runtest` via the serve-smoke alias. *)
let smoke () =
  let dir = "_smoke_serve" in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "portend.sock" in
  let fail msg =
    Printf.eprintf "serve smoke FAILED: %s\n" msg;
    rm_rf dir;
    exit 1
  in
  let pick name =
    match Suite.find name with Some w -> w | None -> fail ("no workload " ^ name)
  in
  let ws = [ pick "RW"; pick "ctrace" ] in
  let settings =
    { Server.default_settings with Server.config = config ~cache:false ~dir:bench_dir }
  in
  let srv = Server.start ~settings (Server.Unix_path sock) in
  Fun.protect ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let cl = Client.connect (Server.address srv) in
      Fun.protect ~finally:(fun () -> Client.close cl)
        (fun () ->
          List.iteri
            (fun i (w : Registry.workload) ->
              let id = Json.Int i in
              let got = served_lines (Client.request cl (request ~id w)) in
              if got <> expected_lines ~id w then
                fail (w.Registry.w_name ^ ": served response differs from one-shot analysis"))
            ws));
  if Sys.file_exists sock then fail "socket file not removed at drain";
  rm_rf dir;
  Printf.printf "serve smoke ok: %s served bit-identical to one-shot analysis\n"
    (String.concat ", " (List.map (fun (w : Registry.workload) -> w.Registry.w_name) ws))
