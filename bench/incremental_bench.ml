(* Persistent-cache benchmark: the full suite with the on-disk cache off,
   cold (empty cache) and warm (populated cache), plus a one-workload-
   touched re-run, cross-checking that verdicts are bit-identical in every
   mode and writing BENCH_incremental.json.  A second section exercises the
   static-summary tier directly, including per-function invalidation: one
   function body touched, every other function's summary reused.

   jobs=1 and cold in-memory solver caches per measurement, so the deltas
   measure exactly what the on-disk store contributes. *)

open Portend_core
open Portend_workloads
module D = Portend_detect
module Solver = Portend_solver.Solver
module Store = Portend_cache.Store
module Locksets = Portend_analysis.Locksets

let bench_dir = "_bench_cache_incremental"

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

(* Full verdict signature, as in the reduction bench: the cache must
   preserve every component, not just the category. *)
let signature (r : Harness.app_result) =
  ( r.Harness.w.Registry.w_name,
    List.map
      (fun ra ->
        ( D.Report.base_loc ra.Pipeline.race.D.Report.r_loc,
          Taxonomy.category_to_string ra.Pipeline.verdict.Taxonomy.category,
          ra.Pipeline.verdict.Taxonomy.k,
          ra.Pipeline.verdict.Taxonomy.detail,
          ra.Pipeline.verdict.Taxonomy.states_differ,
          ra.Pipeline.evidence <> None ))
      r.Harness.analysis.Pipeline.races,
    List.length r.Harness.analysis.Pipeline.errors )

(* The static prefilter is on so the summaries tier sees suite traffic
   (race reports and verdicts are identical either way — the prefilter
   soundness contract the test suite asserts). *)
let config ~cache ~dir =
  { Config.default with
    Config.jobs = 1;
    static_prefilter = true;
    cache;
    cache_dir = dir
  }

type run = {
  r_wall : float;
  r_queries : int;
  r_sigs : (string * (string * string * int * string * bool * bool) list * int) list;
  r_tiers : (Store.tier * Store.tier_stats) list;
}

let tier_of run tier = List.assoc tier run.r_tiers

(* Every measurement starts from cold in-memory state; only the on-disk
   store persists across measurements. *)
let measure (runner : unit -> Harness.app_result list) : run =
  Solver.reset_stats ();
  Solver.clear_caches ();
  Store.reset_stats ();
  let results, wall = Portend_util.Clock.timed runner in
  { r_wall = wall;
    r_queries = (Solver.stats ()).Solver.queries;
    r_sigs = List.map signature results;
    r_tiers = Store.stats ()
  }

let measure_suite cfg suite =
  measure (fun () ->
      Pcache.with_solver_memos cfg (fun () -> List.map (Harness.analyze_workload ~config:cfg) suite))

let delta_pct before after =
  if before <= 0.0 then 0.0 else 100.0 *. (before -. after) /. before

let json_of_tiers run =
  String.concat ", "
    (List.map
       (fun (tier, s) ->
         Printf.sprintf {|"%s": {"hits": %d, "misses": %d, "writes": %d, "evictions": %d}|}
           (Store.tier_name tier) s.Store.hits s.Store.misses s.Store.writes s.Store.evictions)
       run.r_tiers)

(* --- static-summary section -------------------------------------------- *)

(* Pick a workload function to "touch": a non-main function some other
   function does not transitively call, so the variant run shows both
   misses (the touched function and its dependents) and hits (everything
   independent of it). *)
let pick_touch_target () =
  let candidates =
    List.filter_map
      (fun (w : Registry.workload) ->
        let prog = Portend_lang.Compile.compile w.Registry.w_prog in
        let funcs = Portend_util.Maps.Smap.keys prog.Portend_lang.Bytecode.funcs in
        if List.length funcs < 3 then None
        else
          let dependents f =
            List.length
              (List.filter (fun g -> Portend_util.Maps.Sset.mem f (Locksets.call_closure prog g)) funcs)
          in
          List.filter (fun f -> f <> "main") funcs
          |> List.map (fun f -> (dependents f, f))
          |> List.sort compare
          |> function
          | (deps, f) :: _ when deps < List.length funcs -> Some (w, f)
          | _ -> None)
      Suite.all
  in
  match candidates with
  | pick :: _ -> pick
  | [] -> failwith "incremental bench: no workload with an independently-touchable function"

(* The workload's program with [Yield] prepended to one function's body —
   the smallest source touch that changes that body's content hash. *)
let touch_function (p : Portend_lang.Ast.program) (fname : string) : Portend_lang.Ast.program =
  { p with
    Portend_lang.Ast.funcs =
      List.map
        (fun (f : Portend_lang.Ast.func) ->
          if f.Portend_lang.Ast.fname = fname then
            { f with Portend_lang.Ast.body = Portend_lang.Ast.Yield :: f.Portend_lang.Ast.body }
          else f)
        p.Portend_lang.Ast.funcs
  }

type static_result = {
  st_cold_wall : float;
  st_warm_wall : float;
  st_warm : Store.tier_stats;
  st_workload : string;
  st_func : string;
  st_inv_hits : int;
  st_inv_misses : int;
}

let static_section () =
  let store = Store.open_store (Filename.concat bench_dir "static") in
  let progs =
    List.map (fun (w : Registry.workload) -> Portend_lang.Compile.compile w.Registry.w_prog) Suite.all
  in
  let timed_pass () =
    Store.reset_stats ();
    Portend_util.Clock.timed (fun () ->
        List.iter
          (fun prog -> ignore (Portend_analysis.Static_report.analyze_cached ~store prog))
          progs)
  in
  let (), cold_wall = timed_pass () in
  let (), warm_wall = timed_pass () in
  let warm = Store.tier_stats Store.Summaries in
  let w, fname = pick_touch_target () in
  let variant = Portend_lang.Compile.compile (touch_function w.Registry.w_prog fname) in
  Store.reset_stats ();
  ignore (Portend_analysis.Static_report.analyze_cached ~store variant);
  let inv = Store.tier_stats Store.Summaries in
  { st_cold_wall = cold_wall;
    st_warm_wall = warm_wall;
    st_warm = warm;
    st_workload = w.Registry.w_name;
    st_func = fname;
    st_inv_hits = inv.Store.hits;
    st_inv_misses = inv.Store.misses
  }

(* --- the benchmark ------------------------------------------------------ *)

let hit_rate_pct s = 100.0 *. Store.hit_rate s

let run () =
  rm_rf bench_dir;
  let off = measure_suite (config ~cache:false ~dir:bench_dir) Suite.all in
  let cold = measure_suite (config ~cache:true ~dir:bench_dir) Suite.all in
  let warm = measure_suite (config ~cache:true ~dir:bench_dir) Suite.all in
  let touched_w = (List.hd Suite.all).Registry.w_name in
  let touched_suite =
    List.map
      (fun (w : Registry.workload) ->
        if w.Registry.w_name = touched_w then { w with Registry.w_seed = w.Registry.w_seed + 7919 }
        else w)
      Suite.all
  in
  let touched = measure_suite (config ~cache:true ~dir:bench_dir) touched_suite in
  let st = static_section () in

  let identical = off.r_sigs = cold.r_sigs && off.r_sigs = warm.r_sigs in
  let saved_pct = delta_pct cold.r_wall warm.r_wall in
  let warm_30 = saved_pct >= 30.0 in
  let tv = tier_of touched Store.Verdicts in
  let touched_only = tv.Store.misses = 1 && tv.Store.hits = List.length Suite.all - 1 in

  Harness.print_table ~title:"Persistent cache (full suite, jobs=1)"
    ~header:[ "run"; "wall s"; "solver q"; "vd hit"; "vd miss"; "sv hit"; "sm hit" ]
    (List.map
       (fun (name, r) ->
         let v = tier_of r Store.Verdicts
         and s = tier_of r Store.Solver_memos
         and m = tier_of r Store.Summaries in
         [ name;
           Printf.sprintf "%.3f" r.r_wall;
           string_of_int r.r_queries;
           string_of_int v.Store.hits;
           string_of_int v.Store.misses;
           string_of_int s.Store.hits;
           string_of_int m.Store.hits
         ])
       [ ("off", off); ("cold", cold); ("warm", warm); ("touched", touched) ]);
  Printf.printf "\nverdicts identical (off = cold = warm): %b\n" identical;
  Printf.printf "warm wall time %.1f%% below cold (>=30%%: %b)\n" saved_pct warm_30;
  Printf.printf "touched run re-analyzed only %s: %b\n" touched_w touched_only;
  Printf.printf "static summaries: warm pass %d hit(s) %d miss(es); touching %s.%s: %d hit(s) %d miss(es)\n"
    st.st_warm.Store.hits st.st_warm.Store.misses st.st_workload st.st_func st.st_inv_hits
    st.st_inv_misses;
  if not identical then prerr_endline "WARNING: the cache changed a verdict!";

  let json =
    Printf.sprintf
      {|{
  "bench": "portend-incremental-cache",
  "suite_workloads": %d,
  "verdicts_identical": %b,
  "suite": {
    "off_wall_s": %.6f,
    "cold_wall_s": %.6f,
    "warm_wall_s": %.6f,
    "touched_wall_s": %.6f,
    "warm_vs_cold_saved_pct": %.1f,
    "warm_30pct_faster": %b,
    "solver_queries": {"off": %d, "cold": %d, "warm": %d, "touched": %d},
    "cold_tiers": {%s},
    "warm_tiers": {%s},
    "touched_tiers": {%s},
    "warm_hit_rate_pct": {"verdicts": %.1f, "solver": %.1f},
    "touched_workload": %S,
    "touched_reanalyzed_only_touched": %b
  },
  "static_summaries": {
    "cold_wall_s": %.6f,
    "warm_wall_s": %.6f,
    "warm_hits": %d,
    "warm_misses": %d,
    "invalidation": {"workload": %S, "function": %S, "hits": %d, "misses": %d,
      "partial_reuse": %b}
  }
}
|}
      (List.length Suite.all) identical off.r_wall cold.r_wall warm.r_wall touched.r_wall
      saved_pct warm_30 off.r_queries cold.r_queries warm.r_queries touched.r_queries
      (json_of_tiers cold) (json_of_tiers warm) (json_of_tiers touched)
      (hit_rate_pct (tier_of warm Store.Verdicts))
      (hit_rate_pct (tier_of warm Store.Solver_memos))
      touched_w touched_only st.st_cold_wall st.st_warm_wall st.st_warm.Store.hits
      st.st_warm.Store.misses st.st_workload st.st_func st.st_inv_hits st.st_inv_misses
      (st.st_inv_hits > 0 && st.st_inv_misses > 0)
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_incremental.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path;
  rm_rf bench_dir

(* Two small workloads, cache off vs. cold vs. warm, on every
   `dune runtest` via the incremental-smoke alias: verdict identity and a
   fully-hit warm pass stay under continuous test without the full
   benchmark's cost. *)
let smoke () =
  let dir = "_smoke_cache_incremental" in
  rm_rf dir;
  let pick name =
    match Suite.find name with
    | Some w -> w
    | None -> List.hd Suite.micro_benchmarks
  in
  let ws = [ pick "RW"; pick "ctrace" ] in
  let off = measure_suite (config ~cache:false ~dir) ws in
  let cold = measure_suite (config ~cache:true ~dir) ws in
  let warm = measure_suite (config ~cache:true ~dir) ws in
  let fail msg =
    Printf.eprintf "incremental smoke FAILED: %s\n" msg;
    rm_rf dir;
    exit 1
  in
  if off.r_sigs <> cold.r_sigs then fail "cold cached verdicts differ from uncached";
  if off.r_sigs <> warm.r_sigs then fail "warm cached verdicts differ from uncached";
  let cv = tier_of cold Store.Verdicts and wv = tier_of warm Store.Verdicts in
  if cv.Store.writes < List.length ws then fail "cold run did not populate the verdict tier";
  if wv.Store.hits <> List.length ws || wv.Store.misses <> 0 then
    fail "warm run was not answered entirely from the verdict tier";
  if (tier_of warm Store.Solver_memos).Store.hits < 1 then
    fail "warm run did not load the solver-memo snapshot";
  rm_rf dir;
  Printf.printf
    "incremental smoke ok: verdicts identical on %s; warm pass %d/%d verdict hit(s)\n"
    (String.concat ", " (List.map (fun (w : Registry.workload) -> w.Registry.w_name) ws))
    wv.Store.hits (List.length ws)
