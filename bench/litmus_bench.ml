(* Litmus enumeration benchmark: a differential-testing campaign over the
   enumerated scenario space — every canonical program classified under
   the full mode matrix (no-reduction / static prefilter / jobs=2 /
   cache cold+warm / serve, striped for the I/O-heavy modes) — writing
   BENCH_litmus.json with throughput, dedup ratio, verdict and stop
   histograms, the baseline-comparison histogram and the (expected-empty)
   minimized-disagreement list.  Any disagreement fails the run: the
   matrix modes are contracted bit-identical, so a single mismatch is a
   pipeline bug, not noise. *)

module Litmus = Portend_litmus

let budget = 2500

let json_hist h =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) h)
  ^ "}"

let json_disagreements (ds : Litmus.Runner.regression list) =
  "["
  ^ String.concat ", "
      (List.map
         (fun (d : Litmus.Runner.regression) ->
           Printf.sprintf "{\"name\": %S, \"modes\": [%s]}" d.Litmus.Runner.r_name
             (String.concat ", " (List.map (Printf.sprintf "%S") d.Litmus.Runner.r_modes)))
         ds)
  ^ "]"

let campaign ~budget ~serve_stride ~cache_stride : Litmus.Runner.report =
  let opts =
    { Litmus.Runner.default_opts with
      Litmus.Runner.budget;
      serve_stride;
      cache_stride;
      check_baselines = true
    }
  in
  Litmus.Runner.run ~opts ()

let write_json (r : Litmus.Runner.report) =
  let json =
    Printf.sprintf
      {|{
  "budget": %d,
  "programs": %d,
  "raw_shapes": %d,
  "dedup_ratio": %.4f,
  "space_exhausted": %b,
  "elapsed_s": %.3f,
  "programs_per_s": %.1f,
  "verdict_hist": %s,
  "stop_hist": %s,
  "baseline_hist": %s,
  "disagreement_count": %d,
  "disagreements": %s
}
|}
      budget r.Litmus.Runner.enumerated r.Litmus.Runner.raw r.Litmus.Runner.dedup_ratio
      r.Litmus.Runner.exhausted r.Litmus.Runner.elapsed_s r.Litmus.Runner.programs_per_s
      (json_hist r.Litmus.Runner.verdict_hist)
      (json_hist r.Litmus.Runner.stop_hist)
      (json_hist r.Litmus.Runner.baseline_hist)
      (List.length r.Litmus.Runner.disagreements)
      (json_disagreements r.Litmus.Runner.disagreements)
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_litmus.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

let run () =
  Printf.printf "== litmus: differential campaign over %d enumerated programs ==\n%!" budget;
  let r = campaign ~budget ~serve_stride:16 ~cache_stride:64 in
  Fmt.pr "%a%!" Litmus.Runner.pp_report r;
  write_json r;
  if r.Litmus.Runner.disagreements <> [] then begin
    Printf.eprintf "litmus campaign FAILED: %d mode disagreements (see above)\n"
      (List.length r.Litmus.Runner.disagreements);
    exit 1
  end

(* A few hundred programs with the serve and cache points exercised more
   densely, on every `dune runtest` via the litmus-smoke alias. *)
let smoke () =
  let r = campaign ~budget:300 ~serve_stride:8 ~cache_stride:32 in
  let fail msg =
    Printf.eprintf "litmus smoke FAILED: %s\n" msg;
    exit 1
  in
  if r.Litmus.Runner.enumerated < 300 then
    fail (Printf.sprintf "only %d programs enumerated" r.Litmus.Runner.enumerated);
  if r.Litmus.Runner.disagreements <> [] then
    fail
      (Fmt.str "%d mode disagreements:@.%a"
         (List.length r.Litmus.Runner.disagreements)
         Litmus.Runner.pp_report r);
  if not (List.mem_assoc "no_race" r.Litmus.Runner.verdict_hist) then
    fail "no race-free program in the corpus";
  if List.length r.Litmus.Runner.verdict_hist < 2 then
    fail "corpus exercised fewer than two verdict classes";
  Printf.printf
    "litmus smoke OK: %d programs (%.2f dedup), %d verdict classes, 0 disagreements\n"
    r.Litmus.Runner.enumerated r.Litmus.Runner.dedup_ratio
    (List.length r.Litmus.Runner.verdict_hist)
