(* Benchmark harness entry point: regenerates every table and figure of the
   paper's evaluation (§5).  With no argument, everything runs in paper
   order; individual targets: table1 table2 table3 table4 table5 fig7 fig9
   fig10 falsepos micro. *)

let usage () =
  print_endline
    "usage: main.exe \
     [table1|table2|table3|table4|table5|fig7|fig9|fig10|falsepos|weakmem|micro|parallel|prefilter|reduction|observability|incremental|serve|litmus|smoke|reduction-smoke|incremental-smoke|prefilter-smoke|serve-smoke|litmus-smoke|all]"

let () =
  let target = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let needs_suite =
    List.mem target [ "all"; "table2"; "table3"; "table4"; "table5" ]
  in
  let suite = if needs_suite then Harness.run_suite () else [] in
  match target with
  | "table1" -> Tables.table1 ()
  | "table2" -> Tables.table2 suite
  | "table3" -> Tables.table3 suite
  | "table4" -> Tables.table4 suite
  | "table5" -> Tables.table5 suite
  | "fig7" -> Figures.fig7 ()
  | "fig9" -> Figures.fig9 ()
  | "fig10" -> Figures.fig10 ()
  | "falsepos" -> Figures.falsepos ()
  | "weakmem" -> Figures.weakmem ()
  | "micro" -> Micro_bench.run ()
  | "parallel" -> Parallel_bench.run ()
  | "prefilter" -> Prefilter_bench.run ()
  | "reduction" -> Reduction_bench.run ()
  | "observability" -> Observability_bench.run ()
  | "incremental" -> Incremental_bench.run ()
  | "serve" -> Serve_bench.run ()
  | "litmus" -> Litmus_bench.run ()
  | "smoke" -> Parallel_bench.smoke ()
  | "reduction-smoke" -> Reduction_bench.smoke ()
  | "incremental-smoke" -> Incremental_bench.smoke ()
  | "prefilter-smoke" -> Prefilter_bench.smoke ()
  | "serve-smoke" -> Serve_bench.smoke ()
  | "litmus-smoke" -> Litmus_bench.smoke ()
  | "all" ->
    Tables.table1 ();
    Tables.table2 suite;
    Tables.table3 suite;
    Tables.table4 suite;
    Tables.table5 suite;
    Figures.fig7 ();
    Figures.fig9 ();
    Figures.fig10 ();
    Figures.falsepos ();
    Figures.weakmem ();
    Micro_bench.run ();
    Parallel_bench.run ();
    Prefilter_bench.run ();
    Reduction_bench.run ();
    Observability_bench.run ();
    Incremental_bench.run ();
    Serve_bench.run ();
    Litmus_bench.run ()
  | _ -> usage ()
