(* Shared machinery for the benchmark harness: run the whole evaluation
   suite once per configuration, score verdicts against the registry ground
   truth, and render aligned text tables. *)

open Portend_core
open Portend_workloads
module D = Portend_detect
module V = Portend_vm

type app_result = {
  w : Registry.workload;
  analysis : Pipeline.t;
}

let analyze_workload ?(config = Config.default) (w : Registry.workload) : app_result =
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  let analysis = Pipeline.analyze ~config ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog in
  { w; analysis }

(* Workloads are analyzed on the configured number of worker domains; each
   analysis in turn fans its races out through the same (globally bounded)
   pool, so nesting cannot oversubscribe the machine.  When [config.cache]
   is on, the run is bracketed by solver-memo persistence (import the
   stored snapshot, export afterwards) and each workload's verdict goes
   through the persistent store. *)
let run_suite ?(config = Config.default) ?(workloads = Suite.all) () : app_result list =
  Pcache.with_solver_memos config (fun () ->
      Portend_util.Pool.map ~jobs:config.Config.jobs (analyze_workload ~config) workloads)

(* verdict category per race, keyed by base location *)
let verdicts (r : app_result) =
  List.map
    (fun ra ->
      ( D.Report.base_loc ra.Pipeline.race.D.Report.r_loc,
        ra.Pipeline.verdict ))
    r.analysis.Pipeline.races

(* Count how many of the workload's expected races got category [pred].  An
   expectation with [x_count] > 1 is matched that many times. *)
let count_matching (r : app_result) ~(want : Registry.expectation -> Taxonomy.category option)
    ~(pred : Taxonomy.verdict -> Registry.expectation -> bool) =
  let vs = verdicts r in
  List.fold_left
    (fun acc x ->
      match want x with
      | None -> acc
      | Some _ ->
        let got = List.filter (fun (loc, _) -> loc = x.Registry.x_loc) vs in
        let good = List.length (List.filter (fun (_, v) -> pred v x) got) in
        acc + min good x.Registry.x_count)
    0 r.w.Registry.w_expect

(* accuracy of the measured verdicts against manual ground truth *)
let correct_against_truth (r : app_result) =
  count_matching r
    ~want:(fun x -> Some x.Registry.x_truth)
    ~pred:(fun v x -> v.Taxonomy.category = x.Registry.x_truth)

(* agreement with the verdict Portend is expected to produce *)
let correct_against_portend (r : app_result) =
  count_matching r
    ~want:(fun x -> Some x.Registry.x_portend)
    ~pred:(fun v x -> v.Taxonomy.category = x.Registry.x_portend)

(* --- text table rendering --- *)

let print_table ~title ~header rows =
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
      (List.map String.length header)
      rows
  in
  let line row =
    String.concat "  "
      (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
  in
  Printf.printf "\n== %s ==\n" title;
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun row -> print_endline (line row)) rows;
  flush stdout

let pct num den = if den = 0 then "-" else Printf.sprintf "%d%%" (100 * num / den)
