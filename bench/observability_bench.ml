(* Observability benchmark: per-workload phase breakdown of the whole
   evaluation suite under telemetry — where the pipeline spends its time
   (record / detect / explore / enforce / classify) and how much work each
   phase does (VM steps, vector-clock operations, explored states, solver
   queries) — plus the cost of the telemetry layer itself: suite wall time
   with telemetry enabled vs disabled, and a cross-check that verdicts are
   identical either way.  Emits machine-readable BENCH_observability.json. *)

open Portend_core
open Portend_workloads
module Telemetry = Portend_telemetry

type row = {
  r_name : string;
  r_wall_s : float;
  r_record_s : float;
  r_detect_s : float;
  r_classify_s : float;  (* whole classification phase (pool fan-out) *)
  r_explore_s : float;
  r_enforce_s : float;
  r_vm_steps : int;
  r_vclock_ops : int;
  r_explore_states : int;
  r_paths_completed : int;
  r_solver_queries : int;
  r_races : int;
}

(* Per-workload attribution wants one workload's numbers per snapshot, so
   workloads run one at a time with a reset in between; jobs=1 keeps the
   span durations free of pool scheduling noise. *)
let profile_workload (w : Registry.workload) : row =
  let config = { Config.default with Config.jobs = 1 } in
  Telemetry.reset ();
  Portend_solver.Solver.reset_stats ();
  Portend_solver.Solver.clear_caches ();
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  let a, wall =
    Portend_util.Clock.timed (fun () ->
        Pipeline.analyze ~config ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog)
  in
  let s = Telemetry.snapshot () in
  let c = Telemetry.counter s in
  { r_name = w.Registry.w_name;
    r_wall_s = wall;
    r_record_s = Telemetry.timer_s s "pipeline.record";
    r_detect_s = Telemetry.timer_s s "detect";
    r_classify_s = Telemetry.timer_s s "pipeline.classify";
    r_explore_s = Telemetry.timer_s s "explore";
    r_enforce_s = Telemetry.timer_s s "enforce";
    r_vm_steps = c "vm.steps";
    r_vclock_ops = c "detect.vclock.ticks" + c "detect.vclock.joins";
    r_explore_states = c "explore.states";
    r_paths_completed = c "explore.paths_completed";
    r_solver_queries = c "solver.queries";
    r_races = List.length a.Pipeline.races
  }

let reps = 3

(* Best-of-[reps] suite wall time under the given telemetry state. *)
let measure_suite enabled =
  Telemetry.set_enabled enabled;
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    Telemetry.reset ();
    let results, dt = Portend_util.Clock.timed (fun () -> Harness.run_suite ()) in
    if dt < !best then best := dt;
    last := Some results
  done;
  Telemetry.set_enabled false;
  (Option.get !last, !best)

let ms x = Printf.sprintf "%.2f" (1000.0 *. x)

let run () =
  (* warm the heap once, as the other suite benchmarks do *)
  ignore (Harness.run_suite ());
  Telemetry.set_enabled true;
  let rows =
    Fun.protect
      ~finally:(fun () -> Telemetry.set_enabled false)
      (fun () -> List.map profile_workload Suite.all)
  in
  Harness.print_table ~title:"Per-workload phase breakdown (telemetry, jobs=1)"
    ~header:
      [ "Program"; "wall (ms)"; "record"; "detect"; "classify"; "explore"; "enforce";
        "VM steps"; "vclock ops"; "states"; "paths"; "queries"; "races" ]
    (List.map
       (fun r ->
         [ r.r_name; ms r.r_wall_s; ms r.r_record_s; ms r.r_detect_s; ms r.r_classify_s;
           ms r.r_explore_s; ms r.r_enforce_s; string_of_int r.r_vm_steps;
           string_of_int r.r_vclock_ops; string_of_int r.r_explore_states;
           string_of_int r.r_paths_completed; string_of_int r.r_solver_queries;
           string_of_int r.r_races
         ])
       rows);
  let off_results, off_s = measure_suite false in
  let on_results, on_s = measure_suite true in
  let identical = Parallel_bench.signature off_results = Parallel_bench.signature on_results in
  let overhead_pct = if off_s > 0.0 then 100.0 *. (on_s -. off_s) /. off_s else 0.0 in
  Printf.printf
    "\nsuite wall time: %.3fs telemetry off, %.3fs on (overhead %.1f%%)\n" off_s on_s
    overhead_pct;
  Printf.printf "verdicts identical with telemetry on and off: %b\n" identical;
  if not identical then
    prerr_endline "WARNING: telemetry changed the verdicts — neutrality violation!";
  let json =
    Printf.sprintf
      {|{
  "bench": "portend-observability",
  "suite_workloads": %d,
  "reps_per_config": %d,
  "suite_wall_s_telemetry_off": %.6f,
  "suite_wall_s_telemetry_on": %.6f,
  "telemetry_enabled_overhead_pct": %.2f,
  "identical_verdicts": %b,
  "workloads": [
%s
  ]
}
|}
      (List.length Suite.all) reps off_s on_s overhead_pct identical
      (String.concat ",\n"
         (List.map
            (fun r ->
              Printf.sprintf
                {|    {"name": %S, "wall_s": %.6f, "phases_s": {"record": %.6f, "detect": %.6f, "classify": %.6f, "explore": %.6f, "enforce": %.6f}, "vm_steps": %d, "vclock_ops": %d, "explore_states": %d, "paths_completed": %d, "solver_queries": %d, "distinct_races": %d}|}
                r.r_name r.r_wall_s r.r_record_s r.r_detect_s r.r_classify_s r.r_explore_s
                r.r_enforce_s r.r_vm_steps r.r_vclock_ops r.r_explore_states
                r.r_paths_completed r.r_solver_queries r.r_races)
            rows))
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_observability.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path
