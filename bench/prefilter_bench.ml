(* Static-prefilter benchmark: per workload, how many shared-access sites
   (the dynamic detector's preemption/instrumentation points) the static
   candidate generator rules out, what the whole-suite detection +
   classification wall time looks like with and without the prefilter, and
   a soundness cross-check that the race reports are identical either way.

   Each row also carries a lockset-only baseline: candidate sites computed
   from disjoint must-held *mutex* locksets alone — no may-happen-in-
   parallel reasoning and none of the synchronization-aware pseudo-locks
   (atomic regions, semaphores-as-locks).  The gap between the baseline and
   the full reduction is what the sync-aware analyses buy; the condvar and
   semaphore workloads must beat the baseline strictly.

   Emits machine-readable BENCH_prefilter.json. *)

open Portend_core
open Portend_workloads
module SR = Portend_analysis.Static_report
module Sset = Portend_util.Maps.Sset

type site_row = {
  s_name : string;
  s_sync : bool;  (* one of the sync-handoff workloads *)
  s_shared : int;  (* static shared-access sites *)
  s_candidates : int;  (* sites in at least one candidate pair *)
  s_baseline : int;  (* candidate sites under the lockset-only baseline *)
  s_pairs : int;  (* candidate pairs *)
  s_static_ms : float;  (* static analysis wall time *)
}

let is_pseudo_lock l =
  l = Portend_analysis.Locksets.atomic_lock || String.starts_with ~prefix:"sem:" l

(* Lockset-only baseline: a site survives when it conflicts (same location,
   at least one write) with some site whose must-held real-mutex lockset is
   disjoint from its own.  This is exactly the candidate generator with MHP
   forced to "maybe" and the pseudo-locks stripped. *)
let baseline_candidate_sites (report : SR.t) : int =
  let sites = Array.of_list report.SR.sites in
  let n = Array.length sites in
  let real_locks (s : SR.site) = Sset.filter (fun l -> not (is_pseudo_lock l)) s.SR.s_lockset in
  let marked = Array.make (max n 1) false in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = sites.(i) and b = sites.(j) in
      if
        a.SR.s_loc = b.SR.s_loc
        && (a.SR.s_kind = SR.Write || b.SR.s_kind = SR.Write)
        && Sset.is_empty (Sset.inter (real_locks a) (real_locks b))
      then begin
        marked.(i) <- true;
        marked.(j) <- true
      end
    done
  done;
  Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 marked

let site_rows () =
  let sync_names =
    List.map (fun (w : Registry.workload) -> w.Registry.w_name) Suite.sync_benchmarks
  in
  List.map
    (fun (w : Registry.workload) ->
      let prog = Portend_lang.Compile.compile w.Registry.w_prog in
      let report, dt = Portend_util.Clock.timed (fun () -> SR.analyze prog) in
      { s_name = w.Registry.w_name;
        s_sync = List.mem w.Registry.w_name sync_names;
        s_shared = SR.shared_site_count report;
        s_candidates = SR.candidate_site_count report;
        s_baseline = baseline_candidate_sites report;
        s_pairs = List.length report.SR.pairs;
        s_static_ms = 1000.0 *. dt
      })
    Suite.extended

let reps = 3

let measure config =
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    let results, dt =
      Portend_util.Clock.timed (fun () ->
          Harness.run_suite ~config ~workloads:Suite.extended ())
    in
    if dt < !best then best := dt;
    last := Some results
  done;
  (Option.get !last, !best)

let reduction_pct ~total ~kept =
  if total = 0 then 0.0 else 100.0 *. float_of_int (total - kept) /. float_of_int total

let run () =
  let rows = site_rows () in
  (* warm the heap once, as the other suite benchmarks do *)
  ignore (Harness.run_suite ~workloads:Suite.extended ());
  let off_results, off_s = measure Config.default in
  let on_results, on_s = measure { Config.default with Config.static_prefilter = true } in
  let identical = Parallel_bench.signature off_results = Parallel_bench.signature on_results in
  let total_shared = List.fold_left (fun a r -> a + r.s_shared) 0 rows in
  let total_cand = List.fold_left (fun a r -> a + r.s_candidates) 0 rows in
  let total_base = List.fold_left (fun a r -> a + r.s_baseline) 0 rows in
  let sync_beats_baseline =
    List.for_all
      (fun r ->
        (not r.s_sync)
        || reduction_pct ~total:r.s_shared ~kept:r.s_candidates
           > reduction_pct ~total:r.s_shared ~kept:r.s_baseline)
      rows
  in
  Harness.print_table
    ~title:"Static prefilter: instrumented shared-access sites per workload"
    ~header:
      [ "Program"; "shared"; "candidates"; "pairs"; "reduction"; "lockset-only"; "static (ms)" ]
    (List.map
       (fun r ->
         [ (if r.s_sync then r.s_name ^ " *" else r.s_name);
           string_of_int r.s_shared;
           string_of_int r.s_candidates;
           string_of_int r.s_pairs;
           Printf.sprintf "%.0f%%" (reduction_pct ~total:r.s_shared ~kept:r.s_candidates);
           Printf.sprintf "%.0f%%" (reduction_pct ~total:r.s_shared ~kept:r.s_baseline);
           Printf.sprintf "%.3f" r.s_static_ms
         ])
       rows
    @ [ [ "TOTAL";
          string_of_int total_shared;
          string_of_int total_cand;
          "";
          Printf.sprintf "%.0f%%" (reduction_pct ~total:total_shared ~kept:total_cand);
          Printf.sprintf "%.0f%%" (reduction_pct ~total:total_shared ~kept:total_base);
          ""
        ] ]);
  Printf.printf "\n(* = synchronization-handoff workload)\n";
  Printf.printf "suite detection+classification wall time: %.3fs without, %.3fs with prefilter\n"
    off_s on_s;
  Printf.printf "race reports identical with and without prefilter: %b\n" identical;
  Printf.printf "sync workloads beat the lockset-only baseline: %b\n" sync_beats_baseline;
  if not identical then
    prerr_endline "WARNING: prefilter changed the race reports — soundness violation!";
  if not sync_beats_baseline then
    prerr_endline
      "WARNING: a sync workload shows no reduction beyond the lockset-only baseline!";
  let json =
    Printf.sprintf
      {|{
  "bench": "portend-static-prefilter",
  "suite_workloads": %d,
  "reps_per_config": %d,
  "preemption_points_total": %d,
  "preemption_points_restricted": %d,
  "preemption_points_lockset_only": %d,
  "preemption_point_reduction_pct": %.1f,
  "lockset_only_reduction_pct": %.1f,
  "sync_workloads_beat_lockset_baseline": %b,
  "wall_s_without_prefilter": %.6f,
  "wall_s_with_prefilter": %.6f,
  "speedup_with_prefilter": %.3f,
  "identical_race_reports": %b,
  "workloads": [
%s
  ]
}
|}
      (List.length Suite.extended) reps total_shared total_cand total_base
      (reduction_pct ~total:total_shared ~kept:total_cand)
      (reduction_pct ~total:total_shared ~kept:total_base)
      sync_beats_baseline off_s on_s
      (if on_s > 0.0 then off_s /. on_s else 0.0)
      identical
      (String.concat ",\n"
         (List.map
            (fun r ->
              Printf.sprintf
                {|    {"name": %S, "sync": %b, "shared_sites": %d, "candidate_sites": %d, "baseline_candidate_sites": %d, "candidate_pairs": %d, "reduction_pct": %.1f, "baseline_reduction_pct": %.1f, "static_analysis_ms": %.3f}|}
                r.s_name r.s_sync r.s_shared r.s_candidates r.s_baseline r.s_pairs
                (reduction_pct ~total:r.s_shared ~kept:r.s_candidates)
                (reduction_pct ~total:r.s_shared ~kept:r.s_baseline)
                r.s_static_ms)
            rows))
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_prefilter.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Contract smoke for `dune runtest` / CI: on the synchronization-handoff
   workloads, the dynamic race reports must be bit-identical with the
   prefilter on, and the sync-aware analyses must prune strictly more
   preemption points than the lockset-only baseline. *)
let smoke () =
  let module Hb = Portend_detect.Hb in
  let module Run = Portend_vm.Run in
  let failed = ref false in
  let extra = ref [] in
  List.iter
    (fun (w : Registry.workload) ->
      let prog = Portend_lang.Compile.compile w.Registry.w_prog in
      let report = SR.analyze prog in
      let record, _ =
        Pipeline.record ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog
      in
      let suppress = Portend_lang.Static.spin_read_sites prog in
      let without = Hb.detect_clustered ~suppress record.Run.events in
      let with_pf = Hb.detect_clustered ~suppress ~restrict:report record.Run.events in
      if without <> with_pf then begin
        Printf.eprintf "prefilter smoke FAILED: %s reports differ under prefilter\n"
          w.Registry.w_name;
        failed := true
      end;
      let full = SR.candidate_site_count report in
      let base = baseline_candidate_sites report in
      if full >= base then begin
        Printf.eprintf
          "prefilter smoke FAILED: %s keeps %d site(s), lockset-only baseline keeps %d\n"
          w.Registry.w_name full base;
        failed := true
      end
      else extra := (w.Registry.w_name, base - full) :: !extra)
    Suite.sync_benchmarks;
  if !failed then exit 1;
  Printf.printf "prefilter smoke ok: reports identical under prefilter on %s; %s\n"
    (String.concat ", "
       (List.map (fun (w : Registry.workload) -> w.Registry.w_name) Suite.sync_benchmarks))
    (String.concat ", "
       (List.rev_map
          (fun (n, d) -> Printf.sprintf "%s prunes %d site(s) beyond lockset-only" n d)
          !extra))
