(* Static-prefilter benchmark: per workload, how many shared-access sites
   (the dynamic detector's preemption/instrumentation points) the static
   candidate generator rules out, what the whole-suite detection +
   classification wall time looks like with and without the prefilter, and
   a soundness cross-check that the race reports are identical either way.
   Emits machine-readable BENCH_prefilter.json. *)

open Portend_core
open Portend_workloads
module SR = Portend_analysis.Static_report

type site_row = {
  s_name : string;
  s_shared : int;  (* static shared-access sites *)
  s_candidates : int;  (* sites in at least one candidate pair *)
  s_pairs : int;  (* candidate pairs *)
  s_static_ms : float;  (* static analysis wall time *)
}

let site_rows () =
  List.map
    (fun (w : Registry.workload) ->
      let prog = Portend_lang.Compile.compile w.Registry.w_prog in
      let report, dt = Portend_util.Clock.timed (fun () -> SR.analyze prog) in
      { s_name = w.Registry.w_name;
        s_shared = SR.shared_site_count report;
        s_candidates = SR.candidate_site_count report;
        s_pairs = List.length report.SR.pairs;
        s_static_ms = 1000.0 *. dt
      })
    Suite.all

let reps = 3

let measure config =
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    let results, dt = Portend_util.Clock.timed (fun () -> Harness.run_suite ~config ()) in
    if dt < !best then best := dt;
    last := Some results
  done;
  (Option.get !last, !best)

let reduction_pct ~total ~kept =
  if total = 0 then 0.0 else 100.0 *. float_of_int (total - kept) /. float_of_int total

let run () =
  let rows = site_rows () in
  (* warm the heap once, as the other suite benchmarks do *)
  ignore (Harness.run_suite ());
  let off_results, off_s = measure Config.default in
  let on_results, on_s = measure { Config.default with Config.static_prefilter = true } in
  let identical = Parallel_bench.signature off_results = Parallel_bench.signature on_results in
  let total_shared = List.fold_left (fun a r -> a + r.s_shared) 0 rows in
  let total_cand = List.fold_left (fun a r -> a + r.s_candidates) 0 rows in
  Harness.print_table
    ~title:"Static prefilter: instrumented shared-access sites per workload"
    ~header:[ "Program"; "shared sites"; "candidate sites"; "pairs"; "reduction"; "static (ms)" ]
    (List.map
       (fun r ->
         [ r.s_name;
           string_of_int r.s_shared;
           string_of_int r.s_candidates;
           string_of_int r.s_pairs;
           Printf.sprintf "%.0f%%" (reduction_pct ~total:r.s_shared ~kept:r.s_candidates);
           Printf.sprintf "%.3f" r.s_static_ms
         ])
       rows
    @ [ [ "TOTAL";
          string_of_int total_shared;
          string_of_int total_cand;
          "";
          Printf.sprintf "%.0f%%" (reduction_pct ~total:total_shared ~kept:total_cand);
          ""
        ] ]);
  Printf.printf "\nsuite detection+classification wall time: %.3fs without, %.3fs with prefilter\n"
    off_s on_s;
  Printf.printf "race reports identical with and without prefilter: %b\n" identical;
  if not identical then
    prerr_endline "WARNING: prefilter changed the race reports — soundness violation!";
  let json =
    Printf.sprintf
      {|{
  "bench": "portend-static-prefilter",
  "suite_workloads": %d,
  "reps_per_config": %d,
  "preemption_points_total": %d,
  "preemption_points_restricted": %d,
  "preemption_point_reduction_pct": %.1f,
  "wall_s_without_prefilter": %.6f,
  "wall_s_with_prefilter": %.6f,
  "speedup_with_prefilter": %.3f,
  "identical_race_reports": %b,
  "workloads": [
%s
  ]
}
|}
      (List.length Suite.all) reps total_shared total_cand
      (reduction_pct ~total:total_shared ~kept:total_cand)
      off_s on_s
      (if on_s > 0.0 then off_s /. on_s else 0.0)
      identical
      (String.concat ",\n"
         (List.map
            (fun r ->
              Printf.sprintf
                {|    {"name": %S, "shared_sites": %d, "candidate_sites": %d, "candidate_pairs": %d, "reduction_pct": %.1f, "static_analysis_ms": %.3f}|}
                r.s_name r.s_shared r.s_candidates r.s_pairs
                (reduction_pct ~total:r.s_shared ~kept:r.s_candidates)
                r.s_static_ms)
            rows))
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_prefilter.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path
