(* Regeneration of the paper's Tables 1-5 (§5). *)

open Portend_core
open Portend_workloads
module V = Portend_vm
module D = Portend_detect

(* Table 1: programs analyzed with Portend. *)
let table1 () =
  let rows =
    List.map
      (fun (w : Registry.workload) ->
        [ w.Registry.w_name;
          string_of_int (Portend_lang.Ast.program_size w.Registry.w_prog);
          w.Registry.w_language;
          string_of_int w.Registry.w_threads
        ])
      Suite.all
  in
  Harness.print_table ~title:"Table 1: programs analyzed with Portend"
    ~header:[ "Program"; "Size (stmts)"; "Language"; "# Forked threads" ]
    rows

(* Table 2: “spec violated” races and their consequences.  The fmm row runs
   the semantic variant (the “timestamps are positive” predicate); the
   memcached what-if row reproduces the §5.1 no-op'd-lock experiment. *)
let table2 (suite : Harness.app_result list) =
  let count_conseq (r : Harness.app_result) c =
    List.length
      (List.filter
         (fun ra ->
           ra.Pipeline.verdict.Taxonomy.category = Taxonomy.Spec_violated
           && ra.Pipeline.verdict.Taxonomy.consequence = Some c)
         r.Harness.analysis.Pipeline.races)
  in
  let base_rows =
    List.filter_map
      (fun (r : Harness.app_result) ->
        let dl = count_conseq r V.Crash.Cdeadlock
        and cr = count_conseq r V.Crash.Ccrash
        and hg = count_conseq r V.Crash.Chang
        and sem = count_conseq r V.Crash.Csemantic in
        if dl + cr + hg + sem = 0 then None
        else
          Some
            [ r.Harness.w.Registry.w_name;
              string_of_int (List.length r.Harness.analysis.Pipeline.races);
              string_of_int dl;
              string_of_int (cr + hg);
              string_of_int sem
            ])
      suite
  in
  (* fmm with the semantic predicate *)
  let fmm_row =
    match Suite.find "fmm" with
    | Some w -> (
      match w.Registry.w_semantic_variant with
      | Some p ->
        let prog = Portend_lang.Compile.compile p in
        let a =
          Pipeline.analyze ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog
        in
        let sem =
          List.length
            (List.filter
               (fun ra ->
                 ra.Pipeline.verdict.Taxonomy.consequence = Some V.Crash.Csemantic)
               a.Pipeline.races)
        in
        [ [ "fmm (with predicate)"; string_of_int (List.length a.Pipeline.races); "0"; "0";
            string_of_int sem ] ]
      | None -> [])
    | None -> []
  in
  let whatif_row =
    match Suite.find "memcached" with
    | Some w -> (
      match w.Registry.w_whatif_variant with
      | Some p ->
        let prog = Portend_lang.Compile.compile p in
        let a = Pipeline.analyze ~seed:1 prog in
        let crash =
          List.length
            (List.filter
               (fun ra -> ra.Pipeline.verdict.Taxonomy.consequence = Some V.Crash.Ccrash)
               a.Pipeline.races)
        in
        [ [ "memcached (what-if)"; string_of_int (List.length a.Pipeline.races); "0";
            string_of_int crash; "0" ] ]
      | None -> [])
    | None -> []
  in
  Harness.print_table ~title:"Table 2: 'spec violated' races and their consequences"
    ~header:[ "Program"; "Total races"; "Deadlock"; "Crash/Hang"; "Semantic" ]
    (base_rows @ fmm_row @ whatif_row)

(* Table 3: classification of every distinct race. *)
let table3 (suite : Harness.app_result list) =
  let rows =
    List.map
      (fun (r : Harness.app_result) ->
        let races = r.Harness.analysis.Pipeline.races in
        let count pred = List.length (List.filter pred races) in
        let cat c ra = ra.Pipeline.verdict.Taxonomy.category = c in
        let k_same =
          count (fun ra ->
              cat Taxonomy.K_witness_harmless ra
              && not ra.Pipeline.verdict.Taxonomy.states_differ)
        in
        let k_diff =
          count (fun ra ->
              cat Taxonomy.K_witness_harmless ra && ra.Pipeline.verdict.Taxonomy.states_differ)
        in
        [ r.Harness.w.Registry.w_name;
          string_of_int (List.length races);
          string_of_int
            (List.fold_left (fun acc ra -> acc + ra.Pipeline.instances) 0 races);
          string_of_int (count (cat Taxonomy.Spec_violated));
          string_of_int (count (cat Taxonomy.Output_differs));
          string_of_int k_same;
          string_of_int k_diff;
          string_of_int (count (cat Taxonomy.Single_ordering))
        ])
      suite
  in
  let total col =
    List.fold_left (fun acc row -> acc + int_of_string (List.nth row col)) 0 rows
  in
  Harness.print_table ~title:"Table 3: summary of Portend's classification results"
    ~header:
      [ "Program"; "Distinct"; "Instances"; "specViol"; "outDiff"; "k-wit(same)";
        "k-wit(diff)"; "singleOrd" ]
    (rows
    @ [ [ "TOTAL";
          string_of_int (total 1);
          string_of_int (total 2);
          string_of_int (total 3);
          string_of_int (total 4);
          string_of_int (total 5);
          string_of_int (total 6);
          string_of_int (total 7)
        ] ]);
  Printf.printf
    "(paper: 93 distinct; specViol 5, outDiff 21, k-wit 4 same + 6 differ, singleOrd 57)\n"

(* Table 4: plain interpretation time vs classification time per race. *)
let table4 (suite : Harness.app_result list) =
  let rows =
    List.map
      (fun (r : Harness.app_result) ->
        let times = List.map (fun ra -> ra.Pipeline.time_s) r.Harness.analysis.Pipeline.races in
        let lo, hi = Portend_util.Stats.min_max times in
        let interp = r.Harness.analysis.Pipeline.record_time_s in
        let ms t = Printf.sprintf "%.3f" (1000.0 *. t) in
        [ r.Harness.w.Registry.w_name;
          ms interp;
          ms (Portend_util.Stats.mean times);
          ms lo;
          ms hi;
          Printf.sprintf "%.1fx"
            (Portend_util.Stats.mean times /. Stdlib.max 1e-9 interp)
        ])
      suite
  in
  Harness.print_table
    ~title:"Table 4: interpretation time vs per-race classification time (milliseconds)"
    ~header:[ "Program"; "Interp"; "Classify avg"; "min"; "max"; "overhead" ]
    rows;
  Printf.printf
    "(paper: classification costs 1.1x-49.9x plain interpretation; all races < 11 min)\n"

(* Table 5: per-category accuracy, Portend vs the baselines, against manual
   ground truth. *)
let table5 (suite : Harness.app_result list) =
  (* ground truth census *)
  let categories = Taxonomy.all_categories in
  let truth_count c =
    List.fold_left
      (fun acc (r : Harness.app_result) ->
        List.fold_left
          (fun acc x -> if x.Registry.x_truth = c then acc + x.Registry.x_count else acc)
          acc r.Harness.w.Registry.w_expect)
      0 suite
  in
  (* Portend's verdicts, already computed *)
  let portend_correct c =
    List.fold_left
      (fun acc (r : Harness.app_result) ->
        acc
        + Harness.count_matching r
            ~want:(fun x -> if x.Registry.x_truth = c then Some c else None)
            ~pred:(fun v x -> v.Taxonomy.category = x.Registry.x_truth))
      0 suite
  in
  (* the baselines re-classify every race from the same recordings *)
  let baseline_correct ~classify c =
    List.fold_left
      (fun acc (r : Harness.app_result) ->
        let prog = Portend_lang.Compile.compile r.Harness.w.Registry.w_prog in
        let trace = r.Harness.analysis.Pipeline.record.V.Run.trace in
        let vs =
          List.filter_map
            (fun ra ->
              match classify prog trace ra.Pipeline.race with
              | Some got -> Some (D.Report.base_loc ra.Pipeline.race.D.Report.r_loc, got)
              | None -> None)
            r.Harness.analysis.Pipeline.races
        in
        List.fold_left
          (fun acc x ->
            if x.Registry.x_truth <> c then acc
            else
              let got = List.filter (fun (loc, _) -> loc = x.Registry.x_loc) vs in
              let good = List.length (List.filter (fun (_, g) -> g = Some c) got) in
              acc + min good x.Registry.x_count)
          acc r.Harness.w.Registry.w_expect)
      0 suite
  in
  let rr prog trace race =
    match Portend_baselines.Replay_analyzer.classify prog trace race with
    | Ok v -> Some (Some (Portend_baselines.Replay_analyzer.as_category v))
    | Error _ -> Some None
  in
  let ah prog trace race =
    match Portend_baselines.Adhoc_detector.classify prog trace race with
    | Ok v -> Some (Portend_baselines.Adhoc_detector.as_category v)
    | Error _ -> Some None
  in
  let so prog _trace race =
    Some (Portend_baselines.Static_only.as_category (Portend_baselines.Static_only.classify prog race))
  in
  let row name correct =
    name
    :: List.map (fun c -> Harness.pct (correct c) (truth_count c)) categories
  in
  Harness.print_table
    ~title:"Table 5: accuracy per approach and classification category (vs ground truth)"
    ~header:
      ("Approach" :: List.map Taxonomy.category_to_string categories)
    [ ("Races (ground truth)" :: List.map (fun c -> string_of_int (truth_count c)) categories);
      row "Record/Replay-Analyzer" (baseline_correct ~classify:rr);
      row "Ad-Hoc-Detector / Helgrind+" (baseline_correct ~classify:ah);
      row "Static-only detector" (baseline_correct ~classify:so);
      row "Portend" portend_correct
    ];
  Printf.printf
    "(paper: Portend 100/99/99/100; R/R-Analyzer 10/95/-/-; ad-hoc detectors -/-/-/100)\n"
