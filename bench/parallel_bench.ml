(* Scaling benchmark for the parallel classification layer and the solver
   query cache: suite wall time at several job counts, a cache-mode
   comparison (off / per-domain / shared), a determinism cross-check, and a
   machine-readable BENCH_parallel.json so later changes can track the
   trajectory. *)

open Portend_core
open Portend_workloads
module D = Portend_detect
module Solver = Portend_solver.Solver

(* Verdict signature of a suite run: workload, racy location, category, k.
   Two runs are equivalent iff their signatures are equal. *)
let signature (results : Harness.app_result list) =
  List.concat_map
    (fun (r : Harness.app_result) ->
      List.map
        (fun ra ->
          ( r.Harness.w.Registry.w_name,
            D.Report.base_loc ra.Pipeline.race.D.Report.r_loc,
            Taxonomy.category_to_string ra.Pipeline.verdict.Taxonomy.category,
            ra.Pipeline.verdict.Taxonomy.k ))
        r.Harness.analysis.Pipeline.races)
    results

type measurement = {
  m_label : string;
  m_jobs : int;
  m_wall_s : float;  (* best of [reps] *)
  m_stats : Solver.stats;  (* from the last repetition *)
  m_signature : (string * string * string * int) list;
}

let reps = 3

let measure ~label ~jobs () =
  let config = { Config.default with Config.jobs } in
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    (* Explicitly cold per repetition: zero the counters and drop the warm
       caches, so hit rates are per-run and runs are comparable. *)
    Solver.reset_stats ();
    Solver.clear_caches ();
    let results, dt = Portend_util.Clock.timed (fun () -> Harness.run_suite ~config ()) in
    if dt < !best then best := dt;
    last := Some results
  done;
  let results = Option.get !last in
  { m_label = label;
    m_jobs = jobs;
    m_wall_s = !best;
    m_stats = Solver.stats ();
    m_signature = signature results
  }

let json_of_measurement ~baseline m =
  let s = m.m_stats in
  Printf.sprintf
    {|    {"label": %S, "jobs": %d, "wall_s": %.6f, "speedup_vs_baseline": %.3f,
     "solver": {"queries": %d, "cache_hits": %d, "cache_misses": %d, "prefix_unsat": %d, "hit_rate": %.4f}}|}
    m.m_label m.m_jobs m.m_wall_s
    (if m.m_wall_s > 0.0 then baseline /. m.m_wall_s else 0.0)
    s.Solver.queries s.Solver.cache_hits s.Solver.cache_misses s.Solver.prefix_unsat
    (Solver.hit_rate s)

let row ~baseline m =
  let s = m.m_stats in
  [ m.m_label;
    string_of_int m.m_jobs;
    Printf.sprintf "%.3f" m.m_wall_s;
    Printf.sprintf "%.2fx" (if m.m_wall_s > 0.0 then baseline /. m.m_wall_s else 0.0);
    string_of_int s.Solver.queries;
    Printf.sprintf "%.0f%%" (100.0 *. Solver.hit_rate s);
    string_of_int s.Solver.prefix_unsat
  ]

let header = [ "config"; "jobs"; "wall (s)"; "speedup"; "queries"; "cache hit"; "prefix unsat" ]

let run () =
  let recommended = Portend_util.Pool.recommended_jobs () in
  let job_counts = List.sort_uniq compare [ 1; 2; 4; recommended ] in
  (* Warm up the heap once so the first measured configuration doesn't pay
     for growing it. *)
  ignore (Harness.run_suite ~config:{ Config.default with Config.jobs = 1 } ());
  (* --- scaling in the job count (default cache mode) --- *)
  let scaling =
    List.map (fun jobs -> measure ~label:(Printf.sprintf "jobs=%d" jobs) ~jobs ()) job_counts
  in
  let base = List.hd scaling in
  let deterministic =
    List.for_all (fun m -> m.m_signature = base.m_signature) scaling
  in
  (* --- cache modes at the recommended job count --- *)
  let with_mode mode label =
    Solver.set_cache_mode mode;
    let m = measure ~label ~jobs:recommended () in
    Solver.set_cache_mode Solver.Cache_domain;
    m
  in
  let modes =
    [ with_mode Solver.Cache_off "cache=off";
      with_mode Solver.Cache_domain "cache=domain";
      with_mode Solver.Cache_shared "cache=shared"
    ]
  in
  Harness.print_table ~title:"Parallel classification scaling (evaluation suite)" ~header
    (List.map (row ~baseline:base.m_wall_s) scaling);
  let cache_base = (List.hd modes).m_wall_s in
  Harness.print_table ~title:"Solver cache modes (at recommended jobs)" ~header
    (List.map (row ~baseline:cache_base) modes);
  Printf.printf "\nverdicts identical across job counts: %b\n" deterministic;
  if not deterministic then prerr_endline "WARNING: verdicts differ across job counts!";
  (* --- BENCH_parallel.json --- *)
  let find_jobs n = List.find_opt (fun m -> m.m_jobs = n) scaling in
  let speedup_j4 =
    match find_jobs 4 with
    | Some m4 when m4.m_wall_s > 0.0 -> base.m_wall_s /. m4.m_wall_s
    | _ -> 1.0
  in
  let cache_speedup =
    match modes with
    | off :: rest ->
      let best_cached = List.fold_left (fun acc m -> min acc m.m_wall_s) infinity rest in
      if best_cached > 0.0 then off.m_wall_s /. best_cached else 1.0
    | [] -> 1.0
  in
  let json =
    Printf.sprintf
      {|{
  "bench": "portend-parallel-scaling",
  "suite_workloads": %d,
  "recommended_jobs": %d,
  "reps_per_config": %d,
  "deterministic_across_jobs": %b,
  "speedup_jobs4_vs_jobs1": %.3f,
  "speedup_cache_on_vs_off": %.3f,
  "scaling": [
%s
  ],
  "cache_modes": [
%s
  ]
}
|}
      (List.length Suite.all) recommended reps deterministic speedup_j4 cache_speedup
      (String.concat ",\n" (List.map (json_of_measurement ~baseline:base.m_wall_s) scaling))
      (String.concat ",\n" (List.map (json_of_measurement ~baseline:cache_base) modes))
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_parallel.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* One tiny workload at jobs=2 vs jobs=1, exercised on every `dune runtest`
   via the bench-smoke alias: keeps the parallel path and the determinism
   guarantee under continuous test without the full benchmark's cost. *)
let smoke () =
  let w =
    match Suite.find "RW" with
    | Some w -> w
    | None -> List.hd Suite.micro_benchmarks
  in
  let at jobs =
    let r = Harness.analyze_workload ~config:{ Config.default with Config.jobs } w in
    signature [ r ]
  in
  Solver.reset_stats ();
  Solver.clear_caches ();
  let seq = at 1 and par = at 2 in
  let stats = Solver.stats () in
  if seq <> par then begin
    prerr_endline "bench smoke FAILED: verdicts differ between jobs=1 and jobs=2";
    exit 1
  end;
  if seq = [] then begin
    prerr_endline "bench smoke FAILED: no races classified";
    exit 1
  end;
  Printf.printf
    "bench smoke ok: %d race(s), verdicts identical at jobs=1/2, %d solver queries (%.0f%% cached)\n"
    (List.length seq) stats.Solver.queries
    (100.0 *. Solver.hit_rate stats)
