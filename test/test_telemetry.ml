(* The telemetry layer:

   - span nesting and event ordering in snapshots;
   - counter aggregation across raw domains (per-domain sinks merge);
   - Chrome-trace JSON well-formedness: valid JSON (checked with a small
     parser below), every B matched by an E per (pid, tid) with stack
     discipline, monotone timestamps;
   - schedule-replay determinism: replaying a recorded trace performs
     exactly the recorded number of VM steps, for every suite workload;
   - suite-wide verdict neutrality: enabling telemetry changes no verdict;
   - solver stats are cumulative until the explicit reset, and the reset
     leaves the warm cache intact (clear_caches drops it). *)

module T = Portend_telemetry
module V = Portend_vm
module D = Portend_detect
module S = Portend_solver.Solver
module E = Portend_solver.Expr
open Portend_core
open Portend_workloads

(* Enable telemetry on a clean slate for the duration of [f]. *)
let with_telemetry f =
  let was = T.enabled () in
  T.set_enabled true;
  T.reset ();
  Fun.protect ~finally:(fun () -> T.set_enabled was) f

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* span nesting and ordering                                           *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let snap =
    with_telemetry (fun () ->
        T.with_span "outer" (fun () ->
            T.incr "n.work";
            T.with_span "inner" (fun () -> T.incr ~by:2 "n.work"));
        T.snapshot ())
  in
  let evs = List.map (fun e -> (e.T.ev_begin, e.T.ev_name)) snap.T.events in
  check "events are B outer, B inner, E inner, E outer" true
    (evs = [ (true, "outer"); (true, "inner"); (false, "inner"); (false, "outer") ]);
  let ts = List.map (fun e -> e.T.ev_ts_us) snap.T.events in
  check "timestamps non-decreasing" true (ts = List.sort compare ts);
  check "counter accumulated" true (T.counter snap "n.work" = 3);
  check "both spans have a timer entry" true
    (List.mem_assoc "outer" snap.T.timers && List.mem_assoc "inner" snap.T.timers);
  let outer = List.assoc "outer" snap.T.timers in
  let inner = List.assoc "inner" snap.T.timers in
  check "one sample per span" true (outer.T.t_count = 1 && inner.T.t_count = 1);
  check "outer duration covers inner" true (outer.T.t_total_s >= inner.T.t_total_s)

(* A span must close (and time) even when the body raises. *)
let test_span_closes_on_exception () =
  let snap =
    with_telemetry (fun () ->
        (try T.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
        T.snapshot ())
  in
  let begins = List.filter (fun e -> e.T.ev_begin) snap.T.events in
  let ends = List.filter (fun e -> not e.T.ev_begin) snap.T.events in
  check "B and E both emitted" true (List.length begins = 1 && List.length ends = 1);
  check "timer recorded" true (List.mem_assoc "boom" snap.T.timers)

(* ------------------------------------------------------------------ *)
(* cross-domain aggregation                                            *)
(* ------------------------------------------------------------------ *)

let test_cross_domain_counters () =
  let snap =
    with_telemetry (fun () ->
        T.incr ~by:7 "x.total";
        let doms =
          List.init 3 (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to 100 do
                    T.incr ~by:5 "x.total"
                  done;
                  T.gauge "x.gauge" 42))
        in
        List.iter Domain.join doms;
        T.snapshot ())
  in
  check "counters sum across domains" true (T.counter snap "x.total" = 7 + (3 * 100 * 5));
  match List.assoc_opt "x.gauge" snap.T.gauges with
  | None -> Alcotest.fail "gauge missing from snapshot"
  | Some g ->
    check "gauge samples from every domain" true (g.T.g_samples = 3);
    check "gauge max" true (g.T.g_max = 42)

(* ------------------------------------------------------------------ *)
(* Chrome-trace JSON well-formedness                                   *)
(* ------------------------------------------------------------------ *)

(* A small strict JSON parser — just enough to round-trip the exporter's
   output (objects, arrays, strings with escapes, numbers, booleans). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      then begin
        advance ();
        skip_ws ()
      end
    in
    let expect c =
      skip_ws ();
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 >= n then raise (Bad "bad \\u escape");
            let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
            pos := !pos + 4;
            (* the exporter only emits \u00XX for control bytes *)
            Buffer.add_char buf (Char.chr (code land 0xff))
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          advance ();
          go ()
        | c when Char.code c < 0x20 -> raise (Bad "raw control char in string")
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((k, v) :: acc)
            | '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object separator %c" c))
          in
          members []
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              elements (v :: acc)
            | ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array separator %c" c))
          in
          elements []
        end
      | '"' -> Str (parse_string ())
      | 't' ->
        pos := !pos + 4;
        Bool true
      | 'f' ->
        pos := !pos + 5;
        Bool false
      | 'n' ->
        pos := !pos + 4;
        Null
      | _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
        do
          advance ()
        done;
        if !pos = start then raise (Bad (Printf.sprintf "unexpected char at %d" start));
        Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v
end

let field name = function
  | Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let test_chrome_trace_well_formed () =
  (* Real events from a full profiled analysis, plus a span with args that
     need escaping. *)
  let w = List.hd Suite.all in
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  let json =
    with_telemetry (fun () ->
        T.with_span ~args:[ ("note", "quote \" backslash \\ tab\t") ] "args-span" (fun () ->
            ignore
              (Pipeline.analyze
                 ~config:{ Config.default with Config.jobs = 2 }
                 ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog));
        T.to_chrome_json (T.snapshot ()))
  in
  let parsed =
    match Json.parse json with
    | v -> v
    | exception Json.Bad e -> Alcotest.failf "invalid JSON: %s" e
  in
  let events =
    match field "traceEvents" parsed with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check "has events" true (events <> []);
  (* every event has the required fields; timestamps are monotone *)
  let last_ts = ref neg_infinity in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let name =
        match field "name" ev with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.fail "event without name"
      in
      let ph =
        match field "ph" ev with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.fail "event without ph"
      in
      let ts =
        match field "ts" ev with
        | Some (Json.Num t) -> t
        | _ -> Alcotest.fail "event without ts"
      in
      let tid =
        match field "tid" ev with
        | Some (Json.Num t) -> int_of_float t
        | _ -> Alcotest.fail "event without tid"
      in
      check "pid present" true (field "pid" ev <> None);
      check "ts rebased to >= 0" true (ts >= 0.0);
      check "ts monotone in file order" true (ts >= !last_ts);
      last_ts := ts;
      let stack = match Hashtbl.find_opt stacks tid with Some s -> s | None -> [] in
      match ph with
      | "B" -> Hashtbl.replace stacks tid (name :: stack)
      | "E" -> (
        match stack with
        | top :: rest ->
          check "E matches innermost B on its tid" true (top = name);
          Hashtbl.replace stacks tid rest
        | [] -> Alcotest.failf "E %S with no open span on tid %d" name tid)
      | _ -> Alcotest.failf "unexpected phase %S" ph)
    events;
  Hashtbl.iter
    (fun tid stack ->
      check (Printf.sprintf "all spans closed on tid %d" tid) true (stack = []))
    stacks;
  check "escaped args survive the round trip" true
    (List.exists
       (fun ev ->
         field "name" ev = Some (Json.Str "args-span")
         &&
         match field "args" ev with
         | Some (Json.Obj kvs) ->
           List.assoc_opt "note" kvs = Some (Json.Str "quote \" backslash \\ tab\t")
         | _ -> false)
       events)

(* ------------------------------------------------------------------ *)
(* schedule-replay determinism: recorded VM steps == replayed VM steps *)
(* ------------------------------------------------------------------ *)

let test_replay_step_counts () =
  List.iter
    (fun (w : Registry.workload) ->
      let prog = Portend_lang.Compile.compile w.Registry.w_prog in
      let model = Portend_util.Maps.Smap.of_list w.Registry.w_inputs in
      let recorded, rec_steps =
        with_telemetry (fun () ->
            let st = V.State.init ~input_mode:(V.State.Concrete model) prog in
            let r = V.Run.run ~sched:(V.Sched.random ~seed:w.Registry.w_seed) st in
            (r, T.counter (T.snapshot ()) "vm.steps"))
      in
      check
        (w.Registry.w_name ^ ": recorded vm.steps counter = final step count")
        true
        (rec_steps = recorded.V.Run.final.V.State.steps);
      let replayed_steps =
        with_telemetry (fun () ->
            let st = V.State.init ~input_mode:(V.State.Concrete model) prog in
            let r =
              V.Run.run
                ~sched:(V.Sched.of_decisions (V.Trace.decisions recorded.V.Run.trace))
                st
            in
            check (w.Registry.w_name ^ ": replay reaches the recorded stop") true
              (V.Run.stop_to_string r.V.Run.stop
              = V.Run.stop_to_string recorded.V.Run.stop);
            T.counter (T.snapshot ()) "vm.steps")
      in
      check
        (w.Registry.w_name ^ ": replayed vm.steps counter = recorded")
        true (replayed_steps = rec_steps))
    Suite.all

(* ------------------------------------------------------------------ *)
(* suite-wide verdict neutrality                                       *)
(* ------------------------------------------------------------------ *)

(* Everything observable about an analysis except wall-clock times. *)
let fingerprint (w : Registry.workload) =
  let config = { Config.default with Config.jobs = 2 } in
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  let a = Pipeline.analyze ~config ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog in
  let race_key (r : D.Report.race) = Fmt.str "%a" D.Report.pp_race r in
  ( w.Registry.w_name,
    List.map
      (fun ra ->
        ( race_key ra.Pipeline.race,
          ra.Pipeline.instances,
          ra.Pipeline.verdict,
          ra.Pipeline.evidence,
          ra.Pipeline.stats ))
      a.Pipeline.races,
    List.map (fun (r, e) -> (race_key r, e)) a.Pipeline.errors )

let test_suite_verdicts_neutral () =
  List.iter
    (fun (w : Registry.workload) ->
      let off = fingerprint w in
      let on = with_telemetry (fun () -> fingerprint w) in
      check (w.Registry.w_name ^ ": verdicts identical with telemetry on") true (off = on))
    Suite.all

(* ------------------------------------------------------------------ *)
(* solver stats: cumulative until the explicit reset                   *)
(* ------------------------------------------------------------------ *)

let test_solver_stats_reset () =
  let saved = S.cache_mode () in
  Fun.protect
    ~finally:(fun () -> S.set_cache_mode saved)
    (fun () ->
      S.set_cache_mode S.Cache_domain;
      S.clear_caches ();
      S.reset_stats ();
      let ranges = [ ("x", 0, 9) ] in
      let cs = [ E.Binop (E.Lt, E.Var "x", E.Const 5) ] in
      ignore (S.solve ~ranges cs);
      let s1 = S.stats () in
      check "first query is a miss" true (s1.S.queries = 1 && s1.S.cache_misses = 1);
      ignore (S.solve ~ranges cs);
      let s2 = S.stats () in
      check "stats are cumulative across queries (not last-query)" true
        (s2.S.queries = 2 && s2.S.cache_hits = 1 && s2.S.cache_misses = 1);
      S.reset_stats ();
      let z = S.stats () in
      check "reset_stats zeroes every counter" true
        (z.S.queries = 0 && z.S.cache_hits = 0 && z.S.cache_misses = 0 && z.S.prefix_unsat = 0);
      ignore (S.solve ~ranges cs);
      let s3 = S.stats () in
      check "reset_stats keeps the warm cache (hit, no miss)" true
        (s3.S.queries = 1 && s3.S.cache_hits = 1 && s3.S.cache_misses = 0);
      S.clear_caches ();
      S.reset_stats ();
      ignore (S.solve ~ranges cs);
      let s4 = S.stats () in
      check "clear_caches forces a fresh solve" true
        (s4.S.queries = 1 && s4.S.cache_hits = 0 && s4.S.cache_misses = 1))

(* A suite-style run accumulates queries across workloads: the counters
   after two analyses must strictly exceed the counters after one. *)
let test_solver_stats_cumulative_across_workloads () =
  let w =
    (* a workload that actually reaches the solver (multipath ran) *)
    match
      List.find_opt
        (fun (w : Registry.workload) ->
          S.reset_stats ();
          let prog = Portend_lang.Compile.compile w.Registry.w_prog in
          ignore
            (Pipeline.analyze
               ~config:{ Config.default with Config.jobs = 1 }
               ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog);
          (S.stats ()).S.queries > 0)
        Suite.all
    with
    | Some w -> w
    | None -> Alcotest.fail "no suite workload queries the solver"
  in
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  let analyze () =
    ignore
      (Pipeline.analyze
         ~config:{ Config.default with Config.jobs = 1 }
         ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog)
  in
  S.reset_stats ();
  analyze ();
  let q1 = (S.stats ()).S.queries in
  analyze ();
  let q2 = (S.stats ()).S.queries in
  check "queries accumulate across analyses" true (q1 > 0 && q2 = 2 * q1)

let () =
  Alcotest.run "telemetry"
    [ ( "spans",
        [ Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "closed on exception" `Quick test_span_closes_on_exception
        ] );
      ( "domains",
        [ Alcotest.test_case "counters aggregate across domains" `Quick
            test_cross_domain_counters
        ] );
      ( "chrome-trace",
        [ Alcotest.test_case "JSON well-formed, B/E matched, ts monotone" `Quick
            test_chrome_trace_well_formed
        ] );
      ( "pipeline",
        [ Alcotest.test_case "replayed VM-step counter equals recorded" `Quick
            test_replay_step_counts;
          Alcotest.test_case "suite verdicts identical on/off" `Quick
            test_suite_verdicts_neutral
        ] );
      ( "solver-stats",
        [ Alcotest.test_case "explicit reset; warm cache survives" `Quick
            test_solver_stats_reset;
          Alcotest.test_case "cumulative across workloads" `Quick
            test_solver_stats_cumulative_across_workloads
        ] )
    ]
