(* Tests for the utility layer: deterministic RNG, maps, statistics. *)

open Portend_util

let test_srng_deterministic () =
  let draw seed =
    let rng = Srng.of_seed seed in
    let a, rng = Srng.int ~bound:1000 rng in
    let b, rng = Srng.int ~bound:1000 rng in
    let c, _ = Srng.bool rng in
    (a, b, c)
  in
  Alcotest.(check bool) "same seed same stream" true (draw 42 = draw 42);
  Alcotest.(check bool) "different seeds differ" true (draw 42 <> draw 43)

let test_srng_bounds =
  QCheck.Test.make ~name:"srng stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 100))
    (fun (seed, bound) ->
      let v, _ = Srng.int ~bound (Srng.of_seed seed) in
      v >= 0 && v < bound)

let test_srng_split () =
  let rng = Srng.of_seed 7 in
  let left, rng' = Srng.split rng in
  let a, _ = Srng.int ~bound:1_000_000 left in
  let b, _ = Srng.int ~bound:1_000_000 rng' in
  Alcotest.(check bool) "split streams are independent" true (a <> b)

let test_srng_choose () =
  let xs = [ "a"; "b"; "c" ] in
  let v, _ = Srng.choose xs (Srng.of_seed 1) in
  Alcotest.(check bool) "choose picks a member" true (List.mem v xs);
  Alcotest.check_raises "empty choose" (Invalid_argument "Srng.choose: empty list") (fun () ->
      ignore (Srng.choose [] (Srng.of_seed 1)))

let test_maps () =
  let open Maps in
  let m = Smap.of_list [ ("a", 1); ("b", 2) ] in
  Alcotest.(check int) "find_or hit" 2 (Smap.find_or ~default:0 "b" m);
  Alcotest.(check int) "find_or miss" 0 (Smap.find_or ~default:0 "z" m);
  Alcotest.(check (list string)) "keys sorted" [ "a"; "b" ] (Smap.keys m);
  let im = Imap.of_list [ (3, "x"); (1, "y") ] in
  Alcotest.(check (list int)) "int keys sorted" [ 1; 3 ] (Imap.keys im)

(* --- Pool: the Domain work pool --- *)

let test_pool_ordering () =
  let items = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) items in
  Alcotest.(check (list int)) "jobs=1 (sequential path)" expected
    (Pool.map ~jobs:1 (fun x -> x * x) items);
  Alcotest.(check (list int)) "jobs=4 preserves input order" expected
    (Pool.map ~jobs:4 (fun x -> x * x) items);
  Alcotest.(check (list int))
    "more jobs than items" expected
    (Pool.map ~jobs:64 (fun x -> x * x) items);
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:4 (fun x -> x * x) []);
  Alcotest.(check (list int)) "singleton input" [ 49 ] (Pool.map ~jobs:4 (fun x -> x * x) [ 7 ])

let test_pool_exception () =
  let boom _ = failwith "boom" in
  Alcotest.check_raises "jobs=1 re-raises" (Failure "boom") (fun () ->
      ignore (Pool.map ~jobs:1 boom [ 1; 2; 3 ]));
  Alcotest.check_raises "jobs=4 re-raises on the caller" (Failure "boom") (fun () ->
      ignore
        (Pool.map ~jobs:4 (fun x -> if x = 5 then failwith "boom" else x) (List.init 20 Fun.id)))

let test_pool_on_item () =
  let n = 10 in
  let times = Array.make n nan in
  let out =
    Pool.map
      ~on_item:(fun i dt -> times.(i) <- dt)
      ~jobs:4
      (fun x -> x + 1)
      (List.init n Fun.id)
  in
  Alcotest.(check (list int)) "results" (List.init n (fun i -> i + 1)) out;
  Alcotest.(check bool) "every item timed" true
    (Array.for_all (fun t -> Float.is_finite t && t >= 0.0) times)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  let lo, hi = Stats.min_max [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "min max" (1.0, 3.0) (lo, hi);
  Alcotest.(check bool) "stddev positive" true (Stats.stddev [ 1.0; 5.0 ] > 0.0);
  Alcotest.(check (float 1e-9)) "percent" 50.0 (Stats.percent ~num:1 ~den:2)

(* The pinned constants below are load-bearing: Chash values name on-disk
   cache entries, so an accidental algorithm change would silently turn
   every persisted entry into a miss.  These literals were computed from an
   independent FNV-1a implementation; if they ever disagree, the hash
   changed, not the test. *)
let test_chash_pinned () =
  let open Portend_util in
  let hex h = Chash.to_hex h in
  Alcotest.(check string) "int 0" "28c7f832281a39c5" (hex (Chash.int Chash.seed 0));
  Alcotest.(check string) "int 42" "3f3add6b3789daef" (hex (Chash.int Chash.seed 42));
  Alcotest.(check string) "int -1" "0cf59a8bfca461bd" (hex (Chash.int Chash.seed (-1)));
  Alcotest.(check string) "empty string" "28c7f832281a39c5" (hex (Chash.string Chash.seed ""));
  Alcotest.(check string) "string" "35ad884ec1b04492" (hex (Chash.string Chash.seed "portend"));
  Alcotest.(check string) "bool" "2f63bc4c8601b62c" (hex (Chash.bool Chash.seed true));
  Alcotest.(check string) "int list" "3981081392b03a26"
    (hex (Chash.list Chash.int Chash.seed [ 1; 2; 3 ]))

let test_chash_disperses () =
  let open Portend_util in
  let ne msg a b = Alcotest.(check bool) msg false (a = b) in
  (* Length prefixes keep concatenation ambiguities apart. *)
  ne "list split" (Chash.list Chash.int Chash.seed [ 1; 2 ])
    (Chash.list Chash.int Chash.seed [ 12 ]);
  ne "string split"
    (Chash.list Chash.string Chash.seed [ "ab"; "c" ])
    (Chash.list Chash.string Chash.seed [ "a"; "bc" ]);
  ne "option tag" (Chash.option Chash.int Chash.seed None)
    (Chash.option Chash.int Chash.seed (Some 0));
  ne "pair order"
    (Chash.pair Chash.int Chash.int Chash.seed (1, 2))
    (Chash.pair Chash.int Chash.int Chash.seed (2, 1));
  (* All 8 bytes of an int are folded in, so values beyond one byte and
     negatives disperse. *)
  ne "high bytes" (Chash.int Chash.seed 0x1_0000_0000) (Chash.int Chash.seed 0x2_0000_0000);
  ne "negative" (Chash.int Chash.seed (-1)) (Chash.int Chash.seed (-2));
  Alcotest.(check bool) "non-negative" true
    (List.for_all
       (fun n -> Chash.int Chash.seed n >= 0)
       [ 0; 1; -1; max_int; min_int; 0x4bf29ce484222325 ]);
  Alcotest.(check int) "hex is 16 chars" 16
    (String.length (Chash.to_hex (Chash.int Chash.seed 7)))

let test_pqueue_order () =
  let open Portend_util in
  let empty_q : int Pqueue.t = Pqueue.create ~cmp:compare () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty empty_q);
  Alcotest.(check (option int)) "pop empty" None (Pqueue.pop empty_q);
  let q = Pqueue.create ~cmp:compare () in
  (* Keys made total by pairing with the insertion index, the same trick
     the multipath frontier uses for a deterministic pop order. *)
  let xs = [ 5; 1; 4; 1; 3; 9; 0; -2; 7 ] in
  List.iteri (fun i x -> Pqueue.push q (x, i)) xs;
  Alcotest.(check int) "length" (List.length xs) (Pqueue.length q);
  Alcotest.(check (option (pair int int))) "peek is min" (Some (-2, 7)) (Pqueue.peek q);
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  let expect = List.sort compare (List.mapi (fun i x -> (x, i)) xs) in
  Alcotest.(check (list (pair int int))) "drains in sorted order" expect (drain [])

let test_pqueue_grow_and_interleave () =
  let open Portend_util in
  let q = Pqueue.create ~capacity:1 ~cmp:compare () in
  for i = 99 downto 0 do
    Pqueue.push q i
  done;
  Alcotest.(check int) "grew past capacity" 100 (Pqueue.length q);
  Alcotest.(check (option int)) "min first" (Some 0) (Pqueue.pop q);
  Pqueue.push q (-5);
  Alcotest.(check (option int)) "pushed new min" (Some (-5)) (Pqueue.pop q);
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "rest still sorted" (List.init 99 (fun i -> i + 1)) (drain [])

let () =
  Alcotest.run "util"
    [ ( "srng",
        [ Alcotest.test_case "deterministic" `Quick test_srng_deterministic;
          Alcotest.test_case "split" `Quick test_srng_split;
          Alcotest.test_case "choose" `Quick test_srng_choose;
          QCheck_alcotest.to_alcotest test_srng_bounds
        ] );
      ("maps", [ Alcotest.test_case "helpers" `Quick test_maps ]);
      ( "pool",
        [ Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "exceptions" `Quick test_pool_exception;
          Alcotest.test_case "per-item timing" `Quick test_pool_on_item
        ] );
      ("stats", [ Alcotest.test_case "descriptive" `Quick test_stats ]);
      ( "chash",
        [ Alcotest.test_case "pinned values" `Quick test_chash_pinned;
          Alcotest.test_case "dispersion" `Quick test_chash_disperses
        ] );
      ( "pqueue",
        [ Alcotest.test_case "heap order" `Quick test_pqueue_order;
          Alcotest.test_case "growth and interleaving" `Quick test_pqueue_grow_and_interleave
        ] )
    ]
