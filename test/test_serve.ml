(* Tests for the serve daemon: the JSON codec, the validated input parser
   shared with the CLI, request validation, and the running server itself —
   protocol round-trips, structured errors for malformed/truncated/oversized
   input, concurrent-client verdict identity against one-shot
   Pipeline.analyze, warm-cache verdict-tier hits, explicit backpressure,
   idle-client disconnection, and graceful drain. *)

open Portend_serve
module Core = Portend_core
module Store = Portend_cache.Store
module Workloads = Portend_workloads

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

(* Every server test binds loopback port 0 (the kernel picks a free port),
   so runs never collide; the Unix-socket test uses a temp path. *)
let loopback = Server.Tcp ("", 0)

let with_server ?settings (f : Server.t -> unit) () =
  let srv = Server.start ?settings loopback in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let micro name =
  match Workloads.Suite.find name with
  | Some w -> w
  | None -> Alcotest.failf "workload %s not in the suite" name

(* The response lines a one-shot analysis of [w] would produce, with the
   nondeterministic wall-time stripped — the serve identity oracle. *)
let expected_lines ?id (w : Workloads.Registry.workload) =
  let prog = Portend_lang.Compile.compile w.Workloads.Registry.w_prog in
  let a =
    Core.Pipeline.analyze ~config:Core.Config.default ~seed:w.Workloads.Registry.w_seed
      ~inputs:w.Workloads.Registry.w_inputs prog
  in
  List.map Json.to_string (Protocol.responses_of_analysis ?id a)

let served_lines responses =
  List.map (fun r -> Json.to_string (Protocol.strip_member "time_s" r)) responses

let workload_request ?id name : Json.t =
  Json.Obj
    ((match id with Some id -> [ ("id", id) ] | None -> [])
    @ [ ("workload", Json.String name) ])

let resp_type r = match Json.member "type" r with Some (Json.String t) -> t | _ -> "?"
let resp_code r = match Json.member "code" r with Some (Json.String c) -> c | _ -> "?"

(* --- the JSON codec -------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [ {|{"a":1,"b":[true,false,null],"c":"x"}|};
      {|[1,-2,0]|};
      {|"escaped \" \\ \n \t end"|};
      {|{"nested":{"deep":{"deeper":[{"ok":true}]}}}|};
      {|3.5|}
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok v -> (
        (* print → parse → print is a fixpoint *)
        let printed = Json.to_string v in
        match Json.parse printed with
        | Error e -> Alcotest.failf "reparse %s: %s" printed e
        | Ok v2 ->
          Alcotest.(check string) ("fixpoint " ^ s) printed (Json.to_string v2)))
    cases;
  (* Escapes decode *)
  (match Json.parse {|"aAb\nc"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "escapes" "aAb\nc" s
  | _ -> Alcotest.fail "string escape parse");
  (* Duplicate keys are preserved for the protocol layer to reject *)
  match Json.parse {|{"k":1,"k":2}|} with
  | Ok (Json.Obj members) ->
    Alcotest.(check int) "duplicates preserved" 2 (List.length members)
  | _ -> Alcotest.fail "duplicate-key object parse"

let test_json_errors () =
  let bad =
    [ "";
      "{";
      "[1,";
      "{\"a\" 1}";
      "tru";
      "\"unterminated";
      "{\"a\":1} trailing";
      "nan";
      "\"bad \\q escape\"";
      "\"ctrl \x01 char\""
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    bad;
  (* A nesting bomb errors instead of overflowing the stack. *)
  let bomb = String.make 10_000 '[' in
  (match Json.parse bomb with
  | Ok _ -> Alcotest.fail "accepted nesting bomb"
  | Error e ->
    Alcotest.(check bool) "depth error" true
      (Astring.String.is_infix ~affix:"nesting too deep" e));
  (* ...but legitimate nesting below the cap parses. *)
  let deep = String.make 32 '[' ^ "1" ^ String.make 32 ']' in
  match Json.parse deep with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected depth-32 value: %s" e

(* --- the shared input parser ----------------------------------------- *)

let test_inputs_parser () =
  (match Core.Inputs.parse_pair "x=3" with
  | Ok kv -> Alcotest.(check (pair string int)) "x=3" ("x", 3) kv
  | Error e -> Alcotest.fail e);
  (match Core.Inputs.parse_pair "x=-7" with
  | Ok kv -> Alcotest.(check (pair string int)) "negative" ("x", -7) kv
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Core.Inputs.parse_pair s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error e ->
        Alcotest.(check bool) (Printf.sprintf "%S error mentions the input" s) true
          (Astring.String.is_infix ~affix:"bad input" e))
    [ "x=abc"; "x=1=2"; "=1"; "x="; "noequals"; "x=1.5" ];
  (* The duplicate-key rule: distinct keys pass through, duplicates error. *)
  (match Core.Inputs.parse_pairs [ "a=1"; "b=2" ] with
  | Ok kvs -> Alcotest.(check (list (pair string int))) "distinct" [ ("a", 1); ("b", 2) ] kvs
  | Error e -> Alcotest.fail e);
  match Core.Inputs.parse_pairs [ "a=1"; "b=2"; "a=3" ] with
  | Ok _ -> Alcotest.fail "accepted duplicate key"
  | Error e ->
    Alcotest.(check bool) "duplicate error names the key" true
      (Astring.String.is_infix ~affix:"\"a\"" e)

(* --- request validation ---------------------------------------------- *)

let parse_req s =
  match Json.parse s with
  | Error e -> Alcotest.failf "test request does not parse: %s" e
  | Ok j -> Protocol.parse_request j

let test_protocol_requests () =
  (match parse_req {|{"workload":"RW","seed":9,"inputs":{"a":1},"config":{"mp":3}}|} with
  | Ok rq ->
    Alcotest.(check (option int)) "seed" (Some 9) rq.Protocol.rq_seed;
    Alcotest.(check bool) "workload" true (rq.Protocol.rq_source = Protocol.Workload "RW");
    let cfg = Protocol.effective_config ~base:Core.Config.default rq in
    Alcotest.(check int) "mp override" 3 cfg.Core.Config.mp;
    Alcotest.(check int) "ma untouched" Core.Config.default.Core.Config.ma cfg.Core.Config.ma
  | Error (c, m) -> Alcotest.failf "valid request rejected: %s %s" c m);
  let rejected =
    [ {|{}|};
      {|{"program":"x","workload":"y"}|};
      {|{"workload":""}|};
      {|{"workload":"RW","seed":"one"}|};
      {|{"workload":"RW","inputs":{"a":"b"}}|};
      {|{"workload":"RW","inputs":{"a":1,"a":2}}|};
      {|{"workload":"RW","config":{"jobs":4}}|};
      {|{"workload":"RW","config":{"mp":"three"}}|};
      {|{"workload":"RW","id":[1]}|};
      {|{"workload":"RW","typo":1}|};
      {|[1,2]|}
    ]
  in
  List.iter
    (fun s ->
      match parse_req s with
      | Ok _ -> Alcotest.failf "accepted bad request %s" s
      | Error (code, _) -> Alcotest.(check string) ("code for " ^ s) "bad_request" code)
    rejected

(* --- the running server ---------------------------------------------- *)

let test_roundtrip srv =
  let cl = Client.connect (Server.address srv) in
  Fun.protect ~finally:(fun () -> Client.close cl)
    (fun () ->
      let w = micro "RW" in
      let responses = Client.request cl (workload_request ~id:(Json.Int 1) "RW") in
      Alcotest.(check (list string)) "served = one-shot"
        (expected_lines ~id:(Json.Int 1) w)
        (served_lines responses))

(* The daemon resolves workloads through [Suite.find], which must reach
   past Table 1: the synchronization additions (CondPC/SemPC) and the
   promoted litmus regressions are all addressable by name. *)
let test_extended_workload_lookup srv =
  let cl = Client.connect (Server.address srv) in
  Fun.protect ~finally:(fun () -> Client.close cl)
    (fun () ->
      List.iter
        (fun name ->
          let w = micro name in
          let responses = Client.request cl (workload_request name) in
          Alcotest.(check (list string))
            (name ^ " served = one-shot")
            (expected_lines w) (served_lines responses))
        ([ "CondPC"; "SemPC" ]
        @ List.map
            (fun (w : Workloads.Registry.workload) -> w.Workloads.Registry.w_name)
            Workloads.Suite.litmus_regressions))

let test_malformed_then_ok srv =
  let cl = Client.connect (Server.address srv) in
  Fun.protect ~finally:(fun () -> Client.close cl)
    (fun () ->
      (* Malformed JSON gets a structured error... *)
      Client.send_line cl "{this is not json";
      (match Client.read_line cl with
      | Some line -> (
        match Json.parse line with
        | Ok r ->
          Alcotest.(check string) "error line" "error" (resp_type r);
          Alcotest.(check string) "parse_error code" "parse_error" (resp_code r)
        | Error e -> Alcotest.failf "unparseable error line: %s" e)
      | None -> Alcotest.fail "connection dropped on malformed line");
      (* ...a bad request too... *)
      let bad = Client.request cl (Json.Obj [ ("nonsense", Json.Int 1) ]) in
      (match bad with
      | [ r ] -> Alcotest.(check string) "bad_request" "bad_request" (resp_code r)
      | _ -> Alcotest.fail "expected exactly one error line");
      (* ...an unclassifiable program too... *)
      let broken =
        Client.request cl (Json.Obj [ ("program", Json.String "program x fn main( {") ])
      in
      (match broken with
      | [ r ] -> Alcotest.(check string) "compile_error" "compile_error" (resp_code r)
      | _ -> Alcotest.fail "expected exactly one compile error line");
      (* ...and the connection still serves real jobs afterwards. *)
      let responses = Client.request cl (workload_request "RW") in
      Alcotest.(check (list string)) "recovers after errors"
        (expected_lines (micro "RW"))
        (served_lines responses))

let test_truncated_request srv =
  (* A client that dies mid-line must not wedge or crash the daemon. *)
  let cl = Client.connect (Server.address srv) in
  Client.send_line cl {|{"workload":"RW"}|};
  (* a complete job, then a half line *)
  let fd_line = {|{"workload":"R|} in
  (try
     let cl2 = Client.connect (Server.address srv) in
     Client.send_line cl2 fd_line;
     (* no newline follows; just hang up *)
     Client.close cl2
   with e -> Alcotest.failf "truncated client: %s" (Printexc.to_string e));
  (* The first client's complete job still answers in full. *)
  let rec read_until_summary acc =
    match Client.read_line cl with
    | None -> Alcotest.fail "EOF before summary"
    | Some line -> (
      match Json.parse line with
      | Ok r when resp_type r = "summary" -> List.rev (r :: acc)
      | Ok r -> read_until_summary (r :: acc)
      | Error e -> Alcotest.failf "bad line: %s" e)
  in
  let responses = read_until_summary [] in
  Alcotest.(check (list string)) "unaffected by truncated neighbour"
    (expected_lines (micro "RW"))
    (served_lines responses);
  Client.close cl

let test_oversized () =
  let settings = { Server.default_settings with Server.max_request_bytes = 256 } in
  with_server ~settings
    (fun srv ->
      let cl = Client.connect (Server.address srv) in
      Fun.protect ~finally:(fun () -> Client.close cl)
        (fun () ->
          Client.send_line cl (String.make 600 'x');
          match Client.read_line cl with
          | Some line -> (
            match Json.parse line with
            | Ok r ->
              Alcotest.(check string) "oversized code" "oversized" (resp_code r);
              (* the stream cannot resync, so the server hangs up *)
              Alcotest.(check (option string)) "closed after oversized" None
                (Client.read_line cl)
            | Error e -> Alcotest.failf "bad oversized reply: %s" e)
          | None -> Alcotest.fail "no oversized reply"))
    ()

let test_concurrent_clients srv =
  (* Three clients, each pipelining its own workload mix concurrently; every
     reply must be bit-identical to the one-shot analysis. *)
  let mixes = [ [ "RW"; "DCL" ]; [ "DCL"; "RW" ]; [ "RW"; "RW" ] ] in
  let run_client names =
    let cl = Client.connect (Server.address srv) in
    Fun.protect ~finally:(fun () -> Client.close cl)
      (fun () ->
        List.mapi
          (fun i name ->
            (name, served_lines (Client.request cl (workload_request ~id:(Json.Int i) name))))
          names)
  in
  let doms = List.map (fun names -> Domain.spawn (fun () -> run_client names)) mixes in
  let results = List.map Domain.join doms in
  List.iteri
    (fun ci per_client ->
      List.iteri
        (fun i (name, got) ->
          Alcotest.(check (list string))
            (Printf.sprintf "client %d job %d (%s)" ci i name)
            (expected_lines ~id:(Json.Int i) (micro name))
            got)
        per_client)
    results

let test_warm_cache () =
  let dir = "_t_serve_cache" in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let config = { Core.Config.default with Core.Config.cache = true; cache_dir = dir } in
      let settings = { Server.default_settings with Server.config } in
      with_server ~settings
        (fun srv ->
          let cl = Client.connect (Server.address srv) in
          Fun.protect ~finally:(fun () -> Client.close cl)
            (fun () ->
              Store.reset_stats ();
              let first = served_lines (Client.request cl (workload_request "RW")) in
              let cold = Store.tier_stats Store.Verdicts in
              Alcotest.(check int) "cold run misses the verdict tier" 1 cold.Store.misses;
              Alcotest.(check bool) "cold run populates the verdict tier" true
                (cold.Store.writes >= 1);
              let second = served_lines (Client.request cl (workload_request "RW")) in
              let warm = Store.tier_stats Store.Verdicts in
              Alcotest.(check int) "second request hits the verdict tier" 1 warm.Store.hits;
              Alcotest.(check (list string)) "warm verdicts identical" first second;
              Alcotest.(check (list string)) "and identical to one-shot"
                (expected_lines (micro "RW"))
                second))
        ())

let test_backpressure () =
  (* queue_depth 0: every job is answered with an explicit busy error. *)
  let settings = { Server.default_settings with Server.queue_depth = 0 } in
  with_server ~settings
    (fun srv ->
      let cl = Client.connect (Server.address srv) in
      Fun.protect ~finally:(fun () -> Client.close cl)
        (fun () ->
          match Client.request cl (workload_request ~id:(Json.Int 7) "RW") with
          | [ r ] ->
            Alcotest.(check string) "busy code" "busy" (resp_code r);
            Alcotest.(check (option string)) "id echoed" (Some "7")
              (Option.map Json.to_string (Json.member "id" r))
          | _ -> Alcotest.fail "expected exactly one busy line"))
    ()

let test_idle_timeout () =
  let settings = { Server.default_settings with Server.idle_timeout_s = 0.2 } in
  with_server ~settings
    (fun srv ->
      let cl = Client.connect (Server.address srv) in
      Fun.protect ~finally:(fun () -> Client.close cl)
        (fun () ->
          (* An active client is not disconnected... *)
          let r = Client.request cl (workload_request "RW") in
          Alcotest.(check bool) "served while active" true (List.length r >= 1);
          (* ...an idle one is. *)
          Unix.sleepf 0.8;
          Alcotest.(check (option string)) "idle client disconnected" None
            (Client.read_line cl)))
    ()

let test_unix_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "portend_serve_%d.sock" (Unix.getpid ()))
  in
  rm_rf path;
  let srv = Server.start (Server.Unix_path path) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      rm_rf path)
    (fun () ->
      let cl = Client.connect (Server.address srv) in
      Fun.protect ~finally:(fun () -> Client.close cl)
        (fun () ->
          let responses = Client.request cl (workload_request "RW") in
          Alcotest.(check (list string)) "unix-socket roundtrip"
            (expected_lines (micro "RW"))
            (served_lines responses));
      Alcotest.(check bool) "socket file exists while serving" true (Sys.file_exists path));
  Alcotest.(check bool) "socket file removed at drain" false (Sys.file_exists path)

let test_graceful_drain () =
  (* Queued work finishes and is delivered even when the drain request
     arrives before the reply is read; stop joins every domain (a leaked
     helper would hang the join and time the test out). *)
  let srv = Server.start loopback in
  let cl = Client.connect (Server.address srv) in
  Client.send_line cl (Json.to_string (workload_request "RW"));
  Client.send_line cl (Json.to_string (workload_request "DCL"));
  Server.stop srv;
  let lines = ref [] in
  let rec slurp () =
    match Client.read_line cl with
    | Some l -> (
      match Json.parse l with
      | Ok r ->
        lines := r :: !lines;
        slurp ()
      | Error e -> Alcotest.failf "bad drained line: %s" e)
    | None -> ()
  in
  slurp ();
  Client.close cl;
  let summaries = List.filter (fun r -> resp_type r = "summary") !lines in
  Alcotest.(check int) "both queued jobs answered before the drain closed" 2
    (List.length summaries);
  (* The port is free again: a fresh server can bind and serve. *)
  with_server
    (fun srv2 ->
      let cl2 = Client.connect (Server.address srv2) in
      let responses = Client.request cl2 (workload_request "RW") in
      Alcotest.(check (list string)) "fresh server after drain"
        (expected_lines (micro "RW"))
        (served_lines responses);
      Client.close cl2)
    ()

let () =
  Alcotest.run "serve"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors
        ] );
      ("inputs", [ Alcotest.test_case "validated parser" `Quick test_inputs_parser ]);
      ("protocol", [ Alcotest.test_case "request validation" `Quick test_protocol_requests ]);
      ( "server",
        [ Alcotest.test_case "roundtrip identity" `Quick (with_server test_roundtrip);
          Alcotest.test_case "extended workload lookup" `Quick
            (with_server test_extended_workload_lookup);
          Alcotest.test_case "malformed then ok" `Quick (with_server test_malformed_then_ok);
          Alcotest.test_case "truncated request" `Quick (with_server test_truncated_request);
          Alcotest.test_case "oversized request" `Quick test_oversized;
          Alcotest.test_case "concurrent clients" `Quick (with_server test_concurrent_clients);
          Alcotest.test_case "warm cache hits verdict tier" `Quick test_warm_cache;
          Alcotest.test_case "backpressure" `Quick test_backpressure;
          Alcotest.test_case "idle timeout" `Quick test_idle_timeout;
          Alcotest.test_case "unix socket" `Quick test_unix_socket;
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain
        ] )
    ]
