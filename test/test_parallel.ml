(* The parallel-classification determinism guarantee: running the pipeline
   on 1, 2, or 4 worker domains produces bit-for-bit identical verdicts for
   every workload in the evaluation suite.  Classification only reads the
   immutable program, trace, and its own fresh VM states, and the solver
   cache memoizes a pure function, so the job count must be unobservable in
   the results. *)

open Portend_core
open Portend_workloads
module D = Portend_detect

(* Everything observable about an analysis except wall-clock times. *)
let fingerprint jobs (w : Registry.workload) =
  let config = { Config.default with Config.jobs } in
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  let a = Pipeline.analyze ~config ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog in
  let race_key (r : D.Report.race) = Fmt.str "%a" D.Report.pp_race r in
  ( w.Registry.w_name,
    List.map
      (fun ra ->
        ( race_key ra.Pipeline.race,
          ra.Pipeline.instances,
          ra.Pipeline.verdict,
          ra.Pipeline.evidence ))
      a.Pipeline.races,
    List.map (fun (r, e) -> (race_key r, e)) a.Pipeline.errors,
    Pipeline.tally a )

let test_jobs_deterministic () =
  List.iter
    (fun (w : Registry.workload) ->
      let seq = fingerprint 1 w in
      List.iter
        (fun jobs ->
          let par = fingerprint jobs w in
          Alcotest.(check bool)
            (Printf.sprintf "%s: jobs=%d verdicts = jobs=1 verdicts" w.Registry.w_name jobs)
            true (par = seq))
        [ 2; 4 ])
    Suite.all

let test_analyze_many_deterministic () =
  let w = List.hd Suite.applications in
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  let merged jobs =
    let _, merged =
      Pipeline.analyze_many
        ~config:{ Config.default with Config.jobs }
        ~seeds:[ 1; 2; 3 ] ~inputs:w.Registry.w_inputs prog
    in
    List.map
      (fun ra -> (D.Report.cluster_key ra.Pipeline.race, ra.Pipeline.verdict))
      merged
  in
  Alcotest.(check bool)
    "analyze_many: jobs=4 merged races = jobs=1" true
    (merged 4 = merged 1)

let () =
  Alcotest.run "parallel"
    [ ( "determinism",
        [ Alcotest.test_case "suite verdicts independent of job count" `Quick
            test_jobs_deterministic;
          Alcotest.test_case "analyze_many independent of job count" `Quick
            test_analyze_many_deterministic
        ] )
    ]
