(* Whole-suite tests: the 11 workload models must reproduce the paper's
   Table 3 distribution and the 92/93 (99%) classification accuracy, with
   the single ocean misclassification the paper reports. *)

open Portend_core
open Portend_workloads
module D = Portend_detect

let suite_results =
  lazy
    (List.map
       (fun (w : Registry.workload) ->
         let prog = Portend_lang.Compile.compile w.Registry.w_prog in
         let a =
           Pipeline.analyze ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog
         in
         (w, a))
       Suite.all)

let categories_of (a : Pipeline.t) =
  List.map
    (fun ra ->
      ( D.Report.base_loc ra.Pipeline.race.D.Report.r_loc,
        ra.Pipeline.verdict ))
    a.Pipeline.races

let test_expected_race_counts () =
  Alcotest.(check int) "93 distinct races expected" 93 Suite.total_expected_races;
  List.iter
    (fun ((w : Registry.workload), (a : Pipeline.t)) ->
      Alcotest.(check string)
        (w.Registry.w_name ^ " recording halts")
        "halted"
        (Portend_vm.Run.stop_to_string a.Pipeline.record.Portend_vm.Run.stop);
      Alcotest.(check int)
        (w.Registry.w_name ^ " distinct races")
        (Registry.total_expected w)
        (List.length a.Pipeline.races);
      Alcotest.(check int) (w.Registry.w_name ^ " replay errors") 0
        (List.length a.Pipeline.errors))
    (Lazy.force suite_results)

let test_verdicts_match_expected () =
  (* every race classifies as the registry says Portend should *)
  List.iter
    (fun ((w : Registry.workload), a) ->
      let vs = categories_of a in
      List.iter
        (fun (x : Registry.expectation) ->
          let got = List.filter (fun (loc, _) -> loc = x.Registry.x_loc) vs in
          let good =
            List.length
              (List.filter
                 (fun (_, v) -> v.Taxonomy.category = x.Registry.x_portend)
                 got)
          in
          if good < x.Registry.x_count then
            Alcotest.failf "%s %s: expected %d x %s, got [%s]" w.Registry.w_name
              x.Registry.x_loc x.Registry.x_count
              (Taxonomy.category_to_string x.Registry.x_portend)
              (String.concat ";"
                 (List.map
                    (fun (_, v) -> Taxonomy.category_to_string v.Taxonomy.category)
                    got)))
        w.Registry.w_expect)
    (Lazy.force suite_results)

let test_accuracy_99_percent () =
  (* against manual ground truth: exactly one miss (the ocean race) *)
  let correct, total =
    List.fold_left
      (fun (c, t) ((w : Registry.workload), a) ->
        let vs = categories_of a in
        List.fold_left
          (fun (c, t) (x : Registry.expectation) ->
            let got = List.filter (fun (loc, _) -> loc = x.Registry.x_loc) vs in
            let good =
              List.length
                (List.filter (fun (_, v) -> v.Taxonomy.category = x.Registry.x_truth) got)
            in
            (c + min good x.Registry.x_count, t + x.Registry.x_count))
          (c, t) w.Registry.w_expect)
      (0, 0) (Lazy.force suite_results)
  in
  Alcotest.(check int) "total" 93 total;
  Alcotest.(check int) "92 of 93 correct" 92 correct

let test_table3_distribution () =
  let count cat =
    List.fold_left
      (fun acc (_, (a : Pipeline.t)) ->
        acc
        + List.length
            (List.filter
               (fun ra -> ra.Pipeline.verdict.Taxonomy.category = cat)
               a.Pipeline.races))
      0 (Lazy.force suite_results)
  in
  Alcotest.(check int) "specViol" 5 (count Taxonomy.Spec_violated);
  Alcotest.(check int) "outDiff" 21 (count Taxonomy.Output_differs);
  Alcotest.(check int) "k-witness" 10 (count Taxonomy.K_witness_harmless);
  Alcotest.(check int) "singleOrd" 57 (count Taxonomy.Single_ordering)

let test_states_differ_columns () =
  (* Table 3's k-witness split: 4 states-same (micros), 6 states-differ *)
  let same, differ =
    List.fold_left
      (fun (s, d) (_, (a : Pipeline.t)) ->
        List.fold_left
          (fun (s, d) ra ->
            if ra.Pipeline.verdict.Taxonomy.category = Taxonomy.K_witness_harmless then
              if ra.Pipeline.verdict.Taxonomy.states_differ then (s, d + 1) else (s + 1, d)
            else (s, d))
          (s, d) a.Pipeline.races)
      (0, 0) (Lazy.force suite_results)
  in
  Alcotest.(check (pair int int)) "k-witness states (same, differ)" (4, 6) (same, differ)

let test_harmful_races_have_evidence () =
  List.iter
    (fun (_, (a : Pipeline.t)) ->
      List.iter
        (fun ra ->
          if ra.Pipeline.verdict.Taxonomy.category = Taxonomy.Spec_violated then begin
            Alcotest.(check bool) "specViol has evidence" true (ra.Pipeline.evidence <> None);
            match ra.Pipeline.evidence with
            | Some e ->
              let s = Evidence.render e in
              Alcotest.(check bool) "report mentions the race" true
                (Astring.String.is_infix ~affix:"Data race during access to" s)
            | None -> ()
          end)
        a.Pipeline.races)
    (Lazy.force suite_results)

let test_fmm_semantic_variant () =
  let w = Option.get (Suite.find "fmm") in
  let p = Option.get w.Registry.w_semantic_variant in
  let prog = Portend_lang.Compile.compile p in
  let a = Pipeline.analyze ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog in
  let ts =
    List.find
      (fun ra -> D.Report.base_loc ra.Pipeline.race.D.Report.r_loc = "g:timestamp")
      a.Pipeline.races
  in
  Alcotest.(check string) "semantic violation" "specViol"
    (Taxonomy.category_to_string ts.Pipeline.verdict.Taxonomy.category);
  Alcotest.(check bool) "consequence semantic" true
    (ts.Pipeline.verdict.Taxonomy.consequence = Some Portend_vm.Crash.Csemantic)

let test_memcached_whatif () =
  let w = Option.get (Suite.find "memcached") in
  let p = Option.get w.Registry.w_whatif_variant in
  let prog = Portend_lang.Compile.compile p in
  let a = Pipeline.analyze ~seed:1 prog in
  Alcotest.(check bool) "what-if race becomes a crash" true
    (List.exists
       (fun ra -> ra.Pipeline.verdict.Taxonomy.consequence = Some Portend_vm.Crash.Ccrash)
       a.Pipeline.races);
  (* with the lock in place there is no race at all *)
  let synced = Portend_lang.Compile.compile (Memcached_model.whatif_program ~synced:true) in
  let a2 = Pipeline.analyze ~seed:1 synced in
  Alcotest.(check int) "synced variant has no race" 0 (List.length a2.Pipeline.races)


(* --- synchronization-heavy additions (condvar / semaphore handoffs) --- *)

let test_sync_workloads () =
  List.iter
    (fun (w : Registry.workload) ->
      let prog = Portend_lang.Compile.compile w.Registry.w_prog in
      let a = Pipeline.analyze ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog in
      Alcotest.(check string)
        (w.Registry.w_name ^ " recording halts")
        "halted"
        (Portend_vm.Run.stop_to_string a.Pipeline.record.Portend_vm.Run.stop);
      Alcotest.(check int)
        (w.Registry.w_name ^ " distinct races")
        (Registry.total_expected w)
        (List.length a.Pipeline.races);
      let vs = categories_of a in
      List.iter
        (fun (x : Registry.expectation) ->
          let got = List.filter (fun (loc, _) -> loc = x.Registry.x_loc) vs in
          let good =
            List.length
              (List.filter (fun (_, v) -> v.Taxonomy.category = x.Registry.x_portend) got)
          in
          if good < x.Registry.x_count then
            Alcotest.failf "%s %s: expected %d x %s, got [%s]" w.Registry.w_name
              x.Registry.x_loc x.Registry.x_count
              (Taxonomy.category_to_string x.Registry.x_portend)
              (String.concat ";"
                 (List.map
                    (fun (_, v) -> Taxonomy.category_to_string v.Taxonomy.category)
                    got)))
        w.Registry.w_expect)
    Suite.sync_benchmarks

(* --- litmus regressions (promoted from the differential campaign) --- *)

let test_litmus_regressions () =
  Alcotest.(check bool) "regression list is non-empty" true (Suite.litmus_regressions <> []);
  List.iter
    (fun (w : Registry.workload) ->
      Alcotest.(check bool)
        (w.Registry.w_name ^ " has a campaign name")
        true
        (String.length w.Registry.w_name > 4 && String.sub w.Registry.w_name 0 4 = "lit_");
      let prog = Portend_lang.Compile.compile w.Registry.w_prog in
      let a = Pipeline.analyze ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog in
      Alcotest.(check string)
        (w.Registry.w_name ^ " recording halts")
        "halted"
        (Portend_vm.Run.stop_to_string a.Pipeline.record.Portend_vm.Run.stop);
      Alcotest.(check int)
        (w.Registry.w_name ^ " distinct races")
        (Registry.total_expected w)
        (List.length a.Pipeline.races);
      let vs = categories_of a in
      List.iter
        (fun (x : Registry.expectation) ->
          let got = List.filter (fun (loc, _) -> loc = x.Registry.x_loc) vs in
          (match got with
          | [] ->
            Alcotest.failf "%s: no race at %s" w.Registry.w_name x.Registry.x_loc
          | _ -> ());
          List.iter
            (fun (_, v) ->
              Alcotest.(check string)
                (w.Registry.w_name ^ " " ^ x.Registry.x_loc ^ " verdict")
                (Taxonomy.category_to_string x.Registry.x_portend)
                (Taxonomy.category_to_string v.Taxonomy.category);
              Alcotest.(check bool)
                (w.Registry.w_name ^ " " ^ x.Registry.x_loc ^ " states-differ bit")
                x.Registry.x_states_differ v.Taxonomy.states_differ)
            got)
        w.Registry.w_expect)
    Suite.litmus_regressions

(* --- extended-suite reachability: every consumer resolves the additions
   (the bench harness iterates the [Suite] lists, the serve daemon and the
   `suite --extended` CLI go through [Suite.find]) --- *)

let test_extended_reachability () =
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " in Suite.extended")
        true
        (List.exists (fun (w : Registry.workload) -> w.Registry.w_name = name) Suite.extended);
      match Suite.find name with
      | None -> Alcotest.failf "Suite.find %S returned None" name
      | Some w -> Alcotest.(check string) (name ^ " find name") name w.Registry.w_name)
    [ "CondPC"; "SemPC" ];
  (* the paper suite stays exactly the paper suite *)
  List.iter
    (fun (w : Registry.workload) ->
      Alcotest.(check bool)
        (w.Registry.w_name ^ " not in Suite.all")
        false
        (List.exists (fun (v : Registry.workload) -> v.Registry.w_name = w.Registry.w_name)
           Suite.all))
    (Suite.sync_benchmarks @ Suite.litmus_regressions);
  (* promoted litmus workloads resolve by name too (serve looks them up) *)
  List.iter
    (fun (w : Registry.workload) ->
      match Suite.find w.Registry.w_name with
      | None -> Alcotest.failf "Suite.find %S returned None" w.Registry.w_name
      | Some found ->
        Alcotest.(check string) "find returns the workload" w.Registry.w_name
          found.Registry.w_name)
    Suite.litmus_regressions

(* --- race-free programs (§5: HawkNL, pfscan, swarm, fft) --- *)

let test_race_free_programs () =
  List.iter
    (fun (name, ast) ->
      let prog = Portend_lang.Compile.compile ast in
      List.iter
        (fun seed ->
          let a = Pipeline.analyze ~seed prog in
          Alcotest.(check string)
            (Printf.sprintf "%s seed %d halts" name seed)
            "halted"
            (Portend_vm.Run.stop_to_string a.Pipeline.record.Portend_vm.Run.stop);
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d race-free" name seed)
            0
            (List.length a.Pipeline.races))
        [ 1; 2; 3; 4; 5 ])
    Race_free.all

(* --- weak memory (§6 / adversarial memory) --- *)

let test_weak_memory_dcl () =
  (* DCL with a fast-path use: safe under SC, broken under adversarial
     memory (the example program, asserted here) *)
  let open Portend_lang.Builder in
  let dcl_use =
    program "dcl_use" ~globals:[ ("init_done", 0); ("singleton", 0) ] ~mutexes:[ "m" ]
      [ func "get_instance" []
          [ var "fast" (g "init_done");
            if_ (l "fast" == i 0)
              [ lock "m";
                var "slow" (g "init_done");
                if_ (l "slow" == i 0) [ setg "singleton" (i 7); setg "init_done" (i 1) ] [];
                unlock "m"
              ]
              [ var "obj" (g "singleton"); assert_ (l "obj" != i 0) "non-null" ]
          ];
        func "main" []
          [ spawn ~into:"t1" "get_instance" [];
            spawn ~into:"t2" "get_instance" [];
            join (l "t1");
            join (l "t2")
          ]
      ]
  in
  let prog = Portend_lang.Compile.compile dcl_use in
  let sc = Weakmem.explore ~depth:0 prog in
  Alcotest.(check int) "SC: no violations" 0 (List.length sc.Weakmem.crashes);
  Alcotest.(check bool) "SC explored many executions" true Stdlib.(sc.Weakmem.executions > 100);
  let weak_only = Weakmem.weak_only_crashes prog in
  Alcotest.(check bool) "weak memory breaks DCL" true Stdlib.(weak_only <> [])

let test_weak_memory_rw_safe () =
  (* redundant same-value writes stay safe even under adversarial memory *)
  let w = Option.get (Suite.find "RW") in
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  Alcotest.(check (list string)) "RW safe under weak memory" []
    (List.map Portend_vm.Crash.to_string (Weakmem.weak_only_crashes prog))

(* --- multi-recording detection --- *)

let test_analyze_many_dedups () =
  let w = Option.get (Suite.find "bbuf") in
  let prog = Portend_lang.Compile.compile w.Registry.w_prog in
  let analyses, merged =
    Pipeline.analyze_many ~seeds:[ 1; 2; 3 ] ~inputs:w.Registry.w_inputs prog
  in
  Alcotest.(check int) "three recordings" 3 (List.length analyses);
  (* every recording finds the same 6 distinct races; the merge keeps 6 *)
  Alcotest.(check int) "merged distinct races" 6 (List.length merged)

let () =
  Alcotest.run "workloads"
    [ ( "suite",
        [ Alcotest.test_case "race counts" `Slow test_expected_race_counts;
          Alcotest.test_case "verdicts as expected" `Slow test_verdicts_match_expected;
          Alcotest.test_case "99% accuracy (92/93)" `Slow test_accuracy_99_percent;
          Alcotest.test_case "Table 3 distribution" `Slow test_table3_distribution;
          Alcotest.test_case "states same/differ columns" `Slow test_states_differ_columns;
          Alcotest.test_case "harmful races carry evidence" `Slow test_harmful_races_have_evidence
        ] );
      ( "variants",
        [ Alcotest.test_case "fmm semantic predicate" `Slow test_fmm_semantic_variant;
          Alcotest.test_case "memcached what-if" `Slow test_memcached_whatif
        ] );
      ( "sync",
        [ Alcotest.test_case "condvar/semaphore handoffs" `Slow test_sync_workloads ] );
      ( "litmus",
        [ Alcotest.test_case "promoted regressions" `Slow test_litmus_regressions;
          Alcotest.test_case "extended-suite reachability" `Quick test_extended_reachability
        ] );
      ( "race-free",
        [ Alcotest.test_case "hawknl/pfscan/swarm/fft" `Slow test_race_free_programs ] );
      ( "weak-memory",
        [ Alcotest.test_case "DCL breaks" `Slow test_weak_memory_dcl;
          Alcotest.test_case "RW stays safe" `Slow test_weak_memory_rw_safe
        ] );
      ( "multi-recording",
        [ Alcotest.test_case "dedup across seeds" `Slow test_analyze_many_dedups ] )
    ]
