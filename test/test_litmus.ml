(* The litmus enumeration + differential harness itself under test:
   canonicalization is a true symmetry quotient (permutation/renaming
   invariant, idempotent, duplicate-preserving), enumeration is
   deterministic with pinned counts for small spaces, the shrinker only
   moves downward and reaches fixpoints, and a corpus slice pushed
   through the mode matrix produces zero disagreements.  The printer ↔
   parser round trip is asserted structurally over the whole enumerated
   corpus (every shape is emitted and re-read through the real
   frontend). *)

module L = Portend_litmus
open L.Shape

let shape threads n_vars = { threads; n_vars }

(* --- canonicalization --- *)

let test_canon_thread_symmetry () =
  let t = shape [ [ Incr 0 ]; [ Write 1; Read 0 ] ] 2 in
  let t' = shape [ [ Write 1; Read 0 ]; [ Incr 0 ] ] 2 in
  Alcotest.(check string) "permuted threads share a name" (L.Canon.name t) (L.Canon.name t');
  let _, e = L.Canon.canonical t and _, e' = L.Canon.canonical t' in
  Alcotest.(check string) "and an encoding" e e'

let test_canon_variable_symmetry () =
  let t = shape [ [ Write 0 ]; [ Read 0 ] ] 2 in
  let t' = shape [ [ Write 1 ]; [ Read 1 ] ] 2 in
  Alcotest.(check string) "renamed variables share a name" (L.Canon.name t) (L.Canon.name t')

let test_canon_idempotent () =
  let t = shape [ [ LockedIncr 1; SemPost ]; [ SemWait; Read 1 ]; [ Incr 0 ] ] 2 in
  let c, e = L.Canon.canonical t in
  let c', e' = L.Canon.canonical c in
  Alcotest.(check string) "encoding is a fixpoint" e e';
  Alcotest.(check bool) "shape is a fixpoint" true (c = c')

let test_canon_keeps_duplicate_threads () =
  (* regression: duplicate thread bodies are shared constants; removal by
     (physical) equality collapsed them to a single thread *)
  let c, _ = L.Canon.canonical (shape [ [ Incr 0 ]; [ Incr 0 ] ] 1) in
  Alcotest.(check int) "two identical threads survive" 2 (n_threads c);
  Alcotest.(check int) "both ops survive" 2 (size c)

let test_canon_distinguishes () =
  let a = shape [ [ Write 0 ]; [ Read 0 ] ] 1 in
  let b = shape [ [ Write 0 ]; [ Write 0 ] ] 1 in
  Alcotest.(check bool) "write|read differs from write|write" true
    (L.Canon.name a <> L.Canon.name b)

let test_dedup_table () =
  let tbl = L.Canon.create_table () in
  let t = shape [ [ Incr 0 ]; [ Read 0 ] ] 1 in
  let permuted = shape [ [ Read 0 ] ; [ Incr 0 ] ] 1 in
  Alcotest.(check bool) "first add is new" true (L.Canon.add tbl t <> None);
  Alcotest.(check bool) "permutation is a duplicate" true (L.Canon.add tbl permuted = None);
  Alcotest.(check int) "one distinct" 1 (L.Canon.distinct tbl);
  Alcotest.(check int) "two raw" 2 (L.Canon.total tbl)

(* --- enumeration --- *)

let tiny =
  { L.Enum.max_threads = 2; max_ops = 1; n_vars = 1; max_total = 2; include_stuck = false }

let test_enum_tiny_space () =
  (* 2 threads x 1 op each: unordered pairs with repetition over the 6
     variable ops on one variable (21), plus sem_post paired with anything
     or with sem_wait (8), plus the matched barrier pair (1); lone
     sem_wait and unmatched barriers are inadmissible *)
  let shapes, tbl, exhausted = L.Enum.run tiny ~budget:10_000 in
  Alcotest.(check bool) "space exhausted" true exhausted;
  Alcotest.(check int) "30 canonical programs" 30 (List.length shapes);
  Alcotest.(check int) "table agrees" 30 (L.Canon.distinct tbl)

let test_enum_deterministic () =
  let l = { L.Enum.default_limits with L.Enum.max_total = 4 } in
  let a, _, _ = L.Enum.run l ~budget:200 in
  let b, _, _ = L.Enum.run l ~budget:200 in
  Alcotest.(check (list string)) "same corpus in the same order"
    (List.map L.Canon.name a) (List.map L.Canon.name b)

let test_enum_budget () =
  let shapes, _, exhausted = L.Enum.run L.Enum.default_limits ~budget:37 in
  Alcotest.(check int) "budget respected" 37 (List.length shapes);
  Alcotest.(check bool) "not exhausted" false exhausted

let test_enum_admissibility () =
  (* no enumerated shape may be guaranteed-stuck unless asked for *)
  let shapes, _, _ = L.Enum.run L.Enum.default_limits ~budget:300 in
  Alcotest.(check bool) "all admissible" true (List.for_all admissible shapes);
  let with_stuck =
    { L.Enum.default_limits with L.Enum.include_stuck = true; max_total = 3 }
  in
  let relaxed, _, _ = L.Enum.run with_stuck ~budget:10_000 in
  Alcotest.(check bool) "include_stuck reaches more shapes" true
    (List.exists (fun t -> not (admissible t)) relaxed)

(* --- printer/parser round trip over the whole corpus (satellite) --- *)

let test_roundtrip_corpus () =
  let shapes, _, _ =
    L.Enum.run { L.Enum.default_limits with L.Enum.max_total = 4 } ~budget:500
  in
  Alcotest.(check bool) "corpus is non-trivial" true (List.length shapes > 100);
  List.iter
    (fun t ->
      let ast = to_program ~name:(L.Canon.name t) t in
      let src = Portend_lang.Pp.program_to_string ast in
      let reparsed =
        try Portend_lang.Parser.parse_program src
        with e -> Alcotest.failf "parse failed (%s) on:\n%s" (Printexc.to_string e) src
      in
      if reparsed <> ast then Alcotest.failf "round trip not structural on:\n%s" src)
    shapes

(* --- shrinker --- *)

let test_shrink_candidates_smaller () =
  let t = shape [ [ LockedIncr 0; SemPost ]; [ SemWait; AtomicIncr 1 ]; [ Write 0 ] ] 2 in
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate not larger" true (size c <= size t);
      Alcotest.(check bool) "candidate differs" true (c <> t))
    (L.Shrink.candidates t)

let test_shrink_minimizes () =
  (* predicate: at least two increments of v0 somewhere; minimum is the
     two-thread two-op lost-update shape *)
  let incrs t =
    List.fold_left
      (List.fold_left (fun acc op -> match op with Incr 0 -> acc + 1 | _ -> acc))
      0 t.threads
  in
  let keep t = incrs t >= 2 in
  let big =
    shape [ [ Incr 0; Write 1; Incr 0 ]; [ LockedWrite 1; Incr 0 ]; [ Read 1; SemPost ] ] 2
  in
  let small = L.Shrink.shrink ~keep big in
  Alcotest.(check bool) "result still satisfies keep" true (keep small);
  Alcotest.(check int) "shrunk to two ops" 2 (size small);
  Alcotest.(check int) "on one variable" 1
    (List.length
       (List.sort_uniq compare (List.concat_map (List.filter_map op_var) small.threads)))

let test_shrink_fixpoint () =
  let incrs t =
    List.fold_left
      (List.fold_left (fun acc op -> match op with Incr _ -> acc + 1 | _ -> acc))
      0 t.threads
  in
  let t = shape [ [ Incr 0 ]; [ Incr 0 ] ] 1 in
  let s = L.Shrink.shrink ~keep:(fun c -> incrs c >= 2) t in
  Alcotest.(check bool) "already-minimal shape is stable" true
    (L.Canon.name s = L.Canon.name t)

(* --- the differential matrix on a corpus slice --- *)

let test_differ_no_disagreements () =
  let shapes, _, _ = L.Enum.run L.Enum.default_limits ~budget:40 in
  let opts = { L.Differ.default_opts with L.Differ.check_baselines = true } in
  List.iter
    (fun t ->
      let ast = to_program ~name:(L.Canon.name t) t in
      let src = Portend_lang.Pp.program_to_string ast in
      let prog = Portend_lang.Compile.compile ast in
      let o = L.Differ.run ~opts ~src prog in
      match o.L.Differ.o_disagreements with
      | [] -> ()
      | d :: _ ->
        Alcotest.failf "%s: mode %s disagreed\nexpected:\n%s\ngot:\n%s" (L.Canon.name t)
          d.L.Differ.d_mode d.L.Differ.d_expected d.L.Differ.d_got)
    shapes

let test_differ_flags_seeded_difference () =
  (* sanity that the oracle can fail: different seeds are different
     recordings, so comparing their fingerprints must disagree for some
     racy program *)
  let ast =
    to_program (shape [ [ Write 0 ]; [ Read 0 ] ] 1)
  in
  let prog = Portend_lang.Compile.compile ast in
  let open Portend_core in
  let a1 = Pipeline.analyze ~config:L.Differ.base_config ~seed:1 prog in
  let a2 = Pipeline.analyze ~config:L.Differ.base_config ~seed:5 prog in
  Alcotest.(check bool) "fingerprint is sensitive to the recording" true
    (L.Differ.fingerprint a1 = L.Differ.fingerprint a1
    && (L.Differ.fingerprint a1 <> L.Differ.fingerprint a2
       || a1.Pipeline.races <> []))

(* --- campaign regressions stay in sync with the workload registry --- *)

let test_promoted_names_match_sources () =
  (* every promoted workload's name is the canonical name of the program
     its source parses to (pin the name <-> content binding) *)
  List.iter
    (fun (w : Portend_workloads.Registry.workload) ->
      let prog = Portend_lang.Compile.compile w.Portend_workloads.Registry.w_prog in
      let a =
        Portend_core.Pipeline.analyze ~config:L.Differ.base_config
          ~seed:w.Portend_workloads.Registry.w_seed prog
      in
      Alcotest.(check string)
        (w.Portend_workloads.Registry.w_name ^ " halts")
        "halted"
        (Portend_vm.Run.stop_to_string a.Portend_core.Pipeline.record.Portend_vm.Run.stop))
    Portend_workloads.Suite.litmus_regressions

let () =
  Alcotest.run "litmus"
    [ ( "canon",
        [ Alcotest.test_case "thread symmetry" `Quick test_canon_thread_symmetry;
          Alcotest.test_case "variable symmetry" `Quick test_canon_variable_symmetry;
          Alcotest.test_case "idempotent" `Quick test_canon_idempotent;
          Alcotest.test_case "duplicate threads survive" `Quick test_canon_keeps_duplicate_threads;
          Alcotest.test_case "distinct shapes stay distinct" `Quick test_canon_distinguishes;
          Alcotest.test_case "dedup table" `Quick test_dedup_table
        ] );
      ( "enum",
        [ Alcotest.test_case "tiny space pinned" `Quick test_enum_tiny_space;
          Alcotest.test_case "deterministic" `Quick test_enum_deterministic;
          Alcotest.test_case "budget respected" `Quick test_enum_budget;
          Alcotest.test_case "admissibility filter" `Quick test_enum_admissibility
        ] );
      ( "round-trip",
        [ Alcotest.test_case "corpus prints and reparses" `Quick test_roundtrip_corpus ] );
      ( "shrink",
        [ Alcotest.test_case "candidates smaller" `Quick test_shrink_candidates_smaller;
          Alcotest.test_case "minimizes to the core" `Quick test_shrink_minimizes;
          Alcotest.test_case "fixpoint" `Quick test_shrink_fixpoint
        ] );
      ( "differ",
        [ Alcotest.test_case "corpus slice: no disagreements" `Slow test_differ_no_disagreements;
          Alcotest.test_case "oracle sensitivity" `Quick test_differ_flags_seeded_difference
        ] );
      ( "promoted",
        [ Alcotest.test_case "regressions analyze cleanly" `Quick test_promoted_names_match_sources ] )
    ]
