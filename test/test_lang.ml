(* Tests for the Racelang frontend: compiler, static analysis, lexer,
   parser, and pretty-printer round-trips. *)

open Portend_lang
open Portend_vm

let run_to_outputs prog =
  let r = Run.run ~sched:Sched.round_robin (State.init prog) in
  (r.Run.stop, State.outputs r.Run.final)

let first_int outputs =
  match outputs with
  | { State.payload = State.Vals [ Value.Con n ]; _ } :: _ -> n
  | _ -> Alcotest.fail "expected an integer output"

(* --- compiler --- *)

let test_compile_errors () =
  let open Builder in
  let expect_error name p =
    match Compile.compile p with
    | _ -> Alcotest.failf "%s: expected compile error" name
    | exception Compile.Error _ -> ()
  in
  expect_error "no main" (program "p" [ func "f" [] [] ]);
  expect_error "main with params" (program "p" [ func "main" [ "x" ] [] ]);
  expect_error "undeclared global" (program "p" [ func "main" [] [ setg "x" (i 1) ] ]);
  expect_error "undeclared local" (program "p" [ func "main" [] [ set "x" (i 1) ] ]);
  expect_error "unknown function" (program "p" [ func "main" [] [ call "nope" [] ] ]);
  expect_error "arity mismatch"
    (program "p" [ func "f" [ "a" ] []; func "main" [] [ call "f" [] ] ]);
  expect_error "redeclared local"
    (program "p" [ func "main" [] [ var "x" (i 1); var "x" (i 2) ] ]);
  expect_error "duplicate global"
    (program "p" ~globals:[ ("g", 0); ("g", 1) ] [ func "main" [] [] ]);
  expect_error "bad array length"
    (program "p" ~arrays:[ ("a", 0, 0) ] [ func "main" [] [] ]);
  expect_error "undeclared mutex" (program "p" [ func "main" [] [ lock "m" ] ])

let test_shared_access_isolation () =
  (* every shared access must be its own instruction *)
  let open Builder in
  let p =
    Compile.compile
      (program "p" ~globals:[ ("a", 1); ("b", 2) ]
         [ func "main" [] [ var "x" ((g "a" + g "b") * g "a"); output [ l "x" ] ] ])
  in
  let f = Option.get (Bytecode.find_func p "main") in
  let shared =
    Array.to_list f.Bytecode.code |> List.filter Bytecode.shared_access |> List.length
  in
  Alcotest.(check int) "three loads" 3 shared;
  let _, outputs = run_to_outputs p in
  Alcotest.(check int) "value" 3 (first_int outputs)

(* --- static analysis --- *)

let test_write_sets () =
  let open Builder in
  let p =
    Compile.compile
      (program "p" ~globals:[ ("x", 0); ("y", 0) ] ~arrays:[ ("a", 4, 0) ]
         [ func "leaf" [] [ setg "y" (i 1) ];
           func "mid" [] [ seta "a" (i 0) (i 1); call "leaf" [] ];
           func "main" [] [ setg "x" (i 1); call "mid" [] ]
         ])
  in
  let st = Static.analyze p in
  Alcotest.(check bool) "main writes x" true (Static.may_write st "main" (Static.Cglobal "x"));
  Alcotest.(check bool) "main writes y transitively" true
    (Static.may_write st "main" (Static.Cglobal "y"));
  Alcotest.(check bool) "main writes array a" true
    (Static.may_write st "main" (Static.Carray "a"));
  Alcotest.(check bool) "leaf does not write x" false
    (Static.may_write st "leaf" (Static.Cglobal "x"))

let test_write_sets_recursion () =
  (* the call-graph fixpoint must converge on recursive and mutually
     recursive call graphs without losing writes *)
  let open Builder in
  let p =
    Compile.compile
      (program "p" ~globals:[ ("x", 0); ("y", 0) ]
         [ func "self" [ "n" ]
             [ if_ (l "n" > i 0) [ setg "x" (l "n"); call "self" [ l "n" - i 1 ] ] [] ];
           func "even" [ "n" ] [ if_ (l "n" > i 0) [ call "odd" [ l "n" - i 1 ] ] [] ];
           func "odd" [ "n" ]
             [ setg "y" (i 1); if_ (l "n" > i 0) [ call "even" [ l "n" - i 1 ] ] [] ];
           func "main" [] [ call "self" [ i 3 ]; call "even" [ i 4 ] ]
         ])
  in
  let st = Static.analyze p in
  Alcotest.(check bool) "self writes x" true (Static.may_write st "self" (Static.Cglobal "x"));
  Alcotest.(check bool) "even writes y through odd" true
    (Static.may_write st "even" (Static.Cglobal "y"));
  Alcotest.(check bool) "odd writes y through even's cycle" true
    (Static.may_write st "odd" (Static.Cglobal "y"));
  Alcotest.(check bool) "even never writes x" false
    (Static.may_write st "even" (Static.Cglobal "x"));
  Alcotest.(check bool) "main sees x" true (Static.may_write st "main" (Static.Cglobal "x"));
  Alcotest.(check bool) "main sees y" true (Static.may_write st "main" (Static.Cglobal "y"))

let test_spin_detection_ibr () =
  (* A bottom-tested polling loop whose backward edge is the conditional
     branch itself — the shape the compiler never emits (it uses IJmp) but
     hand-written or optimized bytecode does.  The recognizer must treat
     conditional backward edges like unconditional ones. *)
  let f =
    { Bytecode.fname = "spinner";
      nparams = 0;
      nregs = 1;
      code = [| Bytecode.ILoadG (0, "flag"); Bytecode.IBr (Bytecode.Reg 0, 2, 0); Bytecode.IRet None |];
      reg_names = [| "r0" |]
    }
  in
  Alcotest.(check (list (pair int int))) "conditional backward edge" [ (1, 0) ]
    (Static.backward_edges f);
  Alcotest.(check (list (pair int int))) "spin loop span" [ (0, 1) ] (Static.spin_loops f);
  let prog =
    { Bytecode.pname = "p";
      funcs = Portend_util.Maps.Smap.of_list [ ("spinner", f) ];
      globals = [ ("flag", 0) ];
      arrays = [];
      barriers = [];
      sems = [];
      source = Builder.program "p" ~globals:[ ("flag", 0) ] [ Builder.func "main" [] [] ]
    }
  in
  Alcotest.(check (list (pair string int))) "spin read at the load" [ ("spinner", 0) ]
    (Static.spin_read_sites prog)

let test_spin_detection () =
  let open Builder in
  let p =
    Compile.compile
      (program "p" ~globals:[ ("flag", 0); ("data", 0) ]
         [ func "spinner" []
             [ while_ (g "flag" == i 0) [ yield ];
               (* a computation loop also reads shared state but writes a
                  local accumulator over many instructions: not a spin *)
               var "acc" (i 0);
               var "j" (i 0);
               while_ (l "j" < i 4)
                 [ set "acc" (l "acc" + g "data" + g "data" + g "data");
                   set "j" (l "j" + i 1)
                 ];
               output [ l "acc" ]
             ];
           func "main" [] [ setg "flag" (i 1); call "spinner" [] ]
         ])
  in
  let sites = Static.spin_read_sites p in
  Alcotest.(check bool) "found a spin read" true Stdlib.(List.length sites >= 1);
  List.iter (fun (f, _) -> Alcotest.(check string) "in spinner" "spinner" f) sites;
  (* the flag load is a spin site, the data loads are not *)
  let f = Option.get (Bytecode.find_func p "spinner") in
  List.iter
    (fun (_, pc) ->
      match f.Bytecode.code.(pc) with
      | Bytecode.ILoadG (_, v) -> Alcotest.(check string) "flag only" "flag" v
      | _ -> Alcotest.fail "spin site is not a load")
    sites

(* --- lexer --- *)

let test_lexer () =
  let toks = Lexer.tokenize "fn f() { x = 1 + 2; } // comment\nvar s = \"hi\\n\";" in
  let kinds = List.map (fun t -> Lexer.token_to_string t.Lexer.tok) toks in
  Alcotest.(check (list string)) "tokens"
    [ "fn"; "f"; "("; ")"; "{"; "x"; "="; "1"; "+"; "2"; ";"; "}"; "var"; "s"; "=";
      "\"hi\\n\""; ";"; "<eof>"
    ]
    kinds;
  Alcotest.check_raises "bad char" (Lexer.Error "line 1: unexpected character '#'") (fun () ->
      ignore (Lexer.tokenize "#"))

(* --- parser --- *)

let sample_source =
  {|
program sample

global count = 0
global done_flag = 0
array buf[8] = 0
mutex m
cond cv
barrier bar = 2
sem s = 1

fn worker(n) {
  var j = 0;
  while (j < n) {
    lock m;
    count = count + 1;
    unlock m;
    j = j + 1;
  }
  sem_wait s;
  atomic {
    buf[0] = count;
  }
  sem_post s;
  done_flag = 1;
}

fn main() {
  var t = spawn worker(3);
  join t;
  if (count >= 3 && done_flag == 1) {
    output count, buf[0];
  } else {
    print "too small";
  }
  assert count <= 3 : "bounded";
  yield;
}
|}

let test_parser_end_to_end () =
  let prog = Parser.compile_string sample_source in
  let stop, outputs = run_to_outputs prog in
  Alcotest.(check string) "halted" "halted" (Run.stop_to_string stop);
  match outputs with
  | [ { State.payload = State.Vals [ Value.Con a; Value.Con b ]; _ } ] ->
    Alcotest.(check (pair int int)) "count and buf" (3, 3) (a, b)
  | _ -> Alcotest.fail "unexpected outputs"

let test_parser_errors () =
  let expect_err src =
    match Parser.parse_program src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
  in
  expect_err "fn main() {}";
  expect_err "program p fn main( {}";
  expect_err "program p fn main() { x = ; }";
  expect_err "program p fn main() { if x { } }";
  expect_err "program p fn main() { assert 1 \"no colon\"; }"

let test_pp_roundtrip () =
  (* builder program -> pretty-print -> parse -> identical behaviour *)
  let p = Parser.parse_program sample_source in
  let printed = Pp.program_to_string p in
  let p2 = Parser.parse_program printed in
  let r1 = run_to_outputs (Compile.compile p) in
  let r2 = run_to_outputs (Compile.compile p2) in
  Alcotest.(check bool) "same behaviour after round-trip" true (r1 = r2)

let test_pp_roundtrip_workloads () =
  (* all workload models survive print -> parse -> compile *)
  List.iter
    (fun (w : Portend_workloads.Registry.workload) ->
      let printed = Pp.program_to_string w.Portend_workloads.Registry.w_prog in
      match Parser.compile_string printed with
      | _ -> ()
      | exception e ->
        Alcotest.failf "%s failed round-trip: %s" w.Portend_workloads.Registry.w_name
          (Printexc.to_string e))
    Portend_workloads.Suite.extended

let () =
  Alcotest.run "lang"
    [ ( "compile",
        [ Alcotest.test_case "error detection" `Quick test_compile_errors;
          Alcotest.test_case "shared access isolation" `Quick test_shared_access_isolation
        ] );
      ( "static",
        [ Alcotest.test_case "write sets" `Quick test_write_sets;
          Alcotest.test_case "write sets on recursion" `Quick test_write_sets_recursion;
          Alcotest.test_case "spin detection" `Quick test_spin_detection;
          Alcotest.test_case "spin detection via IBr back edge" `Quick test_spin_detection_ibr
        ] );
      ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer ]);
      ( "parser",
        [ Alcotest.test_case "end to end" `Quick test_parser_end_to_end;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "pp round-trip" `Quick test_pp_roundtrip;
          Alcotest.test_case "workloads round-trip" `Quick test_pp_roundtrip_workloads
        ] )
    ]
