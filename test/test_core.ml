(* Integration tests of the Portend classifier: one hand-built program per
   taxonomy category, plus pipeline, clustering, and false-positive tests. *)

open Portend_lang
open Portend_vm
open Portend_core
module D = Portend_detect

let compile = Compile.compile

let analyze ?config ?(seed = 1) ?(inputs = []) p =
  Pipeline.analyze ?config ~seed ~inputs (compile p)

let categories (a : Pipeline.t) =
  List.map
    (fun ra ->
      ( Fmt.str "%a" Events.pp_loc ra.Pipeline.race.D.Report.r_loc,
        Taxonomy.category_to_string ra.Pipeline.verdict.Taxonomy.category ))
    a.Pipeline.races

let category_of_loc a loc =
  match List.assoc_opt loc (categories a) with
  | Some c -> c
  | None ->
    Alcotest.failf "no race detected on %s (got: %s)" loc
      (String.concat ", " (List.map fst (categories a)))

(* --- output differs: racy writes flow directly into the output --- *)

let outdiff_prog =
  let open Builder in
  program "outdiff" ~globals:[ ("x", 0) ]
    [ func "w1" [] [ setg "x" (i 1) ];
      func "w2" [] [ setg "x" (i 2) ];
      func "main" []
        [ spawn ~into:"t1" "w1" [];
          spawn ~into:"t2" "w2" [];
          join (l "t1");
          join (l "t2");
          output [ g "x" ]
        ]
    ]

let test_outdiff () =
  let a = analyze outdiff_prog in
  Alcotest.(check string) "outDiff" "outDiff" (category_of_loc a "x")

(* --- k-witness: racy writes whose difference is invisible in the output --- *)

let avv_prog =
  let open Builder in
  program "avv" ~globals:[ ("x", 5) ]
    [ func "w1" [] [ setg "x" (i 1) ];
      func "w2" [] [ setg "x" (i 2) ];
      func "main" []
        [ spawn ~into:"t1" "w1" [];
          spawn ~into:"t2" "w2" [];
          join (l "t1");
          join (l "t2");
          output [ g "x" > i 0 ]
        ]
    ]

let test_kwitness () =
  let a = analyze avv_prog in
  Alcotest.(check string) "k-witness" "k-witness" (category_of_loc a "x");
  let ra = List.hd a.Pipeline.races in
  Alcotest.(check bool) "k > 1" true (ra.Pipeline.verdict.Taxonomy.k > 1)

(* --- single ordering: data guarded by an ad-hoc spin flag --- *)

let adhoc_prog =
  let open Builder in
  program "adhoc" ~globals:[ ("data", 0); ("ready", 0) ]
    [ func "producer" [] [ setg "data" (i 42); setg "ready" (i 1) ];
      func "consumer" []
        [ while_ (g "ready" == i 0) [ yield ];
          output [ g "data" ]
        ];
      func "main" []
        [ spawn ~into:"t1" "producer" [];
          spawn ~into:"t2" "consumer" [];
          join (l "t1");
          join (l "t2")
        ]
    ]

let test_single_ordering () =
  let a = analyze adhoc_prog in
  Alcotest.(check string) "singleOrd" "singleOrd" (category_of_loc a "data")

(* --- spec violated (crash): racy index into a fixed-size buffer --- *)

let crash_prog =
  let open Builder in
  program "crash" ~globals:[ ("idx", 0) ] ~arrays:[ ("buf", 4, 0) ]
    [ func "invalidate" [] [ setg "idx" (i 99) ];
      func "writer" [] [ seta "buf" (g "idx") (i 7) ];
      func "main" []
        [ spawn ~into:"t1" "writer" [];
          spawn ~into:"t2" "invalidate" [];
          join (l "t1");
          join (l "t2");
          output [ i 0 ]
        ]
    ]

(* Find a recording seed under which the program completes (writer reads idx
   before the invalidation), so the harm only manifests in the alternate. *)
let test_specviol_crash () =
  let rec find_seed s =
    if s > 50 then Alcotest.fail "no completing recording found"
    else
      let a = analyze ~seed:s crash_prog in
      match a.Pipeline.record.Run.stop with Run.Halted -> a | _ -> find_seed (s + 1)
  in
  let a = find_seed 1 in
  Alcotest.(check string) "specViol" "specViol" (category_of_loc a "idx");
  let ra = List.find (fun ra -> ra.Pipeline.verdict.Taxonomy.category = Taxonomy.Spec_violated)
      a.Pipeline.races in
  Alcotest.(check bool) "crash consequence" true
    (ra.Pipeline.verdict.Taxonomy.consequence = Some Crash.Ccrash);
  Alcotest.(check bool) "evidence present" true (ra.Pipeline.evidence <> None)

(* --- spec violated (deadlock): racy flag gates a reversed lock order --- *)

let deadlock_prog =
  let open Builder in
  program "dlrace" ~globals:[ ("busy", 0) ] ~mutexes:[ "a"; "b" ]
    [ func "t1" []
        [ lock "a"; setg "busy" (i 1); yield; lock "b"; unlock "b"; unlock "a" ];
      func "t2" []
        [ var "r" (g "busy");
          if_ (l "r" == i 0)
            [ lock "b"; yield; lock "a"; unlock "a"; unlock "b" ]
            [];
          output [ l "r" ]
        ];
      func "main" []
        [ spawn ~into:"x" "t1" []; spawn ~into:"y" "t2" []; join (l "x"); join (l "y") ]
    ]

let test_specviol_deadlock () =
  (* Recording seed where t1 finishes before t2 reads busy: completes. *)
  let rec find_seed s =
    if s > 200 then Alcotest.fail "no completing recording found"
    else
      let a = analyze ~seed:s deadlock_prog in
      match a.Pipeline.record.Run.stop with
      | Run.Halted ->
        if List.mem_assoc "busy" (categories a) then a else find_seed (s + 1)
      | _ -> find_seed (s + 1)
  in
  let a = find_seed 1 in
  Alcotest.(check string) "specViol" "specViol" (category_of_loc a "busy");
  let ra = List.find (fun ra -> ra.Pipeline.verdict.Taxonomy.category = Taxonomy.Spec_violated)
      a.Pipeline.races in
  Alcotest.(check bool) "deadlock consequence" true
    (ra.Pipeline.verdict.Taxonomy.consequence = Some Crash.Cdeadlock)

(* --- spec violated (semantic): developer-provided assertion --- *)

let semantic_prog =
  let open Builder in
  program "sem" ~globals:[ ("ts", 1) ]
    [ func "updater" [] [ setg "ts" (i 0 - i 5); setg "ts" (i 10) ];
      func "reader" [] [ var "t" (g "ts"); assert_ (l "t" > i 0) "timestamps are positive" ];
      func "main" []
        [ spawn ~into:"a" "updater" [];
          spawn ~into:"b" "reader" [];
          join (l "a");
          join (l "b")
        ]
    ]

let test_specviol_semantic () =
  let rec find_seed s =
    if s > 200 then Alcotest.fail "no completing recording found"
    else
      let a = analyze ~seed:s semantic_prog in
      match a.Pipeline.record.Run.stop with
      | Run.Halted when List.mem_assoc "ts" (categories a) -> a
      | _ -> find_seed (s + 1)
  in
  let a = find_seed 1 in
  let v = category_of_loc a "ts" in
  Alcotest.(check string) "specViol" "specViol" v

(* --- multi-path: harmless on the recorded path, crash on another input --- *)

let multipath_prog =
  let open Builder in
  (* Fig 4 in miniature: an input selects update1 (reads the racy [id] and
     prints a tautology — safe on every schedule) or update2 (uses [id] to
     index a fixed buffer).  The recorded input takes the safe path; only
     multi-path analysis, which re-runs the same schedule on other inputs,
     exposes the crash when the invalidating write lands before the index
     read. *)
  program "fig4" ~globals:[ ("id", 0) ] ~arrays:[ ("stats", 4, 0) ]
    [ func "invalidate" [] [ setg "id" (i 99) ];
      func "update_stats" []
        [ input "use_hash" ~name:"use_hash" ~lo:0 ~hi:1;
          if_ (l "use_hash" == i 1)
            [ var "tmp" (g "id"); output [ l "tmp" > i 0 - i 1 ] ]
            [ seta "stats" (g "id") (i 1) ]
        ];
      func "main" []
        [ spawn ~into:"t1" "invalidate" [];
          spawn ~into:"t2" "update_stats" [];
          join (l "t1");
          join (l "t2")
        ]
    ]

let test_multipath_finds_crash () =
  (* Recorded with use_hash=1: the safe path.  The race on [id] is harmless
     along it, but the stats path overflows when id >= 2.  Discovery of the
     crashing interleaving is probabilistic in the recording and schedule
     seeds (as in the paper); at least one of a handful of seeds must find
     it, and none when multi-path analysis is disabled. *)
  let verdicts config =
    List.filter_map
      (fun s ->
        let a = analyze ~config ~seed:s ~inputs:[ ("use_hash", 1) ] multipath_prog in
        match a.Pipeline.record.Run.stop with
        | Run.Halted -> List.assoc_opt "id" (categories a)
        | _ -> None)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let full = verdicts Config.default in
  Alcotest.(check bool) "race seen in some recordings" true (full <> []);
  Alcotest.(check bool) "multipath finds the crash" true (List.mem "specViol" full);
  (* Without multi-path analysis the crash path is invisible. *)
  let single = verdicts Config.with_adhoc in
  Alcotest.(check bool) "single-path misses it" false (List.mem "specViol" single)

(* --- false positives: a mutex-blind detector's reports classify singleOrd --- *)

let locked_prog =
  let open Builder in
  program "locked" ~globals:[ ("x", 0) ] ~mutexes:[ "m" ]
    [ func "w" [ "v" ] (critical "m" [ setg "x" (l "v") ]);
      func "main" []
        [ spawn ~into:"t1" "w" [ i 1 ];
          spawn ~into:"t2" "w" [ i 2 ];
          join (l "t1");
          join (l "t2");
          output [ g "x" > i 0 ]
        ]
    ]

let test_false_positive_handling () =
  let prog = compile locked_prog in
  let r, _ = Pipeline.record ~seed:1 prog in
  (* The sound detector finds nothing. *)
  Alcotest.(check int) "hb finds no race" 0 (List.length (D.Hb.detect_clustered r.Run.events));
  (* The mutex-blind lockset detector reports the protected accesses. *)
  let fps = D.Lockset.detect_clustered ~ignore_mutexes:true r.Run.events in
  Alcotest.(check bool) "lockset reports false positives" true (List.length fps > 0);
  (* Portend classifies each false positive as singleOrd: the alternate
     ordering cannot be enforced through the mutex. *)
  List.iter
    (fun (race, _) ->
      match Classify.classify prog r.Run.trace race with
      | Ok { Classify.verdict; _ } ->
        Alcotest.(check string) "false positive -> singleOrd" "singleOrd"
          (Taxonomy.category_to_string verdict.Taxonomy.category)
      | Error e -> Alcotest.failf "classification failed: %s" e)
    fps

(* --- clustering --- *)

(* The same race executes many times: one distinct race, many instances. *)
let cluster_prog =
  let open Builder in
  program "cluster" ~globals:[ ("c", 0) ]
    [ func "w" [] [ var "i" (i 0); while_ (l "i" < i 5) [ incr_global "c"; set "i" (l "i" + i 1) ] ];
      func "main" []
        [ spawn ~into:"a" "w" []; spawn ~into:"b" "w" []; join (l "a"); join (l "b");
          output [ g "c" > i 0 ] ]
    ]

let test_clustering () =
  let a = analyze cluster_prog in
  (* [c = c + 1] racing with itself is one source-level race: the load-store
     and store-store conflicts cluster together at function granularity. *)
  Alcotest.(check int) "one distinct race" 1 (List.length a.Pipeline.races);
  List.iter
    (fun ra -> Alcotest.(check bool) "many instances" true (ra.Pipeline.instances > 1))
    a.Pipeline.races

(* --- evidence rendering --- *)

let test_evidence_render () =
  let a = analyze ~seed:1 outdiff_prog in
  let ra = List.hd a.Pipeline.races in
  match ra.Pipeline.evidence with
  | Some e ->
    let s = Evidence.render e in
    Alcotest.(check bool) "mentions location" true
      (Astring.String.is_infix ~affix:"Data race during access to: x" s)
  | None -> Alcotest.fail "outDiff race should carry evidence"


(* --- unit tests for the classifier's building blocks --- *)

let mk_out ?(tid = 1) ?(pc = 0) payload =
  { State.out_tid = tid; out_site = { Events.func = "f"; pc }; payload }

let test_symout_units () =
  let open Portend_solver in
  let vx = Value.Sym (Expr.Var "x") in
  let c n = Value.Con n in
  (* concrete equality *)
  Alcotest.(check bool) "equal concrete" true
    (Symout.concrete_equal [ mk_out (State.Vals [ c 1 ]) ] [ mk_out (State.Vals [ c 1 ]) ]);
  Alcotest.(check bool) "unequal concrete" false
    (Symout.concrete_equal [ mk_out (State.Vals [ c 1 ]) ] [ mk_out (State.Vals [ c 2 ]) ]);
  Alcotest.(check bool) "text vs vals" false
    (Symout.concrete_equal [ mk_out (State.Text "a") ] [ mk_out (State.Vals [ c 1 ]) ]);
  (* symbolic match: x in [0,9], output x, alternate printed 5: allowed *)
  let ranges = [ ("x", 0, 9) ] in
  (match
     Symout.matches ~ranges ~path_cond:[] ~primary:[ mk_out (State.Vals [ vx ]) ]
       ~alternate:[ mk_out (State.Vals [ c 5 ]) ]
   with
  | Ok () -> ()
  | Error m -> Alcotest.failf "should match: %s" (Fmt.str "%a" Symout.pp_mismatch m));
  (* symbolic mismatch: path forces x > 7 but alternate printed 5 *)
  (match
     Symout.matches ~ranges
       ~path_cond:[ Portend_solver.Expr.Binop (Gt, Var "x", Const 7) ]
       ~primary:[ mk_out (State.Vals [ vx ]) ]
       ~alternate:[ mk_out (State.Vals [ c 5 ]) ]
   with
  | Ok () -> Alcotest.fail "should mismatch under x > 7"
  | Error _ -> ());
  (* length mismatch *)
  match Symout.matches ~ranges ~path_cond:[] ~primary:[] ~alternate:[ mk_out (State.Text "x") ] with
  | Ok () -> Alcotest.fail "length mismatch must fail"
  | Error m -> Alcotest.(check int) "reported as shape" (-1) m.Symout.m_index

let test_compare_units () =
  let prog =
    compile
      (let open Builder in
       program "cmp" ~globals:[ ("a", 1) ] ~arrays:[ ("arr", 2, 0) ] [ func "main" [] [] ])
  in
  let s1 = State.init prog in
  Alcotest.(check bool) "reflexive" true (Compare.states_equal s1 s1);
  let s2 =
    { s1 with
      State.globals = Portend_util.Maps.Smap.add "a" (Value.Con 9) s1.State.globals
    }
  in
  Alcotest.(check bool) "global diff detected" false (Compare.states_equal s1 s2);
  (match Compare.first_difference s1 s2 with
  | Some d -> Alcotest.(check bool) "names the global" true (Astring.String.is_infix ~affix:"a" d)
  | None -> Alcotest.fail "expected a difference");
  let s3 =
    { s1 with
      State.outputs = [ mk_out (State.Text "hello") ]
    }
  in
  Alcotest.(check bool) "output diff detected" false (Compare.states_equal s1 s3)

let test_config_with_k () =
  List.iter
    (fun k ->
      let c = Config.with_k k Config.default in
      let got = c.Config.mp * c.Config.ma in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d within one of target" k)
        true
        (abs (got - max 1 k) <= 1))
    [ 1; 2; 3; 4; 5; 6; 8; 10; 11 ];
  Alcotest.(check int) "paper default k" 10 (Config.k Config.default)

let test_taxonomy_harmful () =
  Alcotest.(check bool) "specViol harmful" true (Taxonomy.is_harmful Taxonomy.Spec_violated);
  List.iter
    (fun c -> Alcotest.(check bool) "others not auto-harmful" false (Taxonomy.is_harmful c))
    [ Taxonomy.Output_differs; Taxonomy.K_witness_harmless; Taxonomy.Single_ordering ];
  Alcotest.(check int) "four categories" 4 (List.length Taxonomy.all_categories)

(* --- state-space reduction: verdict identity and savings --- *)

module W = Portend_workloads

(* Everything the user can observe about a verdict; the reductions must
   preserve each component exactly. *)
let full_signature (a : Pipeline.t) =
  List.map
    (fun ra ->
      ( D.Report.base_loc ra.Pipeline.race.D.Report.r_loc,
        Taxonomy.category_to_string ra.Pipeline.verdict.Taxonomy.category,
        ra.Pipeline.verdict.Taxonomy.k,
        ra.Pipeline.verdict.Taxonomy.detail,
        ra.Pipeline.verdict.Taxonomy.states_differ,
        ra.Pipeline.evidence <> None ))
    a.Pipeline.races

let add_red (a : Classify.reduction) (b : Classify.reduction) : Classify.reduction =
  { Classify.states_deduped = a.Classify.states_deduped + b.Classify.states_deduped;
    schedules_pruned = a.Classify.schedules_pruned + b.Classify.schedules_pruned;
    comparisons_deduped = a.Classify.comparisons_deduped + b.Classify.comparisons_deduped;
    suffix_solves = a.Classify.suffix_solves + b.Classify.suffix_solves;
    full_solves = a.Classify.full_solves + b.Classify.full_solves;
    replays_reused = a.Classify.replays_reused + b.Classify.replays_reused
  }

let analyze_workload ?(overrides = Fun.id) ~reduction (w : W.Registry.workload) =
  let config =
    overrides { Config.default with Config.jobs = 1; enable_reduction = reduction }
  in
  Pipeline.analyze ~config ~seed:w.W.Registry.w_seed ~inputs:w.W.Registry.w_inputs
    (compile w.W.Registry.w_prog)

let test_reduction_verdict_identity () =
  let totals = ref Classify.no_reduction in
  List.iter
    (fun (w : W.Registry.workload) ->
      let off = analyze_workload ~reduction:false w in
      let on = analyze_workload ~reduction:true w in
      Alcotest.(check bool)
        (w.W.Registry.w_name ^ ": verdicts identical with reduction on/off")
        true
        (full_signature off = full_signature on);
      (* The non-reduction stats must agree too: the reductions skip
         redundant work, never exploration. *)
      Alcotest.(check bool)
        (w.W.Registry.w_name ^ ": same states explored")
        true
        (List.map (fun ra -> ra.Pipeline.stats.Classify.states_explored) off.Pipeline.races
        = List.map (fun ra -> ra.Pipeline.stats.Classify.states_explored) on.Pipeline.races);
      List.iter
        (fun ra ->
          Alcotest.(check bool)
            (w.W.Registry.w_name ^ ": reduction counters zero when disabled")
            true
            (ra.Pipeline.stats.Classify.red = Classify.no_reduction))
        off.Pipeline.races;
      List.iter
        (fun ra -> totals := add_red !totals ra.Pipeline.stats.Classify.red)
        on.Pipeline.races)
    W.Suite.all;
  (* Across the whole suite every reduction mechanism must actually fire
     (except the frontier-dedup tripwire, which is provably 0 today). *)
  let t = !totals in
  Alcotest.(check bool) "suffix solves saved queries" true (t.Classify.suffix_solves > 0);
  Alcotest.(check bool) "alternate dedup fired" true
    (t.Classify.schedules_pruned + t.Classify.comparisons_deduped > 0);
  Alcotest.(check bool) "checkpoint replays reused" true (t.Classify.replays_reused > 0);
  Alcotest.(check int) "frontier dedup tripwire silent" 0 t.Classify.states_deduped

let test_reduction_truncation_equivalence () =
  (* With a tight state cap the scored frontier decides which states are
     kept; its pop order must still coincide with the DFS stack, so even a
     truncated exploration yields bit-identical verdicts. *)
  let w =
    match W.Suite.find "ctrace" with
    | Some w -> w
    | None -> Alcotest.fail "ctrace workload missing"
  in
  let overrides c = { c with Config.max_explored_states = 20 } in
  let off = analyze_workload ~overrides ~reduction:false w in
  let on = analyze_workload ~overrides ~reduction:true w in
  Alcotest.(check bool) "cap engaged" true
    (List.exists
       (fun ra -> ra.Pipeline.stats.Classify.states_explored >= 20)
       on.Pipeline.races);
  Alcotest.(check bool) "verdicts identical under truncation" true
    (full_signature off = full_signature on)

let test_reduction_deterministic () =
  (* Same seed, same config: reduced runs repeat exactly, counters included. *)
  let w =
    match W.Suite.find "bbuf" with
    | Some w -> w
    | None -> Alcotest.fail "bbuf workload missing"
  in
  let snap () =
    let a = analyze_workload ~reduction:true w in
    (full_signature a, List.map (fun ra -> ra.Pipeline.stats) a.Pipeline.races)
  in
  Alcotest.(check bool) "identical rerun" true (snap () = snap ())

let () =
  Alcotest.run "core"
    [ ( "taxonomy",
        [ Alcotest.test_case "output differs" `Quick test_outdiff;
          Alcotest.test_case "k-witness harmless" `Quick test_kwitness;
          Alcotest.test_case "single ordering" `Quick test_single_ordering;
          Alcotest.test_case "spec violated: crash" `Quick test_specviol_crash;
          Alcotest.test_case "spec violated: deadlock" `Quick test_specviol_deadlock;
          Alcotest.test_case "spec violated: semantic" `Quick test_specviol_semantic
        ] );
      ( "multipath",
        [ Alcotest.test_case "crash found across paths" `Quick test_multipath_finds_crash ] );
      ( "robustness",
        [ Alcotest.test_case "false positives -> singleOrd" `Quick test_false_positive_handling;
          Alcotest.test_case "clustering" `Quick test_clustering;
          Alcotest.test_case "evidence" `Quick test_evidence_render
        ] );
      ( "reduction",
        [ Alcotest.test_case "suite-wide verdict identity" `Quick test_reduction_verdict_identity;
          Alcotest.test_case "truncation equivalence" `Quick test_reduction_truncation_equivalence;
          Alcotest.test_case "deterministic" `Quick test_reduction_deterministic
        ] );
      ( "units",
        [ Alcotest.test_case "symbolic output comparison" `Quick test_symout_units;
          Alcotest.test_case "state comparison" `Quick test_compare_units;
          Alcotest.test_case "config k factorization" `Quick test_config_with_k;
          Alcotest.test_case "taxonomy" `Quick test_taxonomy_harmful
        ] )
    ]
