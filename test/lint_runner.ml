(* Golden-file driver for the lint-examples alias: lint every example
   program passed on the command line plus the whole workload suite, in a
   deterministic order and format, so any change to the lint pass shows up
   as a diff against lint_examples.expected (refresh with `dune promote`). *)

let lint_program label prog =
  Printf.printf "== %s ==\n" label;
  let diags = Portend_analysis.Lint.run prog in
  List.iter (fun d -> print_endline (Portend_analysis.Lint.to_string d)) diags;
  Printf.printf "%d diagnostic(s)\n\n" (List.length diags)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  List.iter
    (fun file -> lint_program (Filename.basename file) (Portend_lang.Parser.compile_file file))
    (List.sort compare files);
  List.iter
    (fun (w : Portend_workloads.Registry.workload) ->
      lint_program
        ("workload " ^ w.Portend_workloads.Registry.w_name)
        (Portend_lang.Compile.compile w.Portend_workloads.Registry.w_prog))
    Portend_workloads.Suite.extended
