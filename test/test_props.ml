(* Property-based tests across layer boundaries:

   - differential testing of the VM against a reference AST evaluator on
     randomly generated single-threaded programs;
   - record/replay determinism on randomly generated racy two-thread
     programs;
   - solver UNSAT soundness against brute-force enumeration on small
     domains. *)

open Portend_lang
open Portend_vm
module E = Portend_solver.Expr

(* ------------------------------------------------------------------ *)
(* reference evaluator for deterministic single-threaded programs      *)
(* ------------------------------------------------------------------ *)

module Ref_eval = struct
  type env = {
    mutable locals : (string * int) list;
    mutable globals : (string * int) list;
    outputs : int list ref;
  }

  exception Stuck

  let rec expr env = function
    | Ast.Int n -> n
    | Ast.Local x -> (
      match List.assoc_opt x env.locals with
      | Some v -> v
      | None -> List.assoc x env.globals)
    | Ast.Global x -> List.assoc x env.globals
    | Ast.ArrGet _ -> raise Stuck
    | Ast.Unop (op, e) -> E.apply_unop op (expr env e)
    | Ast.Binop (op, a, b) -> E.apply_binop op (expr env a) (expr env b)
    | Ast.Cond (c, a, b) -> if expr env c <> 0 then expr env a else expr env b

  let rec stmt env fuel s =
    if !fuel <= 0 then raise Stuck;
    decr fuel;
    match s with
    | Ast.Decl (x, e) | Ast.Assign (x, e) ->
      if List.mem_assoc x env.globals && not (List.mem_assoc x env.locals) then
        env.globals <- (x, expr env e) :: List.remove_assoc x env.globals
      else env.locals <- (x, expr env e) :: List.remove_assoc x env.locals
    | Ast.SetGlobal (x, e) -> env.globals <- (x, expr env e) :: List.remove_assoc x env.globals
    | Ast.If (c, t, f) -> List.iter (stmt env fuel) (if expr env c <> 0 then t else f)
    | Ast.While (c, body) ->
      if expr env c <> 0 then begin
        List.iter (stmt env fuel) body;
        stmt env fuel s
      end
    | Ast.Output es -> List.iter (fun e -> env.outputs := expr env e :: !(env.outputs)) es
    | Ast.Yield -> ()
    | _ -> raise Stuck

  (* Run main of a program with only globals and supported statements. *)
  let run (p : Ast.program) : int list option =
    let env =
      { locals = []; globals = List.map (fun (n, v) -> (n, v)) p.Ast.globals; outputs = ref [] }
    in
    match Ast.find_func p "main" with
    | None -> None
    | Some f -> (
      try
        List.iter (stmt env (ref 50_000)) f.Ast.body;
        Some (List.rev !(env.outputs))
      with Stuck | Division_by_zero | Not_found -> None)
end

(* random deterministic programs *)
let gen_seq_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let glob = oneofl [ "g0"; "g1"; "g2" ] in
  let loc = oneofl [ "v0"; "v1" ] in
  ignore loc;
  let rec gen_expr depth =
    if depth = 0 then
      oneof [ map (fun n -> Ast.Int (n - 8)) (int_bound 16); map (fun x -> Ast.Global x) glob ]
    else
      frequency
        [ (2, gen_expr 0);
          ( 3,
            let* op = oneofl E.[ Add; Sub; Mul; Lt; Le; Eq; Ne ] in
            let* a = gen_expr (depth - 1) in
            let* b = gen_expr (depth - 1) in
            return (Ast.Binop (op, a, b)) );
          ( 1,
            let* c = gen_expr (depth - 1) in
            let* a = gen_expr (depth - 1) in
            let* b = gen_expr (depth - 1) in
            return (Ast.Cond (c, a, b)) )
        ]
  in
  let rec gen_stmt depth =
    frequency
      [ ( 3,
          let* x = glob in
          let* e = gen_expr 2 in
          return (Ast.SetGlobal (x, e)) );
        (2, map (fun e -> Ast.Output [ e ]) (gen_expr 2));
        ( 2,
          if depth = 0 then map (fun e -> Ast.Output [ e ]) (gen_expr 1)
          else
            let* c = gen_expr 1 in
            let* t = list_size (int_range 1 3) (gen_stmt (depth - 1)) in
            let* f = list_size (int_bound 2) (gen_stmt (depth - 1)) in
            return (Ast.If (c, t, f)) );
        ( 1,
          (* a bounded counting loop over a (uniquely named) local *)
          let* x = map (fun k -> Printf.sprintf "v%d" k) (int_bound 100_000) in
          let* n = int_range 1 4 in
          let* body = list_size (int_range 1 2) (gen_stmt 0) in
          return
            (Ast.If
               ( Ast.Int 1,
                 [ Ast.Decl (x, Ast.Int 0);
                   Ast.While
                     ( Ast.Binop (E.Lt, Ast.Local x, Ast.Int n),
                       body @ [ Ast.Assign (x, Ast.Binop (E.Add, Ast.Local x, Ast.Int 1)) ] )
                 ],
                 [] )) )
      ]
  in
  let* body = list_size (int_range 1 8) (gen_stmt 2) in
  return
    { Ast.pname = "rand";
      globals = [ ("g0", 1); ("g1", -2); ("g2", 7) ];
      arrays = [];
      mutexes = [];
      conds = [];
      barriers = [];
      sems = [];
      funcs = [ { Ast.fname = "main"; params = []; body } ]
    }

let vm_outputs prog =
  (
    let r = Run.run ~sched:Sched.round_robin (State.init prog) in
    match r.Run.stop with
    | Run.Halted ->
      Some
        (List.concat_map
           (fun o ->
             match o.State.payload with
             | State.Vals vs ->
               List.map (function Value.Con n -> n | Value.Sym _ -> min_int) vs
             | State.Text _ -> [])
           (State.outputs r.Run.final))
    | _ -> None)

let test_vm_matches_reference =
  let arb = QCheck.make ~print:Pp.program_to_string gen_seq_program in
  QCheck.Test.make ~name:"VM agrees with reference evaluator" ~count:400 arb (fun p ->
      match Compile.compile p with
      | exception Compile.Error _ -> QCheck.assume_fail () (* e.g. shadowed loop vars *)
      | prog -> (
        match (Ref_eval.run p, vm_outputs prog) with
        | Some ref_out, Some vm_out -> ref_out = vm_out
        | None, _ -> QCheck.assume_fail () (* reference could not handle it *)
        | Some _, None -> false))

(* ------------------------------------------------------------------ *)
(* record/replay determinism on racy two-thread programs               *)
(* ------------------------------------------------------------------ *)

let gen_racy_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let glob = oneofl [ "s0"; "s1"; "s2" ] in
  let gen_stmt =
    frequency
      [ ( 3,
          let* x = glob in
          let* n = int_bound 9 in
          return (Ast.SetGlobal (x, Ast.Int n)) );
        ( 2,
          let* x = glob in
          let* y = glob in
          return (Ast.SetGlobal (x, Ast.Binop (E.Add, Ast.Global y, Ast.Int 1))) );
        (2, map (fun x -> Ast.Output [ Ast.Global x ]) glob);
        (1, return Ast.Yield)
      ]
  in
  let* b1 = list_size (int_range 1 6) gen_stmt in
  let* b2 = list_size (int_range 1 6) gen_stmt in
  return
    { Ast.pname = "racy";
      globals = [ ("s0", 0); ("s1", 0); ("s2", 0) ];
      arrays = [];
      mutexes = [];
      conds = [];
      barriers = [];
      sems = [];
      funcs =
        [ { Ast.fname = "w1"; params = []; body = b1 };
          { Ast.fname = "w2"; params = []; body = b2 };
          { Ast.fname = "main";
            params = [];
            body =
              [ Ast.Spawn (Some "t1", "w1", []);
                Ast.Spawn (Some "t2", "w2", []);
                Ast.Join (Ast.Local "t1");
                Ast.Join (Ast.Local "t2")
              ]
          }
        ]
    }

let test_record_replay_property =
  let arb =
    QCheck.make
      ~print:(fun (p, seed) -> Printf.sprintf "seed %d\n%s" seed (Pp.program_to_string p))
      QCheck.Gen.(pair gen_racy_program (int_bound 1000))
  in
  QCheck.Test.make ~name:"replaying a recorded trace reproduces the run" ~count:300 arb
    (fun (p, seed) ->
      let prog = Compile.compile p in
      let r1 = Run.run ~sched:(Sched.random ~seed) (State.init prog) in
      match r1.Run.stop with
      | Run.Halted ->
        let r2 =
          Run.run ~sched:(Sched.of_decisions (Trace.decisions r1.Run.trace)) (State.init prog)
        in
        r2.Run.stop = Run.Halted
        && r1.Run.final.State.steps = r2.Run.final.State.steps
        && State.outputs r1.Run.final = State.outputs r2.Run.final
        && r1.Run.events = r2.Run.events
      | _ -> QCheck.assume_fail ())

let test_same_seed_same_run =
  let arb = QCheck.make QCheck.Gen.(pair gen_racy_program (int_bound 1000)) in
  QCheck.Test.make ~name:"recording is deterministic in the seed" ~count:200 arb
    (fun (p, seed) ->
      let prog = Compile.compile p in
      let r1 = Run.run ~sched:(Sched.random ~seed) (State.init prog) in
      let r2 = Run.run ~sched:(Sched.random ~seed) (State.init prog) in
      Run.stop_to_string r1.Run.stop = Run.stop_to_string r2.Run.stop
      && State.outputs r1.Run.final = State.outputs r2.Run.final)

(* ------------------------------------------------------------------ *)
(* telemetry is verdict-neutral and its counters match Pipeline stats  *)
(* ------------------------------------------------------------------ *)

module T = Portend_telemetry
open Portend_core

(* Random lock/spawn/join programs: worker bodies mix unprotected racy
   statements with balanced lock..unlock regions, semaphore brackets,
   atomic regions, condvar signals/waits and barrier arrivals, and main
   spawns two or three workers and joins them all — richer
   synchronization shapes than [gen_racy_program] so classification and
   the static prefilter take every path.  Wait/barrier segments can
   deadlock; the pipeline classifies that as a crash, which the
   properties below tolerate by construction. *)
let gen_sync_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let glob = oneofl [ "s0"; "s1"; "s2" ] in
  let gen_plain =
    frequency
      [ ( 3,
          let* x = glob in
          let* n = int_bound 9 in
          return (Ast.SetGlobal (x, Ast.Int n)) );
        ( 2,
          let* x = glob in
          let* y = glob in
          return (Ast.SetGlobal (x, Ast.Binop (E.Add, Ast.Global y, Ast.Int 1))) );
        (2, map (fun x -> Ast.Output [ Ast.Global x ]) glob);
        (1, return Ast.Yield)
      ]
  in
  let gen_segment =
    let* stmts = list_size (int_range 1 3) gen_plain in
    frequency
      [ (4, return stmts);
        (* balanced critical section; a second mutex exercises distinct
           lock clocks in the detector *)
        (2, map (fun m -> (Ast.Lock m :: stmts) @ [ Ast.Unlock m ]) (oneofl [ "m0"; "m1" ]));
        (* balanced binary-semaphore bracket — a candidate for the
           sem-as-lock static refinement *)
        (2, return ((Ast.SemWait "sg" :: stmts) @ [ Ast.SemPost "sg" ]));
        (* handoff semaphore used asymmetrically (never a lock) *)
        (1, return (Ast.SemPost "sh" :: stmts));
        (1, return (stmts @ [ Ast.SemWait "sh" ]));
        (1, return [ Ast.Atomic stmts ]);
        (1, return ((Ast.Lock "m0" :: Ast.Signal "c0" :: stmts) @ [ Ast.Unlock "m0" ]));
        (1, return [ Ast.Lock "m0"; Ast.Wait ("c0", "m0"); Ast.Unlock "m0" ]);
        (1, return (Ast.BarrierWait "bar" :: stmts))
      ]
  in
  let gen_body = map List.concat (list_size (int_range 1 3) gen_segment) in
  let* b1 = gen_body in
  let* b2 = gen_body in
  let* b3 = gen_body in
  let* three = bool in
  let workers = if three then [ b1; b2; b3 ] else [ b1; b2 ] in
  let funcs =
    List.mapi (fun i b -> { Ast.fname = Printf.sprintf "w%d" (i + 1); params = []; body = b })
      workers
  in
  let spawns =
    List.mapi
      (fun i f -> Ast.Spawn (Some (Printf.sprintf "t%d" (i + 1)), f.Ast.fname, []))
      funcs
  in
  let joins =
    List.mapi (fun i _ -> Ast.Join (Ast.Local (Printf.sprintf "t%d" (i + 1)))) funcs
  in
  return
    { Ast.pname = "sync";
      globals = [ ("s0", 0); ("s1", 0); ("s2", 0) ];
      arrays = [];
      mutexes = [ "m0"; "m1" ];
      conds = [ "c0" ];
      barriers = [ ("bar", List.length workers) ];
      sems = [ ("sg", 1); ("sh", 0) ];
      funcs = funcs @ [ { Ast.fname = "main"; params = []; body = spawns @ joins } ]
    }

(* Everything observable about an analysis except wall-clock times. *)
let analysis_fingerprint (a : Pipeline.t) =
  ( List.map
      (fun ra ->
        ( Fmt.str "%a" Portend_detect.Report.pp_race ra.Pipeline.race,
          ra.Pipeline.instances,
          ra.Pipeline.verdict,
          ra.Pipeline.evidence,
          ra.Pipeline.stats ))
      a.Pipeline.races,
    List.map (fun (r, e) -> (Fmt.str "%a" Portend_detect.Report.pp_race r, e)) a.Pipeline.errors
  )

let test_telemetry_neutral =
  let arb =
    QCheck.make
      ~print:(fun (p, seed) -> Printf.sprintf "seed %d\n%s" seed (Pp.program_to_string p))
      QCheck.Gen.(pair gen_sync_program (int_bound 1000))
  in
  QCheck.Test.make
    ~name:"telemetry is verdict-neutral and explore counters match Pipeline stats" ~count:60 arb
    (fun (p, seed) ->
      let prog = Compile.compile p in
      let config = { Config.default with Config.jobs = 1 } in
      let off = Pipeline.analyze ~config ~seed prog in
      T.set_enabled true;
      T.reset ();
      let on, snap =
        Fun.protect
          ~finally:(fun () -> T.set_enabled false)
          (fun () ->
            let a = Pipeline.analyze ~config ~seed prog in
            (a, T.snapshot ()))
      in
      let sum f = List.fold_left (fun acc ra -> acc + f ra.Pipeline.stats) 0 on.Pipeline.races in
      let red f = sum (fun s -> f s.Classify.red) in
      analysis_fingerprint off = analysis_fingerprint on
      && T.counter snap "explore.states" = sum (fun s -> s.Classify.states_explored)
      && T.counter snap "explore.paths_completed" = sum (fun s -> s.Classify.paths_completed)
      && T.counter snap "explore.states_deduped" = red (fun r -> r.Classify.states_deduped)
      && T.counter snap "explore.suffix_solves" = red (fun r -> r.Classify.suffix_solves)
      && T.counter snap "explore.full_solves" = red (fun r -> r.Classify.full_solves)
      && T.counter snap "explore.schedules_pruned" = red (fun r -> r.Classify.schedules_pruned)
      && T.counter snap "explore.comparisons_deduped"
         = red (fun r -> r.Classify.comparisons_deduped)
      && T.counter snap "explore.replays_reused" = red (fun r -> r.Classify.replays_reused))

(* ------------------------------------------------------------------ *)
(* the state-space reductions never change an answer                   *)
(* ------------------------------------------------------------------ *)

(* [analysis_fingerprint] with the reduction accounting blanked out: the
   two runs legitimately avoid different amounts of work, but everything
   else — verdicts, evidence, errors, and even the exploration counts —
   must be bit-identical. *)
let reduction_blind_fingerprint (a : Pipeline.t) =
  ( List.map
      (fun ra ->
        ( Fmt.str "%a" Portend_detect.Report.pp_race ra.Pipeline.race,
          ra.Pipeline.instances,
          ra.Pipeline.verdict,
          ra.Pipeline.evidence,
          { ra.Pipeline.stats with Classify.red = Classify.no_reduction } ))
      a.Pipeline.races,
    List.map (fun (r, e) -> (Fmt.str "%a" Portend_detect.Report.pp_race r, e)) a.Pipeline.errors
  )

let test_reduction_preserves_verdicts =
  let arb =
    QCheck.make
      ~print:(fun (p, seed) -> Printf.sprintf "seed %d\n%s" seed (Pp.program_to_string p))
      QCheck.Gen.(pair gen_sync_program (int_bound 1000))
  in
  QCheck.Test.make
    ~name:"state-space reduction preserves every verdict; counters stay 0 when off" ~count:60 arb
    (fun (p, seed) ->
      let prog = Compile.compile p in
      let base = { Config.default with Config.jobs = 1 } in
      let off = Pipeline.analyze ~config:{ base with Config.enable_reduction = false } ~seed prog in
      let on = Pipeline.analyze ~config:{ base with Config.enable_reduction = true } ~seed prog in
      reduction_blind_fingerprint off = reduction_blind_fingerprint on
      && List.for_all
           (fun ra -> ra.Pipeline.stats.Classify.red = Classify.no_reduction)
           off.Pipeline.races)

(* ------------------------------------------------------------------ *)
(* prefilter soundness on synchronization-heavy random programs        *)
(* ------------------------------------------------------------------ *)

(* The static candidate report must cover every race the dynamic detector
   finds, and restricting the detector to those candidates must leave its
   output bit-identical — exercised here on programs dense in semaphore
   brackets, atomic regions, condvar waits and barrier arrivals, so the
   sync-aware transfer functions can only prune pairs they can prove
   ordered or mutually excluded. *)
let test_prefilter_sound_on_sync =
  let race_sites (race : Portend_detect.Report.race) =
    let site (a : Portend_detect.Report.access) =
      (a.Portend_detect.Report.a_site.Events.func, a.Portend_detect.Report.a_site.Events.pc)
    in
    (site race.Portend_detect.Report.first, site race.Portend_detect.Report.second)
  in
  let arb =
    QCheck.make
      ~print:(fun (p, seed) -> Printf.sprintf "seed %d\n%s" seed (Pp.program_to_string p))
      QCheck.Gen.(pair gen_sync_program (int_bound 1000))
  in
  QCheck.Test.make
    ~name:"static prefilter stays sound and invisible on sync-heavy programs" ~count:150 arb
    (fun (p, seed) ->
      let prog = Compile.compile p in
      let report = Portend_analysis.Static_report.analyze prog in
      let r = Run.run ~sched:(Sched.random ~seed) (State.init prog) in
      let races = Portend_detect.Hb.detect r.Run.events in
      List.for_all
        (fun race ->
          let s1, s2 = race_sites race in
          Portend_analysis.Static_report.covers report s1 s2)
        races
      && Portend_detect.Hb.detect ~restrict:report r.Run.events = races)

(* ------------------------------------------------------------------ *)
(* solver soundness vs brute force                                     *)
(* ------------------------------------------------------------------ *)

let test_solver_vs_bruteforce =
  let open QCheck.Gen in
  let gen_constraints =
    let atom =
      let* x = oneofl [ "x"; "y" ] in
      let* op = oneofl E.[ Eq; Ne; Lt; Le; Gt; Ge ] in
      let* rhs =
        oneof
          [ map (fun n -> E.Const n) (int_bound 7);
            return (E.Var "x");
            return (E.Var "y");
            map (fun n -> E.Binop (E.Add, E.Var "y", E.Const n)) (int_bound 3)
          ]
      in
      return (E.Binop (op, E.Var x, rhs))
    in
    list_size (int_range 1 5) atom
  in
  let arb =
    QCheck.make ~print:(fun cs -> String.concat " & " (List.map E.to_string cs)) gen_constraints
  in
  QCheck.Test.make ~name:"solver agrees with brute force on [0,7]^2" ~count:300 arb (fun cs ->
      let ranges = [ ("x", 0, 7); ("y", 0, 7) ] in
      let brute =
        List.exists
          (fun x ->
            List.exists
              (fun y ->
                List.for_all
                  (fun c -> E.eval (function "x" -> x | _ -> y) c <> 0)
                  cs)
              (List.init 8 Fun.id))
          (List.init 8 Fun.id)
      in
      match Portend_solver.Solver.solve ~ranges cs with
      | Portend_solver.Solver.Sat m ->
        brute
        && Portend_solver.Solver.check_model m cs
      | Portend_solver.Solver.Unsat -> not brute
      | Portend_solver.Solver.Unknown -> true)

(* ------------------------------------------------------------------ *)
(* solver cache coherence: cached answers equal fresh answers          *)
(* ------------------------------------------------------------------ *)

module Solver = Portend_solver.Solver

let gen_conjunction : E.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    let* x = oneofl [ "x"; "y"; "z" ] in
    let* op = oneofl E.[ Eq; Ne; Lt; Le; Gt; Ge ] in
    let* rhs =
      oneof
        [ map (fun n -> E.Const n) (int_bound 9);
          return (E.Var "x");
          return (E.Var "y");
          map (fun n -> E.Binop (E.Add, E.Var "z", E.Const n)) (int_bound 4);
          map (fun n -> E.Binop (E.Mul, E.Var "y", E.Const (n + 1))) (int_bound 2)
        ]
    in
    return (E.Binop (op, E.Var x, rhs))
  in
  list_size (int_range 1 6) atom

(* Caching memoizes a pure function, so a cached answer — whether it came
   from the full-result memo, the prefix memo, or a permuted conjunction
   hitting the same canonical key — must equal the fresh answer, model
   included. *)
let test_solver_cache_coherent =
  let arb =
    QCheck.make
      ~print:(fun cs -> String.concat " & " (List.map E.to_string cs))
      gen_conjunction
  in
  QCheck.Test.make ~name:"cached solver answers equal fresh answers" ~count:300 arb (fun cs ->
      let ranges = [ ("x", 0, 9); ("y", 0, 9); ("z", -4, 5) ] in
      let saved = Solver.cache_mode () in
      Fun.protect
        ~finally:(fun () -> Solver.set_cache_mode saved)
        (fun () ->
          Solver.set_cache_mode Solver.Cache_off;
          let fresh = Solver.solve ~ranges cs in
          Solver.set_cache_mode Solver.Cache_domain;
          let miss = Solver.solve ~ranges cs in
          let hit = Solver.solve ~ranges cs in
          let permuted = Solver.solve ~ranges (List.rev cs) in
          fresh = miss && fresh = hit && fresh = permuted))

(* ------------------------------------------------------------------ *)
(* the persistent cache never changes an answer                        *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let cache_dir_counter = ref 0

(* Cache off, then cold (empty store), then warm (hitting the entry the
   cold run wrote): all three analyses must be bit-identical, and the warm
   one must actually have been served from the verdict tier. *)
let test_cache_preserves_verdicts =
  let module Store = Portend_cache.Store in
  let arb =
    QCheck.make
      ~print:(fun (p, seed) -> Printf.sprintf "seed %d\n%s" seed (Pp.program_to_string p))
      QCheck.Gen.(pair gen_sync_program (int_bound 1000))
  in
  QCheck.Test.make ~name:"persistent cache preserves verdicts (off = cold = warm)" ~count:30 arb
    (fun (p, seed) ->
      let prog = Compile.compile p in
      incr cache_dir_counter;
      let dir = Printf.sprintf "_t_props_cache_%d" !cache_dir_counter in
      rm_rf dir;
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let base = { Config.default with Config.jobs = 1 } in
          let off = Pipeline.analyze ~config:base ~seed prog in
          let cached = { base with Config.cache = true; cache_dir = dir } in
          Solver.clear_caches ();
          let cold = Pipeline.analyze ~config:cached ~seed prog in
          Store.reset_stats ();
          Solver.clear_caches ();
          let warm = Pipeline.analyze ~config:cached ~seed prog in
          let v = Store.tier_stats Store.Verdicts in
          analysis_fingerprint off = analysis_fingerprint cold
          && analysis_fingerprint off = analysis_fingerprint warm
          && v.Store.hits > 0))

(* One explicit seed for every property suite, so a counterexample found
   in CI is reproducible locally: QCHECK_SEED=<printed seed> reruns the
   exact generator sequence.  The seed is printed up front and embedded in
   the Alcotest group name, so any failure report carries it. *)
let () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> failwith (Printf.sprintf "QCHECK_SEED must be an integer, got %S" s))
    | None ->
      Random.self_init ();
      Random.int 1_000_000_000
  in
  Printf.printf "qcheck seed: %d (rerun with QCHECK_SEED=%d)\n%!" seed seed;
  let rand = Random.State.make [| seed |] in
  Alcotest.run "properties"
    [ ( Printf.sprintf "cross-layer (seed %d)" seed,
        List.map
          (QCheck_alcotest.to_alcotest ~rand)
          [ test_vm_matches_reference;
            test_record_replay_property;
            test_same_seed_same_run;
            test_telemetry_neutral;
            test_reduction_preserves_verdicts;
            test_prefilter_sound_on_sync;
            test_solver_vs_bruteforce;
            test_solver_cache_coherent;
            test_cache_preserves_verdicts
          ] )
    ]
