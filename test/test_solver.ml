(* Unit and property tests for the symbolic expression language and the
   interval/ICP solver. *)

open Portend_solver

let smap = Portend_util.Maps.Smap.of_list

let check_sat msg constraints = Alcotest.(check bool) msg true (Solver.sat constraints)
let check_unsat msg constraints = Alcotest.(check bool) msg false (Solver.sat constraints)

let v x = Expr.Var x
let c n = Expr.Const n
let ( +: ) a b = Expr.Binop (Add, a, b)
let ( -: ) a b = Expr.Binop (Sub, a, b)
let ( *: ) a b = Expr.Binop (Mul, a, b)
let ( =: ) a b = Expr.Binop (Eq, a, b)
let ( <>: ) a b = Expr.Binop (Ne, a, b)
let ( <: ) a b = Expr.Binop (Lt, a, b)
let ( <=: ) a b = Expr.Binop (Le, a, b)
let _ = ( <=: )
let ( >: ) a b = Expr.Binop (Gt, a, b)
let ( &&: ) a b = Expr.Binop (Land, a, b)
let _ = ( &&: )
let ( ||: ) a b = Expr.Binop (Lor, a, b)

(* --- Expr --- *)

let test_eval () =
  let lookup = function "x" -> 7 | "y" -> -2 | _ -> 0 in
  Alcotest.(check int) "arith" 3 (Expr.eval lookup ((v "x" +: v "y") -: c 2));
  Alcotest.(check int) "cmp true" 1 (Expr.eval lookup (v "x" >: c 0));
  Alcotest.(check int) "cmp false" 0 (Expr.eval lookup (v "y" >: c 0));
  Alcotest.(check int) "ite" 42 (Expr.eval lookup (Expr.Ite (v "x" >: c 0, c 42, c 0)));
  Alcotest.check_raises "div0" Division_by_zero (fun () ->
      ignore (Expr.eval lookup (Expr.Binop (Div, c 1, v "z"))))

let test_vars () =
  let e = (v "a" +: v "b") *: Expr.Ite (v "c", v "a", c 0) in
  let vs = Expr.vars e |> Portend_util.Maps.Sset.elements in
  Alcotest.(check (list string)) "vars" [ "a"; "b"; "c" ] vs

let test_subst () =
  let e = v "x" +: v "y" in
  let e' = Expr.subst (smap [ ("x", c 10) ]) e in
  Alcotest.(check int) "subst" 11 (Expr.eval (fun _ -> 1) e')

(* --- Simplify --- *)

let ( >=: ) a b = Expr.Binop (Ge, a, Expr.Const b)

let test_simplify_folds () =
  let eq = Alcotest.(check bool) in
  eq "fold" true (Simplify.simplify (c 2 +: c 3) = c 5);
  eq "x+0" true (Simplify.simplify (v "x" +: c 0) = v "x");
  eq "x*0" true (Simplify.simplify (v "x" *: c 0) = c 0);
  eq "x-x" true (Simplify.simplify (v "x" -: v "x") = c 0);
  eq "x=x" true (Simplify.simplify (v "x" =: v "x") = c 1);
  eq "not lt" true (Simplify.simplify (Expr.Unop (Lnot, v "x" <: c 3)) = (v "x" >=: 3))

let test_simplify_preserves_semantics =
  let gen =
    (* random expressions over x,y with small constants *)
    let open QCheck.Gen in
    let leaf = oneof [ map (fun n -> c (n - 8)) (int_bound 16); return (v "x"); return (v "y") ] in
    let op =
      oneofl
        Expr.[ Add; Sub; Mul; Eq; Ne; Lt; Le; Gt; Ge; Land; Lor ]
    in
    fix
      (fun self depth ->
        if depth = 0 then leaf
        else
          frequency
            [ (2, leaf);
              (3, map3 (fun o a b -> Expr.Binop (o, a, b)) op (self (depth - 1)) (self (depth - 1)));
              (1, map (fun a -> Expr.Unop (Lnot, a)) (self (depth - 1)));
              ( 1,
                map3
                  (fun a b c -> Expr.Ite (a, b, c))
                  (self (depth - 1)) (self (depth - 1)) (self (depth - 1)) )
            ])
      4
  in
  let arb = QCheck.make ~print:Expr.to_string gen in
  QCheck.Test.make ~name:"simplify preserves semantics" ~count:500 arb (fun e ->
      let lookup = function "x" -> 5 | "y" -> -3 | _ -> 0 in
      let a = try Some (Expr.eval lookup e) with Division_by_zero -> None in
      let b = try Some (Expr.eval lookup (Simplify.simplify e)) with Division_by_zero -> None in
      match (a, b) with
      | Some a, Some b -> a = b
      | None, _ -> true (* simplifier may remove a division by zero; fine *)
      | Some _, None -> false)

(* --- Interval --- *)

let test_interval_ops () =
  let open Interval in
  Alcotest.(check bool) "add" true (add (singleton 2) (singleton 3) = singleton 5);
  Alcotest.(check bool) "meet empty" true (meet (singleton 1) (singleton 2) = None);
  (match make 0 10 with
  | Some iv ->
    Alcotest.(check bool) "mem" true (mem 5 iv);
    Alcotest.(check bool) "not mem" false (mem 11 iv)
  | None -> Alcotest.fail "make");
  Alcotest.(check bool) "cmp_lt decided" true (cmp_lt (singleton 1) (singleton 2) = singleton 1)

(* --- Solver --- *)

let test_solver_basic () =
  check_sat "x > 3" [ v "x" >: c 3 ];
  check_unsat "x>3 && x<2" [ v "x" >: c 3; v "x" <: c 2 ];
  check_sat "conj" [ v "x" >: c 0; v "y" >: v "x"; v "y" <: c 10 ];
  check_unsat "eq chain" [ v "x" =: c 5; v "x" =: c 6 ];
  check_sat "disj" [ (v "x" =: c 1) ||: (v "x" =: c 2); v "x" >: c 1 ];
  check_unsat "disj dead" [ (v "x" =: c 1) ||: (v "x" =: c 2); v "x" >: c 2 ]

let test_solver_model () =
  match Solver.solve [ v "x" +: v "y" =: c 10; v "x" -: v "y" =: c 4 ] with
  | Solver.Sat m ->
    let get k = Portend_util.Maps.Smap.find k m in
    Alcotest.(check int) "x" 7 (get "x");
    Alcotest.(check int) "y" 3 (get "y")
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected sat with model"

let test_solver_ranges () =
  let r = Solver.solve ~ranges:[ ("x", 0, 31) ] [ v "x" >: c 30 ] in
  (match r with
  | Solver.Sat m -> Alcotest.(check int) "boundary" 31 (Portend_util.Maps.Smap.find "x" m)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected sat");
  Alcotest.(check bool) "range unsat" false
    (Solver.sat ~ranges:[ ("x", 0, 31) ] [ v "x" >: c 31 ])

let test_solver_nonlinear () =
  check_sat "x*x==49 via split" [ v "x" *: v "x" =: c 49; v "x" >: c 0; v "x" <: c 100 ];
  check_sat "mul const" [ v "x" *: c 3 =: c 21 ]

let test_solver_ite () =
  check_sat "ite" [ Expr.Ite (v "x" >: c 0, v "y" =: c 1, v "y" =: c 2); v "y" =: c 2 ];
  check_unsat "ite dead" [ Expr.Ite (v "x" >: c 0, c 1, c 1) <>: c 1 ]

let test_cache_eviction () =
  (* Flood the memo with distinct queries at a small capacity: entries must
     be displaced (and counted), and a displaced query must re-solve to the
     same answer. *)
  let saved = Solver.memo_cap () in
  Solver.set_memo_cap 64;
  Fun.protect
    ~finally:(fun () -> Solver.set_memo_cap saved)
    (fun () ->
      Solver.reset_stats ();
      for k = 0 to 199 do
        ignore (Solver.solve [ v "x" =: c k ])
      done;
      let s = Solver.stats () in
      Alcotest.(check bool) "evictions counted" true (s.Solver.evictions > 0);
      Alcotest.(check int) "all queries counted" 200 s.Solver.queries;
      match Solver.solve [ v "x" =: c 0 ] with
      | Solver.Sat m -> Alcotest.(check int) "evicted query re-solves" 0 (Portend_util.Maps.Smap.find "x" m)
      | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected sat after eviction")

let test_memo_persistence () =
  (* Export a populated memo table, clear it, import the snapshot: the
     same queries must then be answered from the memo, and the import must
     respect whatever cap is in force — inserting through CLOCK, counting
     evictions — rather than trusting the snapshot's size. *)
  let saved = Solver.memo_cap () in
  Fun.protect
    ~finally:(fun () -> Solver.set_memo_cap saved)
    (fun () ->
      Solver.set_memo_cap 64;
      Solver.clear_caches ();
      Solver.reset_stats ();
      let queries = List.init 40 (fun k -> [ v "x" =: c k ]) in
      let before = List.map Solver.solve queries in
      let snapshot = Solver.export_memos () in
      let n = Solver.memo_export_size snapshot in
      Alcotest.(check bool) "snapshot non-empty" true (n > 0);
      Solver.clear_caches ();
      Alcotest.(check int) "cleared" 0 (Solver.memo_size ());
      Alcotest.(check int) "import under cap inserts all" n (Solver.import_memos snapshot);
      Alcotest.(check int) "table holds the snapshot" n (Solver.memo_size ());
      Solver.reset_stats ();
      let after = List.map Solver.solve queries in
      Alcotest.(check bool) "same results from memo" true (before = after);
      let s = Solver.stats () in
      Alcotest.(check int) "all answered from memo" (List.length queries) s.Solver.cache_hits;
      Alcotest.(check int) "no evictions under cap" 0 s.Solver.evictions;
      (* Re-import over a full table is a no-op, not a duplicate. *)
      Alcotest.(check int) "idempotent import" 0 (Solver.import_memos snapshot);
      (* Shrink the cap below the snapshot: the import must bound the table
         at the cap and account for the displaced entries. *)
      Solver.set_memo_cap 16;
      Solver.clear_caches ();
      Solver.reset_stats ();
      ignore (Solver.import_memos snapshot : int);
      Alcotest.(check bool) "capped import bounded" true (Solver.memo_size () <= 16);
      Alcotest.(check bool) "capped import counts evictions" true
        ((Solver.stats ()).Solver.evictions > 0);
      (* Displaced entries still re-solve to the original answers. *)
      let again = List.map Solver.solve queries in
      Alcotest.(check bool) "answers survive capped reload" true (before = again))

let test_incremental_narrowing () =
  let inc = Solver.inc_start in
  Alcotest.(check bool) "start feasible" true (Solver.inc_feasible inc);
  let inc = Solver.inc_declare inc ("x", 0, 10) in
  let inc = Solver.inc_assume inc (v "x" >: c 3) in
  Alcotest.(check bool) "narrowed still feasible" true (Solver.inc_feasible inc);
  let dead = Solver.inc_assume inc (v "x" <: c 2) in
  Alcotest.(check bool) "contradiction infeasible" false (Solver.inc_feasible dead);
  (* The claim the explorer relies on: an infeasible box proves the full
     solver would also reject the conjunction. *)
  Alcotest.(check bool) "full solver agrees" false
    (Solver.sat ~ranges:[ ("x", 0, 10) ] [ v "x" >: c 3; v "x" <: c 2 ]);
  (* Unconstrained variables never make the box infeasible. *)
  let inc = Solver.inc_declare Solver.inc_start ("y", -5, 5) in
  Alcotest.(check bool) "declare alone feasible" true (Solver.inc_feasible inc)

let test_solver_sound =
  (* Any Sat answer must check out by concrete evaluation. *)
  let gen =
    let open QCheck.Gen in
    let atom =
      let* var = oneofl [ "x"; "y"; "z" ] in
      let* k = map (fun n -> n - 16) (int_bound 32) in
      let* op = oneofl Expr.[ Eq; Ne; Lt; Le; Gt; Ge ] in
      return (Expr.Binop (op, v var, c k))
    in
    list_size (int_range 1 6) atom
  in
  let arb = QCheck.make ~print:(fun cs -> String.concat " & " (List.map Expr.to_string cs)) gen in
  QCheck.Test.make ~name:"solver sat answers are sound" ~count:300 arb (fun cs ->
      match Solver.solve cs with
      | Solver.Sat m -> Solver.check_model m cs
      | Solver.Unsat | Solver.Unknown -> true)

let test_solver_complete_on_intervals =
  (* For pure interval constraints on one variable, decide correctly. *)
  let arb = QCheck.make ~print:(fun (a, b) -> Printf.sprintf "(%d,%d)" a b)
      QCheck.Gen.(pair (int_range (-20) 20) (int_range (-20) 20)) in
  QCheck.Test.make ~name:"solver decides single-var boxes" ~count:300 arb (fun (a, b) ->
      let cs = [ v "x" >: c a; v "x" <: c b ] in
      Solver.sat cs = (b - a > 1))

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ test_simplify_preserves_semantics; test_solver_sound; test_solver_complete_on_intervals ]

let () =
  Alcotest.run "solver"
    [ ( "expr",
        [ Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "subst" `Quick test_subst
        ] );
      ( "simplify",
        [ Alcotest.test_case "folds" `Quick test_simplify_folds ] );
      ( "interval",
        [ Alcotest.test_case "ops" `Quick test_interval_ops ] );
      ( "solver",
        [ Alcotest.test_case "basic" `Quick test_solver_basic;
          Alcotest.test_case "model" `Quick test_solver_model;
          Alcotest.test_case "ranges" `Quick test_solver_ranges;
          Alcotest.test_case "nonlinear" `Quick test_solver_nonlinear;
          Alcotest.test_case "ite" `Quick test_solver_ite;
          Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
          Alcotest.test_case "memo persistence" `Quick test_memo_persistence;
          Alcotest.test_case "incremental narrowing" `Quick test_incremental_narrowing
        ] );
      ("properties", qsuite)
    ]
