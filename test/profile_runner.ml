(* Golden-file driver for the profile-examples alias: profile every example
   program with deterministic settings (jobs=1, seed 1, cold solver cache,
   counts-only rendering) so any change to the pipeline's instrumentation
   shows up as a diff against profile_examples.expected (refresh with
   `dune promote`). *)

module Core = Portend_core

let () =
  let files = List.sort compare (List.tl (Array.to_list Sys.argv)) in
  List.iter
    (fun file ->
      Printf.printf "== %s ==\n" (Filename.basename file);
      let prog = Portend_lang.Parser.compile_file file in
      let config = { Core.Config.default with Core.Config.jobs = 1 } in
      Portend_solver.Solver.clear_caches ();
      let p = Core.Profile.run ~config ~seed:1 prog in
      print_string (Core.Profile.render ~times:false p);
      print_newline ())
    files
