(* Tests for the race detectors: vector clocks, happens-before edges through
   each synchronization primitive, the lockset detector, and clustering. *)

open Portend_lang
open Portend_vm
module D = Portend_detect

let record ?(seed = 1) p =
  let prog = Compile.compile p in
  let r = Run.run ~sched:(Sched.random ~seed) (State.init prog) in
  (prog, r)

let distinct_races ?suppress events = List.length (D.Hb.detect_clustered ?suppress events)

(* --- vector clocks --- *)

let test_vclock_basic () =
  let open D.Vclock in
  let a = tick 0 empty in
  let b = tick 1 empty in
  Alcotest.(check bool) "a <= a" true (leq a a);
  Alcotest.(check bool) "a not<= b" false (leq a b);
  let j = join a b in
  Alcotest.(check bool) "a <= join" true (leq a j);
  Alcotest.(check bool) "b <= join" true (leq b j);
  Alcotest.(check int) "get" 1 (get 0 j);
  Alcotest.(check int) "get absent" 0 (get 9 j)

let test_vclock_props =
  let gen =
    QCheck.Gen.(list_size (int_bound 12) (pair (int_bound 4) (int_bound 4)))
  in
  let arb = QCheck.make gen in
  (* build clocks by folding ticks/joins; leq must be a partial order wrt join *)
  QCheck.Test.make ~name:"vclock join is lub" ~count:300 arb (fun ops ->
      let open D.Vclock in
      let a, b =
        List.fold_left
          (fun (a, b) (tid, sel) -> if sel mod 2 = 0 then (tick tid a, b) else (a, tick tid b))
          (empty, empty) ops
      in
      let j = join a b in
      leq a j && leq b j && leq (join a a) a)

(* --- happens-before edges --- *)

let open' = ()

let test_hb_mutex_orders () =
  (* properly locked increments: no race *)
  let open Builder in
  let _, r =
    record
      (program "p" ~globals:[ ("x", 0) ] ~mutexes:[ "m" ]
         [ func "w" [] (critical "m" [ incr_global "x" ]);
           func "main" []
             [ spawn ~into:"a" "w" []; spawn ~into:"b" "w" []; join (l "a"); join (l "b") ]
         ])
  in
  Alcotest.(check int) "no race" 0 (distinct_races r.Run.events)

let test_hb_join_orders () =
  let open Builder in
  let _, r =
    record
      (program "p" ~globals:[ ("x", 0) ]
         [ func "w" [] [ setg "x" (i 1) ];
           func "main" [] [ spawn ~into:"a" "w" []; join (l "a"); output [ g "x" ] ]
         ])
  in
  Alcotest.(check int) "join orders main's read" 0 (distinct_races r.Run.events)

let test_hb_spawn_orders () =
  let open Builder in
  let _, r =
    record
      (program "p" ~globals:[ ("x", 0) ]
         [ func "w" [] [ output [ g "x" ] ];
           func "main" [] [ setg "x" (i 1); spawn ~into:"a" "w" []; join (l "a") ]
         ])
  in
  Alcotest.(check int) "spawn orders child's read" 0 (distinct_races r.Run.events)

let test_hb_condvar_orders () =
  let open Builder in
  let p =
    program "p" ~globals:[ ("x", 0); ("ready", 0) ] ~mutexes:[ "m" ] ~conds:[ "c" ]
      [ func "prod" [] [ setg "x" (i 42); lock "m"; setg "ready" (i 1); signal "c"; unlock "m" ];
        func "cons" []
          [ lock "m";
            while_ (g "ready" == i 0) [ wait "c" "m" ];
            unlock "m";
            output [ g "x" ]
          ];
        func "main" []
          [ spawn ~into:"a" "cons" []; spawn ~into:"b" "prod" []; join (l "a"); join (l "b") ]
      ]
  in
  (* under several schedules the signal edge orders the read of x *)
  List.iter
    (fun seed ->
      let _, r = record ~seed p in
      Alcotest.(check int) "condvar orders" 0 (distinct_races r.Run.events))
    [ 1; 2; 5; 9 ]

let test_hb_barrier_orders () =
  let open Builder in
  let p =
    program "p" ~globals:[ ("x", 0) ] ~barriers:[ ("b", 2) ]
      [ func "w" [] [ setg "x" (i 7); barrier "b" ];
        func "r" [] [ barrier "b"; output [ g "x" ] ];
        func "main" []
          [ spawn ~into:"a" "w" []; spawn ~into:"c" "r" []; join (l "a"); join (l "c") ]
      ]
  in
  List.iter
    (fun seed ->
      let _, r = record ~seed p in
      Alcotest.(check int) "barrier orders" 0 (distinct_races r.Run.events))
    [ 1; 3; 7 ]

let test_hb_sem_orders () =
  let open Builder in
  let p =
    program "p" ~globals:[ ("x", 0) ] ~sems:[ ("s", 0) ]
      [ func "prod" [] [ setg "x" (i 42); sem_post "s" ];
        func "cons" [] [ sem_wait "s"; output [ g "x" ] ];
        func "main" []
          [ spawn ~into:"a" "cons" []; spawn ~into:"b" "prod" []; join (l "a"); join (l "b") ]
      ]
  in
  List.iter
    (fun seed ->
      let _, r = record ~seed p in
      Alcotest.(check int) "post->wait orders" 0 (distinct_races r.Run.events))
    [ 1; 2; 6; 8 ]

let test_hb_atomic_orders () =
  let open Builder in
  (* unprotected RMWs race; the same RMWs inside atomic regions are ordered
     by the end->begin edge, like critical sections of one global mutex *)
  let p =
    program "p" ~globals:[ ("n", 0) ]
      [ func "w" [] [ atomic [ setg "n" (g "n" + i 1) ] ];
        func "main" []
          [ spawn ~into:"a" "w" []; spawn ~into:"b" "w" []; join (l "a"); join (l "b") ]
      ]
  in
  List.iter
    (fun seed ->
      let _, r = record ~seed p in
      Alcotest.(check int) "atomic regions exclude" 0 (distinct_races r.Run.events))
    [ 1; 4; 7 ]

let test_hb_detects_unordered () =
  let open Builder in
  let _, r =
    record
      (program "p" ~globals:[ ("x", 0) ]
         [ func "w" [] [ setg "x" (i 1) ];
           func "r" [] [ output [ g "x" ] ];
           func "main" []
             [ spawn ~into:"a" "w" []; spawn ~into:"b" "r" []; join (l "a"); join (l "b") ]
         ])
  in
  Alcotest.(check int) "one distinct race" 1 (distinct_races r.Run.events)

let test_spin_suppression () =
  let open Builder in
  let prog, r =
    record
      (program "p" ~globals:[ ("flag", 0); ("data", 0) ]
         [ func "prod" [] [ setg "data" (i 9); setg "flag" (i 1) ];
           func "cons" [] [ while_ (g "flag" == i 0) [ yield ]; output [ g "data" ] ];
           func "main" []
             [ spawn ~into:"a" "cons" []; spawn ~into:"b" "prod" []; join (l "a"); join (l "b") ]
         ])
  in
  let suppress = Static.spin_read_sites prog in
  (* without suppression both flag and data race; with it, only data *)
  Alcotest.(check int) "raw: two races" 2 (distinct_races r.Run.events);
  let races = D.Hb.detect_clustered ~suppress r.Run.events in
  Alcotest.(check int) "suppressed: one race" 1 (List.length races);
  match races with
  | [ ({ D.Report.r_loc = Events.Lglobal "data"; _ }, _) ] -> ()
  | _ -> Alcotest.fail "expected the data race to remain"

(* --- lockset --- *)

let test_lockset () =
  let open Builder in
  let prog =
    program "p" ~globals:[ ("x", 0) ] ~mutexes:[ "m" ]
      [ func "w" [] (critical "m" [ incr_global "x" ]);
        func "main" []
          [ spawn ~into:"a" "w" []; spawn ~into:"b" "w" []; join (l "a"); join (l "b") ]
      ]
  in
  let _, r = record prog in
  Alcotest.(check int) "lockset: protected, no report" 0
    (List.length (D.Lockset.detect r.Run.events));
  Alcotest.(check bool) "mutex-blind: reports appear" true
    Stdlib.(List.length (D.Lockset.detect ~ignore_mutexes:true r.Run.events) > 0)

(* --- report ordering and clustering --- *)

let test_race_pair_order () =
  let open Builder in
  let _, r =
    record
      (program "p" ~globals:[ ("x", 0) ]
         [ func "w" [] [ setg "x" (i 1) ];
           func "r" [] [ output [ g "x" ] ];
           func "main" []
             [ spawn ~into:"a" "w" []; spawn ~into:"b" "r" []; join (l "a"); join (l "b") ]
         ])
  in
  List.iter
    (fun race ->
      Alcotest.(check bool) "first access is earlier" true
        Stdlib.(race.D.Report.first.D.Report.a_step <= race.D.Report.second.D.Report.a_step))
    (D.Hb.detect r.Run.events)

let qsuite = List.map QCheck_alcotest.to_alcotest [ test_vclock_props ]

let () =
  ignore open';
  Alcotest.run "detect"
    [ ( "vclock",
        Alcotest.test_case "basics" `Quick test_vclock_basic :: qsuite );
      ( "happens-before",
        [ Alcotest.test_case "mutex orders" `Quick test_hb_mutex_orders;
          Alcotest.test_case "join orders" `Quick test_hb_join_orders;
          Alcotest.test_case "spawn orders" `Quick test_hb_spawn_orders;
          Alcotest.test_case "condvar orders" `Quick test_hb_condvar_orders;
          Alcotest.test_case "barrier orders" `Quick test_hb_barrier_orders;
          Alcotest.test_case "sem post->wait orders" `Quick test_hb_sem_orders;
          Alcotest.test_case "atomic regions order" `Quick test_hb_atomic_orders;
          Alcotest.test_case "unordered detected" `Quick test_hb_detects_unordered;
          Alcotest.test_case "spin reads suppressed" `Quick test_spin_suppression
        ] );
      ("lockset", [ Alcotest.test_case "eraser" `Quick test_lockset ]);
      ("reports", [ Alcotest.test_case "pair order" `Quick test_race_pair_order ])
    ]
