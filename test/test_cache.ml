(* Tests for the persistent on-disk cache: the store itself (roundtrip,
   corruption tolerance, version skew, eviction) and its integration with
   the pipeline (cache off / cold / warm bit-identity, self-healing on
   corrupt entries, partial invalidation of static summaries). *)

open Portend_core
open Portend_workloads
module Store = Portend_cache.Store
module Solver = Portend_solver.Solver
module Lang = Portend_lang

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let dir_counter = ref 0

(* A fresh store directory per test, removed afterwards. *)
let with_dir (f : string -> unit) () =
  incr dir_counter;
  let dir = Printf.sprintf "_t_cache_%d" !dir_counter in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let verdict_tier_stats () = Store.tier_stats Store.Verdicts

(* --- the store ------------------------------------------------------ *)

let test_roundtrip dir =
  let st = Store.open_store dir in
  Store.put st Store.Verdicts ~key:"k1" (42, "payload");
  Alcotest.(check (option (pair int string))) "typed roundtrip" (Some (42, "payload"))
    (Store.get st Store.Verdicts ~key:"k1");
  Alcotest.(check (option (pair int string))) "absent key" None
    (Store.get st Store.Verdicts ~key:"k2");
  Alcotest.(check (option (pair int string))) "tiers are disjoint" None
    (Store.get st Store.Summaries ~key:"k1");
  (* A second handle on the same directory sees the same entries. *)
  let st2 = Store.open_store dir in
  Alcotest.(check (option (pair int string))) "second handle" (Some (42, "payload"))
    (Store.get st2 Store.Verdicts ~key:"k1");
  (* Keys with characters unfit for filenames still roundtrip. *)
  Store.put st Store.Verdicts ~key:"a/b:c d" "odd";
  Alcotest.(check (option string)) "sanitized key" (Some "odd")
    (Store.get st Store.Verdicts ~key:"a/b:c d")

let test_corruption dir =
  let st = Store.open_store dir in
  Store.put st Store.Verdicts ~key:"victim" [ 1; 2; 3 ];
  let path = Store.entry_path st Store.Verdicts "victim" in
  (* Truncate the entry mid-marshal. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full / 2)));
  Store.reset_stats ();
  Alcotest.(check (option (list int))) "truncated entry is a miss" None
    (Store.get st Store.Verdicts ~key:"victim");
  Alcotest.(check int) "miss counted" 1 (verdict_tier_stats ()).Store.misses;
  Alcotest.(check bool) "corrupt file self-healed (unlinked)" false (Sys.file_exists path);
  (* Plain garbage bytes. *)
  Store.put st Store.Verdicts ~key:"victim" [ 1; 2; 3 ];
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not marshal data");
  Alcotest.(check (option (list int))) "garbage entry is a miss" None
    (Store.get st Store.Verdicts ~key:"victim");
  (* An entry copied to the wrong key name fails the key echo. *)
  Store.put st Store.Verdicts ~key:"original" "content";
  let src = Store.entry_path st Store.Verdicts "original" in
  let dst = Store.entry_path st Store.Verdicts "impostor" in
  Out_channel.with_open_bin dst (fun oc ->
      Out_channel.output_string oc (In_channel.with_open_bin src In_channel.input_all));
  Alcotest.(check (option string)) "key echo rejects renamed entry" None
    (Store.get st Store.Verdicts ~key:"impostor");
  (* Stray tmp litter (a writer that died mid-put) bothers nobody. *)
  Out_channel.with_open_bin
    (Filename.concat (Filename.dirname src) "x.bin.tmp.999.0")
    (fun oc -> Out_channel.output_string oc "half-written");
  Alcotest.(check (option string)) "litter tolerated" (Some "content")
    (Store.get st Store.Verdicts ~key:"original")

let test_version_skew dir =
  let st = Store.open_store dir in
  Store.put st Store.Verdicts ~key:"k" "old-format";
  (* A format bump looks in v<N+1>/, so every old entry is a miss... *)
  let bumped = Store.open_store ~version:(Store.format_version + 1) dir in
  Alcotest.(check (option string)) "bumped version misses" None
    (Store.get bumped Store.Verdicts ~key:"k");
  (* ...and the old version's entries are untouched (no cross-version
     clobbering), so a rollback still hits. *)
  Alcotest.(check (option string)) "old version still hits" (Some "old-format")
    (Store.get st Store.Verdicts ~key:"k");
  Store.put bumped Store.Verdicts ~key:"k" "new-format";
  Alcotest.(check (option string)) "versions are disjoint" (Some "old-format")
    (Store.get st Store.Verdicts ~key:"k")

let test_eviction dir =
  let st = Store.open_store ~max_entries:4 dir in
  Store.reset_stats ();
  for i = 1 to 10 do
    Store.put st Store.Verdicts ~key:(Printf.sprintf "k%d" i) i
  done;
  Alcotest.(check int) "entry count bounded" 4 (Store.entry_count st Store.Verdicts);
  Alcotest.(check int) "evictions counted" 6 (verdict_tier_stats ()).Store.evictions;
  (* Exactly the cap's worth of entries remain readable, and each one
     still roundtrips to the value that was stored under it.  (Which four
     survive depends on mtime ordering, whose granularity is filesystem-
     dependent, so the test doesn't pin the survivors.) *)
  let survivors =
    List.filter_map
      (fun i -> (Store.get st Store.Verdicts ~key:(Printf.sprintf "k%d" i) : int option))
      (List.init 10 (fun i -> i + 1))
  in
  Alcotest.(check int) "cap's worth of survivors" 4 (List.length survivors);
  Alcotest.(check bool) "survivors intact" true
    (List.for_all (fun v -> v >= 1 && v <= 10) survivors);
  Store.clear st;
  Alcotest.(check int) "clear empties the tier" 0 (Store.entry_count st Store.Verdicts);
  Alcotest.(check (option int)) "cleared entry misses" None (Store.get st Store.Verdicts ~key:"k10")

(* --- pipeline integration ------------------------------------------- *)

let workload name =
  match Suite.find name with Some w -> w | None -> Alcotest.failf "no %s workload" name

(* Everything observable about an analysis except wall-clock times. *)
let fingerprint (a : Pipeline.t) =
  ( List.map
      (fun ra ->
        ( Fmt.str "%a" Portend_detect.Report.pp_race ra.Pipeline.race,
          ra.Pipeline.instances,
          ra.Pipeline.verdict,
          ra.Pipeline.evidence,
          ra.Pipeline.stats ))
      a.Pipeline.races,
    List.map (fun (r, e) -> (Fmt.str "%a" Portend_detect.Report.pp_race r, e)) a.Pipeline.errors )

let analyze ~config (w : Registry.workload) =
  Solver.clear_caches ();
  Pipeline.analyze ~config ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs
    (Lang.Compile.compile w.Registry.w_prog)

let test_pipeline_identity dir =
  let w = workload "RW" in
  let base = { Config.default with Config.jobs = 1; static_prefilter = true } in
  let cached = { base with Config.cache = true; cache_dir = dir } in
  let off = analyze ~config:base w in
  Store.reset_stats ();
  let cold = analyze ~config:cached w in
  Alcotest.(check int) "cold run wrote a verdict" 1 (verdict_tier_stats ()).Store.writes;
  Store.reset_stats ();
  let warm = analyze ~config:cached w in
  Alcotest.(check int) "warm run hit" 1 (verdict_tier_stats ()).Store.hits;
  Alcotest.(check bool) "off = cold" true (fingerprint off = fingerprint cold);
  Alcotest.(check bool) "off = warm" true (fingerprint off = fingerprint warm);
  (* A different seed is a different trace, hence a different key. *)
  Store.reset_stats ();
  let reseeded = analyze ~config:cached { w with Registry.w_seed = w.Registry.w_seed + 77 } in
  Alcotest.(check int) "reseeded run missed" 0 (verdict_tier_stats ()).Store.hits;
  ignore reseeded;
  (* A different config is a different key even on the same trace. *)
  Store.reset_stats ();
  ignore (analyze ~config:{ cached with Config.mp = cached.Config.mp + 1 } w);
  Alcotest.(check int) "config change missed" 0 (verdict_tier_stats ()).Store.hits

let test_pipeline_corruption dir =
  let w = workload "ctrace" in
  let config =
    { Config.default with Config.jobs = 1; Config.cache = true; cache_dir = dir }
  in
  let cold = analyze ~config w in
  (* Corrupt every verdict entry on disk; the next run must silently
     recompute the same answer and heal the store. *)
  let st = match Pcache.store_of config with Some st -> st | None -> assert false in
  let tier_dir = Filename.dirname (Store.entry_path st Store.Verdicts "probe") in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".bin" then
        Out_channel.with_open_bin (Filename.concat tier_dir name) (fun oc ->
            Out_channel.output_string oc "scribble"))
    (Sys.readdir tier_dir);
  Store.reset_stats ();
  let healed = analyze ~config w in
  Alcotest.(check bool) "corrupt entry recomputed identically" true
    (fingerprint cold = fingerprint healed);
  Alcotest.(check int) "corruption was a miss" 0 (verdict_tier_stats ()).Store.hits;
  Alcotest.(check int) "healed entry rewritten" 1 (verdict_tier_stats ()).Store.writes;
  Store.reset_stats ();
  ignore (analyze ~config w);
  Alcotest.(check int) "healed entry hits again" 1 (verdict_tier_stats ()).Store.hits

let test_summaries_invalidation dir =
  let st = Store.open_store dir in
  let w = workload "sqlite" in
  let prog = Lang.Compile.compile w.Registry.w_prog in
  let cold = Portend_analysis.Static_report.analyze_cached ~store:st prog in
  Store.reset_stats ();
  let warm = Portend_analysis.Static_report.analyze_cached ~store:st prog in
  let s = Store.tier_stats Store.Summaries in
  Alcotest.(check bool) "warm summaries all hit" true (s.Store.hits > 0 && s.Store.misses = 0);
  Alcotest.(check bool) "summaries identical" true (cold = warm);
  (* Touch one function body: its summary (and its dependents') must be
     recomputed, everything independent of it must still hit. *)
  let touched =
    { w.Registry.w_prog with
      Lang.Ast.funcs =
        List.map
          (fun (f : Lang.Ast.func) ->
            if f.Lang.Ast.fname = "checkpointer" then
              { f with Lang.Ast.body = Lang.Ast.Yield :: f.Lang.Ast.body }
            else f)
          w.Registry.w_prog.Lang.Ast.funcs
    }
  in
  Store.reset_stats ();
  ignore (Portend_analysis.Static_report.analyze_cached ~store:st (Lang.Compile.compile touched));
  let s = Store.tier_stats Store.Summaries in
  Alcotest.(check bool) "touched function recomputed" true (s.Store.misses > 0);
  Alcotest.(check bool) "untouched functions reused" true (s.Store.hits > 0)

let test_solver_memo_bracket dir =
  let config =
    { Config.default with Config.jobs = 1; Config.cache = true; cache_dir = dir }
  in
  let queries =
    List.init 10 (fun k ->
        [ Portend_solver.Expr.(Binop (Eq, Var "x", Const k)) ])
  in
  Solver.clear_caches ();
  let first =
    Pcache.with_solver_memos config (fun () -> List.map Solver.solve queries)
  in
  (* Fresh process simulated: empty in-memory table, snapshot on disk. *)
  Solver.clear_caches ();
  Solver.reset_stats ();
  let second =
    Pcache.with_solver_memos config (fun () -> List.map Solver.solve queries)
  in
  Alcotest.(check bool) "same answers" true (first = second);
  Alcotest.(check bool) "answered from the imported snapshot" true
    ((Solver.stats ()).Solver.cache_hits >= List.length queries)

let () =
  Alcotest.run "cache"
    [ ( "store",
        [ Alcotest.test_case "roundtrip" `Quick (with_dir test_roundtrip);
          Alcotest.test_case "corruption tolerance" `Quick (with_dir test_corruption);
          Alcotest.test_case "version skew" `Quick (with_dir test_version_skew);
          Alcotest.test_case "eviction" `Quick (with_dir test_eviction)
        ] );
      ( "pipeline",
        [ Alcotest.test_case "off = cold = warm" `Quick (with_dir test_pipeline_identity);
          Alcotest.test_case "corrupt entries self-heal" `Quick (with_dir test_pipeline_corruption);
          Alcotest.test_case "summary invalidation is per-function" `Quick
            (with_dir test_summaries_invalidation);
          Alcotest.test_case "solver memo snapshot" `Quick (with_dir test_solver_memo_bracket)
        ] )
    ]
