(* End-to-end tests of the VM: interpreter semantics, scheduling, blocking
   primitives, record/replay, crashes, and symbolic forking. *)

open Portend_lang
open Portend_vm

let compile = Compile.compile

(* A two-thread counter program: main spawns two workers that each increment
   the (racy) global [count] n times without a lock, then outputs it. *)
let counter_racy n =
  let open Builder in
  program "counter" ~globals:[ ("count", 0) ]
    [ func "worker" [ "n" ]
        [ var "i" (i 0);
          while_ (l "i" < l "n") [ incr_global "count"; set "i" (l "i" + i 1) ]
        ];
      func "main" []
        [ spawn ~into:"t1" "worker" [ i n ];
          spawn ~into:"t2" "worker" [ i n ];
          join (l "t1");
          join (l "t2");
          output [ g "count" ]
        ]
    ]

let counter_locked n =
  let open Builder in
  program "counter_locked" ~globals:[ ("count", 0) ] ~mutexes:[ "m" ]
    [ func "worker" [ "n" ]
        [ var "i" (i 0);
          while_ (l "i" < l "n")
            (critical "m" [ incr_global "count" ] @ [ set "i" (l "i" + i 1) ])
        ];
      func "main" []
        [ spawn ~into:"t1" "worker" [ i n ];
          spawn ~into:"t2" "worker" [ i n ];
          join (l "t1");
          join (l "t2");
          output [ g "count" ]
        ]
    ]

let first_output_int (st : State.t) =
  match State.outputs st with
  | { State.payload = State.Vals [ Value.Con n ]; _ } :: _ -> n
  | _ -> Alcotest.fail "expected one integer output"

let run_prog ?(sched = Sched.round_robin) ?input_mode ?budget p =
  Run.run ~sched ?budget (State.init ?input_mode (compile p))

let check_stop msg expected (r : Run.result) =
  Alcotest.(check string) msg expected (Run.stop_to_string r.Run.stop)

(* --- basic semantics --- *)

let test_sequential_counter () =
  (* With a lock, the final count is always 2n regardless of scheduler. *)
  let r = run_prog (counter_locked 10) in
  check_stop "halted" "halted" r;
  Alcotest.(check int) "count" 20 (first_output_int r.Run.final);
  let r2 = run_prog ~sched:(Sched.random ~seed:42) (counter_locked 10) in
  Alcotest.(check int) "count random sched" 20 (first_output_int r2.Run.final)

let test_racy_counter_lost_update () =
  (* Some interleaving loses updates: search seeds until we see < 2n. *)
  let rec search seed =
    if seed > 500 then Alcotest.fail "no lost update found in 500 seeds"
    else
      let r = run_prog ~sched:(Sched.random ~seed) (counter_racy 10) in
      let n = first_output_int r.Run.final in
      if n < 20 then n else search (seed + 1)
  in
  let lost = search 0 in
  Alcotest.(check bool) "lost updates" true (lost < 20)

let test_arith_and_control () =
  let open Builder in
  let p =
    program "arith" ~globals:[ ("acc", 0) ]
      [ func "main" []
          [ var "x" (i 7);
            var "y" (l "x" * i 3 - i 1);
            if_ (l "y" > i 10) [ setg "acc" (l "y" % i 7) ] [ setg "acc" (i 0 - i 1) ];
            var "z" (cond (g "acc" == i 6) (i 100) (i 200));
            output [ l "z"; g "acc" ]
          ]
      ]
  in
  let r = run_prog p in
  check_stop "halted" "halted" r;
  match State.outputs r.Run.final with
  | [ { State.payload = State.Vals [ Value.Con a; Value.Con b ]; _ } ] ->
    Alcotest.(check (pair int int)) "vals" (100, 6) (a, b)
  | _ -> Alcotest.fail "unexpected outputs"

let test_function_calls () =
  let open Builder in
  let p =
    program "calls" ~globals:[ ("r", 0) ]
      [ func "square" [ "x" ] [ return ~value:(l "x" * l "x") () ];
        func "main" []
          [ call ~into:"a" "square" [ i 5 ];
            call ~into:"b" "square" [ l "a" ];
            setg "r" (l "b");
            output [ g "r" ]
          ]
      ]
  in
  let r = run_prog p in
  Alcotest.(check int) "625" 625 (first_output_int r.Run.final)

(* --- blocking primitives --- *)

let test_condvar_handoff () =
  let open Builder in
  (* Producer sets data under the lock and signals; consumer waits. *)
  let p =
    program "cv" ~globals:[ ("data", 0); ("ready", 0) ] ~mutexes:[ "m" ] ~conds:[ "c" ]
      [ func "producer" []
          (critical "m" [ setg "data" (i 42); setg "ready" (i 1); signal "c" ]);
        func "consumer" []
          [ lock "m";
            while_ (g "ready" == i 0) [ wait "c" "m" ];
            output [ g "data" ];
            unlock "m"
          ];
        func "main" []
          [ spawn ~into:"t1" "consumer" [];
            spawn ~into:"t2" "producer" [];
            join (l "t1");
            join (l "t2")
          ]
      ]
  in
  (* Try both orders: consumer first (must wait) and producer first. *)
  List.iter
    (fun seed ->
      let r = run_prog ~sched:(Sched.random ~seed) p in
      check_stop "halted" "halted" r;
      Alcotest.(check int) "42" 42 (first_output_int r.Run.final))
    [ 0; 1; 2; 3; 11; 17 ]

let test_barrier () =
  let open Builder in
  let p =
    program "bar" ~globals:[ ("sum", 0) ] ~mutexes:[ "m" ] ~barriers:[ ("b", 3) ]
      [ func "w" [ "k" ]
          (critical "m" [ setg "sum" (g "sum" + l "k") ]
          @ [ barrier "b"; output [ g "sum" ] ]);
        func "main" []
          [ spawn ~into:"t1" "w" [ i 1 ];
            spawn ~into:"t2" "w" [ i 2 ];
            spawn ~into:"t3" "w" [ i 4 ];
            join (l "t1"); join (l "t2"); join (l "t3")
          ]
      ]
  in
  List.iter
    (fun seed ->
      let r = run_prog ~sched:(Sched.random ~seed) p in
      check_stop "halted" "halted" r;
      (* All three outputs happen after the barrier, so all see sum = 7. *)
      List.iter
        (fun o ->
          match o.State.payload with
          | State.Vals [ Value.Con n ] -> Alcotest.(check int) "post-barrier sum" 7 n
          | _ -> Alcotest.fail "bad output")
        (State.outputs r.Run.final))
    [ 0; 5; 9 ]

let test_semaphore () =
  let open Builder in
  (* handoff: the consumer's wait on a 0-initialized semaphore blocks until
     the producer posts, so the consumed value is always the produced one *)
  let p =
    program "sem" ~globals:[ ("x", 0) ] ~sems:[ ("s", 0) ]
      [ func "producer" [] [ setg "x" (i 42); sem_post "s" ];
        func "consumer" [] [ sem_wait "s"; output [ g "x" ] ];
        func "main" []
          [ spawn ~into:"c" "consumer" [];
            spawn ~into:"p" "producer" [];
            join (l "c"); join (l "p")
          ]
      ]
  in
  List.iter
    (fun seed ->
      let r = run_prog ~sched:(Sched.random ~seed) p in
      check_stop "halted" "halted" r;
      Alcotest.(check int) "handoff value" 42 (first_output_int r.Run.final))
    [ 0; 1; 4; 8; 13 ];
  (* counting: two tokens admit both waiters without any post *)
  let counting =
    program "sem2" ~sems:[ ("s", 2) ]
      [ func "w" [] [ sem_wait "s" ];
        func "main" []
          [ spawn ~into:"a" "w" []; spawn ~into:"b" "w" []; join (l "a"); join (l "b") ]
      ]
  in
  List.iter
    (fun seed -> check_stop "halted" "halted" (run_prog ~sched:(Sched.random ~seed) counting))
    [ 0; 3; 6 ]

let test_atomic_region () =
  let open Builder in
  (* the read-modify-write races without the region; inside it no other
     thread runs, so the count is exact under every schedule *)
  let p =
    program "atom" ~globals:[ ("n", 0) ]
      [ func "w" [] [ atomic [ setg "n" (g "n" + i 1) ] ];
        func "main" []
          [ spawn ~into:"a" "w" [];
            spawn ~into:"b" "w" [];
            spawn ~into:"c" "w" [];
            join (l "a"); join (l "b"); join (l "c");
            output [ g "n" ]
          ]
      ]
  in
  List.iter
    (fun seed ->
      let r = run_prog ~sched:(Sched.random ~seed) p in
      check_stop "halted" "halted" r;
      Alcotest.(check int) "atomic increments" 3 (first_output_int r.Run.final))
    [ 0; 1; 2; 5; 7; 11 ]

let test_deadlock_detected () =
  let open Builder in
  let p =
    program "dl" ~mutexes:[ "a"; "b" ]
      [ func "t1" [] [ lock "a"; yield; lock "b"; unlock "b"; unlock "a" ];
        func "t2" [] [ lock "b"; yield; lock "a"; unlock "a"; unlock "b" ];
        func "main" []
          [ spawn ~into:"x" "t1" []; spawn ~into:"y" "t2" []; join (l "x"); join (l "y") ]
      ]
  in
  (* Find a seed that interleaves into the deadlock. *)
  let deadlocked =
    List.exists
      (fun seed ->
        match (run_prog ~sched:(Sched.random ~seed) p).Run.stop with
        | Run.Deadlocked _ -> true
        | _ -> false)
      (List.init 100 (fun s -> s))
  in
  Alcotest.(check bool) "deadlock reachable" true deadlocked

(* --- crashes --- *)

let test_crashes () =
  let open Builder in
  let oob =
    program "oob" ~arrays:[ ("a", 4, 0) ]
      [ func "main" [] [ seta "a" (i 9) (i 1) ] ]
  in
  (match (run_prog oob).Run.stop with
  | Run.Crashed (Crash.Out_of_bounds { index = 9; len = 4; _ }) -> ()
  | s -> Alcotest.failf "expected OOB crash, got %s" (Run.stop_to_string s));
  let div0 =
    program "div0" ~globals:[ ("z", 0) ]
      [ func "main" [] [ var "x" (i 4 / g "z"); output [ l "x" ] ] ]
  in
  (match (run_prog div0).Run.stop with
  | Run.Crashed Crash.Division_by_zero -> ()
  | s -> Alcotest.failf "expected div0, got %s" (Run.stop_to_string s));
  let dfree =
    program "dfree" ~arrays:[ ("a", 4, 0) ]
      [ func "main" [] [ free "a"; free "a" ] ]
  in
  (match (run_prog dfree).Run.stop with
  | Run.Crashed (Crash.Double_free "a") -> ()
  | s -> Alcotest.failf "expected double free, got %s" (Run.stop_to_string s));
  let uaf =
    program "uaf" ~arrays:[ ("a", 4, 0) ]
      [ func "main" [] [ free "a"; output [ arr "a" (i 0) ] ] ]
  in
  (match (run_prog uaf).Run.stop with
  | Run.Crashed (Crash.Use_after_free "a") -> ()
  | s -> Alcotest.failf "expected UAF, got %s" (Run.stop_to_string s));
  let asrt =
    program "asrt" ~globals:[ ("x", 3) ]
      [ func "main" [] [ assert_ (g "x" > i 5) "x must exceed 5" ] ]
  in
  match (run_prog asrt).Run.stop with
  | Run.Crashed (Crash.Assertion_failure _) -> ()
  | s -> Alcotest.failf "expected assert, got %s" (Run.stop_to_string s)

(* --- record / replay --- *)

let test_record_replay_deterministic () =
  let p = counter_racy 5 in
  let r1 = run_prog ~sched:(Sched.random ~seed:7) p in
  let out1 = first_output_int r1.Run.final in
  (* Replaying the recorded decisions must reproduce the exact output. *)
  let replay = Sched.of_decisions (Trace.decisions r1.Run.trace) in
  let r2 = run_prog ~sched:replay p in
  check_stop "replay halted" "halted" r2;
  Alcotest.(check int) "same output" out1 (first_output_int r2.Run.final);
  Alcotest.(check int) "same steps" r1.Run.final.State.steps r2.Run.final.State.steps

let test_trace_roundtrip () =
  let p = counter_racy 3 in
  let r = run_prog ~sched:(Sched.random ~seed:3) p in
  let s = Trace.to_string r.Run.trace in
  let t = Trace.of_string s in
  Alcotest.(check (list int)) "decisions survive" (Trace.decisions r.Run.trace) (Trace.decisions t)

(* --- symbolic execution --- *)

let sym_prog =
  let open Builder in
  program "sym" ~globals:[ ("out", 0) ]
    [ func "main" []
        [ input "x" ~name:"x" ~lo:0 ~hi:100;
          if_ (l "x" > i 50) [ setg "out" (i 1) ] [ setg "out" (i 2) ];
          output [ g "out" ]
        ]
    ]

let test_symbolic_fork () =
  (* Under symbolic inputs a run stops at the fork (Run is a concrete
     driver); slicing manually must yield two branches. *)
  let st = State.init ~input_mode:State.Symbolic (compile sym_prog) in
  let r = Run.run ~sched:Sched.round_robin st in
  (match r.Run.stop with
  | Run.Forked -> ()
  | s -> Alcotest.failf "expected fork stop, got %s" (Run.stop_to_string s));
  (* Drive slices by hand and count completed paths. *)
  let rec explore st =
    match State.runnable st with
    | [] -> [ st ]
    | tid :: _ ->
      List.concat_map
        (fun sl ->
          match sl.Run.s_end with
          | Run.End_crashed _ -> [ sl.Run.s_state ]
          | Run.End_decision | Run.End_paused -> explore sl.Run.s_state)
        (Run.slice st tid)
  in
  let finals = explore st in
  Alcotest.(check int) "two paths" 2 (List.length finals);
  let outs =
    List.map
      (fun st ->
        match State.outputs st with
        | [ { State.payload = State.Vals [ Value.Con n ]; _ } ] -> n
        | _ -> -1)
      finals
    |> List.sort compare
  in
  Alcotest.(check (list int)) "outputs 1 and 2" [ 1; 2 ] outs;
  (* Each final state's path condition must be satisfiable. *)
  List.iter
    (fun (st : State.t) ->
      Alcotest.(check bool) "path sat" true
        (Portend_solver.Solver.sat ~ranges:st.State.input_ranges st.State.path_cond))
    finals

let test_concrete_inputs_from_model () =
  let model = Portend_util.Maps.Smap.of_list [ ("x", 77) ] in
  let st = State.init ~input_mode:(State.Concrete model) (compile sym_prog) in
  let r = Run.run ~sched:Sched.round_robin st in
  check_stop "halted" "halted" r;
  Alcotest.(check int) "took >50 branch" 1 (first_output_int r.Run.final)


(* --- extended features: memory models, mixed inputs, schedulers, traces --- *)

let test_adversarial_memory_stale_reads () =
  (* writer stores 1 then 2; under adversarial memory a later read may
     observe the overwritten 1 (or the initial 0), under SC only 2 *)
  let open Builder in
  let p =
    compile
      (program "am" ~globals:[ ("x", 0) ]
         [ func "w" [] [ setg "x" (i 1); setg "x" (i 2) ];
           func "main" [] [ spawn ~into:"t" "w" []; join (l "t"); output [ g "x" ] ]
         ])
  in
  let explore memory_model =
    let rec go st acc =
      match State.runnable st with
      | [] -> State.outputs st :: acc
      | tid :: _ ->
        List.fold_left
          (fun acc sl ->
            match sl.Run.s_end with
            | Run.End_crashed _ -> acc
            | Run.End_decision | Run.End_paused -> go sl.Run.s_state acc)
          acc (Run.slice st tid)
    in
    go (State.init ~memory_model p) []
    |> List.concat_map (fun outs ->
           List.concat_map
             (fun o ->
               match o.State.payload with
               | State.Vals [ Value.Con n ] -> [ n ]
               | _ -> [])
             outs)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "SC reads only the final value" [ 2 ]
    (explore State.Sequential);
  Alcotest.(check (list int)) "adversarial memory exposes stale values" [ 0; 1; 2 ]
    (explore (State.Adversarial { depth = 2 }))

let test_mixed_input_mode () =
  let open Builder in
  let p =
    compile
      (program "mix" ~globals:[ ("r", 0) ]
         [ func "main" []
             [ input "a" ~name:"a" ~lo:0 ~hi:9;
               input "b" ~name:"b" ~lo:0 ~hi:9;
               input "c" ~name:"c" ~lo:0 ~hi:9;
               setg "r" (l "a" + l "b" + l "c");
               output [ g "r" ]
             ]
         ])
  in
  let model = Portend_util.Maps.Smap.of_list [ ("a", 5); ("b", 6); ("c", 7) ] in
  let st = State.init ~input_mode:(State.Mixed { model; limit = 2 }) p in
  (* drive manually, counting symbolic inputs *)
  let rec go st =
    match State.runnable st with
    | [] -> st
    | tid :: _ -> (
      match Run.slice st tid with
      | sl :: _ -> (
        match sl.Run.s_end with
        | Run.End_crashed _ -> sl.Run.s_state
        | Run.End_decision | Run.End_paused -> go sl.Run.s_state)
      | [] -> st)
  in
  let final = go st in
  Alcotest.(check int) "two symbolic inputs" 2 (List.length final.State.input_ranges);
  (* the third input came from the model *)
  Alcotest.(check bool) "c is concrete 7" true
    Stdlib.(List.exists (fun (k, v) -> k = "c" && v = Value.Con 7) final.State.input_log)

let test_directed_scheduler () =
  let p = counter_racy 3 in
  let sched = Sched.directed 1 ~fallback:Sched.round_robin in
  let r = run_prog ~sched p in
  check_stop "halted" "halted" r

let test_trace_take_and_prefix () =
  let p = counter_racy 3 in
  let r = run_prog ~sched:(Sched.random ~seed:5) p in
  let t = Trace.take 4 r.Run.trace in
  Alcotest.(check int) "take 4" 4 (Trace.length t);
  (* prefix_then replays the prefix then continues round-robin to completion *)
  let sched = Sched.prefix_then (Trace.decisions t) Sched.round_robin in
  let r2 = run_prog ~sched p in
  check_stop "prefix then rr halts" "halted" r2

let test_run_budget () =
  let open Builder in
  let p =
    compile
      (program "spin" ~globals:[ ("x", 0) ]
         [ func "main" [] [ while_ (g "x" == i 0) [ yield ] ] ])
  in
  let r = Run.run ~sched:Sched.round_robin ~budget:500 (State.init p) in
  match r.Run.stop with
  | Run.Out_of_budget -> ()
  | s -> Alcotest.failf "expected budget stop, got %s" (Run.stop_to_string s)

(* --- state fingerprint --- *)

(* Two threads writing disjoint globals: every interleaving executes the
   same instructions, so all schedules converge on equal final states. *)
let disjoint_writes =
  let open Builder in
  program "disjoint" ~globals:[ ("a", 0); ("b", 0) ]
    [ func "wa" [] [ setg "a" (i 1) ];
      func "wb" [] [ setg "b" (i 2) ];
      func "main" []
        [ spawn ~into:"t1" "wa" [];
          spawn ~into:"t2" "wb" [];
          join (l "t1");
          join (l "t2");
          output [ g "a"; g "b" ]
        ]
    ]

let test_fingerprint_equal_states () =
  (* Equal states built independently (different schedules of commuting
     writes) hash equal. *)
  let fp sched =
    let r = run_prog ~sched disjoint_writes in
    check_stop "halted" "halted" r;
    State.fingerprint r.Run.final
  in
  Alcotest.(check int64) "same fingerprint across schedules" (fp Sched.round_robin)
    (fp (Sched.random ~seed:7));
  (* ... and trivially across two identical runs. *)
  Alcotest.(check int64) "deterministic" (fp Sched.round_robin) (fp Sched.round_robin)

let test_fingerprint_input_log_insensitive () =
  let p =
    compile
      Builder.(
        program "two_inputs" ~globals:[ ("r", 0) ]
          [ func "main" []
              [ input "a" ~name:"a" ~lo:0 ~hi:9;
                input "b" ~name:"b" ~lo:0 ~hi:9;
                setg "r" (l "a" + l "b");
                output [ g "r" ]
              ]
          ])
  in
  let model = Portend_util.Maps.Smap.of_list [ ("a", 3); ("b", 4) ] in
  let r = Run.run ~sched:Sched.round_robin (State.init ~input_mode:(State.Concrete model) p) in
  let st = r.Run.final in
  Alcotest.(check bool) "two draws logged" true (List.length st.State.input_log >= 2);
  (* The input log records draw order — metadata, not semantic state — so
     permuting it must not change the fingerprint. *)
  Alcotest.(check int64) "log order irrelevant" (State.fingerprint st)
    (State.fingerprint { st with State.input_log = List.rev st.State.input_log })

let test_fingerprint_sensitivity () =
  let r = run_prog (counter_racy 3) in
  let st = r.Run.final in
  let fp = State.fingerprint st in
  let differs msg st' = Alcotest.(check bool) msg true (State.fingerprint st' <> fp) in
  differs "globals change the hash"
    { st with State.globals = Portend_util.Maps.Smap.add "count" (Value.Con 999) st.State.globals };
  differs "steps change the hash" { st with State.steps = st.State.steps + 1 };
  differs "path condition changes the hash"
    { st with State.path_cond = [ Portend_solver.Expr.Const 1 ] }

let test_fingerprint_collision_smoke () =
  (* Snapshots along one deterministic run: distinct step counts mean
     distinct states, so the number of distinct fingerprints must equal the
     number of distinct step counts (a collision would merge two). *)
  let prog = compile (counter_racy 3) in
  let snapshots =
    List.init 40 (fun k ->
        (Run.run ~sched:Sched.round_robin ~budget:(k + 1) (State.init prog)).Run.final)
  in
  let steps = List.sort_uniq compare (List.map (fun s -> s.State.steps) snapshots) in
  let fps = List.sort_uniq compare (List.map State.fingerprint snapshots) in
  Alcotest.(check int) "no fingerprint collisions" (List.length steps) (List.length fps);
  Alcotest.(check bool) "smoke covers many states" true (List.length steps > 10)

(* --- event conflicts and trace equivalence --- *)

let site pc = { Events.func = "f"; pc }

let acc tid pc kind loc = Events.Access { tid; site = site pc; loc; kind; step = 0 }

let test_events_conflicts () =
  let check msg want a b = Alcotest.(check bool) msg want (Events.conflicts a b) in
  check "write/write same global" true
    (acc 1 0 Events.Write (Events.Lglobal "x"))
    (acc 2 1 Events.Write (Events.Lglobal "x"));
  check "read/read same global" false
    (acc 1 0 Events.Read (Events.Lglobal "x"))
    (acc 2 1 Events.Read (Events.Lglobal "x"));
  check "write different globals" false
    (acc 1 0 Events.Write (Events.Lglobal "x"))
    (acc 2 1 Events.Write (Events.Lglobal "y"));
  check "same thread always conflicts" true
    (acc 1 0 Events.Read (Events.Lglobal "x"))
    (acc 1 1 Events.Read (Events.Lglobal "y"));
  check "array cells are independent" false
    (acc 1 0 Events.Write (Events.Larray ("a", 0)))
    (acc 2 1 Events.Write (Events.Larray ("a", 1)));
  check "free metadata conflicts with any cell" true
    (acc 1 0 Events.Write (Events.Lmeta "a"))
    (acc 2 1 Events.Read (Events.Larray ("a", 3)));
  check "same mutex" true
    (Events.Lock_acquired { tid = 1; mutex = "m"; step = 0 })
    (Events.Lock_released { tid = 2; mutex = "m"; step = 0 });
  check "different mutexes" false
    (Events.Lock_acquired { tid = 1; mutex = "m"; step = 0 })
    (Events.Lock_acquired { tid = 2; mutex = "n"; step = 0 })

let test_events_equivalent () =
  let w tid pc name step =
    Events.Access { tid; site = site pc; loc = Events.Lglobal name; kind = Events.Write; step }
  in
  (* Swapping adjacent independent events (and renumbering steps) preserves
     equivalence. *)
  Alcotest.(check bool) "independent swap equivalent" true
    (Events.equivalent [ w 1 0 "x" 1; w 2 1 "y" 2 ] [ w 2 1 "y" 5; w 1 0 "x" 9 ]);
  (* Swapping conflicting events does not. *)
  Alcotest.(check bool) "conflicting swap inequivalent" false
    (Events.equivalent [ w 1 0 "x" 1; w 2 1 "x" 2 ] [ w 2 1 "x" 1; w 1 0 "x" 2 ]);
  (* Different lengths never compare equal. *)
  Alcotest.(check bool) "length mismatch" false
    (Events.equivalent [ w 1 0 "x" 1; w 2 1 "y" 2 ] [ w 1 0 "x" 1 ]);
  (* A trace is equivalent to itself with renumbered steps. *)
  Alcotest.(check bool) "step numbers ignored" true
    (Events.equivalent [ w 1 0 "x" 3; w 2 1 "x" 7 ] [ w 1 0 "x" 0; w 2 1 "x" 1 ])

let () =
  Alcotest.run "vm"
    [ ( "semantics",
        [ Alcotest.test_case "locked counter" `Quick test_sequential_counter;
          Alcotest.test_case "racy counter loses updates" `Quick test_racy_counter_lost_update;
          Alcotest.test_case "arith and control" `Quick test_arith_and_control;
          Alcotest.test_case "function calls" `Quick test_function_calls
        ] );
      ( "blocking",
        [ Alcotest.test_case "condvar handoff" `Quick test_condvar_handoff;
          Alcotest.test_case "barrier" `Quick test_barrier;
          Alcotest.test_case "semaphore" `Quick test_semaphore;
          Alcotest.test_case "atomic region" `Quick test_atomic_region;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected
        ] );
      ("crashes", [ Alcotest.test_case "all crash kinds" `Quick test_crashes ]);
      ( "record-replay",
        [ Alcotest.test_case "deterministic replay" `Quick test_record_replay_deterministic;
          Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip
        ] );
      ( "symbolic",
        [ Alcotest.test_case "fork on symbolic branch" `Quick test_symbolic_fork;
          Alcotest.test_case "concrete model inputs" `Quick test_concrete_inputs_from_model
        ] );
      ( "extended",
        [ Alcotest.test_case "adversarial memory" `Quick test_adversarial_memory_stale_reads;
          Alcotest.test_case "mixed input mode" `Quick test_mixed_input_mode;
          Alcotest.test_case "directed scheduler" `Quick test_directed_scheduler;
          Alcotest.test_case "trace take/prefix" `Quick test_trace_take_and_prefix;
          Alcotest.test_case "run budget" `Quick test_run_budget
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "equal states hash equal" `Quick test_fingerprint_equal_states;
          Alcotest.test_case "input log order ignored" `Quick
            test_fingerprint_input_log_insensitive;
          Alcotest.test_case "semantic fields hashed" `Quick test_fingerprint_sensitivity;
          Alcotest.test_case "collision smoke" `Quick test_fingerprint_collision_smoke
        ] );
      ( "events",
        [ Alcotest.test_case "conflict relation" `Quick test_events_conflicts;
          Alcotest.test_case "trace equivalence" `Quick test_events_equivalent
        ] )
    ]
