(* Tests for the whole-program static analysis library (lib/analysis): CFG
   construction, lockset dataflow, may-happen-in-parallel refinements, the
   candidate-pair generator, the lint pass, and — the load-bearing
   property — prefilter soundness: the static candidates are a superset of
   the dynamic detector's races, both on the paper's workload suite and on
   random Racelang programs. *)

open Portend_lang
open Portend_analysis
open Portend_util.Maps
module Hb = Portend_detect.Hb
module Report = Portend_detect.Report
module Run = Portend_vm.Run
module Sched = Portend_vm.Sched
module State = Portend_vm.State
module Events = Portend_vm.Events
module Registry = Portend_workloads.Registry

let compile = Compile.compile

let func_of prog fname = Smap.find fname prog.Bytecode.funcs

(* pcs of the IStoreG instructions on global [v] in [fname] *)
let store_pcs prog fname v =
  let f = func_of prog fname in
  let out = ref [] in
  Array.iteri
    (fun pc inst ->
      match inst with Bytecode.IStoreG (v', _) when v' = v -> out := pc :: !out | _ -> ())
    f.Bytecode.code;
  List.rev !out

let one_store prog fname v =
  match store_pcs prog fname v with
  | [ pc ] -> pc
  | pcs -> Alcotest.failf "expected one store to %s in %s, got %d" v fname (List.length pcs)

let two_stores prog fname v =
  match store_pcs prog fname v with
  | [ a; b ] -> (a, b)
  | pcs -> Alcotest.failf "expected two stores to %s in %s, got %d" v fname (List.length pcs)

let three_stores prog fname v =
  match store_pcs prog fname v with
  | [ a; b; c ] -> (a, b, c)
  | pcs -> Alcotest.failf "expected three stores to %s in %s, got %d" v fname (List.length pcs)

(* --- CFG --- *)

let test_cfg () =
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("x", 0) ]
         [ func "main" []
             [ var "j" (i 0);
               while_ (l "j" < i 3) [ setg "x" (l "j"); set "j" (l "j" + i 1) ];
               output [ l "j" ]
             ]
         ])
  in
  let cfg = Cfg.build (func_of p "main") in
  Alcotest.(check bool) "has a back edge" true (cfg.Cfg.back_edges <> []);
  (* the loop-body store is inside a loop, the trailing output is not *)
  let store = one_store p "main" "x" in
  Alcotest.(check bool) "store is in the loop" true (Cfg.in_loop cfg store);
  let exits = Cfg.exits cfg in
  Alcotest.(check bool) "has a reachable exit" true (exits <> []);
  List.iter
    (fun pc ->
      (match cfg.Cfg.func.Bytecode.code.(pc) with
      | Bytecode.IRet _ -> ()
      | _ -> Alcotest.fail "exit is not a return");
      Alcotest.(check bool) "exit is outside the loop" false (Cfg.in_loop cfg pc))
    exits;
  (* every IBr has two successors, every successor lists us as predecessor *)
  Array.iteri
    (fun pc inst ->
      (match inst with
      | Bytecode.IBr (_, l1, l2) when l1 <> l2 ->
        Alcotest.(check int) "branch successors" 2 (List.length cfg.Cfg.succ.(pc))
      | _ -> ());
      List.iter
        (fun s ->
          Alcotest.(check bool) "pred mirrors succ" true (List.mem pc cfg.Cfg.pred.(s)))
        cfg.Cfg.succ.(pc))
    cfg.Cfg.func.Bytecode.code

(* --- lockset dataflow --- *)

let test_locksets_basic () =
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("x", 0) ] ~mutexes:[ "m" ]
         [ func "main" [] [ lock "m"; setg "x" (i 1); unlock "m"; setg "x" (i 2) ] ])
  in
  let locks = Locksets.analyze p in
  let inside, outside = two_stores p "main" "x" in
  Alcotest.(check bool) "held inside the critical section" true
    (Sset.mem "m" (Locksets.must_held locks "main" inside));
  Alcotest.(check bool) "not held after release" true
    (Sset.is_empty (Locksets.must_held locks "main" outside))

let test_locksets_summaries () =
  (* lock and unlock hidden behind calls: the per-function summaries must
     carry the effect into the caller *)
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("x", 0) ] ~mutexes:[ "m" ]
         [ func "acquire" [] [ lock "m" ];
           func "release" [] [ unlock "m" ];
           func "main" []
             [ call "acquire" []; setg "x" (i 1); call "release" []; setg "x" (i 2) ]
         ])
  in
  let locks = Locksets.analyze p in
  let inside, outside = two_stores p "main" "x" in
  Alcotest.(check bool) "summary adds the lock" true
    (Sset.mem "m" (Locksets.must_held locks "main" inside));
  Alcotest.(check bool) "summary removes the lock" true
    (Sset.is_empty (Locksets.must_held locks "main" outside))

let test_locksets_conditional_release () =
  (* released on one branch only: must-held loses it (intersection), may-held
     keeps it (union) *)
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("x", 0); ("c", 0) ] ~mutexes:[ "m" ]
         [ func "main" []
             [ lock "m"; if_ (g "c" == i 1) [ unlock "m" ] []; setg "x" (i 1) ]
         ])
  in
  let locks = Locksets.analyze p in
  let store = one_store p "main" "x" in
  Alcotest.(check bool) "must-held empty after the merge" true
    (Sset.is_empty (Locksets.must_held locks "main" store));
  Alcotest.(check bool) "may-held keeps it" true
    (Sset.mem "m" (Locksets.may_held locks "main" store))

(* --- may-happen-in-parallel --- *)

let test_mhp_spawn_join () =
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("x", 0) ]
         [ func "w" [] [ setg "x" (i 10) ];
           func "main" []
             [ setg "x" (i 1);
               spawn ~into:"t" "w" [];
               setg "x" (i 2);
               join (l "t");
               setg "x" (i 3)
             ]
         ])
  in
  let mhp = Mhp.analyze p in
  let w_store = one_store p "w" "x" in
  let before, during, after = three_stores p "main" "x" in
  let par a b = Mhp.may_parallel mhp a b in
  Alcotest.(check bool) "before the spawn: ordered" false (par ("main", before) ("w", w_store));
  Alcotest.(check bool) "between spawn and join: parallel" true
    (par ("main", during) ("w", w_store));
  Alcotest.(check bool) "after the join: ordered" false (par ("main", after) ("w", w_store));
  Alcotest.(check bool) "same single thread: ordered" false
    (par ("main", before) ("main", during))

let test_mhp_siblings () =
  let open Builder in
  let sequential =
    compile
      (program "p" ~globals:[ ("x", 0) ]
         [ func "w" [] [ setg "x" (i 10) ];
           func "main" []
             [ spawn ~into:"t1" "w" [];
               join (l "t1");
               spawn ~into:"t2" "w" [];
               join (l "t2")
             ]
         ])
  in
  let concurrent =
    compile
      (program "p" ~globals:[ ("x", 0) ]
         [ func "w" [] [ setg "x" (i 10) ];
           func "main" []
             [ spawn ~into:"t1" "w" [];
               spawn ~into:"t2" "w" [];
               join (l "t1");
               join (l "t2")
             ]
         ])
  in
  let check prog expected label =
    let mhp = Mhp.analyze prog in
    let w_store = one_store prog "w" "x" in
    Alcotest.(check bool) label expected (Mhp.may_parallel mhp ("w", w_store) ("w", w_store))
  in
  check sequential false "join-before-respawn siblings are ordered";
  check concurrent true "unjoined siblings are parallel"

let test_mhp_spawn_in_loop () =
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("x", 0) ]
         [ func "w" [] [ setg "x" (i 10) ];
           func "main" []
             [ var "j" (i 0);
               while_ (l "j" < i 3) [ spawn "w" []; set "j" (l "j" + i 1) ]
             ]
         ])
  in
  let mhp = Mhp.analyze p in
  let w_store = one_store p "w" "x" in
  Alcotest.(check bool) "looped spawn races with itself" true
    (Mhp.may_parallel mhp ("w", w_store) ("w", w_store))

(* --- candidate generator --- *)

let test_static_report_lock_pruning () =
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("prot", 0); ("unprot", 0) ] ~mutexes:[ "m" ]
         [ func "worker" []
             [ lock "m";
               setg "prot" (g "prot" + i 1);
               unlock "m";
               setg "unprot" (g "unprot" + i 1)
             ];
           func "main" []
             [ spawn ~into:"t1" "worker" [];
               spawn ~into:"t2" "worker" [];
               join (l "t1");
               join (l "t2")
             ]
         ])
  in
  let report = Static_report.analyze p in
  let touches loc (pr : Static_report.pair) = pr.Static_report.p1.Static_report.s_loc = loc in
  Alcotest.(check bool) "unprotected global is a candidate" true
    (List.exists (touches (Static_report.Aglobal "unprot")) report.Static_report.pairs);
  Alcotest.(check bool) "lock-protected global is pruned" false
    (List.exists (touches (Static_report.Aglobal "prot")) report.Static_report.pairs);
  (* restrict_sites only lists pair endpoints, and covers is symmetric *)
  let sites = Static_report.restrict_sites report in
  List.iter
    (fun (f, pc) ->
      Alcotest.(check bool) "restrict site is a shared site" true
        (List.exists
           (fun (s : Static_report.site) ->
             Stdlib.( && ) (s.Static_report.s_func = f) (s.Static_report.s_pc = pc))
           report.Static_report.sites))
    sites;
  List.iter
    (fun (pr : Static_report.pair) ->
      let a = (pr.Static_report.p1.Static_report.s_func, pr.Static_report.p1.Static_report.s_pc)
      and b = (pr.Static_report.p2.Static_report.s_func, pr.Static_report.p2.Static_report.s_pc) in
      Alcotest.(check bool) "covers a,b" true (Static_report.covers report a b);
      Alcotest.(check bool) "covers b,a" true (Static_report.covers report b a))
    report.Static_report.pairs

(* --- lint --- *)

(* --- sync-aware refinements: sem-as-lock, barrier phases, condvar order --- *)

(* A binary semaphore bracketing every touch of [n] is mutual exclusion;
   one free post anywhere breaks the invariant and must resurrect the
   candidate pair. *)
let test_static_report_sem_as_lock () =
  let open Builder in
  let worker = func "worker" [] [ sem_wait "s"; setg "n" (g "n" + i 1); sem_post "s" ] in
  let build extra spawns =
    compile
      (program "p" ~globals:[ ("n", 0) ] ~sems:[ ("s", 1) ]
         (worker :: extra
         @ [ func "main" []
               (List.concat_map
                  (fun (t, f) -> [ spawn ~into:t f [] ])
                  spawns
               @ List.map (fun (t, _) -> join (l t)) spawns)
           ]))
  in
  let touches_n (pr : Static_report.pair) =
    pr.Static_report.p1.Static_report.s_loc = Static_report.Aglobal "n"
  in
  let protected = build [] [ ("t1", "worker"); ("t2", "worker") ] in
  Alcotest.(check bool) "sem-bracketed global is pruned" false
    (List.exists touches_n (Static_report.analyze protected).Static_report.pairs);
  let poster = func "poster" [] [ sem_post "s" ] in
  let broken =
    build [ poster ] [ ("t1", "worker"); ("t2", "worker"); ("t3", "poster") ]
  in
  Alcotest.(check bool) "a free post disqualifies the semaphore" true
    (List.exists touches_n (Static_report.analyze broken).Static_report.pairs)

(* All three threads cross the barrier exactly once outside any loop, so
   w1's pre-barrier store is ordered before w2's post-barrier store.  With
   a party count that does not match the thread count the phase argument
   is void and the pair must come back. *)
let test_static_report_barrier_phases () =
  let open Builder in
  let build ~parties ~main_arrives =
    compile
      (program "p" ~globals:[ ("x", 0) ]
         ~barriers:[ ("b", parties) ]
         [ func "w1" [] [ setg "x" (i 1); barrier "b" ];
           func "w2" [] [ barrier "b"; setg "x" (i 2) ];
           func "main" []
             ([ spawn ~into:"t1" "w1" []; spawn ~into:"t2" "w2" [] ]
             @ (if main_arrives then [ barrier "b" ] else [])
             @ [ join (l "t1"); join (l "t2") ])
         ])
  in
  let touches_x (pr : Static_report.pair) =
    pr.Static_report.p1.Static_report.s_loc = Static_report.Aglobal "x"
  in
  let phased = build ~parties:3 ~main_arrives:true in
  Alcotest.(check bool) "stores in distinct barrier phases are pruned" false
    (List.exists touches_x (Static_report.analyze phased).Static_report.pairs);
  let skewed = build ~parties:2 ~main_arrives:false in
  Alcotest.(check bool) "parties <> threads keeps the candidate" true
    (List.exists touches_x (Static_report.analyze skewed).Static_report.pairs)

(* Producer/consumer condvar handoff: the store to [slot] dominates the
   only signal and nothing follows it, and the consumer's read sits behind
   a must-completed wait, so the pair is ordered.  A second producer
   instance makes the signalling thread ambiguous and must disable the
   refinement. *)
let test_static_report_cond_order () =
  let open Builder in
  let build spawns =
    compile
      (program "p" ~globals:[ ("slot", 0); ("d", 0) ] ~mutexes:[ "m" ] ~conds:[ "c" ]
         [ func "consumer" []
             [ lock "m"; wait "c" "m"; unlock "m"; setg "d" (g "slot") ];
           func "producer" [] [ setg "slot" (i 42); lock "m"; signal "c"; unlock "m" ];
           func "main" []
             (List.concat_map (fun (t, f) -> [ spawn ~into:t f [] ]) spawns
             @ List.map (fun (t, _) -> join (l t)) spawns)
         ])
  in
  let touches_slot (pr : Static_report.pair) =
    pr.Static_report.p1.Static_report.s_loc = Static_report.Aglobal "slot"
  in
  let handoff = build [ ("t1", "consumer"); ("t2", "producer") ] in
  Alcotest.(check bool) "condvar handoff orders the slot accesses" false
    (List.exists touches_slot (Static_report.analyze handoff).Static_report.pairs);
  let two_producers =
    build [ ("t1", "consumer"); ("t2", "producer"); ("t3", "producer") ]
  in
  Alcotest.(check bool) "two producers keep the candidate" true
    (List.exists touches_slot (Static_report.analyze two_producers).Static_report.pairs)

let diag_codes prog = List.map (fun d -> d.Lint.code) (Lint.run prog)

let test_lint_double_lock () =
  let open Builder in
  let p =
    compile
      (program "p" ~mutexes:[ "m" ] [ func "main" [] [ lock "m"; lock "m" ] ])
  in
  let codes = diag_codes p in
  Alcotest.(check bool) "double-lock reported" true (List.mem "double-lock" codes);
  Alcotest.(check bool) "leak reported too" true (List.mem "lock-held-at-return" codes)

let test_lint_lock_leak () =
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("c", 0) ] ~mutexes:[ "m" ]
         [ func "main" [] [ lock "m"; if_ (g "c" == i 1) [ unlock "m" ] [] ] ])
  in
  Alcotest.(check bool) "leak on one path reported" true
    (List.mem "lock-held-at-return" (diag_codes p))

let test_lint_spin_invariant () =
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("flag", 0) ]
         [ func "main" [] [ while_ (g "flag" == i 0) [ yield ] ] ])
  in
  Alcotest.(check bool) "loop-invariant spin reported" true
    (List.mem "spin-invariant" (diag_codes p));
  (* with a concurrent writer the same loop is legitimate ad-hoc sync *)
  let ok =
    compile
      (program "p" ~globals:[ ("flag", 0) ]
         [ func "setter" [] [ setg "flag" (i 1) ];
           func "main" [] [ spawn ~into:"t" "setter" []; while_ (g "flag" == i 0) [ yield ]; join (l "t") ]
         ])
  in
  Alcotest.(check bool) "spin with a concurrent writer is fine" false
    (List.mem "spin-invariant" (diag_codes ok))

let test_lint_clean_program () =
  let open Builder in
  let p =
    compile
      (program "p" ~globals:[ ("n", 0) ] ~mutexes:[ "m" ]
         [ func "worker" [] (critical "m" [ setg "n" (g "n" + i 1) ]);
           func "main" []
             [ spawn ~into:"t1" "worker" [];
               spawn ~into:"t2" "worker" [];
               join (l "t1");
               join (l "t2");
               output [ g "n" ]
             ]
         ])
  in
  Alcotest.(check (list string)) "no diagnostics" [] (diag_codes p)

let test_lint_lost_signal () =
  let open Builder in
  let lonely =
    compile (program "p" ~mutexes:[ "m" ] ~conds:[ "c" ] [ func "main" [] [ signal "c" ] ])
  in
  Alcotest.(check bool) "signal with no waiter anywhere" true
    (List.mem "lost-signal" (diag_codes lonely));
  let paired =
    compile
      (program "p" ~mutexes:[ "m" ] ~conds:[ "c" ]
         [ func "waiter" [] [ lock "m"; wait "c" "m"; unlock "m" ];
           func "main" []
             [ spawn ~into:"t" "waiter" []; lock "m"; signal "c"; unlock "m"; join (l "t") ]
         ])
  in
  Alcotest.(check bool) "signal with a concurrent waiter is fine" false
    (List.mem "lost-signal" (diag_codes paired))

let test_lint_barrier_mismatch () =
  let open Builder in
  let build parties =
    compile
      (program "p" ~barriers:[ ("b", parties) ]
         [ func "w" [] [ barrier "b" ];
           func "main" []
             [ spawn ~into:"t1" "w" []; spawn ~into:"t2" "w" []; join (l "t1"); join (l "t2") ]
         ])
  in
  Alcotest.(check bool) "two arrivals against three parties" true
    (List.mem "barrier-mismatch" (diag_codes (build 3)));
  Alcotest.(check bool) "matched party count is fine" false
    (List.mem "barrier-mismatch" (diag_codes (build 2)))

let test_lint_sem_unmatched () =
  let open Builder in
  let leak =
    compile
      (program "p" ~globals:[ ("c", 0) ] ~sems:[ ("s", 1) ]
         [ func "main" []
             [ sem_wait "s"; if_ (g "c" == i 1) [ return () ] []; sem_post "s" ]
         ])
  in
  Alcotest.(check bool) "token leaked on the early return" true
    (List.mem "sem-unmatched" (diag_codes leak));
  let balanced =
    compile
      (program "p" ~sems:[ ("s", 1) ]
         [ func "main" [] [ sem_wait "s"; sem_post "s" ] ])
  in
  Alcotest.(check bool) "balanced bracket is fine" false
    (List.mem "sem-unmatched" (diag_codes balanced))

let test_lint_blocking_in_atomic () =
  let open Builder in
  let blocking =
    compile
      (program "p" ~globals:[ ("n", 0) ] ~mutexes:[ "m" ]
         [ func "main" [] [ atomic [ lock "m"; setg "n" (i 1); unlock "m" ] ] ])
  in
  Alcotest.(check bool) "lock inside an atomic region" true
    (List.mem "blocking-in-atomic" (diag_codes blocking));
  let pure =
    compile
      (program "p" ~globals:[ ("n", 0) ]
         [ func "main" [] [ atomic [ setg "n" (g "n" + i 1) ] ] ])
  in
  Alcotest.(check bool) "non-blocking atomic body is fine" false
    (List.mem "blocking-in-atomic" (diag_codes pure))

(* --- prefilter soundness over the paper's workload suite --- *)

let race_sites (race : Report.race) =
  ( (race.Report.first.Report.a_site.Events.func, race.Report.first.Report.a_site.Events.pc),
    (race.Report.second.Report.a_site.Events.func, race.Report.second.Report.a_site.Events.pc) )

let test_prefilter_soundness_suite () =
  List.iter
    (fun (w : Registry.workload) ->
      let prog = compile w.Registry.w_prog in
      let record, _ =
        Portend_core.Pipeline.record ~seed:w.Registry.w_seed ~inputs:w.Registry.w_inputs prog
      in
      let report = Static_report.analyze prog in
      (* superset: every dynamic race (spin reads included) is a candidate *)
      List.iter
        (fun race ->
          let s1, s2 = race_sites race in
          Alcotest.(check bool)
            (Printf.sprintf "%s: race %s/%s covered" w.Registry.w_name (fst s1) (fst s2))
            true
            (Static_report.covers report s1 s2))
        (Hb.detect record.Run.events);
      (* identical reports with and without the prefilter *)
      let suppress = Static.spin_read_sites prog in
      let without = Hb.detect_clustered ~suppress record.Run.events in
      let with_pf = Hb.detect_clustered ~suppress ~restrict:report record.Run.events in
      Alcotest.(check bool)
        (Printf.sprintf "%s: identical reports under prefilter" w.Registry.w_name)
        true (without = with_pf))
    Portend_workloads.Suite.extended

(* --- qcheck: static candidates ⊇ dynamic races on random programs --- *)

let gen_static_vs_dynamic_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let glob = oneofl [ "s0"; "s1"; "s2" ] in
  (* each element is a statement block: plain racy statements, or a
     critical section over one of two mutexes *)
  let gen_block =
    frequency
      [ ( 3,
          let* x = glob in
          let* n = int_bound 9 in
          return [ Ast.SetGlobal (x, Ast.Int n) ] );
        ( 2,
          let* x = glob in
          let* y = glob in
          return
            [ Ast.SetGlobal (x, Ast.Binop (Portend_solver.Expr.Add, Ast.Global y, Ast.Int 1)) ]
        );
        (2, map (fun x -> [ Ast.Output [ Ast.Global x ] ]) glob);
        (1, return [ Ast.Yield ]);
        ( 2,
          let* m = oneofl [ "m0"; "m1" ] in
          let* x = glob in
          return
            [ Ast.Lock m;
              Ast.SetGlobal (x, Ast.Binop (Portend_solver.Expr.Add, Ast.Global x, Ast.Int 1));
              Ast.Unlock m
            ] )
      ]
  in
  let gen_body = map List.concat (list_size (int_range 1 5) gen_block) in
  let* b1 = gen_body in
  let* b2 = gen_body in
  let* bm = gen_body in
  let* shape = oneofl [ `Par; `Seq; `Three ] in
  let main_body =
    match shape with
    | `Par ->
      [ Ast.Spawn (Some "t1", "w1", []); Ast.Spawn (Some "t2", "w2", []) ]
      @ bm
      @ [ Ast.Join (Ast.Local "t1"); Ast.Join (Ast.Local "t2") ]
    | `Seq ->
      [ Ast.Spawn (Some "t1", "w1", []); Ast.Join (Ast.Local "t1") ]
      @ bm
      @ [ Ast.Spawn (Some "t2", "w2", []); Ast.Join (Ast.Local "t2") ]
    | `Three ->
      [ Ast.Spawn (Some "t1", "w1", []);
        Ast.Spawn (Some "t2", "w2", []);
        Ast.Spawn (Some "t3", "w1", [])
      ]
      @ bm
      @ [ Ast.Join (Ast.Local "t1"); Ast.Join (Ast.Local "t2"); Ast.Join (Ast.Local "t3") ]
  in
  return
    { Ast.pname = "rand";
      globals = [ ("s0", 0); ("s1", 0); ("s2", 0) ];
      arrays = [];
      mutexes = [ "m0"; "m1" ];
      conds = [];
      barriers = [];
      sems = [];
      funcs =
        [ { Ast.fname = "w1"; params = []; body = b1 };
          { Ast.fname = "w2"; params = []; body = b2 };
          { Ast.fname = "main"; params = []; body = main_body }
        ]
    }

let test_superset_property =
  let arb =
    QCheck.make
      ~print:(fun (p, seed) -> Printf.sprintf "seed %d\n%s" seed (Pp.program_to_string p))
      QCheck.Gen.(pair gen_static_vs_dynamic_program (int_bound 1000))
  in
  QCheck.Test.make ~name:"static candidates cover every dynamic race" ~count:200 arb
    (fun (p, seed) ->
      let prog = Compile.compile p in
      let report = Static_report.analyze prog in
      let r = Run.run ~sched:(Sched.random ~seed) (State.init prog) in
      let races = Hb.detect r.Run.events in
      List.for_all
        (fun race ->
          let s1, s2 = race_sites race in
          Static_report.covers report s1 s2)
        races
      && Hb.detect ~restrict:report r.Run.events = races)

let () =
  Alcotest.run "analysis"
    [ ("cfg", [ Alcotest.test_case "structure" `Quick test_cfg ]);
      ( "locksets",
        [ Alcotest.test_case "basic" `Quick test_locksets_basic;
          Alcotest.test_case "call summaries" `Quick test_locksets_summaries;
          Alcotest.test_case "conditional release" `Quick test_locksets_conditional_release
        ] );
      ( "mhp",
        [ Alcotest.test_case "spawn/join" `Quick test_mhp_spawn_join;
          Alcotest.test_case "siblings" `Quick test_mhp_siblings;
          Alcotest.test_case "spawn in loop" `Quick test_mhp_spawn_in_loop
        ] );
      ( "report",
        [ Alcotest.test_case "lock pruning" `Quick test_static_report_lock_pruning;
          Alcotest.test_case "sem as lock" `Quick test_static_report_sem_as_lock;
          Alcotest.test_case "barrier phases" `Quick test_static_report_barrier_phases;
          Alcotest.test_case "condvar order" `Quick test_static_report_cond_order
        ] );
      ( "lint",
        [ Alcotest.test_case "double lock" `Quick test_lint_double_lock;
          Alcotest.test_case "lock leak" `Quick test_lint_lock_leak;
          Alcotest.test_case "spin invariant" `Quick test_lint_spin_invariant;
          Alcotest.test_case "clean program" `Quick test_lint_clean_program;
          Alcotest.test_case "lost signal" `Quick test_lint_lost_signal;
          Alcotest.test_case "barrier mismatch" `Quick test_lint_barrier_mismatch;
          Alcotest.test_case "sem unmatched" `Quick test_lint_sem_unmatched;
          Alcotest.test_case "blocking in atomic" `Quick test_lint_blocking_in_atomic
        ] );
      ( "prefilter",
        [ Alcotest.test_case "soundness over the suite" `Slow test_prefilter_soundness_suite ]
      );
      ("properties", List.map QCheck_alcotest.to_alcotest [ test_superset_property ])
    ]
